#!/bin/sh
# End-to-end CLI test: capture -> report -> disasm -> parallel sweep
# golden diff -> exit-code contract -> corruption/verify/salvage round
# trip. Run by ctest as: test_tools.sh BUILD_DIR [SOURCE_DIR].
set -e
BUILD=$1
SRC=${2:-$(dirname "$0")/..}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Asserts that a command exits with a specific status.
expect_exit() {
    want=$1
    shift
    set +e
    "$@" > "$TMP/out.txt" 2> "$TMP/err.txt"
    got=$?
    set -e
    if [ "$got" != "$want" ]; then
        echo "FAIL: wanted exit $want, got $got: $*" >&2
        cat "$TMP/err.txt" >&2
        exit 1
    fi
}

"$BUILD/tools/atum-capture" --out "$TMP/t.atum" --workloads grep --scale 1 \
    > "$TMP/cap.txt"
grep -q "halted=1" "$TMP/cap.txt"
grep -q 'console: "g"' "$TMP/cap.txt"

"$BUILD/tools/atum-report" "$TMP/t.atum" --head 3 --cache 16:16:1 \
    --flush-on-switch --tlb 32 --working-sets --stack-distance \
    > "$TMP/rep.txt"
grep -q "memory refs:" "$TMP/rep.txt"
grep -q "cache 16K/16B/1w/wb" "$TMP/rep.txt"
grep -q "tlb 32 entries" "$TMP/rep.txt"
grep -q "distinct pages" "$TMP/rep.txt"

"$BUILD/tools/atum-disasm" --kernel > "$TMP/dis.txt"
grep -q "k_start:" "$TMP/dis.txt"
grep -q "svpctx" "$TMP/dis.txt"

"$BUILD/tools/atum-disasm" --workload sort > "$TMP/dis2.txt"
grep -q "sobgtr" "$TMP/dis2.txt"

# Parallel sweep must reproduce the checked-in golden table bit for bit
# (the sweep table is deterministic regardless of --jobs).
"$BUILD/tools/atum-report" "$TMP/t.atum" --sweep 16:16:1,64:16:2 --jobs 2 \
    > "$TMP/sweep_full.txt"
sed -n '/^sweep:/,$p' "$TMP/sweep_full.txt" > "$TMP/sweep.txt"
diff -u "$SRC/tests/golden/sweep_16_64.txt" "$TMP/sweep.txt"

# A sweep row with an impossible geometry errors out without killing the
# healthy rows (17K is not a power of two).
"$BUILD/tools/atum-report" "$TMP/t.atum" --sweep 16:16:1,17:16:1 \
    > "$TMP/sweep_bad.txt"
grep -q "16K/16B/1w/wb.*ok" "$TMP/sweep_bad.txt"
grep -q "invalid-argument" "$TMP/sweep_bad.txt"

# Exit-code contract: 2 usage, 3 missing input, 4 unrecognized input.
expect_exit 2 "$BUILD/tools/atum-report"
expect_exit 2 "$BUILD/tools/atum-report" "$TMP/t.atum" --no-such-flag
expect_exit 2 "$BUILD/tools/atum-capture" --no-such-flag
expect_exit 2 "$BUILD/tools/atum-capture"
expect_exit 3 "$BUILD/tools/atum-report" "$TMP/absent.atum"
expect_exit 3 "$BUILD/tools/atum-capture" --out "$TMP/no/such/dir/t.atum"
printf 'garbage!' > "$TMP/junk.bin"
expect_exit 4 "$BUILD/tools/atum-report" "$TMP/junk.bin"

# An intact capture verifies clean, bit-identically to the golden report
# (byte counts vary with the trace length, so the golden uses a fixed
# 1000-record synthetic container written by trace_container_test).
expect_exit 0 "$BUILD/tools/atum-report" "$TMP/t.atum" --verify
grep -q "status:  intact" "$TMP/out.txt"

# Flip one record byte in the middle of chunk 1. The chunk stream starts
# at offset 32 and each 512-record chunk is 16 + 512*8 = 4112 bytes, so
# offset 32 + 4112 + 16 + 4 is the first record's type byte of chunk 1 --
# guaranteed to break that chunk's CRC.
cp "$TMP/t.atum" "$TMP/bad.atum"
printf '\377' | dd of="$TMP/bad.atum" bs=1 seek=4164 conv=notrunc 2>/dev/null

expect_exit 4 "$BUILD/tools/atum-report" "$TMP/bad.atum"
grep -q "data-loss" "$TMP/err.txt"

expect_exit 4 "$BUILD/tools/atum-report" "$TMP/bad.atum" --verify
grep -q "chunks:  .* 1 bad" "$TMP/out.txt"

# Salvage recovers everything but the poisoned chunk, and the salvaged
# file verifies intact.
expect_exit 0 "$BUILD/tools/atum-report" "$TMP/bad.atum" \
    --salvage "$TMP/fixed.atum"
expect_exit 0 "$BUILD/tools/atum-report" "$TMP/fixed.atum" --verify
grep -q "status:  intact" "$TMP/out.txt"

# The verify report itself is golden-diffed on a deterministic synthetic
# container: 1000 records, 128 per chunk, byte 700 of the file flipped.
"$BUILD/tests/make_golden_trace" "$TMP/synth.atum"
printf '\377' | dd of="$TMP/synth.atum" bs=1 seek=700 conv=notrunc 2>/dev/null
expect_exit 4 "$BUILD/tools/atum-report" "$TMP/synth.atum" --verify
diff -u "$SRC/tests/golden/verify_flip700.txt" "$TMP/out.txt"

# ---------------------------------------------------------------------------
# Kill-and-resume: a capture SIGKILLed mid-run (--kill-after-fills dies
# with _Exit(137): no destructors, no seal -- an honest crash) must be
# continuable from its last checkpoint into a trace byte-identical to an
# uninterrupted capture.

"$BUILD/tools/atum-capture" --out "$TMP/ref.atum" --workloads grep \
    --scale 1 --buffer-kb 16 > "$TMP/ref.txt"
grep -q "halted=1" "$TMP/ref.txt"

expect_exit 137 "$BUILD/tools/atum-capture" --out "$TMP/crash.atum" \
    --workloads grep --scale 1 --buffer-kb 16 \
    --checkpoint "$TMP/crash.ckpt" --checkpoint-every 2 \
    --kill-after-fills 7
latest=$(ls "$TMP"/crash.ckpt.*.atck | sort | tail -n 1)
[ -n "$latest" ] || { echo "FAIL: no checkpoint written before kill" >&2; exit 1; }

"$BUILD/tools/atum-capture" --resume "$latest" > "$TMP/resumed.txt"
grep -q "halted=1" "$TMP/resumed.txt"
cmp "$TMP/ref.atum" "$TMP/crash.atum" || {
    echo "FAIL: resumed trace differs from uninterrupted capture" >&2
    exit 1
}
expect_exit 0 "$BUILD/tools/atum-report" "$TMP/crash.atum" --verify
grep -q "status:  intact" "$TMP/out.txt"

# Graceful SIGTERM: the capture stops at a drain boundary, seals the
# trace, writes a final checkpoint, and exits 5 (interrupted, resumable).
"$BUILD/tools/atum-capture" --out "$TMP/sig.atum" --workloads matrix \
    --scale 6 --buffer-kb 16 --checkpoint "$TMP/sig.ckpt" \
    > "$TMP/sig.txt" 2>&1 &
cappid=$!
sleep 1
kill -TERM "$cappid" 2>/dev/null || true
set +e
wait "$cappid"
sig_exit=$?
set -e
if [ "$sig_exit" = 5 ]; then
    grep -q "stopped=signal" "$TMP/sig.txt"
    grep -q "checkpoint=" "$TMP/sig.txt"
    expect_exit 0 "$BUILD/tools/atum-report" "$TMP/sig.atum" --verify
    grep -q "status:  intact" "$TMP/out.txt"
elif [ "$sig_exit" != 0 ]; then
    # Exit 0 means the workload finished before the signal landed (slow
    # host scheduling); anything else is a real failure.
    echo "FAIL: SIGTERM capture exited $sig_exit" >&2
    cat "$TMP/sig.txt" >&2
    exit 1
fi

# Watchdog: a guest wedged in an exception loop is detected, the run
# stops with the dedicated exit code 6, and the partial trace is sealed.
expect_exit 6 "$BUILD/tools/atum-capture" --out "$TMP/wedge.atum" \
    --wedge-demo --watchdog 100000
grep -q "stopped=watchdog" "$TMP/out.txt"
expect_exit 0 "$BUILD/tools/atum-report" "$TMP/wedge.atum" --verify
grep -q "status:  intact" "$TMP/out.txt"

# The wedge also dumps the always-on flight recorder next to the trace
# (docs/TRACING.md); its schema and last-breadcrumb contract are
# jq-checked below.
[ -s "$TMP/wedge.atum.flight.json" ] || {
    echo "FAIL: wedged capture left no flight dump" >&2
    exit 1
}

# Broken pipes are success, not death: `| head` closes the pipe early
# and the tools must still exit 0 (SIGPIPE death would surface as 141).
# $? after a pipeline is head's status, so the tool's own status is
# smuggled out through a file.
{ "$BUILD/tools/atum-disasm" --kernel; echo $? > "$TMP/pipe_status"; } \
    | head -n 3 > "$TMP/pipe.txt"
pipe_exit=$(cat "$TMP/pipe_status")
[ "$pipe_exit" = 0 ] || { echo "FAIL: disasm | head exited $pipe_exit" >&2; exit 1; }
grep -q "k_start:" "$TMP/pipe.txt"
{ "$BUILD/tools/atum-report" "$TMP/t.atum" --head 1000; \
  echo $? > "$TMP/pipe_status"; } | head -n 2 > /dev/null
pipe_exit=$(cat "$TMP/pipe_status")
[ "$pipe_exit" = 0 ] || { echo "FAIL: report | head exited $pipe_exit" >&2; exit 1; }

# ---------------------------------------------------------------------------
# Observability: --version everywhere, metrics JSONL + RUN.json schemas,
# the aggregate stats footer, and the atum-top one-shot renderer.

for tool in atum-capture atum-report atum-disasm atum-top atum-chaos; do
    expect_exit 0 "$BUILD/tools/$tool" --version
    grep -q "^$tool " "$TMP/out.txt" || {
        echo "FAIL: $tool --version output malformed" >&2
        cat "$TMP/out.txt" >&2
        exit 1
    }
done

# --metrics-out requires the supervised loop, so it conflicts with
# --user-only.
expect_exit 2 "$BUILD/tools/atum-capture" --out "$TMP/m.atum" \
    --workloads grep --user-only --metrics-out "$TMP/m.jsonl"

# A supervised capture streams snapshots and writes a RUN.json manifest.
expect_exit 0 "$BUILD/tools/atum-capture" --out "$TMP/m.atum" \
    --workloads grep --scale 1 --buffer-kb 16 \
    --metrics-out "$TMP/m.jsonl" --metrics-interval-ms 0
[ -s "$TMP/m.jsonl" ] || { echo "FAIL: metrics JSONL empty" >&2; exit 1; }
[ -s "$TMP/m.atum.run.json" ] || { echo "FAIL: RUN.json missing" >&2; exit 1; }

# atum-report --stats appends the aggregate counter table.
expect_exit 0 "$BUILD/tools/atum-report" "$TMP/m.atum" --stats
grep -q "report.records" "$TMP/out.txt"

# atum-top renders the newest snapshot once and exits.
expect_exit 0 "$BUILD/tools/atum-top" --once "$TMP/m.jsonl"
grep -q "instructions" "$TMP/out.txt"
expect_exit 4 "$BUILD/tools/atum-top" --once /dev/null
expect_exit 3 "$BUILD/tools/atum-top" --once "$TMP/absent.jsonl"

# Span tracing (docs/TRACING.md): --trace-out / --spans export Chrome
# trace-event JSON in both build modes (an -DATUM_TRACING=OFF build
# writes a valid document marked tracing:"off" with no events).
expect_exit 0 "$BUILD/tools/atum-capture" --out "$TMP/s.atum" \
    --workloads grep --scale 1 --buffer-kb 16 \
    --trace-out "$TMP/cap.spans.json"
grep -q "spans " "$TMP/out.txt"
[ -s "$TMP/cap.spans.json" ] || { echo "FAIL: no capture spans" >&2; exit 1; }
expect_exit 0 "$BUILD/tools/atum-report" "$TMP/s.atum" --cache 16:16:1 \
    --spans "$TMP/rep.spans.json"
[ -s "$TMP/rep.spans.json" ] || { echo "FAIL: no report spans" >&2; exit 1; }

if command -v jq > /dev/null 2>&1; then
    # Every JSONL line parses and carries the v1 schema + required keys
    # (mono_us pins each snapshot to the span/flight monotonic axis).
    jq -es 'all(.schema == "atum-metrics-v1"
                and .phase and (.seq >= 0) and (.mono_us > 0)
                and (.counters | type == "object")
                and (.gauges | type == "object")
                and (.histograms | type == "object"))' \
        "$TMP/m.jsonl" > /dev/null
    # First line is phase=start, last line phase=final with real totals.
    [ "$(head -n 1 "$TMP/m.jsonl" | jq -r .phase)" = "start" ]
    [ "$(tail -n 1 "$TMP/m.jsonl" | jq -r .phase)" = "final" ]
    final_instr=$(tail -n 1 "$TMP/m.jsonl" \
        | jq -r '.counters["cpu.instructions"]')
    [ "$final_instr" -gt 0 ]
    # RUN.json: schema, tool identity, exit code, and the finals block.
    jq -e '.schema == "atum-run-v1" and .tool == "atum-capture"
           and .exit_code == 0 and (.config | type == "object")
           and (.counters["tracer.records"] > 0)' \
        "$TMP/m.atum.run.json" > /dev/null
    # Span exports: valid trace-event documents; real "X" spans and the
    # RUN.json "phases" profiler split only when the tracing layer is
    # compiled in (an -DATUM_TRACING=OFF build legitimately has neither).
    for spans in "$TMP/cap.spans.json" "$TMP/rep.spans.json"; do
        jq -e '.displayTimeUnit == "ms"
               and (.otherData.tracing == "on"
                    or .otherData.tracing == "off")
               and (.traceEvents | type == "array")' \
            "$spans" > /dev/null
        if [ "$(jq -r .otherData.tracing "$spans")" = "on" ]; then
            jq -e '[.traceEvents[] | select(.ph == "X")] | length > 0' \
                "$spans" > /dev/null
        fi
    done
    if [ "$(jq -r .otherData.tracing "$TMP/cap.spans.json")" = "on" ]; then
        jq -e '.phases | type == "object"' \
            "$TMP/m.atum.run.json" > /dev/null
    fi
    # Flight dump from the wedged capture above: schema v1, and the
    # newest breadcrumb names the failure point.
    jq -e '.schema == "atum-flight-v1" and .reason == "watchdog"
           and (.events | length > 0)
           and .events[-1].name == "supervisor.watchdog"' \
        "$TMP/wedge.atum.flight.json" > /dev/null
else
    echo "note: jq not found, skipping JSON schema checks"
fi

# ---------------------------------------------------------------------------
# Chaos campaigns: the seeded crash-drill driver (see docs/CHAOS.md).

expect_exit 2 "$BUILD/tools/atum-chaos"
expect_exit 2 "$BUILD/tools/atum-chaos" --no-such-flag
expect_exit 2 "$BUILD/tools/atum-chaos" --campaign powercut --seeds 0
expect_exit 3 "$BUILD/tools/atum-chaos" --replay "$TMP/absent.schedule"

# --probe prints the op counts schedules are aimed into.
expect_exit 0 "$BUILD/tools/atum-chaos" --probe --max-instructions 60000
grep -q "^writes " "$TMP/out.txt"
grep -q "^renames " "$TMP/out.txt"

# A small seeded campaign upholds every invariant.
expect_exit 0 "$BUILD/tools/atum-chaos" --campaign powercut,enospc \
    --seeds 2 --max-instructions 60000
grep -q "0 failing" "$TMP/out.txt"

# Corpus schedules replay clean through the CLI too (they are also run
# by chaos_test; this exercises the --replay file path end to end).
expect_exit 0 "$BUILD/tools/atum-chaos" \
    --replay "$SRC/tests/chaos_corpus/torn-rename.schedule"
grep -q ": ok" "$TMP/out.txt"

echo "tools OK"
