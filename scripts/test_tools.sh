#!/bin/sh
# End-to-end CLI test: capture -> report -> disasm -> parallel sweep
# golden diff. Run by ctest as: test_tools.sh BUILD_DIR [SOURCE_DIR].
set -e
BUILD=$1
SRC=${2:-$(dirname "$0")/..}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$BUILD/tools/atum-capture" --out "$TMP/t.atum" --workloads grep --scale 1 \
    > "$TMP/cap.txt"
grep -q "halted=1" "$TMP/cap.txt"
grep -q 'console: "g"' "$TMP/cap.txt"

"$BUILD/tools/atum-report" "$TMP/t.atum" --head 3 --cache 16:16:1 \
    --flush-on-switch --tlb 32 --working-sets --stack-distance \
    > "$TMP/rep.txt"
grep -q "memory refs:" "$TMP/rep.txt"
grep -q "cache 16K/16B/1w/wb" "$TMP/rep.txt"
grep -q "tlb 32 entries" "$TMP/rep.txt"
grep -q "distinct pages" "$TMP/rep.txt"

"$BUILD/tools/atum-disasm" --kernel > "$TMP/dis.txt"
grep -q "k_start:" "$TMP/dis.txt"
grep -q "svpctx" "$TMP/dis.txt"

"$BUILD/tools/atum-disasm" --workload sort > "$TMP/dis2.txt"
grep -q "sobgtr" "$TMP/dis2.txt"

# Parallel sweep must reproduce the checked-in golden table bit for bit
# (the sweep table is deterministic regardless of --jobs).
"$BUILD/tools/atum-report" "$TMP/t.atum" --sweep 16:16:1,64:16:2 --jobs 2 \
    > "$TMP/sweep_full.txt"
sed -n '/^sweep:/,$p' "$TMP/sweep_full.txt" > "$TMP/sweep.txt"
diff -u "$SRC/tests/golden/sweep_16_64.txt" "$TMP/sweep.txt"

echo "tools OK"
