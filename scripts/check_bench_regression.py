#!/usr/bin/env python3
"""Gate BENCH_*.json files against checked-in baselines.

Closes the ROADMAP item "Regression gating on BENCH JSON": instead of
only uploading bench artifacts, CI compares each run's BENCH_*.json
(the schema-1 format written by bench/common.h's BenchReport) against
a baseline committed under scripts/bench_baselines/ and fails on drift.

Comparison policy, per metric (keyed by name + config):

  - deterministic units (miss rates, record counts, survival %, ...):
    exact match — the simulator is deterministic, so any drift is a
    behavior change that must be explained by updating the baseline;
  - wall-clock / throughput units (us, ms, s, MB/s, records/s, x):
    within a relative band (default +-60%), because CI hardware varies;
    a baseline metric may carry its own "band" field to widen or
    tighten this (recovery-latency percentiles use a wide one).

A baseline metric missing from the run fails (a bench silently dropped
coverage); a run metric missing from the baseline is only a warning
(new coverage awaiting `--update`).

Usage:
  check_bench_regression.py [--baselines DIR] FILE_OR_DIR...
  check_bench_regression.py --update [--baselines DIR] FILE_OR_DIR...

Files that are not schema-1 bench reports (e.g. Google Benchmark output
like BENCH_t5_sim_speed.json) are skipped with a note. Exit codes:
0 clean, 1 drift/missing-metric, 2 usage or unreadable input.
"""

import argparse
import json
import os
import sys

# Units whose values depend on the machine running the bench. "pct"
# covers sampled phase-breakdown shares (obs/spans.h profiler), which
# shift with host timing just like raw wall-clock numbers.
BANDED_UNITS = {"us", "ms", "s", "MB/s", "records/s", "x", "/s", "pct"}
DEFAULT_BAND = 0.60


def metric_key(metric):
    config = metric.get("config") or {}
    return (metric["name"], tuple(sorted(config.items())))


def load_report(path):
    """Returns (report dict, None) or (None, reason-to-skip)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return None, f"unreadable ({err})"
    if not isinstance(data, dict) or data.get("schema") != 1:
        return None, "not a schema-1 bench report"
    if "bench" not in data or not isinstance(data.get("metrics"), list):
        return None, "missing bench/metrics fields"
    return data, None


def collect_inputs(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.startswith("BENCH_") and name.endswith(".json"):
                    files.append(os.path.join(path, name))
        else:
            files.append(path)
    return files


def compare(report, baseline, label):
    """Returns a list of failure strings (empty = clean)."""
    failures = []
    current = {metric_key(m): m for m in report["metrics"]}
    for base in baseline["metrics"]:
        key = metric_key(base)
        got = current.pop(key, None)
        pretty = base["name"] + (
            " " + dict(key[1]).__repr__() if key[1] else "")
        if got is None:
            failures.append(f"{label}: metric disappeared: {pretty}")
            continue
        want, have = float(base["value"]), float(got["value"])
        unit = base.get("unit", "")
        if unit in BANDED_UNITS:
            band = float(base.get("band", DEFAULT_BAND))
            ref = max(abs(want), 1e-12)
            drift = abs(have - want) / ref
            if drift > band:
                failures.append(
                    f"{label}: {pretty}: {have:g} {unit} drifted "
                    f"{drift:+.0%} from baseline {want:g} "
                    f"(band +-{band:.0%})")
        else:
            if have != want:
                failures.append(
                    f"{label}: {pretty}: exact-match metric changed: "
                    f"{want:g} -> {have:g} {unit} "
                    "(update the baseline if intended)")
    for key in current:
        print(f"note: {label}: new metric not in baseline: {key[0]} "
              f"{dict(key[1]) if key[1] else ''} (run --update to adopt)")
    return failures


def update_baseline(report, base_path):
    """Writes/refreshes a baseline, preserving per-metric band overrides."""
    old_bands = {}
    old, skip = load_report(base_path)
    if old is not None:
        for m in old["metrics"]:
            if "band" in m:
                old_bands[metric_key(m)] = m["band"]
    slim = {
        "bench": report["bench"],
        "schema": 1,
        "metrics": [],
    }
    for m in report["metrics"]:
        entry = {
            "name": m["name"],
            "value": m["value"],
            "unit": m.get("unit", ""),
            "config": m.get("config") or {},
        }
        if metric_key(m) in old_bands:
            entry["band"] = old_bands[metric_key(m)]
        slim["metrics"].append(entry)
    os.makedirs(os.path.dirname(base_path), exist_ok=True)
    with open(base_path, "w", encoding="utf-8") as f:
        json.dump(slim, f, indent=2)
        f.write("\n")
    print(f"updated {base_path}")


def main():
    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json against checked-in baselines.")
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "bench_baselines"),
        help="baseline directory (default: scripts/bench_baselines)")
    parser.add_argument("--update", "--update-baselines",
                        action="store_true", dest="update",
                        help="write current results as the new baseline")
    parser.add_argument("inputs", nargs="+",
                        help="BENCH_*.json files or directories of them")
    args = parser.parse_args()

    files = collect_inputs(args.inputs)
    if not files:
        print("error: no BENCH_*.json inputs found", file=sys.stderr)
        return 2

    failures = []
    checked = 0
    regressed = []  # bench names with at least one failure, in order
    for path in files:
        report, skip = load_report(path)
        if report is None:
            print(f"skip: {path}: {skip}")
            continue
        base_path = os.path.join(args.baselines,
                                 f"BENCH_{report['bench']}.json")
        if args.update:
            update_baseline(report, base_path)
            continue
        baseline, skip = load_report(base_path)
        if baseline is None:
            print(f"skip: {path}: no baseline ({base_path}: {skip}); "
                  "adopt with --update")
            continue
        checked += 1
        bench_failures = compare(report, baseline, report["bench"])
        if bench_failures:
            regressed.append(report["bench"])
        failures.extend(bench_failures)

    if args.update:
        return 0
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        # Every regressing bench is reported in one run, so one CI pass
        # shows the full damage instead of one bench per attempt.
        print(f"bench regression gate: {len(regressed)} of {checked} "
              f"bench(es) regressed: {', '.join(regressed)}",
              file=sys.stderr)
        return 1
    print(f"bench regression gate: {checked} report(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
