#!/bin/sh
# Quick-lane crosscheck gate: capture two adversarial workloads and
# require zero unexplained delta between the trace and the machine's
# hardware event counters (docs/COUNTERS.md). Also pins the failure
# mode: a doctored manifest must fail with the corrupt exit code.
# Run by ctest as: test_crosscheck.sh BUILD_DIR.
set -e
BUILD=$1
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

expect_exit() {
    want=$1
    shift
    set +e
    "$@" > "$TMP/out.txt" 2> "$TMP/err.txt"
    got=$?
    set -e
    if [ "$got" != "$want" ]; then
        echo "FAIL: wanted exit $want, got $got: $*" >&2
        cat "$TMP/out.txt" "$TMP/err.txt" >&2
        exit 1
    fi
}

for w in server iostorm; do
    "$BUILD/tools/atum-capture" --out "$TMP/$w.atum" --workloads "$w" \
        --record-opcodes > /dev/null
    "$BUILD/tools/atum-report" "$TMP/$w.atum" --crosscheck \
        > "$TMP/cc.txt"
    grep -q "crosscheck: PASS" "$TMP/cc.txt"
done

# The iostorm capture must actually exercise the DMA counter.
grep -q "dma_bytes" "$TMP/cc.txt"
if grep -Eq "dma_bytes +0 " "$TMP/cc.txt"; then
    echo "FAIL: iostorm moved no DMA bytes" >&2
    exit 1
fi

# Teeth: inflate one counter in the manifest; the checker must fail
# with the corrupt exit code and blame that counter.
sed 's/"cpu.ev.syscalls":/"cpu.ev.syscalls":9/' \
    "$TMP/iostorm.atum.run.json" > "$TMP/doctored.run.json"
expect_exit 4 "$BUILD/tools/atum-report" "$TMP/iostorm.atum" \
    --crosscheck --manifest "$TMP/doctored.run.json"
grep -q "MISMATCH" "$TMP/out.txt"
grep -q "crosscheck: FAIL" "$TMP/out.txt"

# A manifest without counters (older build) is unusable input, not a
# silent pass (invalid-argument -> the corrupt exit code), and a
# missing manifest is an I/O error.
printf '{"schema":"atum-run-v1"}\n' > "$TMP/empty.run.json"
expect_exit 4 "$BUILD/tools/atum-report" "$TMP/iostorm.atum" \
    --crosscheck --manifest "$TMP/empty.run.json"
expect_exit 3 "$BUILD/tools/atum-report" "$TMP/iostorm.atum" \
    --crosscheck --manifest "$TMP/nosuch.run.json"

echo "crosscheck CLI scenarios passed"
