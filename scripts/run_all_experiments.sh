#!/bin/sh
# Regenerates every table and figure (T1..T6, F1..F6, A1..A7) plus the
# google-benchmark speed sheet. Run from the repository root after
# building into ./build. Output mirrors EXPERIMENTS.md.
set -e
BUILD=${1:-build}
for b in \
    bench_t1_trace_characteristics bench_t2_slowdown \
    bench_t3_buffer_extraction bench_t4_tlb bench_t6_opcode_mix \
    bench_f1_miss_vs_cachesize bench_f2_miss_vs_blocksize \
    bench_f3_miss_vs_assoc bench_f4_multiprogramming \
    bench_f5_working_sets bench_f6_paging \
    bench_a1_compression bench_a2_stack_distance bench_a3_hierarchy \
    bench_a4_sampling bench_a5_write_policy bench_a6_machine_tb \
    bench_a7_set_sampling bench_t5_sim_speed; do
    echo "===================================================== $b"
    "$BUILD/bench/$b"
    echo
done
