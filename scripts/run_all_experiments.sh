#!/bin/sh
# Regenerates every table and figure (T1..T6, F1..F6, A1..A10) plus the
# google-benchmark speed sheet. Run from the repository root after
# building into ./build. Output mirrors EXPERIMENTS.md.
#
# Each harness also writes a machine-readable BENCH_<name>.json into
# $ATUM_BENCH_DIR (default: ./results); the collected files are listed at
# the end for downstream regression tooling. See docs/METRICS.md.
set -e
BUILD=${1:-build}
ATUM_BENCH_DIR=${ATUM_BENCH_DIR:-results}
export ATUM_BENCH_DIR
mkdir -p "$ATUM_BENCH_DIR"
for b in \
    bench_t1_trace_characteristics bench_t2_slowdown \
    bench_t3_buffer_extraction bench_t4_tlb bench_t6_opcode_mix \
    bench_f1_miss_vs_cachesize bench_f2_miss_vs_blocksize \
    bench_f3_miss_vs_assoc bench_f4_multiprogramming \
    bench_f5_working_sets bench_f6_paging \
    bench_a1_compression bench_a2_stack_distance bench_a3_hierarchy \
    bench_a4_sampling bench_a5_write_policy bench_a6_machine_tb \
    bench_a7_set_sampling bench_a8_prefetch bench_a9_parallel_sweep \
    bench_a10_fault_recovery bench_t5_sim_speed; do
    echo "===================================================== $b"
    "$BUILD/bench/$b"
    echo
done
echo "===================================================== BENCH JSON"
ls -l "$ATUM_BENCH_DIR"/BENCH_*.json
