#!/bin/sh
# Quick-lane serve gate: a real atum-serve daemon on a Unix socket, driven
# end to end with atum-submit — submit/wait/status/cancel/metrics, the
# load-shed exit code under saturation, graceful SIGTERM drain, and the
# headline robustness claim: SIGKILL mid-job, restart, and the job still
# reaches a terminal state exactly once (docs/SERVE.md J1/J2).
# Run by ctest as: test_serve.sh BUILD_DIR.
set -e
BUILD=$1
TMP=$(mktemp -d)
SERVE_PID=
trap '[ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$TMP"' EXIT

SERVE="$BUILD/tools/atum-serve"
SUBMIT="$BUILD/tools/atum-submit"
TOP="$BUILD/tools/atum-top"
CHAOS="$BUILD/tools/atum-chaos"

expect_exit() {
    want=$1
    shift
    set +e
    "$@" > "$TMP/out.txt" 2> "$TMP/err.txt"
    got=$?
    set -e
    if [ "$got" != "$want" ]; then
        echo "FAIL: wanted exit $want, got $got: $*" >&2
        cat "$TMP/out.txt" "$TMP/err.txt" >&2
        exit 1
    fi
}

wait_for_socket() {
    i=0
    while [ ! -S "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 50 ] && { echo "FAIL: $1 never appeared" >&2; exit 1; }
        sleep 0.1
    done
}

# Both serve tools speak --version and reject bad usage loudly.
expect_exit 0 "$SERVE" --version
expect_exit 0 "$SUBMIT" --version
expect_exit 2 "$SERVE"
expect_exit 2 "$SUBMIT" --socket "$TMP/s.sock"
expect_exit 2 "$SUBMIT" --socket "$TMP/s.sock" cancel

# -- happy path: submit, wait, status, cancel, metrics ----------------------
DIR="$TMP/serve"
SOCK="$TMP/s.sock"
mkdir -p "$DIR"
"$SERVE" --dir "$DIR" --socket "$SOCK" --workers 2 > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!
wait_for_socket "$SOCK"

expect_exit 0 "$SUBMIT" --socket "$SOCK" ping
expect_exit 0 "$SUBMIT" --socket "$SOCK" --workload grep \
    --max-instructions 20000 --wait submit
grep -q '"state":"done"' "$TMP/out.txt"

# The finished job is visible to status, the status file, and atum-top.
expect_exit 0 "$SUBMIT" --socket "$SOCK" status
grep -q '"workload":"grep"' "$TMP/out.txt"
grep -q '"atum-serve-status-v1"' "$DIR/serve.status.json"
expect_exit 0 "$TOP" --serve "$DIR" --once
grep -q "grep" "$TMP/out.txt"

# -- replay sweeps over the finished capture --------------------------------
# A clean sweep: every config's row streams back as JSONL and the job
# lands "done".
expect_exit 0 "$SUBMIT" --socket "$SOCK" sweep --of 1 \
    --config cache:size_kb=8:assoc=2 --config tlb:entries=16:ways=4 --wait
grep -q '"status":"ok"' "$TMP/out.txt"
grep -q '"state":"done"' "$TMP/out.txt"
# atum-top renders the sweep's CONFIGS column from the status file.
expect_exit 0 "$TOP" --serve "$DIR" --once
grep -q "CONFIGS" "$TMP/out.txt"
grep -q "2/2" "$TMP/out.txt"
# A config with impossible geometry costs exactly its own row: the sweep
# degrades to "partial" (exit 1), the good row still streams.
expect_exit 1 "$SUBMIT" --socket "$SOCK" sweep --of 1 \
    --config cache:size_kb=8 --config cache:block=24 --wait
grep -q '"status":"ok"' "$TMP/out.txt"
grep -q '"outcome":"partial"' "$TMP/out.txt"
# Sweeping a job that does not exist is refused (not-found -> exit 3).
expect_exit 3 "$SUBMIT" --socket "$SOCK" sweep --of 999 \
    --config cache:size_kb=8
# A malformed --config spec dies at usage parsing, before the wire.
expect_exit 2 "$SUBMIT" --socket "$SOCK" sweep --of 1 --config bogus:x=1

# --wait-timeout-ms: a huge job cannot finish in 300 ms; the wait expires
# with the unavailable exit code (7) while the job keeps running.
expect_exit 7 "$SUBMIT" --socket "$SOCK" --workload grep \
    --max-instructions 50000000 --wait --wait-timeout-ms 300 submit
TIMED_ID=$(sed 's/.*"id":\([0-9]*\).*/\1/;q' "$TMP/out.txt")
expect_exit 0 "$SUBMIT" --socket "$SOCK" --id "$TIMED_ID" cancel

# A queued job with a huge budget cancels cleanly (exit 5, interrupted).
"$SUBMIT" --socket "$SOCK" --workload grep --max-instructions 50000000 \
    submit > "$TMP/big.json"
BIG_ID=$(sed 's/.*"id":\([0-9]*\).*/\1/' "$TMP/big.json")
expect_exit 0 "$SUBMIT" --socket "$SOCK" --id "$BIG_ID" cancel
# A running job honors the cancel at its next slice boundary; poll.
i=0
until "$SUBMIT" --socket "$SOCK" --id "$BIG_ID" status \
        | grep -q '"state":"cancelled"'; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "FAIL: job $BIG_ID never cancelled" >&2; \
        exit 1; }
    sleep 0.1
done

# Daemon metrics speak Prometheus text with the serve.* instruments.
expect_exit 0 "$SUBMIT" --socket "$SOCK" metrics
grep -q "atum_serve_jobs_submitted" "$TMP/out.txt"

# Unknown workload is the client's fault (corrupt/invalid -> exit 4).
expect_exit 4 "$SUBMIT" --socket "$SOCK" --workload no-such-workload submit

# Graceful drain: SIGTERM, daemon exits 0, socket is gone.
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
DRAIN_EXIT=$?
set -e
SERVE_PID=
[ "$DRAIN_EXIT" = 0 ] || { echo "FAIL: drain exited $DRAIN_EXIT" >&2; exit 1; }

# -- saturation sheds with the resource-exhausted exit code (8) -------------
DIR2="$TMP/shed"
SOCK2="$TMP/shed.sock"
mkdir -p "$DIR2"
"$SERVE" --dir "$DIR2" --socket "$SOCK2" --workers 1 --max-queue 1 \
    > "$TMP/shed.log" 2>&1 &
SERVE_PID=$!
wait_for_socket "$SOCK2"
# Two slow jobs occupy the worker and the whole queue; the third sheds.
"$SUBMIT" --socket "$SOCK2" --max-instructions 50000000 submit > /dev/null
i=0
until "$SUBMIT" --socket "$SOCK2" status | grep -q '"state":"running"'; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "FAIL: first job never started" >&2; exit 1; }
    sleep 0.1
done
"$SUBMIT" --socket "$SOCK2" --max-instructions 50000000 submit > /dev/null
expect_exit 8 "$SUBMIT" --socket "$SOCK2" submit
grep -q '"code":"resource-exhausted"' "$TMP/out.txt"
kill -9 "$SERVE_PID"
set +e
wait "$SERVE_PID" 2>/dev/null
set -e
SERVE_PID=

# -- the headline: SIGKILL mid-job, restart, nothing is lost ----------------
DIR3="$TMP/crash"
SOCK3="$TMP/crash.sock"
mkdir -p "$DIR3"
"$SERVE" --dir "$DIR3" --socket "$SOCK3" --workers 1 > "$TMP/crash.log" 2>&1 &
SERVE_PID=$!
wait_for_socket "$SOCK3"
"$SUBMIT" --socket "$SOCK3" --workload grep --max-instructions 400000 \
    submit > "$TMP/crash.json"
JOB_ID=$(sed 's/.*"id":\([0-9]*\).*/\1/' "$TMP/crash.json")
sleep 1  # let the job start and cut some checkpoints
kill -9 "$SERVE_PID"
set +e
wait "$SERVE_PID" 2>/dev/null
set -e
SERVE_PID=
rm -f "$SOCK3"

"$SERVE" --dir "$DIR3" --socket "$SOCK3" --workers 1 > "$TMP/crash2.log" 2>&1 &
SERVE_PID=$!
wait_for_socket "$SOCK3"
i=0
while :; do
    "$SUBMIT" --socket "$SOCK3" --id "$JOB_ID" status > "$TMP/out.txt"
    grep -q '"state":"done"' "$TMP/out.txt" && break
    i=$((i + 1))
    [ "$i" -gt 300 ] && { echo "FAIL: job $JOB_ID never finished after" \
        "restart" >&2; cat "$TMP/out.txt" >&2; exit 1; }
    sleep 0.2
done
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
set -e
SERVE_PID=

# -- atum-top treats a missing status file as transient, not corrupt --------
mkdir -p "$TMP/empty"
expect_exit 7 "$TOP" --serve "$TMP/empty" --once

# -- a taste of the kill-restart drill campaign (full run is nightly) -------
expect_exit 0 "$CHAOS" --serve --campaign powercut --seeds 2
grep -q "0 failing" "$TMP/out.txt"
expect_exit 0 "$CHAOS" --serve --sweeps --seeds 4
grep -q "0 failing" "$TMP/out.txt"

# -- hostile-network hardening (docs/SERVE.md "Network failure model") ------
DIR4="$TMP/net"
SOCK4="$TMP/net.sock"
mkdir -p "$DIR4"
"$SERVE" --dir "$DIR4" --socket "$SOCK4" --workers 1 --conn-idle-ms 400 \
    > "$TMP/net.log" 2>&1 &
SERVE_PID=$!
wait_for_socket "$SOCK4"

# A slowloris holding a half-frame past the idle deadline is evicted
# (unavailable -> exit 7), and the daemon stays healthy for the next
# client instead of wedging on the stuck connection.
expect_exit 7 "$SUBMIT" --socket "$SOCK4" probe-slow --hold-ms 3000
expect_exit 0 "$SUBMIT" --socket "$SOCK4" ping

# Garbage bytes earn a structured protocol error before the close
# (corrupt -> exit 4) — a poison frame is the sender's problem only.
expect_exit 4 "$SUBMIT" --socket "$SOCK4" probe-garbage
expect_exit 0 "$SUBMIT" --socket "$SOCK4" ping

# Exactly-once: a duplicate submit with the same idempotency token is
# answered with the original job id and the dup marker...
"$SUBMIT" --socket "$SOCK4" --token net-tok-1 --max-instructions 20000 \
    submit > "$TMP/tok1.json"
TOK_ID=$(sed 's/.*"id":\([0-9]*\).*/\1/;q' "$TMP/tok1.json")
expect_exit 0 "$SUBMIT" --socket "$SOCK4" --token net-tok-1 submit
grep -q '"dup":true' "$TMP/out.txt"
grep -q "\"id\":$TOK_ID[,}]" "$TMP/out.txt"

# ...and the dedup map is rebuilt from the journal across SIGKILL +
# restart: the same token still names the same job in the reborn daemon.
kill -9 "$SERVE_PID"
set +e
wait "$SERVE_PID" 2>/dev/null
set -e
SERVE_PID=
rm -f "$SOCK4"
"$SERVE" --dir "$DIR4" --socket "$SOCK4" --workers 1 > "$TMP/net2.log" 2>&1 &
SERVE_PID=$!
wait_for_socket "$SOCK4"
expect_exit 0 "$SUBMIT" --socket "$SOCK4" --token net-tok-1 submit
grep -q '"dup":true' "$TMP/out.txt"
grep -q "\"id\":$TOK_ID[,}]" "$TMP/out.txt"
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
set -e
SERVE_PID=

# -- a taste of the net drill + protocol fuzz sweep (full runs nightly) -----
expect_exit 0 "$CHAOS" --net --seeds 2
grep -q "0 failing" "$TMP/out.txt"
expect_exit 0 "$CHAOS" --fuzz-protocol --seeds 500
grep -q ": ok" "$TMP/out.txt"

echo "serve CLI scenarios passed"
