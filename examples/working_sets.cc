// working_sets: Denning working-set curves from an ATUM trace.
//
// Shows how much memory a *real* execution covers once kernel references
// and co-scheduled processes are included — the memory-sizing question
// full-system traces answered.
//
//   $ ./examples/working_sets

#include <cstdio>

#include "analysis/working_set.h"
#include "core/atum_tracer.h"
#include "core/session.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/sink.h"
#include "util/table.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace atum;

    cpu::Machine::Config config;
    config.mem_bytes = 4u << 20;
    config.timer_reload = 2000;
    cpu::Machine machine(config);
    trace::VectorSink sink;
    core::AtumTracer tracer(machine, sink);
    kernel::BootSystem(machine, workloads::StandardMix());
    core::RunTraced(machine, tracer, 400'000'000);

    const std::vector<uint64_t> windows = {100, 1000, 10000, 100000};
    analysis::WorkingSetAnalyzer full(windows);
    analysis::WorkingSetAnalyzer user(windows);
    for (const trace::Record& r : sink.records()) {
        full.Feed(r);
        if (r.IsMemory() && !r.kernel() &&
            r.type != trace::RecordType::kPte) {
            user.Feed(r);
        }
    }

    Table table({"window(refs)", "full-system(pages)", "user-only(pages)"});
    for (size_t i = 0; i < windows.size(); ++i) {
        table.AddRow({
            std::to_string(windows[i]),
            Table::Fmt(full.AverageWorkingSet(i), 1),
            Table::Fmt(user.AverageWorkingSet(i), 1),
        });
    }
    std::printf("average working-set size, 512-byte pages:\n\n%s\n",
                table.ToString().c_str());
    std::printf("distinct pages touched: %llu full vs %llu user-only\n",
                static_cast<unsigned long long>(full.distinct_pages()),
                static_cast<unsigned long long>(user.distinct_pages()));
    return 0;
}
