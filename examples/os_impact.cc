// os_impact: the ATUM paper's core story in one program.
//
// Runs the same multiprogrammed workload twice — once captured with the
// ATUM microcode patches (everything: kernel, all processes, PTE refs),
// once with an idealized pre-ATUM user-only probe — and compares what a
// cache designer would conclude from each trace.
//
//   $ ./examples/os_impact

#include <cstdio>

#include "analysis/compare.h"
#include "core/atum_tracer.h"
#include "core/session.h"
#include "core/user_tracer.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/sink.h"
#include "trace/stats.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace {

atum::cpu::Machine::Config
MachineConfig()
{
    atum::cpu::Machine::Config config;
    config.mem_bytes = 4u << 20;
    config.timer_reload = 2000;
    return config;
}

}  // namespace

int
main()
{
    using namespace atum;

    // Capture 1: full system, via microcode.
    trace::VectorSink full_sink;
    {
        cpu::Machine machine(MachineConfig());
        core::AtumTracer tracer(machine, full_sink);
        kernel::BootSystem(machine, workloads::StandardMix());
        core::RunTraced(machine, tracer, 400'000'000);
    }

    // Capture 2: user-only probe on process 1 of the identical mix.
    trace::VectorSink user_sink;
    {
        cpu::Machine machine(MachineConfig());
        core::UserOnlyTracer tracer(machine, user_sink);
        kernel::BootSystem(machine, workloads::StandardMix());
        core::RunBaseline(machine, tracer, 400'000'000);
    }

    trace::TraceStats stats;
    for (const auto& r : full_sink.records())
        stats.Accumulate(r);
    std::printf("full-system trace: %zu records, %.1f%% of memory "
                "references made by the OS, %llu context switches\n",
                full_sink.records().size(), 100.0 * stats.KernelFraction(),
                static_cast<unsigned long long>(stats.context_switches()));
    std::printf("user-only trace:   %zu records (what pre-ATUM "
                "methodology saw)\n\n",
                user_sink.records().size());

    // What each trace tells a cache designer.
    cache::CacheConfig base{.block_bytes = 16, .assoc = 1};
    cache::DriverOptions full_opts;
    full_opts.flush_on_switch = true;
    cache::DriverOptions user_opts;

    Table table({"cache", "user-only-miss%", "full-system-miss%",
                 "underestimate"});
    for (uint32_t kib : {4u, 16u, 64u, 256u}) {
        base.size_bytes = kib << 10;
        const auto u = analysis::SimulateCache(user_sink.records(), base,
                                               user_opts);
        const auto f = analysis::SimulateCache(full_sink.records(), base,
                                               full_opts);
        table.AddRow({
            std::to_string(kib) + "K",
            Table::Fmt(100.0 * u.MissRate(), 2),
            Table::Fmt(100.0 * f.MissRate(), 2),
            Table::Fmt(u.MissRate() > 0 ? f.MissRate() / u.MissRate() : 0,
                       1) + "x",
        });
    }
    std::printf("%s\nConclusion: user-only traces understate real miss "
                "rates,\nincreasingly so for larger caches — ATUM's "
                "central finding.\n",
                table.ToString().c_str());
    return 0;
}
