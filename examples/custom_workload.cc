// custom_workload: write your own guest program and trace it.
//
// Shows the full pipeline a new user follows: assemble a VCX-32 program
// with the label/fixup API, wrap it as a GuestProgram, boot it under the
// kernel with ATUM attached, and inspect what the microcode saw.
//
//   $ ./examples/custom_workload

#include <cstdio>

#include "assembler/assembler.h"
#include "core/atum_tracer.h"
#include "core/session.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/sink.h"
#include "trace/stats.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace atum;
    using namespace atum::assembler;
    using isa::Opcode;
    using kernel::Syscall;

    // A little program: builds a 64-entry table of squares in its heap
    // (demand-zero pages -> the kernel pager will run), sums the table
    // backwards, prints '*' and exits.
    Assembler a(0);
    Label heap = a.NewLabel("heap");

    a.Emit(Opcode::kMoval, {Ref(heap), R(2)});  // table base
    a.Emit(Opcode::kClrl, {R(3)});              // i = 0
    Label fill = a.Here("fill");
    a.Emit(Opcode::kMull3, {R(3), R(3), R(4)});   // r4 = i*i
    a.Emit(Opcode::kMovl, {R(4), Def(2)});
    a.Emit(Opcode::kAddl2, {Imm(4), R(2)});
    a.Emit(Opcode::kAoblss, {Imm(64), R(3)}, fill);

    a.Emit(Opcode::kClrl, {R(5)});  // sum
    a.Emit(Opcode::kMovl, {Imm(64), R(3)});
    Label sum = a.Here("sum");
    a.Emit(Opcode::kSubl2, {Imm(4), R(2)});       // walk backwards
    a.Emit(Opcode::kAddl2, {Def(2), R(5)});
    a.Emit(Opcode::kSobgtr, {R(3)}, sum);

    a.Emit(Opcode::kMovl, {Imm('*'), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    a.Align(kPageBytes);
    a.Bind(heap);

    kernel::GuestProgram program;
    program.name = "squares";
    program.program = a.Finish();
    program.heap_pages = 4;
    program.stack_pages = 2;

    // Boot it under the kernel with ATUM attached.
    cpu::Machine machine({.mem_bytes = 1u << 20, .timer_reload = 2000});
    trace::VectorSink sink;
    core::AtumTracer tracer(machine, sink);
    kernel::BootSystem(machine, {std::move(program)});
    const auto result = core::RunTraced(machine, tracer, 10'000'000);

    trace::TraceStats stats;
    for (const auto& r : sink.records())
        stats.Accumulate(r);
    std::printf("console: \"%s\" (sum of squares 0..63 = %u, computed in "
                "the guest)\n",
                machine.console_output().c_str(), 64 * 63 * 127 / 6);
    std::printf("ran %llu instructions; ATUM captured %zu records "
                "(%.1f%% made by the kernel on this program's behalf)\n",
                static_cast<unsigned long long>(result.instructions),
                sink.records().size(), 100.0 * stats.KernelFraction());
    return result.halted &&
                   machine.console_output() == "*"
               ? 0
               : 1;
}
