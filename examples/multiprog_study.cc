// multiprog_study: how context switching interacts with cache design.
//
// Captures full-system traces at multiprogramming degrees 1, 2 and 4 and
// compares the two classic disciplines for a virtually-addressed cache:
// flushing on every switch vs extending tags with a process id.
//
//   $ ./examples/multiprog_study

#include <cstdio>

#include "analysis/compare.h"
#include "core/atum_tracer.h"
#include "core/session.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/sink.h"
#include "trace/stats.h"
#include "util/table.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace atum;

    Table table({"degree", "ctx-switches", "flush-miss%", "pid-tag-miss%"});
    for (uint32_t degree : {1u, 2u, 4u}) {
        std::vector<kernel::GuestProgram> programs;
        const auto& names = workloads::AllWorkloadNames();
        for (uint32_t i = 0; i < degree; ++i)
            programs.push_back(workloads::MakeWorkload(names[i]));

        cpu::Machine::Config config;
        config.mem_bytes = 4u << 20;
        config.timer_reload = 2000;
        cpu::Machine machine(config);
        trace::VectorSink sink;
        core::AtumTracer tracer(machine, sink);
        kernel::BootSystem(machine, std::move(programs));
        core::RunTraced(machine, tracer, 400'000'000);

        trace::TraceStats stats;
        for (const auto& r : sink.records())
            stats.Accumulate(r);

        cache::CacheConfig flush_cfg{.size_bytes = 64u << 10,
                                     .block_bytes = 16,
                                     .assoc = 2};
        cache::CacheConfig pid_cfg = flush_cfg;
        pid_cfg.pid_tags = true;
        cache::DriverOptions flush_opts;
        flush_opts.flush_on_switch = true;

        const auto flushed =
            analysis::SimulateCache(sink.records(), flush_cfg, flush_opts);
        const auto tagged =
            analysis::SimulateCache(sink.records(), pid_cfg, {});
        table.AddRow({
            std::to_string(degree),
            std::to_string(stats.context_switches()),
            Table::Fmt(100.0 * flushed.MissRate(), 3),
            Table::Fmt(100.0 * tagged.MissRate(), 3),
        });
    }
    std::printf("64K 2-way cache under multiprogramming:\n\n%s\n",
                table.ToString().c_str());
    std::printf("PID tags preserve each process's (and the kernel's)\n"
                "footprint across switches; flushing pays the full refill\n"
                "cost every quantum.\n");
    return 0;
}
