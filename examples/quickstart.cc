// Quickstart: capture a full-system address trace with ATUM.
//
// Builds a VCX-32 machine, reserves the trace buffer, installs the
// microcode patches, boots the guest kernel with one workload, runs to
// completion, and prints the first few records plus summary statistics.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/atum_tracer.h"
#include "core/session.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/sink.h"
#include "trace/stats.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace atum;

    // 1. A machine: 2 MiB of memory, a 64-entry TB, 2000-instruction
    //    scheduling quantum.
    cpu::Machine::Config config;
    config.mem_bytes = 2u << 20;
    config.timer_reload = 2000;
    cpu::Machine machine(config);

    // 2. The tracer reserves its buffer at the top of physical memory.
    //    Construct it BEFORE booting so the kernel never sees that region.
    trace::VectorSink sink;
    core::AtumConfig tracer_config;
    tracer_config.buffer_bytes = 128u << 10;
    core::AtumTracer tracer(machine, sink, tracer_config);

    // 3. Boot the guest kernel with a workload (a hash/symbol-table
    //    program, pid 1).
    kernel::BootSystem(machine, {workloads::MakeHash(1000)});

    // 4. Run traced until every process exits.
    const core::SessionResult result =
        core::RunTraced(machine, tracer, 100'000'000);

    std::printf("halted=%d instructions=%llu ucycles=%llu records=%llu "
                "buffer-fills=%llu\n\n",
                result.halted,
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(result.ucycles),
                static_cast<unsigned long long>(result.records),
                static_cast<unsigned long long>(result.buffer_fills));

    // 5. Look at the head of the trace.
    static const char* const kTypeNames[] = {
        "ifetch", "read  ", "write ", "pte   ",
        "ctxsw ", "tlbmis", "except", "opcode"};
    std::printf("first 20 records:\n");
    for (size_t i = 0; i < 20 && i < sink.records().size(); ++i) {
        const trace::Record& r = sink.records()[i];
        std::printf("  %2zu: %s %c addr=0x%08x size=%u info=%u\n", i,
                    kTypeNames[static_cast<unsigned>(r.type)],
                    r.kernel() ? 'K' : 'U', r.addr, r.size(), r.info);
    }

    // 6. Summarize.
    trace::TraceStats stats;
    for (const trace::Record& r : sink.records())
        stats.Accumulate(r);
    std::printf("\n%s", stats.ToString().c_str());
    std::printf("console output: \"%s\"\n",
                machine.console_output().c_str());
    return 0;
}
