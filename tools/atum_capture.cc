// atum-capture: boot a workload mix under the guest kernel, trace it with
// the ATUM microcode patches, and write the trace to a file.
//
// Usage:
//   atum-capture --out trace.atum [--workloads hash,matrix,listproc]
//                [--scale 2] [--timer 2000] [--mem-mb 4] [--buffer-kb 256]
//                [--pool-frames N] [--pipeline N] [--user-only PID]
//
// --pipeline N adds the IPC producer/consumer pair with N messages.
// --user-only PID captures with the pre-ATUM baseline probe instead.
//
// Exit codes: 0 capture complete, 1 machine did not halt or internal
// failure, 2 usage error, 3 output file could not be opened or durably
// written.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/atum_tracer.h"
#include "core/session.h"
#include "core/user_tracer.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/sink.h"
#include "trace/stats.h"
#include "util/logging.h"
#include "util/status.h"
#include "workloads/workloads.h"

namespace atum {
namespace {

/** Command-line mistakes exit with the usage code, not Fatal's 1. */
template <typename... Args>
[[noreturn]] void
UsageError(Args&&... args)
{
    std::fprintf(stderr, "atum-capture: %s\n",
                 internal::StrCat(std::forward<Args>(args)...).c_str());
    std::exit(util::kExitUsage);
}

struct Options {
    std::string out;
    std::vector<std::string> workload_names = {"hash", "matrix", "listproc"};
    uint32_t scale = 2;
    uint32_t timer = 2000;
    uint32_t mem_mb = 4;
    uint32_t buffer_kb = 256;
    uint32_t pool_frames = 0;
    uint32_t pipeline = 0;
    uint32_t user_only_pid = 0;  // 0 = full-system ATUM capture
};

std::vector<std::string>
SplitCommas(const std::string& s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

Options
ParseArgs(int argc, char** argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                UsageError(arg, " requires a value");
            return argv[++i];
        };
        if (arg == "--out")
            opts.out = next();
        else if (arg == "--workloads")
            opts.workload_names = SplitCommas(next());
        else if (arg == "--scale")
            opts.scale = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--timer")
            opts.timer = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--mem-mb")
            opts.mem_mb = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--buffer-kb")
            opts.buffer_kb = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--pool-frames")
            opts.pool_frames = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--pipeline")
            opts.pipeline = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--user-only")
            opts.user_only_pid = std::strtoul(next().c_str(), nullptr, 0);
        else
            UsageError("unknown argument: ", arg,
                       " (see the header comment for usage)");
    }
    if (opts.out.empty())
        UsageError("--out is required");
    return opts;
}

int
Run(const Options& opts)
{
    cpu::Machine::Config config;
    config.mem_bytes = opts.mem_mb << 20;
    config.timer_reload = opts.timer;
    cpu::Machine machine(config);

    std::vector<kernel::GuestProgram> programs;
    for (const std::string& name : opts.workload_names)
        if (!name.empty())
            programs.push_back(workloads::MakeWorkload(name, opts.scale));
    if (opts.pipeline > 0) {
        for (auto& gp : workloads::MakePipelinePair(opts.pipeline))
            programs.push_back(std::move(gp));
    }

    kernel::BootOptions boot_options;
    boot_options.max_pool_frames = opts.pool_frames;

    util::StatusOr<std::unique_ptr<trace::FileSink>> sink =
        trace::FileSink::Open(opts.out);
    if (!sink.ok()) {
        std::fprintf(stderr, "atum-capture: %s\n",
                     sink.status().ToString().c_str());
        return util::ExitCodeFor(sink.status());
    }
    core::SessionResult result;
    if (opts.user_only_pid != 0) {
        core::UserTracerConfig tracer_config;
        tracer_config.target_pid =
            static_cast<uint16_t>(opts.user_only_pid);
        core::UserOnlyTracer tracer(machine, **sink, tracer_config);
        kernel::BootSystem(machine, programs, boot_options);
        result = core::RunBaseline(machine, tracer, 2'000'000'000);
    } else {
        core::AtumConfig tracer_config;
        tracer_config.buffer_bytes = opts.buffer_kb << 10;
        core::AtumTracer tracer(machine, **sink, tracer_config);
        kernel::BootSystem(machine, programs, boot_options);
        result = core::RunTraced(machine, tracer, 2'000'000'000);
    }
    const util::Status close_status = (*sink)->Close();

    std::printf("halted=%d instructions=%llu ucycles=%llu records=%llu\n",
                result.halted,
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(result.ucycles),
                static_cast<unsigned long long>((*sink)->count()));
    if (result.lost_records > 0 || result.degraded) {
        std::printf("lost=%llu loss-events=%u degraded=%d\n",
                    static_cast<unsigned long long>(result.lost_records),
                    result.loss_events, result.degraded);
    }
    std::printf("console: \"%s\"\n", machine.console_output().c_str());
    if (!close_status.ok()) {
        std::fprintf(stderr, "atum-capture: closing %s: %s\n",
                     opts.out.c_str(), close_status.ToString().c_str());
        return util::ExitCodeFor(close_status);
    }
    std::printf("wrote %s\n", opts.out.c_str());
    return result.halted ? 0 : 1;
}

}  // namespace
}  // namespace atum

int
main(int argc, char** argv)
{
    return atum::Run(atum::ParseArgs(argc, argv));
}
