// atum-capture: boot a workload mix under the guest kernel, trace it with
// the ATUM microcode patches, and write the trace to a file.
//
// Usage:
//   atum-capture --out trace.atum [--workloads hash,matrix,listproc]
//                [--scale 2] [--timer 2000] [--mem-mb 4] [--buffer-kb 256]
//                [--pool-frames N] [--pipeline N] [--user-only PID]
//                [--max-instructions N] [--record-opcodes]
//                [--checkpoint BASE] [--checkpoint-every FILLS]
//                [--checkpoint-keep K] [--watchdog UCYCLES]
//                [--deadline-ms MS] [--trace-out SPANS.json]
//   atum-capture --resume CKPT [--checkpoint BASE] [... supervision flags]
//   atum-capture --version
//
// --pipeline N adds the IPC producer/consumer pair with N messages.
// --user-only PID captures with the pre-ATUM baseline probe instead.
// --record-opcodes adds a kOpcode marker per retired instruction so
// `atum-report --crosscheck` can bound the instruction counter too.
//
// Telemetry: --metrics-out FILE streams registry snapshots as JSON Lines
// (schema atum-metrics-v1; follow live with atum-top FILE) at
// --metrics-interval-ms granularity (default 1000). Every capture also
// writes a <out>.run.json manifest — tool version, config, timing, exit
// code, final counters and the sampled per-phase time breakdown —
// whether or not --metrics-out was given.
//
// Profiling: --trace-out FILE exports the capture's causal span trace as
// Chrome trace-event JSON (open in Perfetto / chrome://tracing). A
// wedge, tracer degrade or crash additionally dumps the in-memory
// flight recorder to <out>.flight.json (see docs/TRACING.md).
//
// Long captures: --checkpoint BASE writes rotating BASE.NNNNNN.atck
// snapshots every --checkpoint-every buffer fills (default 8), keeping
// the last --checkpoint-keep (default 3). SIGINT/SIGTERM stop at a safe
// drain boundary, seal the trace and write a final checkpoint. --resume
// CKPT restores a checkpoint, truncates the trace to its high-water mark
// and continues the capture byte-identically.
//
// Exit codes follow the shared contract in util/status.h:
//   0  capture ran to completion (guest halted)
//   1  guest did not halt within the instruction budget, or internal error
//   2  usage error
//   3  I/O failure (output file, checkpoint unreadable)
//   4  checkpoint/trace recognized but corrupt
//   5  stopped cleanly on SIGINT/SIGTERM or --deadline-ms (resumable)
//   6  watchdog: guest wedged (no clean retirement within --watchdog)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/atum_tracer.h"
#include "core/checkpoint.h"
#include "core/session.h"
#include "core/user_tracer.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "obs/stats_emitter.h"
#include "trace/sink.h"
#include "trace/stats.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/signals.h"
#include "util/status.h"
#include "workloads/workloads.h"

namespace atum {
namespace {

volatile std::sig_atomic_t g_stop = 0;

/** Command-line mistakes exit with the usage code, not Fatal's 1. */
template <typename... Args>
[[noreturn]] void
UsageError(Args&&... args)
{
    std::fprintf(stderr, "atum-capture: %s\n",
                 internal::StrCat(std::forward<Args>(args)...).c_str());
    std::exit(util::kExitUsage);
}

struct Options {
    std::string out;
    std::vector<std::string> workload_names = {"hash", "matrix", "listproc"};
    uint32_t scale = 2;
    uint32_t timer = 2000;
    uint32_t mem_mb = 4;
    uint32_t buffer_kb = 256;
    uint32_t pool_frames = 0;
    uint32_t pipeline = 0;
    uint32_t user_only_pid = 0;  // 0 = full-system ATUM capture
    uint64_t max_instructions = 2'000'000'000;

    // -- supervision / checkpointing ---------------------------------------
    std::string resume;      // checkpoint file to continue from
    std::string checkpoint;  // rotating checkpoint base path
    uint64_t checkpoint_every = 8;
    uint32_t checkpoint_keep = 3;
    uint64_t watchdog_ucycles = 0;
    uint64_t deadline_ms = 0;
    uint64_t kill_after_fills = 0;  // test hook: emulate SIGKILL
    bool wedge_demo = false;        // boot a guest that can never progress
    bool record_opcodes = false;    // emit kOpcode markers (crosscheck)

    // -- telemetry ---------------------------------------------------------
    std::string metrics_out;  // JSONL snapshot stream ("" = off)
    uint64_t metrics_interval_ms = 1000;
    std::string trace_out;  // Chrome trace-event span export ("" = off)
};

std::vector<std::string>
SplitCommas(const std::string& s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

Options
ParseArgs(int argc, char** argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                UsageError(arg, " requires a value");
            return argv[++i];
        };
        if (arg == "--out")
            opts.out = next();
        else if (arg == "--workloads")
            opts.workload_names = SplitCommas(next());
        else if (arg == "--scale")
            opts.scale = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--timer")
            opts.timer = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--mem-mb")
            opts.mem_mb = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--buffer-kb")
            opts.buffer_kb = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--pool-frames")
            opts.pool_frames = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--pipeline")
            opts.pipeline = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--user-only")
            opts.user_only_pid = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--max-instructions")
            opts.max_instructions =
                std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--resume")
            opts.resume = next();
        else if (arg == "--checkpoint")
            opts.checkpoint = next();
        else if (arg == "--checkpoint-every")
            opts.checkpoint_every =
                std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--checkpoint-keep")
            opts.checkpoint_keep = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--watchdog")
            opts.watchdog_ucycles =
                std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--deadline-ms")
            opts.deadline_ms = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--kill-after-fills")
            opts.kill_after_fills =
                std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--trace-out")
            opts.trace_out = next();
        else if (arg == "--metrics-out")
            opts.metrics_out = next();
        else if (arg == "--metrics-interval-ms")
            opts.metrics_interval_ms =
                std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--wedge-demo")
            opts.wedge_demo = true;
        else if (arg == "--record-opcodes")
            opts.record_opcodes = true;
        else if (arg == "--version") {
            std::printf("%s\n", util::VersionString("atum-capture").c_str());
            std::exit(util::kExitOk);
        }
        else
            UsageError("unknown argument: ", arg,
                       " (see the header comment for usage)");
    }
    if (opts.resume.empty() && opts.out.empty())
        UsageError("--out is required");
    if (!opts.resume.empty() && opts.user_only_pid != 0)
        UsageError("--resume continues an ATUM capture; "
                   "--user-only has no checkpoint support");
    if (!opts.resume.empty() && opts.wedge_demo)
        UsageError("--wedge-demo and --resume are mutually exclusive");
    if (opts.checkpoint_every == 0)
        UsageError("--checkpoint-every must be at least 1");
    if (opts.user_only_pid != 0 &&
        (!opts.checkpoint.empty() || opts.watchdog_ucycles != 0))
        UsageError("--user-only does not support checkpoint/watchdog "
                   "supervision");
    if (opts.user_only_pid != 0 && !opts.metrics_out.empty())
        UsageError("--metrics-out needs the supervised ATUM capture loop; "
                   "--user-only runs unsupervised");
    return opts;
}

int
ExitCodeForStop(const core::SessionResult& result)
{
    switch (result.stop_cause) {
    case core::StopCause::kHalted:
        return util::kExitOk;
    case core::StopCause::kInstrLimit:
        return util::kExitError;  // legacy "did not halt"
    case core::StopCause::kSignal:
    case core::StopCause::kDeadline:
        return util::kExitInterrupted;
    case core::StopCause::kWatchdog:
        return util::kExitWedged;
    }
    return util::kExitError;
}

void
PrintResult(const core::SessionResult& result, const cpu::Machine& machine,
            uint64_t sink_records)
{
    std::printf("halted=%d instructions=%llu ucycles=%llu records=%llu\n",
                result.halted,
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(result.ucycles),
                static_cast<unsigned long long>(sink_records));
    if (result.lost_records > 0 || result.degraded) {
        std::printf("lost=%llu loss-events=%u degraded=%d\n",
                    static_cast<unsigned long long>(result.lost_records),
                    result.loss_events, result.degraded);
    }
    if (result.stop_cause != core::StopCause::kHalted &&
        result.stop_cause != core::StopCause::kInstrLimit)
        std::printf("stopped=%s\n",
                    core::StopCauseName(result.stop_cause));
    if (!result.last_checkpoint.empty())
        std::printf("checkpoint=%s\n", result.last_checkpoint.c_str());
    std::printf("console: \"%s\"\n", machine.console_output().c_str());
}

/**
 * A guest that can never retire an instruction cleanly: every SCB vector
 * points at a reserved opcode, so the first dispatch faults into itself
 * forever. Exercises the deadman watchdog end to end.
 */
void
BootWedge(cpu::Machine& machine)
{
    constexpr uint32_t kBadPc = 0x200;
    machine.WriteIpr(isa::Ipr::kScbb, 0x0);
    machine.WriteIpr(isa::Ipr::kKsp, 0x8000);
    for (uint32_t v = 0;
         v < static_cast<uint32_t>(cpu::ExcVector::kNumVectors); ++v)
        machine.memory().Write32(4 * v, kBadPc);
    machine.memory().Write8(kBadPc, 0xFF);  // unassigned opcode
    machine.set_pc(kBadPc);
}

/** Builds the supervisor options shared by fresh and resumed captures. */
core::SupervisorOptions
MakeSupervision(const Options& opts, core::CheckpointRotator* rotator,
                trace::FileSink* sink, const core::CheckpointMeta& meta,
                uint64_t max_instructions)
{
    core::SupervisorOptions sup;
    sup.max_instructions = max_instructions;
    sup.watchdog_ucycles = opts.watchdog_ucycles;
    sup.deadline_ms = opts.deadline_ms;
    sup.stop_flag = &g_stop;
    sup.checkpoints = rotator;
    sup.checkpoint_every_fills = opts.checkpoint_every;
    sup.file_sink = rotator ? sink : nullptr;
    sup.meta = meta;
    sup.kill_after_fills = opts.kill_after_fills;
    return sup;
}

/** Flat key/value capture configuration for the run manifest. */
std::vector<std::pair<std::string, std::string>>
ManifestConfig(const Options& opts)
{
    std::string workloads;
    for (const std::string& name : opts.workload_names) {
        if (!workloads.empty())
            workloads += ',';
        workloads += name;
    }
    std::vector<std::pair<std::string, std::string>> config = {
        {"workloads", workloads},
        {"scale", std::to_string(opts.scale)},
        {"timer", std::to_string(opts.timer)},
        {"mem_mb", std::to_string(opts.mem_mb)},
        {"buffer_kb", std::to_string(opts.buffer_kb)},
        {"max_instructions", std::to_string(opts.max_instructions)},
    };
    if (opts.pipeline > 0)
        config.emplace_back("pipeline", std::to_string(opts.pipeline));
    if (opts.user_only_pid != 0)
        config.emplace_back("user_only_pid",
                            std::to_string(opts.user_only_pid));
    if (!opts.resume.empty())
        config.emplace_back("resume", opts.resume);
    if (!opts.checkpoint.empty())
        config.emplace_back("checkpoint", opts.checkpoint);
    if (opts.watchdog_ucycles != 0)
        config.emplace_back("watchdog_ucycles",
                            std::to_string(opts.watchdog_ucycles));
    if (opts.deadline_ms != 0)
        config.emplace_back("deadline_ms",
                            std::to_string(opts.deadline_ms));
    if (!opts.metrics_out.empty())
        config.emplace_back("metrics_out", opts.metrics_out);
    if (!opts.trace_out.empty())
        config.emplace_back("trace_out", opts.trace_out);
    if (opts.record_opcodes)
        config.emplace_back("record_opcodes", "1");
    return config;
}

int
Finish(const Options& opts, const core::SessionResult& result,
       const cpu::Machine& machine, trace::FileSink& sink,
       const std::string& out_path, uint64_t started_ms,
       const obs::PhaseProfiler* profiler = nullptr)
{
    const util::Status close_status = sink.Close();
    PrintResult(result, machine, sink.count());
    if (!result.drain_status.ok())
        std::fprintf(stderr, "atum-capture: trace drain: %s\n",
                     result.drain_status.ToString().c_str());
    if (!result.checkpoint_status.ok())
        std::fprintf(stderr, "atum-capture: checkpointing: %s\n",
                     result.checkpoint_status.ToString().c_str());
    int exit_code = ExitCodeForStop(result);
    if (!close_status.ok()) {
        std::fprintf(stderr, "atum-capture: closing %s: %s\n",
                     out_path.c_str(), close_status.ToString().c_str());
        exit_code = util::ExitCodeFor(close_status);
    } else {
        std::printf("wrote %s\n", out_path.c_str());
    }

    // The manifest is written last, once the exit code is known, so it
    // describes the run's actual outcome. A manifest-write failure is a
    // warning only — it must never change the capture's exit code.
    obs::RunManifest manifest;
    manifest.tool = "atum-capture";
    manifest.version = util::kGitDescribe;
    manifest.build_type = util::kBuildType;
    manifest.trace_path = out_path;
    manifest.started_ms = started_ms;
    manifest.ended_ms = obs::WallClockMs();
    manifest.exit_code = exit_code;
    manifest.stop_cause = core::StopCauseName(result.stop_cause);
    manifest.config = ManifestConfig(opts);
    if (profiler != nullptr && profiler->run_ns() > 0) {
        for (const obs::PhaseProfiler::Row& row : profiler->Breakdown())
            manifest.phase_ns.emplace_back(row.name, row.ns);
        manifest.phase_coverage_pct = 100.0 * profiler->CoverageFraction();
    }
    // Refresh the machine/sink tallies so the finals are current even on
    // paths (e.g. --user-only) that bypass the supervised publish.
    machine.PublishMetrics(obs::Registry::Global());
    sink.PublishMetrics(obs::Registry::Global());
    manifest.finals = obs::Registry::Global().Snapshot();
    const util::Status manifest_status =
        obs::WriteRunManifest(out_path + ".run.json", manifest);
    if (!manifest_status.ok())
        Warn("writing run manifest: ", manifest_status.ToString());

    if (!opts.trace_out.empty()) {
        const util::Status spans_status =
            obs::WriteSpansFile(opts.trace_out, "atum-capture");
        if (spans_status.ok())
            std::printf("spans %s\n", opts.trace_out.c_str());
        else
            Warn("writing span trace: ", spans_status.ToString());
    }

    return exit_code;
}

/** Opens the JSONL metrics emitter when --metrics-out was given. */
util::StatusOr<std::unique_ptr<obs::StatsEmitter>>
OpenEmitter(const Options& opts)
{
    if (opts.metrics_out.empty())
        return std::unique_ptr<obs::StatsEmitter>();
    obs::StatsEmitterOptions eopts;
    eopts.interval_ms = opts.metrics_interval_ms;
    return obs::StatsEmitter::Open(opts.metrics_out,
                                   obs::Registry::Global(), eopts);
}

int
RunResumed(const Options& opts, uint64_t started_ms)
{
    util::StatusOr<core::Checkpoint> ckpt =
        core::Checkpoint::Load(opts.resume);
    if (!ckpt.ok()) {
        std::fprintf(stderr, "atum-capture: loading %s: %s\n",
                     opts.resume.c_str(),
                     ckpt.status().ToString().c_str());
        return util::ExitCodeFor(ckpt.status());
    }
    const core::CheckpointMeta& meta = ckpt->meta();
    if (!meta.has_sink_state) {
        std::fprintf(stderr,
                     "atum-capture: %s carries no trace-sink state; "
                     "nothing to resume into\n",
                     opts.resume.c_str());
        return util::kExitCorrupt;
    }
    const std::string out =
        opts.out.empty() ? meta.trace_path : opts.out;

    util::StatusOr<std::unique_ptr<trace::FileSink>> sink =
        trace::FileSink::OpenResumed(out, ckpt->sink_state());
    if (!sink.ok()) {
        std::fprintf(stderr, "atum-capture: reopening %s: %s\n",
                     out.c_str(), sink.status().ToString().c_str());
        return util::ExitCodeFor(sink.status());
    }

    // Construction order matters: the tracer's buffer reservation must
    // exist before the memory image is restored over it, and both must
    // match the geometry recorded in the checkpoint meta.
    cpu::Machine machine(meta.machine_config);
    core::AtumTracer tracer(machine, **sink, meta.tracer_config);
    util::Status status = ckpt->RestoreMachine(machine);
    if (status.ok())
        status = ckpt->RestoreTracer(tracer);
    if (!status.ok()) {
        std::fprintf(stderr, "atum-capture: restoring %s: %s\n",
                     opts.resume.c_str(), status.ToString().c_str());
        return util::ExitCodeFor(status);
    }

    // Continue the original rotation series: a checkpoint path looks like
    // BASE.NNNNNN.atck, so the base is recoverable from --resume itself
    // when --checkpoint is not repeated.
    std::string base = opts.checkpoint;
    if (base.empty()) {
        base = opts.resume;
        const size_t dot = base.rfind(".atck");
        size_t seq_dot = std::string::npos;
        if (dot != std::string::npos)
            seq_dot = base.find_last_of('.', dot - 1);
        if (seq_dot != std::string::npos && seq_dot + 1 < dot)
            base = base.substr(0, seq_dot);
        else
            base = out + ".ckpt";
    }
    core::CheckpointRotator rotator(base, opts.checkpoint_keep,
                                    meta.sequence + 1);
    core::CheckpointMeta next_meta = meta;
    next_meta.trace_path = out;
    core::SupervisorOptions sup =
        MakeSupervision(opts, &rotator, sink->get(), next_meta,
                        meta.instructions_remaining);

    util::StatusOr<std::unique_ptr<obs::StatsEmitter>> emitter =
        OpenEmitter(opts);
    if (!emitter.ok()) {
        std::fprintf(stderr, "atum-capture: opening %s: %s\n",
                     opts.metrics_out.c_str(),
                     emitter.status().ToString().c_str());
        return util::ExitCodeFor(emitter.status());
    }
    sup.emitter = emitter->get();

    const std::string flight_path = out + ".flight.json";
    obs::flight::SetDumpPath(flight_path.c_str());
    obs::flight::InstallCrashHandler();
    obs::PhaseProfiler profiler;
    sup.profiler = &profiler;

    const core::SessionResult result =
        core::RunSupervised(machine, tracer, sup);
    return Finish(opts, result, machine, **sink, out, started_ms,
                  &profiler);
}

int
Run(const Options& opts)
{
    const uint64_t started_ms = obs::WallClockMs();
    if (!opts.resume.empty())
        return RunResumed(opts, started_ms);

    cpu::Machine::Config config;
    config.mem_bytes = opts.mem_mb << 20;
    config.timer_reload = opts.timer;
    cpu::Machine machine(config);

    std::vector<kernel::GuestProgram> programs;
    for (const std::string& name : opts.workload_names)
        if (!name.empty())
            programs.push_back(workloads::MakeWorkload(name, opts.scale));
    if (opts.pipeline > 0) {
        for (auto& gp : workloads::MakePipelinePair(opts.pipeline))
            programs.push_back(std::move(gp));
    }

    kernel::BootOptions boot_options;
    boot_options.max_pool_frames = opts.pool_frames;

    util::StatusOr<std::unique_ptr<trace::FileSink>> sink =
        trace::FileSink::Open(opts.out);
    if (!sink.ok()) {
        std::fprintf(stderr, "atum-capture: %s\n",
                     sink.status().ToString().c_str());
        return util::ExitCodeFor(sink.status());
    }

    if (opts.user_only_pid != 0) {
        core::UserTracerConfig tracer_config;
        tracer_config.target_pid =
            static_cast<uint16_t>(opts.user_only_pid);
        core::UserOnlyTracer tracer(machine, **sink, tracer_config);
        kernel::BootSystem(machine, programs, boot_options);
        const core::SessionResult result =
            core::RunBaseline(machine, tracer, opts.max_instructions);
        return Finish(opts, result, machine, **sink, opts.out, started_ms);
    }

    core::AtumConfig tracer_config;
    tracer_config.buffer_bytes = opts.buffer_kb << 10;
    tracer_config.record_opcodes = opts.record_opcodes;
    core::AtumTracer tracer(machine, **sink, tracer_config);
    if (opts.wedge_demo)
        BootWedge(machine);
    else
        kernel::BootSystem(machine, programs, boot_options);

    core::CheckpointMeta meta;
    meta.machine_config = config;
    meta.tracer_config = tracer_config;
    meta.trace_path = opts.out;

    std::unique_ptr<core::CheckpointRotator> rotator;
    if (!opts.checkpoint.empty())
        rotator = std::make_unique<core::CheckpointRotator>(
            opts.checkpoint, opts.checkpoint_keep);

    core::SupervisorOptions sup =
        MakeSupervision(opts, rotator.get(), sink->get(), meta,
                        opts.max_instructions);

    util::StatusOr<std::unique_ptr<obs::StatsEmitter>> emitter =
        OpenEmitter(opts);
    if (!emitter.ok()) {
        std::fprintf(stderr, "atum-capture: opening %s: %s\n",
                     opts.metrics_out.c_str(),
                     emitter.status().ToString().c_str());
        return util::ExitCodeFor(emitter.status());
    }
    sup.emitter = emitter->get();

    const std::string flight_path = opts.out + ".flight.json";
    obs::flight::SetDumpPath(flight_path.c_str());
    obs::flight::InstallCrashHandler();
    obs::PhaseProfiler profiler;
    sup.profiler = &profiler;

    const core::SessionResult result =
        core::RunSupervised(machine, tracer, sup);
    return Finish(opts, result, machine, **sink, opts.out, started_ms,
                  &profiler);
}

}  // namespace
}  // namespace atum

int
main(int argc, char** argv)
{
    atum::util::IgnoreSigpipe();
    atum::util::InstallStopSignalHandlers(&atum::g_stop);
    return atum::Run(atum::ParseArgs(argc, argv));
}
