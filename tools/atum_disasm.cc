// atum-disasm: disassemble a guest workload image or the kernel.
//
// Usage:
//   atum-disasm --workload hash [--scale 1]
//   atum-disasm --kernel [--mem-mb 4]
//   atum-disasm --version
//
// Linear sweep; data regions (CASEL tables, embedded constants) stop the
// sweep at the first undecodable byte, which is reported.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "isa/decoder.h"
#include "isa/disassembler.h"
#include "kernel/kernel_builder.h"
#include "kernel/layout.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/signals.h"
#include "workloads/workloads.h"

namespace atum {
namespace {

void
Disassemble(const assembler::Program& program)
{
    // Invert the symbol map so labels print at their addresses.
    std::map<uint32_t, std::string> labels;
    for (const auto& [name, addr] : program.symbols)
        labels[addr] = name;

    uint32_t offset = 0;
    while (offset < program.size()) {
        const uint32_t addr = program.origin + offset;
        if (auto it = labels.find(addr); it != labels.end())
            std::printf("%s:\n", it->second.c_str());
        auto inst = isa::DecodeBuffer(program.bytes, offset);
        if (!inst) {
            std::printf("0x%08x:  .byte 0x%02x   ; undecodable — data "
                        "region or table, sweep ends\n",
                        addr, program.bytes[offset]);
            break;
        }
        std::printf("0x%08x:  %s\n", addr,
                    isa::FormatInst(*inst, addr).c_str());
        offset += inst->length;
    }
    std::printf("\n%u of %u bytes disassembled\n", offset, program.size());
}

int
Run(int argc, char** argv)
{
    std::string workload;
    uint32_t scale = 1;
    bool kernel = false;
    uint32_t mem_mb = 4;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                Fatal(arg, " requires a value");
            return argv[++i];
        };
        if (arg == "--workload")
            workload = next();
        else if (arg == "--scale")
            scale = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--kernel")
            kernel = true;
        else if (arg == "--mem-mb")
            mem_mb = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--version") {
            std::printf("%s\n", util::VersionString("atum-disasm").c_str());
            return 0;
        }
        else
            Fatal("unknown argument: ", arg);
    }

    if (kernel) {
        const auto layout =
            kernel::ComputeLayout((mem_mb << 20) / kPageBytes);
        Disassemble(kernel::BuildKernelImage(layout));
        return 0;
    }
    if (workload.empty())
        Fatal("usage: atum-disasm --workload NAME | --kernel");
    Disassemble(workloads::MakeWorkload(workload, scale).program);
    return 0;
}

}  // namespace
}  // namespace atum

int
main(int argc, char** argv)
{
    // Listings are long; `atum-disasm --kernel | head` must exit cleanly.
    atum::util::IgnoreSigpipe();
    return atum::util::FinishStdout(atum::Run(argc, argv));
}
