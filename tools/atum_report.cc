// atum-report: analyze a captured trace file.
//
// Usage:
//   atum-report trace.atum [--head N] [--cache SIZE_KB:BLOCK:ASSOC]
//                [--sweep SPEC,SPEC,...] [--jobs N]
//                [--flush-on-switch] [--pid-tags] [--no-kernel]
//                [--tlb ENTRIES] [--working-sets] [--stack-distance]
//                [--stats] [--spans SPANS.json]
//   atum-report trace.atf --verify
//   atum-report trace.atf --salvage repaired.atf
//   atum-report trace.atf --crosscheck [--prefix]
//   atum-report --version
//
// --stats appends a dump of the process's metrics registry (replay.*
// counters, per-config wall-time histogram...) after the analyses — a
// quick look at what the replay engine actually did.
//
// --spans FILE exports the report's own span trace (load, each
// analysis, every sweep config across the worker pool) as Chrome
// trace-event JSON for Perfetto / chrome://tracing (docs/TRACING.md).
//
// Default output is the trace-characterization summary (T1-style). Each
// additional flag appends the corresponding analysis. --sweep replays
// every listed cache spec over the trace concurrently (--jobs workers)
// and prints one table row per config, in input order.
//
// --verify runs the tolerant container scanner and prints its damage
// report without analyzing anything; --salvage additionally writes every
// recoverable record to a fresh sealed container.
//
// --crosscheck re-derives the hardware event counters from the record
// stream and compares them against the cpu.ev.* finals in the capture's
// run manifest (<trace>.run.json); any counter outside its derived
// interval fails the run with the corrupt exit code. --prefix marks the
// trace as a salvaged prefix (lower bounds only). See docs/COUNTERS.md.
//
// Exit codes: 0 success (--verify: file intact), 1 internal failure,
// 2 usage error, 3 input missing/unreadable, 4 input corrupt
// (--verify: damage found; --crosscheck: counter mismatch).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/crosscheck.h"
#include "analysis/parallel_profiles.h"
#include "analysis/stack_distance.h"
#include "analysis/working_set.h"
#include "cache/cache.h"
#include "cache/trace_driver.h"
#include "io/vfs.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "replay/sweep.h"
#include "util/build_info.h"
#include "tlbsim/tlb_sim.h"
#include "trace/container.h"
#include "trace/sink.h"
#include "trace/stats.h"
#include "util/logging.h"
#include "util/signals.h"
#include "util/status.h"
#include "util/table.h"

namespace atum {
namespace {

struct Options {
    std::string path;
    uint32_t head = 0;
    bool have_cache = false;
    cache::CacheConfig cache_config;
    cache::DriverOptions driver_options;
    std::vector<cache::CacheConfig> sweep_configs;
    uint32_t jobs = 0;  ///< replay workers; 0 = one per hardware thread
    uint32_t tlb_entries = 0;
    bool working_sets = false;
    bool stack_distance = false;
    bool verify = false;        ///< scan and report damage, nothing else
    std::string salvage_out;    ///< write recovered records here
    bool stats = false;         ///< dump the metrics registry at the end
    bool crosscheck = false;    ///< validate counters against the manifest
    bool prefix = false;        ///< trace is a salvaged prefix
    std::string manifest;       ///< run manifest; default <trace>.run.json
    std::string spans_out;      ///< Chrome trace-event export ("" = off)
};

/** Command-line mistakes exit with the usage code, not Fatal's 1. */
template <typename... Args>
[[noreturn]] void
UsageError(Args&&... args)
{
    std::fprintf(stderr, "atum-report: %s\n",
                 internal::StrCat(std::forward<Args>(args)...).c_str());
    std::exit(util::kExitUsage);
}

cache::CacheConfig
ParseCacheSpec(const std::string& spec)
{
    cache::CacheConfig config;
    unsigned size_kb = 0, block = 0, assoc = 0;
    if (std::sscanf(spec.c_str(), "%u:%u:%u", &size_kb, &block, &assoc) != 3)
        UsageError("bad --cache spec '", spec, "', want SIZE_KB:BLOCK:ASSOC");
    config.size_bytes = size_kb << 10;
    config.block_bytes = block;
    config.assoc = assoc;
    return config;
}

std::vector<cache::CacheConfig>
ParseSweepSpecs(const std::string& specs)
{
    std::vector<cache::CacheConfig> configs;
    size_t start = 0;
    while (start <= specs.size()) {
        const size_t comma = specs.find(',', start);
        const std::string spec =
            specs.substr(start, comma == std::string::npos ? std::string::npos
                                                           : comma - start);
        if (spec.empty())
            Fatal("empty spec in --sweep '", specs, "'");
        configs.push_back(ParseCacheSpec(spec));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return configs;
}

Options
ParseArgs(int argc, char** argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                UsageError(arg, " requires a value");
            return argv[++i];
        };
        if (arg == "--head")
            opts.head = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--cache") {
            opts.cache_config = ParseCacheSpec(next());
            opts.have_cache = true;
        } else if (arg == "--sweep")
            opts.sweep_configs = ParseSweepSpecs(next());
        else if (arg == "--jobs")
            opts.jobs = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--flush-on-switch")
            opts.driver_options.flush_on_switch = true;
        else if (arg == "--pid-tags")
            opts.cache_config.pid_tags = true;
        else if (arg == "--no-kernel")
            opts.driver_options.include_kernel = false;
        else if (arg == "--tlb")
            opts.tlb_entries = std::strtoul(next().c_str(), nullptr, 0);
        else if (arg == "--working-sets")
            opts.working_sets = true;
        else if (arg == "--stack-distance")
            opts.stack_distance = true;
        else if (arg == "--verify")
            opts.verify = true;
        else if (arg == "--salvage")
            opts.salvage_out = next();
        else if (arg == "--stats")
            opts.stats = true;
        else if (arg == "--crosscheck")
            opts.crosscheck = true;
        else if (arg == "--prefix")
            opts.prefix = true;
        else if (arg == "--manifest")
            opts.manifest = next();
        else if (arg == "--spans")
            opts.spans_out = next();
        else if (arg == "--version") {
            std::printf("%s\n", util::VersionString("atum-report").c_str());
            std::exit(util::kExitOk);
        }
        else if (!arg.empty() && arg[0] != '-')
            opts.path = arg;
        else
            UsageError("unknown argument: ", arg);
    }
    if (opts.path.empty())
        UsageError("usage: atum-report TRACE [options]");
    return opts;
}

const char*
TypeName(trace::RecordType type)
{
    static const char* const kNames[] = {"ifetch",  "read",   "write",
                                         "pte",     "ctxsw",  "tlbmiss",
                                         "except",  "opcode", "loss",
                                         "dma"};
    return kNames[static_cast<unsigned>(type)];
}

/** `--crosscheck`: validate the trace against the run manifest. */
int
RunCrosscheck(const Options& opts, io::Vfs& vfs)
{
    const std::string manifest_path =
        opts.manifest.empty() ? opts.path + ".run.json" : opts.manifest;
    util::StatusOr<cpu::EventCounters> actual =
        analysis::ReadCountersFromManifest(manifest_path, vfs);
    if (!actual.ok()) {
        std::fprintf(stderr, "atum-report: %s\n",
                     actual.status().ToString().c_str());
        return util::ExitCodeFor(actual.status());
    }
    util::StatusOr<std::vector<trace::Record>> loaded =
        trace::LoadTrace(opts.path, vfs);
    if (!loaded.ok()) {
        std::fprintf(stderr, "atum-report: %s\n",
                     loaded.status().ToString().c_str());
        return util::ExitCodeFor(loaded.status());
    }
    analysis::CrosscheckOptions cc_opts;
    cc_opts.prefix = opts.prefix;
    const analysis::CrosscheckReport report =
        analysis::Crosscheck(*loaded, *actual, cc_opts);
    std::printf("%s", report.ToString().c_str());
    return report.passed() ? util::kExitOk : util::kExitCorrupt;
}

/** `--verify` / `--salvage`: tolerant scan, report, optional rewrite. */
int
RunSalvage(const Options& opts, io::Vfs& vfs)
{
    auto source = trace::FileByteSource::Open(opts.path, vfs);
    if (!source.ok()) {
        std::fprintf(stderr, "atum-report: %s\n",
                     source.status().ToString().c_str());
        return util::ExitCodeFor(source.status());
    }
    std::vector<trace::Record> records;
    const trace::ScanReport report = trace::ScanTrace(
        **source, opts.salvage_out.empty() ? nullptr : &records);
    std::printf("%s", report.ToString().c_str());

    if (!report.recognized)
        return util::kExitCorrupt;

    if (!opts.salvage_out.empty()) {
        auto out = trace::FileByteSink::Open(opts.salvage_out, vfs);
        if (!out.ok()) {
            std::fprintf(stderr, "atum-report: %s\n",
                         out.status().ToString().c_str());
            return util::ExitCodeFor(out.status());
        }
        util::Status status = trace::WriteAtf2(**out, records);
        if (status.ok())
            status = (*out)->Close();
        if (!status.ok()) {
            std::fprintf(stderr, "atum-report: salvage write failed: %s\n",
                         status.ToString().c_str());
            return util::ExitCodeFor(status);
        }
        std::printf("salvaged %zu records -> %s\n", records.size(),
                    opts.salvage_out.c_str());
        return util::kExitOk;
    }
    return report.intact() ? util::kExitOk : util::kExitCorrupt;
}

int
Run(const Options& opts, io::Vfs& vfs)
{
    if (opts.verify || !opts.salvage_out.empty())
        return RunSalvage(opts, vfs);
    if (opts.crosscheck)
        return RunCrosscheck(opts, vfs);

    const auto load_start = std::chrono::steady_clock::now();
    ATUM_SPAN_NAMED(load_span, "report", "load");
    load_span.set_detail(opts.path);
    util::StatusOr<std::vector<trace::Record>> loaded =
        trace::LoadTrace(opts.path, vfs);
    load_span.Close();
    if (!loaded.ok()) {
        std::fprintf(stderr, "atum-report: %s\n",
                     loaded.status().ToString().c_str());
        return util::ExitCodeFor(loaded.status());
    }
    const std::vector<trace::Record>& records = *loaded;
    auto& reg = obs::Registry::Global();
    reg.GetCounter("report.records").Set(records.size());
    reg.GetHistogram("report.load_us")
        .Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - load_start)
                .count()));

    if (opts.head > 0) {
        for (size_t i = 0; i < opts.head && i < records.size(); ++i) {
            const trace::Record& r = records[i];
            std::printf("%8zu  %-7s %c 0x%08x size=%u info=%u\n", i,
                        TypeName(r.type), r.kernel() ? 'K' : 'U', r.addr,
                        r.size(), r.info);
        }
        std::printf("\n");
    }

    trace::TraceStats stats;
    {
        ATUM_SPAN("report", "characterize");
        for (const auto& r : records)
            stats.Accumulate(r);
    }
    std::printf("%s\n", stats.ToString().c_str());

    if (opts.have_cache) {
        ATUM_SPAN("report", "cache");
        cache::Cache c(opts.cache_config);
        cache::TraceCacheDriver driver(c, opts.driver_options);
        for (const auto& r : records)
            driver.Feed(r);
        std::printf("cache %s: accesses=%llu miss-rate=%.3f%% "
                    "writebacks=%llu\n",
                    c.config().ToString().c_str(),
                    static_cast<unsigned long long>(c.stats().accesses),
                    100.0 * c.stats().MissRate(),
                    static_cast<unsigned long long>(c.stats().writebacks));
    }

    if (!opts.sweep_configs.empty()) {
        std::vector<replay::SweepConfig> jobs;
        for (const cache::CacheConfig& config : opts.sweep_configs)
            jobs.push_back(
                replay::MakeCacheJob(config, opts.driver_options));
        const replay::SweepRunner runner(opts.jobs);
        const std::vector<replay::SweepResult> results =
            runner.Run(records, jobs);
        std::printf("sweep: %zu configs\n", results.size());
        Table table({"cache", "accesses", "miss%", "writebacks", "status"});
        for (const replay::SweepResult& r : results) {
            table.AddRow({
                r.label,
                std::to_string(r.cache_stats.accesses),
                Table::Fmt(100.0 * r.cache_stats.MissRate(), 3),
                std::to_string(r.cache_stats.writebacks),
                r.status.ok() ? "ok" : r.status.ToString(),
            });
        }
        std::printf("%s\n", table.ToString().c_str());
    }

    if (opts.tlb_entries > 0) {
        ATUM_SPAN("report", "tlb");
        tlbsim::TlbSim sim({.entries = opts.tlb_entries});
        for (const auto& r : records)
            sim.Feed(r);
        std::printf("tlb %u entries: accesses=%llu miss-rate=%.3f%%\n",
                    opts.tlb_entries,
                    static_cast<unsigned long long>(sim.stats().accesses),
                    100.0 * sim.stats().MissRate());
    }

    if (opts.working_sets) {
        ATUM_SPAN("report", "working-sets");
        analysis::WorkingSetAnalyzer ws({100, 1000, 10000, 100000});
        for (const auto& r : records)
            ws.Feed(r);
        Table table({"window(refs)", "avg-ws(pages)"});
        for (size_t i = 0; i < ws.windows().size(); ++i) {
            table.AddRow({std::to_string(ws.windows()[i]),
                          Table::Fmt(ws.AverageWorkingSet(i), 1)});
        }
        std::printf("%s", table.ToString().c_str());
        std::printf("distinct pages: %llu\n\n",
                    static_cast<unsigned long long>(ws.distinct_pages()));
    }

    if (opts.stack_distance) {
        ATUM_SPAN("report", "stack-distance");
        analysis::StackDistanceAnalyzer sd(4);
        for (const auto& r : records)
            sd.Feed(r);
        Table table({"fully-assoc LRU", "miss-rate%"});
        for (uint32_t kib : {1u, 4u, 16u, 64u, 256u}) {
            table.AddRow({std::to_string(kib) + "K",
                          Table::Fmt(100.0 * sd.MissRateForCapacity(
                                                 (kib << 10) >> 4),
                                     3)});
        }
        std::printf("%s\n", table.ToString().c_str());

        // Per-process locality, one worker per process substream.
        analysis::ProcessProfileOptions profile_opts;
        profile_opts.include_kernel = opts.driver_options.include_kernel;
        const auto profiles = analysis::PerProcessStackProfiles(
            records, profile_opts, opts.jobs);
        Table per_pid({"pid", "refs", "blocks", "1K-miss%", "16K-miss%"});
        for (const analysis::ProcessProfile& p : profiles) {
            per_pid.AddRow({
                p.pid == 0 ? "kernel" : std::to_string(p.pid),
                std::to_string(p.accesses),
                std::to_string(p.distinct_blocks),
                Table::Fmt(100.0 * p.MissRateAt(0), 3),
                Table::Fmt(100.0 * p.MissRateAt(1), 3),
            });
        }
        std::printf("%s\n", per_pid.ToString().c_str());
    }

    if (opts.stats)
        std::printf("%s",
                    obs::Registry::Global().Snapshot().ToText().c_str());
    return 0;
}

/** Runs the report, then exports its span trace if --spans asked. */
int
RunAndExport(const Options& opts, io::Vfs& vfs)
{
    const int code = Run(opts, vfs);
    if (!opts.spans_out.empty()) {
        const util::Status status =
            obs::WriteSpansFile(opts.spans_out, "atum-report", vfs);
        if (status.ok())
            std::printf("spans %s\n", opts.spans_out.c_str());
        else
            Warn("writing span trace: ", status.ToString());
    }
    return code;
}

}  // namespace
}  // namespace atum

int
main(int argc, char** argv)
{
    // Reports are made to be piped (`atum-report t.atum | head`): ignore
    // SIGPIPE and treat a broken pipe at exit as success.
    atum::util::IgnoreSigpipe();
    return atum::util::FinishStdout(
        atum::RunAndExport(atum::ParseArgs(argc, argv),
                           atum::io::RealVfs()));
}
