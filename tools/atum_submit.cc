// atum-submit: client for the atum-serve daemon.
//
// Usage:
//   atum-submit --socket PATH submit [--tenant T] [--workload W]
//               [--scale N] [--max-instructions N] [--max-trace-bytes N]
//               [--deadline-ms N] [--token T] [--wait]
//               [--wait-timeout-ms N]
//   atum-submit --socket PATH sweep --of ID --config SPEC [--config SPEC]...
//               [--tenant T] [--sweep-timeout-ms N] [--sweep-retries N]
//               [--wait] [--wait-timeout-ms N]
//   atum-submit --socket PATH status [--id N]
//   atum-submit --socket PATH cancel --id N
//   atum-submit --socket PATH ping | metrics | drain
//   atum-submit --socket PATH probe-garbage | probe-slow [--hold-ms N]
//   atum-submit --version
//
// Common flags: --retries N (default 5), --retry-base-ms N (default 50),
// --retry-budget-ms N (overall wall-clock cap on the retry loop; 0 =
// uncapped, the default).
//
// Every submit carries an idempotency token (auto-generated; --token
// overrides it, e.g. for a job-control system that owns its own retry
// loop). The token makes ambiguous transport failures — the connection
// died after the request was sent but before the response arrived, so
// the daemon may or may not have accepted the job — safe to retry: a
// duplicate submit with the same token is answered with the original
// job id (docs/SERVE.md "Network failure model", invariant N1). Without
// a token such failures would NOT be retried; with one they are.
//
// probe-garbage and probe-slow are hostile-client probes for the serve
// CLI gate (scripts/test_serve.sh): the first sends a poison frame (an
// oversized declared length) and expects a structured invalid-argument
// answer before the daemon drops the connection; the second sends a
// partial frame and then stalls like a slowloris, expecting the daemon
// to evict it with a structured unavailable answer.
//
// `sweep` replays a finished capture's trace across many simulator
// configs. Each --config is the compact form `kind[:key=val]...`, e.g.
//   --config cache:size_kb=128:assoc=2 --config tlb:entries=32:ways=4
// With --wait, each config's result row streams to stdout as a JSONL
// line the moment the daemon completes (and journals) it — a sweep
// killed mid-flight resumes on the next daemon from its journaled rows,
// and the stream simply continues where it stopped. The final line is
// the full status document, like a waited capture.
//
// --wait-timeout-ms bounds how long --wait polls; on expiry the job is
// left running and the client exits 7 (unavailable): the result was not
// ready, not wrong.
//
// Speaks atum-serve-v1 (docs/SERVE.md) over the daemon's Unix socket.
// A kUnavailable answer — daemon draining, restarting, or not yet
// listening — is retried with jittered exponential backoff, because
// unavailability is the daemon keeping its crash-tolerance promise, not
// an error: the next instance will be there. kResourceExhausted
// (admission shed the job) is NOT retried blindly; backpressure is the
// caller's to honor.
//
// Exit codes (the shared tool contract): 0 success, 1 job failed or
// sweep only partially succeeded (--wait), 2 usage error, 5 job
// cancelled (--wait), 7 daemon unavailable after all retries or
// --wait-timeout-ms expired, 8 admission refused (queue full / tenant
// over its fair share).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <set>
#include <string>
#include <thread>

#include <unistd.h>

#include "io/posix.h"
#include "io/stream.h"

#include "serve/protocol.h"
#include "serve/socket.h"
#include "util/build_info.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/signals.h"
#include "util/status.h"

namespace atum {
namespace {

template <typename... Args>
[[noreturn]] void
UsageError(Args&&... args)
{
    std::fprintf(stderr, "atum-submit: %s\n",
                 internal::StrCat(std::forward<Args>(args)...).c_str());
    std::exit(util::kExitUsage);
}

struct Options {
    std::string socket_path;
    serve::Request request;
    bool wait = false;
    uint64_t wait_timeout_ms = 0;  ///< 0 = wait forever
    uint32_t retries = 5;
    uint64_t retry_base_ms = 50;
    uint64_t retry_budget_ms = 0;  ///< overall retry wall cap; 0 = off
    /** Retry ambiguous post-send transport failures (connection died
     *  before the response): safe only for token-carrying submits. */
    bool retry_ambiguous = false;
    // -- hostile-client probes (probe-garbage / probe-slow) ----------------
    bool probe_garbage = false;
    bool probe_slow = false;
    uint64_t hold_ms = 2000;  ///< how long probe-slow stalls mid-frame
};

/** A fresh idempotency token: unique per invocation, stable across the
 *  retries within it — which is exactly what makes the retries safe. */
std::string
MakeToken()
{
    std::mt19937_64 rng(
        std::random_device{}() ^
        (static_cast<uint64_t>(::getpid()) << 32) ^
        static_cast<uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()));
    char buf[36];
    std::snprintf(buf, sizeof buf, "submit-%016llx%016llx",
                  static_cast<unsigned long long>(rng()),
                  static_cast<unsigned long long>(rng()));
    return buf;
}

Options
ParseArgs(int argc, char** argv)
{
    Options opts;
    bool have_op = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                UsageError(arg, " requires a value");
            return argv[++i];
        };
        auto next_u64 = [&] {
            return std::strtoull(next().c_str(), nullptr, 0);
        };
        if (arg == "--socket")
            opts.socket_path = next();
        else if (arg == "--tenant")
            opts.request.tenant = next();
        else if (arg == "--workload")
            opts.request.workload = next();
        else if (arg == "--scale")
            opts.request.scale = static_cast<uint32_t>(next_u64());
        else if (arg == "--max-instructions")
            opts.request.quota.max_instructions = next_u64();
        else if (arg == "--max-trace-bytes")
            opts.request.quota.max_trace_bytes = next_u64();
        else if (arg == "--deadline-ms")
            opts.request.quota.deadline_ms = next_u64();
        else if (arg == "--id") {
            opts.request.id = next_u64();
            opts.request.has_id = true;
        }
        else if (arg == "--wait")
            opts.wait = true;
        else if (arg == "--wait-timeout-ms")
            opts.wait_timeout_ms = next_u64();
        else if (arg == "--of")
            opts.request.sweep_of = next_u64();
        else if (arg == "--config") {
            util::StatusOr<serve::SweepConfigSpec> spec =
                serve::ParseSweepConfigSpecText(next());
            if (!spec.ok())
                UsageError("--config: ", spec.status().message());
            opts.request.sweep_configs.push_back(std::move(*spec));
        }
        else if (arg == "--sweep-timeout-ms")
            opts.request.sweep_timeout_ms = next_u64();
        else if (arg == "--sweep-retries")
            opts.request.sweep_retries = next_u64();
        else if (arg == "--token")
            opts.request.client_token = next();
        else if (arg == "--retries")
            opts.retries = static_cast<uint32_t>(next_u64());
        else if (arg == "--retry-base-ms")
            opts.retry_base_ms = next_u64();
        else if (arg == "--retry-budget-ms")
            opts.retry_budget_ms = next_u64();
        else if (arg == "--hold-ms")
            opts.hold_ms = next_u64();
        else if (arg == "--version") {
            std::printf("%s\n", util::VersionString("atum-submit").c_str());
            std::exit(util::kExitOk);
        }
        else if (!have_op && !arg.empty() && arg[0] != '-') {
            have_op = true;
            if (arg == "ping")
                opts.request.op = serve::RequestOp::kPing;
            else if (arg == "submit")
                opts.request.op = serve::RequestOp::kSubmit;
            else if (arg == "sweep")
                opts.request.op = serve::RequestOp::kSweep;
            else if (arg == "status")
                opts.request.op = serve::RequestOp::kStatus;
            else if (arg == "cancel")
                opts.request.op = serve::RequestOp::kCancel;
            else if (arg == "metrics")
                opts.request.op = serve::RequestOp::kMetrics;
            else if (arg == "drain")
                opts.request.op = serve::RequestOp::kDrain;
            else if (arg == "probe-garbage")
                opts.probe_garbage = true;
            else if (arg == "probe-slow")
                opts.probe_slow = true;
            else
                UsageError("unknown operation: ", arg);
        }
        else
            UsageError("unknown argument: ", arg);
    }
    if (opts.socket_path.empty())
        UsageError("usage: atum-submit --socket PATH "
                   "submit|status|cancel|ping|metrics|drain [flags]");
    if (!have_op)
        UsageError("an operation is required "
                   "(submit|sweep|status|cancel|ping|metrics|drain)");
    if (opts.request.op == serve::RequestOp::kCancel &&
        !opts.request.has_id)
        UsageError("cancel requires --id");
    if (opts.request.op == serve::RequestOp::kSweep) {
        if (opts.request.sweep_of == 0)
            UsageError("sweep requires --of (the finished job id)");
        if (opts.request.sweep_configs.empty())
            UsageError("sweep requires at least one --config SPEC");
    }
    if (opts.request.op == serve::RequestOp::kSubmit &&
        !opts.probe_garbage && !opts.probe_slow) {
        if (opts.request.client_token.empty())
            opts.request.client_token = MakeToken();
        // The token is what makes an ambiguous "sent but no response"
        // failure safe to retry — the daemon answers a duplicate with
        // the original id instead of running the job twice.
        opts.retry_ambiguous = true;
    }
    return opts;
}

/**
 * One request/response exchange, retrying kUnavailable (from connect,
 * transport, or the daemon's answer) with jittered exponential backoff:
 * base * 2^attempt, plus up to one base of jitter so a herd of clients
 * hammering a restarting daemon spreads out.
 *
 * With retry_ambiguous (token-carrying submits), post-send transport
 * failures — the connection died after the request left but before the
 * response arrived, so the daemon may or may not hold the job — are
 * retried too: the idempotency token guarantees the retry is answered
 * with the original job id, never a second job. Without a token those
 * failures return as-is; retrying them blind could double-run.
 *
 * retry_budget_ms caps the whole loop's wall time (0 = uncapped): once
 * the next backoff would overrun it, the last failure returns.
 */
util::StatusOr<std::string>
CallWithRetry(const Options& opts, const std::string& payload)
{
    std::mt19937_64 rng(std::random_device{}());
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts.retry_budget_ms);
    util::Status last = util::Unavailable("no attempt made");
    for (uint32_t attempt = 0;; ++attempt) {
        bool sent = false;
        util::StatusOr<std::unique_ptr<serve::UnixClient>> client =
            serve::UnixClient::Connect(opts.socket_path);
        if (client.ok()) {
            sent = true;  // the request may reach the daemon from here on
            util::StatusOr<std::string> response =
                (*client)->Call(payload);
            if (response.ok()) {
                last = serve::ResponseStatus(*response);
                if (last.code() != util::StatusCode::kUnavailable)
                    return *response;  // success or a non-retryable error
            } else {
                last = response.status();
            }
        } else {
            last = client.status();
        }
        const bool ambiguous =
            sent && (last.code() == util::StatusCode::kDataLoss ||
                     last.code() == util::StatusCode::kIoError);
        const bool retryable =
            last.code() == util::StatusCode::kUnavailable ||
            (opts.retry_ambiguous && ambiguous);
        if (!retryable || attempt >= opts.retries)
            return last;
        const uint64_t shift = attempt < 6 ? attempt : 6;
        const uint64_t backoff = opts.retry_base_ms << shift;
        const uint64_t jitter =
            opts.retry_base_ms > 0 ? rng() % opts.retry_base_ms : 0;
        if (opts.retry_budget_ms != 0 &&
            std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(backoff + jitter) >=
                deadline)
            return util::Status(
                last.code(),
                internal::StrCat("retry budget (", opts.retry_budget_ms,
                                 " ms) exhausted; last failure: ",
                                 last.message()));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff + jitter));
    }
}

/** Re-serializes one parsed JSON value (object keys in map order). */
void
DumpJson(const util::JsonValue& value, util::JsonWriter& w)
{
    switch (value.kind()) {
      case util::JsonValue::Kind::kNull:
        w.Null();
        break;
      case util::JsonValue::Kind::kBool:
        w.Value(value.AsBool());
        break;
      case util::JsonValue::Kind::kNumber:
        w.Value(value.AsDouble());
        break;
      case util::JsonValue::Kind::kString:
        w.Value(value.AsString());
        break;
      case util::JsonValue::Kind::kArray:
        w.BeginArray();
        for (const util::JsonValue& entry : value.AsArray())
            DumpJson(entry, w);
        w.EndArray();
        break;
      case util::JsonValue::Kind::kObject:
        w.BeginObject();
        for (const auto& [key, entry] : value.AsObject()) {
            w.Key(key);
            DumpJson(entry, w);
        }
        w.EndObject();
        break;
    }
}

int
ExitFor(const util::Status& status)
{
    if (status.ok())
        return util::kExitOk;
    std::fprintf(stderr, "atum-submit: %s\n", status.ToString().c_str());
    return util::ExitCodeFor(status);
}

/**
 * Polls `status --id` until the job reaches a terminal state, streaming
 * a sweep's per-config result rows as JSONL the moment they appear —
 * the daemon journals each row before reporting it, so every line
 * printed here is durable and survives a daemon kill mid-sweep. With a
 * wait timeout, expiry exits 7 (unavailable) and leaves the job running.
 */
int
WaitForJob(const Options& opts, uint64_t id)
{
    serve::Request poll;
    poll.op = serve::RequestOp::kStatus;
    poll.id = id;
    poll.has_id = true;
    const std::string payload = SerializeRequest(poll);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts.wait_timeout_ms);
    std::set<uint64_t> streamed;  // config indices already printed
    for (;;) {
        util::StatusOr<std::string> response =
            CallWithRetry(opts, payload);
        if (!response.ok())
            return ExitFor(response.status());
        util::StatusOr<util::JsonValue> doc =
            util::JsonValue::Parse(*response);
        if (!doc.ok())
            return ExitFor(util::DataLoss("unparseable status response"));
        const util::JsonValue& jobs = doc->Get("jobs");
        if (!jobs.is_array() || jobs.AsArray().empty())
            return ExitFor(util::NotFound("job ", id, " disappeared"));
        const util::JsonValue& job = jobs.AsArray().front();

        // Mergeable partial results: new rows stream as they finish.
        const util::JsonValue& rows = job.Get("rows");
        if (rows.is_array()) {
            for (const util::JsonValue& row : rows.AsArray()) {
                const uint64_t index = row.Get("config").AsU64();
                if (!streamed.insert(index).second)
                    continue;
                util::JsonWriter line;
                DumpJson(row, line);
                std::printf("%s\n", line.TakeStr().c_str());
                std::fflush(stdout);
            }
        }

        const std::string state = job.Get("state").AsString();
        if (state == "done" || state == "failed" || state == "cancelled") {
            std::printf("%s\n", response->c_str());
            if (state == "cancelled")
                return util::kExitInterrupted;
            // A partial sweep delivered every row it could but isolated
            // failures remain; 1 tells scripts to look at the rows.
            if (state != "done" ||
                job.Get("outcome").AsString() == "partial")
                return util::kExitError;
            return util::kExitOk;
        }
        if (opts.wait_timeout_ms != 0 &&
            std::chrono::steady_clock::now() >= deadline)
            return ExitFor(util::Unavailable(
                "job ", id, " not terminal within ", opts.wait_timeout_ms,
                " ms (still ", state, "; it keeps running)"));
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
}

/**
 * Hostile-client probe: sends a poison frame (a length prefix declaring
 * ~4 GiB) and expects the daemon to answer with a structured
 * invalid-argument error before dropping the connection — exit 4 — and
 * to keep serving everyone else.
 */
int
ProbeGarbage(const Options& opts)
{
    util::StatusOr<std::unique_ptr<serve::UnixClient>> client =
        serve::UnixClient::Connect(opts.socket_path);
    if (!client.ok())
        return ExitFor(client.status());
    const char poison[] = {'\xff', '\xff', '\xff', '\xff',
                           'j',    'u',    'n',    'k'};
    io::FdStream stream((*client)->fd());
    if (util::Status s = io::WriteAll(stream, poison, sizeof poison);
        !s.ok())
        return ExitFor(s);
    util::StatusOr<std::string> answer =
        serve::ReadFrameFd((*client)->fd());
    if (!answer.ok())
        return ExitFor(util::Status(
            util::StatusCode::kInternal,
            "daemon dropped the poison frame without a structured "
            "answer: " +
                std::string(answer.status().message())));
    std::printf("%s\n", answer->c_str());
    return ExitFor(serve::ResponseStatus(*answer));
}

/**
 * Slowloris probe: sends half a length prefix, then trickles nothing.
 * Expects the daemon to evict the connection with a structured
 * unavailable answer (exit 7) within --hold-ms; a daemon that lets the
 * stall live past the budget exits 6 (wedged) — that is the bug the
 * probe exists to catch.
 */
int
ProbeSlow(const Options& opts)
{
    util::StatusOr<std::unique_ptr<serve::UnixClient>> client =
        serve::UnixClient::Connect(opts.socket_path);
    if (!client.ok())
        return ExitFor(client.status());
    const char stub[] = {'\x08', '\x00'};  // half a frame header
    io::FdStream stream((*client)->fd(),
                        static_cast<int>(opts.hold_ms));
    if (util::Status s = io::WriteAll(stream, stub, sizeof stub); !s.ok())
        return ExitFor(s);
    serve::FrameParser parser;
    util::StatusOr<std::string> answer =
        serve::ReadFrameStream(stream, parser);
    if (!answer.ok()) {
        if (answer.status().code() == util::StatusCode::kUnavailable &&
            answer.status().message().find("peer silent") !=
                std::string::npos) {
            std::fprintf(stderr,
                         "atum-submit: daemon tolerated a stalled "
                         "connection for the whole %llu ms hold\n",
                         static_cast<unsigned long long>(opts.hold_ms));
            return util::kExitWedged;
        }
        return ExitFor(answer.status());
    }
    std::printf("%s\n", answer->c_str());
    return ExitFor(serve::ResponseStatus(*answer));
}

int
Run(const Options& opts)
{
    if (opts.probe_garbage)
        return ProbeGarbage(opts);
    if (opts.probe_slow)
        return ProbeSlow(opts);
    const std::string payload = SerializeRequest(opts.request);
    util::StatusOr<std::string> response = CallWithRetry(opts, payload);
    if (!response.ok())
        return ExitFor(response.status());

    // A transported error ({"ok":false,...}) still prints — the caller
    // gets the full response — but the exit code follows the embedded
    // status (8 for a shed job, and so on), not the transport's success.
    if (util::Status embedded = serve::ResponseStatus(*response);
        !embedded.ok()) {
        std::printf("%s\n", response->c_str());
        return ExitFor(embedded);
    }

    if (opts.request.op == serve::RequestOp::kMetrics) {
        // Unwrap the Prometheus text body; everything else prints JSON.
        util::StatusOr<util::JsonValue> doc =
            util::JsonValue::Parse(*response);
        if (doc.ok() && doc->Has("text")) {
            std::printf("%s", doc->Get("text").AsString().c_str());
            return util::kExitOk;
        }
    }
    std::printf("%s\n", response->c_str());

    if (opts.wait && (opts.request.op == serve::RequestOp::kSubmit ||
                      opts.request.op == serve::RequestOp::kSweep)) {
        util::StatusOr<util::JsonValue> doc =
            util::JsonValue::Parse(*response);
        if (!doc.ok() || !doc->Has("id"))
            return ExitFor(util::DataLoss("submit response carries no id"));
        return WaitForJob(opts, doc->Get("id").AsU64());
    }
    return util::kExitOk;
}

}  // namespace
}  // namespace atum

int
main(int argc, char** argv)
{
    atum::util::IgnoreSigpipe();
    return atum::util::FinishStdout(atum::Run(atum::ParseArgs(argc, argv)));
}
