// atum-serve: the long-lived multi-tenant capture daemon.
//
// Usage:
//   atum-serve --dir DIR [--socket PATH] [--workers N]
//              [--max-queue N] [--max-per-tenant N]
//              [--default-max-instructions N] [--max-instructions-cap N]
//              [--max-trace-bytes-cap N] [--watchdog-ucycles N]
//              [--checkpoint-every-fills N] [--keep-checkpoints N]
//              [--max-connections N] [--max-conns-per-tenant N]
//              [--conn-idle-ms N] [--trace-out SPANS.json]
//   atum-serve --version
//
// Accepts capture jobs over a Unix-domain socket (default DIR/serve.sock,
// protocol atum-serve-v1 — docs/SERVE.md) and runs them on a shared
// worker pool, each under its own instruction/byte/deadline quota with
// rotating checkpoints. Every job transition is fsynced into
// DIR/serve.journal before it is acted on, so a SIGKILL at any instant
// is survivable: the next start re-admits queued jobs, resumes
// interrupted captures from their newest checkpoint, and salvages what
// cannot resume. SIGTERM (or an `op:drain` request) drains gracefully —
// running jobs stop at their next slice boundary behind a final
// checkpoint, queued jobs stay journaled for the next instance.
//
// The accept loop is poll-multiplexed and governed (docs/SERVE.md
// "Network failure model"): many concurrent connections, a global cap
// and a per-tenant connection share (excess accepts are answered with a
// structured resource-exhausted error — client exit 8 — then closed),
// slowloris eviction for connections silent past --conn-idle-ms, a
// per-connection buffer bound, and poison-frame handling that answers
// with a structured error before dropping the connection whenever the
// framing still permits an answer. Garbage bytes never wedge the daemon
// or its SIGTERM drain.
//
// DIR/serve.status.json is rewritten atomically on every transition for
// `atum-top --serve DIR`; the `op:metrics` request serves serve.* (and
// everything else in the registry) as Prometheus text.
//
// --trace-out FILE exports the daemon's span trace (job lifecycle
// instants, per-job and per-sweep-row spans across the worker pool) as
// Chrome trace-event JSON at shutdown. A tracer degrade, quota kill or
// crash dumps the flight recorder to DIR/serve.flight.json
// (docs/TRACING.md).
//
// Exit codes (the shared tool contract): 0 clean shutdown, 2 usage
// error, 3 unusable directory/socket, 7 environment unavailable.
// Clients see 7 (unavailable, retryable) while draining and 8
// (resource-exhausted) when admission sheds their job or the connection
// caps shed their dial.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "io/posix.h"
#include "io/stream.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/signals.h"
#include "util/status.h"

namespace atum {
namespace {

volatile std::sig_atomic_t g_stop = 0;

template <typename... Args>
[[noreturn]] void
UsageError(Args&&... args)
{
    std::fprintf(stderr, "atum-serve: %s\n",
                 internal::StrCat(std::forward<Args>(args)...).c_str());
    std::exit(util::kExitUsage);
}

struct Options {
    serve::ServeConfig config;
    serve::ConnGovernorConfig governor;
    std::string socket_path;
    std::string trace_out;  // Chrome trace-event export at shutdown
};

Options
ParseArgs(int argc, char** argv)
{
    Options opts;
    opts.config.dir.clear();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                UsageError(arg, " requires a value");
            return argv[++i];
        };
        auto next_u64 = [&] {
            return std::strtoull(next().c_str(), nullptr, 0);
        };
        if (arg == "--dir")
            opts.config.dir = next();
        else if (arg == "--socket")
            opts.socket_path = next();
        else if (arg == "--workers")
            opts.config.workers = static_cast<unsigned>(next_u64());
        else if (arg == "--max-queue")
            opts.config.admission.max_queue_depth =
                static_cast<uint32_t>(next_u64());
        else if (arg == "--max-per-tenant")
            opts.config.admission.max_per_tenant =
                static_cast<uint32_t>(next_u64());
        else if (arg == "--default-max-instructions")
            opts.config.admission.default_max_instructions = next_u64();
        else if (arg == "--max-instructions-cap")
            opts.config.admission.max_instructions_cap = next_u64();
        else if (arg == "--max-trace-bytes-cap")
            opts.config.admission.max_trace_bytes_cap = next_u64();
        else if (arg == "--watchdog-ucycles")
            opts.config.watchdog_ucycles = next_u64();
        else if (arg == "--checkpoint-every-fills")
            opts.config.checkpoint_every_fills = next_u64();
        else if (arg == "--keep-checkpoints")
            opts.config.keep_checkpoints =
                static_cast<uint32_t>(next_u64());
        else if (arg == "--max-connections")
            opts.governor.max_connections =
                static_cast<uint32_t>(next_u64());
        else if (arg == "--max-conns-per-tenant")
            opts.governor.max_per_tenant =
                static_cast<uint32_t>(next_u64());
        else if (arg == "--conn-idle-ms")
            opts.governor.idle_timeout_ms = next_u64();
        else if (arg == "--trace-out")
            opts.trace_out = next();
        else if (arg == "--version") {
            std::printf("%s\n", util::VersionString("atum-serve").c_str());
            std::exit(util::kExitOk);
        }
        else
            UsageError("unknown argument: ", arg);
    }
    if (opts.config.dir.empty())
        UsageError("usage: atum-serve --dir DIR [--socket PATH] "
                   "[--workers N] [--max-queue N] ...");
    if (opts.config.workers == 0)
        UsageError("--workers must be >= 1 (0 is the in-process drill "
                   "mode, not a daemon)");
    if (opts.governor.max_connections == 0 ||
        opts.governor.max_per_tenant == 0)
        UsageError("connection caps must be >= 1");
    if (opts.socket_path.empty())
        opts.socket_path = opts.config.dir + "/serve.sock";
    return opts;
}

uint64_t
NowMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** One live client connection in the multiplexed accept loop. */
struct Connection {
    int fd = -1;
    uint64_t id = 0;
    serve::FrameParser parser;
    std::string out;  ///< encoded response frames not yet on the wire
    /** Answer queued, connection condemned (poison frame / shed): close
     *  once the out buffer drains instead of mid-sentence. */
    bool close_after_flush = false;
};

/**
 * The governed accept loop: listener + every live connection in one
 * poll set. Requests are sub-millisecond (the expensive work happens on
 * the worker pool), so a single thread multiplexes every conversation —
 * and a peer that trickles bytes, sends garbage, or never reads its
 * response can only hurt its own connection, never the daemon.
 */
class ConnectionLoop
{
  public:
    ConnectionLoop(serve::ServeCore& core, serve::UnixListener& listener,
                   serve::ConnGovernorConfig governor_config)
        : core_(core), listener_(listener), governor_(governor_config),
          registry_(obs::Registry::Global())
    {
    }

    ~ConnectionLoop()
    {
        for (auto& [id, conn] : conns_)
            DropLocked(conn, /*flush=*/true);
        conns_.clear();
    }

    void Run()
    {
        while (g_stop == 0 && !core_.draining()) {
            std::vector<pollfd> pfds;
            std::vector<uint64_t> ids;  // pfds[i+1] -> connection id
            pfds.push_back({listener_.fd(), POLLIN, 0});
            for (auto& [id, conn] : conns_) {
                short events = POLLIN;
                if (!conn.out.empty())
                    events |= POLLOUT;
                pfds.push_back({conn.fd, events, 0});
                ids.push_back(id);
            }
            const int ready =
                ::poll(pfds.data(), pfds.size(), /*timeout=*/200);
            if (ready < 0 && errno != EINTR) {
                Warn("atum-serve: poll: ", std::strerror(errno));
                break;
            }
            const uint64_t now = NowMs();
            if (ready > 0) {
                for (size_t i = 1; i < pfds.size(); ++i) {
                    if (pfds[i].revents != 0)
                        ServiceConnection(ids[i - 1], pfds[i].revents,
                                          now);
                }
                if ((pfds[0].revents & POLLIN) != 0)
                    AcceptOne(now);
            }
            EvictIdle(now);
        }
    }

  private:
    void AcceptOne(uint64_t now)
    {
        util::StatusOr<int> fd = listener_.Accept(/*timeout_ms=*/0);
        if (!fd.ok() || *fd < 0)
            return;
        const uint64_t id = next_conn_id_++;
        if (util::Status s = governor_.OnAccept(id, now); !s.ok()) {
            // Shed with a structured answer (client exit 8), not a
            // silent RST: the peer learns to back off, not to retry.
            registry_.GetCounter("serve.net.conns.shed").Add();
            (void)serve::WriteFrameFd(*fd, serve::ErrorResponse(s));
            io::CloseFd(*fd, "shed connection");
            return;
        }
        registry_.GetCounter("serve.net.conns.accepted").Add();
        Connection& conn = conns_[id];
        conn.fd = *fd;
        conn.id = id;
    }

    void ServiceConnection(uint64_t id, short revents, uint64_t now)
    {
        auto it = conns_.find(id);
        if (it == conns_.end())
            return;
        Connection& conn = it->second;

        if ((revents & POLLOUT) != 0 && !conn.out.empty()) {
            io::FdStream stream(conn.fd);
            util::StatusOr<size_t> n =
                stream.Write(conn.out.data(), conn.out.size());
            if (!n.ok()) {
                Close(it);
                return;
            }
            conn.out.erase(0, *n);
            governor_.OnActivity(id, now);
            if (conn.out.empty() && conn.close_after_flush) {
                Close(it);
                return;
            }
        }

        if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0)
            return;
        io::FdStream stream(conn.fd);
        char buf[4096];
        util::StatusOr<size_t> n = stream.Read(buf, sizeof buf);
        if (!n.ok() || *n == 0) {
            // Peer hung up (or the read failed): if it tore a frame in
            // half first, that is its loss, never the daemon's.
            Close(it);
            return;
        }
        governor_.OnActivity(id, now);
        conn.parser.Feed(buf, *n);

        std::string payload;
        while (!conn.close_after_flush) {
            util::StatusOr<bool> got = conn.parser.Next(&payload);
            if (!got.ok()) {
                // Poison frame (oversized/garbage length): the framing
                // is unrecoverable, but the length prefix arrived intact
                // enough to diagnose — answer with a structured error,
                // then drop the connection.
                registry_.GetCounter("serve.net.poison_frames").Add();
                conn.out += serve::EncodeFrame(
                    serve::ErrorResponse(got.status()));
                conn.close_after_flush = true;
                break;
            }
            if (!*got)
                break;
            HandleFrame(conn, payload);
        }

        // Bounded buffers: a peer that stuffs requests without reading
        // answers (or trickles an endless frame) is evicted before its
        // connection grows into the daemon's memory.
        if (conn.parser.pending_bytes() + conn.out.size() >
            governor_.config().max_buffered_bytes) {
            registry_.GetCounter("serve.net.conns.evicted").Add();
            Close(it);
            return;
        }

        // Flush opportunistically; POLLOUT picks up whatever remains.
        if (!conn.out.empty()) {
            io::FdStream out_stream(conn.fd);
            util::StatusOr<size_t> wrote =
                out_stream.Write(conn.out.data(), conn.out.size());
            if (!wrote.ok()) {
                Close(it);
                return;
            }
            conn.out.erase(0, *wrote);
            if (conn.out.empty() && conn.close_after_flush)
                Close(it);
        }
    }

    void HandleFrame(Connection& conn, const std::string& payload)
    {
        // The tenant's connection share is charged before the request
        // reaches the core: a tenant at its cap gets a structured shed
        // on this connection but keeps the connection (its other
        // requests may name a different tenant).
        util::StatusOr<serve::Request> request =
            serve::ParseRequest(payload);
        if (request.ok() &&
            (request->op == serve::RequestOp::kSubmit ||
             request->op == serve::RequestOp::kSweep)) {
            if (util::Status s = governor_.OnTenant(conn.id,
                                                    request->tenant);
                !s.ok()) {
                registry_.GetCounter("serve.net.conns.shed").Add();
                conn.out += serve::EncodeFrame(serve::ErrorResponse(s));
                return;
            }
        }
        // Malformed JSON inside an intact frame is answered in-band by
        // the core (error response, connection survives).
        conn.out += serve::EncodeFrame(core_.HandleRequest(payload));
    }

    void EvictIdle(uint64_t now)
    {
        for (uint64_t id : governor_.IdleConnections(now)) {
            auto it = conns_.find(id);
            if (it == conns_.end())
                continue;
            registry_.GetCounter("serve.net.conns.evicted").Add();
            (void)serve::WriteFrameFd(
                it->second.fd,
                serve::ErrorResponse(util::Unavailable(
                    "connection idle past ",
                    governor_.config().idle_timeout_ms, " ms; evicted")));
            Close(it);
        }
    }

    void DropLocked(Connection& conn, bool flush)
    {
        if (flush && !conn.out.empty()) {
            // Best-effort drain of queued answers (the drain response
            // itself travels this path).
            io::FdStream stream(conn.fd);
            (void)io::WriteAll(stream, conn.out.data(), conn.out.size());
        }
        io::CloseFd(conn.fd, "connection");
    }

    void Close(std::map<uint64_t, Connection>::iterator it)
    {
        DropLocked(it->second, /*flush=*/false);
        governor_.OnClose(it->first);
        conns_.erase(it);
    }

    serve::ServeCore& core_;
    serve::UnixListener& listener_;
    serve::ConnGovernor governor_;
    obs::Registry& registry_;
    std::map<uint64_t, Connection> conns_;
    uint64_t next_conn_id_ = 1;
};

int
Run(const Options& opts)
{
    serve::ServeConfig config = opts.config;
    config.external_stop = &g_stop;

    const std::string flight_path = config.dir + "/serve.flight.json";
    obs::flight::SetDumpPath(flight_path.c_str());
    obs::flight::InstallCrashHandler();

    serve::ServeCore core(config, io::RealVfs());
    if (util::Status s = core.Start(); !s.ok()) {
        std::fprintf(stderr, "atum-serve: cannot start: %s\n",
                     s.ToString().c_str());
        return util::ExitCodeFor(s);
    }

    util::StatusOr<std::unique_ptr<serve::UnixListener>> listener =
        serve::UnixListener::Bind(opts.socket_path);
    if (!listener.ok()) {
        std::fprintf(stderr, "atum-serve: %s\n",
                     listener.status().ToString().c_str());
        return util::ExitCodeFor(listener.status());
    }
    (*listener)->set_stop_flag(&g_stop);
    Inform("atum-serve: listening on ", opts.socket_path, " (dir ",
           config.dir, ", ", config.workers, " workers, ",
           opts.governor.max_connections, " connections)");

    {
        ConnectionLoop loop(core, **listener, opts.governor);
        loop.Run();
        // ~ConnectionLoop flushes queued answers (the drain/shutdown
        // responses) before closing every connection.
    }

    Inform("atum-serve: draining (",
           g_stop != 0 ? "signal" : "drain request", ")");
    (*listener)->Close();
    core.Shutdown();

    if (!opts.trace_out.empty()) {
        // After Shutdown the worker pool has joined: the collection-at-
        // quiescence contract holds and every ring is final.
        const util::Status spans_status =
            obs::WriteSpansFile(opts.trace_out, "atum-serve");
        if (spans_status.ok())
            Inform("atum-serve: spans ", opts.trace_out);
        else
            Warn("atum-serve: writing span trace: ",
                 spans_status.ToString());
    }
    return util::kExitOk;
}

}  // namespace
}  // namespace atum

int
main(int argc, char** argv)
{
    atum::util::IgnoreSigpipe();
    atum::util::InstallStopSignalHandlers(&atum::g_stop);
    return atum::util::FinishStdout(atum::Run(atum::ParseArgs(argc, argv)));
}
