// atum-serve: the long-lived multi-tenant capture daemon.
//
// Usage:
//   atum-serve --dir DIR [--socket PATH] [--workers N]
//              [--max-queue N] [--max-per-tenant N]
//              [--default-max-instructions N] [--max-instructions-cap N]
//              [--max-trace-bytes-cap N] [--watchdog-ucycles N]
//              [--checkpoint-every-fills N] [--keep-checkpoints N]
//              [--trace-out SPANS.json]
//   atum-serve --version
//
// Accepts capture jobs over a Unix-domain socket (default DIR/serve.sock,
// protocol atum-serve-v1 — docs/SERVE.md) and runs them on a shared
// worker pool, each under its own instruction/byte/deadline quota with
// rotating checkpoints. Every job transition is fsynced into
// DIR/serve.journal before it is acted on, so a SIGKILL at any instant
// is survivable: the next start re-admits queued jobs, resumes
// interrupted captures from their newest checkpoint, and salvages what
// cannot resume. SIGTERM (or an `op:drain` request) drains gracefully —
// running jobs stop at their next slice boundary behind a final
// checkpoint, queued jobs stay journaled for the next instance.
//
// DIR/serve.status.json is rewritten atomically on every transition for
// `atum-top --serve DIR`; the `op:metrics` request serves serve.* (and
// everything else in the registry) as Prometheus text.
//
// --trace-out FILE exports the daemon's span trace (job lifecycle
// instants, per-job and per-sweep-row spans across the worker pool) as
// Chrome trace-event JSON at shutdown. A tracer degrade, quota kill or
// crash dumps the flight recorder to DIR/serve.flight.json
// (docs/TRACING.md).
//
// Exit codes (the shared tool contract): 0 clean shutdown, 2 usage
// error, 3 unusable directory/socket, 7 environment unavailable.
// Clients see 7 (unavailable, retryable) while draining and 8
// (resource-exhausted) when admission sheds their job.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "obs/flight.h"
#include "obs/spans.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/signals.h"
#include "util/status.h"

namespace atum {
namespace {

volatile std::sig_atomic_t g_stop = 0;

template <typename... Args>
[[noreturn]] void
UsageError(Args&&... args)
{
    std::fprintf(stderr, "atum-serve: %s\n",
                 internal::StrCat(std::forward<Args>(args)...).c_str());
    std::exit(util::kExitUsage);
}

struct Options {
    serve::ServeConfig config;
    std::string socket_path;
    std::string trace_out;  // Chrome trace-event export at shutdown
};

Options
ParseArgs(int argc, char** argv)
{
    Options opts;
    opts.config.dir.clear();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                UsageError(arg, " requires a value");
            return argv[++i];
        };
        auto next_u64 = [&] {
            return std::strtoull(next().c_str(), nullptr, 0);
        };
        if (arg == "--dir")
            opts.config.dir = next();
        else if (arg == "--socket")
            opts.socket_path = next();
        else if (arg == "--workers")
            opts.config.workers = static_cast<unsigned>(next_u64());
        else if (arg == "--max-queue")
            opts.config.admission.max_queue_depth =
                static_cast<uint32_t>(next_u64());
        else if (arg == "--max-per-tenant")
            opts.config.admission.max_per_tenant =
                static_cast<uint32_t>(next_u64());
        else if (arg == "--default-max-instructions")
            opts.config.admission.default_max_instructions = next_u64();
        else if (arg == "--max-instructions-cap")
            opts.config.admission.max_instructions_cap = next_u64();
        else if (arg == "--max-trace-bytes-cap")
            opts.config.admission.max_trace_bytes_cap = next_u64();
        else if (arg == "--watchdog-ucycles")
            opts.config.watchdog_ucycles = next_u64();
        else if (arg == "--checkpoint-every-fills")
            opts.config.checkpoint_every_fills = next_u64();
        else if (arg == "--keep-checkpoints")
            opts.config.keep_checkpoints =
                static_cast<uint32_t>(next_u64());
        else if (arg == "--trace-out")
            opts.trace_out = next();
        else if (arg == "--version") {
            std::printf("%s\n", util::VersionString("atum-serve").c_str());
            std::exit(util::kExitOk);
        }
        else
            UsageError("unknown argument: ", arg);
    }
    if (opts.config.dir.empty())
        UsageError("usage: atum-serve --dir DIR [--socket PATH] "
                   "[--workers N] [--max-queue N] ...");
    if (opts.config.workers == 0)
        UsageError("--workers must be >= 1 (0 is the in-process drill "
                   "mode, not a daemon)");
    if (opts.socket_path.empty())
        opts.socket_path = opts.config.dir + "/serve.sock";
    return opts;
}

/** One connection: frames in, responses out, until the peer hangs up. */
void
ServeConnection(serve::ServeCore& core, int fd)
{
    for (;;) {
        util::StatusOr<std::string> payload = serve::ReadFrameFd(fd);
        if (!payload.ok())
            break;  // clean close, tear, or oversized frame — drop it
        const std::string response = core.HandleRequest(*payload);
        if (!serve::WriteFrameFd(fd, response).ok())
            break;
    }
    ::close(fd);
}

int
Run(const Options& opts)
{
    serve::ServeConfig config = opts.config;
    config.external_stop = &g_stop;

    const std::string flight_path = config.dir + "/serve.flight.json";
    obs::flight::SetDumpPath(flight_path.c_str());
    obs::flight::InstallCrashHandler();

    serve::ServeCore core(config, io::RealVfs());
    if (util::Status s = core.Start(); !s.ok()) {
        std::fprintf(stderr, "atum-serve: cannot start: %s\n",
                     s.ToString().c_str());
        return util::ExitCodeFor(s);
    }

    util::StatusOr<std::unique_ptr<serve::UnixListener>> listener =
        serve::UnixListener::Bind(opts.socket_path);
    if (!listener.ok()) {
        std::fprintf(stderr, "atum-serve: %s\n",
                     listener.status().ToString().c_str());
        return util::ExitCodeFor(listener.status());
    }
    Inform("atum-serve: listening on ", opts.socket_path, " (dir ",
           config.dir, ", ", config.workers, " workers)");

    while (g_stop == 0 && !core.draining()) {
        util::StatusOr<int> fd = (*listener)->Accept(/*timeout_ms=*/200);
        if (!fd.ok()) {
            if (g_stop == 0)
                Warn("atum-serve: accept: ", fd.status().ToString());
            break;
        }
        if (*fd < 0)
            continue;  // timeout tick: re-check the stop flag
        ServeConnection(core, *fd);
    }

    Inform("atum-serve: draining (",
           g_stop != 0 ? "signal" : "drain request", ")");
    (*listener)->Close();
    core.Shutdown();

    if (!opts.trace_out.empty()) {
        // After Shutdown the worker pool has joined: the collection-at-
        // quiescence contract holds and every ring is final.
        const util::Status spans_status =
            obs::WriteSpansFile(opts.trace_out, "atum-serve");
        if (spans_status.ok())
            Inform("atum-serve: spans ", opts.trace_out);
        else
            Warn("atum-serve: writing span trace: ",
                 spans_status.ToString());
    }
    return util::kExitOk;
}

}  // namespace
}  // namespace atum

int
main(int argc, char** argv)
{
    atum::util::IgnoreSigpipe();
    atum::util::InstallStopSignalHandlers(&atum::g_stop);
    return atum::util::FinishStdout(atum::Run(atum::ParseArgs(argc, argv)));
}
