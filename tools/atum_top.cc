// atum-top: live terminal dashboard over a capture's metrics stream, or
// over a serve daemon's job table.
//
// Usage:
//   atum-top METRICS.jsonl [--interval-ms N] [--once]
//   atum-top --serve DIR   [--interval-ms N] [--once]
//   atum-top --version
//
// Default mode follows the JSON Lines file that `atum-capture
// --metrics-out` streams (schema atum-metrics-v1), re-reading it every
// --interval-ms (default 500) and repainting one compact frame: capture
// totals, throughput rates computed from the last two snapshots, and the
// drain/write latency percentiles. Runs until the stream reports a
// "final" phase or the user interrupts.
//
// --serve DIR follows DIR/serve.status.json (schema atum-serve-status-v1,
// rewritten atomically by atum-serve on every job transition): queue
// depth, per-job state, quota consumption, sweep config progress and
// outcomes. A missing or unparseable status file is TRANSIENT in this
// mode — the daemon may not have started yet, may be mid-rename, or may
// be rebooting after a crash — so follow mode renders a waiting
// placeholder and retries every tick instead of exiting; --once retries
// briefly and then exits 7 (unavailable), never 4.
//
// --once renders a single frame from the newest snapshot (no ANSI
// clearing, no waiting) — the scriptable/testable mode.
//
// Exit codes: 0 clean (final snapshot seen, --once, or SIGINT), 2 usage
// error, 3 file unreadable, 4 no parseable snapshot in metrics mode,
// 7 serve status document unavailable under --serve --once.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/build_info.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/signals.h"
#include "util/status.h"

namespace atum {
namespace {

volatile std::sig_atomic_t g_stop = 0;

/** Command-line mistakes exit with the usage code, not Fatal's 1. */
template <typename... Args>
[[noreturn]] void
UsageError(Args&&... args)
{
    std::fprintf(stderr, "atum-top: %s\n",
                 internal::StrCat(std::forward<Args>(args)...).c_str());
    std::exit(util::kExitUsage);
}

struct Options {
    std::string path;
    uint64_t interval_ms = 500;
    bool once = false;
    bool serve = false;  ///< path is a serve dir; follow its status file
};

Options
ParseArgs(int argc, char** argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                UsageError(arg, " requires a value");
            return argv[++i];
        };
        if (arg == "--interval-ms")
            opts.interval_ms = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--once")
            opts.once = true;
        else if (arg == "--serve") {
            opts.serve = true;
            opts.path = next();
        }
        else if (arg == "--version") {
            std::printf("%s\n", util::VersionString("atum-top").c_str());
            std::exit(util::kExitOk);
        }
        else if (!arg.empty() && arg[0] != '-')
            opts.path = arg;
        else
            UsageError("unknown argument: ", arg);
    }
    if (opts.path.empty())
        UsageError("usage: atum-top METRICS.jsonl | --serve DIR "
                   "[--interval-ms N] [--once]");
    return opts;
}

/** One parsed atum-metrics-v1 line, flattened to what the frame needs. */
struct Snapshot {
    uint64_t seq = 0;
    uint64_t ts_ms = 0;
    std::string phase;
    double instructions = 0;
    double records = 0;
    double buffer_fills = 0;
    double sink_bytes = 0;
    double lost_records = 0;
    double checkpoints = 0;
    double degraded = 0;
    double buffered_records = 0;
    double drain_p50 = 0;
    double drain_p99 = 0;
    double write_p50 = 0;
    double write_p99 = 0;
};

double
CounterOf(const util::JsonValue& section, const char* name)
{
    const util::JsonValue& v = section.Get(name);
    return v.kind() == util::JsonValue::Kind::kNumber ? v.AsDouble() : 0.0;
}

std::optional<Snapshot>
ParseLine(const std::string& line)
{
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(line);
    if (!doc.ok())
        return std::nullopt;
    const util::JsonValue& schema = doc->Get("schema");
    if (schema.kind() != util::JsonValue::Kind::kString ||
        schema.AsString() != "atum-metrics-v1")
        return std::nullopt;

    Snapshot snap;
    snap.seq = static_cast<uint64_t>(CounterOf(*doc, "seq"));
    snap.ts_ms = static_cast<uint64_t>(CounterOf(*doc, "ts_ms"));
    if (doc->Get("phase").kind() == util::JsonValue::Kind::kString)
        snap.phase = doc->Get("phase").AsString();

    const util::JsonValue& counters = doc->Get("counters");
    snap.instructions = CounterOf(counters, "cpu.instructions");
    snap.records = CounterOf(counters, "tracer.records");
    snap.buffer_fills = CounterOf(counters, "tracer.buffer_fills");
    snap.sink_bytes = CounterOf(counters, "trace.sink.bytes");
    snap.lost_records = CounterOf(counters, "tracer.lost_records");
    snap.checkpoints = CounterOf(counters, "supervisor.checkpoints");

    const util::JsonValue& gauges = doc->Get("gauges");
    snap.degraded = CounterOf(gauges, "tracer.degraded");
    snap.buffered_records = CounterOf(gauges, "tracer.buffered_records");

    const util::JsonValue& histograms = doc->Get("histograms");
    const util::JsonValue& drain = histograms.Get("tracer.drain_us");
    snap.drain_p50 = CounterOf(drain, "p50");
    snap.drain_p99 = CounterOf(drain, "p99");
    const util::JsonValue& write = histograms.Get("trace.sink.write_us");
    snap.write_p50 = CounterOf(write, "p50");
    snap.write_p99 = CounterOf(write, "p99");
    return snap;
}

/**
 * Reads every complete line of the stream and returns the last two
 * parseable snapshots (previous, newest); a torn tail line (the emitter
 * may be mid-write) is simply skipped until it grows its newline.
 */
std::vector<Snapshot>
ReadTail(std::FILE* file)
{
    std::rewind(file);
    std::vector<Snapshot> last_two;
    std::string line;
    int c;
    while ((c = std::fgetc(file)) != EOF) {
        if (c != '\n') {
            line.push_back(static_cast<char>(c));
            continue;
        }
        if (std::optional<Snapshot> snap = ParseLine(line)) {
            if (last_two.size() == 2)
                last_two.erase(last_two.begin());
            last_two.push_back(*snap);
        }
        line.clear();
    }
    std::clearerr(file);
    return last_two;
}

/** Per-second rate between two snapshots (0 when not computable). */
double
Rate(double newer, double older, uint64_t ms_newer, uint64_t ms_older)
{
    if (ms_newer <= ms_older)
        return 0.0;
    const double per_ms = (newer - older) / static_cast<double>(ms_newer -
                                                                ms_older);
    return per_ms * 1000.0;
}

void
RenderFrame(const std::vector<Snapshot>& snaps, bool ansi)
{
    const Snapshot& now = snaps.back();
    const Snapshot* prev = snaps.size() > 1 ? &snaps.front() : nullptr;

    if (ansi)
        std::printf("\033[H\033[2J");  // home + clear
    std::printf("atum-top  seq=%llu  phase=%s  ts=%llu\n",
                static_cast<unsigned long long>(now.seq), now.phase.c_str(),
                static_cast<unsigned long long>(now.ts_ms));
    std::printf("  instructions %14.0f    records %14.0f    fills %8.0f\n",
                now.instructions, now.records, now.buffer_fills);
    std::printf("  trace bytes  %14.0f    buffered records %8.0f\n",
                now.sink_bytes, now.buffered_records);
    if (prev) {
        std::printf("  rates: %.0f instr/s  %.0f records/s  %.2f fills/s  "
                    "%.2f MB/s\n",
                    Rate(now.instructions, prev->instructions, now.ts_ms,
                         prev->ts_ms),
                    Rate(now.records, prev->records, now.ts_ms, prev->ts_ms),
                    Rate(now.buffer_fills, prev->buffer_fills, now.ts_ms,
                         prev->ts_ms),
                    Rate(now.sink_bytes, prev->sink_bytes, now.ts_ms,
                         prev->ts_ms) /
                        (1024.0 * 1024.0));
    }
    std::printf("  drain p50/p99 %6.0f/%6.0f us    write p50/p99 "
                "%6.0f/%6.0f us\n",
                now.drain_p50, now.drain_p99, now.write_p50, now.write_p99);
    std::printf("  checkpoints %4.0f    lost %8.0f    degraded %s\n",
                now.checkpoints, now.lost_records,
                now.degraded != 0 ? "YES" : "no");
    std::fflush(stdout);
}

/**
 * --serve mode: render one frame of DIR/serve.status.json. The file is
 * replaced atomically by the daemon, so a whole-file read never sees a
 * torn document — at worst a missing one for the instant between unlink
 * and rename, which the follow loop just retries.
 */
bool
RenderServeFrame(const std::string& path, bool ansi, bool* rendered)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    std::string body;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, file)) > 0)
        body.append(buf, n);
    std::fclose(file);

    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(body);
    if (!doc.ok() || doc->Get("v").AsString() != "atum-serve-status-v1")
        return false;

    if (ansi)
        std::printf("\033[H\033[2J");
    std::printf("atum-serve  draining=%s  queue=%llu  running=%llu  "
                "workers=%llu\n",
                doc->Get("draining").AsBool() ? "YES" : "no",
                static_cast<unsigned long long>(
                    doc->Get("queue_depth").AsU64()),
                static_cast<unsigned long long>(doc->Get("running").AsU64()),
                static_cast<unsigned long long>(
                    doc->Get("workers").AsU64()));
    std::printf("  %4s  %-12s %-12s %-11s %10s %12s %12s %9s  %s\n", "ID",
                "TENANT", "WORKLOAD", "STATE", "RECORDS", "BYTES",
                "INSTR", "CONFIGS", "OUTCOME");
    for (const util::JsonValue& job : doc->Get("jobs").AsArray()) {
        std::string outcome = job.Get("outcome").AsString();
        if (job.Get("resumed").AsBool())
            outcome += outcome.empty() ? "(resumed)" : " (resumed)";
        // Sweep jobs report per-config progress; captures show a dash.
        char configs[32] = "-";
        if (job.Get("kind").AsString() == "sweep") {
            const unsigned long long done =
                job.Get("configs_done").AsU64();
            const unsigned long long failed =
                job.Get("configs_failed").AsU64();
            const unsigned long long total =
                job.Get("configs_total").AsU64();
            if (failed != 0)
                std::snprintf(configs, sizeof configs, "%llu/%llu!%llu",
                              done, total, failed);
            else
                std::snprintf(configs, sizeof configs, "%llu/%llu", done,
                              total);
        }
        std::printf("  %4llu  %-12s %-12s %-11s %10llu %12llu %12llu %9s"
                    "  %s\n",
                    static_cast<unsigned long long>(job.Get("id").AsU64()),
                    job.Get("tenant").AsString().c_str(),
                    job.Get("workload").AsString().c_str(),
                    job.Get("state").AsString().c_str(),
                    static_cast<unsigned long long>(
                        job.Get("records").AsU64()),
                    static_cast<unsigned long long>(
                        job.Get("trace_bytes").AsU64()),
                    static_cast<unsigned long long>(
                        job.Get("instructions").AsU64()),
                    configs, outcome.c_str());
    }
    std::fflush(stdout);
    *rendered = true;
    return true;
}

int
RunServe(const Options& opts)
{
    const std::string path = opts.path + "/serve.status.json";
    bool rendered_any = false;
    // A missing or unparseable status file is transient here: the daemon
    // may not have started, may be in the instant between unlink and
    // rename, or may be rebooting after a kill. Follow mode waits it out
    // indefinitely (the operator is watching a screen, not a script);
    // --once gives it a bounded ~1 s grace and then reports the daemon
    // unavailable — exit 7, never the corrupt-data 4.
    uint32_t once_retries = 0;
    while (g_stop == 0) {
        const bool drew =
            RenderServeFrame(path, /*ansi=*/!opts.once, &rendered_any);
        if (opts.once) {
            if (drew)
                break;
            if (++once_retries >= 20) {
                std::fprintf(stderr,
                             "atum-top: no atum-serve-status-v1 document "
                             "in %s (daemon not running?)\n",
                             path.c_str());
                return util::kExitUnavailable;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            continue;
        }
        if (!drew && !rendered_any) {
            std::printf("\033[H\033[2Jatum-top: waiting for %s ...\n",
                        path.c_str());
            std::fflush(stdout);
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.interval_ms));
    }
    return util::kExitOk;
}

int
Run(const Options& opts)
{
    if (opts.serve)
        return RunServe(opts);
    std::FILE* file = std::fopen(opts.path.c_str(), "rb");
    if (!file) {
        std::fprintf(stderr, "atum-top: cannot open %s\n",
                     opts.path.c_str());
        return util::kExitIo;
    }

    uint64_t rendered_seq = UINT64_MAX;
    bool rendered_any = false;
    while (g_stop == 0) {
        const std::vector<Snapshot> snaps = ReadTail(file);
        if (!snaps.empty() && (!rendered_any ||
                               snaps.back().seq != rendered_seq)) {
            RenderFrame(snaps, /*ansi=*/!opts.once);
            rendered_seq = snaps.back().seq;
            rendered_any = true;
        }
        if (opts.once || (!snaps.empty() && snaps.back().phase == "final"))
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.interval_ms));
    }
    std::fclose(file);

    if (!rendered_any) {
        std::fprintf(stderr, "atum-top: no atum-metrics-v1 snapshot in %s\n",
                     opts.path.c_str());
        return util::kExitCorrupt;
    }
    return util::kExitOk;
}

}  // namespace
}  // namespace atum

int
main(int argc, char** argv)
{
    atum::util::IgnoreSigpipe();
    atum::util::InstallStopSignalHandlers(&atum::g_stop);
    return atum::util::FinishStdout(atum::Run(atum::ParseArgs(argc, argv)));
}
