// atum-chaos: seeded crash campaigns against the capture stack, with a
// no-silent-loss verdict.
//
// Usage:
//   atum-chaos --campaign powercut,enospc,torn-rename [--seeds N]
//              [--first-seed S] [--workload NAME] [--scale N]
//              [--max-instructions N] [--buffer-kb N] [--chunk-records N]
//              [--checkpoint-every FILLS] [--checkpoint-keep K]
//              [--out-dir DIR] [--no-minimize] [--verbose]
//   atum-chaos --serve --campaign ... [--jobs N] [--tenants N]
//              [--sweeps [N]] [--sweep-configs N] [... shared shape flags]
//   atum-chaos --net [--campaign net-flaky,net-cut,...] [--submits N]
//              [--tenants N] [--attempts N] [... shared shape flags]
//   atum-chaos --fuzz-protocol [--seeds N] [--first-seed S]
//   atum-chaos --replay FILE [--serve|--net] [--minimize] [... shape flags]
//   atum-chaos --probe [--serve|--net] [... shape flags]
//   atum-chaos --version
//
// Each seed runs one complete disaster drill inside an in-memory
// filesystem: a supervised capture is subjected to a deterministic fault
// schedule (ENOSPC bursts, torn renames, bit-flips, power cuts), then
// recovered the way an operator would — resume from the newest loadable
// checkpoint or salvage the trace with the tolerant scanner — and the
// no-silent-loss invariants are checked (docs/CHAOS.md).
//
// With --serve the subject is the whole atum-serve daemon instead of one
// capture: each seed scripts a multi-tenant mix of submits, runs and a
// cancel into a drill-mode ServeCore, kills it mid-flight when the
// schedule's power cut fires, restarts it on the crash-consistent disk
// image, and checks the recovery invariants — no acked job lost, no job
// double-run, journal and traces clean (docs/SERVE.md).
//
// --serve --sweeps adds a replay-sweep phase to every drill: after its
// captures drain, each seed submits seed-scripted sweeps (some with a
// deliberately invalid config) and the kill can land mid-sweep, with
// some per-config rows journaled and some not. The battery then also
// enforces S4 (no journaled row lost or altered after it was reported)
// and S5 (the recovered sweep is bit-identical to a clean run). With no
// --campaign, --sweeps defaults to powercut,enospc,torn-rename.
//
// With --net the subject is the daemon's WIRE instead of its disk: each
// seed scripts a multi-tenant client that delivers tokened submits over
// a simulated hostile connection (short/failed sends, mid-frame
// disconnects, bit flips, stalls, duplicated retries, SIGKILL-restarts
// of the daemon itself), and the battery checks the network-robustness
// invariants — N1 no submit double-runs however often it is delivered,
// N2 the daemon answers garbage with a structured error and never
// wedges, N3 every ack for one idempotency token names the same job
// (docs/SERVE.md "Network failure model"). With no --campaign, --net
// defaults to all six net fault mixes.
//
// --fuzz-protocol skips the drill machinery and feeds --seeds seeded
// mutations of framed traffic (bit flips, truncations, tampered length
// prefixes, splices, raw noise) straight through FrameParser and the
// request codec, checking the codec contract: bounded buffering,
// bounded stepping, structured rejections, and accepted requests that
// survive their own round trip.
//
// A failing seed's schedule is minimized (unless --no-minimize) and, with
// --out-dir, written as DIR/failing-seed-N.schedule; such a file replays
// the identical failure forever via --replay and belongs in
// tests/chaos_corpus/ as a regression test.
//
// Exit codes follow the shared contract in util/status.h:
//   0  every seed upheld every invariant
//   1  at least one invariant violation (schedules reported/written)
//   2  usage error
//   3  I/O failure (replay file unreadable, --out-dir unwritable)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "io/chaos.h"
#include "obs/flight.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/status.h"

namespace atum {
namespace {

template <typename... Args>
[[noreturn]] void
UsageError(Args&&... args)
{
    std::fprintf(stderr, "atum-chaos: %s\n",
                 internal::StrCat(std::forward<Args>(args)...).c_str());
    std::exit(util::kExitUsage);
}

struct Options {
    std::vector<std::string> campaigns;
    uint64_t seeds = 50;
    uint64_t first_seed = 1;
    std::string replay;   // schedule file to replay instead of a campaign
    std::string out_dir;  // where failing schedules are written
    bool probe = false;   // print the fault-free op counts and exit
    bool serve = false;   // drill the serve daemon, not a lone capture
    bool net = false;     // drill the daemon's wire, not its disk
    bool fuzz = false;    // fuzz the frame/request codec, no drill
    bool minimize = true;
    bool verbose = false;

    chaos::CampaignSpec spec;
    chaos::ServeCampaignSpec serve_spec;
    chaos::NetCampaignSpec net_spec;
};

std::vector<std::string>
SplitCommas(const std::string& s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

uint64_t
ParseUint(const std::string& arg, const std::string& value)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        UsageError(arg, " wants a number, got '", value, "'");
    return v;
}

Options
ParseArgs(int argc, char** argv)
{
    Options opts;
    bool jobs_set = false;
    bool max_instructions_set = false;
    bool buffer_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                UsageError(arg, " requires a value");
            return argv[++i];
        };
        if (arg == "--campaign")
            opts.campaigns = SplitCommas(next());
        else if (arg == "--seeds")
            opts.seeds = ParseUint(arg, next());
        else if (arg == "--first-seed")
            opts.first_seed = ParseUint(arg, next());
        else if (arg == "--replay")
            opts.replay = next();
        else if (arg == "--probe")
            opts.probe = true;
        else if (arg == "--serve")
            opts.serve = true;
        else if (arg == "--net")
            opts.net = true;
        else if (arg == "--fuzz-protocol")
            opts.fuzz = true;
        else if (arg == "--submits")
            opts.net_spec.submits =
                static_cast<uint32_t>(ParseUint(arg, next()));
        else if (arg == "--attempts")
            opts.net_spec.max_attempts =
                static_cast<uint32_t>(ParseUint(arg, next()));
        else if (arg == "--jobs") {
            opts.serve_spec.jobs =
                static_cast<uint32_t>(ParseUint(arg, next()));
            jobs_set = true;
        }
        else if (arg == "--tenants")
            opts.serve_spec.tenants = opts.net_spec.tenants =
                static_cast<uint32_t>(ParseUint(arg, next()));
        else if (arg == "--sweeps") {
            // Bare --sweeps enables the default sweep mix; a following
            // number sets how many sweeps each drill submits.
            opts.serve_spec.sweeps = 2;
            if (i + 1 < argc && argv[i + 1][0] != '-' &&
                argv[i + 1][0] != '\0') {
                char* end = nullptr;
                const unsigned long long v =
                    std::strtoull(argv[i + 1], &end, 10);
                if (end != argv[i + 1] && *end == '\0') {
                    opts.serve_spec.sweeps = static_cast<uint32_t>(v);
                    ++i;
                }
            }
        } else if (arg == "--sweep-configs")
            opts.serve_spec.sweep_configs =
                static_cast<uint32_t>(ParseUint(arg, next()));
        else if (arg == "--out-dir")
            opts.out_dir = next();
        else if (arg == "--no-minimize")
            opts.minimize = false;
        else if (arg == "--minimize")
            opts.minimize = true;
        else if (arg == "--verbose")
            opts.verbose = true;
        else if (arg == "--workload")
            opts.spec.workload = opts.serve_spec.workload =
                opts.net_spec.workload = next();
        else if (arg == "--scale")
            opts.spec.scale = opts.serve_spec.scale = opts.net_spec.scale =
                static_cast<uint32_t>(ParseUint(arg, next()));
        else if (arg == "--max-instructions") {
            opts.spec.max_instructions = opts.serve_spec.max_instructions =
                opts.net_spec.max_instructions = ParseUint(arg, next());
            max_instructions_set = true;
        } else if (arg == "--buffer-kb") {
            opts.spec.buffer_bytes = opts.serve_spec.buffer_bytes =
                opts.net_spec.buffer_bytes =
                    static_cast<uint32_t>(ParseUint(arg, next())) << 10;
            buffer_set = true;
        }
        else if (arg == "--chunk-records")
            opts.spec.chunk_records = opts.serve_spec.chunk_records =
                opts.net_spec.chunk_records =
                    static_cast<uint32_t>(ParseUint(arg, next()));
        else if (arg == "--checkpoint-every")
            opts.spec.checkpoint_every_fills =
                opts.serve_spec.checkpoint_every_fills =
                    opts.net_spec.checkpoint_every_fills =
                        ParseUint(arg, next());
        else if (arg == "--checkpoint-keep")
            opts.spec.keep_checkpoints = opts.serve_spec.keep_checkpoints =
                opts.net_spec.keep_checkpoints =
                    static_cast<uint32_t>(ParseUint(arg, next()));
        else if (arg == "--version") {
            std::printf("%s\n", util::VersionString("atum-chaos").c_str());
            std::exit(util::kExitOk);
        } else {
            UsageError("unknown argument: ", arg,
                       " (see the header of tools/atum_chaos.cc)");
        }
    }
    if (opts.serve && opts.serve_spec.sweeps > 0) {
        // Sweep drills want the kill to have a real chance of landing
        // mid-sweep; the classic capture shape buries the sweep phase
        // under thousands of capture I/O ops. Lighten the captures
        // unless the caller shaped them explicitly.
        if (!jobs_set)
            opts.serve_spec.jobs = 2;
        if (!max_instructions_set)
            opts.serve_spec.max_instructions = 2000;
        if (!buffer_set)
            opts.serve_spec.buffer_bytes = 8u << 10;
    }
    if (opts.serve && opts.net)
        UsageError("--serve and --net are mutually exclusive");
    if (opts.replay.empty() && opts.campaigns.empty() && !opts.probe &&
        !opts.fuzz) {
        // Bare --serve --sweeps and bare --net work out of the box with
        // their natural mixes; everything else still requires an
        // explicit mode.
        if (opts.serve && opts.serve_spec.sweeps > 0)
            opts.campaigns = {"powercut", "enospc", "torn-rename"};
        else if (opts.net)
            opts.campaigns = {"net-flaky", "net-cut",   "net-flip",
                              "net-stall", "net-dup", "net-kill"};
        else
            UsageError("--campaign, --replay, --probe or "
                       "--fuzz-protocol is required");
    }
    if (!opts.replay.empty() && !opts.campaigns.empty())
        UsageError("--campaign and --replay are mutually exclusive");
    if (opts.seeds == 0)
        UsageError("--seeds must be at least 1");
    return opts;
}

/** Exits with the I/O code when the host filesystem fails us. */
template <typename... Args>
[[noreturn]] void
IoFatal(Args&&... args)
{
    std::fprintf(stderr, "atum-chaos: %s\n",
                 internal::StrCat(std::forward<Args>(args)...).c_str());
    std::exit(util::kExitIo);
}

std::string
ReadFileOrDie(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        IoFatal("cannot open ", path);
    std::ostringstream body;
    body << in.rdbuf();
    if (in.bad())
        IoFatal("cannot read ", path);
    return body.str();
}

void
WriteFileOrDie(const std::string& path, const std::string& body)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
    out.flush();
    if (!out)
        IoFatal("cannot write ", path);
}

/**
 * Minimizes (optionally) and reports one failing seed; writes the repro
 * schedule under --out-dir when given. Returns the schedule actually
 * reported (minimized or original).
 */
void
ReportFailure(const Options& opts, const chaos::SeedResult& failure)
{
    io::ChaosSchedule repro = failure.schedule;
    if (opts.minimize) {
        util::StatusOr<io::ChaosSchedule> minimized =
            chaos::Minimize(opts.spec, failure.schedule);
        if (minimized.ok())
            repro = *minimized;
        else
            std::fprintf(stderr, "atum-chaos: minimize failed: %s\n",
                         minimized.status().ToString().c_str());
    }
    std::fprintf(stderr, "FAIL %s\n", failure.Summary().c_str());
    obs::flight::Note("chaos.seed-failure", failure.Summary().c_str(),
                      failure.seed, 0);
    if (!opts.out_dir.empty()) {
        const std::string path = opts.out_dir + "/failing-seed-" +
                                 std::to_string(failure.seed) + ".schedule";
        WriteFileOrDie(path, repro.Serialize());
        std::fprintf(stderr, "  repro written to %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "  repro schedule:\n%s",
                     repro.Serialize().c_str());
    }
}

/** ReportFailure for a failing serve drill (MinimizeServe instead). */
void
ReportServeFailure(const Options& opts, const chaos::ServeSeedResult& failure)
{
    io::ChaosSchedule repro = failure.schedule;
    if (opts.minimize) {
        util::StatusOr<io::ChaosSchedule> minimized =
            chaos::MinimizeServe(opts.serve_spec, failure.schedule);
        if (minimized.ok())
            repro = *minimized;
        else
            std::fprintf(stderr, "atum-chaos: minimize failed: %s\n",
                         minimized.status().ToString().c_str());
    }
    std::fprintf(stderr, "FAIL %s\n", failure.Summary().c_str());
    obs::flight::Note("chaos.seed-failure", failure.Summary().c_str(),
                      failure.seed, 0);
    if (!opts.out_dir.empty()) {
        const std::string path = opts.out_dir + "/failing-serve-seed-" +
                                 std::to_string(failure.seed) + ".schedule";
        WriteFileOrDie(path, repro.Serialize());
        std::fprintf(stderr, "  repro written to %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "  repro schedule:\n%s",
                     repro.Serialize().c_str());
    }
}

/** ReportFailure for a failing net drill (MinimizeNet instead). */
void
ReportNetFailure(const Options& opts, const chaos::NetSeedResult& failure)
{
    io::ChaosSchedule repro = failure.schedule;
    if (opts.minimize) {
        util::StatusOr<io::ChaosSchedule> minimized =
            chaos::MinimizeNet(opts.net_spec, failure.schedule);
        if (minimized.ok())
            repro = *minimized;
        else
            std::fprintf(stderr, "atum-chaos: minimize failed: %s\n",
                         minimized.status().ToString().c_str());
    }
    std::fprintf(stderr, "FAIL %s\n", failure.Summary().c_str());
    obs::flight::Note("chaos.seed-failure", failure.Summary().c_str(),
                      failure.seed, 0);
    if (!opts.out_dir.empty()) {
        const std::string path = opts.out_dir + "/failing-net-seed-" +
                                 std::to_string(failure.seed) + ".schedule";
        WriteFileOrDie(path, repro.Serialize());
        std::fprintf(stderr, "  repro written to %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "  repro schedule:\n%s",
                     repro.Serialize().c_str());
    }
}

/** Prints the fault-free op counts schedules aim into (for authoring). */
int
RunProbe(const Options& opts)
{
    util::StatusOr<io::OpCounts> probe =
        opts.net
            ? chaos::ProbeNetOpCounts(opts.net_spec, opts.first_seed)
        : opts.serve
            ? chaos::ProbeServeOpCounts(opts.serve_spec, opts.first_seed)
            : chaos::ProbeOpCounts(opts.spec);
    if (!probe.ok())
        IoFatal("probe failed: ", probe.status().ToString());
    std::printf("writes %llu\nsyncs %llu\nreads %llu\nrenames %llu\n"
                "unlinks %llu\ndirsyncs %llu\n"
                "sends %llu\nrecvs %llu\nrequests %llu\n",
                static_cast<unsigned long long>(probe->writes),
                static_cast<unsigned long long>(probe->syncs),
                static_cast<unsigned long long>(probe->reads),
                static_cast<unsigned long long>(probe->renames),
                static_cast<unsigned long long>(probe->unlinks),
                static_cast<unsigned long long>(probe->dirsyncs),
                static_cast<unsigned long long>(probe->sends),
                static_cast<unsigned long long>(probe->recvs),
                static_cast<unsigned long long>(probe->requests));
    return util::kExitOk;
}

int
RunReplay(const Options& opts)
{
    util::StatusOr<io::ChaosSchedule> schedule =
        io::ChaosSchedule::Parse(ReadFileOrDie(opts.replay));
    if (!schedule.ok())
        IoFatal(opts.replay, ": ", schedule.status().ToString());

    if (opts.net) {
        chaos::NetCampaignSpec spec = opts.net_spec;
        if (spec.campaigns.empty())
            spec.campaigns = schedule->campaigns;
        util::StatusOr<chaos::NetSeedResult> result =
            chaos::ReplayNetSchedule(spec, *schedule);
        if (!result.ok())
            IoFatal("replay failed to run: ", result.status().ToString());
        std::printf("%s\n", result->Summary().c_str());
        if (result->ok())
            return util::kExitOk;
        Options report_opts = opts;
        report_opts.net_spec = spec;
        ReportNetFailure(report_opts, *result);
        return util::kExitError;
    }

    if (opts.serve) {
        chaos::ServeCampaignSpec spec = opts.serve_spec;
        if (spec.campaigns.empty())
            spec.campaigns = schedule->campaigns;
        util::StatusOr<chaos::ServeSeedResult> result =
            chaos::ReplayServeSchedule(spec, *schedule);
        if (!result.ok())
            IoFatal("replay failed to run: ", result.status().ToString());
        std::printf("%s\n", result->Summary().c_str());
        if (result->ok())
            return util::kExitOk;
        Options report_opts = opts;
        report_opts.serve_spec = spec;
        ReportServeFailure(report_opts, *result);
        return util::kExitError;
    }

    chaos::CampaignSpec spec = opts.spec;
    if (spec.campaigns.empty())
        spec.campaigns = schedule->campaigns;

    util::StatusOr<chaos::SeedResult> result =
        chaos::ReplaySchedule(spec, *schedule);
    if (!result.ok())
        IoFatal("replay failed to run: ", result.status().ToString());

    std::printf("%s\n", result->Summary().c_str());
    if (result->ok())
        return util::kExitOk;
    Options report_opts = opts;
    report_opts.spec = spec;
    ReportFailure(report_opts, *result);
    return util::kExitError;
}

/** The hostile-network campaign (--net). */
int
RunNetSeeds(Options& opts)
{
    opts.net_spec.campaigns = opts.campaigns;
    uint64_t done = 0;
    const auto on_seed = [&](const chaos::NetSeedResult& r) {
        ++done;
        if (opts.verbose || !r.ok())
            std::printf("%s\n", r.Summary().c_str());
        else if (done % 50 == 0)
            std::printf("... %llu/%llu seeds\n",
                        static_cast<unsigned long long>(done),
                        static_cast<unsigned long long>(opts.seeds));
    };

    util::StatusOr<chaos::NetCampaignResult> result =
        chaos::RunNetCampaign(opts.net_spec, opts.first_seed, opts.seeds,
                              on_seed);
    if (!result.ok())
        IoFatal("net campaign failed to run: ", result.status().ToString());

    std::printf(
        "net campaign: %llu seeds, %llu faults fired, %llu kills, "
        "%llu acks (%llu dedup), %llu retries, %zu failing\n",
        static_cast<unsigned long long>(result->seeds_run),
        static_cast<unsigned long long>(result->faults_fired),
        static_cast<unsigned long long>(result->kills),
        static_cast<unsigned long long>(result->acks),
        static_cast<unsigned long long>(result->dup_acks),
        static_cast<unsigned long long>(result->retries),
        result->failures.size());

    for (const chaos::NetSeedResult& failure : result->failures)
        ReportNetFailure(opts, failure);
    if (!result->ok() && obs::flight::Armed() &&
        obs::flight::DumpNow("campaign-failure"))
        std::fprintf(stderr, "  flight recorder: %s/chaos.flight.json\n",
                     opts.out_dir.c_str());
    return result->ok() ? util::kExitOk : util::kExitError;
}

/** The protocol codec fuzzer (--fuzz-protocol): --seeds is the input
 *  count, --first-seed picks the deterministic mutation stream. */
int
RunFuzz(const Options& opts)
{
    const chaos::FuzzReport report =
        chaos::FuzzProtocol(opts.first_seed, opts.seeds);
    std::printf("%s\n", report.Summary().c_str());
    return report.ok() ? util::kExitOk : util::kExitError;
}

/** The serve kill-restart campaign (--serve --campaign ...). */
int
RunServeSeeds(Options& opts)
{
    opts.serve_spec.campaigns = opts.campaigns;
    uint64_t done = 0;
    const auto on_seed = [&](const chaos::ServeSeedResult& r) {
        ++done;
        if (opts.verbose || !r.ok())
            std::printf("%s\n", r.Summary().c_str());
        else if (done % 50 == 0)
            std::printf("... %llu/%llu seeds\n",
                        static_cast<unsigned long long>(done),
                        static_cast<unsigned long long>(opts.seeds));
    };

    util::StatusOr<chaos::ServeCampaignResult> result =
        chaos::RunServeCampaign(opts.serve_spec, opts.first_seed, opts.seeds,
                                on_seed);
    if (!result.ok())
        IoFatal("serve campaign failed to run: ", result.status().ToString());

    std::printf(
        "serve campaign: %llu seeds, %llu faults fired, %llu power cuts, "
        "%llu resumes, %llu salvages, %zu failing\n",
        static_cast<unsigned long long>(result->seeds_run),
        static_cast<unsigned long long>(result->faults_fired),
        static_cast<unsigned long long>(result->power_cuts),
        static_cast<unsigned long long>(result->resumes),
        static_cast<unsigned long long>(result->salvages),
        result->failures.size());
    if (opts.serve_spec.sweeps > 0)
        std::printf(
            "  sweeps: %llu acked, %llu rows complete, "
            "%llu partial-journal resumes\n",
            static_cast<unsigned long long>(result->sweeps_acked),
            static_cast<unsigned long long>(result->sweep_rows),
            static_cast<unsigned long long>(result->sweep_partial_resumes));

    for (const chaos::ServeSeedResult& failure : result->failures)
        ReportServeFailure(opts, failure);
    if (!result->ok() && obs::flight::Armed() &&
        obs::flight::DumpNow("campaign-failure"))
        std::fprintf(stderr, "  flight recorder: %s/chaos.flight.json\n",
                     opts.out_dir.c_str());
    return result->ok() ? util::kExitOk : util::kExitError;
}

int
RunSeeds(Options& opts)
{
    opts.spec.campaigns = opts.campaigns;
    uint64_t done = 0;
    const auto on_seed = [&](const chaos::SeedResult& r) {
        ++done;
        if (opts.verbose || !r.ok())
            std::printf("%s\n", r.Summary().c_str());
        else if (done % 50 == 0)
            std::printf("... %llu/%llu seeds\n",
                        static_cast<unsigned long long>(done),
                        static_cast<unsigned long long>(opts.seeds));
    };

    util::StatusOr<chaos::CampaignResult> result =
        chaos::RunCampaign(opts.spec, opts.first_seed, opts.seeds, on_seed);
    if (!result.ok())
        IoFatal("campaign failed to run: ", result.status().ToString());

    std::printf(
        "campaign: %llu seeds, %llu faults fired, %llu power cuts, "
        "%llu resumes, %llu salvages, %zu failing\n",
        static_cast<unsigned long long>(result->seeds_run),
        static_cast<unsigned long long>(result->faults_fired),
        static_cast<unsigned long long>(result->power_cuts),
        static_cast<unsigned long long>(result->resumes),
        static_cast<unsigned long long>(result->salvages),
        result->failures.size());

    for (const chaos::SeedResult& failure : result->failures)
        ReportFailure(opts, failure);
    if (!result->ok() && obs::flight::Armed() &&
        obs::flight::DumpNow("campaign-failure"))
        std::fprintf(stderr, "  flight recorder: %s/chaos.flight.json\n",
                     opts.out_dir.c_str());
    return result->ok() ? util::kExitOk : util::kExitError;
}

}  // namespace
}  // namespace atum

int
main(int argc, char** argv)
{
    atum::Options opts = atum::ParseArgs(argc, argv);
    if (!opts.out_dir.empty()) {
        // Failing seeds leave a post-mortem alongside the repro
        // schedules; without --out-dir there is nowhere durable to put
        // one, so the recorder stays disarmed.
        const std::string flight_path =
            opts.out_dir + "/chaos.flight.json";
        atum::obs::flight::SetDumpPath(flight_path.c_str());
        atum::obs::flight::InstallCrashHandler();
    }
    if (opts.fuzz)
        return atum::RunFuzz(opts);
    if (opts.probe)
        return atum::RunProbe(opts);
    if (!opts.replay.empty())
        return atum::RunReplay(opts);
    if (opts.net)
        return atum::RunNetSeeds(opts);
    if (opts.serve)
        return atum::RunServeSeeds(opts);
    return atum::RunSeeds(opts);
}
