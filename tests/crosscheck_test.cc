// Crosscheck tests: the independent hardware event counters and the
// trace must tell the same story. Unit tests pin the interval algebra
// (loss widening, prefix bounds, fill accounting); a deliberately
// perturbed counter proves the checker has teeth; and a property suite
// runs EVERY workload through the three capture-degradation scenarios
// (checkpoint/resume, tracer degrade, powercut-then-salvage) asserting
// the derived intervals always cover the true counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/crosscheck.h"
#include "core/atum_tracer.h"
#include "core/checkpoint.h"
#include "core/session.h"
#include "cpu/machine.h"
#include "io/mem_vfs.h"
#include "kernel/boot.h"
#include "trace/container.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "workloads/workloads.h"

namespace atum::analysis {
namespace {

using core::AtumConfig;
using core::AtumTracer;
using cpu::EventCounters;
using cpu::Machine;
using trace::Record;
using trace::RecordType;

constexpr uint16_t kTnvVector = static_cast<uint16_t>(cpu::ExcVector::kTnv);
constexpr uint16_t kChmkVector =
    static_cast<uint16_t>(cpu::ExcVector::kChmk);

Machine::Config
SmallConfig()
{
    Machine::Config config;
    config.mem_bytes = 2u << 20;
    config.timer_reload = 2000;
    return config;
}

Record
Make(RecordType type, uint32_t addr = 0, uint16_t info = 0)
{
    Record r;
    r.type = type;
    r.addr = addr;
    r.info = info;
    return r;
}

/** n records of one type. */
void
Append(std::vector<Record>& records, RecordType type, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        records.push_back(Make(type));
}

struct CaptureOutcome {
    std::vector<Record> records;
    EventCounters ev;
    bool halted = false;
    uint64_t lost = 0;
};

/** Full in-process capture of one workload with opcode markers on. */
CaptureOutcome
CaptureWorkload(const std::string& name, bool record_opcodes = true)
{
    Machine machine(SmallConfig());
    trace::VectorSink sink;
    AtumConfig config;
    config.buffer_bytes = 64u << 10;
    config.record_opcodes = record_opcodes;
    AtumTracer tracer(machine, sink, config);
    kernel::BootSystem(machine, {workloads::MakeWorkload(name)});
    const core::SessionResult result =
        core::RunTraced(machine, tracer, 200'000'000);
    CaptureOutcome out;
    out.records = sink.records();
    out.ev = machine.event_counters();
    out.halted = result.halted;
    out.lost = result.lost_records;
    return out;
}

// ---------------------------------------------------------------------------
// Interval algebra on synthetic streams.

TEST(Crosscheck, ExactStreamPins)
{
    std::vector<Record> records;
    Append(records, RecordType::kIFetch, 7);
    Append(records, RecordType::kRead, 5);
    Append(records, RecordType::kWrite, 3);

    EventCounters ev;
    ev.ifetches = 7;
    ev.reads = 5;
    ev.writes = 3;
    EXPECT_TRUE(Crosscheck(records, ev).passed());

    ev.reads = 6;  // one phantom read the trace never saw
    const CrosscheckReport report = Crosscheck(records, ev);
    EXPECT_FALSE(report.passed());
    for (const CounterCheck& c : report.checks) {
        if (c.name == "reads")
            EXPECT_FALSE(c.ok);
    }
}

TEST(Crosscheck, LossMarkersWidenIntervals)
{
    std::vector<Record> records;
    Append(records, RecordType::kRead, 5);
    records.push_back(Make(RecordType::kLoss, /*lost=*/3));

    EventCounters ev;
    for (uint64_t reads : {5u, 6u, 8u}) {
        ev.reads = reads;
        EXPECT_TRUE(Crosscheck(records, ev).passed()) << reads;
    }
    ev.reads = 4;  // below even the trace's own tally
    EXPECT_FALSE(Crosscheck(records, ev).passed());
    ev.reads = 9;  // more than the marker can account for
    EXPECT_FALSE(Crosscheck(records, ev).passed());
}

TEST(Crosscheck, PrefixModeDropsUpperBounds)
{
    std::vector<Record> records;
    Append(records, RecordType::kRead, 5);

    EventCounters ev;
    ev.reads = 5'000'000;  // the run went on long after the torn trace
    CrosscheckOptions opts;
    opts.prefix = true;
    EXPECT_TRUE(Crosscheck(records, ev, opts).passed());
    EXPECT_FALSE(Crosscheck(records, ev).passed());

    ev.reads = 4;  // a prefix still lower-bounds every counter
    EXPECT_FALSE(Crosscheck(records, ev, opts).passed());
}

TEST(Crosscheck, TlbFillBoundsAccountForFaults)
{
    // Four misses, one of which walked into a page fault: the fill
    // count is only bounded, [misses - faults, misses].
    std::vector<Record> records;
    Append(records, RecordType::kTlbMiss, 4);
    records.push_back(Make(RecordType::kException, 0, kTnvVector));

    EventCounters ev;
    ev.tlb_misses = 4;
    ev.exceptions = 1;
    for (uint64_t fills : {3u, 4u}) {
        ev.tlb_fills = fills;
        EXPECT_TRUE(Crosscheck(records, ev).passed()) << fills;
    }
    for (uint64_t fills : {2u, 5u}) {
        ev.tlb_fills = fills;
        EXPECT_FALSE(Crosscheck(records, ev).passed()) << fills;
    }
}

TEST(Crosscheck, SyscallsAreChmkDispatches)
{
    std::vector<Record> records;
    records.push_back(Make(RecordType::kException, 0, kChmkVector));
    records.push_back(Make(RecordType::kException, 0, kTnvVector));

    EventCounters ev;
    ev.exceptions = 2;
    ev.syscalls = 1;
    EXPECT_TRUE(Crosscheck(records, ev).passed());
    ev.syscalls = 2;
    EXPECT_FALSE(Crosscheck(records, ev).passed());
}

TEST(Crosscheck, DmaBytesAreFourPerWordRecord)
{
    std::vector<Record> records;
    Append(records, RecordType::kDma, 3);

    EventCounters ev;
    ev.dma_bytes = 12;
    EXPECT_TRUE(Crosscheck(records, ev).passed());
    ev.dma_bytes = 11;
    EXPECT_FALSE(Crosscheck(records, ev).passed());
}

TEST(Crosscheck, InstructionsNeedOpcodeMarkers)
{
    // Without kOpcode records the instruction count is unknowable from
    // the stream: the row reports skipped and never fails.
    std::vector<Record> records;
    Append(records, RecordType::kIFetch, 2);

    EventCounters ev;
    ev.ifetches = 2;
    ev.instructions = 123456;
    const CrosscheckReport report = Crosscheck(records, ev);
    EXPECT_TRUE(report.passed());
    for (const CounterCheck& c : report.checks) {
        if (c.name == "instructions")
            EXPECT_FALSE(c.checked);
    }

    records.push_back(Make(RecordType::kOpcode));
    EXPECT_FALSE(Crosscheck(records, ev).passed());
}

// ---------------------------------------------------------------------------
// The checker has teeth: a real capture with any one counter perturbed
// by one must fail, and the report must finger exactly that counter.

TEST(Crosscheck, InjectedCounterBugIsCaught)
{
    const CaptureOutcome out = CaptureWorkload("server");
    ASSERT_TRUE(out.halted);
    ASSERT_TRUE(Crosscheck(out.records, out.ev).passed());

    const std::vector<
        std::pair<const char*, std::function<void(EventCounters&)>>>
        bugs = {
            {"instructions", [](EventCounters& e) { ++e.instructions; }},
            {"ifetches", [](EventCounters& e) { ++e.ifetches; }},
            {"reads", [](EventCounters& e) { ++e.reads; }},
            {"writes", [](EventCounters& e) { --e.writes; }},
            {"pte_reads", [](EventCounters& e) { ++e.pte_reads; }},
            {"tlb_misses", [](EventCounters& e) { --e.tlb_misses; }},
            {"exceptions", [](EventCounters& e) { ++e.exceptions; }},
            {"syscalls", [](EventCounters& e) { --e.syscalls; }},
            {"dma_bytes", [](EventCounters& e) { e.dma_bytes += 4; }},
        };
    for (const auto& [name, inject] : bugs) {
        EventCounters buggy = out.ev;
        inject(buggy);
        const CrosscheckReport report = Crosscheck(out.records, buggy);
        EXPECT_FALSE(report.passed()) << name;
        for (const CounterCheck& c : report.checks) {
            if (c.name == name)
                EXPECT_FALSE(c.ok) << name;
            else if (c.name != "tlb_fills")  // bounded by tlb_misses
                EXPECT_TRUE(c.ok) << c.name << " blamed for " << name;
        }
    }
}

// ---------------------------------------------------------------------------
// Manifest plumbing.

TEST(ReadCountersFromManifest, RoundTripsAndRejectsJunk)
{
    io::MemVfs vfs;
    auto write = [&](const std::string& path, const std::string& body) {
        auto file = vfs.Create(path);
        ASSERT_TRUE(file.ok());
        ASSERT_TRUE((*file)->Write(body.data(), body.size()).ok());
        ASSERT_TRUE((*file)->Close().ok());
    };

    write("run.json", R"({"schema":"atum-run-v1","counters":{)"
                      R"("cpu.ev.instructions":42,"cpu.ev.reads":7,)"
                      R"("cpu.ev.dma_bytes":4096,"replay.records":9}})");
    util::StatusOr<EventCounters> ev =
        ReadCountersFromManifest("run.json", vfs);
    ASSERT_TRUE(ev.ok()) << ev.status().ToString();
    EXPECT_EQ(ev->instructions, 42u);
    EXPECT_EQ(ev->reads, 7u);
    EXPECT_EQ(ev->dma_bytes, 4096u);
    EXPECT_EQ(ev->writes, 0u);  // absent key reads as zero

    write("nocounters.json", R"({"schema":"atum-run-v1"})");
    EXPECT_FALSE(ReadCountersFromManifest("nocounters.json", vfs).ok());

    write("oldbuild.json", R"({"counters":{"cpu.instructions":42}})");
    EXPECT_FALSE(ReadCountersFromManifest("oldbuild.json", vfs).ok());

    write("garbage.json", "not json at all");
    EXPECT_FALSE(ReadCountersFromManifest("garbage.json", vfs).ok());

    EXPECT_FALSE(ReadCountersFromManifest("missing.json", vfs).ok());
}

// ---------------------------------------------------------------------------
// Property: for EVERY workload, under every capture-degradation mode,
// the derived intervals cover the true counters.

class CrosscheckProperty : public ::testing::TestWithParam<std::string>
{
};

// Clean end-to-end capture: intervals must pin every counter exactly.
TEST_P(CrosscheckProperty, CleanCaptureIsZeroDelta)
{
    const CaptureOutcome out = CaptureWorkload(GetParam());
    ASSERT_TRUE(out.halted);
    EXPECT_EQ(out.lost, 0u);
    const CrosscheckReport report = Crosscheck(out.records, out.ev);
    EXPECT_TRUE(report.passed()) << report.ToString();
    for (const CounterCheck& c : report.checks) {
        if (c.checked && c.name != "tlb_fills")
            EXPECT_EQ(c.derived.lo, c.derived.hi) << c.name;
    }
}

// Checkpoint mid-run, restore into a fresh machine, finish there: the
// stitched stream must still match the restored machine's counters
// (which the checkpoint carried across) with zero slack.
TEST_P(CrosscheckProperty, CheckpointResumeCoversCounters)
{
    const Machine::Config mconfig = SmallConfig();
    AtumConfig tconfig;
    tconfig.buffer_bytes = 16u << 10;
    tconfig.record_opcodes = true;

    Machine machine(mconfig);
    trace::VectorSink sink;
    AtumTracer tracer(machine, sink, tconfig);
    kernel::BootSystem(machine, {workloads::MakeWorkload(GetParam())});
    tracer.Attach();
    machine.Run(60'000);

    core::CheckpointMeta meta;
    meta.machine_config = mconfig;
    meta.tracer_config = tconfig;
    trace::MemoryByteSink ckpt_bytes;
    ASSERT_TRUE(
        core::WriteCheckpoint(ckpt_bytes, meta, machine, tracer, nullptr)
            .ok());
    const size_t records_at_ckpt = sink.records().size();

    trace::MemoryByteSource source(ckpt_bytes.bytes());
    util::StatusOr<core::Checkpoint> ckpt = core::Checkpoint::Read(source);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();

    Machine restored(ckpt->meta().machine_config);
    trace::VectorSink restored_sink;
    AtumTracer restored_tracer(restored, restored_sink,
                               ckpt->meta().tracer_config);
    ASSERT_TRUE(ckpt->RestoreMachine(restored).ok());
    ASSERT_TRUE(ckpt->RestoreTracer(restored_tracer).ok());
    restored_tracer.Attach();
    if (!restored.halted())
        restored.Run(200'000'000);
    ASSERT_TRUE(restored.halted());
    restored_tracer.Flush();

    std::vector<Record> stitched(sink.records().begin(),
                                 sink.records().begin() +
                                     static_cast<long>(records_at_ckpt));
    stitched.insert(stitched.end(), restored_sink.records().begin(),
                    restored_sink.records().end());
    const CrosscheckReport report =
        Crosscheck(stitched, restored.event_counters());
    EXPECT_TRUE(report.passed()) << report.ToString();
    EXPECT_EQ(report.lost, 0u);
}

/** Sink that refuses the first `failures` appends, then accepts. */
class FlakySink : public trace::TraceSink
{
  public:
    explicit FlakySink(uint64_t failures) : remaining_(failures) {}

    util::Status Append(const Record& record) override
    {
        if (remaining_ > 0) {
            --remaining_;
            return util::Unavailable("sink offline");
        }
        records_.push_back(record);
        return util::OkStatus();
    }

    const std::vector<Record>& records() const { return records_; }

  private:
    uint64_t remaining_;
    std::vector<Record> records_;
};

// One full drain episode fails before the sink recovers: records are
// lost, a kLoss marker lands in the stream, and the widened intervals
// must still cover the true counters.
TEST_P(CrosscheckProperty, TracerDegradeCoversCounters)
{
    Machine machine(SmallConfig());
    FlakySink sink(4);
    AtumConfig config;
    config.buffer_bytes = 4u << 10;
    config.record_opcodes = true;
    AtumTracer tracer(machine, sink, config);
    kernel::BootSystem(machine, {workloads::MakeWorkload(GetParam())});

    const core::SessionResult result =
        core::RunTraced(machine, tracer, 200'000'000);
    ASSERT_TRUE(result.halted);
    ASSERT_GT(result.lost_records, 0u);

    const CrosscheckReport report =
        Crosscheck(sink.records(), machine.event_counters());
    EXPECT_TRUE(report.passed()) << report.ToString();
    EXPECT_EQ(report.lost, result.lost_records);
}

// Power cut: the sealed container is truncated at an arbitrary byte and
// the tolerant scanner salvages the surviving prefix. In prefix mode
// the salvage must lower-bound the true counters; treating the same
// prefix as a complete trace must FAIL (the checker notices the hole).
TEST_P(CrosscheckProperty, PowercutSalvagePrefixCoversCounters)
{
    const CaptureOutcome out = CaptureWorkload(GetParam());
    ASSERT_TRUE(out.halted);

    trace::MemoryByteSink container;
    ASSERT_TRUE(trace::WriteAtf2(container, out.records).ok());
    std::vector<uint8_t> torn = container.bytes();
    torn.resize(torn.size() * 2 / 3);

    std::vector<Record> salvaged;
    trace::MemoryByteSource source(torn);
    const trace::ScanReport scan = trace::ScanTrace(source, &salvaged);
    ASSERT_TRUE(scan.recognized);
    ASSERT_LT(salvaged.size(), out.records.size());

    CrosscheckOptions opts;
    opts.prefix = true;
    EXPECT_TRUE(Crosscheck(salvaged, out.ev, opts).passed());
    EXPECT_FALSE(Crosscheck(salvaged, out.ev).passed())
        << "a torn trace passed as complete";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CrosscheckProperty,
    ::testing::ValuesIn(workloads::AllWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        return info.param;
    });

}  // namespace
}  // namespace atum::analysis
