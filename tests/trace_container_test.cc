// Corruption matrix for the ATF2 container: every truncation point,
// bit flips in every chunk position, crash-model truncation, legacy v1
// handling, and the fault-injection harness itself. No test here may
// kill the process — malformed file input must always come back as a
// Status or a damage report.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "trace/container.h"
#include "trace/fault.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "util/status.h"

namespace atum::trace {
namespace {

std::string
TempPath(const char* name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

Record
TestRecord(uint32_t i)
{
    Record r;
    r.type = i % 2 ? RecordType::kRead : RecordType::kWrite;
    r.addr = 0x2000 + i * 4;
    r.flags = MakeFlags(i % 3 == 0, 4);
    r.info = static_cast<uint16_t>(i);
    return r;
}

std::vector<Record>
TestRecords(uint32_t n)
{
    std::vector<Record> records;
    for (uint32_t i = 0; i < n; ++i)
        records.push_back(TestRecord(i));
    return records;
}

/** A sealed container of `n` records, 4 records per chunk. */
std::vector<uint8_t>
SealedContainer(uint32_t n)
{
    MemoryByteSink sink;
    EXPECT_TRUE(WriteAtf2(sink, TestRecords(n), {.chunk_records = 4}).ok());
    return sink.bytes();
}

ScanReport
Scan(const std::vector<uint8_t>& bytes, std::vector<Record>* out = nullptr)
{
    MemoryByteSource source(bytes);
    return ScanTrace(source, out);
}

// With chunk_records = 4 the layout of a 10-record container is:
//   [0,32)    header
//   [32,80)   chunk 0 (records 0..3)
//   [80,128)  chunk 1 (records 4..7)
//   [128,160) chunk 2 (records 8..9, partial: 16 + 2*8)
//   [160,184) footer
constexpr size_t kChunk0 = 32;
constexpr size_t kChunk1 = 80;
constexpr size_t kChunk2 = 128;
constexpr size_t kFooter = 160;
constexpr size_t kEnd = 184;

TEST(Container, SealedRoundTripIsIntact)
{
    const std::vector<uint8_t> bytes = SealedContainer(10);
    ASSERT_EQ(bytes.size(), kEnd);

    std::vector<Record> back;
    const ScanReport report = Scan(bytes, &back);
    EXPECT_TRUE(report.intact());
    EXPECT_TRUE(report.sealed);
    EXPECT_FALSE(report.legacy_v1);
    EXPECT_EQ(report.chunks_ok, 3u);
    EXPECT_EQ(report.chunks_bad, 0u);
    EXPECT_EQ(report.records_salvaged, 10u);
    EXPECT_EQ(report.footer_records, 10u);
    EXPECT_EQ(report.valid_prefix_records, 10u);
    EXPECT_EQ(back, TestRecords(10));
}

TEST(Container, EmptyTraceSealsAndVerifies)
{
    MemoryByteSink sink;
    ASSERT_TRUE(WriteAtf2(sink, {}, {.chunk_records = 4}).ok());
    const ScanReport report = Scan(sink.bytes());
    EXPECT_TRUE(report.intact());
    EXPECT_EQ(report.records_salvaged, 0u);
}

TEST(Container, ZeroLengthFileIsNotATrace)
{
    const ScanReport report = Scan({});
    EXPECT_FALSE(report.recognized);
    EXPECT_FALSE(report.intact());
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_EQ(report.issues[0].error, "empty file");
}

// Truncate the container at EVERY byte boundary. The scanner must never
// die, never report intact, and always salvage exactly the records of
// the complete chunks in the surviving prefix.
TEST(Container, TruncationAtEveryOffsetSalvagesCompleteChunks)
{
    const std::vector<uint8_t> full = SealedContainer(10);
    ASSERT_EQ(full.size(), kEnd);

    for (size_t len = 0; len < full.size(); ++len) {
        const std::vector<uint8_t> cut(full.begin(), full.begin() + len);
        std::vector<Record> back;
        const ScanReport report = Scan(cut, &back);

        uint64_t want = 0;
        if (len >= kChunk1)
            want = 4;
        if (len >= kChunk2)
            want = 8;
        if (len >= kFooter)
            want = 10;

        EXPECT_FALSE(report.intact()) << "truncated to " << len;
        EXPECT_EQ(report.records_salvaged, want) << "truncated to " << len;
        EXPECT_EQ(report.valid_prefix_records, want)
            << "truncated to " << len;
        EXPECT_FALSE(report.sealed) << "truncated to " << len;
        ASSERT_EQ(back.size(), want) << "truncated to " << len;
        for (size_t i = 0; i < back.size(); ++i)
            EXPECT_EQ(back[i], TestRecord(static_cast<uint32_t>(i)));
    }
}

// Flip one payload byte in the first, middle, and last chunk: exactly
// that chunk is lost, the islands around it are salvaged bit-exact, and
// the guaranteed prefix stops at the flip.
TEST(Container, PayloadFlipConfinesLossToOneChunk)
{
    struct Case {
        size_t chunk_offset;
        uint64_t prefix;            ///< records before the bad chunk
        std::vector<uint32_t> ids;  ///< surviving record indices
    };
    const std::vector<Case> cases = {
        {kChunk0, 0, {4, 5, 6, 7, 8, 9}},
        {kChunk1, 4, {0, 1, 2, 3, 8, 9}},
        {kChunk2, 8, {0, 1, 2, 3, 4, 5, 6, 7}},
    };
    for (const Case& c : cases) {
        std::vector<uint8_t> bytes = SealedContainer(10);
        bytes[c.chunk_offset + kAtf2ChunkHeaderBytes + 3] ^= 0x40;

        std::vector<Record> back;
        const ScanReport report = Scan(bytes, &back);
        EXPECT_FALSE(report.intact());
        EXPECT_TRUE(report.sealed);  // the footer itself is fine
        EXPECT_EQ(report.chunks_ok, 2u);
        EXPECT_EQ(report.chunks_bad, 1u);
        EXPECT_EQ(report.records_salvaged, c.ids.size());
        EXPECT_EQ(report.valid_prefix_records, c.prefix);
        ASSERT_EQ(back.size(), c.ids.size());
        for (size_t i = 0; i < back.size(); ++i)
            EXPECT_EQ(back[i], TestRecord(c.ids[i]));
    }
}

TEST(Container, ChunkHeaderFlipResynchronizesAtNextMarker)
{
    std::vector<uint8_t> bytes = SealedContainer(10);
    bytes[kChunk1 + 5] ^= 0xFF;  // chunk 1's record-count field

    std::vector<Record> back;
    const ScanReport report = Scan(bytes, &back);
    EXPECT_FALSE(report.intact());
    EXPECT_EQ(report.records_salvaged, 6u);  // chunks 0 and 2
    EXPECT_EQ(report.valid_prefix_records, 4u);
    ASSERT_EQ(back.size(), 6u);
    EXPECT_EQ(back[4], TestRecord(8));
}

TEST(Container, HeaderFlipStillSalvagesAllChunks)
{
    std::vector<uint8_t> bytes = SealedContainer(10);
    bytes[9] ^= 0x01;  // version field; header CRC now fails

    const ScanReport report = Scan(bytes);
    EXPECT_FALSE(report.intact());
    // Chunks self-describe, so an untrusted header loses nothing.
    EXPECT_EQ(report.records_salvaged, 10u);
    EXPECT_EQ(report.valid_prefix_records, 0u);
}

TEST(Container, FooterFlipLeavesRecordsButNotSealed)
{
    std::vector<uint8_t> bytes = SealedContainer(10);
    bytes[kFooter + 8] ^= 0xFF;  // footer's record total

    const ScanReport report = Scan(bytes);
    EXPECT_FALSE(report.intact());
    EXPECT_FALSE(report.sealed);
    EXPECT_EQ(report.records_salvaged, 10u);
}

// ---------------------------------------------------------------------------
// Legacy v1.

std::vector<uint8_t>
V1Container(uint32_t n)
{
    std::vector<uint8_t> bytes(kV1Magic, kV1Magic + sizeof kV1Magic);
    for (uint32_t i = 0; i < n; ++i) {
        uint8_t packed[kRecordBytes];
        PackRecord(TestRecord(i), packed);
        bytes.insert(bytes.end(), packed, packed + sizeof packed);
    }
    return bytes;
}

TEST(Container, LegacyV1ReadsInFull)
{
    std::vector<Record> back;
    const ScanReport report = Scan(V1Container(7), &back);
    EXPECT_TRUE(report.intact());
    EXPECT_TRUE(report.legacy_v1);
    EXPECT_EQ(report.records_salvaged, 7u);
    EXPECT_EQ(back, TestRecords(7));
}

TEST(Container, LegacyV1TruncationKeepsWholeRecords)
{
    std::vector<uint8_t> bytes = V1Container(7);
    bytes.resize(bytes.size() - 3);  // tear the last record

    std::vector<Record> back;
    const ScanReport report = Scan(bytes, &back);
    EXPECT_FALSE(report.intact());
    EXPECT_EQ(report.records_salvaged, 6u);
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_NE(report.issues[0].error.find("truncated"), std::string::npos);
}

TEST(Container, LegacyV1StopsAtImplausibleRecord)
{
    std::vector<uint8_t> bytes = V1Container(7);
    // Poison record 3's type byte: v1 has no checksums, so nothing after
    // this point can be trusted (the bytes may be misaligned garbage).
    bytes[sizeof kV1Magic + 3 * kRecordBytes + 4] = 0xFF;

    std::vector<Record> back;
    const ScanReport report = Scan(bytes, &back);
    EXPECT_FALSE(report.intact());
    EXPECT_EQ(report.records_salvaged, 3u);
    EXPECT_EQ(back, TestRecords(3));
}

// ---------------------------------------------------------------------------
// Fault injection through the writer.

TEST(Container, FailedAppendConsumesNothingAndIsRetryable)
{
    MemoryByteSink base;
    // Write 0 is the header; write 1 is chunk 0's flush.
    FaultySink sink(base, FaultPlan{}.FailWrite(1));
    Atf2Writer writer(sink, {.chunk_records = 4});

    const std::vector<Record> records = TestRecords(10);
    uint64_t delivered = 0;
    unsigned retries = 0;
    while (delivered < records.size()) {
        const util::Status status = writer.Append(records[delivered]);
        if (status.ok())
            ++delivered;
        else
            ++retries;  // same record goes again: nothing was consumed
    }
    ASSERT_TRUE(writer.Seal().ok());
    EXPECT_EQ(retries, 1u);
    EXPECT_EQ(sink.faults_fired(), 1u);

    // Despite the mid-stream failure and retry: no duplicate, no gap.
    std::vector<Record> back;
    const ScanReport report = Scan(base.bytes(), &back);
    EXPECT_TRUE(report.intact());
    EXPECT_EQ(back, records);
}

TEST(Container, CrashTruncationLeavesRecoverablePrefix)
{
    MemoryByteSink base;
    // Crash model: everything past byte 100 claims success but vanishes.
    // 100 bytes = header (32) + chunk 0 (48) + 20 bytes of chunk 1.
    FaultySink sink(base, FaultPlan{}.TruncateAt(100));
    ASSERT_TRUE(
        WriteAtf2(sink, TestRecords(10), {.chunk_records = 4}).ok());
    ASSERT_EQ(base.bytes().size(), 100u);

    std::vector<Record> back;
    const ScanReport report = Scan(base.bytes(), &back);
    EXPECT_FALSE(report.intact());
    EXPECT_FALSE(report.sealed);
    EXPECT_EQ(report.records_salvaged, 4u);
    EXPECT_EQ(back, TestRecords(4));
}

TEST(Container, InFlightFlipIsDetected)
{
    MemoryByteSink base;
    FaultySink sink(base, FaultPlan{}.FlipByte(kChunk1 + 20));
    ASSERT_TRUE(
        WriteAtf2(sink, TestRecords(10), {.chunk_records = 4}).ok());

    const ScanReport report = Scan(base.bytes());
    EXPECT_FALSE(report.intact());
    EXPECT_EQ(report.chunks_bad, 1u);
    EXPECT_EQ(report.records_salvaged, 6u);
}

TEST(Container, FailedReadIsReportedNotFatal)
{
    const std::vector<uint8_t> bytes = SealedContainer(10);
    MemoryByteSource base(bytes);
    FaultySource source(base, FaultPlan{}.FailRead(0));
    const ScanReport report = ScanTrace(source, nullptr);
    EXPECT_FALSE(report.intact());
    EXPECT_EQ(report.records_salvaged, 0u);
    ASSERT_FALSE(report.issues.empty());
    EXPECT_NE(report.issues[0].error.find("read failed"), std::string::npos);
}

TEST(Container, SalvageOfDamagedFileVerifiesIntact)
{
    std::vector<uint8_t> bytes = SealedContainer(10);
    bytes[kChunk1 + 20] ^= 0x80;

    std::vector<Record> salvaged;
    const ScanReport damaged = Scan(bytes, &salvaged);
    ASSERT_FALSE(damaged.intact());
    ASSERT_GE(salvaged.size(), damaged.valid_prefix_records);

    MemoryByteSink repaired;
    ASSERT_TRUE(WriteAtf2(repaired, salvaged).ok());
    std::vector<Record> back;
    const ScanReport report = Scan(repaired.bytes(), &back);
    EXPECT_TRUE(report.intact());
    EXPECT_EQ(back, salvaged);
}

TEST(Container, RandomPlansAreDeterministic)
{
    const FaultPlan a = FaultPlan::Random(42, 4096, 3);
    const FaultPlan b = FaultPlan::Random(42, 4096, 3);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t i = 0; i < a.ops.size(); ++i)
        EXPECT_EQ(a.ops[i].ToString(), b.ops[i].ToString());
    const FaultPlan c = FaultPlan::Random(43, 4096, 3);
    EXPECT_NE(a.ToString(), c.ToString());
}

// ---------------------------------------------------------------------------
// File-backed sink/source behavior.

TEST(Container, FileSinkDoubleCloseIsIdempotent)
{
    const std::string path = TempPath("double_close.atf");
    auto sink = FileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    for (uint32_t i = 0; i < 5; ++i)
        ASSERT_TRUE((*sink)->Append(TestRecord(i)).ok());

    EXPECT_TRUE((*sink)->Close().ok());
    EXPECT_TRUE((*sink)->Close().ok());  // second close: same outcome
    EXPECT_EQ((*sink)->count(), 5u);

    const util::Status late = (*sink)->Append(TestRecord(9));
    EXPECT_EQ(late.code(), util::StatusCode::kFailedPrecondition);

    auto loaded = LoadTrace(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(*loaded, TestRecords(5));
    std::remove(path.c_str());
}

TEST(Container, FileSinkOpenFailureIsStatusNotFatal)
{
    auto sink = FileSink::Open("/nonexistent/dir/trace.atf");
    ASSERT_FALSE(sink.ok());
    // The posix wrappers classify ENOENT precisely (it still maps to
    // exit 3 in the tools' shared contract, like every I/O failure).
    EXPECT_EQ(sink.status().code(), util::StatusCode::kNotFound);
}

TEST(Container, LoadTraceOnDamagedFileIsDataLoss)
{
    const std::string path = TempPath("damaged.atf");
    {
        auto out = FileByteSink::Open(path);
        ASSERT_TRUE(out.ok());
        std::vector<uint8_t> bytes = SealedContainer(10);
        bytes[kChunk0 + 20] ^= 0x01;
        ASSERT_TRUE((*out)->Write(bytes.data(), bytes.size()).ok());
        ASSERT_TRUE((*out)->Close().ok());
    }
    auto loaded = LoadTrace(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss);
    EXPECT_NE(loaded.status().message().find("salvageable"),
              std::string::npos);

    // The tolerant source still serves the islands.
    auto source = FileSource::Open(path);
    ASSERT_TRUE(source.ok());
    size_t served = 0;
    while ((*source)->Next().has_value())
        ++served;
    EXPECT_EQ(served, 6u);
    EXPECT_EQ((*source)->status().code(), util::StatusCode::kDataLoss);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace atum::trace
