// Writes a deterministic 1000-record ATF2 container (128 records per
// chunk) to the given path. scripts/test_tools.sh corrupts a copy of it
// at a fixed offset and golden-diffs the `atum-report --verify` output,
// so this generator must stay bit-stable.

#include <cstdio>
#include <vector>

#include "trace/container.h"
#include "trace/record.h"

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: make_golden_trace OUT\n");
        return 2;
    }
    std::vector<atum::trace::Record> records;
    for (uint32_t i = 0; i < 1000; ++i) {
        atum::trace::Record r;
        r.type = i % 3 == 0 ? atum::trace::RecordType::kIFetch
                            : atum::trace::RecordType::kRead;
        r.addr = 0x1000 + i * 4;
        r.flags = atum::trace::MakeFlags(i % 5 == 0, 4);
        r.info = static_cast<uint16_t>(i);
        records.push_back(r);
    }
    auto out = atum::trace::FileByteSink::Open(argv[1]);
    if (!out.ok()) {
        std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
        return 3;
    }
    atum::trace::Atf2WriterOptions options;
    options.chunk_records = 128;
    atum::util::Status status = atum::trace::WriteAtf2(**out, records,
                                                       options);
    if (status.ok())
        status = (*out)->Close();
    if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
    }
    return 0;
}
