// Unit tests for PhysicalMemory: endianness, bounds, block copies, and the
// reserved (ATUM buffer) region accounting.

#include <gtest/gtest.h>

#include "mem/physical_memory.h"

namespace atum {
namespace {

TEST(PhysicalMemory, StartsZeroed)
{
    PhysicalMemory mem(4 * kPageBytes);
    for (uint32_t a = 0; a < mem.size(); a += 97)
        EXPECT_EQ(mem.Read8(a), 0);
}

TEST(PhysicalMemory, LittleEndianScalars)
{
    PhysicalMemory mem(kPageBytes);
    mem.Write32(0, 0x01020304);
    EXPECT_EQ(mem.Read8(0), 0x04);
    EXPECT_EQ(mem.Read8(1), 0x03);
    EXPECT_EQ(mem.Read8(2), 0x02);
    EXPECT_EQ(mem.Read8(3), 0x01);
    EXPECT_EQ(mem.Read16(0), 0x0304);
    EXPECT_EQ(mem.Read16(2), 0x0102);
    EXPECT_EQ(mem.Read32(0), 0x01020304u);
}

TEST(PhysicalMemory, UnalignedAccess)
{
    PhysicalMemory mem(kPageBytes);
    mem.Write32(3, 0xa1b2c3d4);
    EXPECT_EQ(mem.Read32(3), 0xa1b2c3d4u);
    mem.Write16(9, 0xbeef);
    EXPECT_EQ(mem.Read16(9), 0xbeef);
}

TEST(PhysicalMemory, BlockCopy)
{
    PhysicalMemory mem(kPageBytes);
    const uint8_t src[5] = {1, 2, 3, 4, 5};
    mem.WriteBlock(100, src, sizeof src);
    uint8_t dst[5] = {};
    mem.ReadBlock(100, dst, sizeof dst);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(dst[i], src[i]);
}

TEST(PhysicalMemory, ZeroLengthBlockOk)
{
    PhysicalMemory mem(kPageBytes);
    mem.WriteBlock(0, nullptr, 0);
    mem.ReadBlock(0, nullptr, 0);
}

TEST(PhysicalMemory, Contains)
{
    PhysicalMemory mem(kPageBytes);
    EXPECT_TRUE(mem.Contains(0));
    EXPECT_TRUE(mem.Contains(kPageBytes - 1));
    EXPECT_TRUE(mem.Contains(kPageBytes - 4, 4));
    EXPECT_FALSE(mem.Contains(kPageBytes));
    EXPECT_FALSE(mem.Contains(kPageBytes - 3, 4));
}

TEST(PhysicalMemoryDeath, OutOfRangePanics)
{
    PhysicalMemory mem(kPageBytes);
    EXPECT_DEATH(mem.Read8(kPageBytes), "out of range");
    EXPECT_DEATH(mem.Write32(kPageBytes - 2, 1), "out of range");
    EXPECT_DEATH(mem.Read32(0xffffffff), "out of range");
}

TEST(PhysicalMemoryDeath, BadSizeIsFatal)
{
    EXPECT_DEATH(PhysicalMemory(0), "page multiple");
    EXPECT_DEATH(PhysicalMemory(100), "page multiple");
}

TEST(PhysicalMemory, ReserveTop)
{
    PhysicalMemory mem(8 * kPageBytes);
    EXPECT_EQ(mem.NumUsableFrames(), 8u);
    const uint32_t base = mem.ReserveTop(2 * kPageBytes);
    EXPECT_EQ(base, 6 * kPageBytes);
    EXPECT_EQ(mem.reserved_base(), 6 * kPageBytes);
    EXPECT_EQ(mem.reserved_bytes(), 2 * kPageBytes);
    EXPECT_EQ(mem.NumUsableFrames(), 6u);
    mem.Unreserve();
    EXPECT_EQ(mem.NumUsableFrames(), 8u);
    EXPECT_EQ(mem.reserved_bytes(), 0u);
}

TEST(PhysicalMemoryDeath, DoubleReserveIsFatal)
{
    PhysicalMemory mem(8 * kPageBytes);
    mem.ReserveTop(kPageBytes);
    EXPECT_DEATH(mem.ReserveTop(kPageBytes), "already active");
}

TEST(PhysicalMemoryDeath, ReserveAllIsFatal)
{
    PhysicalMemory mem(2 * kPageBytes);
    EXPECT_DEATH(mem.ReserveTop(2 * kPageBytes), "usable memory");
}

}  // namespace
}  // namespace atum
