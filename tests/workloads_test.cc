// Tests for the workload generators: each program must assemble, boot,
// run to completion, print its completion marker, and actually exercise
// its heap (demand paging).

#include <gtest/gtest.h>

#include <memory>

#include "core/atum_tracer.h"
#include "core/session.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/sink.h"
#include "workloads/workloads.h"

namespace atum::workloads {
namespace {

using cpu::Machine;
using kernel::BootInfo;
using kernel::BootSystem;
using kernel::GuestProgram;
using kernel::KdataOffsets;

std::unique_ptr<Machine>
SmallMachine()
{
    Machine::Config config;
    config.mem_bytes = 2u << 20;
    config.timer_reload = 3000;
    return std::make_unique<Machine>(config);
}

struct RunOutcome {
    std::string console;
    uint64_t instructions = 0;
    uint32_t page_faults = 0;
};

RunOutcome
RunOne(GuestProgram program, uint64_t max_instructions = 30'000'000)
{
    auto machine = SmallMachine();
    BootInfo info = BootSystem(*machine, {std::move(program)});
    const auto result = machine->Run(max_instructions);
    EXPECT_EQ(result.reason, Machine::StopReason::kHalted)
        << "workload did not finish";
    RunOutcome out;
    out.console = machine->console_output();
    out.instructions = result.instructions;
    out.page_faults = machine->memory().Read32(info.layout.kdata_pa +
                                               KdataOffsets::kPfCount);
    return out;
}

TEST(Workloads, MatrixCompletes)
{
    const RunOutcome out = RunOne(MakeMatrix(8));
    EXPECT_EQ(out.console, "m");
    EXPECT_GT(out.page_faults, 0u);  // heap is demand-zero
}

TEST(Workloads, SortCompletes)
{
    const RunOutcome out = RunOne(MakeSort(200));
    EXPECT_EQ(out.console, "s");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, ListProcCompletes)
{
    const RunOutcome out = RunOne(MakeListProc(100, 5));
    EXPECT_EQ(out.console, "l");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, GrepCompletes)
{
    const RunOutcome out = RunOne(MakeGrep(2048, 2));
    EXPECT_EQ(out.console, "g");
}

TEST(Workloads, HashCompletes)
{
    const RunOutcome out = RunOne(MakeHash(500));
    EXPECT_EQ(out.console, "c");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, EditorCompletes)
{
    const RunOutcome out = RunOne(MakeEditor(20, 2));
    EXPECT_EQ(out.console, "e");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, QueueSimCompletes)
{
    const RunOutcome out = RunOne(MakeQueueSim(300));
    EXPECT_EQ(out.console, "q");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, PipelinePairTransfersEverything)
{
    auto machine = SmallMachine();
    BootSystem(*machine, MakePipelinePair(200));
    const auto result = machine->Run(50'000'000);
    ASSERT_EQ(result.reason, Machine::StopReason::kHalted);
    // Both ends print their completion markers.
    const std::string& out = machine->console_output();
    EXPECT_EQ(out.size(), 2u);
    EXPECT_NE(out.find('>'), std::string::npos);
    EXPECT_NE(out.find('<'), std::string::npos);
}

TEST(Workloads, PipelineIsSyscallHeavy)
{
    // The pipeline's kernel share must exceed a compute-bound workload's.
    auto measure = [](std::vector<GuestProgram> programs) {
        cpu::Machine::Config config;
        config.mem_bytes = 2u << 20;
        config.timer_reload = 3000;
        cpu::Machine machine(config);
        trace::VectorSink sink;
        core::AtumTracer tracer(machine, sink);
        BootSystem(machine, std::move(programs));
        core::RunTraced(machine, tracer, 100'000'000);
        uint64_t kernel = 0, total = 0;
        for (const auto& r : sink.records()) {
            if (!r.IsMemory())
                continue;
            ++total;
            if (r.kernel())
                ++kernel;
        }
        return static_cast<double>(kernel) / static_cast<double>(total);
    };
    const double pipeline_share = measure(MakePipelinePair(300));
    std::vector<GuestProgram> compute;
    compute.push_back(MakeMatrix(12));
    const double compute_share = measure(std::move(compute));
    EXPECT_GT(pipeline_share, compute_share * 2);
}

TEST(Workloads, FftCompletes)
{
    const RunOutcome out = RunOne(MakeFft(128));
    EXPECT_EQ(out.console, "f");
}

TEST(Workloads, DeterministicAcrossRuns)
{
    const RunOutcome a = RunOne(MakeHash(300));
    const RunOutcome b = RunOne(MakeHash(300));
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.page_faults, b.page_faults);
}

TEST(Workloads, ScaleIncreasesWork)
{
    const RunOutcome small = RunOne(MakeSort(100));
    const RunOutcome big = RunOne(MakeSort(400));
    EXPECT_GT(big.instructions, small.instructions);
}

TEST(Workloads, MakeWorkloadByName)
{
    for (const std::string& name : AllWorkloadNames()) {
        GuestProgram gp = MakeWorkload(name, 1);
        EXPECT_EQ(gp.name, name);
        EXPECT_GT(gp.program.size(), 0u);
    }
}

TEST(Workloads, StandardMixRunsMultiprogrammed)
{
    auto machine = SmallMachine();
    BootInfo info = BootSystem(*machine, StandardMix(1));
    const auto result = machine->Run(100'000'000);
    ASSERT_EQ(result.reason, Machine::StopReason::kHalted);
    // All three completion markers, in some interleaving-dependent order.
    const std::string& out = machine->console_output();
    EXPECT_EQ(out.size(), 3u);
    EXPECT_NE(out.find('c'), std::string::npos);
    EXPECT_NE(out.find('m'), std::string::npos);
    EXPECT_NE(out.find('l'), std::string::npos);
    // Multiprogramming implies context switches.
    const uint32_t cs = machine->memory().Read32(info.layout.kdata_pa +
                                                 KdataOffsets::kCsCount);
    EXPECT_GT(cs, 0u);
}

TEST(WorkloadsDeath, BadParametersAreFatal)
{
    EXPECT_DEATH(MakeMatrix(1), "n must be");
    EXPECT_DEATH(MakeFft(100), "power of two");
    EXPECT_DEATH(MakeWorkload("nope"), "unknown workload");
}

}  // namespace
}  // namespace atum::workloads
