// Tests for the workload generators: each program must assemble, boot,
// run to completion, print its completion marker, and actually exercise
// its heap (demand paging).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/atum_tracer.h"
#include "core/session.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/sink.h"
#include "workloads/workloads.h"

namespace atum::workloads {
namespace {

using cpu::Machine;
using kernel::BootInfo;
using kernel::BootSystem;
using kernel::GuestProgram;
using kernel::KdataOffsets;

std::unique_ptr<Machine>
SmallMachine()
{
    Machine::Config config;
    config.mem_bytes = 2u << 20;
    config.timer_reload = 3000;
    return std::make_unique<Machine>(config);
}

struct RunOutcome {
    std::string console;
    uint64_t instructions = 0;
    uint32_t page_faults = 0;
    uint32_t dma_interrupts = 0;
    uint32_t forks = 0;
    cpu::EventCounters ev;
};

RunOutcome
RunOne(GuestProgram program, uint64_t max_instructions = 30'000'000)
{
    auto machine = SmallMachine();
    BootInfo info = BootSystem(*machine, {std::move(program)});
    const auto result = machine->Run(max_instructions);
    EXPECT_EQ(result.reason, Machine::StopReason::kHalted)
        << "workload did not finish";
    RunOutcome out;
    out.console = machine->console_output();
    out.instructions = result.instructions;
    out.page_faults = machine->memory().Read32(info.layout.kdata_pa +
                                               KdataOffsets::kPfCount);
    out.dma_interrupts = machine->memory().Read32(info.layout.kdata_pa +
                                                  KdataOffsets::kDmaDone);
    out.forks = machine->memory().Read32(info.layout.kdata_pa +
                                         KdataOffsets::kForks);
    out.ev = machine->event_counters();
    return out;
}

TEST(Workloads, MatrixCompletes)
{
    const RunOutcome out = RunOne(MakeMatrix(8));
    EXPECT_EQ(out.console, "m");
    EXPECT_GT(out.page_faults, 0u);  // heap is demand-zero
}

TEST(Workloads, SortCompletes)
{
    const RunOutcome out = RunOne(MakeSort(200));
    EXPECT_EQ(out.console, "s");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, ListProcCompletes)
{
    const RunOutcome out = RunOne(MakeListProc(100, 5));
    EXPECT_EQ(out.console, "l");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, GrepCompletes)
{
    const RunOutcome out = RunOne(MakeGrep(2048, 2));
    EXPECT_EQ(out.console, "g");
}

TEST(Workloads, HashCompletes)
{
    const RunOutcome out = RunOne(MakeHash(500));
    EXPECT_EQ(out.console, "c");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, EditorCompletes)
{
    const RunOutcome out = RunOne(MakeEditor(20, 2));
    EXPECT_EQ(out.console, "e");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, QueueSimCompletes)
{
    const RunOutcome out = RunOne(MakeQueueSim(300));
    EXPECT_EQ(out.console, "q");
    EXPECT_GT(out.page_faults, 0u);
}

TEST(Workloads, PipelinePairTransfersEverything)
{
    auto machine = SmallMachine();
    BootSystem(*machine, MakePipelinePair(200));
    const auto result = machine->Run(50'000'000);
    ASSERT_EQ(result.reason, Machine::StopReason::kHalted);
    // Both ends print their completion markers.
    const std::string& out = machine->console_output();
    EXPECT_EQ(out.size(), 2u);
    EXPECT_NE(out.find('>'), std::string::npos);
    EXPECT_NE(out.find('<'), std::string::npos);
}

TEST(Workloads, PipelineIsSyscallHeavy)
{
    // The pipeline's kernel share must exceed a compute-bound workload's.
    auto measure = [](std::vector<GuestProgram> programs) {
        cpu::Machine::Config config;
        config.mem_bytes = 2u << 20;
        config.timer_reload = 3000;
        cpu::Machine machine(config);
        trace::VectorSink sink;
        core::AtumTracer tracer(machine, sink);
        BootSystem(machine, std::move(programs));
        core::RunTraced(machine, tracer, 100'000'000);
        uint64_t kernel = 0, total = 0;
        for (const auto& r : sink.records()) {
            if (!r.IsMemory())
                continue;
            ++total;
            if (r.kernel())
                ++kernel;
        }
        return static_cast<double>(kernel) / static_cast<double>(total);
    };
    const double pipeline_share = measure(MakePipelinePair(300));
    std::vector<GuestProgram> compute;
    compute.push_back(MakeMatrix(12));
    const double compute_share = measure(std::move(compute));
    EXPECT_GT(pipeline_share, compute_share * 2);
}

TEST(Workloads, FftCompletes)
{
    const RunOutcome out = RunOne(MakeFft(128));
    EXPECT_EQ(out.console, "f");
}

TEST(Workloads, DeterministicAcrossRuns)
{
    const RunOutcome a = RunOne(MakeHash(300));
    const RunOutcome b = RunOne(MakeHash(300));
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.page_faults, b.page_faults);
}

TEST(Workloads, ScaleIncreasesWork)
{
    const RunOutcome small = RunOne(MakeSort(100));
    const RunOutcome big = RunOne(MakeSort(400));
    EXPECT_GT(big.instructions, small.instructions);
}

TEST(Workloads, MakeWorkloadByName)
{
    for (const std::string& name : AllWorkloadNames()) {
        GuestProgram gp = MakeWorkload(name, 1);
        EXPECT_EQ(gp.name, name);
        EXPECT_GT(gp.program.size(), 0u);
    }
}

TEST(Workloads, StandardMixRunsMultiprogrammed)
{
    auto machine = SmallMachine();
    BootInfo info = BootSystem(*machine, StandardMix(1));
    const auto result = machine->Run(100'000'000);
    ASSERT_EQ(result.reason, Machine::StopReason::kHalted);
    // All three completion markers, in some interleaving-dependent order.
    const std::string& out = machine->console_output();
    EXPECT_EQ(out.size(), 3u);
    EXPECT_NE(out.find('c'), std::string::npos);
    EXPECT_NE(out.find('m'), std::string::npos);
    EXPECT_NE(out.find('l'), std::string::npos);
    // Multiprogramming implies context switches.
    const uint32_t cs = machine->memory().Read32(info.layout.kdata_pa +
                                                 KdataOffsets::kCsCount);
    EXPECT_GT(cs, 0u);
}

// ---------------------------------------------------------------------
// The adversarial zoo. Each generator exists to push one counter or
// capture path to an extreme, so its test asserts that *signature*, not
// just completion.
// ---------------------------------------------------------------------

TEST(Workloads, ServerCompletes)
{
    const RunOutcome out = RunOne(MakeServer(200));
    EXPECT_EQ(out.console, "v");
    EXPECT_GT(out.ev.syscalls, 600u);  // >= 3 per request
}

TEST(Workloads, ServerIsSyscallStorm)
{
    // The server's syscalls-per-instruction rate must dwarf a
    // compute-bound workload's.
    const RunOutcome server = RunOne(MakeServer(200));
    const RunOutcome compute = RunOne(MakeMatrix(12));
    const double server_rate = static_cast<double>(server.ev.syscalls) /
                               static_cast<double>(server.ev.instructions);
    const double compute_rate = static_cast<double>(compute.ev.syscalls) /
                                static_cast<double>(compute.ev.instructions);
    EXPECT_GT(server_rate, compute_rate * 20);
}

TEST(Workloads, IoStormMovesDataThroughDma)
{
    const RunOutcome out = RunOne(MakeIoStorm(30));
    EXPECT_EQ(out.console, "d");  // no '!' = every copy verified
    // Every transfer is one page through the DMA engine, and every
    // completion interrupt was delivered.
    EXPECT_EQ(out.ev.dma_bytes, 30u * 512u);
    EXPECT_EQ(out.dma_interrupts, 30u);
}

TEST(Workloads, ForkWaveSpawnsAndReapsChildren)
{
    const RunOutcome out = RunOne(MakeForkWave(10));
    // Ten children each print '+'; the parent prints 'w' when done.
    EXPECT_EQ(out.forks, 10u);
    EXPECT_EQ(out.console.size(), 11u);
    EXPECT_EQ(std::count(out.console.begin(), out.console.end(), '+'), 10);
    EXPECT_NE(out.console.find('w'), std::string::npos);
}

TEST(Workloads, TlbThrashMissRateIsExtreme)
{
    // 192 pages against a 64-entry TB: steady-state sweeps miss on every
    // page touched. grep streams through a few pages and barely misses.
    const RunOutcome thrash = RunOne(MakeTlbThrash(192, 8));
    const RunOutcome stream = RunOne(MakeGrep(2048, 2));
    EXPECT_EQ(thrash.console, "t");
    const double thrash_rate =
        static_cast<double>(thrash.ev.tlb_misses) /
        static_cast<double>(thrash.ev.instructions);
    const double stream_rate =
        static_cast<double>(stream.ev.tlb_misses) /
        static_cast<double>(stream.ev.instructions);
    EXPECT_GT(thrash_rate, stream_rate * 10);
    // At minimum every page of every steady-state pass misses.
    EXPECT_GT(thrash.ev.tlb_misses, 192u * 7u);
}

TEST(Workloads, SmcRewritesItsOwnText)
{
    // Trace the run and count user-mode writes landing in the program's
    // first text page — the patched immediate lives there.
    cpu::Machine::Config config;
    config.mem_bytes = 2u << 20;
    config.timer_reload = 3000;
    cpu::Machine machine(config);
    trace::VectorSink sink;
    core::AtumTracer tracer(machine, sink);
    std::vector<GuestProgram> programs;
    programs.push_back(MakeSmc(100));
    BootSystem(machine, std::move(programs));
    core::RunTraced(machine, tracer, 30'000'000);
    EXPECT_EQ(machine.console_output(), "x");  // no '!' = every call saw
                                               // the patched bytes
    uint64_t text_writes = 0;
    for (const auto& r : sink.records()) {
        if (r.type == trace::RecordType::kWrite && !r.kernel() &&
            r.addr < 512)
            ++text_writes;
    }
    EXPECT_EQ(text_writes, 100u);
}

TEST(Workloads, ZooIsDeterministic)
{
    for (const char* name : {"server", "iostorm", "forkwave", "tlbthrash",
                             "smc"}) {
        const RunOutcome a = RunOne(MakeWorkload(name));
        const RunOutcome b = RunOne(MakeWorkload(name));
        EXPECT_EQ(a.instructions, b.instructions) << name;
        EXPECT_TRUE(a.ev == b.ev) << name;
        EXPECT_EQ(a.console, b.console) << name;
    }
}

TEST(Workloads, GoldenInstructionCounts)
{
    // Retired-instruction counts for every registered workload at scale 1
    // on the standard small machine. These pin down the exact guest
    // execution: any change to the generators, the kernel, or the
    // executor's instruction semantics shows up here first. Update
    // deliberately when semantics change on purpose.
    const struct {
        const char* name;
        uint64_t instructions;
    } golden[] = {
        {"matrix", 69485},   {"sort", 144255},    {"listproc", 121222},
        {"grep", 194860},    {"hash", 119943},    {"fft", 50266},
        {"editor", 15279},   {"queuesim", 17128}, {"server", 21079},
        {"iostorm", 28467},  {"forkwave", 19791}, {"tlbthrash", 64971},
        {"smc", 4367},
    };
    EXPECT_EQ(std::size(golden), AllWorkloadNames().size());
    for (const auto& g : golden) {
        const RunOutcome out = RunOne(MakeWorkload(g.name));
        EXPECT_EQ(out.instructions, g.instructions) << g.name;
    }
}

TEST(WorkloadsDeath, BadParametersAreFatal)
{
    EXPECT_DEATH(MakeMatrix(1), "n must be");
    EXPECT_DEATH(MakeFft(100), "power of two");
    EXPECT_DEATH(MakeWorkload("nope"), "unknown workload");
    EXPECT_DEATH(MakeServer(0), "requests must be");
    EXPECT_DEATH(MakeIoStorm(1, 0), "seed must be");
    EXPECT_DEATH(MakeForkWave(0), "children must be");
    EXPECT_DEATH(MakeTlbThrash(0, 1), "pages and passes");
    EXPECT_DEATH(MakeSmc(0), "rewrites must be");
}

}  // namespace
}  // namespace atum::workloads
