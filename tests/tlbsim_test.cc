// Unit tests for the trace-driven TLB simulator.

#include <gtest/gtest.h>

#include "mem/physical_memory.h"
#include "tlbsim/tlb_sim.h"
#include "trace/record.h"

namespace atum::tlbsim {
namespace {

using trace::MakeCtxSwitch;
using trace::MakeFlags;
using trace::Record;
using trace::RecordType;

Record
Ref(uint32_t addr, bool kernel = false)
{
    Record r;
    r.addr = addr;
    r.type = RecordType::kRead;
    r.flags = MakeFlags(kernel, 4);
    return r;
}

TEST(TlbSim, SamePageHits)
{
    TlbSim sim({.entries = 8});
    sim.Feed(Ref(0x1000));
    sim.Feed(Ref(0x1004));
    sim.Feed(Ref(0x11ff));
    EXPECT_EQ(sim.stats().accesses, 3u);
    EXPECT_EQ(sim.stats().misses, 1u);
}

TEST(TlbSim, DistinctPagesMiss)
{
    TlbSim sim({.entries = 8});
    for (uint32_t p = 0; p < 8; ++p)
        sim.Feed(Ref(p * kPageBytes));
    EXPECT_EQ(sim.stats().misses, 8u);
    for (uint32_t p = 0; p < 8; ++p)
        sim.Feed(Ref(p * kPageBytes));
    EXPECT_EQ(sim.stats().misses, 8u);  // all resident now
}

TEST(TlbSim, CapacityEvictionLru)
{
    TlbSim sim({.entries = 4});  // fully associative
    for (uint32_t p = 0; p < 5; ++p)
        sim.Feed(Ref(p * kPageBytes));
    // Page 0 was LRU and got evicted by page 4.
    sim.Feed(Ref(0));
    EXPECT_EQ(sim.stats().misses, 6u);
    sim.Feed(Ref(4 * kPageBytes));  // wait: page 1 was evicted by page 0
    EXPECT_EQ(sim.stats().misses, 6u);
}

TEST(TlbSim, ContextSwitchFlushesProcessPages)
{
    TlbSim sim({.entries = 16});
    sim.Feed(Ref(0x1000));                    // user page
    sim.Feed(Ref(0x80001000, /*kernel=*/true));  // system page
    sim.Feed(MakeCtxSwitch(2, 0));
    sim.Feed(Ref(0x1000));        // flushed: miss
    sim.Feed(Ref(0x80001000, true));  // retained: hit
    EXPECT_EQ(sim.stats().misses, 3u);
    EXPECT_EQ(sim.stats().flushes, 1u);
}

TEST(TlbSim, FlushSystemTooOption)
{
    TlbSim sim({.entries = 16, .flush_system_too = true});
    sim.Feed(Ref(0x80001000, true));
    sim.Feed(MakeCtxSwitch(2, 0));
    sim.Feed(Ref(0x80001000, true));
    EXPECT_EQ(sim.stats().misses, 2u);
}

TEST(TlbSim, NoFlushOption)
{
    TlbSim sim({.entries = 16, .flush_on_switch = false});
    sim.Feed(Ref(0x1000));
    sim.Feed(MakeCtxSwitch(2, 0));
    sim.Feed(Ref(0x1000));
    EXPECT_EQ(sim.stats().misses, 1u);
    EXPECT_EQ(sim.stats().flushes, 0u);
}

TEST(TlbSim, KernelFilter)
{
    TlbSim sim({.entries = 16, .include_kernel = false});
    sim.Feed(Ref(0x80001000, true));
    EXPECT_EQ(sim.stats().accesses, 0u);
    sim.Feed(Ref(0x1000, false));
    EXPECT_EQ(sim.stats().accesses, 1u);
}

TEST(TlbSim, SetAssociativeGeometry)
{
    TlbSim sim({.entries = 8, .ways = 2});  // 4 sets x 2 ways
    // Pages 0, 4, 8 map to set 0; with 2 ways the third evicts.
    sim.Feed(Ref(0 * kPageBytes));
    sim.Feed(Ref(4 * kPageBytes));
    sim.Feed(Ref(8 * kPageBytes));
    sim.Feed(Ref(0 * kPageBytes));  // evicted: miss
    EXPECT_EQ(sim.stats().misses, 4u);
}

TEST(TlbSimDeath, BadGeometryIsFatal)
{
    EXPECT_DEATH(TlbSim({.entries = 0}), "power of two");
    EXPECT_DEATH(TlbSim({.entries = 12}), "power of two");
    EXPECT_DEATH(TlbSim({.entries = 8, .ways = 3}), "geometry");
}

}  // namespace
}  // namespace atum::tlbsim
