// Unit tests for the observability tracing layer (obs/spans.h,
// obs/flight.h): span ring wraparound, multi-thread collection
// exactness at a quiescent point (run under TSan in CI), the Chrome
// trace-event export schema, deterministic phase-profiler attribution
// under an injected clock, and the flight recorder's dump format. The
// suite also compiles (and passes) with -DATUM_TRACING=OFF, where it
// verifies the compiled-out contract instead: no events, valid export
// with tracing:"off", and a still-armed flight recorder.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight.h"
#include "obs/spans.h"
#include "util/json.h"

namespace atum::obs {
namespace {

/** Parses `text` or fails the test. */
util::JsonValue
ParseOrDie(const std::string& text)
{
    util::StatusOr<util::JsonValue> parsed = util::JsonValue::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return parsed.ok() ? *parsed : util::JsonValue();
}

/** Deterministic profiler clock: every read advances 100 ns. */
uint64_t g_fake_ns = 0;
uint64_t
FakeClock()
{
    return g_fake_ns += 100;
}

#if ATUM_TRACING_ENABLED

class SpansTest : public ::testing::Test
{
  protected:
    void SetUp() override { ResetSpansForTest(); }
    void TearDown() override { ResetSpansForTest(); }
};

TEST_F(SpansTest, RecordAndCollect)
{
    RecordSpan("cat", "alpha", 1000, 500, "label", "bytes", 7, nullptr, 0);
    RecordInstant("cat", "mark");
    const SpanDump dump = CollectSpans();
    ASSERT_EQ(dump.events.size(), 2u);
    EXPECT_EQ(dump.recorded, 2u);
    EXPECT_EQ(dump.dropped, 0u);
    EXPECT_STREQ(dump.events[0].name, "alpha");
    EXPECT_EQ(dump.events[0].start_ns, 1000u);
    EXPECT_EQ(dump.events[0].dur_ns, 500u);
    EXPECT_STREQ(dump.events[0].detail, "label");
    EXPECT_EQ(dump.events[0].arg0, 7u);
}

TEST_F(SpansTest, RingWrapsAndCountsDrops)
{
    SetSpanRingLog2ForTest(4);  // 16 slots
    for (uint64_t i = 0; i < 100; ++i)
        RecordSpan("cat", "spin", i + 1, 1, nullptr, nullptr, 0, nullptr,
                   0);
    const SpanDump dump = CollectSpans();
    EXPECT_EQ(dump.events.size(), 16u);   // overwrite-oldest
    EXPECT_EQ(dump.recorded, 100u);
    EXPECT_EQ(dump.dropped, 84u);
    // The survivors are the newest 16, still sorted by start time.
    EXPECT_EQ(dump.events.front().start_ns, 85u);
    EXPECT_EQ(dump.events.back().start_ns, 100u);
}

TEST_F(SpansTest, ScopedSpanRecordsOnceOnCloseOrDestruction)
{
    {
        ATUM_SPAN_NAMED(span, "cat", "scoped");
        span.set_detail("via-close");
        span.Close();
        span.Close();  // idempotent
    }  // destructor after Close must not double-record
    EXPECT_EQ(CollectSpans().events.size(), 1u);
}

TEST_F(SpansTest, DisabledRecordsNothing)
{
    // The kill switch guards the public entry points: the ScopedSpan
    // constructor (which skips the clock read entirely) and
    // RecordInstant. Raw RecordSpan is ~ScopedSpan's internal path.
    SetSpansEnabled(false);
    {
        ATUM_SPAN("cat", "scoped");
        ATUM_SPAN_NAMED(named, "cat", "named");
        named.set_detail("ignored while disabled");
    }
    RecordInstant("cat", "mark");
    SetSpansEnabled(true);
    const SpanDump dump = CollectSpans();
    EXPECT_TRUE(dump.events.empty());
    EXPECT_EQ(dump.recorded, 0u);
}

TEST_F(SpansTest, MultiThreadCollectionIsExactAfterJoin)
{
    // The quiescent-point contract: after every producer has joined,
    // CollectSpans must see each thread's events exactly once. TSan
    // (the CI tsan lane runs this suite) verifies the release/acquire
    // pairing on the ring heads.
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            SetCurrentThreadName("producer");
            for (uint64_t i = 0; i < kPerThread; ++i)
                RecordSpan("cat", "work",
                           static_cast<uint64_t>(t) * kPerThread + i + 1,
                           1, nullptr, nullptr, 0, nullptr, 0);
        });
    }
    for (auto& t : threads)
        t.join();
    const SpanDump dump = CollectSpans();
    EXPECT_EQ(dump.events.size(), kThreads * kPerThread);
    EXPECT_EQ(dump.recorded, kThreads * kPerThread);
    EXPECT_EQ(dump.dropped, 0u);
    // Each producer ring registered under its thread name.
    int producers = 0;
    for (const auto& [tid, name] : dump.threads)
        if (name.rfind("producer", 0) == 0)
            ++producers;
    EXPECT_EQ(producers, kThreads);
}

TEST_F(SpansTest, ChromeJsonGoldenSchema)
{
    RecordSpan("tracer", "drain", 2000, 1500, "ep1", "records", 42,
               nullptr, 0);
    RecordSpan("supervisor", "slice", 1000, 4000, nullptr, "executed",
               4096, nullptr, 0);
    RecordInstant("serve", "serve.submit", "hash", "id", 3);
    const std::string json =
        SpansToChromeJson(CollectSpans(), "spans-test");

    const util::JsonValue doc = ParseOrDie(json);
    EXPECT_EQ(doc.Get("displayTimeUnit").AsString(), "ms");
    const util::JsonValue& other = doc.Get("otherData");
    EXPECT_EQ(other.Get("tool").AsString(), "spans-test");
    EXPECT_EQ(other.Get("tracing").AsString(), "on");
    EXPECT_EQ(other.Get("recorded").AsU64(), 3u);
    EXPECT_EQ(other.Get("dropped").AsU64(), 0u);
    EXPECT_TRUE(other.Has("mono_anchor_ns"));
    EXPECT_TRUE(other.Has("wall_anchor_ms"));

    const auto& events = doc.Get("traceEvents").AsArray();
    bool saw_process_meta = false;
    bool saw_thread_meta = false;
    const util::JsonValue* drain = nullptr;
    const util::JsonValue* slice = nullptr;
    const util::JsonValue* submit = nullptr;
    for (const util::JsonValue& e : events) {
        const std::string ph = e.Get("ph").AsString();
        if (ph == "M") {
            if (e.Get("name").AsString() == "process_name")
                saw_process_meta = true;
            if (e.Get("name").AsString() == "thread_name")
                saw_thread_meta = true;
            continue;
        }
        if (e.Get("name").AsString() == "drain")
            drain = &e;
        if (e.Get("name").AsString() == "slice")
            slice = &e;
        if (e.Get("name").AsString() == "serve.submit")
            submit = &e;
    }
    EXPECT_TRUE(saw_process_meta);
    EXPECT_TRUE(saw_thread_meta);

    // Complete events: ts is microseconds relative to the earliest
    // span (the 1000 ns slice), so the 2000 ns drain sits at 1.0 us.
    ASSERT_NE(drain, nullptr);
    EXPECT_EQ(drain->Get("ph").AsString(), "X");
    EXPECT_EQ(drain->Get("cat").AsString(), "tracer");
    EXPECT_DOUBLE_EQ(drain->Get("ts").AsDouble(), 1.0);
    EXPECT_DOUBLE_EQ(drain->Get("dur").AsDouble(), 1.5);
    EXPECT_EQ(drain->Get("args").Get("detail").AsString(), "ep1");
    EXPECT_EQ(drain->Get("args").Get("records").AsU64(), 42u);

    ASSERT_NE(slice, nullptr);
    EXPECT_DOUBLE_EQ(slice->Get("ts").AsDouble(), 0.0);
    EXPECT_EQ(slice->Get("args").Get("executed").AsU64(), 4096u);

    // Instants carry thread scope and no duration.
    ASSERT_NE(submit, nullptr);
    EXPECT_EQ(submit->Get("ph").AsString(), "i");
    EXPECT_EQ(submit->Get("s").AsString(), "t");
    EXPECT_FALSE(submit->Has("dur"));
}

TEST_F(SpansTest, PhaseProfilerDeterministicUnderInjectedClock)
{
    g_fake_ns = 0;
    PhaseProfiler::SetClockForTest(&FakeClock);
    PhaseProfiler profiler(/*sample_shift=*/0);  // sample every window

    profiler.BeginRun();                       // t=100
    ASSERT_TRUE(profiler.BeginSample());       // t=200, window opens
    EXPECT_TRUE(profiler.sampling());
    profiler.Enter(Phase::kTranslate);         // t=300: dispatch +100
    profiler.Exit();                           // t=400: translate +100
    profiler.AddExact(Phase::kDrain, 50);      // exact, no clock read
    profiler.SkipTime(50);                     // excise from the window
    profiler.EndSample();                      // t=500: dispatch +50
    profiler.EndSample();                      // idempotent: no effect
    profiler.EndRun();                         // t=600: run_ns = 500

    EXPECT_EQ(profiler.samples(), 1u);
    EXPECT_EQ(profiler.run_ns(), 500u);

    // Sampled shares (dispatch 150, translate 100 of 250) apportion the
    // non-exact wall time (500 - 50 = 450) gprof-style: dispatch 270,
    // translate 180, drain exactly 50. ±1 absorbs the double rounding.
    const std::vector<PhaseProfiler::Row> rows = profiler.Breakdown();
    ASSERT_EQ(rows.size(), static_cast<size_t>(kPhaseCount));
    EXPECT_NEAR(rows[static_cast<int>(Phase::kDispatch)].ns, 270.0, 1.0);
    EXPECT_NEAR(rows[static_cast<int>(Phase::kTranslate)].ns, 180.0, 1.0);
    EXPECT_EQ(rows[static_cast<int>(Phase::kMemory)].ns, 0u);
    EXPECT_EQ(rows[static_cast<int>(Phase::kDrain)].ns, 50u);
    EXPECT_TRUE(rows[static_cast<int>(Phase::kDispatch)].sampled);
    EXPECT_FALSE(rows[static_cast<int>(Phase::kDrain)].sampled);
    EXPECT_NEAR(profiler.CoverageFraction(), 1.0, 0.01);

    PhaseProfiler::SetClockForTest(nullptr);
}

TEST_F(SpansTest, PhaseProfilerUnsampledWindowsAreCheap)
{
    g_fake_ns = 0;
    PhaseProfiler::SetClockForTest(&FakeClock);
    PhaseProfiler profiler(/*sample_shift=*/2);  // 1 in 4
    profiler.BeginRun();
    int sampled = 0;
    for (int i = 0; i < 8; ++i) {
        if (profiler.BeginSample())
            ++sampled;
        else
            EXPECT_FALSE(profiler.sampling());
        profiler.EndSample();
    }
    EXPECT_EQ(sampled, 2);
    PhaseProfiler::SetClockForTest(nullptr);
}

#else  // !ATUM_TRACING_ENABLED

TEST(SpansCompiledOut, MacrosCompileAndRecordNothing)
{
    // The call-site surface is identical in OFF builds; everything
    // folds to empty inline objects and the collector sees nothing.
    {
        ATUM_SPAN("cat", "scoped");
        ATUM_SPAN_NAMED(named, "cat", "named");
        named.set_detail("ignored");
        named.set_arg("n", 1);
        named.Close();
    }
    RecordSpan("cat", "alpha", 1000, 500, nullptr, nullptr, 0, nullptr, 0);
    RecordInstant("cat", "mark");
    const SpanDump dump = CollectSpans();
    EXPECT_TRUE(dump.events.empty());
    EXPECT_EQ(dump.recorded, 0u);

    PhaseProfiler profiler;
    profiler.BeginRun();
    EXPECT_FALSE(profiler.BeginSample());
    EXPECT_FALSE(profiler.sampling());
    profiler.EndRun();
    EXPECT_EQ(profiler.run_ns(), 0u);
    EXPECT_TRUE(profiler.Breakdown().empty());
}

TEST(SpansCompiledOut, ExportIsValidAndMarkedOff)
{
    const std::string json =
        SpansToChromeJson(CollectSpans(), "spans-test");
    const util::JsonValue doc = ParseOrDie(json);
    EXPECT_EQ(doc.Get("otherData").Get("tracing").AsString(), "off");
    EXPECT_EQ(doc.Get("otherData").Get("recorded").AsU64(), 0u);
    // The process_name metadata event is always present; no span ("X")
    // or instant ("i") events can exist in an OFF build.
    for (const util::JsonValue& e : doc.Get("traceEvents").AsArray())
        EXPECT_EQ(e.Get("ph").AsString(), "M");
}

#endif  // ATUM_TRACING_ENABLED

// -- flight recorder (always compiled, both build modes) -----------------

class FlightTest : public ::testing::Test
{
  protected:
    void SetUp() override { flight::ResetForTest(); }
    void TearDown() override { flight::ResetForTest(); }

    std::string DumpPath() const
    {
        return ::testing::TempDir() + "spans_test.flight.json";
    }
};

TEST_F(FlightTest, DisarmedUntilPathSet)
{
    flight::Note("early", "before-arming", 1, 2);
    EXPECT_FALSE(flight::Armed());
    EXPECT_FALSE(flight::DumpNow("test"));  // no-op while disarmed
    flight::SetDumpPath(DumpPath().c_str());
    EXPECT_TRUE(flight::Armed());
}

TEST_F(FlightTest, DumpSchemaAndLastEventIsTheFailurePoint)
{
    flight::SetDumpPath(DumpPath().c_str());
    flight::Note("tracer.drain", "episode-1", 100, 0);
    flight::Note("supervisor.watchdog", "wedged \"here\"", 12345, 42);
    ASSERT_TRUE(flight::DumpNow("watchdog"));

    std::string text;
    {
        std::FILE* f = std::fopen(DumpPath().c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    const util::JsonValue doc = ParseOrDie(text);
    EXPECT_EQ(doc.Get("schema").AsString(), "atum-flight-v1");
    EXPECT_EQ(doc.Get("reason").AsString(), "watchdog");
    EXPECT_TRUE(doc.Has("wall_ms"));
    EXPECT_TRUE(doc.Has("mono_us"));
    EXPECT_TRUE(doc.Has("pid"));
    EXPECT_EQ(doc.Get("dropped").AsU64(), 0u);

    const auto& events = doc.Get("events").AsArray();
    ASSERT_EQ(events.size(), 2u);
    // Oldest -> newest: the last event names the failure point, which
    // is the contract test_tools.sh asserts after an induced wedge.
    const util::JsonValue& last = events.back();
    EXPECT_EQ(last.Get("name").AsString(), "supervisor.watchdog");
    EXPECT_EQ(last.Get("detail").AsString(), "wedged \"here\"");
    EXPECT_EQ(last.Get("a").AsU64(), 12345u);
    EXPECT_EQ(last.Get("b").AsU64(), 42u);
}

TEST_F(FlightTest, RingWrapsOldestOutAndCountsDrops)
{
    flight::SetDumpPath(DumpPath().c_str());
    for (int i = 0; i < 300; ++i)
        flight::Note("spin", nullptr, static_cast<uint64_t>(i), 0);
    ASSERT_TRUE(flight::DumpNow("wrap"));

    std::string text;
    {
        std::FILE* f = std::fopen(DumpPath().c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[8192];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    const util::JsonValue doc = ParseOrDie(text);
    EXPECT_EQ(doc.Get("dropped").AsU64(), 300u - 256u);
    const auto& events = doc.Get("events").AsArray();
    ASSERT_EQ(events.size(), 256u);
    EXPECT_EQ(events.front().Get("a").AsU64(), 44u);
    EXPECT_EQ(events.back().Get("a").AsU64(), 299u);
}

}  // namespace
}  // namespace atum::obs
