// Unit tests for the trace library: record packing, sinks/sources, file
// round-trips, and the trace statistics accumulator.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/compress.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "trace/stats.h"

namespace atum::trace {
namespace {

std::string
TempPath(const char* name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Record, FlagsEncodeKernelAndSize)
{
    EXPECT_EQ(MakeFlags(false, 1), 0x00);
    EXPECT_EQ(MakeFlags(true, 1), 0x01);
    EXPECT_EQ(MakeFlags(false, 2), 0x02);
    EXPECT_EQ(MakeFlags(true, 4), 0x05);

    Record r;
    r.flags = MakeFlags(true, 4);
    EXPECT_TRUE(r.kernel());
    EXPECT_EQ(r.size(), 4);
    r.flags = MakeFlags(false, 2);
    EXPECT_FALSE(r.kernel());
    EXPECT_EQ(r.size(), 2);
}

TEST(RecordDeath, BadSizePanics)
{
    EXPECT_DEATH(MakeFlags(false, 3), "unsupported access size");
}

TEST(Record, FromMemAccessMapsKinds)
{
    ucode::MemAccess a;
    a.vaddr = 0x1234;
    a.size = 4;
    a.kernel = true;

    a.kind = ucode::MemAccessKind::kIFetch;
    EXPECT_EQ(FromMemAccess(a).type, RecordType::kIFetch);
    a.kind = ucode::MemAccessKind::kRead;
    EXPECT_EQ(FromMemAccess(a).type, RecordType::kRead);
    a.kind = ucode::MemAccessKind::kWrite;
    EXPECT_EQ(FromMemAccess(a).type, RecordType::kWrite);
    a.kind = ucode::MemAccessKind::kPte;
    EXPECT_EQ(FromMemAccess(a).type, RecordType::kPte);

    const Record r = FromMemAccess(a);
    EXPECT_EQ(r.addr, 0x1234u);
    EXPECT_TRUE(r.kernel());
    EXPECT_TRUE(r.IsMemory());
}

TEST(Record, MarkersAreNotMemory)
{
    EXPECT_FALSE(MakeCtxSwitch(2, 0x100).IsMemory());
    EXPECT_FALSE(MakeException(5).IsMemory());
    EXPECT_FALSE(MakeTlbMiss(0x1000, false).IsMemory());
    EXPECT_EQ(MakeCtxSwitch(2, 0x100).info, 2u);
    EXPECT_EQ(MakeException(5).info, 5u);
}

TEST(Record, PackUnpackRoundTrip)
{
    Record r;
    r.addr = 0xdeadbeef;
    r.type = RecordType::kWrite;
    r.flags = MakeFlags(true, 4);
    r.info = 0xabcd;
    uint8_t buf[kRecordBytes];
    PackRecord(r, buf);
    EXPECT_EQ(UnpackRecord(buf), r);
    // Little-endian layout.
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[3], 0xde);
    EXPECT_EQ(buf[4], static_cast<uint8_t>(RecordType::kWrite));
    EXPECT_EQ(buf[6], 0xcd);
    EXPECT_EQ(buf[7], 0xab);
}

TEST(Sinks, VectorSinkCollects)
{
    VectorSink sink;
    sink.Append(MakeException(1));
    sink.Append(MakeException(2));
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[1].info, 2u);
}

TEST(Sinks, CountingSinkCounts)
{
    CountingSink sink;
    for (int i = 0; i < 7; ++i)
        sink.Append(MakeException(0));
    EXPECT_EQ(sink.count(), 7u);
}

TEST(Sinks, FileRoundTrip)
{
    const std::string path = TempPath("roundtrip.atum");
    std::vector<Record> records;
    for (uint32_t i = 0; i < 100; ++i) {
        Record r;
        r.addr = i * 4;
        r.type = i % 2 ? RecordType::kRead : RecordType::kWrite;
        r.flags = MakeFlags(i % 3 == 0, 4);
        r.info = static_cast<uint16_t>(i);
        records.push_back(r);
    }
    WriteTraceFile(path, records);
    const std::vector<Record> back = ReadTraceFile(path);
    EXPECT_EQ(back, records);
    std::remove(path.c_str());
}

TEST(Sinks, VectorSourceIterates)
{
    std::vector<Record> records = {MakeException(1), MakeException(2)};
    VectorSource source(records);
    EXPECT_EQ(source.Next()->info, 1u);
    EXPECT_EQ(source.Next()->info, 2u);
    EXPECT_FALSE(source.Next().has_value());
    source.Reset();
    EXPECT_EQ(source.Next()->info, 1u);
}

TEST(Sinks, BadMagicIsInvalidArgument)
{
    const std::string path = TempPath("notatrace.bin");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("garbage!", 1, 8, f);
    std::fclose(f);
    auto source = FileSource::Open(path);
    ASSERT_FALSE(source.ok());
    EXPECT_EQ(source.status().code(), util::StatusCode::kInvalidArgument);
    std::remove(path.c_str());
}

TEST(Sinks, MissingFileIsNotFound)
{
    auto source = FileSource::Open("/nonexistent/path/x.atum");
    ASSERT_FALSE(source.ok());
    EXPECT_EQ(source.status().code(), util::StatusCode::kNotFound);
}

TEST(Stats, CountsByType)
{
    TraceStats stats;
    ucode::MemAccess a;
    a.size = 4;
    a.kind = ucode::MemAccessKind::kIFetch;
    stats.Accumulate(FromMemAccess(a));
    a.kind = ucode::MemAccessKind::kRead;
    stats.Accumulate(FromMemAccess(a));
    a.kind = ucode::MemAccessKind::kWrite;
    a.kernel = true;
    stats.Accumulate(FromMemAccess(a));
    stats.Accumulate(MakeException(3));

    EXPECT_EQ(stats.total(), 4u);
    EXPECT_EQ(stats.mem_refs(), 3u);
    EXPECT_EQ(stats.kernel_refs(), 1u);
    EXPECT_EQ(stats.user_refs(), 2u);
    EXPECT_EQ(stats.CountOf(RecordType::kException), 1u);
    EXPECT_DOUBLE_EQ(stats.KernelFraction(), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(stats.WriteFraction(), 0.5);
}

TEST(Stats, TracksPidAttribution)
{
    TraceStats stats;
    ucode::MemAccess a;
    a.size = 4;
    a.kind = ucode::MemAccessKind::kRead;
    stats.Accumulate(FromMemAccess(a));  // pid 0 (pre-switch)
    stats.Accumulate(MakeCtxSwitch(1, 0));
    stats.Accumulate(FromMemAccess(a));
    stats.Accumulate(FromMemAccess(a));
    stats.Accumulate(MakeCtxSwitch(2, 0));
    stats.Accumulate(FromMemAccess(a));

    EXPECT_EQ(stats.context_switches(), 2u);
    EXPECT_EQ(stats.refs_by_pid().at(0), 1u);
    EXPECT_EQ(stats.refs_by_pid().at(1), 2u);
    EXPECT_EQ(stats.refs_by_pid().at(2), 1u);
    EXPECT_EQ(stats.switch_interval_refs().count(), 2u);
}

TEST(Stats, ToStringMentionsCounts)
{
    TraceStats stats;
    ucode::MemAccess a;
    a.size = 4;
    a.kind = ucode::MemAccessKind::kRead;
    stats.Accumulate(FromMemAccess(a));
    const std::string s = stats.ToString();
    EXPECT_NE(s.find("memory refs:    1"), std::string::npos);
}


TEST(Compress, EmptyTrace)
{
    EXPECT_TRUE(CompressTrace({}).empty());
    EXPECT_TRUE(DecompressTrace({}).empty());
}

TEST(Compress, RoundTripMixedRecords)
{
    std::vector<Record> records;
    ucode::MemAccess a;
    a.size = 4;
    for (uint32_t i = 0; i < 64; ++i) {
        a.vaddr = 0x1000 + 4 * i;
        a.kind = ucode::MemAccessKind::kIFetch;
        a.kernel = i % 2;
        records.push_back(FromMemAccess(a));
        a.vaddr = 0x80000000 + 512 * i;
        a.kind = ucode::MemAccessKind::kWrite;
        records.push_back(FromMemAccess(a));
    }
    records.push_back(MakeCtxSwitch(3, 0xc00));
    records.push_back(MakeException(9));
    records.push_back(MakeTlbMiss(0x40000123, false));

    const auto bytes = CompressTrace(records);
    EXPECT_EQ(DecompressTrace(bytes), records);
}

TEST(Compress, SequentialStreamBeatsRawFormat)
{
    // A sequential istream compresses to ~2 bytes/record.
    TraceCompressor compressor;
    ucode::MemAccess a;
    a.size = 4;
    a.kind = ucode::MemAccessKind::kIFetch;
    for (uint32_t i = 0; i < 10000; ++i) {
        a.vaddr = 0x2000 + 4 * i;
        compressor.Append(FromMemAccess(a));
    }
    EXPECT_LT(compressor.BytesPerRecord(), 2.5);
    EXPECT_EQ(DecompressTrace(compressor.bytes()).size(), 10000u);
}

TEST(Compress, LargeDeltasStillRoundTrip)
{
    std::vector<Record> records;
    ucode::MemAccess a;
    a.size = 1;
    a.kind = ucode::MemAccessKind::kRead;
    for (uint32_t addr : {0u, 0xffffffffu, 0x80000000u, 1u, 0x7fffffffu}) {
        a.vaddr = addr;
        records.push_back(FromMemAccess(a));
    }
    EXPECT_EQ(DecompressTrace(CompressTrace(records)), records);
}

TEST(CompressDeath, TruncatedStreamIsFatal)
{
    std::vector<Record> records = {MakeCtxSwitch(1, 0)};
    auto bytes = CompressTrace(records);
    bytes.pop_back();
    EXPECT_DEATH(DecompressTrace(bytes), "truncated");
}

}  // namespace
}  // namespace atum::trace
