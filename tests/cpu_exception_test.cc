// Tests for the exception/interrupt machinery: CHMK dispatch and return,
// mode/stack banking, restartable page faults with side-effect rollback,
// privileged-instruction enforcement, timer interrupts, and the
// SVPCTX/LDPCTX context-switch microcode.

#include <gtest/gtest.h>

#include <memory>

#include "assembler/assembler.h"
#include "cpu/machine.h"
#include "mmu/mmu.h"

namespace atum::cpu {
namespace {

using assembler::Abs;
using assembler::Assembler;
using assembler::Imm;
using assembler::Inc;
using assembler::Label;
using assembler::Program;
using assembler::R;
using isa::Opcode;

constexpr uint32_t kScb = 0x0;
constexpr uint32_t kKernelStackTop = 0x900;
constexpr uint32_t kMark0 = 0x5000;
constexpr uint32_t kMark1 = 0x5004;
constexpr uint32_t kMark2 = 0x5008;

class ExceptionTest : public ::testing::Test
{
  protected:
    ExceptionTest()
    {
        Machine::Config config;
        config.mem_bytes = 256 * kPageBytes;
        machine_ = std::make_unique<Machine>(config);
        machine_->WriteIpr(isa::Ipr::kScbb, kScb);
        machine_->WriteIpr(isa::Ipr::kKsp, kKernelStackTop);
    }

    void Load(const Program& p)
    {
        machine_->memory().WriteBlock(p.origin, p.bytes.data(), p.size());
    }

    void SetVector(ExcVector v, uint32_t handler)
    {
        machine_->memory().Write32(kScb + 4 * static_cast<uint32_t>(v),
                                   handler);
    }

    /** Installs a HALT at `addr` and points every vector at it, so any
     *  unexpected exception terminates the run visibly. */
    void DefaultVectors(uint32_t addr = 0x7f0)
    {
        machine_->memory().Write8(addr, static_cast<uint8_t>(Opcode::kHalt));
        for (uint32_t v = 0;
             v < static_cast<uint32_t>(ExcVector::kNumVectors); ++v) {
            machine_->memory().Write32(kScb + 4 * v, addr);
        }
    }

    Machine& m() { return *machine_; }

    std::unique_ptr<Machine> machine_;
};

TEST_F(ExceptionTest, ChmkRoundTripThroughUserMode)
{
    DefaultVectors();

    // Kernel entry: set USP, push a user-mode frame, REI into user code.
    Assembler kcode(0x1000);
    Psl user_psl;
    user_psl.cur_mode = CpuMode::kUser;
    user_psl.prev_mode = CpuMode::kUser;
    kcode.Emit(Opcode::kMtpr,
               {Imm(0x7000), Imm(static_cast<uint32_t>(isa::Ipr::kUsp))});
    kcode.Emit(Opcode::kPushl, {Imm(user_psl.ToWord())});
    kcode.Emit(Opcode::kPushl, {Imm(0x3000)});
    kcode.Emit(Opcode::kRei);
    Load(kcode.Finish());

    // User code: make a syscall, record that it returned, then exit.
    Assembler ucode(0x3000);
    ucode.Emit(Opcode::kChmk, {Imm(42)});
    ucode.Emit(Opcode::kMovl, {Imm(1), Abs(kMark0)});
    ucode.Emit(Opcode::kChmk, {Imm(0)});
    Load(ucode.Finish());

    // CHMK handler: code 0 halts, anything else is recorded and returned.
    Assembler handler(0x2000);
    Label do_halt = handler.NewLabel("do_halt");
    handler.Emit(Opcode::kMovl, {Inc(isa::kRegSp), R(10)});
    handler.Emit(Opcode::kTstl, {R(10)});
    handler.Emit(Opcode::kBeql, {}, do_halt);
    handler.Emit(Opcode::kMovl, {R(10), Abs(kMark1)});
    handler.Emit(Opcode::kMovl, {R(isa::kRegSp), Abs(kMark2)});
    handler.Emit(Opcode::kRei);
    handler.Bind(do_halt);
    handler.Emit(Opcode::kHalt);
    Load(handler.Finish());
    SetVector(ExcVector::kChmk, 0x2000);

    m().set_pc(0x1000);
    const auto result = m().Run(10000);
    ASSERT_EQ(result.reason, Machine::StopReason::kHalted);
    EXPECT_EQ(m().memory().Read32(kMark1), 42u);
    EXPECT_EQ(m().memory().Read32(kMark0), 1u);
    // Handler ran on the kernel stack (frame of 2 longs below the top).
    EXPECT_EQ(m().memory().Read32(kMark2), kKernelStackTop - 8);
    EXPECT_EQ(m().psl().cur_mode, CpuMode::kKernel);
}

TEST_F(ExceptionTest, UserStackIsBankedSeparately)
{
    DefaultVectors();

    Assembler kcode(0x1000);
    Psl user_psl;
    user_psl.cur_mode = CpuMode::kUser;
    user_psl.prev_mode = CpuMode::kUser;
    kcode.Emit(Opcode::kMtpr,
               {Imm(0x7000), Imm(static_cast<uint32_t>(isa::Ipr::kUsp))});
    kcode.Emit(Opcode::kPushl, {Imm(user_psl.ToWord())});
    kcode.Emit(Opcode::kPushl, {Imm(0x3000)});
    kcode.Emit(Opcode::kRei);
    Load(kcode.Finish());

    Assembler ucode(0x3000);
    ucode.Emit(Opcode::kPushl, {Imm(1234)});  // uses the user stack
    ucode.Emit(Opcode::kChmk, {Imm(0)});
    Load(ucode.Finish());

    Assembler handler(0x2000);
    handler.Emit(Opcode::kHalt);
    Load(handler.Finish());
    SetVector(ExcVector::kChmk, 0x2000);

    m().set_pc(0x1000);
    ASSERT_EQ(m().Run(10000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(m().memory().Read32(0x7000 - 4), 1234u);
    // While halted in the handler, the banked user SP reflects the push.
    EXPECT_EQ(m().ReadIpr(isa::Ipr::kUsp), 0x7000u - 4);
}

TEST_F(ExceptionTest, PrivilegedInstructionFromUserVectors)
{
    DefaultVectors();

    Assembler kcode(0x1000);
    Psl user_psl;
    user_psl.cur_mode = CpuMode::kUser;
    user_psl.prev_mode = CpuMode::kUser;
    kcode.Emit(Opcode::kMtpr,
               {Imm(0x7000), Imm(static_cast<uint32_t>(isa::Ipr::kUsp))});
    kcode.Emit(Opcode::kPushl, {Imm(user_psl.ToWord())});
    kcode.Emit(Opcode::kPushl, {Imm(0x3000)});
    kcode.Emit(Opcode::kRei);
    Load(kcode.Finish());

    Assembler ucode(0x3000);
    ucode.Emit(Opcode::kMtpr,
               {Imm(1), Imm(static_cast<uint32_t>(isa::Ipr::kMapen))});
    Load(ucode.Finish());

    Assembler handler(0x2100);
    handler.Emit(Opcode::kMovl, {Imm(0xbad), Abs(kMark0)});
    handler.Emit(Opcode::kHalt);
    Load(handler.Finish());
    SetVector(ExcVector::kPrivInstr, 0x2100);

    m().set_pc(0x1000);
    ASSERT_EQ(m().Run(10000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(m().memory().Read32(kMark0), 0xbadu);
    // MAPEN must not have been written.
    EXPECT_EQ(m().ReadIpr(isa::Ipr::kMapen), 0u);
}

TEST_F(ExceptionTest, ReservedOperandVectors)
{
    DefaultVectors();
    Assembler code(0x1000);
    // jmp r3: a register has no address -> reserved operand.
    code.Emit(Opcode::kNop);
    Program p = code.Finish();
    Load(p);
    // Hand-assemble the illegal form (the assembler refuses to emit it).
    m().memory().Write8(0x1001, static_cast<uint8_t>(Opcode::kJmp));
    m().memory().Write8(0x1002, isa::SpecifierByte(isa::AddrMode::kReg, 3));

    Assembler handler(0x2200);
    handler.Emit(Opcode::kMovl, {Imm(77), Abs(kMark0)});
    handler.Emit(Opcode::kHalt);
    Load(handler.Finish());
    SetVector(ExcVector::kReservedOperand, 0x2200);

    m().set_pc(0x1000);
    ASSERT_EQ(m().Run(100).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(m().memory().Read32(kMark0), 77u);
}

TEST_F(ExceptionTest, DivideByZeroTraps)
{
    DefaultVectors();
    Assembler code(0x1000);
    code.Emit(Opcode::kClrl, {R(1)});
    code.Emit(Opcode::kDivl2, {R(1), R(2)});
    code.Emit(Opcode::kHalt);  // never reached; trap handler halts
    Load(code.Finish());

    Assembler handler(0x2300);
    handler.Emit(Opcode::kMovl, {Imm(55), Abs(kMark0)});
    handler.Emit(Opcode::kHalt);
    Load(handler.Finish());
    SetVector(ExcVector::kArith, 0x2300);

    m().set_pc(0x1000);
    ASSERT_EQ(m().Run(100).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(m().memory().Read32(kMark0), 55u);
}

TEST_F(ExceptionTest, TimerInterruptFiresAndReturns)
{
    DefaultVectors();
    // Handler: count ticks, REI.
    Assembler handler(0x2400);
    handler.Emit(Opcode::kIncl, {Abs(kMark0)});
    handler.Emit(Opcode::kRei);
    Load(handler.Finish());
    SetVector(ExcVector::kTimer, 0x2400);

    // Main: enable the clock, spin, halt.
    Assembler code(0x1000);
    code.Emit(Opcode::kMtpr,
              {Imm(100), Imm(static_cast<uint32_t>(isa::Ipr::kIcr))});
    code.Emit(Opcode::kMtpr,
              {Imm(1), Imm(static_cast<uint32_t>(isa::Ipr::kIccs))});
    code.Emit(Opcode::kMovl, {Imm(2000), R(1)});
    Label loop = code.Here("loop");
    code.Emit(Opcode::kSobgtr, {R(1)}, loop);
    code.Emit(Opcode::kHalt);
    Load(code.Finish());

    // Interrupts are only delivered below the timer IPL.
    m().psl().ipl = 0;
    m().set_pc(0x1000);
    ASSERT_EQ(m().Run(100000).reason, Machine::StopReason::kHalted);
    EXPECT_GE(m().memory().Read32(kMark0), 15u);
}

TEST_F(ExceptionTest, PageFaultRestartRollsBackAutoincrement)
{
    DefaultVectors();
    // P0 maps pages 0..63 identity except page 8, which the fault handler
    // installs on demand. The P0 table lives at physical 0x7000 (page 56),
    // itself identity-mapped so the handler can write the missing PTE.
    const uint32_t table = 0x7000;
    constexpr uint32_t kFaultPage = 45;  // va 0x5a00, away from the code
    for (uint32_t page = 0; page < 64; ++page) {
        const uint32_t pte =
            page == kFaultPage ? 0 : mmu::MakePte(page, /*user=*/true, true);
        m().memory().Write32(table + 4 * page, pte);
    }
    m().WriteIpr(isa::Ipr::kP0Br, table);
    m().WriteIpr(isa::Ipr::kP0Lr, 64);

    // Fault handler: install the PTE for page 8, TBIS, count, REI.
    Assembler handler(0x2500);
    handler.Emit(Opcode::kMovl, {Inc(isa::kRegSp), R(10)});  // va
    handler.Emit(Opcode::kMovl, {Inc(isa::kRegSp), R(11)});  // reason
    handler.Emit(Opcode::kMovl,
                 {Imm(mmu::MakePte(60, true, true)),
                  Abs(table + 4 * kFaultPage)});
    handler.Emit(Opcode::kMtpr,
                 {R(10), Imm(static_cast<uint32_t>(isa::Ipr::kTbis))});
    handler.Emit(Opcode::kIncl, {Abs(kMark1)});
    handler.Emit(Opcode::kRei);
    Load(handler.Finish());
    SetVector(ExcVector::kTnv, 0x2500);

    // Main: autoincrement load from the unmapped page; the specifier's
    // side effect must be rolled back and re-applied exactly once.
    Assembler code(0x1000);
    code.Emit(Opcode::kMovl, {Imm(kFaultPage * kPageBytes), R(2)});
    code.Emit(Opcode::kMovl, {Inc(2), R(3)});
    code.Emit(Opcode::kHalt);
    Load(code.Finish());

    m().set_pc(0x1000);
    m().WriteIpr(isa::Ipr::kMapen, 1);
    ASSERT_EQ(m().Run(1000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(m().reg(2), kFaultPage * kPageBytes + 4);  // one increment
    EXPECT_EQ(m().reg(3), 0u);  // frame 60 is untouched (zero)
    EXPECT_EQ(m().memory().Read32(kMark1), 1u);  // exactly one fault
}

TEST_F(ExceptionTest, SvpctxLdpctxRoundTrip)
{
    DefaultVectors();
    const uint32_t pcb_a = 0x4000;
    const uint32_t pcb_b = 0x4100;

    // PCB B describes a "process" that runs at 0x3000 in kernel mode
    // with r5 preloaded.
    Psl b_psl;
    b_psl.cur_mode = CpuMode::kKernel;
    b_psl.prev_mode = CpuMode::kKernel;
    m().memory().Write32(pcb_b + PcbLayout::kRegs + 4 * 5, 4242);
    m().memory().Write32(pcb_b + PcbLayout::kPc, 0x3000);
    m().memory().Write32(pcb_b + PcbLayout::kPsl, b_psl.ToWord());
    m().memory().Write32(pcb_b + PcbLayout::kPid, 7);

    // Code at 0x3000: the target context stores r5 and halts.
    Assembler target(0x3000);
    target.Emit(Opcode::kMovl, {R(5), Abs(kMark0)});
    target.Emit(Opcode::kHalt);
    Load(target.Finish());

    // Main: fake an interrupt frame, SVPCTX into A, switch PCBB to B,
    // LDPCTX, REI -> runs the target.
    Assembler code(0x1000);
    code.Emit(Opcode::kMtpr,
              {Imm(pcb_a), Imm(static_cast<uint32_t>(isa::Ipr::kPcbb))});
    code.Emit(Opcode::kMovl, {Imm(111), R(3)});
    code.Emit(Opcode::kPushl, {Imm(m().psl().ToWord())});  // frame: psl
    code.Emit(Opcode::kPushl, {Imm(0x1f00)});              // frame: pc
    code.Emit(Opcode::kSvpctx);
    code.Emit(Opcode::kMtpr,
              {Imm(pcb_b), Imm(static_cast<uint32_t>(isa::Ipr::kPcbb))});
    code.Emit(Opcode::kLdpctx);
    code.Emit(Opcode::kRei);
    Load(code.Finish());

    m().set_pc(0x1000);
    ASSERT_EQ(m().Run(1000).reason, Machine::StopReason::kHalted);
    // Context A captured r3 and the fake frame.
    EXPECT_EQ(m().memory().Read32(pcb_a + PcbLayout::kRegs + 4 * 3), 111u);
    EXPECT_EQ(m().memory().Read32(pcb_a + PcbLayout::kPc), 0x1f00u);
    // Context B ran with its saved register and pid.
    EXPECT_EQ(m().memory().Read32(kMark0), 4242u);
    EXPECT_EQ(m().ReadIpr(isa::Ipr::kPid), 7u);
}

TEST_F(ExceptionTest, ContextSwitchPatchFiresOnLdpctx)
{
    DefaultVectors();
    const uint32_t pcb = 0x4000;
    Psl psl;
    psl.cur_mode = CpuMode::kKernel;
    m().memory().Write32(pcb + PcbLayout::kPc, 0x3000);
    m().memory().Write32(pcb + PcbLayout::kPsl, psl.ToWord());
    m().memory().Write32(pcb + PcbLayout::kPid, 3);

    Assembler target(0x3000);
    target.Emit(Opcode::kHalt);
    Load(target.Finish());

    Assembler code(0x1000);
    code.Emit(Opcode::kMtpr,
              {Imm(pcb), Imm(static_cast<uint32_t>(isa::Ipr::kPcbb))});
    code.Emit(Opcode::kLdpctx);
    code.Emit(Opcode::kRei);
    Load(code.Finish());

    uint16_t seen_pid = 0;
    uint32_t seen_pcb = 0;
    m().control_store().PatchContextSwitch(
        [&](uint16_t pid, uint32_t pcb_pa) -> uint32_t {
            seen_pid = pid;
            seen_pcb = pcb_pa;
            return 0;
        });

    m().set_pc(0x1000);
    ASSERT_EQ(m().Run(1000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(seen_pid, 3u);
    EXPECT_EQ(seen_pcb, pcb);
}

TEST_F(ExceptionTest, IprConsoleAndPidRoundTrip)
{
    m().WriteIpr(isa::Ipr::kConsTx, 'h');
    m().WriteIpr(isa::Ipr::kConsTx, 'i');
    EXPECT_EQ(m().console_output(), "hi");
    m().WriteIpr(isa::Ipr::kPid, 9);
    EXPECT_EQ(m().ReadIpr(isa::Ipr::kPid), 9u);
    EXPECT_EQ(m().ReadIpr(isa::Ipr::kConsTx), 0u);
}

TEST_F(ExceptionTest, HaltedMachineStaysHalted)
{
    DefaultVectors();
    Assembler code(0x1000);
    code.Emit(Opcode::kHalt);
    Load(code.Finish());
    m().set_pc(0x1000);
    ASSERT_EQ(m().Run(10).reason, Machine::StopReason::kHalted);
    const uint64_t icount = m().icount();
    m().StepOne();  // no-op
    EXPECT_EQ(m().icount(), icount);
    m().ClearHalt();
    EXPECT_FALSE(m().halted());
}


TEST_F(ExceptionTest, SnapshotRestoreReplaysDeterministically)
{
    // Run a self-modifying-ish program with interrupts, snapshot mid-way,
    // finish, then restore and finish again: identical end state.
    DefaultVectors();
    Assembler handler(0x2400);
    handler.Emit(Opcode::kIncl, {Abs(kMark0)});
    handler.Emit(Opcode::kRei);
    Load(handler.Finish());
    SetVector(ExcVector::kTimer, 0x2400);

    Assembler code(0x1000);
    code.Emit(Opcode::kMtpr,
              {Imm(50), Imm(static_cast<uint32_t>(isa::Ipr::kIcr))});
    code.Emit(Opcode::kMtpr,
              {Imm(1), Imm(static_cast<uint32_t>(isa::Ipr::kIccs))});
    code.Emit(Opcode::kMovl, {Imm(3000), R(1)});
    code.Emit(Opcode::kClrl, {R(2)});
    Label loop = code.Here("loop");
    code.Emit(Opcode::kAddl2, {R(1), R(2)});
    code.Emit(Opcode::kSobgtr, {R(1)}, loop);
    code.Emit(Opcode::kHalt);
    Load(code.Finish());

    m().psl().ipl = 0;
    m().set_pc(0x1000);
    m().Run(1000);  // part-way through
    const MachineSnapshot snap = m().SaveSnapshot();
    ASSERT_FALSE(m().halted());

    ASSERT_EQ(m().Run(1'000'000).reason, Machine::StopReason::kHalted);
    const uint32_t first_r2 = m().reg(2);
    const uint32_t first_ticks = m().memory().Read32(kMark0);
    const uint64_t first_icount = m().icount();

    m().RestoreSnapshot(snap);
    ASSERT_FALSE(m().halted());
    ASSERT_EQ(m().Run(1'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(m().reg(2), first_r2);
    EXPECT_EQ(m().memory().Read32(kMark0), first_ticks);
    EXPECT_EQ(m().icount(), first_icount);
}

TEST_F(ExceptionTest, SnapshotRestoresConsoleAndHaltState)
{
    DefaultVectors();
    Assembler code(0x1000);
    code.Emit(Opcode::kMtpr,
              {Imm('a'), Imm(static_cast<uint32_t>(isa::Ipr::kConsTx))});
    code.Emit(Opcode::kHalt);
    Load(code.Finish());
    m().set_pc(0x1000);
    ASSERT_EQ(m().Run(10).reason, Machine::StopReason::kHalted);
    const MachineSnapshot snap = m().SaveSnapshot();
    EXPECT_TRUE(snap.halted);

    m().ClearHalt();
    m().WriteIpr(isa::Ipr::kConsTx, 'z');
    m().RestoreSnapshot(snap);
    EXPECT_TRUE(m().halted());
    EXPECT_EQ(m().console_output(), "a");
}

}  // namespace
}  // namespace atum::cpu
