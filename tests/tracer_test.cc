// Tests for the ATUM tracer and the user-only baseline against real
// full-system runs: completeness, buffer lifecycle, slowdown accounting,
// and non-perturbation of the architectural execution.

#include <gtest/gtest.h>

#include <memory>

#include "assembler/assembler.h"
#include "core/atum_tracer.h"
#include "core/session.h"
#include "core/user_tracer.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "isa/isa.h"
#include "trace/stats.h"
#include "workloads/workloads.h"

namespace atum::core {
namespace {

using cpu::Machine;
using kernel::GuestProgram;
using trace::RecordType;

std::unique_ptr<Machine>
SmallMachine(uint32_t timer_reload = 2000)
{
    Machine::Config config;
    config.mem_bytes = 1u << 20;
    config.timer_reload = timer_reload;
    return std::make_unique<Machine>(config);
}

GuestProgram
TinyLoop(uint32_t iters)
{
    using namespace assembler;
    using isa::Opcode;
    Assembler a(0);
    a.Emit(Opcode::kMovl, {Imm(iters), R(3)});
    auto loop = a.Here("loop");
    a.Emit(Opcode::kSobgtr, {R(3)}, loop);
    a.Emit(Opcode::kChmk,
           {Imm(static_cast<uint32_t>(kernel::Syscall::kExit))});
    GuestProgram gp;
    gp.name = "loop";
    gp.program = a.Finish();
    gp.heap_pages = 2;
    gp.stack_pages = 2;
    return gp;
}

TEST(AtumTracer, CapturesFullSystemTrace)
{
    auto machine = SmallMachine();
    trace::VectorSink sink;
    AtumConfig config;
    config.buffer_bytes = 64u << 10;
    AtumTracer tracer(*machine, sink, config);
    kernel::BootSystem(*machine, {TinyLoop(2000)});

    const SessionResult result = RunTraced(*machine, tracer, 10'000'000);
    ASSERT_TRUE(result.halted);
    ASSERT_GT(result.records, 0u);
    EXPECT_EQ(result.records, sink.records().size());

    trace::TraceStats stats;
    for (const auto& r : sink.records())
        stats.Accumulate(r);
    // A full-system trace must contain kernel AND user references,
    // context switches, exceptions, TB misses, and PTE traffic.
    EXPECT_GT(stats.kernel_refs(), 0u);
    EXPECT_GT(stats.user_refs(), 0u);
    EXPECT_GT(stats.CountOf(RecordType::kCtxSwitch), 0u);
    EXPECT_GT(stats.CountOf(RecordType::kException), 0u);
    EXPECT_GT(stats.CountOf(RecordType::kTlbMiss), 0u);
    EXPECT_GT(stats.CountOf(RecordType::kPte), 0u);
    EXPECT_GT(stats.CountOf(RecordType::kIFetch), 0u);
    EXPECT_GT(stats.CountOf(RecordType::kWrite), 0u);
}

TEST(AtumTracer, TracingDoesNotPerturbExecution)
{
    // The same workload with and without tracing must execute the same
    // instruction stream (tracing only dilates micro-cycles).
    auto traced = SmallMachine();
    trace::CountingSink sink;
    AtumTracer tracer(*traced, sink);
    kernel::BootSystem(*traced, {TinyLoop(3000)});
    const SessionResult with = RunTraced(*traced, tracer, 10'000'000);

    auto plain = SmallMachine();
    kernel::BootSystem(*plain, {TinyLoop(3000)});
    const SessionResult without = RunUntraced(*plain, 10'000'000);

    ASSERT_TRUE(with.halted);
    ASSERT_TRUE(without.halted);
    EXPECT_EQ(with.instructions, without.instructions);
    EXPECT_EQ(traced->console_output(), plain->console_output());
    EXPECT_GT(with.ucycles, without.ucycles);  // but time dilated
}

TEST(AtumTracer, SlowdownScalesWithPatchCost)
{
    auto measure = [](uint32_t cost) {
        auto machine = SmallMachine();
        trace::CountingSink sink;
        AtumConfig config;
        config.cost_per_record = cost;
        AtumTracer tracer(*machine, sink, config);
        kernel::BootSystem(*machine, {TinyLoop(2000)});
        const SessionResult r = RunTraced(*machine, tracer, 10'000'000);
        EXPECT_TRUE(r.halted);
        return r.ucycles;
    };
    const uint64_t cheap = measure(1);
    const uint64_t expensive = measure(64);
    EXPECT_GT(expensive, cheap + cheap / 2);
}

TEST(AtumTracer, BufferFillsAndDrains)
{
    auto machine = SmallMachine();
    trace::VectorSink sink;
    AtumConfig config;
    config.buffer_bytes = 4096;  // 512 records per fill
    AtumTracer tracer(*machine, sink, config);
    kernel::BootSystem(*machine, {TinyLoop(2000)});

    const SessionResult result = RunTraced(*machine, tracer, 10'000'000);
    ASSERT_TRUE(result.halted);
    EXPECT_GT(result.buffer_fills, 2u);
    EXPECT_EQ(tracer.buffered_records(), 0u);  // flushed
    EXPECT_EQ(sink.records().size(), result.records);
}

TEST(AtumTracer, BufferContentsSurviveThePhysicalMemoryPath)
{
    // Records are written into guest physical memory and read back out;
    // verify the drained stream is well-formed (types in range, memory
    // records have plausible sizes).
    auto machine = SmallMachine();
    trace::VectorSink sink;
    AtumTracer tracer(*machine, sink);
    kernel::BootSystem(*machine, {TinyLoop(500)});
    RunTraced(*machine, tracer, 10'000'000);
    ASSERT_GT(sink.records().size(), 0u);
    for (const auto& r : sink.records()) {
        EXPECT_LT(static_cast<unsigned>(r.type),
                  static_cast<unsigned>(RecordType::kNumTypes));
        if (r.IsMemory()) {
            EXPECT_TRUE(r.size() == 1 || r.size() == 2 || r.size() == 4);
        }
    }
}

TEST(AtumTracer, DetachStopsRecording)
{
    auto machine = SmallMachine();
    trace::VectorSink sink;
    AtumTracer tracer(*machine, sink);
    kernel::BootSystem(*machine, {TinyLoop(5000)});
    tracer.Attach();
    machine->Run(1000);
    tracer.Flush();
    const size_t at_detach = sink.records().size();
    ASSERT_GT(at_detach, 0u);
    tracer.Detach();
    machine->Run(1000);
    tracer.Flush();
    EXPECT_EQ(sink.records().size(), at_detach);
}

TEST(AtumTracer, FilterConfigDropsRecordTypes)
{
    auto machine = SmallMachine();
    trace::VectorSink sink;
    AtumConfig config;
    config.record_ifetch = false;
    config.record_pte = false;
    config.record_tlb_miss = false;
    config.record_exceptions = false;
    AtumTracer tracer(*machine, sink, config);
    kernel::BootSystem(*machine, {TinyLoop(1000)});
    RunTraced(*machine, tracer, 10'000'000);
    ASSERT_GT(sink.records().size(), 0u);
    for (const auto& r : sink.records()) {
        EXPECT_NE(r.type, RecordType::kIFetch);
        EXPECT_NE(r.type, RecordType::kPte);
        EXPECT_NE(r.type, RecordType::kTlbMiss);
        EXPECT_NE(r.type, RecordType::kException);
    }
}

TEST(AtumTracerDeath, DoubleAttachIsFatal)
{
    auto machine = SmallMachine();
    trace::VectorSink sink;
    AtumTracer tracer(*machine, sink);
    tracer.Attach();
    EXPECT_DEATH(tracer.Attach(), "already attached");
}

TEST(UserOnlyTracer, SeesOnlyTargetUserReferences)
{
    auto machine = SmallMachine();
    trace::VectorSink sink;
    UserTracerConfig config;
    config.target_pid = 1;
    UserOnlyTracer tracer(*machine, sink, config);
    kernel::BootSystem(*machine, {TinyLoop(2000), TinyLoop(100)});
    const SessionResult result = RunBaseline(*machine, tracer, 10'000'000);
    ASSERT_TRUE(result.halted);
    ASSERT_GT(sink.records().size(), 0u);
    EXPECT_GT(tracer.suppressed(), 0u);
    for (const auto& r : sink.records()) {
        EXPECT_FALSE(r.kernel());
        EXPECT_NE(r.type, RecordType::kPte);
        EXPECT_NE(r.type, RecordType::kCtxSwitch);
    }
}

TEST(UserOnlyTracer, SeesStrictSubsetOfAtumTrace)
{
    // Run the same workload under both tracers; the baseline must see
    // fewer references than the full-system trace.
    auto run_atum = [] {
        auto machine = SmallMachine();
        trace::VectorSink sink;
        AtumTracer tracer(*machine, sink);
        kernel::BootSystem(*machine, {TinyLoop(2000)});
        RunTraced(*machine, tracer, 10'000'000);
        trace::TraceStats stats;
        for (const auto& r : sink.records())
            stats.Accumulate(r);
        return stats.mem_refs();
    };
    auto run_user = [] {
        auto machine = SmallMachine();
        trace::VectorSink sink;
        UserOnlyTracer tracer(*machine, sink);
        kernel::BootSystem(*machine, {TinyLoop(2000)});
        RunBaseline(*machine, tracer, 10'000'000);
        return static_cast<uint64_t>(sink.records().size());
    };
    const uint64_t full = run_atum();
    const uint64_t user = run_user();
    EXPECT_LT(user, full);
    EXPECT_GT(user, 0u);
}

TEST(Session, UntracedRunReportsBasics)
{
    auto machine = SmallMachine();
    kernel::BootSystem(*machine, {TinyLoop(100)});
    const SessionResult r = RunUntraced(*machine, 10'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.instructions, 100u);
    EXPECT_GT(r.ucycles, 0u);
    EXPECT_EQ(r.records, 0u);
}


TEST(AtumTracer, OpcodeRecordsMatchInstructionCount)
{
    auto machine = SmallMachine();
    trace::VectorSink sink;
    AtumConfig config;
    config.record_opcodes = true;
    AtumTracer tracer(*machine, sink, config);
    kernel::BootSystem(*machine, {TinyLoop(500)});
    const SessionResult result = RunTraced(*machine, tracer, 10'000'000);
    ASSERT_TRUE(result.halted);

    uint64_t opcode_records = 0;
    uint64_t sobgtr_count = 0;
    for (const auto& r : sink.records()) {
        if (r.type != RecordType::kOpcode)
            continue;
        ++opcode_records;
        if (r.info == static_cast<uint16_t>(isa::Opcode::kSobgtr))
            ++sobgtr_count;
    }
    // Every executed instruction decodes exactly once (faulted executions
    // re-decode on restart, so >= is the invariant).
    EXPECT_GE(opcode_records, result.instructions - 8);
    EXPECT_LE(opcode_records, result.instructions + 8);
    // The workload's 500-iteration SOBGTR loop dominates.
    EXPECT_GE(sobgtr_count, 500u);
}

// ---------------------------------------------------------------------------
// Drain failure policy: retry, degrade to counting-only, recover with a
// loss marker. The simulated machine must never die with the sink.

/** Sink that refuses the first `failures` appends, then accepts. */
class FlakySink : public trace::TraceSink
{
  public:
    explicit FlakySink(uint64_t failures) : remaining_(failures) {}

    util::Status Append(const trace::Record& record) override
    {
        if (remaining_ > 0) {
            --remaining_;
            return util::Unavailable("sink offline");
        }
        records_.push_back(record);
        return util::OkStatus();
    }

    const std::vector<trace::Record>& records() const { return records_; }

  private:
    uint64_t remaining_;
    std::vector<trace::Record> records_;
};

/** Sink that never accepts anything. */
class DeadSink : public trace::TraceSink
{
  public:
    util::Status Append(const trace::Record&) override
    {
        ++attempts_;
        return util::IoError("disk full");
    }
    uint64_t attempts() const { return attempts_; }

  private:
    uint64_t attempts_ = 0;
};

TEST(AtumTracerFaults, TransientSinkFailureIsRetriedWithoutLoss)
{
    auto machine = SmallMachine();
    // Two refusals: the first drain attempt fails twice at its head
    // record, then the bounded backoff retries succeed.
    FlakySink sink(2);
    AtumConfig config;
    config.buffer_bytes = 4u << 10;
    AtumTracer tracer(*machine, sink, config);
    kernel::BootSystem(*machine, {TinyLoop(2000)});

    const SessionResult result = RunTraced(*machine, tracer, 10'000'000);
    ASSERT_TRUE(result.halted);
    EXPECT_EQ(tracer.drain_retries(), 2u);
    EXPECT_FALSE(result.degraded);
    EXPECT_EQ(result.lost_records, 0u);
    EXPECT_EQ(result.loss_events, 0u);
    EXPECT_EQ(sink.records().size(), result.records);
    for (const auto& r : sink.records())
        EXPECT_NE(r.type, RecordType::kLoss);
}

TEST(AtumTracerFaults, DeadSinkDegradesToCountingOnly)
{
    auto machine = SmallMachine();
    DeadSink sink;
    AtumConfig config;
    config.buffer_bytes = 4u << 10;
    AtumTracer tracer(*machine, sink, config);
    kernel::BootSystem(*machine, {TinyLoop(2000)});

    // The machine must run to completion even though every drain fails.
    const SessionResult result = RunTraced(*machine, tracer, 10'000'000);
    ASSERT_TRUE(result.halted);
    EXPECT_TRUE(result.degraded);
    EXPECT_GE(result.loss_events, 1u);
    EXPECT_EQ(result.lost_records, result.records);
    EXPECT_GT(sink.attempts(), 0u);
    EXPECT_FALSE(tracer.last_drain_error().ok());
}

TEST(AtumTracerFaults, RecoveredSinkGetsOneLossMarker)
{
    auto machine = SmallMachine();
    // One full drain cycle fails (1 try + 3 retries = 4 refusals), then
    // the sink comes back: the next drain's recovery probe plants the
    // loss marker and capture resumes.
    FlakySink sink(4);
    AtumConfig config;
    config.buffer_bytes = 4u << 10;
    AtumTracer tracer(*machine, sink, config);
    kernel::BootSystem(*machine, {TinyLoop(2000)});

    const SessionResult result = RunTraced(*machine, tracer, 10'000'000);
    ASSERT_TRUE(result.halted);
    EXPECT_FALSE(result.degraded);  // recovered before the end
    EXPECT_EQ(result.loss_events, 1u);
    EXPECT_GT(result.lost_records, 0u);

    uint64_t markers = 0;
    uint32_t marked_lost = 0;
    for (const auto& r : sink.records()) {
        if (r.type == RecordType::kLoss) {
            ++markers;
            marked_lost = r.addr;
        }
    }
    ASSERT_EQ(markers, 1u);
    // The marker documents the gap: exactly the records tallied as lost.
    EXPECT_EQ(marked_lost, result.lost_records);
    // Everything that wasn't lost made it to the sink (plus the marker).
    EXPECT_EQ(sink.records().size() - markers,
              result.records - result.lost_records);
}

}  // namespace
}  // namespace atum::core
