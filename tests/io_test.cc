// Unit tests for the io library: the Vfs seam, MemVfs's durability model
// (what survives a power cut), ChaosVfs fault injection, and the chaos
// schedule's text format.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <vector>

#include "io/chaos.h"
#include "io/mem_vfs.h"
#include "io/posix.h"
#include "io/vfs.h"
#include "util/status.h"

namespace atum::io {
namespace {

std::vector<uint8_t>
Bytes(const std::string& s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

/** Creates `path` with `content`, optionally fsyncing it. */
void
Put(Vfs& vfs, const std::string& path, const std::string& content,
    bool sync)
{
    util::StatusOr<std::unique_ptr<WritableFile>> f = vfs.Create(path);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ASSERT_TRUE((*f)->Write(content.data(), content.size()).ok());
    if (sync)
        ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Close().ok());
}

std::string
Get(Vfs& vfs, const std::string& path)
{
    util::StatusOr<std::unique_ptr<ReadableFile>> f = vfs.OpenRead(path);
    if (!f.ok())
        return "<" + f.status().ToString() + ">";
    std::string out;
    char buf[64];
    while (true) {
        util::StatusOr<size_t> got = (*f)->Read(buf, sizeof buf);
        if (!got.ok())
            return "<" + got.status().ToString() + ">";
        if (*got == 0)
            break;
        out.append(buf, *got);
    }
    return out;
}

// ---------------------------------------------------------------------------
// posix helpers

TEST(Posix, ErrnoStatusClassifies)
{
    EXPECT_EQ(ErrnoStatus(ENOSPC, "x").code(), util::StatusCode::kNoSpace);
    EXPECT_EQ(ErrnoStatus(EDQUOT, "x").code(), util::StatusCode::kNoSpace);
    EXPECT_EQ(ErrnoStatus(ENOENT, "x").code(), util::StatusCode::kNotFound);
    EXPECT_EQ(ErrnoStatus(EINTR, "x").code(),
              util::StatusCode::kInterrupted);
    EXPECT_EQ(ErrnoStatus(EACCES, "x").code(), util::StatusCode::kIoError);
}

TEST(Posix, DirOf)
{
    EXPECT_EQ(DirOf("a/b/c.atf2"), "a/b");
    EXPECT_EQ(DirOf("c.atf2"), ".");
    EXPECT_EQ(DirOf("/c.atf2"), "/");
}

// ---------------------------------------------------------------------------
// RealVfs (against the host filesystem, inside the build tree)

TEST(RealVfs, RoundTrip)
{
    Vfs& vfs = RealVfs();
    EXPECT_STREQ(vfs.name(), "real");
    const std::string path = "io_test_roundtrip.tmp";
    Put(vfs, path, "hello vfs", /*sync=*/true);
    EXPECT_EQ(Get(vfs, path), "hello vfs");

    // Atomic publish: rename then dirsync, then read the final name.
    const std::string final_path = "io_test_roundtrip.dat";
    ASSERT_TRUE(vfs.Rename(path, final_path).ok());
    ASSERT_TRUE(vfs.DirSync(final_path).ok());
    EXPECT_EQ(Get(vfs, final_path), "hello vfs");

    // Resume semantics: append at a mid-file high-water mark.
    util::StatusOr<std::unique_ptr<WritableFile>> f =
        vfs.OpenForAppendAt(final_path, 5);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ASSERT_TRUE((*f)->Write("atum!", 5).ok());
    ASSERT_TRUE((*f)->Close().ok());
    EXPECT_EQ(Get(vfs, final_path), "helloatum!");

    // A high-water mark past EOF means the trace/checkpoint mismatch.
    EXPECT_EQ(vfs.OpenForAppendAt(final_path, 999).status().code(),
              util::StatusCode::kDataLoss);
    EXPECT_EQ(vfs.OpenForAppendAt("io_test_missing", 0).status().code(),
              util::StatusCode::kNotFound);

    ASSERT_TRUE(vfs.Unlink(final_path).ok());
    EXPECT_EQ(vfs.Unlink(final_path).code(), util::StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// MemVfs durability model

TEST(MemVfs, VolatileUntilSync)
{
    MemVfs vfs;
    Put(vfs, "a", "unsynced", /*sync=*/false);
    Put(vfs, "b", "synced", /*sync=*/true);

    // The live view has both; only the synced file survives the cut.
    EXPECT_EQ(Get(vfs, "a"), "unsynced");
    const MemVfs::Snapshot snap = vfs.SnapshotDurable();
    EXPECT_EQ(snap.files.count("a"), 0u);
    ASSERT_EQ(snap.files.count("b"), 1u);
    EXPECT_EQ(snap.files.at("b"), Bytes("synced"));

    MemVfs rebooted(snap);
    EXPECT_FALSE(rebooted.Exists("a"));
    EXPECT_EQ(Get(rebooted, "b"), "synced");
}

TEST(MemVfs, WritesAfterSyncAreVolatile)
{
    MemVfs vfs;
    util::StatusOr<std::unique_ptr<WritableFile>> f = vfs.Create("t");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write("AAAA", 4).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Write("BBBB", 4).ok());  // never synced
    const MemVfs::Snapshot snap = vfs.SnapshotDurable();
    ASSERT_EQ(snap.files.count("t"), 1u);
    EXPECT_EQ(snap.files.at("t"), Bytes("AAAA"));
    EXPECT_EQ(Get(vfs, "t"), "AAAABBBB");  // live view sees everything
}

TEST(MemVfs, RenameNeedsDirSyncToSurvive)
{
    MemVfs vfs;
    Put(vfs, "x.tmp", "payload", /*sync=*/true);
    ASSERT_TRUE(vfs.Rename("x.tmp", "x").ok());

    // Without DirSync the cut resurrects the OLD name.
    MemVfs::Snapshot before = vfs.SnapshotDurable();
    EXPECT_EQ(before.files.count("x"), 0u);
    EXPECT_EQ(before.files.count("x.tmp"), 1u);

    // After DirSync the publish is durable.
    ASSERT_TRUE(vfs.DirSync("x").ok());
    MemVfs::Snapshot after = vfs.SnapshotDurable();
    EXPECT_EQ(after.files.count("x.tmp"), 0u);
    ASSERT_EQ(after.files.count("x"), 1u);
    EXPECT_EQ(after.files.at("x"), Bytes("payload"));
}

TEST(MemVfs, UnlinkNeedsDirSyncToSurvive)
{
    MemVfs vfs;
    Put(vfs, "doomed", "bits", /*sync=*/true);
    ASSERT_TRUE(vfs.Unlink("doomed").ok());
    EXPECT_EQ(vfs.SnapshotDurable().files.count("doomed"), 1u);
    ASSERT_TRUE(vfs.DirSync("doomed").ok());
    EXPECT_EQ(vfs.SnapshotDurable().files.count("doomed"), 0u);
}

TEST(MemVfs, OpenForAppendAtTruncates)
{
    MemVfs vfs;
    Put(vfs, "t", "0123456789", /*sync=*/true);
    util::StatusOr<std::unique_ptr<WritableFile>> f =
        vfs.OpenForAppendAt("t", 4);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write("XY", 2).ok());
    EXPECT_EQ(Get(vfs, "t"), "0123XY");
    EXPECT_EQ(vfs.OpenForAppendAt("t", 64).status().code(),
              util::StatusCode::kDataLoss);
    EXPECT_EQ(vfs.OpenForAppendAt("nope", 0).status().code(),
              util::StatusCode::kNotFound);
}

TEST(MemVfs, ListDirReturnsSortedBasenames)
{
    MemVfs vfs;
    Put(vfs, "d/b.atf2", "x", /*sync=*/false);
    Put(vfs, "d/a.atck", "y", /*sync=*/false);
    Put(vfs, "other/c", "z", /*sync=*/false);
    Put(vfs, "rootfile", "w", /*sync=*/false);

    util::StatusOr<std::vector<std::string>> names = vfs.ListDir("d");
    ASSERT_TRUE(names.ok());
    ASSERT_EQ(names->size(), 2u);
    EXPECT_EQ((*names)[0], "a.atck");
    EXPECT_EQ((*names)[1], "b.atf2");

    names = vfs.ListDir(".");
    ASSERT_TRUE(names.ok());
    ASSERT_EQ(names->size(), 1u);
    EXPECT_EQ((*names)[0], "rootfile");

    // MemVfs has no directory inodes: an unknown dir is simply empty.
    names = vfs.ListDir("missing");
    ASSERT_TRUE(names.ok());
    EXPECT_TRUE(names->empty());
}

TEST(RealVfs, ListDirSeesRegularFiles)
{
    Vfs& vfs = RealVfs();
    const std::string path = "io_test_listdir.tmp";
    Put(vfs, path, "x", /*sync=*/false);
    util::StatusOr<std::vector<std::string>> names = vfs.ListDir(".");
    ASSERT_TRUE(names.ok());
    bool found = false;
    for (const std::string& name : *names)
        found |= name == path;
    EXPECT_TRUE(found);
    ASSERT_TRUE(vfs.Unlink(path).ok());
    EXPECT_EQ(vfs.ListDir("io_test_no_such_dir").status().code(),
              util::StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// ChaosVfs fault injection

ChaosSchedule
OneOp(ChaosOpKind kind, uint64_t at, uint64_t arg = 0,
      util::StatusCode error = util::StatusCode::kIoError)
{
    ChaosSchedule s;
    s.ops.push_back(ChaosOp{kind, at, arg, error});
    return s;
}

TEST(ChaosVfs, EmptyScheduleIsAProbe)
{
    MemVfs mem;
    ChaosVfs vfs(mem, ChaosSchedule{});
    Put(vfs, "p", "data", /*sync=*/true);
    EXPECT_EQ(Get(vfs, "p"), "data");
    ASSERT_TRUE(vfs.Rename("p", "q").ok());
    ASSERT_TRUE(vfs.DirSync("q").ok());
    EXPECT_EQ(vfs.counts().writes, 1u);
    EXPECT_EQ(vfs.counts().syncs, 1u);
    EXPECT_EQ(vfs.counts().reads, 2u);  // data + the EOF probe
    EXPECT_EQ(vfs.counts().renames, 1u);
    EXPECT_EQ(vfs.counts().dirsyncs, 1u);
    EXPECT_EQ(vfs.faults_fired(), 0u);
}

TEST(ChaosVfs, FailWriteAtIndex)
{
    MemVfs mem;
    ChaosVfs vfs(mem, OneOp(ChaosOpKind::kFailWrite, 2, 0,
                            util::StatusCode::kNoSpace));
    util::StatusOr<std::unique_ptr<WritableFile>> f = vfs.Create("t");
    ASSERT_TRUE(f.ok());
    EXPECT_TRUE((*f)->Write("one", 3).ok());
    util::Status second = (*f)->Write("two", 3);
    EXPECT_EQ(second.code(), util::StatusCode::kNoSpace);
    EXPECT_TRUE((*f)->Write("three", 5).ok());  // ops fire exactly once
    EXPECT_EQ(vfs.faults_fired(), 1u);
    EXPECT_EQ(Get(vfs, "t"), "onethree");
}

TEST(ChaosVfs, ShortWriteKeepsPrefix)
{
    MemVfs mem;
    ChaosVfs vfs(mem, OneOp(ChaosOpKind::kShortWrite, 1, 2));
    util::StatusOr<std::unique_ptr<WritableFile>> f = vfs.Create("t");
    ASSERT_TRUE(f.ok());
    EXPECT_FALSE((*f)->Write("abcdef", 6).ok());
    EXPECT_EQ(Get(vfs, "t"), "ab");  // the torn prefix landed
}

TEST(ChaosVfs, FlipWriteIsSilent)
{
    MemVfs mem;
    ChaosVfs vfs(mem, OneOp(ChaosOpKind::kFlipWrite, 1, 1));
    util::StatusOr<std::unique_ptr<WritableFile>> f = vfs.Create("t");
    ASSERT_TRUE(f.ok());
    EXPECT_TRUE((*f)->Write("abc", 3).ok());  // no error reported
    const std::string got = Get(vfs, "t");
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], 'a');
    EXPECT_NE(got[1], 'b');  // byte 1 flipped
    EXPECT_EQ(got[2], 'c');
}

TEST(ChaosVfs, PowerCutWriteKillsTheWorld)
{
    MemVfs mem;
    ChaosVfs vfs(mem, OneOp(ChaosOpKind::kPowerCutWrite, 2));
    Put(vfs, "before", "durable", /*sync=*/true);

    util::StatusOr<std::unique_ptr<WritableFile>> f = vfs.Create("t");
    ASSERT_TRUE(f.ok());
    util::Status cut = (*f)->Write("lost", 4);
    EXPECT_EQ(cut.code(), util::StatusCode::kUnavailable);
    EXPECT_TRUE(vfs.power_cut_fired());
    EXPECT_EQ(*vfs.cut_flag(), 1);

    // Everything after the cut fails against the dead filesystem.
    EXPECT_EQ((*f)->Sync().code(), util::StatusCode::kUnavailable);
    EXPECT_EQ(vfs.Rename("before", "after").code(),
              util::StatusCode::kUnavailable);
    EXPECT_EQ(vfs.Create("new").status().code(),
              util::StatusCode::kUnavailable);
    EXPECT_EQ(vfs.OpenRead("before").status().code(),
              util::StatusCode::kUnavailable);
    EXPECT_EQ(vfs.ListDir(".").status().code(),
              util::StatusCode::kUnavailable);

    // The snapshot holds the durable view: the synced file, intact; the
    // cut write (and its never-synced file) gone.
    const MemVfs::Snapshot& snap = vfs.snapshot();
    EXPECT_EQ(snap.files.count("before"), 1u);
    EXPECT_EQ(snap.files.count("t"), 0u);
}

TEST(ChaosVfs, PowerCutSyncDiscardsTheBarrier)
{
    MemVfs mem;
    ChaosVfs vfs(mem, OneOp(ChaosOpKind::kPowerCutSync, 1));
    util::StatusOr<std::unique_ptr<WritableFile>> f = vfs.Create("t");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write("data", 4).ok());
    EXPECT_EQ((*f)->Sync().code(), util::StatusCode::kUnavailable);
    // The cut fired BEFORE the barrier committed: nothing is durable.
    EXPECT_EQ(vfs.snapshot().files.count("t"), 0u);
}

TEST(ChaosVfs, PowerCutRenameIsATornPublish)
{
    MemVfs mem;
    ChaosVfs vfs(mem, OneOp(ChaosOpKind::kPowerCutRename, 1));
    Put(vfs, "x.tmp", "payload", /*sync=*/true);

    // The rename REPORTS success — the caller believes the publish
    // happened — but the cut fires before any DirSync can land it.
    EXPECT_TRUE(vfs.Rename("x.tmp", "x").ok());
    EXPECT_TRUE(vfs.power_cut_fired());
    EXPECT_EQ(vfs.DirSync("x").code(), util::StatusCode::kUnavailable);

    const MemVfs::Snapshot& snap = vfs.snapshot();
    EXPECT_EQ(snap.files.count("x"), 0u);      // publish did not survive
    EXPECT_EQ(snap.files.count("x.tmp"), 1u);  // old name resurrected
}

TEST(ChaosVfs, FlipReadRotsTheReadback)
{
    MemVfs mem;
    ChaosVfs vfs(mem, OneOp(ChaosOpKind::kFlipRead, 1, 0));
    Put(vfs, "t", "abc", /*sync=*/true);
    util::StatusOr<std::unique_ptr<ReadableFile>> f = vfs.OpenRead("t");
    ASSERT_TRUE(f.ok());
    char buf[8];
    util::StatusOr<size_t> got = (*f)->Read(buf, sizeof buf);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, 3u);
    EXPECT_NE(buf[0], 'a');  // byte 0 flipped
    EXPECT_EQ(buf[1], 'b');
}

TEST(ChaosVfs, FailDirSync)
{
    MemVfs mem;
    ChaosVfs vfs(mem, OneOp(ChaosOpKind::kFailDirSync, 1));
    Put(vfs, "x.tmp", "p", /*sync=*/true);
    ASSERT_TRUE(vfs.Rename("x.tmp", "x").ok());
    EXPECT_EQ(vfs.DirSync("x").code(), util::StatusCode::kIoError);
    EXPECT_TRUE(vfs.DirSync("x").ok());  // fires once
}

// ---------------------------------------------------------------------------
// Schedule text format

TEST(ChaosSchedule, SerializeParseRoundTrip)
{
    ChaosSchedule s;
    s.seed = 42;
    s.campaigns = {"powercut", "enospc"};
    s.ops = {
        ChaosOp{ChaosOpKind::kFailWrite, 57, 0, util::StatusCode::kNoSpace},
        ChaosOp{ChaosOpKind::kShortWrite, 30, 7, util::StatusCode::kIoError},
        ChaosOp{ChaosOpKind::kFlipWrite, 9, 100, util::StatusCode::kIoError},
        ChaosOp{ChaosOpKind::kPowerCutWrite, 133, 0,
                util::StatusCode::kIoError},
        ChaosOp{ChaosOpKind::kFailSync, 2, 0,
                util::StatusCode::kInterrupted},
        ChaosOp{ChaosOpKind::kPowerCutRename, 1, 0,
                util::StatusCode::kIoError},
    };
    const std::string text = s.Serialize();
    util::StatusOr<ChaosSchedule> back = ChaosSchedule::Parse(text);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->seed, s.seed);
    EXPECT_EQ(back->campaigns, s.campaigns);
    ASSERT_EQ(back->ops.size(), s.ops.size());
    for (size_t i = 0; i < s.ops.size(); ++i) {
        EXPECT_EQ(back->ops[i].kind, s.ops[i].kind) << "op " << i;
        EXPECT_EQ(back->ops[i].at, s.ops[i].at) << "op " << i;
        EXPECT_EQ(back->ops[i].arg, s.ops[i].arg) << "op " << i;
        EXPECT_EQ(back->ops[i].error, s.ops[i].error) << "op " << i;
    }
    EXPECT_EQ(back->Serialize(), text);  // canonical form is stable
}

TEST(ChaosSchedule, ParseToleratesCommentsAndBlanks)
{
    const std::string text =
        "# a comment\n"
        "\n"
        "seed 7\n"
        "campaign torn-rename\n"
        "op power-cut-rename 1  # trailing comment\n";
    util::StatusOr<ChaosSchedule> s = ChaosSchedule::Parse(text);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    EXPECT_EQ(s->seed, 7u);
    ASSERT_EQ(s->ops.size(), 1u);
    EXPECT_EQ(s->ops[0].kind, ChaosOpKind::kPowerCutRename);
}

TEST(ChaosSchedule, ParseRejectsGarbage)
{
    EXPECT_FALSE(ChaosSchedule::Parse("op explode 1\n").ok());
    EXPECT_FALSE(ChaosSchedule::Parse("frobnicate\n").ok());
    EXPECT_FALSE(ChaosSchedule::Parse("op fail-write\n").ok());
    EXPECT_FALSE(ChaosSchedule::Parse("op fail-write 0\n").ok());
}

TEST(ChaosSchedule, RandomIsDeterministic)
{
    OpCounts probe;
    probe.writes = 1000;
    probe.syncs = 40;
    probe.reads = 10;
    probe.renames = 12;
    probe.dirsyncs = 12;
    const std::vector<std::string> campaigns = {"powercut", "enospc",
                                                "torn-rename"};
    util::StatusOr<ChaosSchedule> a =
        ChaosSchedule::Random(7, campaigns, probe);
    util::StatusOr<ChaosSchedule> b =
        ChaosSchedule::Random(7, campaigns, probe);
    util::StatusOr<ChaosSchedule> c =
        ChaosSchedule::Random(8, campaigns, probe);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(a->Serialize(), b->Serialize());
    EXPECT_NE(a->Serialize(), c->Serialize());
    EXPECT_FALSE(a->ops.empty());

    EXPECT_FALSE(ChaosSchedule::Random(1, {"no-such"}, probe).ok());
}

}  // namespace
}  // namespace atum::io
