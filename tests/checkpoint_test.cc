// Checkpoint/resume and supervised-capture tests: state serialization
// round-trips, the determinism property (restore + N steps == never
// stopped), crash-equivalent trace continuation at the byte level, a
// corruption matrix over the ATCK frame, and the supervisor's watchdog /
// deadline / signal stop paths.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/atum_tracer.h"
#include "core/checkpoint.h"
#include "core/session.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/container.h"
#include "trace/sink.h"
#include "util/serialize.h"
#include "workloads/workloads.h"

namespace atum {
namespace {

using core::AtumConfig;
using core::AtumTracer;
using core::Checkpoint;
using core::CheckpointMeta;
using core::CheckpointRotator;
using core::StopCause;
using core::SupervisorOptions;
using cpu::Machine;
using trace::MemoryByteSink;
using trace::MemoryByteSource;

Machine::Config
MixConfig()
{
    Machine::Config config;
    config.mem_bytes = 2u << 20;
    config.timer_reload = 2000;
    return config;
}

AtumConfig
SmallBufferConfig()
{
    AtumConfig config;
    config.buffer_bytes = 16u << 10;  // fills often → frequent checkpoints
    return config;
}

std::string
TempPath(const std::string& name)
{
    const char* dir = std::getenv("TMPDIR");
    return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::vector<uint8_t>
ReadAllBytes(const std::string& path)
{
    std::vector<uint8_t> bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

// ---------------------------------------------------------------------------
// StateWriter / StateReader.

TEST(Serialize, RoundTripsScalarsAndBlobs)
{
    util::StateWriter w;
    w.U8(0xAB);
    w.U16(0xBEEF);
    w.U32(0xDEADBEEF);
    w.U64(0x0123456789ABCDEFull);
    w.Bool(true);
    w.Str("atum");
    const uint8_t raw[3] = {1, 2, 3};
    w.Bytes(raw, sizeof raw);

    util::StateReader r(w.bytes());
    EXPECT_EQ(r.U8(), 0xAB);
    EXPECT_EQ(r.U16(), 0xBEEF);
    EXPECT_EQ(r.U32(), 0xDEADBEEFu);
    EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
    EXPECT_TRUE(r.Bool());
    EXPECT_EQ(r.Str(), "atum");
    uint8_t got[3] = {};
    r.Bytes(got, sizeof got);
    EXPECT_EQ(got[2], 3);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, OverrunLatchesAndZeroFills)
{
    util::StateWriter w;
    w.U16(7);
    util::StateReader r(w.bytes());
    EXPECT_EQ(r.U32(), 0u);  // needs 4 bytes, only 2 exist
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
    EXPECT_EQ(r.U64(), 0u);  // latched: everything after reads zero
    EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// The determinism property: checkpoint mid-run, restore into a fresh
// machine, and both must step identically — same architectural state,
// same record stream — for thousands of instructions.

TEST(CheckpointDeterminism, RestoredMachineReplaysIdentically)
{
    const Machine::Config mconfig = MixConfig();
    const AtumConfig tconfig = SmallBufferConfig();

    Machine machine(mconfig);
    trace::VectorSink sink;
    AtumTracer tracer(machine, sink, tconfig);
    kernel::BootSystem(machine, workloads::StandardMix(1));
    tracer.Attach();

    // Run into the middle of the workload (mid-boot wash is over, all
    // processes alive) and checkpoint at an instruction boundary.
    machine.Run(150'000);
    ASSERT_FALSE(machine.halted());

    CheckpointMeta meta;
    meta.machine_config = mconfig;
    meta.tracer_config = tconfig;
    MemoryByteSink ckpt_bytes;
    ASSERT_TRUE(
        core::WriteCheckpoint(ckpt_bytes, meta, machine, tracer, nullptr)
            .ok());

    MemoryByteSource source(ckpt_bytes.bytes());
    util::StatusOr<Checkpoint> ckpt = Checkpoint::Read(source);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();

    Machine restored(ckpt->meta().machine_config);
    trace::VectorSink restored_sink;
    AtumTracer restored_tracer(restored, restored_sink,
                               ckpt->meta().tracer_config);
    ASSERT_TRUE(ckpt->RestoreMachine(restored).ok());
    ASSERT_TRUE(ckpt->RestoreTracer(restored_tracer).ok());
    restored_tracer.Attach();

    const size_t records_at_ckpt = sink.records().size();

    // March both machines forward and compare their *entire* serialized
    // state at intervals — registers, memory, TB, prefetch buffer, timer.
    for (int leg = 0; leg < 5; ++leg) {
        for (int step = 0; step < 2000; ++step) {
            machine.StepOne();
            restored.StepOne();
        }
        util::StateWriter a, b;
        ASSERT_TRUE(machine.Save(a).ok());
        ASSERT_TRUE(restored.Save(b).ok());
        ASSERT_EQ(a.bytes(), b.bytes()) << "state diverged by leg " << leg;
    }

    // The record streams must agree too: what the original captured after
    // the checkpoint equals what the restored capture produced from zero.
    tracer.Flush();
    restored_tracer.Flush();
    const auto& full = sink.records();
    const auto& replay = restored_sink.records();
    ASSERT_EQ(full.size() - records_at_ckpt, replay.size());
    for (size_t i = 0; i < replay.size(); ++i) {
        ASSERT_TRUE(full[records_at_ckpt + i] == replay[i])
            << "record " << i << " diverged";
    }
}

// ---------------------------------------------------------------------------
// Crash equivalence at the byte level: an interrupted-then-resumed
// capture's trace file is byte-identical to one that never stopped.

TEST(CheckpointResume, ResumedTraceIsByteIdentical)
{
    const Machine::Config mconfig = MixConfig();
    const AtumConfig tconfig = SmallBufferConfig();
    const std::string full_path = TempPath("ckpt_full.atum");
    const std::string torn_path = TempPath("ckpt_torn.atum");
    const std::string ckpt_base = TempPath("ckpt_series");

    // Reference: an uninterrupted capture, sealed normally.
    {
        Machine machine(mconfig);
        auto sink = trace::FileSink::Open(full_path);
        ASSERT_TRUE(sink.ok());
        AtumTracer tracer(machine, **sink, tconfig);
        kernel::BootSystem(machine, workloads::StandardMix(1));
        const auto result =
            core::RunTraced(machine, tracer, 100'000'000);
        ASSERT_TRUE(result.halted);
        ASSERT_TRUE((*sink)->Close().ok());
    }

    // Leg 1: same capture, supervised, checkpointing every fill; stopped
    // mid-run by the instruction budget.
    uint64_t resume_seq = 0;
    {
        Machine machine(mconfig);
        auto sink = trace::FileSink::Open(torn_path);
        ASSERT_TRUE(sink.ok());
        AtumTracer tracer(machine, **sink, tconfig);
        kernel::BootSystem(machine, workloads::StandardMix(1));

        CheckpointRotator rotator(ckpt_base, 3);
        SupervisorOptions sup;
        sup.max_instructions = 150'000;
        sup.checkpoints = &rotator;
        sup.checkpoint_every_fills = 1;
        sup.file_sink = sink->get();
        sup.meta.machine_config = mconfig;
        sup.meta.tracer_config = tconfig;
        sup.meta.trace_path = torn_path;
        const auto result = core::RunSupervised(machine, tracer, sup);
        EXPECT_EQ(result.stop_cause, StopCause::kInstrLimit);
        ASSERT_TRUE(result.checkpoint_status.ok())
            << result.checkpoint_status.ToString();
        ASSERT_GE(rotator.written(), 2u);
        // Resume from the checkpoint *before* the final one: everything
        // the file gained after it (later chunks, drain, seal footer)
        // plays the role of post-crash garbage that resume must discard.
        resume_seq = rotator.next_sequence() - 2;
        ASSERT_TRUE((*sink)->Close().ok());  // seal = extra bytes on disk
    }

    // Leg 2: resume from that checkpoint and run to natural completion.
    {
        CheckpointRotator paths(ckpt_base, 3);
        util::StatusOr<Checkpoint> ckpt =
            Checkpoint::Load(paths.PathFor(resume_seq));
        ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
        ASSERT_TRUE(ckpt->meta().has_sink_state);

        auto sink = trace::FileSink::OpenResumed(torn_path,
                                                 ckpt->sink_state());
        ASSERT_TRUE(sink.ok()) << sink.status().ToString();

        Machine machine(ckpt->meta().machine_config);
        AtumTracer tracer(machine, **sink, ckpt->meta().tracer_config);
        ASSERT_TRUE(ckpt->RestoreMachine(machine).ok());
        ASSERT_TRUE(ckpt->RestoreTracer(tracer).ok());

        SupervisorOptions sup;
        sup.max_instructions = 100'000'000;
        const auto result = core::RunSupervised(machine, tracer, sup);
        EXPECT_EQ(result.stop_cause, StopCause::kHalted);
        ASSERT_TRUE(result.drain_status.ok())
            << result.drain_status.ToString();
        ASSERT_TRUE((*sink)->Close().ok());
    }

    const std::vector<uint8_t> full = ReadAllBytes(full_path);
    const std::vector<uint8_t> resumed = ReadAllBytes(torn_path);
    ASSERT_FALSE(full.empty());
    ASSERT_EQ(full.size(), resumed.size());
    EXPECT_TRUE(full == resumed)
        << "resumed capture diverged from the uninterrupted one";

    std::remove(full_path.c_str());
    std::remove(torn_path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption matrix: no damaged checkpoint may restore, and none may
// crash the loader.

class CheckpointCorruption : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Machine machine(MixConfig());
        trace::VectorSink sink;
        AtumTracer tracer(machine, sink, SmallBufferConfig());
        kernel::BootSystem(machine, workloads::StandardMix(1));
        tracer.Attach();
        machine.Run(20'000);

        CheckpointMeta meta;
        meta.machine_config = MixConfig();
        meta.tracer_config = SmallBufferConfig();
        trace::Atf2ResumeState sink_state;
        sink_state.file_bytes = 32;
        MemoryByteSink out;
        ASSERT_TRUE(core::WriteCheckpoint(out, meta, machine, tracer,
                                          &sink_state)
                        .ok());
        bytes_ = out.bytes();
    }

    util::Status ReadStatus(const std::vector<uint8_t>& bytes)
    {
        MemoryByteSource source(bytes);
        util::StatusOr<Checkpoint> ckpt = Checkpoint::Read(source);
        return ckpt.ok() ? util::OkStatus() : ckpt.status();
    }

    std::vector<uint8_t> bytes_;
};

TEST_F(CheckpointCorruption, IntactCheckpointLoads)
{
    EXPECT_TRUE(ReadStatus(bytes_).ok());
}

TEST_F(CheckpointCorruption, EveryTruncationIsRejected)
{
    // Cut at frame boundaries and at awkward mid-frame offsets.
    const size_t cuts[] = {0,  8,  31,  32,  40,  55,  56,
                           bytes_.size() / 2, bytes_.size() - 25,
                           bytes_.size() - 1};
    for (const size_t cut : cuts) {
        if (cut >= bytes_.size())
            continue;
        std::vector<uint8_t> torn(bytes_.begin(), bytes_.begin() + cut);
        EXPECT_FALSE(ReadStatus(torn).ok()) << "cut at " << cut;
    }
}

TEST_F(CheckpointCorruption, EveryBitFlipIsRejected)
{
    // A spread of offsets: header, section headers, payloads, footer.
    const size_t stride = bytes_.size() / 37 + 1;
    unsigned tested = 0;
    for (size_t off = 0; off < bytes_.size(); off += stride, ++tested) {
        std::vector<uint8_t> bad = bytes_;
        bad[off] ^= 0x40;
        EXPECT_FALSE(ReadStatus(bad).ok()) << "flip at " << off;
    }
    EXPECT_GE(tested, 30u);
}

TEST_F(CheckpointCorruption, GeometryMismatchIsRejected)
{
    MemoryByteSource source(bytes_);
    util::StatusOr<Checkpoint> ckpt = Checkpoint::Read(source);
    ASSERT_TRUE(ckpt.ok());

    // A machine with the wrong memory size must refuse the image.
    Machine::Config small = MixConfig();
    small.mem_bytes = 1u << 20;
    Machine wrong(small);
    EXPECT_FALSE(ckpt->RestoreMachine(wrong).ok());

    // A tracer with a different buffer must refuse the cursor.
    Machine right(ckpt->meta().machine_config);
    trace::VectorSink sink;
    AtumConfig tiny = SmallBufferConfig();
    tiny.buffer_bytes = 8u << 10;
    AtumTracer wrong_tracer(right, sink, tiny);
    EXPECT_FALSE(ckpt->RestoreTracer(wrong_tracer).ok());
}

// ---------------------------------------------------------------------------
// Supervisor stop paths.

/** Boots a guest that faults into its own fault handler forever. */
void
BootWedge(Machine& machine)
{
    constexpr uint32_t kBadPc = 0x200;
    machine.WriteIpr(isa::Ipr::kScbb, 0x0);
    machine.WriteIpr(isa::Ipr::kKsp, 0x8000);
    for (uint32_t v = 0;
         v < static_cast<uint32_t>(cpu::ExcVector::kNumVectors); ++v)
        machine.memory().Write32(4 * v, kBadPc);
    machine.memory().Write8(kBadPc, 0xFF);
    machine.set_pc(kBadPc);
}

TEST(Supervisor, WatchdogCatchesWedgedGuest)
{
    Machine machine(MixConfig());
    trace::VectorSink sink;
    AtumTracer tracer(machine, sink, SmallBufferConfig());
    BootWedge(machine);

    SupervisorOptions sup;
    sup.max_instructions = 10'000'000;
    sup.watchdog_ucycles = 100'000;
    const auto result = core::RunSupervised(machine, tracer, sup);
    EXPECT_EQ(result.stop_cause, StopCause::kWatchdog);
    EXPECT_FALSE(result.halted);
    // The wedge burned far fewer instructions than the budget: the
    // watchdog, not the limit, stopped the run.
    EXPECT_LT(result.instructions, sup.max_instructions);
}

TEST(Supervisor, WatchdogToleratesBusyHealthyGuest)
{
    Machine machine(MixConfig());
    trace::VectorSink sink;
    AtumTracer tracer(machine, sink, SmallBufferConfig());
    kernel::BootSystem(machine, workloads::StandardMix(1));

    SupervisorOptions sup;
    sup.max_instructions = 300'000;
    // Tight budget: the mix faults constantly (TB misses, page faults,
    // timer interrupts) yet always retires cleanly in between.
    sup.watchdog_ucycles = 100'000;
    const auto result = core::RunSupervised(machine, tracer, sup);
    EXPECT_EQ(result.stop_cause, StopCause::kInstrLimit);
}

TEST(Supervisor, StopFlagStopsAtSliceBoundaryAndCheckpoints)
{
    Machine machine(MixConfig());
    trace::VectorSink sink;
    AtumTracer tracer(machine, sink, SmallBufferConfig());
    kernel::BootSystem(machine, workloads::StandardMix(1));

    const std::string base = TempPath("ckpt_sigstop");
    CheckpointRotator rotator(base, 2);
    volatile std::sig_atomic_t flag = SIGINT;

    SupervisorOptions sup;
    sup.max_instructions = 100'000'000;
    sup.stop_flag = &flag;
    sup.checkpoints = &rotator;
    sup.meta.machine_config = MixConfig();
    sup.meta.tracer_config = SmallBufferConfig();
    const auto result = core::RunSupervised(machine, tracer, sup);
    EXPECT_EQ(result.stop_cause, StopCause::kSignal);
    // Stopped after one slice, not the whole budget.
    EXPECT_LE(result.instructions, sup.slice_instructions);
    // The graceful stop sealed a final checkpoint.
    EXPECT_GE(result.checkpoints_written, 1u);
    EXPECT_FALSE(result.last_checkpoint.empty());
    EXPECT_TRUE(Checkpoint::Load(result.last_checkpoint).ok());
    for (uint64_t s = 1; s < rotator.next_sequence(); ++s)
        std::remove(rotator.PathFor(s).c_str());
    EXPECT_TRUE(result.drain_status.ok());
}

TEST(Supervisor, DeadlineStopsLongCapture)
{
    Machine machine(MixConfig());
    trace::VectorSink sink;
    AtumTracer tracer(machine, sink, SmallBufferConfig());
    kernel::BootSystem(machine, workloads::StandardMix(1));

    SupervisorOptions sup;
    sup.max_instructions = UINT64_MAX;  // only the deadline can stop it
    sup.deadline_ms = 1;
    const auto result = core::RunSupervised(machine, tracer, sup);
    // Either the deadline fired, or the workload halted first on a very
    // fast host — both are clean stops; an instruction-limit stop with
    // UINT64_MAX budget would mean the deadline was ignored.
    EXPECT_TRUE(result.stop_cause == StopCause::kDeadline ||
                result.stop_cause == StopCause::kHalted);
}

// ---------------------------------------------------------------------------
// Rotation and drain-status reporting.

TEST(CheckpointRotatorTest, KeepsOnlyTheRetentionWindow)
{
    Machine machine(MixConfig());
    trace::VectorSink sink;
    AtumTracer tracer(machine, sink, SmallBufferConfig());

    const std::string base = TempPath("ckpt_rotate");
    CheckpointRotator rotator(base, 2);
    CheckpointMeta meta;
    meta.machine_config = MixConfig();
    meta.tracer_config = SmallBufferConfig();
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(rotator.Write(meta, machine, tracer, nullptr).ok());

    EXPECT_EQ(rotator.written(), 5u);
    EXPECT_EQ(rotator.last_path(), rotator.PathFor(5));
    // Sequences 4 and 5 survive; 1-3 were pruned.
    EXPECT_FALSE(Checkpoint::Load(rotator.PathFor(1)).ok());
    EXPECT_FALSE(Checkpoint::Load(rotator.PathFor(2)).ok());
    EXPECT_FALSE(Checkpoint::Load(rotator.PathFor(3)).ok());
    EXPECT_TRUE(Checkpoint::Load(rotator.PathFor(4)).ok());
    EXPECT_TRUE(Checkpoint::Load(rotator.PathFor(5)).ok());
    std::remove(rotator.PathFor(4).c_str());
    std::remove(rotator.PathFor(5).c_str());
}

/** A sink that refuses everything — the permanently broken disk. */
class RefusingSink : public trace::TraceSink
{
  public:
    util::Status Append(const trace::Record&) override
    {
        return util::Unavailable("disk on fire");
    }
};

TEST(FlushStatus, EndOfRunLossIsReported)
{
    Machine machine(MixConfig());
    RefusingSink sink;
    AtumTracer tracer(machine, sink, SmallBufferConfig());
    kernel::BootSystem(machine, workloads::StandardMix(1));
    const auto result = core::RunTraced(machine, tracer, 300'000);
    EXPECT_TRUE(result.degraded);
    EXPECT_FALSE(result.drain_status.ok());
    EXPECT_GT(result.lost_records, 0u);
}

}  // namespace
}  // namespace atum
