// Property-style tests: parameterized sweeps asserting invariants across
// addressing modes, opcodes, cache geometries, TLB sizes, and the record
// codec under randomized inputs.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "assembler/assembler.h"
#include "cache/cache.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "isa/decoder.h"
#include "isa/disassembler.h"
#include "tlbsim/tlb_sim.h"
#include "trace/record.h"
#include "util/rng.h"

namespace atum {
namespace {

using assembler::Assembler;
using assembler::Program;
using isa::AddrMode;
using isa::Opcode;

// ---------------------------------------------------------------------
// Every writable addressing mode stores a value to the right place.
// ---------------------------------------------------------------------

class AddressingModeProperty : public ::testing::TestWithParam<AddrMode>
{
};

TEST_P(AddressingModeProperty, StoreThenLoadRoundTrips)
{
    const AddrMode mode = GetParam();
    cpu::Machine::Config config;
    config.mem_bytes = 256 * kPageBytes;
    cpu::Machine m(config);
    m.set_reg(isa::kRegSp, 0x8000);

    constexpr uint32_t kAddr = 0x9000;
    constexpr uint32_t kValue = 0x13572468;
    Assembler a(0x1000);
    a.Emit(Opcode::kMovl, {assembler::Imm(kAddr), assembler::R(2)});
    assembler::AsmOperand dst;
    switch (mode) {
      case AddrMode::kReg:
        dst = assembler::R(3);
        break;
      case AddrMode::kRegDef:
        dst = assembler::Def(2);
        break;
      case AddrMode::kAutoInc:
        dst = assembler::Inc(2);
        break;
      case AddrMode::kAutoDec:
        dst = assembler::Dec(2);
        break;
      case AddrMode::kDisp8:
        dst = assembler::Disp(8, 2);
        break;
      case AddrMode::kDisp32:
        dst = assembler::Disp(1000, 2);  // >127 forces the d32 form
        break;
      case AddrMode::kDisp32Def:
        // mem[kAddr] holds a pointer to kAddr + 0x40.
        a.Emit(Opcode::kMovl,
               {assembler::Imm(kAddr + 0x40), assembler::Abs(kAddr)});
        dst = assembler::DispDef(0, 2);
        break;
      case AddrMode::kAbs:
        dst = assembler::Abs(kAddr);
        break;
      case AddrMode::kImm:
        GTEST_SKIP() << "immediates are not writable";
    }
    a.Emit(Opcode::kMovl, {assembler::Imm(kValue), dst});
    a.Emit(Opcode::kHalt);
    Program p = a.Finish();
    m.memory().WriteBlock(p.origin, p.bytes.data(), p.size());
    m.set_pc(p.origin);
    ASSERT_EQ(m.Run(100).reason, cpu::Machine::StopReason::kHalted);

    uint32_t where;
    switch (mode) {
      case AddrMode::kReg:
        EXPECT_EQ(m.reg(3), kValue);
        return;
      case AddrMode::kRegDef:
      case AddrMode::kAutoInc:
      case AddrMode::kAbs:
        where = kAddr;
        break;
      case AddrMode::kAutoDec:
        where = kAddr - 4;
        break;
      case AddrMode::kDisp8:
        where = kAddr + 8;
        break;
      case AddrMode::kDisp32:
        where = kAddr + 1000;
        break;
      case AddrMode::kDisp32Def:
        where = kAddr + 0x40;
        break;
      default:
        FAIL();
    }
    EXPECT_EQ(m.memory().Read32(where), kValue);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, AddressingModeProperty,
    ::testing::Values(AddrMode::kReg, AddrMode::kRegDef, AddrMode::kAutoInc,
                      AddrMode::kAutoDec, AddrMode::kDisp8, AddrMode::kDisp32,
                      AddrMode::kDisp32Def, AddrMode::kAbs, AddrMode::kImm));

// ---------------------------------------------------------------------
// Every assigned opcode survives an assemble -> decode -> format cycle.
// ---------------------------------------------------------------------

class OpcodeRoundTrip : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(OpcodeRoundTrip, AssembleDecodeFormat)
{
    const Opcode op = GetParam();
    const isa::InstrInfo& info = isa::GetInstrInfo(op);
    ASSERT_TRUE(info.valid);

    Assembler a(0x100);
    std::vector<assembler::AsmOperand> operands;
    bool needs_branch = false;
    unsigned reg = 1;
    for (const auto& desc : info.operands) {
        switch (desc.access) {
          case isa::Access::kBranch8:
          case isa::Access::kBranch16:
            needs_branch = true;
            break;
          case isa::Access::kAddress:
            operands.push_back(assembler::Def(reg++));
            break;
          default:
            operands.push_back(assembler::R(reg++));
            break;
        }
    }
    if (needs_branch) {
        auto label = a.Here("target");
        a.Emit(op, operands, label);
    } else {
        a.Emit(op, operands);
    }
    Program p = a.Finish();

    auto decoded = isa::DecodeBuffer(p.bytes, 0);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->opcode, op);
    EXPECT_EQ(decoded->length, p.size());
    const std::string text = isa::FormatInst(*decoded, 0x100);
    EXPECT_EQ(text.substr(0, std::string(info.mnemonic).size()),
              info.mnemonic);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::ValuesIn(isa::AllOpcodes()),
                         [](const auto& info) {
                             return isa::MnemonicOf(info.param);
                         });

// ---------------------------------------------------------------------
// Cache invariants over a grid of geometries.
// ---------------------------------------------------------------------

class CacheGeometryProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>>
{
};

TEST_P(CacheGeometryProperty, InvariantsHoldOnRandomStream)
{
    const auto [size, block, assoc] = GetParam();
    cache::Cache c({.size_bytes = size, .block_bytes = block,
                    .assoc = assoc});
    Rng rng(size * 31 + block * 7 + assoc);
    uint64_t immediate_rehits = 0;
    for (int i = 0; i < 20000; ++i) {
        const uint32_t addr = rng.Below(1u << 18);
        c.Access(addr, rng.Below(4) == 0);
        // An immediate re-access of the same address is always a hit.
        if (rng.Below(8) == 0) {
            EXPECT_TRUE(c.Access(addr, false));
            ++immediate_rehits;
        }
    }
    const auto& s = c.stats();
    EXPECT_EQ(s.accesses, 20000u + immediate_rehits);
    EXPECT_LE(s.misses, s.accesses);
    EXPECT_EQ(s.reads + s.writes, s.accesses);
    EXPECT_LE(s.read_misses, s.reads);
    EXPECT_LE(s.write_misses, s.writes);
    EXPECT_GE(s.MissRate(), 0.0);
    EXPECT_LE(s.MissRate(), 1.0);
    // A write-back cache cannot write back more blocks than it missed on
    // plus flushed (each writeback needs a prior allocating fill).
    EXPECT_LE(s.writebacks, s.misses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryProperty,
    ::testing::Combine(::testing::Values(1024u, 8192u, 65536u),
                       ::testing::Values(8u, 16u, 64u),
                       ::testing::Values(1u, 2u, 4u)));

// ---------------------------------------------------------------------
// Larger caches never lose on an LRU-friendly looping reference stream.
// ---------------------------------------------------------------------

class CacheSizeMonotone : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CacheSizeMonotone, FullyAssociativeLruIsInclusive)
{
    // For fully-associative LRU, miss counts are monotone non-increasing
    // in capacity on ANY trace (stack property) — check on a random one.
    const uint32_t size = GetParam();
    cache::Cache small({.size_bytes = size, .block_bytes = 16, .assoc = 0});
    cache::Cache big(
        {.size_bytes = size * 2, .block_bytes = 16, .assoc = 0});
    Rng rng(99);
    for (int i = 0; i < 30000; ++i) {
        const uint32_t addr = rng.Below(1u << 16);
        small.Access(addr, false);
        big.Access(addr, false);
    }
    EXPECT_LE(big.stats().misses, small.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeMonotone,
                         ::testing::Values(512u, 1024u, 4096u, 16384u));

// ---------------------------------------------------------------------
// TLB miss rate is monotone in size for a fully-associative LRU TLB.
// ---------------------------------------------------------------------

class TlbSizeProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(TlbSizeProperty, BiggerTlbNeverMissesMore)
{
    const uint32_t entries = GetParam();
    tlbsim::TlbSim small({.entries = entries});
    tlbsim::TlbSim big({.entries = entries * 2});
    Rng rng(1234);
    for (int i = 0; i < 20000; ++i) {
        trace::Record r;
        r.addr = rng.Below(256) * kPageBytes;
        r.type = trace::RecordType::kRead;
        r.flags = trace::MakeFlags(false, 4);
        small.Feed(r);
        big.Feed(r);
    }
    EXPECT_LE(big.stats().misses, small.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbSizeProperty,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

// ---------------------------------------------------------------------
// Record codec: random records survive pack/unpack.
// ---------------------------------------------------------------------

TEST(RecordCodecProperty, RandomRoundTrips)
{
    Rng rng(777);
    for (int i = 0; i < 10000; ++i) {
        trace::Record r;
        r.addr = rng.Next32();
        r.type = static_cast<trace::RecordType>(rng.Below(
            static_cast<uint32_t>(trace::RecordType::kNumTypes)));
        r.flags = trace::MakeFlags(rng.Below(2) != 0,
                                   1u << rng.Below(3));
        r.info = static_cast<uint16_t>(rng.Next32());
        uint8_t buf[trace::kRecordBytes];
        trace::PackRecord(r, buf);
        ASSERT_EQ(trace::UnpackRecord(buf), r);
    }
}


// ---------------------------------------------------------------------
// Decoder robustness: random bytes either decode or are rejected; the
// decoder never crashes or reads out of bounds.
// ---------------------------------------------------------------------

TEST(DecoderFuzz, RandomBytesNeverCrash)
{
    Rng rng(31337);
    for (int trial = 0; trial < 5000; ++trial) {
        std::vector<uint8_t> bytes(1 + rng.Below(16));
        for (auto& b : bytes)
            b = static_cast<uint8_t>(rng.Next32());
        auto decoded = isa::DecodeBuffer(bytes, 0);
        if (decoded) {
            EXPECT_LE(decoded->length, bytes.size());
            // Formatting a valid decode must also not crash.
            (void)isa::FormatInst(*decoded, 0x1000);
        }
    }
}

// ---------------------------------------------------------------------
// Fault-isolation fuzz: a user process made of random bytes must never
// take down the machine — the kernel kills it (or it exits/loops) and
// any co-scheduled well-behaved process still completes.
// ---------------------------------------------------------------------

class ExecutorFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ExecutorFuzz, RandomProgramCannotCrashTheSystem)
{
    Rng rng(GetParam());
    Assembler garbage(0);
    for (int i = 0; i < 256; ++i)
        garbage.Byte(static_cast<uint8_t>(rng.Next32()));
    kernel::GuestProgram bad;
    bad.name = "garbage";
    bad.program = garbage.Finish();
    bad.heap_pages = 2;
    bad.stack_pages = 2;

    Assembler good(0);
    good.Emit(Opcode::kMovl, {assembler::Imm('k'), assembler::R(1)});
    good.Emit(Opcode::kChmk,
              {assembler::Imm(
                  static_cast<uint32_t>(kernel::Syscall::kPutc))});
    good.Emit(Opcode::kChmk,
              {assembler::Imm(
                  static_cast<uint32_t>(kernel::Syscall::kExit))});
    kernel::GuestProgram ok;
    ok.name = "good";
    ok.program = good.Finish();
    ok.heap_pages = 2;
    ok.stack_pages = 2;

    cpu::Machine::Config config;
    config.mem_bytes = 1u << 20;
    config.timer_reload = 1000;
    cpu::Machine machine(config);
    kernel::BootSystem(machine, {bad, ok});
    // The garbage process may be killed or loop forever; bounded run.
    machine.Run(3'000'000);
    // The well-behaved process must have completed either way.
    EXPECT_NE(machine.console_output().find('k'), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace atum
