// End-to-end tests: capture a full-system ATUM trace of a multiprogrammed
// workload and check that the paper's qualitative findings reproduce —
// the OS accounts for a substantial share of references, user-only traces
// understate miss rates, PID tags beat flush-on-switch, and tracing costs
// roughly an order of magnitude in time.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "analysis/compare.h"
#include "cache/hierarchy.h"
#include "analysis/mix.h"
#include "analysis/working_set.h"
#include "core/atum_tracer.h"
#include "core/session.h"
#include "core/user_tracer.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "tlbsim/tlb_sim.h"
#include "trace/sink.h"
#include "trace/stats.h"
#include "workloads/workloads.h"

namespace atum {
namespace {

using cache::CacheConfig;
using cache::DriverOptions;
using core::AtumConfig;
using core::AtumTracer;
using core::RunTraced;
using cpu::Machine;
using trace::Record;

std::unique_ptr<Machine>
MixMachine()
{
    Machine::Config config;
    config.mem_bytes = 2u << 20;
    config.timer_reload = 2000;
    return std::make_unique<Machine>(config);
}

/** Captures a full-system trace of the standard mix once per process. */
const std::vector<Record>&
MixTrace()
{
    static const std::vector<Record>& records = [] {
        auto machine = MixMachine();
        auto* sink = new trace::VectorSink();
        AtumConfig config;
        config.buffer_bytes = 128u << 10;
        AtumTracer tracer(*machine, *sink, config);
        kernel::BootSystem(*machine, workloads::StandardMix(1));
        const auto result = RunTraced(*machine, tracer, 100'000'000);
        EXPECT_TRUE(result.halted);
        return *new std::vector<Record>(sink->TakeRecords());
    }();
    return records;
}

TEST(Integration, OsContributesSubstantialReferences)
{
    trace::TraceStats stats;
    for (const Record& r : MixTrace())
        stats.Accumulate(r);
    // The paper's headline observation: the OS is a big minority of all
    // references (scheduling, syscalls, paging, frame zeroing).
    EXPECT_GT(stats.KernelFraction(), 0.02);
    EXPECT_LT(stats.KernelFraction(), 0.70);
    EXPECT_GT(stats.context_switches(), 10u);
    // Data-write fraction is sane (roughly a third of data refs).
    EXPECT_GT(stats.WriteFraction(), 0.10);
    EXPECT_LT(stats.WriteFraction(), 0.70);
}

TEST(Integration, UserOnlyTraceUnderstatesMissRate)
{
    CacheConfig config{.size_bytes = 16u << 10, .block_bytes = 16,
                       .assoc = 1};
    DriverOptions full;
    full.flush_on_switch = true;
    DriverOptions user_only;
    user_only.include_kernel = false;
    user_only.only_pid = 1;
    user_only.flush_on_switch = false;

    const auto full_stats =
        analysis::SimulateCache(MixTrace(), config, full);
    const auto user_stats =
        analysis::SimulateCache(MixTrace(), config, user_only);
    ASSERT_GT(full_stats.accesses, user_stats.accesses);
    EXPECT_GT(full_stats.MissRate(), user_stats.MissRate());
}

TEST(Integration, PidTagsBeatFlushOnSwitch)
{
    CacheConfig flush_config{.size_bytes = 32u << 10, .block_bytes = 16,
                             .assoc = 2};
    CacheConfig pid_config = flush_config;
    pid_config.pid_tags = true;

    DriverOptions flush_opts;
    flush_opts.flush_on_switch = true;
    DriverOptions pid_opts;  // no flush; pid tags disambiguate

    const auto flushed =
        analysis::SimulateCache(MixTrace(), flush_config, flush_opts);
    const auto tagged =
        analysis::SimulateCache(MixTrace(), pid_config, pid_opts);
    EXPECT_GT(flushed.MissRate(), tagged.MissRate());
}

TEST(Integration, MissRateFallsWithCacheSize)
{
    CacheConfig base{.block_bytes = 16, .assoc = 1};
    DriverOptions opts;
    opts.flush_on_switch = true;
    const auto points = analysis::SweepCacheSize(
        MixTrace(), {2048, 8192, 32768, 131072}, base, opts);
    for (size_t i = 1; i < points.size(); ++i)
        EXPECT_LE(points[i].miss_rate, points[i - 1].miss_rate + 1e-9);
    EXPECT_GT(points.front().miss_rate, points.back().miss_rate);
}

TEST(Integration, SystemReferencesEnlargeWorkingSet)
{
    analysis::WorkingSetAnalyzer full({10000});
    analysis::WorkingSetAnalyzer user({10000});
    for (const Record& r : MixTrace()) {
        full.Feed(r);
        if (r.IsMemory() && !r.kernel())
            user.Feed(r);
    }
    EXPECT_GT(full.AverageWorkingSet(0), user.AverageWorkingSet(0));
}

TEST(Integration, KernelAndUserFootprintsAreDisjointRegions)
{
    analysis::FootprintAnalyzer fp;
    for (const Record& r : MixTrace())
        fp.Feed(r);
    EXPECT_GT(fp.kernel_pages(), 0u);
    EXPECT_GT(fp.user_pages(), 0u);
    // Kernel page numbers can coincide numerically with user ones (PCB
    // references are physical), so the split can overlap slightly.
    EXPECT_LE(fp.total_pages(), fp.kernel_pages() + fp.user_pages());
    EXPECT_GE(fp.total_pages(),
              std::max(fp.kernel_pages(), fp.user_pages()));
    EXPECT_EQ(fp.per_pid().size(), 3u);  // three processes
}

TEST(Integration, TlbMissesRiseWithOsAndSwitches)
{
    tlbsim::TlbSimConfig with_os{.entries = 64};
    tlbsim::TlbSimConfig without_os{.entries = 64};
    without_os.include_kernel = false;
    without_os.flush_on_switch = false;

    tlbsim::TlbSim a(with_os), b(without_os);
    for (const Record& r : MixTrace()) {
        a.Feed(r);
        b.Feed(r);
    }
    EXPECT_GT(a.stats().MissRate(), b.stats().MissRate());
}

TEST(Integration, TraceFileRoundTripPreservesAnalysis)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/mix_trace.atum";
    trace::WriteTraceFile(path, MixTrace());
    const std::vector<Record> back = trace::ReadTraceFile(path);
    ASSERT_EQ(back.size(), MixTrace().size());

    CacheConfig config{.size_bytes = 8192, .block_bytes = 16, .assoc = 1};
    const auto direct = analysis::SimulateCache(MixTrace(), config, {});
    const auto reloaded = analysis::SimulateCache(back, config, {});
    EXPECT_EQ(direct.misses, reloaded.misses);
    EXPECT_EQ(direct.accesses, reloaded.accesses);
    std::remove(path.c_str());
}

TEST(Integration, SlowdownIsOrderTenToTwenty)
{
    // With the default patch cost the dilation lands in the regime the
    // paper reports for the 8200 (~10-20x); assert a generous envelope.
    auto traced = MixMachine();
    trace::CountingSink sink;
    AtumTracer tracer(*traced, sink);
    kernel::BootSystem(*traced, {workloads::MakeHash(800)});
    const auto with = RunTraced(*traced, tracer, 100'000'000);

    auto plain = MixMachine();
    kernel::BootSystem(*plain, {workloads::MakeHash(800)});
    const auto without = core::RunUntraced(*plain, 100'000'000);

    ASSERT_TRUE(with.halted);
    ASSERT_TRUE(without.halted);
    const double slowdown = static_cast<double>(with.ucycles) /
                            static_cast<double>(without.ucycles);
    EXPECT_GT(slowdown, 2.0);
    EXPECT_LT(slowdown, 100.0);
}

TEST(Integration, CapturedTraceIsDeterministic)
{
    auto capture = [] {
        auto machine = MixMachine();
        trace::VectorSink sink;
        AtumTracer tracer(*machine, sink);
        kernel::BootSystem(*machine, {workloads::MakeListProc(100, 3)});
        RunTraced(*machine, tracer, 100'000'000);
        return sink.TakeRecords();
    };
    const auto a = capture();
    const auto b = capture();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a, b);
}


TEST(Integration, HierarchyConsistentWithSingleLevelOnRealTrace)
{
    // An L2 behind L1s can only reduce memory traffic relative to the
    // L1s alone, never increase it.
    cache::HierarchyConfig config;
    cache::CacheHierarchy h(config);
    for (const Record& r : MixTrace())
        h.Feed(r);
    EXPECT_LE(h.memory_accesses(), h.l1i().stats().misses +
                                       h.l1d().stats().misses +
                                       h.l1d().stats().writebacks);
    EXPECT_GT(h.accesses(), 0u);
    EXPECT_GT(h.Amat(), 1.0);
    EXPECT_LT(h.Amat(), 10.0);
}

}  // namespace
}  // namespace atum
