// Unit tests for the assembler: encoding, label fixups, directives, and a
// decode round-trip over every addressing mode.

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "isa/decoder.h"
#include "isa/disassembler.h"

namespace atum::assembler {
namespace {

using isa::AddrMode;
using isa::Opcode;

TEST(Assembler, SimpleEncode)
{
    Assembler a(0);
    a.Emit(Opcode::kMovl, {R(1), R(2)});
    Program p = a.Finish();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.bytes[0], static_cast<uint8_t>(Opcode::kMovl));
    EXPECT_EQ(p.bytes[1], 0x01);
    EXPECT_EQ(p.bytes[2], 0x02);
}

TEST(Assembler, ImmediateSizes)
{
    Assembler a(0);
    a.Emit(Opcode::kMovl, {Imm(0x11223344), R(0)});  // long imm: 4 bytes
    a.Emit(Opcode::kMovb, {Imm(0x7f), R(1)});        // byte imm: 1 byte
    Program p = a.Finish();
    EXPECT_EQ(p.size(), 7u + 4u);
    EXPECT_EQ(p.bytes[2], 0x44);
    EXPECT_EQ(p.bytes[5], 0x11);
}

TEST(Assembler, DispPicksByteForm)
{
    Assembler a(0);
    a.Emit(Opcode::kTstl, {Disp(100, 2)});   // fits in d8
    a.Emit(Opcode::kTstl, {Disp(1000, 2)});  // needs d32
    Program p = a.Finish();
    auto first = isa::DecodeBuffer(p.bytes, 0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->operands[0].mode, AddrMode::kDisp8);
    auto second = isa::DecodeBuffer(p.bytes, first->length);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->operands[0].mode, AddrMode::kDisp32);
    EXPECT_EQ(second->operands[0].disp, 1000);
}

TEST(Assembler, BackwardBranch)
{
    Assembler a(0x100);
    Label loop = a.Here("loop");
    a.Emit(Opcode::kNop);
    a.Emit(Opcode::kBrb, {}, loop);
    Program p = a.Finish();
    // brb at 0x101, displacement byte at 0x102, end at 0x103;
    // target 0x100 => disp = 0x100 - 0x103 = -3.
    EXPECT_EQ(static_cast<int8_t>(p.bytes[2]), -3);
}

TEST(Assembler, ForwardBranch)
{
    Assembler a(0);
    Label fwd = a.NewLabel("fwd");
    a.Emit(Opcode::kBeql, {}, fwd);
    a.Emit(Opcode::kNop);
    a.Bind(fwd);
    Program p = a.Finish();
    EXPECT_EQ(static_cast<int8_t>(p.bytes[1]), 1);  // skip the NOP
}

TEST(Assembler, Branch16)
{
    Assembler a(0);
    Label fwd = a.NewLabel("fwd");
    a.Emit(Opcode::kBrw, {}, fwd);
    a.Space(300);
    a.Bind(fwd);
    Program p = a.Finish();
    const int16_t disp =
        static_cast<int16_t>(p.bytes[1] | (p.bytes[2] << 8));
    EXPECT_EQ(disp, 300);
}

TEST(Assembler, PcRelativeRef)
{
    Assembler a(0x1000);
    Label data = a.NewLabel("data");
    a.Emit(Opcode::kMovl, {Ref(data), R(0)});
    a.Bind(data);
    a.Long(0xdeadbeef);
    Program p = a.Finish();
    // movl d32(pc), r0: opcode, spec(0x5f), d32, spec(0x00) = 7 bytes.
    // PC at the time of use = address after the d32 field = 0x1006.
    // data = 0x1007, so disp = 1.
    auto inst = isa::DecodeBuffer(p.bytes, 0);
    ASSERT_TRUE(inst.has_value());
    EXPECT_EQ(inst->operands[0].mode, AddrMode::kDisp32);
    EXPECT_EQ(inst->operands[0].reg, isa::kRegPc);
    EXPECT_EQ(inst->operands[0].disp, 1);
}

TEST(Assembler, AbsRefAndLongRef)
{
    Assembler a(0x2000);
    Label target = a.NewLabel("target");
    a.Emit(Opcode::kJmp, {AbsRef(target)});
    a.LongRef(target);
    a.Bind(target);
    Program p = a.Finish();
    const uint32_t target_addr = p.SymbolAddr("target");
    // jmp @#target: opcode + spec + 4 bytes; LongRef 4 bytes.
    uint32_t encoded = 0;
    for (int i = 0; i < 4; ++i)
        encoded |= static_cast<uint32_t>(p.bytes[2 + i]) << (8 * i);
    EXPECT_EQ(encoded, target_addr);
    uint32_t data = 0;
    for (int i = 0; i < 4; ++i)
        data |= static_cast<uint32_t>(p.bytes[6 + i]) << (8 * i);
    EXPECT_EQ(data, target_addr);
}

TEST(Assembler, DirectivesAndSymbols)
{
    Assembler a(0);
    a.Byte(1);
    a.Align(4);
    Label here = a.Here("aligned");
    a.Long(7);
    a.Space(3);
    Program p = a.Finish();
    EXPECT_EQ(p.SymbolAddr("aligned"), 4u);
    EXPECT_EQ(p.size(), 11u);
    (void)here;
}

TEST(Assembler, RoundTripAllModes)
{
    Assembler a(0);
    a.Emit(Opcode::kMovl, {R(1), R(2)});
    a.Emit(Opcode::kMovl, {Def(3), R(2)});
    a.Emit(Opcode::kMovl, {Inc(4), R(2)});
    a.Emit(Opcode::kMovl, {Dec(5), R(2)});
    a.Emit(Opcode::kMovl, {Disp(-8, 6), R(2)});
    a.Emit(Opcode::kMovl, {Disp(100000, 7), R(2)});
    a.Emit(Opcode::kMovl, {DispDef(12, 8), R(2)});
    a.Emit(Opcode::kMovl, {Imm(42), R(2)});
    a.Emit(Opcode::kMovl, {Abs(0x8000), R(2)});
    Program p = a.Finish();

    uint32_t off = 0;
    const AddrMode expect[] = {
        AddrMode::kReg,    AddrMode::kRegDef,    AddrMode::kAutoInc,
        AddrMode::kAutoDec, AddrMode::kDisp8,    AddrMode::kDisp32,
        AddrMode::kDisp32Def, AddrMode::kImm,    AddrMode::kAbs,
    };
    for (AddrMode m : expect) {
        auto inst = isa::DecodeBuffer(p.bytes, off);
        ASSERT_TRUE(inst.has_value()) << "at offset " << off;
        EXPECT_EQ(inst->operands[0].mode, m);
        off += inst->length;
    }
    EXPECT_EQ(off, p.size());
}

TEST(AssemblerDeath, UnboundLabelIsFatal)
{
    Assembler a(0);
    Label missing = a.NewLabel("missing");
    a.Emit(Opcode::kBrb, {}, missing);
    EXPECT_DEATH(a.Finish(), "unbound label");
}

TEST(AssemblerDeath, BranchOutOfRangeIsFatal)
{
    Assembler a(0);
    Label far = a.NewLabel("far");
    a.Emit(Opcode::kBrb, {}, far);
    a.Space(300);
    a.Bind(far);
    EXPECT_DEATH(a.Finish(), "out of byte range");
}

TEST(AssemblerDeath, WrongOperandCountIsFatal)
{
    Assembler a(0);
    EXPECT_DEATH(a.Emit(Opcode::kMovl, {R(1)}), "general operand");
}

TEST(AssemblerDeath, MissingBranchLabelIsFatal)
{
    Assembler a(0);
    EXPECT_DEATH(a.Emit(Opcode::kBrb, {}), "branch label");
}

TEST(AssemblerDeath, ImmediateDestinationIsFatal)
{
    Assembler a(0);
    EXPECT_DEATH(a.Emit(Opcode::kClrl, {Imm(1)}), "immediate operand");
}

TEST(AssemblerDeath, DoubleBindIsFatal)
{
    Assembler a(0);
    Label l = a.Here("l");
    EXPECT_DEATH(a.Bind(l), "bound twice");
}


TEST(Assembler, CaseTableDisplacementsRelativeToTableStart)
{
    Assembler a(0x100);
    Label t0 = a.NewLabel("t0");
    Label t1 = a.NewLabel("t1");
    a.Emit(Opcode::kCasel, {R(1), Imm(0), Imm(1)});
    const uint32_t table_addr = a.here();
    a.CaseTable({t0, t1});
    a.Bind(t0);
    a.Emit(Opcode::kNop);
    a.Bind(t1);
    Program p = a.Finish();
    const uint32_t table_off = table_addr - 0x100;
    const int16_t d0 = static_cast<int16_t>(
        p.bytes[table_off] | (p.bytes[table_off + 1] << 8));
    const int16_t d1 = static_cast<int16_t>(
        p.bytes[table_off + 2] | (p.bytes[table_off + 3] << 8));
    EXPECT_EQ(d0, 4);  // t0 right after the 2-entry table
    EXPECT_EQ(d1, 5);  // t1 one NOP later
}

TEST(AssemblerDeath, CaseTargetOutOfRangeIsFatal)
{
    Assembler a(0);
    Label far = a.NewLabel("far");
    a.CaseTable({far});
    a.Space(40000);
    a.Bind(far);
    EXPECT_DEATH(a.Finish(), "out of word range");
}

}  // namespace
}  // namespace atum::assembler
