// Unit tests for the MMU: TLB behaviour, table walks, protection checks,
// modified-bit maintenance, and the PTE-reference reporting ATUM traces.

#include <gtest/gtest.h>

#include "mem/physical_memory.h"
#include "mmu/mmu.h"
#include "ucode/control_store.h"

namespace atum::mmu {
namespace {

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest() : mem_(64 * kPageBytes), mmu_(mem_, cs_)
    {
        // P0 page table at physical 0x1000 covering 16 pages.
        mmu_.SetRegion(Region::kP0, {0x1000, 16});
        // S0 table at 0x2000, 8 pages, identity-ish map to frames 20..27.
        mmu_.SetRegion(Region::kS0, {0x2000, 8});
        for (uint32_t p = 0; p < 8; ++p)
            mem_.Write32(0x2000 + 4 * p, MakePte(20 + p, false, true));
        mmu_.set_enabled(true);
    }

    void MapP0(uint32_t page, uint32_t pfn, bool user = true,
               bool writable = true)
    {
        mem_.Write32(0x1000 + 4 * page, MakePte(pfn, user, writable));
    }

    PhysicalMemory mem_;
    ucode::ControlStore cs_;
    Mmu mmu_;
};

TEST_F(MmuTest, DisabledIsIdentity)
{
    mmu_.set_enabled(false);
    const auto res = mmu_.Translate(0x12345, false, false);
    EXPECT_EQ(res.status, XlateStatus::kOk);
    EXPECT_EQ(res.paddr, 0x12345u);
    EXPECT_FALSE(res.tb_miss);
}

TEST_F(MmuTest, WalkThenHit)
{
    MapP0(3, 7);
    const uint32_t va = 3 * kPageBytes + 0x21;
    auto res = mmu_.Translate(va, false, false);
    EXPECT_EQ(res.status, XlateStatus::kOk);
    EXPECT_EQ(res.paddr, 7 * kPageBytes + 0x21);
    EXPECT_TRUE(res.tb_miss);
    EXPECT_GT(res.ucycles, 0u);
    // Second access: TB hit, no walk cost.
    res = mmu_.Translate(va + 4, false, false);
    EXPECT_EQ(res.status, XlateStatus::kOk);
    EXPECT_FALSE(res.tb_miss);
    EXPECT_EQ(res.ucycles, 0u);
    EXPECT_EQ(mmu_.pte_reads(), 1u);
}

TEST_F(MmuTest, InvalidPteIsTnv)
{
    const auto res = mmu_.Translate(5 * kPageBytes, false, false);
    EXPECT_EQ(res.status, XlateStatus::kTnv);
}

TEST_F(MmuTest, LengthViolationIsAcv)
{
    const auto res = mmu_.Translate(16 * kPageBytes, false, false);
    EXPECT_EQ(res.status, XlateStatus::kAcv);
}

TEST_F(MmuTest, ReservedRegionIsAcv)
{
    const auto res = mmu_.Translate(0xc0000000u, false, true);
    EXPECT_EQ(res.status, XlateStatus::kAcv);
}

TEST_F(MmuTest, UserCannotTouchKernelPage)
{
    MapP0(2, 9, /*user=*/false);
    EXPECT_EQ(mmu_.Translate(2 * kPageBytes, false, false).status,
              XlateStatus::kAcv);
    EXPECT_EQ(mmu_.Translate(2 * kPageBytes, false, true).status,
              XlateStatus::kOk);
}

TEST_F(MmuTest, WriteToReadOnlyIsAcv)
{
    MapP0(1, 8, true, /*writable=*/false);
    EXPECT_EQ(mmu_.Translate(kPageBytes, false, false).status,
              XlateStatus::kOk);
    EXPECT_EQ(mmu_.Translate(kPageBytes, true, false).status,
              XlateStatus::kAcv);
}

TEST_F(MmuTest, ProtectionCheckedOnTbHitToo)
{
    MapP0(1, 8, true, false);
    ASSERT_EQ(mmu_.Translate(kPageBytes, false, false).status,
              XlateStatus::kOk);  // loads TB
    EXPECT_EQ(mmu_.Translate(kPageBytes, true, false).status,
              XlateStatus::kAcv);  // write denied from cached entry
}

TEST_F(MmuTest, WriteSetsModifiedBitInMemory)
{
    MapP0(4, 10);
    ASSERT_EQ(mmu_.Translate(4 * kPageBytes, false, false).status,
              XlateStatus::kOk);
    EXPECT_EQ(mem_.Read32(0x1000 + 16) & kPteModified, 0u);
    ASSERT_EQ(mmu_.Translate(4 * kPageBytes, true, false).status,
              XlateStatus::kOk);
    EXPECT_NE(mem_.Read32(0x1000 + 16) & kPteModified, 0u);
}

TEST_F(MmuTest, CleanToDirtyRewalksOnce)
{
    MapP0(4, 10);
    ASSERT_EQ(mmu_.Translate(4 * kPageBytes, false, false).status,
              XlateStatus::kOk);
    const uint64_t walks_before = mmu_.pte_reads();
    // First write re-walks (to set M); second write hits a dirty entry.
    ASSERT_EQ(mmu_.Translate(4 * kPageBytes, true, false).status,
              XlateStatus::kOk);
    ASSERT_EQ(mmu_.Translate(4 * kPageBytes + 8, true, false).status,
              XlateStatus::kOk);
    EXPECT_EQ(mmu_.pte_reads(), walks_before + 1);
}

TEST_F(MmuTest, PteReferenceReportedToControlStore)
{
    MapP0(0, 6);
    unsigned pte_refs = 0;
    cs_.PatchMemAccess([&](const ucode::MemAccess& a) -> uint32_t {
        if (a.kind == ucode::MemAccessKind::kPte) {
            ++pte_refs;
            EXPECT_EQ(a.vaddr, 0x1000u);  // physical PTE address
            EXPECT_EQ(a.vaddr, a.paddr);
        }
        return 0;
    });
    ASSERT_EQ(mmu_.Translate(0, false, false).status, XlateStatus::kOk);
    EXPECT_EQ(pte_refs, 1u);
}

TEST_F(MmuTest, TlbMissFiresPatchPoint)
{
    MapP0(0, 6);
    unsigned misses = 0;
    cs_.PatchTlbMiss([&](uint32_t va, bool kernel) -> uint32_t {
        EXPECT_EQ(va, 0u);
        EXPECT_FALSE(kernel);
        ++misses;
        return 0;
    });
    mmu_.Translate(0, false, false);
    mmu_.Translate(0, false, false);  // hit: no second fire
    EXPECT_EQ(misses, 1u);
}

TEST_F(MmuTest, S0Translation)
{
    const uint32_t va = 0x80000000u + 2 * kPageBytes + 5;
    const auto res = mmu_.Translate(va, false, true);
    EXPECT_EQ(res.status, XlateStatus::kOk);
    EXPECT_EQ(res.paddr, 22 * kPageBytes + 5);
    // User access to a kernel-only S0 page is denied.
    EXPECT_EQ(mmu_.Translate(va, false, false).status, XlateStatus::kAcv);
}

TEST_F(MmuTest, P1RegionUsesItsOwnTable)
{
    mmu_.SetRegion(Region::kP1, {0x3000, 4});
    mem_.Write32(0x3000 + 4 * 2, MakePte(30, true, true));
    const uint32_t va = 0x40000000u + 2 * kPageBytes;
    const auto res = mmu_.Translate(va, false, false);
    EXPECT_EQ(res.status, XlateStatus::kOk);
    EXPECT_EQ(res.paddr, 30 * kPageBytes);
}

// --- raw TLB tests ------------------------------------------------------

TEST(Tlb, InsertLookupInvalidate)
{
    Tlb tlb(4, 2);
    TlbEntry e;
    e.vpn = 100;
    e.pfn = 7;
    tlb.Insert(e);
    ASSERT_NE(tlb.Lookup(100), nullptr);
    EXPECT_EQ(tlb.Lookup(100)->pfn, 7u);
    tlb.InvalidateVa(100 << kPageShift);
    EXPECT_EQ(tlb.Lookup(100), nullptr);
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb(1, 2);  // one set, two ways
    TlbEntry a, b, c;
    a.vpn = 1;
    b.vpn = 2;
    c.vpn = 3;
    tlb.Insert(a);
    tlb.Insert(b);
    ASSERT_NE(tlb.Lookup(1), nullptr);  // touch 1 so 2 becomes LRU
    tlb.Insert(c);                      // evicts 2
    EXPECT_NE(tlb.Lookup(1), nullptr);
    EXPECT_EQ(tlb.Lookup(2), nullptr);
    EXPECT_NE(tlb.Lookup(3), nullptr);
}

TEST(Tlb, FlushProcessKeepsSystemEntries)
{
    Tlb tlb(8, 2);
    TlbEntry user, sys;
    user.vpn = 10;
    sys.vpn = 0x80000000u >> kPageShift;
    tlb.Insert(user);
    tlb.Insert(sys);
    EXPECT_EQ(tlb.FlushProcessEntries(), 1u);
    EXPECT_EQ(tlb.Lookup(10), nullptr);
    EXPECT_NE(tlb.Lookup(0x80000000u >> kPageShift), nullptr);
}

TEST(Tlb, InvalidateAll)
{
    Tlb tlb(8, 2);
    for (uint32_t v = 0; v < 8; ++v) {
        TlbEntry e;
        e.vpn = v;
        tlb.Insert(e);
    }
    tlb.InvalidateAll();
    for (uint32_t v = 0; v < 8; ++v)
        EXPECT_EQ(tlb.Lookup(v), nullptr);
}

TEST(Tlb, MissCounting)
{
    Tlb tlb(4, 1);
    tlb.Lookup(5);
    TlbEntry e;
    e.vpn = 5;
    tlb.Insert(e);
    tlb.Lookup(5);
    EXPECT_EQ(tlb.lookups(), 2u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbDeath, BadGeometryIsFatal)
{
    EXPECT_DEATH(Tlb(3, 2), "geometry");
    EXPECT_DEATH(Tlb(0, 2), "geometry");
}

}  // namespace
}  // namespace atum::mmu
