// Unit tests for the ISA tables, the decoder, and the disassembler.

#include <gtest/gtest.h>

#include "isa/decoder.h"
#include "isa/disassembler.h"
#include "isa/isa.h"

namespace atum::isa {
namespace {

TEST(IsaTables, AllAssignedOpcodesHaveInfo)
{
    for (Opcode op : AllOpcodes()) {
        const InstrInfo& info = GetInstrInfo(op);
        EXPECT_TRUE(info.valid);
        EXPECT_NE(info.mnemonic[0], '?');
    }
    EXPECT_GE(AllOpcodes().size(), 55u);
}

TEST(IsaTables, UnassignedAreInvalid)
{
    EXPECT_FALSE(GetInstrInfo(uint8_t{0xff}).valid);
    EXPECT_FALSE(GetInstrInfo(uint8_t{0x0f}).valid);
    EXPECT_EQ(MnemonicOf(static_cast<Opcode>(0xff)), "?ff");
}

TEST(IsaTables, PrivilegedFlags)
{
    EXPECT_TRUE(GetInstrInfo(Opcode::kHalt).privileged);
    EXPECT_TRUE(GetInstrInfo(Opcode::kMtpr).privileged);
    EXPECT_TRUE(GetInstrInfo(Opcode::kLdpctx).privileged);
    EXPECT_FALSE(GetInstrInfo(Opcode::kMovl).privileged);
    EXPECT_FALSE(GetInstrInfo(Opcode::kChmk).privileged);
}

TEST(IsaTables, BranchShapes)
{
    const InstrInfo& sob = GetInstrInfo(Opcode::kSobgtr);
    ASSERT_EQ(sob.operands.size(), 2u);
    EXPECT_EQ(sob.operands[0].access, Access::kModify);
    EXPECT_EQ(sob.operands[1].access, Access::kBranch8);

    const InstrInfo& brw = GetInstrInfo(Opcode::kBrw);
    ASSERT_EQ(brw.operands.size(), 1u);
    EXPECT_EQ(brw.operands[0].access, Access::kBranch16);
}

TEST(IsaTables, SpecifierByteEncoding)
{
    EXPECT_EQ(SpecifierByte(AddrMode::kReg, 3), 0x03);
    EXPECT_EQ(SpecifierByte(AddrMode::kAutoDec, 14), 0x3e);
    EXPECT_EQ(SpecifierByte(AddrMode::kAbs, 0), 0x80);
}

// --- decoder ----------------------------------------------------------

TEST(Decoder, RegisterToRegisterMove)
{
    // movl r1, r2
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kMovl),
        SpecifierByte(AddrMode::kReg, 1),
        SpecifierByte(AddrMode::kReg, 2),
    };
    auto inst = DecodeBuffer(bytes, 0);
    ASSERT_TRUE(inst.has_value());
    EXPECT_EQ(inst->opcode, Opcode::kMovl);
    ASSERT_EQ(inst->operands.size(), 2u);
    EXPECT_EQ(inst->operands[0].mode, AddrMode::kReg);
    EXPECT_EQ(inst->operands[0].reg, 1);
    EXPECT_EQ(inst->operands[1].reg, 2);
    EXPECT_EQ(inst->length, 3u);
}

TEST(Decoder, ImmediateLong)
{
    // movl #0x11223344, r0
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kMovl),
        SpecifierByte(AddrMode::kImm, 0),
        0x44, 0x33, 0x22, 0x11,
        SpecifierByte(AddrMode::kReg, 0),
    };
    auto inst = DecodeBuffer(bytes, 0);
    ASSERT_TRUE(inst.has_value());
    EXPECT_EQ(inst->operands[0].imm, 0x11223344u);
    EXPECT_EQ(inst->length, 7u);
}

TEST(Decoder, ImmediateByteUsesOneByte)
{
    // cmpb #0x41, r2
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kCmpb),
        SpecifierByte(AddrMode::kImm, 0),
        0x41,
        SpecifierByte(AddrMode::kReg, 2),
    };
    auto inst = DecodeBuffer(bytes, 0);
    ASSERT_TRUE(inst.has_value());
    EXPECT_EQ(inst->operands[0].imm, 0x41u);
    EXPECT_EQ(inst->length, 4u);
}

TEST(Decoder, Displacements)
{
    // addl2 -4(r1), 1000(r2)
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kAddl2),
        SpecifierByte(AddrMode::kDisp8, 1),
        0xfc,
        SpecifierByte(AddrMode::kDisp32, 2),
        0xe8, 0x03, 0x00, 0x00,
    };
    auto inst = DecodeBuffer(bytes, 0);
    ASSERT_TRUE(inst.has_value());
    EXPECT_EQ(inst->operands[0].disp, -4);
    EXPECT_EQ(inst->operands[1].disp, 1000);
}

TEST(Decoder, BranchDisplacement)
{
    // bneq -2
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kBneq), 0xfe,
    };
    auto inst = DecodeBuffer(bytes, 0);
    ASSERT_TRUE(inst.has_value());
    ASSERT_TRUE(inst->branch_disp.has_value());
    EXPECT_EQ(*inst->branch_disp, -2);
    EXPECT_EQ(inst->length, 2u);
}

TEST(Decoder, RejectsUnassignedOpcode)
{
    EXPECT_FALSE(DecodeBuffer({0xff}, 0).has_value());
}

TEST(Decoder, RejectsReservedMode)
{
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kTstl), 0x90,  // mode 9: reserved
    };
    EXPECT_FALSE(DecodeBuffer(bytes, 0).has_value());
}

TEST(Decoder, RejectsImmediateDestination)
{
    // clrl #5 is a reserved operand
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kClrl),
        SpecifierByte(AddrMode::kImm, 0),
        0x05, 0x00, 0x00, 0x00,
    };
    EXPECT_FALSE(DecodeBuffer(bytes, 0).has_value());
}

TEST(Decoder, RejectsRegisterForAddressOperand)
{
    // jmp r3 is a reserved operand (registers have no address)
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kJmp),
        SpecifierByte(AddrMode::kReg, 3),
    };
    EXPECT_FALSE(DecodeBuffer(bytes, 0).has_value());
}

TEST(Decoder, TruncatedBufferRejected)
{
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kMovl),
        SpecifierByte(AddrMode::kImm, 0),
        0x44, 0x33,  // missing immediate bytes and destination
    };
    EXPECT_FALSE(DecodeBuffer(bytes, 0).has_value());
}

// --- disassembler ------------------------------------------------------

TEST(Disassembler, Operands)
{
    Operand op;
    op.mode = AddrMode::kAutoDec;
    op.reg = 3;
    EXPECT_EQ(FormatOperand(op), "-(r3)");
    op.mode = AddrMode::kAutoInc;
    op.reg = kRegSp;
    EXPECT_EQ(FormatOperand(op), "(sp)+");
    op.mode = AddrMode::kImm;
    op.imm = 16;
    EXPECT_EQ(FormatOperand(op), "#0x10");
    op.mode = AddrMode::kDisp8;
    op.reg = 2;
    op.disp = -4;
    EXPECT_EQ(FormatOperand(op), "-4(r2)");
    op.mode = AddrMode::kAbs;
    op.imm = 0x1200;
    EXPECT_EQ(FormatOperand(op), "@#0x1200");
}

TEST(Disassembler, FullInstruction)
{
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kAddl3),
        SpecifierByte(AddrMode::kReg, 1),
        SpecifierByte(AddrMode::kRegDef, 2),
        SpecifierByte(AddrMode::kReg, 3),
    };
    auto inst = DecodeBuffer(bytes, 0);
    ASSERT_TRUE(inst.has_value());
    EXPECT_EQ(FormatInst(*inst, 0x100), "addl3  r1, (r2), r3");
}

TEST(Disassembler, BranchTargetIsAbsolute)
{
    const std::vector<uint8_t> bytes = {
        static_cast<uint8_t>(Opcode::kBrb), 0x10,
    };
    auto inst = DecodeBuffer(bytes, 0);
    ASSERT_TRUE(inst.has_value());
    // Target = pc + length + disp = 0x100 + 2 + 0x10.
    EXPECT_EQ(FormatInst(*inst, 0x100), "brb  0x112");
}

}  // namespace
}  // namespace atum::isa
