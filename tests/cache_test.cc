// Unit tests for the cache model and the trace driver: hit/miss mechanics,
// replacement, write policies, PID tags vs flush-on-switch, and filters.

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "cache/write_buffer.h"
#include "cache/trace_driver.h"
#include "trace/record.h"
#include "util/rng.h"

namespace atum::cache {
namespace {

using trace::MakeCtxSwitch;
using trace::MakeFlags;
using trace::Record;
using trace::RecordType;

Record
MemRecord(uint32_t addr, RecordType type, bool kernel = false)
{
    Record r;
    r.addr = addr;
    r.type = type;
    r.flags = MakeFlags(kernel, 4);
    return r;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    EXPECT_FALSE(c.Access(0x100, false));
    EXPECT_TRUE(c.Access(0x100, false));
    EXPECT_TRUE(c.Access(0x10c, false));  // same block
    EXPECT_FALSE(c.Access(0x110, false));  // next block
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, DirectMappedConflict)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    EXPECT_FALSE(c.Access(0x0, false));
    EXPECT_FALSE(c.Access(0x400, false));  // same set, evicts
    EXPECT_FALSE(c.Access(0x0, false));    // miss again
}

TEST(Cache, TwoWayAvoidsThatConflict)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 2});
    EXPECT_FALSE(c.Access(0x0, false));
    EXPECT_FALSE(c.Access(0x400, false));
    EXPECT_TRUE(c.Access(0x0, false));
    EXPECT_TRUE(c.Access(0x400, false));
}

TEST(Cache, LruReplacement)
{
    Cache c({.size_bytes = 64, .block_bytes = 16, .assoc = 2});
    // Set 0 blocks: 0x00, 0x40, 0x80 (two sets of two ways).
    c.Access(0x00, false);
    c.Access(0x40, false);
    c.Access(0x00, false);  // touch: 0x40 is now LRU
    c.Access(0x80, false);  // evicts 0x40
    EXPECT_TRUE(c.Access(0x00, false));
    EXPECT_FALSE(c.Access(0x40, false));
}

TEST(Cache, FifoReplacementIgnoresTouches)
{
    Cache c({.size_bytes = 64,
             .block_bytes = 16,
             .assoc = 2,
             .replacement = Replacement::kFifo});
    c.Access(0x00, false);
    c.Access(0x40, false);
    c.Access(0x00, false);  // touch does not change FIFO order
    c.Access(0x80, false);  // evicts 0x00 (oldest fill)
    EXPECT_FALSE(c.Access(0x00, false));
}

TEST(Cache, FullyAssociative)
{
    Cache c({.size_bytes = 64, .block_bytes = 16, .assoc = 0});
    EXPECT_EQ(c.num_sets(), 1u);
    c.Access(0x000, false);
    c.Access(0x400, false);
    c.Access(0x800, false);
    c.Access(0xc00, false);
    EXPECT_TRUE(c.Access(0x000, false));
    EXPECT_TRUE(c.Access(0xc00, false));
}

TEST(Cache, WriteBackCountsWritebacksOnEviction)
{
    Cache c({.size_bytes = 32, .block_bytes = 16, .assoc = 1});
    c.Access(0x00, true);   // dirty fill
    c.Access(0x40, false);  // evicts dirty block
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteThroughNeverWritesBack)
{
    Cache c({.size_bytes = 32,
             .block_bytes = 16,
             .assoc = 1,
             .write_back = false});
    c.Access(0x00, true);
    c.Access(0x40, false);
    c.Access(0x00, true);
    c.Access(0x40, false);
    EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, NoWriteAllocateBypassesOnWriteMiss)
{
    Cache c({.size_bytes = 1024,
             .block_bytes = 16,
             .assoc = 1,
             .write_allocate = false});
    EXPECT_FALSE(c.Access(0x100, true));  // write miss, not allocated
    EXPECT_FALSE(c.Access(0x100, false)); // still a miss
}

TEST(Cache, PidTagsSeparateProcesses)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 2,
             .pid_tags = true});
    EXPECT_FALSE(c.Access(0x100, false, 1));
    EXPECT_FALSE(c.Access(0x100, false, 2));  // same address, other pid
    EXPECT_TRUE(c.Access(0x100, false, 1));
    EXPECT_TRUE(c.Access(0x100, false, 2));
}

TEST(Cache, FlushInvalidatesAndCountsDirty)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    c.Access(0x100, true);
    c.Access(0x200, false);
    c.Flush();
    EXPECT_EQ(c.stats().flushes, 1u);
    EXPECT_EQ(c.stats().flushed_blocks, 2u);
    EXPECT_EQ(c.stats().writebacks, 1u);
    EXPECT_FALSE(c.Access(0x100, false));
}

TEST(Cache, MissRateComputation)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    c.Access(0x0, false);
    c.Access(0x0, false);
    c.Access(0x0, false);
    c.Access(0x0, false);
    EXPECT_DOUBLE_EQ(c.stats().MissRate(), 0.25);
}

TEST(CacheDeath, BadConfigIsFatal)
{
    EXPECT_DEATH(Cache({.size_bytes = 1000, .block_bytes = 16}),
                 "powers of two");
    EXPECT_DEATH(Cache({.size_bytes = 1024, .block_bytes = 2048}),
                 "block size");
    EXPECT_DEATH(Cache({.size_bytes = 64, .block_bytes = 16, .assoc = 8}),
                 "associativity");
}

TEST(Cache, ConfigToString)
{
    EXPECT_EQ(Cache({.size_bytes = 64u << 10,
                     .block_bytes = 16,
                     .assoc = 2})
                  .config()
                  .ToString(),
              "64K/16B/2w/wb");
}

// --- driver -------------------------------------------------------------

TEST(TraceCacheDriver, FiltersKernel)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    DriverOptions opts;
    opts.include_kernel = false;
    TraceCacheDriver driver(c, opts);
    driver.Feed(MemRecord(0x100, RecordType::kRead, /*kernel=*/true));
    driver.Feed(MemRecord(0x200, RecordType::kRead, /*kernel=*/false));
    EXPECT_EQ(driver.fed(), 1u);
    EXPECT_EQ(driver.filtered(), 1u);
    EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(TraceCacheDriver, PteFilteredByDefault)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    TraceCacheDriver driver(c, DriverOptions{});
    driver.Feed(MemRecord(0x100, RecordType::kPte, true));
    EXPECT_EQ(driver.fed(), 0u);
    EXPECT_EQ(driver.filtered(), 1u);
}

TEST(TraceCacheDriver, FlushOnSwitch)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    DriverOptions opts;
    opts.flush_on_switch = true;
    TraceCacheDriver driver(c, opts);
    driver.Feed(MemRecord(0x100, RecordType::kRead));
    driver.Feed(MakeCtxSwitch(2, 0));
    driver.Feed(MemRecord(0x100, RecordType::kRead));  // miss again
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_EQ(c.stats().flushes, 1u);
}

TEST(TraceCacheDriver, PidTagsFromSwitchMarkers)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 2,
             .pid_tags = true});
    TraceCacheDriver driver(c, DriverOptions{});
    driver.Feed(MakeCtxSwitch(1, 0));
    driver.Feed(MemRecord(0x100, RecordType::kRead));
    driver.Feed(MakeCtxSwitch(2, 0));
    driver.Feed(MemRecord(0x100, RecordType::kRead));  // other pid: miss
    driver.Feed(MakeCtxSwitch(1, 0));
    driver.Feed(MemRecord(0x100, RecordType::kRead));  // pid 1 again: hit
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_EQ(c.stats().accesses - c.stats().misses, 1u);
}

TEST(TraceCacheDriver, KernelRefsShareTagZero)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 2,
             .pid_tags = true});
    TraceCacheDriver driver(c, DriverOptions{});
    driver.Feed(MakeCtxSwitch(1, 0));
    driver.Feed(MemRecord(0x80000100, RecordType::kRead, true));
    driver.Feed(MakeCtxSwitch(2, 0));
    // The same kernel block from another process context still hits.
    driver.Feed(MemRecord(0x80000100, RecordType::kRead, true));
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(TraceCacheDriver, SplitICache)
{
    Cache d({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    Cache i({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    TraceCacheDriver driver(d, DriverOptions{}, &i);
    driver.Feed(MemRecord(0x100, RecordType::kIFetch));
    driver.Feed(MemRecord(0x200, RecordType::kRead));
    driver.Feed(MemRecord(0x300, RecordType::kWrite));
    EXPECT_EQ(i.stats().accesses, 1u);
    EXPECT_EQ(d.stats().accesses, 2u);
}

TEST(TraceCacheDriver, OnlyPidFilter)
{
    Cache c({.size_bytes = 1024, .block_bytes = 16, .assoc = 1});
    DriverOptions opts;
    opts.only_pid = 1;
    opts.include_kernel = false;
    TraceCacheDriver driver(c, opts);
    driver.Feed(MakeCtxSwitch(1, 0));
    driver.Feed(MemRecord(0x100, RecordType::kRead));
    driver.Feed(MakeCtxSwitch(2, 0));
    driver.Feed(MemRecord(0x200, RecordType::kRead));  // filtered
    EXPECT_EQ(driver.fed(), 1u);
    EXPECT_EQ(driver.filtered(), 1u);
}


// --- hierarchy ----------------------------------------------------------

TEST(Hierarchy, L1HitNeverReachesL2)
{
    cache::CacheHierarchy h({});
    h.Access(0x100, false, false);
    h.Access(0x100, false, false);  // L1D hit
    EXPECT_EQ(h.l2().stats().accesses, 1u);  // only the first miss
    EXPECT_EQ(h.accesses(), 2u);
}

TEST(Hierarchy, SplitRouting)
{
    cache::CacheHierarchy h({});
    h.Access(0x100, false, /*is_ifetch=*/true);
    h.Access(0x200, false, /*is_ifetch=*/false);
    h.Access(0x300, true, /*is_ifetch=*/false);
    EXPECT_EQ(h.l1i().stats().accesses, 1u);
    EXPECT_EQ(h.l1d().stats().accesses, 2u);
}

TEST(Hierarchy, L2CatchesL1ConflictMisses)
{
    // Two blocks that conflict in a 4K direct-mapped L1 coexist in a
    // larger 2-way L2, so repeated alternation hits L2 after warmup.
    cache::HierarchyConfig config;
    cache::CacheHierarchy h(config);
    for (int i = 0; i < 100; ++i) {
        h.Access(0x0000, false, false);
        h.Access(0x1000, false, false);  // conflicts with 0x0 in L1D
    }
    EXPECT_GT(h.l1d().stats().misses, 150u);   // L1 thrashes
    EXPECT_LE(h.memory_accesses(), 4u);        // but L2 absorbs it
    EXPECT_LT(h.GlobalMissRate(), 0.05);
}

TEST(Hierarchy, DirtyVictimWrittenThroughToL2)
{
    cache::HierarchyConfig config;
    cache::CacheHierarchy h(config);
    h.Access(0x0000, true, false);   // dirty in L1D
    h.Access(0x1000, false, false);  // evicts the dirty block
    // L2 saw: refill 0x0, refill 0x1000, writeback of 0x0.
    EXPECT_EQ(h.l2().stats().accesses, 3u);
    EXPECT_EQ(h.l2().stats().writes, 1u);
}

TEST(Hierarchy, AmatBetweenL1AndMemoryLatency)
{
    cache::HierarchyConfig config;
    cache::CacheHierarchy h(config);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i)
        h.Access(rng.Below(1u << 16), rng.Below(4) == 0, rng.Below(4) == 0);
    EXPECT_GE(h.Amat(), config.l1_hit_cycles);
    EXPECT_LE(h.Amat(),
              config.l1_hit_cycles + config.l2_hit_cycles +
                  config.memory_cycles);
    EXPECT_GT(h.Amat(), 1.0);
}

TEST(Hierarchy, FeedHandlesSwitchFlush)
{
    cache::HierarchyConfig config;
    config.flush_on_switch = true;
    cache::CacheHierarchy h(config);
    h.Feed(MemRecord(0x100, RecordType::kRead));
    h.Feed(MakeCtxSwitch(2, 0));
    h.Feed(MemRecord(0x100, RecordType::kRead));
    EXPECT_EQ(h.l1d().stats().misses, 2u);
    EXPECT_EQ(h.l2().stats().flushes, 1u);
}

TEST(Hierarchy, PteRecordsIgnored)
{
    cache::CacheHierarchy h({});
    h.Feed(MemRecord(0x100, RecordType::kPte, true));
    EXPECT_EQ(h.accesses(), 0u);
}


// --- write buffer --------------------------------------------------------

TEST(WriteBuffer, NoStallWhileSlotsFree)
{
    cache::WriteBuffer wb({.depth = 4, .retire_cycles = 6});
    EXPECT_EQ(wb.Write(0x100), 0u);
    EXPECT_EQ(wb.Write(0x200), 0u);
    EXPECT_EQ(wb.Write(0x300), 0u);
    EXPECT_EQ(wb.Write(0x400), 0u);
    EXPECT_EQ(wb.stall_cycles(), 0u);
}

TEST(WriteBuffer, BackToBackBurstStalls)
{
    cache::WriteBuffer wb({.depth = 2, .retire_cycles = 10,
                           .coalesce = false});
    wb.Write(0x100);
    wb.Write(0x200);
    // Buffer full; the third store must wait for the first to retire.
    EXPECT_GT(wb.Write(0x300), 0u);
    EXPECT_GT(wb.stall_cycles(), 0u);
}

TEST(WriteBuffer, SpacedStoresNeverStall)
{
    cache::WriteBuffer wb({.depth = 1, .retire_cycles = 4});
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(wb.Write(0x100 + 0x40 * i), 0u);
        for (int j = 0; j < 8; ++j)
            wb.OnReference();  // enough gap for the bus to retire
    }
    EXPECT_EQ(wb.stall_cycles(), 0u);
}

TEST(WriteBuffer, CoalescingAbsorbsSameBlockStores)
{
    cache::WriteBuffer wb({.depth = 1, .retire_cycles = 50,
                           .block_bytes = 16});
    wb.Write(0x100);
    EXPECT_EQ(wb.Write(0x104), 0u);  // same 16B block: coalesces
    EXPECT_EQ(wb.Write(0x108), 0u);
    EXPECT_EQ(wb.coalesced(), 2u);
    EXPECT_EQ(wb.stall_cycles(), 0u);
}

TEST(WriteBuffer, DeeperBufferStallsLess)
{
    auto stalls_with_depth = [](uint32_t depth) {
        cache::WriteBuffer wb({.depth = depth, .retire_cycles = 8,
                               .coalesce = false});
        Rng rng(77);
        for (int i = 0; i < 5000; ++i) {
            if (rng.Below(3) == 0)
                wb.Write(rng.Next32());
            else
                wb.OnReference();
        }
        return wb.stall_cycles();
    };
    const uint64_t d1 = stalls_with_depth(1);
    const uint64_t d4 = stalls_with_depth(4);
    const uint64_t d16 = stalls_with_depth(16);
    EXPECT_GT(d1, d4);
    EXPECT_GE(d4, d16);
}

TEST(WriteBufferDeath, BadConfigIsFatal)
{
    EXPECT_DEATH(cache::WriteBuffer({.depth = 0}), "depth");
    EXPECT_DEATH(cache::WriteBuffer({.retire_cycles = 0}), "retire");
}


// --- one-block lookahead --------------------------------------------------

TEST(Prefetch, SequentialScanMissesHalve)
{
    Cache plain({.size_bytes = 4096, .block_bytes = 16, .assoc = 1});
    Cache obl({.size_bytes = 4096, .block_bytes = 16, .assoc = 1,
               .prefetch_next_on_miss = true});
    for (uint32_t a = 0; a < 64 * 1024; a += 4) {
        plain.Access(a, false);
        obl.Access(a, false);
    }
    // Lookahead converts every other sequential miss into a hit.
    EXPECT_LT(obl.stats().misses, plain.stats().misses / 2 + 64);
    EXPECT_GT(obl.stats().prefetch_fills, 0u);
}

TEST(Prefetch, ResidentNextBlockNotRefetched)
{
    Cache c({.size_bytes = 4096, .block_bytes = 16, .assoc = 2,
             .prefetch_next_on_miss = true});
    c.Access(0x110, false);  // fills 0x110 block (and prefetches 0x120)
    const uint64_t fills = c.stats().prefetch_fills;
    c.Access(0x100, false);  // miss; next block 0x110 already resident
    EXPECT_EQ(c.stats().prefetch_fills, fills + 0u);
}

TEST(Prefetch, ConfigStringMentionsObl)
{
    Cache c({.size_bytes = 4096, .block_bytes = 16, .assoc = 1,
             .prefetch_next_on_miss = true});
    EXPECT_NE(c.config().ToString().find("obl"), std::string::npos);
}

}  // namespace
}  // namespace atum::cache
