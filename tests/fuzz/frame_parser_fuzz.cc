// libFuzzer harness over the serve wire codec (built with
// -DATUM_FUZZ=ON, clang only): arbitrary bytes through FrameParser in
// fuzzer-chosen chunk sizes, every extracted frame through ParseRequest,
// every valid request back through SerializeRequest. ASan owns the
// memory-safety claims; the asserts here pin the codec contract the
// deterministic sweep (`atum-chaos --fuzz-protocol`) and the pinned
// corpus (tests/protocol_corpus/) check without coverage guidance:
// extraction terminates, read-ahead stays bounded by the frame cap, and
// a parsed request round-trips to the same op.
//
// Run: ./build/tests/frame_parser_fuzz tests/protocol_corpus -max_total_time=60

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t* data, size_t size)
{
    using namespace atum;

    // The first byte picks the feed chunk size, so the corpus explores
    // frame boundaries landing mid-header and mid-payload.
    const size_t chunk = size > 0 ? static_cast<size_t>(data[0] % 63) + 1 : 1;
    if (size > 0) {
        ++data;
        --size;
    }

    serve::FrameParser parser;
    int steps = 0;
    for (size_t off = 0; off < size; off += chunk) {
        parser.Feed(data + off, std::min(chunk, size - off));
        for (;;) {
            assert(++steps < 100'000 && "frame extraction wedged");
            std::string payload;
            util::StatusOr<bool> got = parser.Next(&payload);
            if (!got.ok())
                return 0;  // poisoned: the connection would close here
            if (!*got)
                break;
            util::StatusOr<serve::Request> request =
                serve::ParseRequest(payload);
            if (request.ok()) {
                util::StatusOr<serve::Request> again =
                    serve::ParseRequest(serve::SerializeRequest(*request));
                assert(again.ok() && again->op == request->op &&
                       "valid request failed to round-trip");
            }
        }
        assert(parser.pending_bytes() <=
                   size_t{serve::kMaxFrameBytes} + 4 &&
               "parser buffered past the frame cap");
    }
    return 0;
}
