// Unit tests for the microcode layer: cost model and control-store
// patching semantics.

#include <gtest/gtest.h>

#include "ucode/control_store.h"
#include "ucode/micro_op.h"

namespace atum::ucode {
namespace {

TEST(MicroOp, AllKindsHaveNonzeroCost)
{
    for (unsigned k = 0; k < static_cast<unsigned>(MicroOpKind::kNumKinds);
         ++k) {
        EXPECT_GT(CostOf(static_cast<MicroOpKind>(k)), 0u);
    }
}

TEST(MicroOp, MemoryOpsCostMoreThanAlu)
{
    EXPECT_GE(CostOf(MicroOpKind::kDRead), CostOf(MicroOpKind::kAlu));
    EXPECT_GE(CostOf(MicroOpKind::kCtxLoad), CostOf(MicroOpKind::kDRead));
}

TEST(ControlStore, UnpatchedFiresReturnZero)
{
    ControlStore cs;
    EXPECT_EQ(cs.FireMemAccess(MemAccess{}), 0u);
    EXPECT_EQ(cs.FireContextSwitch(1, 0x100), 0u);
    EXPECT_EQ(cs.FireTlbMiss(0x200, false), 0u);
    EXPECT_EQ(cs.FireExceptionDispatch(3), 0u);
    EXPECT_EQ(cs.FireCount(PatchPoint::kMemAccess), 1u);
    EXPECT_EQ(cs.FireCount(PatchPoint::kContextSwitch), 1u);
}

TEST(ControlStore, PatchReceivesAccessAndReturnsCost)
{
    ControlStore cs;
    MemAccess seen;
    cs.PatchMemAccess([&](const MemAccess& a) -> uint32_t {
        seen = a;
        return 16;
    });
    MemAccess access;
    access.vaddr = 0x1234;
    access.paddr = 0x5678;
    access.size = 4;
    access.kind = MemAccessKind::kWrite;
    access.kernel = true;
    EXPECT_EQ(cs.FireMemAccess(access), 16u);
    EXPECT_EQ(seen.vaddr, 0x1234u);
    EXPECT_EQ(seen.paddr, 0x5678u);
    EXPECT_EQ(seen.kind, MemAccessKind::kWrite);
    EXPECT_TRUE(seen.kernel);
}

TEST(ControlStore, AllPointsPatchable)
{
    ControlStore cs;
    cs.PatchMemAccess([](const MemAccess&) { return 1u; });
    cs.PatchContextSwitch([](uint16_t, uint32_t) { return 2u; });
    cs.PatchTlbMiss([](uint32_t, bool) { return 3u; });
    cs.PatchExceptionDispatch([](uint8_t) { return 4u; });
    EXPECT_TRUE(cs.IsPatched(PatchPoint::kMemAccess));
    EXPECT_TRUE(cs.IsPatched(PatchPoint::kContextSwitch));
    EXPECT_TRUE(cs.IsPatched(PatchPoint::kTlbMiss));
    EXPECT_TRUE(cs.IsPatched(PatchPoint::kExceptionDispatch));
    EXPECT_EQ(cs.FireMemAccess(MemAccess{}), 1u);
    EXPECT_EQ(cs.FireContextSwitch(0, 0), 2u);
    EXPECT_EQ(cs.FireTlbMiss(0, true), 3u);
    EXPECT_EQ(cs.FireExceptionDispatch(0), 4u);
}

TEST(ControlStore, UnpatchRemovesHook)
{
    ControlStore cs;
    cs.PatchMemAccess([](const MemAccess&) { return 9u; });
    cs.Unpatch(PatchPoint::kMemAccess);
    EXPECT_FALSE(cs.IsPatched(PatchPoint::kMemAccess));
    EXPECT_EQ(cs.FireMemAccess(MemAccess{}), 0u);
}

TEST(ControlStore, UnpatchAll)
{
    ControlStore cs;
    cs.PatchMemAccess([](const MemAccess&) { return 1u; });
    cs.PatchTlbMiss([](uint32_t, bool) { return 1u; });
    cs.UnpatchAll();
    EXPECT_FALSE(cs.IsPatched(PatchPoint::kMemAccess));
    EXPECT_FALSE(cs.IsPatched(PatchPoint::kTlbMiss));
}

TEST(ControlStoreDeath, DoublePatchIsFatal)
{
    ControlStore cs;
    cs.PatchMemAccess([](const MemAccess&) { return 0u; });
    EXPECT_DEATH(cs.PatchMemAccess([](const MemAccess&) { return 0u; }),
                 "already patched");
}

TEST(ControlStore, FireCountsAccumulate)
{
    ControlStore cs;
    for (int i = 0; i < 5; ++i)
        cs.FireMemAccess(MemAccess{});
    EXPECT_EQ(cs.FireCount(PatchPoint::kMemAccess), 5u);
    EXPECT_EQ(cs.FireCount(PatchPoint::kTlbMiss), 0u);
}


TEST(ControlStore, DecodePatchReceivesOpcodeAndPc)
{
    ControlStore cs;
    uint32_t seen_pc = 0;
    uint8_t seen_op = 0;
    bool seen_kernel = false;
    cs.PatchDecode([&](uint32_t pc, uint8_t op, bool kernel) -> uint32_t {
        seen_pc = pc;
        seen_op = op;
        seen_kernel = kernel;
        return 5;
    });
    EXPECT_EQ(cs.FireDecode(0x1234, 0x10, true), 5u);
    EXPECT_EQ(seen_pc, 0x1234u);
    EXPECT_EQ(seen_op, 0x10);
    EXPECT_TRUE(seen_kernel);
    cs.Unpatch(PatchPoint::kDecode);
    EXPECT_EQ(cs.FireDecode(0, 0, false), 0u);
}

}  // namespace
}  // namespace atum::ucode
