// Unit tests for the obs metrics registry and the JSONL stats emitter:
// concurrent-update exactness, log2 bucket geometry, snapshot
// consistency under writers, and the atum-metrics-v1 line schema.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/stats_emitter.h"
#include "util/json.h"

namespace atum::obs {
namespace {

TEST(Counter, ConcurrentAddsAreExact)
{
    Registry registry;
    Counter& counter = registry.GetCounter("test.hits");
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 100'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                counter.Add(1);
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Gauge, SignedSetAndAdd)
{
    Gauge gauge;
    gauge.Set(-5);
    EXPECT_EQ(gauge.value(), -5);
    gauge.Add(12);
    EXPECT_EQ(gauge.value(), 7);
}

TEST(Histogram, BucketBoundaries)
{
    // Samples 0 and 1 share bucket 0; every power of two opens a bucket.
    EXPECT_EQ(Histogram::BucketOf(0), 0u);
    EXPECT_EQ(Histogram::BucketOf(1), 0u);
    EXPECT_EQ(Histogram::BucketOf(2), 1u);
    EXPECT_EQ(Histogram::BucketOf(3), 1u);
    EXPECT_EQ(Histogram::BucketOf(4), 2u);
    EXPECT_EQ(Histogram::BucketOf(7), 2u);
    EXPECT_EQ(Histogram::BucketOf(8), 3u);
    EXPECT_EQ(Histogram::BucketOf(1023), 9u);
    EXPECT_EQ(Histogram::BucketOf(1024), 10u);
    EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), 63u);

    EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
    EXPECT_EQ(Histogram::BucketUpperBound(1), 3u);
    EXPECT_EQ(Histogram::BucketUpperBound(9), 1023u);
    EXPECT_EQ(Histogram::BucketUpperBound(63), UINT64_MAX);

    Histogram h;
    h.Add(0);
    h.Add(1);
    h.Add(2);
    h.Add(3);
    h.Add(1024);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1030u);
    EXPECT_EQ(h.BucketCount(0), 2u);
    EXPECT_EQ(h.BucketCount(1), 2u);
    EXPECT_EQ(h.BucketCount(10), 1u);
    EXPECT_EQ(h.BucketCount(2), 0u);
}

TEST(Histogram, ConcurrentAddsAreExact)
{
    Histogram h;
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 50'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                h.Add(static_cast<uint64_t>(t) * 100 + (i % 7));
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    uint64_t bucket_total = 0;
    for (unsigned i = 0; i < Histogram::kBuckets; ++i)
        bucket_total += h.BucketCount(i);
    EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(Histogram, Quantiles)
{
    Registry registry;
    Histogram& h = registry.GetHistogram("test.lat");
    // 99 samples in bucket 3 ([8,15]) and one far outlier in bucket 10.
    for (int i = 0; i < 99; ++i)
        h.Add(10);
    h.Add(1500);
    const RegistrySnapshot snap = registry.Snapshot();
    const HistogramSnapshot& hs = snap.histograms.at("test.lat");
    EXPECT_EQ(hs.count, 100u);
    EXPECT_EQ(hs.p50(), Histogram::BucketUpperBound(3));
    EXPECT_EQ(hs.p99(), Histogram::BucketUpperBound(3));
    EXPECT_EQ(hs.ValueAtQuantile(1.0), Histogram::BucketUpperBound(10));
    EXPECT_EQ(HistogramSnapshot{}.p50(), 0u);
}

TEST(Registry, LookupIsStableAndSnapshotSorted)
{
    Registry registry;
    Counter& a = registry.GetCounter("b.second");
    Counter& b = registry.GetCounter("a.first");
    EXPECT_EQ(&a, &registry.GetCounter("b.second"));
    a.Add(2);
    b.Add(1);
    registry.GetGauge("g").Set(-3);
    const RegistrySnapshot snap = registry.Snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters.begin()->first, "a.first");
    EXPECT_EQ(snap.counters.at("b.second"), 2u);
    EXPECT_EQ(snap.gauges.at("g"), -3);
    EXPECT_NE(snap.ToText().find("b.second"), std::string::npos);
}

TEST(Registry, PrometheusTextExposition)
{
    Registry registry;
    registry.GetCounter("serve.jobs.admitted").Add(7);
    registry.GetGauge("serve.queue.depth").Set(-2);
    Histogram& h = registry.GetHistogram("serve.admit.us");
    h.Add(1);   // bucket 0, le=1
    h.Add(10);  // bucket 3, le=15
    const std::string text = registry.Snapshot().ToPrometheusText();

    EXPECT_NE(text.find("# TYPE atum_serve_jobs_admitted_total counter\n"
                        "atum_serve_jobs_admitted_total 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE atum_serve_queue_depth gauge\n"
                        "atum_serve_queue_depth -2\n"),
              std::string::npos);
    // Histogram buckets are cumulative and end at +Inf == count.
    EXPECT_NE(text.find("atum_serve_admit_us_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("atum_serve_admit_us_bucket{le=\"15\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("atum_serve_admit_us_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("atum_serve_admit_us_sum 11\n"), std::string::npos);
    EXPECT_NE(text.find("atum_serve_admit_us_count 2\n"), std::string::npos);
}

TEST(Registry, SnapshotWhileWritingIsMonotone)
{
    // Counter totals observed by repeated snapshots never decrease while
    // a writer hammers them — the documented torn-free guarantee.
    Registry registry;
    Counter& counter = registry.GetCounter("mono");
    std::thread writer([&counter] {
        for (uint64_t i = 0; i < 200'000; ++i)
            counter.Add(1);
    });
    uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        const uint64_t seen = registry.Snapshot().counters.at("mono");
        EXPECT_GE(seen, last);
        last = seen;
    }
    writer.join();
    EXPECT_EQ(registry.Snapshot().counters.at("mono"), 200'000u);
}

TEST(Registry, ResetZeroesEverything)
{
    Registry registry;
    registry.GetCounter("c").Add(5);
    registry.GetGauge("g").Set(9);
    registry.GetHistogram("h").Add(100);
    registry.Reset();
    const RegistrySnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.counters.at("c"), 0u);
    EXPECT_EQ(snap.gauges.at("g"), 0);
    EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

// The golden schema check: a line produced by the emitter parses as one
// JSON document with exactly the atum-metrics-v1 shape.
TEST(StatsEmitter, JsonlLineMatchesSchema)
{
    Registry registry;
    registry.GetCounter("cpu.instructions").Set(123456);
    registry.GetGauge("tracer.degraded").Set(1);
    Histogram& h = registry.GetHistogram("tracer.drain_us");
    h.Add(5);
    h.Add(300);

    const std::string line =
        SnapshotToJsonLine(registry.Snapshot(), /*seq=*/7,
                           /*ts_ms=*/1700000000123, /*mono_us=*/987654321,
                           "interval");
    auto parsed = util::JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const util::JsonValue& v = *parsed;
    EXPECT_EQ(v.Get("schema").AsString(), "atum-metrics-v1");
    EXPECT_EQ(v.Get("seq").AsU64(), 7u);
    EXPECT_EQ(v.Get("ts_ms").AsU64(), 1700000000123u);
    EXPECT_EQ(v.Get("mono_us").AsU64(), 987654321u);
    EXPECT_EQ(v.Get("phase").AsString(), "interval");
    EXPECT_EQ(v.Get("counters").Get("cpu.instructions").AsU64(), 123456u);
    EXPECT_EQ(v.Get("gauges").Get("tracer.degraded").AsDouble(), 1.0);
    const util::JsonValue& hist =
        v.Get("histograms").Get("tracer.drain_us");
    EXPECT_EQ(hist.Get("count").AsU64(), 2u);
    EXPECT_EQ(hist.Get("sum").AsU64(), 305u);
    EXPECT_TRUE(hist.Get("p50").is_number());
    EXPECT_TRUE(hist.Get("p99").is_number());
    const auto& buckets = hist.Get("buckets").AsArray();
    ASSERT_EQ(buckets.size(), 2u);  // bucket 2 (sample 5), bucket 8 (300)
    EXPECT_EQ(buckets[0].AsArray()[0].AsU64(), 2u);
    EXPECT_EQ(buckets[0].AsArray()[1].AsU64(), 1u);
}

TEST(StatsEmitter, EmitWritesTailableLines)
{
    Registry registry;
    registry.GetCounter("c").Set(1);
    const std::string path =
        testing::TempDir() + "/metrics_emit_test.jsonl";
    StatsEmitterOptions options;
    options.interval_ms = 1000;
    uint64_t fake_now = 1000;
    options.now_ms = [&fake_now] { return fake_now; };
    auto emitter = StatsEmitter::Open(path, registry, options);
    ASSERT_TRUE(emitter.ok()) << emitter.status().ToString();

    (*emitter)->Emit("start");
    (*emitter)->MaybeEmit();  // same ms: suppressed by the interval
    fake_now += 250;
    (*emitter)->MaybeEmit();  // still inside the interval
    fake_now += 1000;
    (*emitter)->MaybeEmit();  // past the interval: emitted
    (*emitter)->Emit("final");
    EXPECT_EQ((*emitter)->lines(), 3u);
    EXPECT_TRUE((*emitter)->status().ok());

    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    int lines = 0;
    uint64_t last_seq = 0;
    std::string last_phase;
    while (std::fgets(buf, sizeof buf, f)) {
        auto parsed = util::JsonValue::Parse(std::string(buf));
        ASSERT_TRUE(parsed.ok()) << "line " << lines << ": "
                                 << parsed.status().ToString();
        last_seq = parsed->Get("seq").AsU64();
        last_phase = parsed->Get("phase").AsString();
        ++lines;
    }
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(lines, 3);
    EXPECT_EQ(last_phase, "final");
    // Suppressed MaybeEmit calls still consume no sequence numbers.
    EXPECT_EQ(last_seq, 2u);
}

TEST(StatsEmitter, OpenFailurePropagates)
{
    Registry registry;
    auto emitter =
        StatsEmitter::Open("/no/such/dir/metrics.jsonl", registry, {});
    EXPECT_FALSE(emitter.ok());
}

}  // namespace
}  // namespace atum::obs
