// Unit tests for the parallel replay engine: thread pool semantics and
// the determinism contract (N threads == 1 thread == the legacy serial
// loop, bit for bit).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/compare.h"
#include "analysis/parallel_profiles.h"
#include "analysis/stack_distance.h"
#include "replay/sweep.h"
#include "replay/thread_pool.h"
#include "trace/record.h"
#include "util/rng.h"

namespace atum::replay {
namespace {

using trace::MakeCtxSwitch;
using trace::MakeFlags;
using trace::Record;
using trace::RecordType;

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    pool.Wait();  // must not hang
    SUCCEED();
}

TEST(ThreadPool, SingleThreadStillDrainsQueue)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i)
        pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, TaskExceptionDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.Submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 20; ++i)
        pool.Submit([&ran] { ++ran; });
    EXPECT_THROW(pool.Wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 20);  // later tasks still ran
    // The pool stays usable after an exception.
    pool.Submit([&ran] { ++ran; });
    pool.Wait();
    EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPool, CancelledTokenAbandonsQueuedWork)
{
    // One worker pinned on a gate guarantees the rest of the queue is
    // still pending when we cancel: those tasks must never run.
    ThreadPool pool(1);
    CancellationToken token;
    std::atomic<bool> gate{false};
    std::atomic<int> ran{0};
    pool.Submit([&gate] {
        while (!gate.load())
            std::this_thread::yield();
    });
    for (int i = 0; i < 10; ++i)
        pool.Submit([&ran] { ++ran; }, &token);
    token.Cancel();
    gate.store(true);
    pool.Wait();
    EXPECT_EQ(ran.load(), 0);
    EXPECT_EQ(pool.abandoned(), 10u);
    // Submitting against an already-cancelled token drops immediately.
    pool.Submit([&ran] { ++ran; }, &token);
    pool.Wait();
    EXPECT_EQ(ran.load(), 0);
    EXPECT_EQ(pool.abandoned(), 11u);
}

TEST(ThreadPool, AbandonPendingDropsOnlyUnstartedWork)
{
    ThreadPool pool(1);
    std::atomic<bool> gate{false};
    std::atomic<int> started{0};
    std::atomic<int> ran{0};
    pool.Submit([&] {
        ++started;
        while (!gate.load())
            std::this_thread::yield();
        ++ran;
    });
    while (started.load() == 0)
        std::this_thread::yield();
    for (int i = 0; i < 7; ++i)
        pool.Submit([&ran] { ++ran; });
    EXPECT_EQ(pool.AbandonPending(), 7u);
    gate.store(true);
    pool.Wait();
    // The in-flight task finished; the queued backlog never ran.
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(pool.abandoned(), 7u);
    // The pool is still usable after a drain.
    pool.Submit([&ran] { ++ran; });
    pool.Wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, CancelRacesSubmitWithoutLossOrDoubleRun)
{
    // The stop/enqueue race the serve daemon hits on SIGTERM: one thread
    // floods the queue while another cancels mid-stream. Under TSan this
    // exercises the token read against concurrent Submit/dequeue; the
    // invariant is every task either ran once or was counted abandoned.
    for (int round = 0; round < 8; ++round) {
        ThreadPool pool(4);
        CancellationToken token;
        std::atomic<int> ran{0};
        constexpr int kTasks = 400;
        std::thread submitter([&] {
            for (int i = 0; i < kTasks; ++i)
                pool.Submit([&ran] { ++ran; }, &token);
        });
        std::thread canceller([&] { token.Cancel(); });
        submitter.join();
        canceller.join();
        pool.Wait();
        EXPECT_EQ(static_cast<std::size_t>(ran.load()) + pool.abandoned(),
                  static_cast<std::size_t>(kTasks));
    }
}

TEST(ThreadPool, AbandonPendingRacesSubmit)
{
    // AbandonPending from one thread against a flood of Submits from
    // another: conservation must hold and Wait must not hang.
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    constexpr int kTasks = 300;
    std::size_t dropped = 0;
    std::thread submitter([&] {
        for (int i = 0; i < kTasks; ++i)
            pool.Submit([&ran] { ++ran; });
    });
    std::thread drainer([&] { dropped = pool.AbandonPending(); });
    submitter.join();
    drainer.join();
    pool.Wait();
    EXPECT_EQ(pool.abandoned(), dropped);
    EXPECT_EQ(static_cast<std::size_t>(ran.load()) + dropped,
              static_cast<std::size_t>(kTasks));
}

TEST(ThreadPool, WaitCanBeCalledRepeatedly)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.Submit([&count] { ++count; });
    pool.Wait();
    pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), 2);
}

/** A multiprogrammed-looking synthetic trace: three processes with
 *  distinct looping footprints, kernel interludes, context switches. */
std::vector<Record>
SyntheticTrace(int refs)
{
    Rng rng(0xa7a7);
    std::vector<Record> records;
    uint16_t pid = 1;
    records.push_back(MakeCtxSwitch(pid, 0));
    for (int i = 0; i < refs; ++i) {
        if (i % 997 == 0 && i > 0) {
            pid = static_cast<uint16_t>(1 + (pid % 3));
            records.push_back(MakeCtxSwitch(pid, 0));
        }
        Record r;
        const uint32_t roll = rng.Below(10);
        if (roll < 5) {
            r.type = RecordType::kIFetch;
            r.addr = 0x1000 * pid + (i % 600) * 4;
        } else if (roll < 8) {
            r.type = RecordType::kRead;
            r.addr = 0x40000 * pid + rng.Below(1u << 14);
        } else {
            r.type = RecordType::kWrite;
            r.addr = 0x40000 * pid + rng.Below(1u << 12);
        }
        const bool kernel = roll == 9;
        if (kernel)
            r.addr |= 0x80000000u;
        r.flags = MakeFlags(kernel, 4);
        records.push_back(r);
    }
    return records;
}

std::vector<SweepConfig>
MixedConfigs()
{
    std::vector<SweepConfig> jobs;
    cache::DriverOptions flush_opts;
    flush_opts.flush_on_switch = true;
    for (uint32_t kib : {1u, 4u, 16u, 64u}) {
        cache::CacheConfig config{.size_bytes = kib << 10,
                                  .block_bytes = 16, .assoc = 2,
                                  .pid_tags = true};
        jobs.push_back(MakeCacheJob(config, {}));
        config.pid_tags = false;
        jobs.push_back(MakeCacheJob(config, flush_opts));
    }
    // Random replacement exercises the per-cache deterministic RNG.
    cache::CacheConfig random_cfg{.size_bytes = 8u << 10, .block_bytes = 16,
                                  .assoc = 4,
                                  .replacement = cache::Replacement::kRandom};
    jobs.push_back(MakeCacheJob(random_cfg, {}));
    cache::HierarchyConfig hier;
    hier.flush_on_switch = true;
    jobs.push_back(MakeHierarchyJob(hier));
    jobs.push_back(MakeTlbJob({.entries = 64}));
    return jobs;
}

void
ExpectIdentical(const SweepResult& a, const SweepResult& b, size_t i)
{
    EXPECT_EQ(a.cache_stats.accesses, b.cache_stats.accesses) << i;
    EXPECT_EQ(a.cache_stats.misses, b.cache_stats.misses) << i;
    EXPECT_EQ(a.cache_stats.writebacks, b.cache_stats.writebacks) << i;
    EXPECT_EQ(a.fed, b.fed) << i;
    EXPECT_EQ(a.filtered, b.filtered) << i;
    EXPECT_EQ(a.l1d_stats.misses, b.l1d_stats.misses) << i;
    EXPECT_EQ(a.l2_stats.misses, b.l2_stats.misses) << i;
    EXPECT_EQ(a.memory_accesses, b.memory_accesses) << i;
    EXPECT_EQ(a.tlb_stats.accesses, b.tlb_stats.accesses) << i;
    EXPECT_EQ(a.tlb_stats.misses, b.tlb_stats.misses) << i;
    // Miss rates are derived from integer counts: bit-identical, not
    // merely close.
    EXPECT_EQ(a.MissRate(), b.MissRate()) << i;
    EXPECT_EQ(a.amat, b.amat) << i;
}

TEST(SweepRunner, DeterministicAcrossThreadCounts)
{
    const std::vector<Record> records = SyntheticTrace(20000);
    const std::vector<SweepConfig> jobs = MixedConfigs();
    ASSERT_GE(jobs.size(), 8u);

    // Legacy serial loop is the reference.
    std::vector<SweepResult> serial;
    for (const SweepConfig& job : jobs)
        serial.push_back(ReplayOne(records, job));

    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        const auto results = SweepRunner(threads).Run(records, jobs);
        ASSERT_EQ(results.size(), jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i)
            ExpectIdentical(results[i], serial[i], i);
    }
}

TEST(SweepRunner, MatchesLegacyAnalysisSweep)
{
    // The SweepRunner must agree with analysis::SweepCacheSize, the
    // serial helper the benches used before the parallel engine.
    const std::vector<Record> records = SyntheticTrace(10000);
    cache::CacheConfig base{.block_bytes = 16, .assoc = 1};
    const std::vector<uint32_t> sizes = {1024, 4096, 16384, 65536};
    const auto legacy =
        analysis::SweepCacheSize(records, sizes, base, {});

    std::vector<SweepConfig> jobs;
    for (uint32_t size : sizes) {
        base.size_bytes = size;
        jobs.push_back(MakeCacheJob(base, {}));
    }
    const auto results = SweepRunner(4).Run(records, jobs);
    for (size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_EQ(results[i].cache_stats.accesses, legacy[i].accesses) << i;
        EXPECT_EQ(results[i].MissRate(), legacy[i].miss_rate) << i;
    }
}

TEST(SweepRunner, EmptyConfigListAndEmptyTrace)
{
    EXPECT_TRUE(SweepRunner(2).Run(SyntheticTrace(100), {}).empty());
    const auto results =
        SweepRunner(2).Run({}, {MakeCacheJob({.size_bytes = 1024})});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].cache_stats.accesses, 0u);
}

TEST(SweepRunner, ResultsStayInInputOrder)
{
    const std::vector<Record> records = SyntheticTrace(2000);
    std::vector<SweepConfig> jobs;
    for (uint32_t kib : {64u, 1u, 16u, 4u})  // deliberately unsorted
        jobs.push_back(MakeCacheJob({.size_bytes = kib << 10}));
    const auto results = SweepRunner(4).Run(records, jobs);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].label, jobs[0].label);
    EXPECT_EQ(results[1].label, jobs[1].label);
    // Bigger cache can't miss more on the same LRU-friendly stream.
    EXPECT_LE(results[0].cache_stats.misses, results[1].cache_stats.misses);
}

TEST(SweepRunner, BadConfigErrorsItsRowOnly)
{
    const std::vector<Record> records = SyntheticTrace(5000);
    std::vector<SweepConfig> jobs;
    jobs.push_back(MakeCacheJob(
        {.size_bytes = 16u << 10, .block_bytes = 16, .assoc = 1}));
    // 17K is not a power of two: constructing this Cache would Fatal.
    jobs.push_back(MakeCacheJob(
        {.size_bytes = 17u << 10, .block_bytes = 16, .assoc = 1}, {},
        "bad-cache"));
    jobs.push_back(MakeTlbJob({.entries = 63}, "bad-tlb"));
    cache::HierarchyConfig hier;
    hier.l2.assoc = 3;  // 4096 blocks do not divide into 3 ways
    jobs.push_back(MakeHierarchyJob(hier, "bad-hier"));
    jobs.push_back(MakeTlbJob({.entries = 64}));

    const auto results = SweepRunner(2).Run(records, jobs);
    ASSERT_EQ(results.size(), 5u);

    // Healthy rows are untouched by their neighbors' failures.
    EXPECT_TRUE(results[0].status.ok());
    EXPECT_GT(results[0].cache_stats.accesses, 0u);
    EXPECT_TRUE(results[4].status.ok());
    EXPECT_GT(results[4].tlb_stats.accesses, 0u);

    // Bad rows carry their error and zeroed statistics, labels intact.
    EXPECT_EQ(results[1].status.code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_EQ(results[1].cache_stats.accesses, 0u);
    EXPECT_EQ(results[1].label, "bad-cache");
    EXPECT_EQ(results[2].status.code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_EQ(results[2].label, "bad-tlb");
    EXPECT_FALSE(results[3].status.ok());
    EXPECT_NE(results[3].status.message().find("l2"), std::string::npos);
}

TEST(SweepRunner, ReplayOneValidatesBeforeConstructing)
{
    const SweepResult result =
        ReplayOne({}, MakeCacheJob({.size_bytes = 1u << 10,
                                    .block_bytes = 2048}));
    EXPECT_EQ(result.status.code(), util::StatusCode::kInvalidArgument);
}

TEST(PerProcessProfiles, ParallelMatchesSerialSubstreams)
{
    const std::vector<Record> records = SyntheticTrace(20000);
    analysis::ProcessProfileOptions options;
    options.capacities = {16, 256, 4096};

    const auto one = analysis::PerProcessStackProfiles(records, options, 1);
    const auto four = analysis::PerProcessStackProfiles(records, options, 4);
    ASSERT_EQ(one.size(), four.size());
    ASSERT_GE(one.size(), 3u);  // kernel + three user pids
    for (size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].pid, four[i].pid);
        EXPECT_EQ(one[i].accesses, four[i].accesses);
        EXPECT_EQ(one[i].cold_misses, four[i].cold_misses);
        EXPECT_EQ(one[i].distinct_blocks, four[i].distinct_blocks);
        EXPECT_EQ(one[i].misses_at_capacity, four[i].misses_at_capacity);
    }

    // Cross-check one pid against a hand-built serial analyzer.
    const uint16_t pid = one[1].pid;
    analysis::StackDistanceAnalyzer sd(0);
    uint16_t current = 0;
    for (const Record& r : records) {
        if (r.type == RecordType::kCtxSwitch) {
            current = r.info;
            continue;
        }
        if (!r.IsMemory() || r.type == RecordType::kPte || r.kernel())
            continue;
        if (current == pid)
            sd.TouchBlock(r.addr >> options.block_shift);
    }
    EXPECT_EQ(one[1].accesses, sd.total_accesses());
    EXPECT_EQ(one[1].cold_misses, sd.cold_misses());
    EXPECT_EQ(one[1].misses_at_capacity[1], sd.MissesForCapacity(256));
}

TEST(PerProcessProfiles, KernelExclusionDropsPidZero)
{
    const std::vector<Record> records = SyntheticTrace(5000);
    analysis::ProcessProfileOptions options;
    options.include_kernel = false;
    const auto profiles =
        analysis::PerProcessStackProfiles(records, options, 2);
    for (const auto& p : profiles)
        EXPECT_NE(p.pid, 0);
}

}  // namespace
}  // namespace atum::replay
