// Unit tests for the util library: bit ops, RNG determinism, statistics
// accumulators, and the table printer.

#include <gtest/gtest.h>

#include "util/bitops.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace atum {
namespace {

TEST(Bitops, PowerOfTwo)
{
    EXPECT_TRUE(IsPowerOfTwo(1));
    EXPECT_TRUE(IsPowerOfTwo(2));
    EXPECT_TRUE(IsPowerOfTwo(512));
    EXPECT_TRUE(IsPowerOfTwo(1ull << 40));
    EXPECT_FALSE(IsPowerOfTwo(0));
    EXPECT_FALSE(IsPowerOfTwo(3));
    EXPECT_FALSE(IsPowerOfTwo(513));
}

TEST(Bitops, Log2Floor)
{
    EXPECT_EQ(Log2Floor(1), 0u);
    EXPECT_EQ(Log2Floor(2), 1u);
    EXPECT_EQ(Log2Floor(3), 1u);
    EXPECT_EQ(Log2Floor(512), 9u);
    EXPECT_EQ(Log2Floor(1ull << 33), 33u);
}

TEST(Bitops, Align)
{
    EXPECT_EQ(AlignDown(513, 512), 512u);
    EXPECT_EQ(AlignDown(512, 512), 512u);
    EXPECT_EQ(AlignUp(513, 512), 1024u);
    EXPECT_EQ(AlignUp(512, 512), 512u);
    EXPECT_EQ(AlignUp(0, 512), 0u);
}

TEST(Bitops, BitsExtract)
{
    EXPECT_EQ(Bits(0xdeadbeef, 31, 0), 0xdeadbeefu);
    EXPECT_EQ(Bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(Bits(0xdeadbeef, 3, 0), 0xfu);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(SignExtend(0x7f, 8), 127);
    EXPECT_EQ(SignExtend(0x80, 8), -128);
    EXPECT_EQ(SignExtend(0xff, 8), -1);
    EXPECT_EQ(SignExtend(0xffff, 16), -1);
    EXPECT_EQ(SignExtend(0x8000, 16), -32768);
    EXPECT_EQ(SignExtend(5, 16), 5);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.Next64(), b.Next64());
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.Below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const uint32_t v = r.Range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.NextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BelowZeroPanics)
{
    Rng r(1);
    EXPECT_DEATH(r.Below(0), "bound 0");
}

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, Basic)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 6.0})
        s.Add(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_NEAR(s.stddev(), 1.632993, 1e-5);
}

TEST(Log2Histogram, Buckets)
{
    Log2Histogram h;
    h.Add(0);
    h.Add(1);
    h.Add(2);
    h.Add(3);
    h.Add(1024);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.BucketCount(0), 2u);  // 0 and 1
    EXPECT_EQ(h.BucketCount(1), 2u);  // 2 and 3
    EXPECT_EQ(h.BucketCount(10), 1u);
    EXPECT_EQ(h.BucketCount(5), 0u);
}

TEST(CounterSet, AddAndGet)
{
    CounterSet c;
    c.Add("a");
    c.Add("a", 4);
    c.Add("b");
    EXPECT_EQ(c.Get("a"), 5u);
    EXPECT_EQ(c.Get("b"), 1u);
    EXPECT_EQ(c.Get("missing"), 0u);
}

TEST(Table, Render)
{
    Table t({"name", "value"});
    t.AddRow({"x", "1"});
    t.AddRow({"longer", "2.5"});
    const std::string s = t.ToString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_EQ(t.NumRows(), 2u);
}

TEST(Table, Csv)
{
    Table t({"a", "b"});
    t.AddRow({"1", "2"});
    EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(Table::Fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::Fmt(2.0, 0), "2");
}

TEST(Table, WrongArityPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.AddRow({"only-one"}), "cells");
}

TEST(Crc32c, MatchesCheckValue)
{
    // RFC 3720's CRC32C check value for "123456789".
    EXPECT_EQ(util::Crc32c("123456789", 9), 0xE3069283u);
    EXPECT_EQ(util::Crc32c("", 0), 0u);
}

TEST(Crc32c, ExtendComposes)
{
    const char* s = "123456789";
    uint32_t crc = util::Crc32cExtend(0, s, 4);
    crc = util::Crc32cExtend(crc, s + 4, 5);
    EXPECT_EQ(crc, util::Crc32c(s, 9));
}

TEST(Crc32c, DetectsSingleBitFlip)
{
    uint8_t data[64] = {0};
    for (size_t i = 0; i < sizeof data; ++i)
        data[i] = static_cast<uint8_t>(i * 7);
    const uint32_t clean = util::Crc32c(data, sizeof data);
    for (int bit = 0; bit < 8; ++bit) {
        data[13] ^= static_cast<uint8_t>(1 << bit);
        EXPECT_NE(util::Crc32c(data, sizeof data), clean);
        data[13] ^= static_cast<uint8_t>(1 << bit);
    }
}

TEST(Status, OkAndErrors)
{
    EXPECT_TRUE(util::OkStatus().ok());
    EXPECT_EQ(util::OkStatus().ToString(), "ok");

    const util::Status s = util::DataLoss("lost ", 42, " records");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), util::StatusCode::kDataLoss);
    EXPECT_EQ(s.message(), "lost 42 records");
    EXPECT_EQ(s.ToString(), "data-loss: lost 42 records");
}

TEST(Status, StatusOrHoldsValueOrStatus)
{
    util::StatusOr<int> ok_value(7);
    ASSERT_TRUE(ok_value.ok());
    EXPECT_EQ(*ok_value, 7);
    EXPECT_EQ(ok_value.value(), 7);

    util::StatusOr<int> err(util::NotFound("nope"));
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.status().code(), util::StatusCode::kNotFound);
}

TEST(StatusDeath, ValueOfErrorPanics)
{
    util::StatusOr<int> err(util::NotFound("nope"));
    EXPECT_DEATH(err.value(), "nope");
}

TEST(Status, ExitCodesFollowTheToolContract)
{
    EXPECT_EQ(util::ExitCodeFor(util::OkStatus()), util::kExitOk);
    EXPECT_EQ(util::ExitCodeFor(util::NotFound("x")), util::kExitIo);
    EXPECT_EQ(util::ExitCodeFor(util::IoError("x")), util::kExitIo);
    EXPECT_EQ(util::ExitCodeFor(util::Unavailable("x")),
              util::kExitUnavailable);
    EXPECT_EQ(util::ExitCodeFor(util::ResourceExhausted("x")),
              util::kExitResourceExhausted);
    EXPECT_EQ(util::ExitCodeFor(util::DataLoss("x")), util::kExitCorrupt);
    EXPECT_EQ(util::ExitCodeFor(util::InvalidArgument("x")),
              util::kExitCorrupt);
    EXPECT_EQ(util::ExitCodeFor(util::InternalError("x")), util::kExitError);
    EXPECT_EQ(util::StatusCodeName(util::StatusCode::kResourceExhausted),
              std::string("resource-exhausted"));
}

}  // namespace
}  // namespace atum
