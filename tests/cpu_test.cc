// Unit tests for the executor: instruction semantics with the MMU off
// (identity translation, kernel mode), covering data movement, arithmetic,
// flags, addressing-mode side effects, control transfer, and MOVC3.

#include <gtest/gtest.h>

#include <memory>

#include "assembler/assembler.h"
#include "cpu/machine.h"

namespace atum::cpu {
namespace {

using assembler::Abs;
using assembler::AbsRef;
using assembler::Assembler;
using assembler::Dec;
using assembler::Def;
using assembler::Disp;
using assembler::DispDef;
using assembler::Imm;
using assembler::Inc;
using assembler::Label;
using assembler::Program;
using assembler::R;
using assembler::Ref;
using isa::Opcode;

constexpr uint32_t kCodeBase = 0x1000;
constexpr uint32_t kStackTop = 0x8000;
constexpr uint32_t kDataBase = 0x9000;

class CpuTest : public ::testing::Test
{
  protected:
    CpuTest()
    {
        Machine::Config config;
        config.mem_bytes = 256 * kPageBytes;  // 128 KiB
        machine_ = std::make_unique<Machine>(config);
        machine_->set_reg(isa::kRegSp, kStackTop);
    }

    /** Assembles `build`'s output at kCodeBase and runs it to HALT. */
    void RunProgram(const std::function<void(Assembler&)>& build,
                    uint64_t max_instructions = 100000)
    {
        Assembler a(kCodeBase);
        build(a);
        a.Emit(Opcode::kHalt);
        Program p = a.Finish();
        machine_->memory().WriteBlock(p.origin, p.bytes.data(), p.size());
        machine_->set_pc(p.origin);
        const auto result = machine_->Run(max_instructions);
        ASSERT_EQ(result.reason, Machine::StopReason::kHalted)
            << "program did not halt";
    }

    Machine& m() { return *machine_; }

    std::unique_ptr<Machine> machine_;
};

TEST_F(CpuTest, MovlImmediateToRegister)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0xdeadbeef), R(3)});
    });
    EXPECT_EQ(m().reg(3), 0xdeadbeefu);
    EXPECT_TRUE(m().psl().n);
    EXPECT_FALSE(m().psl().z);
}

TEST_F(CpuTest, MovlZeroSetsZ)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0), R(1)});
    });
    EXPECT_TRUE(m().psl().z);
    EXPECT_FALSE(m().psl().n);
}

TEST_F(CpuTest, MemoryRoundTrip)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(1234), Abs(kDataBase)});
        a.Emit(Opcode::kMovl, {Abs(kDataBase), R(5)});
    });
    EXPECT_EQ(m().reg(5), 1234u);
    EXPECT_EQ(m().memory().Read32(kDataBase), 1234u);
}

TEST_F(CpuTest, ByteOpsPreserveUpperRegisterBits)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x11223344), R(2)});
        a.Emit(Opcode::kMovb, {Imm(0x99), R(2)});
    });
    EXPECT_EQ(m().reg(2), 0x11223399u);
}

TEST_F(CpuTest, Movzbl)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovb, {Imm(0xfe), Abs(kDataBase)});
        a.Emit(Opcode::kMovzbl, {Abs(kDataBase), R(1)});
    });
    EXPECT_EQ(m().reg(1), 0xfeu);
    EXPECT_FALSE(m().psl().n);
}

TEST_F(CpuTest, AutoIncrementAndDecrement)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(kDataBase), R(1)});
        a.Emit(Opcode::kMovl, {Imm(7), Inc(1)});
        a.Emit(Opcode::kMovl, {Imm(8), Inc(1)});
        a.Emit(Opcode::kMovl, {Imm(9), Dec(1)});  // overwrites the 8
    });
    EXPECT_EQ(m().memory().Read32(kDataBase), 7u);
    EXPECT_EQ(m().memory().Read32(kDataBase + 4), 9u);
    EXPECT_EQ(m().reg(1), kDataBase + 4);
}

TEST_F(CpuTest, ByteAutoIncrementStepsByOne)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(kDataBase), R(1)});
        a.Emit(Opcode::kMovb, {Imm(0xaa), Inc(1)});
        a.Emit(Opcode::kMovb, {Imm(0xbb), Inc(1)});
    });
    EXPECT_EQ(m().memory().Read8(kDataBase), 0xaa);
    EXPECT_EQ(m().memory().Read8(kDataBase + 1), 0xbb);
    EXPECT_EQ(m().reg(1), kDataBase + 2);
}

TEST_F(CpuTest, DisplacementAddressing)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(kDataBase + 16), R(2)});
        a.Emit(Opcode::kMovl, {Imm(77), Disp(-16, 2)});
        a.Emit(Opcode::kMovl, {Imm(88), Disp(1000, 2)});
    });
    EXPECT_EQ(m().memory().Read32(kDataBase), 77u);
    EXPECT_EQ(m().memory().Read32(kDataBase + 1016), 88u);
}

TEST_F(CpuTest, DisplacementDeferred)
{
    RunProgram([](Assembler& a) {
        // mem[kDataBase] = kDataBase+0x20 (a pointer); then store through it.
        a.Emit(Opcode::kMovl, {Imm(kDataBase + 0x20), Abs(kDataBase)});
        a.Emit(Opcode::kMovl, {Imm(kDataBase), R(3)});
        a.Emit(Opcode::kMovl, {Imm(555), DispDef(0, 3)});
    });
    EXPECT_EQ(m().memory().Read32(kDataBase + 0x20), 555u);
}

TEST_F(CpuTest, PcRelativeLoad)
{
    RunProgram([](Assembler& a) {
        Label data = a.NewLabel("data");
        Label code = a.NewLabel("code");
        a.Emit(Opcode::kBrb, {}, code);
        a.Bind(data);
        a.Long(0xcafef00d);
        a.Bind(code);
        a.Emit(Opcode::kMovl, {Ref(data), R(4)});
    });
    EXPECT_EQ(m().reg(4), 0xcafef00du);
}

TEST_F(CpuTest, MovalTakesAddress)
{
    RunProgram([](Assembler& a) {
        Label data = a.NewLabel("data");
        Label code = a.NewLabel("code");
        a.Emit(Opcode::kBrb, {}, code);
        a.Bind(data);
        a.Long(1);
        a.Bind(code);
        a.Emit(Opcode::kMoval, {Ref(data), R(6)});
    });
    EXPECT_EQ(m().reg(6), kCodeBase + 2);
}

TEST_F(CpuTest, AddSubFlags)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x7fffffff), R(1)});
        a.Emit(Opcode::kAddl2, {Imm(1), R(1)});
    });
    EXPECT_EQ(m().reg(1), 0x80000000u);
    EXPECT_TRUE(m().psl().n);
    EXPECT_TRUE(m().psl().v);  // signed overflow
    EXPECT_FALSE(m().psl().c);
}

TEST_F(CpuTest, SubBorrowSetsCarry)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(1), R(1)});
        a.Emit(Opcode::kSubl2, {Imm(2), R(1)});  // r1 = 1 - 2
    });
    EXPECT_EQ(m().reg(1), 0xffffffffu);
    EXPECT_TRUE(m().psl().c);
    EXPECT_TRUE(m().psl().n);
}

TEST_F(CpuTest, ThreeOperandForms)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(10), R(1)});
        a.Emit(Opcode::kMovl, {Imm(3), R(2)});
        a.Emit(Opcode::kAddl3, {R(1), R(2), R(3)});   // r3 = 13
        a.Emit(Opcode::kSubl3, {R(2), R(1), R(4)});   // r4 = r1 - r2 = 7
        a.Emit(Opcode::kMull3, {R(1), R(2), R(5)});   // r5 = 30
        a.Emit(Opcode::kDivl3, {R(2), R(1), R(6)});   // r6 = r1 / r2 = 3
    });
    EXPECT_EQ(m().reg(3), 13u);
    EXPECT_EQ(m().reg(4), 7u);
    EXPECT_EQ(m().reg(5), 30u);
    EXPECT_EQ(m().reg(6), 3u);
}

TEST_F(CpuTest, MulOverflowSetsV)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x10000), R(1)});
        a.Emit(Opcode::kMull2, {R(1), R(1)});
    });
    EXPECT_EQ(m().reg(1), 0u);
    EXPECT_TRUE(m().psl().v);
}

TEST_F(CpuTest, NegativeDivisionTruncatesTowardZero)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(static_cast<uint32_t>(-7)), R(1)});
        a.Emit(Opcode::kDivl3, {Imm(2), R(1), R(2)});  // -7 / 2 = -3
    });
    EXPECT_EQ(static_cast<int32_t>(m().reg(2)), -3);
}

TEST_F(CpuTest, IncDecl)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(5), R(1)});
        a.Emit(Opcode::kIncl, {R(1)});
        a.Emit(Opcode::kMovl, {Imm(1), R(2)});
        a.Emit(Opcode::kDecl, {R(2)});
    });
    EXPECT_EQ(m().reg(1), 6u);
    EXPECT_EQ(m().reg(2), 0u);
    EXPECT_TRUE(m().psl().z);
}

TEST_F(CpuTest, MneglAndClr)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(5), R(1)});
        a.Emit(Opcode::kMnegl, {R(1), R(2)});
        a.Emit(Opcode::kMovl, {Imm(3), R(3)});
        a.Emit(Opcode::kClrl, {R(3)});
    });
    EXPECT_EQ(static_cast<int32_t>(m().reg(2)), -5);
    EXPECT_EQ(m().reg(3), 0u);
}

TEST_F(CpuTest, LogicalOps)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x0f0f), R(1)});
        a.Emit(Opcode::kBisl2, {Imm(0xf000), R(1)});     // or
        a.Emit(Opcode::kMovl, {Imm(0xffff), R(2)});
        a.Emit(Opcode::kBicl2, {Imm(0x00ff), R(2)});     // and-not
        a.Emit(Opcode::kMovl, {Imm(0xff00), R(3)});
        a.Emit(Opcode::kXorl2, {Imm(0x0ff0), R(3)});
        a.Emit(Opcode::kBisl3, {Imm(1), R(1), R(4)});
        a.Emit(Opcode::kBicl3, {Imm(0xff), R(2), R(5)});
        a.Emit(Opcode::kXorl3, {Imm(0xf), R(3), R(6)});
    });
    EXPECT_EQ(m().reg(1), 0xff0fu);
    EXPECT_EQ(m().reg(2), 0xff00u);
    EXPECT_EQ(m().reg(3), 0xf0f0u);
    EXPECT_EQ(m().reg(4), 0xff0fu | 1u);
    EXPECT_EQ(m().reg(5), 0xff00u);
    EXPECT_EQ(m().reg(6), 0xf0ffu);
}

TEST_F(CpuTest, AshlShifts)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(1), R(1)});
        a.Emit(Opcode::kAshl, {Imm(8), R(1), R(2)});           // 256
        a.Emit(Opcode::kMovl, {Imm(0x80000000), R(3)});
        a.Emit(Opcode::kAshl, {Imm(0xff /* -1 */), R(3), R(4)});  // asr
        a.Emit(Opcode::kMovl, {Imm(256), R(5)});
        a.Emit(Opcode::kAshl, {Imm(0xf8 /* -8 */), R(5), R(6)});
    });
    EXPECT_EQ(m().reg(2), 256u);
    EXPECT_EQ(m().reg(4), 0xc0000000u);  // arithmetic shift keeps the sign
    EXPECT_EQ(m().reg(6), 1u);
}

TEST_F(CpuTest, CompareAndConditionalBranches)
{
    RunProgram([](Assembler& a) {
        // r1 = (3 < 5 signed) ? 1 : 0 via blss.
        Label less = a.NewLabel("less");
        Label after = a.NewLabel("after");
        a.Emit(Opcode::kClrl, {R(1)});
        a.Emit(Opcode::kCmpl, {Imm(3), Imm(5)});
        a.Emit(Opcode::kBlss, {}, less);
        a.Emit(Opcode::kBrb, {}, after);
        a.Bind(less);
        a.Emit(Opcode::kMovl, {Imm(1), R(1)});
        a.Bind(after);
        // r2 = (-1 < 1 unsigned) ? 1 : 0 (it is not: 0xffffffff > 1).
        Label lssu = a.NewLabel("lssu");
        Label after2 = a.NewLabel("after2");
        a.Emit(Opcode::kClrl, {R(2)});
        a.Emit(Opcode::kCmpl, {Imm(0xffffffff), Imm(1)});
        a.Emit(Opcode::kBlssu, {}, lssu);
        a.Emit(Opcode::kBrb, {}, after2);
        a.Bind(lssu);
        a.Emit(Opcode::kMovl, {Imm(1), R(2)});
        a.Bind(after2);
    });
    EXPECT_EQ(m().reg(1), 1u);
    EXPECT_EQ(m().reg(2), 0u);
}

TEST_F(CpuTest, SobgtrLoop)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(10), R(1)});
        a.Emit(Opcode::kClrl, {R(2)});
        Label loop = a.Here("loop");
        a.Emit(Opcode::kAddl2, {R(1), R(2)});
        a.Emit(Opcode::kSobgtr, {R(1)}, loop);
    });
    // Sum of 10..1 = 55.
    EXPECT_EQ(m().reg(2), 55u);
    EXPECT_EQ(m().reg(1), 0u);
}

TEST_F(CpuTest, AoblssLoop)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kClrl, {R(1)});
        a.Emit(Opcode::kClrl, {R(2)});
        Label loop = a.Here("loop");
        a.Emit(Opcode::kIncl, {R(2)});
        a.Emit(Opcode::kAoblss, {Imm(5), R(1)}, loop);
    });
    EXPECT_EQ(m().reg(1), 5u);
    EXPECT_EQ(m().reg(2), 5u);
}

TEST_F(CpuTest, PushAndStack)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kPushl, {Imm(11)});
        a.Emit(Opcode::kPushl, {Imm(22)});
        a.Emit(Opcode::kMovl, {Inc(isa::kRegSp), R(1)});  // pop 22
        a.Emit(Opcode::kMovl, {Inc(isa::kRegSp), R(2)});  // pop 11
    });
    EXPECT_EQ(m().reg(1), 22u);
    EXPECT_EQ(m().reg(2), 11u);
    EXPECT_EQ(m().reg(isa::kRegSp), kStackTop);
}

TEST_F(CpuTest, JsbRsb)
{
    RunProgram([](Assembler& a) {
        Label sub = a.NewLabel("sub");
        Label over = a.NewLabel("over");
        a.Emit(Opcode::kJsb, {Ref(sub)});
        a.Emit(Opcode::kBrb, {}, over);
        a.Bind(sub);
        a.Emit(Opcode::kMovl, {Imm(42), R(1)});
        a.Emit(Opcode::kRsb);
        a.Bind(over);
        a.Emit(Opcode::kMovl, {Imm(7), R(2)});
    });
    EXPECT_EQ(m().reg(1), 42u);
    EXPECT_EQ(m().reg(2), 7u);
    EXPECT_EQ(m().reg(isa::kRegSp), kStackTop);
}

TEST_F(CpuTest, CallsRetWithArguments)
{
    RunProgram([](Assembler& a) {
        Label fn = a.NewLabel("fn");
        Label over = a.NewLabel("over");
        // Push two args, call; callee reads args relative to FP.
        a.Emit(Opcode::kPushl, {Imm(30)});
        a.Emit(Opcode::kPushl, {Imm(12)});
        a.Emit(Opcode::kCalls, {Imm(2), Ref(fn)});
        a.Emit(Opcode::kBrb, {}, over);
        a.Bind(fn);
        // Frame: narg at 0(fp), old fp at 4, ret pc at 8, args at 12, 16.
        a.Emit(Opcode::kAddl3,
               {Disp(12, isa::kRegFp), Disp(16, isa::kRegFp), R(1)});
        a.Emit(Opcode::kRet);
        a.Bind(over);
        a.Emit(Opcode::kMovl, {Imm(1), R(2)});
    });
    EXPECT_EQ(m().reg(1), 42u);
    EXPECT_EQ(m().reg(2), 1u);
    // RET pops the frame *and* the arguments.
    EXPECT_EQ(m().reg(isa::kRegSp), kStackTop);
}

TEST_F(CpuTest, Movc3CopiesAndSetsRegisters)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x61626364), Abs(kDataBase)});
        a.Emit(Opcode::kMovl, {Imm(0x65666768), Abs(kDataBase + 4)});
        a.Emit(Opcode::kMovc3, {Imm(8), Abs(kDataBase), Abs(kDataBase + 64)});
    });
    EXPECT_EQ(m().memory().Read32(kDataBase + 64), 0x61626364u);
    EXPECT_EQ(m().memory().Read32(kDataBase + 68), 0x65666768u);
    EXPECT_EQ(m().reg(0), 0u);
    EXPECT_EQ(m().reg(1), kDataBase + 8);
    EXPECT_EQ(m().reg(3), kDataBase + 64 + 8);
    EXPECT_TRUE(m().psl().z);
}

TEST_F(CpuTest, JmpAbsolute)
{
    RunProgram([](Assembler& a) {
        Label target = a.NewLabel("target");
        a.Emit(Opcode::kJmp, {AbsRef(target)});
        a.Emit(Opcode::kMovl, {Imm(99), R(1)});  // skipped
        a.Bind(target);
        a.Emit(Opcode::kMovl, {Imm(5), R(2)});
    });
    EXPECT_EQ(m().reg(1), 0u);
    EXPECT_EQ(m().reg(2), 5u);
}

TEST_F(CpuTest, BrwLongBranch)
{
    RunProgram([](Assembler& a) {
        Label far = a.NewLabel("far");
        a.Emit(Opcode::kBrw, {}, far);
        for (int i = 0; i < 100; ++i)
            a.Emit(Opcode::kMovl, {Imm(1), R(1)});  // skipped
        a.Bind(far);
        a.Emit(Opcode::kMovl, {Imm(2), R(2)});
    });
    EXPECT_EQ(m().reg(1), 0u);
    EXPECT_EQ(m().reg(2), 2u);
}

TEST_F(CpuTest, TstAndBit)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x80), R(1)});
        a.Emit(Opcode::kBitl, {Imm(0x80), R(1)});
        a.Emit(Opcode::kMovl, {Imm(0), R(2)});
        a.Emit(Opcode::kTstl, {R(2)});
    });
    EXPECT_TRUE(m().psl().z);  // from the final TSTL
}

TEST_F(CpuTest, CmpbSignedAndUnsigned)
{
    RunProgram([](Assembler& a) {
        // 0x80 as signed byte is -128, less than 1; unsigned it is greater.
        Label signed_less = a.NewLabel("sl");
        Label next = a.NewLabel("next");
        a.Emit(Opcode::kClrl, {R(1)});
        a.Emit(Opcode::kClrl, {R(2)});
        a.Emit(Opcode::kCmpb, {Imm(0x80), Imm(1)});
        a.Emit(Opcode::kBlss, {}, signed_less);
        a.Emit(Opcode::kBrb, {}, next);
        a.Bind(signed_less);
        a.Emit(Opcode::kMovl, {Imm(1), R(1)});
        a.Bind(next);
        a.Emit(Opcode::kCmpb, {Imm(0x80), Imm(1)});
        Label not_lssu = a.NewLabel("nlu");
        a.Emit(Opcode::kBlssu, {}, not_lssu);
        a.Emit(Opcode::kMovl, {Imm(1), R(2)});  // taken: unsigned >=
        a.Bind(not_lssu);
    });
    EXPECT_EQ(m().reg(1), 1u);
    EXPECT_EQ(m().reg(2), 1u);
}

TEST_F(CpuTest, CyclesAdvance)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(1), R(1)});
    });
    EXPECT_GT(m().ucycles(), 0u);
    EXPECT_EQ(m().icount(), 2u);  // movl + halt
}

TEST_F(CpuTest, UnalignedCrossPageAccess)
{
    // A longword access straddling a page boundary must work (two bus
    // cycles in the microcode).
    const uint32_t addr = kDataBase + kPageBytes - 2;
    RunProgram([addr](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x12345678), Abs(addr)});
        a.Emit(Opcode::kMovl, {Abs(addr), R(9)});
    });
    EXPECT_EQ(m().reg(9), 0x12345678u);
    EXPECT_EQ(m().memory().Read32(addr), 0x12345678u);
}

TEST_F(CpuTest, WordMovesAndCompares)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x11223344), R(2)});
        a.Emit(Opcode::kMovw, {Imm(0xbeef), R(2)});  // low 16 only
        a.Emit(Opcode::kMovw, {R(2), Abs(kDataBase)});
        a.Emit(Opcode::kMovzwl, {Abs(kDataBase), R(3)});
    });
    EXPECT_EQ(m().reg(2), 0x1122beefu);
    EXPECT_EQ(m().memory().Read16(kDataBase), 0xbeef);
    EXPECT_EQ(m().reg(3), 0xbeefu);
    EXPECT_FALSE(m().psl().n);  // movzwl clears N
}

TEST_F(CpuTest, CmpwSignedVsUnsigned)
{
    RunProgram([](Assembler& a) {
        Label sl = a.NewLabel("sl");
        Label next = a.NewLabel("next");
        a.Emit(Opcode::kClrl, {R(1)});
        // 0x8000 as a signed word is negative, so signed-less-than 1.
        a.Emit(Opcode::kCmpw, {Imm(0x8000), Imm(1)});
        a.Emit(Opcode::kBlss, {}, sl);
        a.Emit(Opcode::kBrb, {}, next);
        a.Bind(sl);
        a.Emit(Opcode::kMovl, {Imm(1), R(1)});
        a.Bind(next);
        a.Emit(Opcode::kTstw, {Imm(0)});
    });
    EXPECT_EQ(m().reg(1), 1u);
    EXPECT_TRUE(m().psl().z);  // from tstw #0
}

TEST_F(CpuTest, CaselDispatchesThroughTable)
{
    // Direct construction with precomputed displacements.
    Assembler a(kCodeBase);
    a.Emit(Opcode::kMovl, {Imm(1), R(1)});  // selector = 1
    a.Emit(Opcode::kCasel, {R(1), Imm(0), Imm(2)});
    // Table start = here(); entries: case i at table+6 + i*9 (movl is
    // 7 bytes: opcode+spec+imm4+spec, brb 2 bytes -> body is 9 bytes).
    const uint32_t table = a.here() - kCodeBase;
    (void)table;
    a.Byte(6);
    a.Byte(0);  // case 0 -> +6
    a.Byte(15);
    a.Byte(0);  // case 1 -> +15
    a.Byte(24);
    a.Byte(0);  // case 2 -> +24
    Label out = a.NewLabel("out");
    a.Emit(Opcode::kMovl, {Imm(10), R(5)});  // +6: case 0
    a.Emit(Opcode::kBrb, {}, out);
    a.Emit(Opcode::kMovl, {Imm(20), R(5)});  // +15: case 1
    a.Emit(Opcode::kBrb, {}, out);
    a.Emit(Opcode::kMovl, {Imm(30), R(5)});  // +24: case 2
    a.Bind(out);
    a.Emit(Opcode::kHalt);
    assembler::Program p = a.Finish();
    machine_->memory().WriteBlock(p.origin, p.bytes.data(), p.size());
    machine_->set_pc(p.origin);
    ASSERT_EQ(machine_->Run(100).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(m().reg(5), 20u);
}

TEST_F(CpuTest, CaselOutOfRangeFallsPastTable)
{
    Assembler a(kCodeBase);
    a.Emit(Opcode::kMovl, {Imm(7), R(1)});  // selector out of range
    a.Emit(Opcode::kCasel, {R(1), Imm(0), Imm(1)});
    a.Byte(0);
    a.Byte(0);
    a.Byte(0);
    a.Byte(0);  // 2-entry table, never used
    a.Emit(Opcode::kMovl, {Imm(77), R(5)});  // fallthrough
    a.Emit(Opcode::kHalt);
    assembler::Program p = a.Finish();
    machine_->memory().WriteBlock(p.origin, p.bytes.data(), p.size());
    machine_->set_pc(p.origin);
    ASSERT_EQ(machine_->Run(100).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(m().reg(5), 77u);
}

TEST_F(CpuTest, InsqueRemqueMaintainDoublyLinkedQueue)
{
    // Header at kDataBase (self-linked); entries at +0x20 and +0x40.
    const uint32_t head = kDataBase;
    const uint32_t e1 = kDataBase + 0x20;
    const uint32_t e2 = kDataBase + 0x40;
    RunProgram([&](Assembler& a) {
        // Initialize the header to an empty (self-pointing) queue.
        a.Emit(Opcode::kMovl, {Imm(head), Abs(head)});
        a.Emit(Opcode::kMovl, {Imm(head), Abs(head + 4)});
        a.Emit(Opcode::kInsque, {Abs(e1), Abs(head)});
        a.Emit(Opcode::kMovl, {Imm(0), R(6)});
        Label skip = a.NewLabel("skip");
        a.Emit(Opcode::kBneq, {}, skip);   // Z set: queue was empty
        a.Emit(Opcode::kMovl, {Imm(1), R(6)});
        a.Bind(skip);
        a.Emit(Opcode::kInsque, {Abs(e2), Abs(head)});  // e2 at front
        // Remove e1 (the tail) and keep its address in r7.
        a.Emit(Opcode::kRemque, {Abs(e1), R(7)});
    });
    EXPECT_EQ(m().reg(6), 1u);  // first insert saw an empty queue
    EXPECT_EQ(m().reg(7), e1);
    // Queue is now head <-> e2.
    EXPECT_EQ(m().memory().Read32(head), e2);       // head.next
    EXPECT_EQ(m().memory().Read32(e2), head);       // e2.next
    EXPECT_EQ(m().memory().Read32(e2 + 4), head);   // e2.prev
    EXPECT_EQ(m().memory().Read32(head + 4), e2);   // head.prev
}

TEST_F(CpuTest, Cmpc3FindsFirstDifference)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x64636261), Abs(kDataBase)});      // abcd
        a.Emit(Opcode::kMovl, {Imm(0x64586261), Abs(kDataBase + 16)}); // abXd
        a.Emit(Opcode::kCmpc3,
               {Imm(4), Abs(kDataBase), Abs(kDataBase + 16)});
    });
    EXPECT_FALSE(m().psl().z);
    EXPECT_EQ(m().reg(0), 2u);               // mismatch at byte 2 of 4
    EXPECT_EQ(m().reg(1), kDataBase + 2);
    EXPECT_EQ(m().reg(3), kDataBase + 16 + 2);
}

TEST_F(CpuTest, Cmpc3EqualSetsZ)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x11223344), Abs(kDataBase)});
        a.Emit(Opcode::kMovl, {Imm(0x11223344), Abs(kDataBase + 8)});
        a.Emit(Opcode::kCmpc3, {Imm(4), Abs(kDataBase), Abs(kDataBase + 8)});
    });
    EXPECT_TRUE(m().psl().z);
    EXPECT_EQ(m().reg(0), 0u);
}

TEST_F(CpuTest, LoccLocatesByte)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x415a5a5a), Abs(kDataBase)});  // ZZZA
        a.Emit(Opcode::kLocc, {Imm('A'), Imm(4), Abs(kDataBase)});
    });
    EXPECT_FALSE(m().psl().z);
    EXPECT_EQ(m().reg(0), 1u);               // found at the last byte
    EXPECT_EQ(m().reg(1), kDataBase + 3);
}

TEST_F(CpuTest, LoccNotFoundSetsZ)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kClrl, {Abs(kDataBase)});
        a.Emit(Opcode::kLocc, {Imm('A'), Imm(4), Abs(kDataBase)});
    });
    EXPECT_TRUE(m().psl().z);
    EXPECT_EQ(m().reg(0), 0u);
    EXPECT_EQ(m().reg(1), kDataBase + 4);
}

TEST_F(CpuTest, AluGoldenModelSweep)
{
    // Table-driven cross-check of the three-operand ALU instructions and
    // their condition codes against a host-side golden model, over a grid
    // of interesting operand values.
    struct Golden {
        uint32_t result;
        bool n, z, v, c;
        bool valid = true;  // false: skip (trapping case)
    };
    struct OpSpec {
        Opcode op;
        Golden (*model)(uint32_t a, uint32_t b);
    };
    // Operand order matches the guest program below: op s1=a, s2=b, dst.
    static const OpSpec kOps[] = {
        {Opcode::kAddl3,
         [](uint32_t a, uint32_t b) -> Golden {
             const uint32_t r = b + a;
             return {r, (r >> 31) != 0, r == 0,
                     (((b ^ r) & (a ^ r)) >> 31) != 0, r < b};
         }},
        {Opcode::kSubl3,
         [](uint32_t a, uint32_t b) -> Golden {
             const uint32_t r = b - a;  // dif = s2 - s1
             return {r, (r >> 31) != 0, r == 0,
                     (((b ^ a) & (b ^ r)) >> 31) != 0, b < a};
         }},
        {Opcode::kMull3,
         [](uint32_t a, uint32_t b) -> Golden {
             const int64_t wide = static_cast<int64_t>(
                                      static_cast<int32_t>(a)) *
                                  static_cast<int32_t>(b);
             const uint32_t r = static_cast<uint32_t>(wide);
             return {r, (r >> 31) != 0, r == 0,
                     wide != static_cast<int32_t>(r), false};
         }},
        {Opcode::kDivl3,
         [](uint32_t a, uint32_t b) -> Golden {
             if (a == 0)
                 return {0, false, false, false, false, false};  // traps
             if (b == 0x80000000u && a == 0xffffffffu)
                 return {b, true, false, true, false};
             const uint32_t r = static_cast<uint32_t>(
                 static_cast<int32_t>(b) / static_cast<int32_t>(a));
             return {r, (r >> 31) != 0, r == 0, false, false};
         }},
        {Opcode::kBisl3,
         [](uint32_t a, uint32_t b) -> Golden {
             const uint32_t r = b | a;
             return {r, (r >> 31) != 0, r == 0, false, false};
         }},
        {Opcode::kBicl3,
         [](uint32_t a, uint32_t b) -> Golden {
             const uint32_t r = b & ~a;
             return {r, (r >> 31) != 0, r == 0, false, false};
         }},
        {Opcode::kXorl3,
         [](uint32_t a, uint32_t b) -> Golden {
             const uint32_t r = b ^ a;
             return {r, (r >> 31) != 0, r == 0, false, false};
         }},
    };
    static const uint32_t kValues[] = {
        0,          1,          2,          7,          0x7fffffff,
        0x80000000, 0xffffffff, 0xfffffff9, 0x12345678, 0x80000001,
    };

    for (const OpSpec& spec : kOps) {
        for (uint32_t a : kValues) {
            for (uint32_t b : kValues) {
                const Golden want = spec.model(a, b);
                if (!want.valid)
                    continue;
                // Fresh machine per case: no flag leakage between cases.
                Machine::Config config;
                config.mem_bytes = 64 * kPageBytes;
                Machine machine(config);
                Assembler asmr(0x1000);
                asmr.Emit(Opcode::kMovl, {Imm(a), R(1)});
                asmr.Emit(Opcode::kMovl, {Imm(b), R(2)});
                asmr.Emit(spec.op, {R(1), R(2), R(3)});
                asmr.Emit(Opcode::kHalt);
                Program p = asmr.Finish();
                machine.memory().WriteBlock(p.origin, p.bytes.data(),
                                            p.size());
                machine.set_pc(p.origin);
                ASSERT_EQ(machine.Run(10).reason,
                          Machine::StopReason::kHalted);
                const std::string ctx =
                    std::string(isa::GetInstrInfo(spec.op).mnemonic) +
                    "(" + std::to_string(a) + ", " + std::to_string(b) +
                    ")";
                EXPECT_EQ(machine.reg(3), want.result) << ctx;
                EXPECT_EQ(machine.psl().n, want.n) << ctx << " N";
                EXPECT_EQ(machine.psl().z, want.z) << ctx << " Z";
                EXPECT_EQ(machine.psl().v, want.v) << ctx << " V";
                EXPECT_EQ(machine.psl().c, want.c) << ctx << " C";
            }
        }
    }
}

TEST_F(CpuTest, Movc3ZeroLengthIsNoop)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(0x11111111), Abs(kDataBase + 64)});
        a.Emit(Opcode::kMovc3, {Imm(0), Abs(kDataBase), Abs(kDataBase + 64)});
    });
    EXPECT_EQ(m().memory().Read32(kDataBase + 64), 0x11111111u);
    EXPECT_EQ(m().reg(0), 0u);
    EXPECT_EQ(m().reg(1), kDataBase);       // src + 0
    EXPECT_EQ(m().reg(3), kDataBase + 64);  // dst + 0
    EXPECT_TRUE(m().psl().z);
}

TEST_F(CpuTest, Movc3ForwardOverlapPropagates)
{
    // Forward byte-at-a-time copy with dst = src+1 smears the first byte,
    // the documented behaviour of a forward-only microcoded copy.
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kMovb, {Imm(0xab), Abs(kDataBase)});
        a.Emit(Opcode::kMovc3,
               {Imm(4), Abs(kDataBase), Abs(kDataBase + 1)});
    });
    for (uint32_t i = 0; i <= 4; ++i)
        EXPECT_EQ(m().memory().Read8(kDataBase + i), 0xab) << i;
}

TEST_F(CpuTest, LoccZeroLengthNotFound)
{
    RunProgram([](Assembler& a) {
        a.Emit(Opcode::kLocc, {Imm('A'), Imm(0), Abs(kDataBase)});
    });
    EXPECT_TRUE(m().psl().z);
    EXPECT_EQ(m().reg(0), 0u);
    EXPECT_EQ(m().reg(1), kDataBase);
}

TEST_F(CpuTest, RemqueOnSoleEntrySetsZ)
{
    const uint32_t head = kDataBase;
    const uint32_t e1 = kDataBase + 0x20;
    RunProgram([&](Assembler& a) {
        a.Emit(Opcode::kMovl, {Imm(head), Abs(head)});
        a.Emit(Opcode::kMovl, {Imm(head), Abs(head + 4)});
        a.Emit(Opcode::kInsque, {Abs(e1), Abs(head)});
        a.Emit(Opcode::kRemque, {Abs(e1), R(7)});
    });
    EXPECT_TRUE(m().psl().z);  // queue empty again
    EXPECT_EQ(m().memory().Read32(head), head);      // self-linked
    EXPECT_EQ(m().memory().Read32(head + 4), head);
}

}  // namespace
}  // namespace atum::cpu
