// Integration tests for the guest kernel: boot, scheduling, system calls,
// demand paging, and fault isolation — the full-system behaviour whose
// memory references ATUM exists to capture.

#include <gtest/gtest.h>

#include <memory>

#include "assembler/assembler.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "kernel/kernel_builder.h"
#include "kernel/layout.h"

namespace atum::kernel {
namespace {

using assembler::Abs;
using assembler::Assembler;
using assembler::Def;
using assembler::Disp;
using assembler::Imm;
using assembler::Label;
using assembler::R;
using cpu::Machine;
using isa::Opcode;

GuestProgram
PutcExitProgram(char ch)
{
    Assembler a(0);
    a.Emit(Opcode::kMovl, {Imm(static_cast<uint8_t>(ch)), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    GuestProgram gp;
    gp.name = std::string("putc-") + ch;
    gp.program = a.Finish();
    gp.heap_pages = 2;
    gp.stack_pages = 2;
    return gp;
}

std::unique_ptr<Machine>
SmallMachine(uint32_t timer_reload = 2000)
{
    Machine::Config config;
    config.mem_bytes = 1u << 20;  // 1 MiB
    config.timer_reload = timer_reload;
    return std::make_unique<Machine>(config);
}

TEST(KernelLayout, Computes)
{
    const KernelLayout lay = ComputeLayout(2048);
    EXPECT_EQ(lay.scb_pa, 0u);
    EXPECT_EQ(lay.kdata_pa, kPageBytes);
    EXPECT_GT(lay.ktext_pa, lay.s0_table_pa);
    EXPECT_EQ(lay.ktext_va, kS0Base + lay.ktext_pa);
    EXPECT_EQ(lay.PcbPa(1) - lay.PcbPa(0), kPcbStride);
}

TEST(KernelLayoutDeath, TooSmallIsFatal)
{
    EXPECT_DEATH(ComputeLayout(16), "machine too small");
}

TEST(KernelBuilder, ProducesSymbols)
{
    const KernelLayout lay = ComputeLayout(2048);
    assembler::Program p = BuildKernelImage(lay);
    EXPECT_EQ(p.origin, lay.ktext_va);
    for (const char* sym : {"k_start", "k_timer", "k_chmk", "k_pf", "k_acv",
                            "k_fault8", "k_pick_next", "k_kill_common"}) {
        EXPECT_TRUE(p.symbols.count(sym)) << sym;
    }
    EXPECT_LT(p.size(), 4 * kPageBytes);
}

TEST(KernelBoot, SingleProcessRunsAndHalts)
{
    auto machine = SmallMachine();
    BootSystem(*machine, {PutcExitProgram('A')});
    const auto result = machine->Run(1'000'000);
    ASSERT_EQ(result.reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "A");
}

TEST(KernelBoot, ThreeProcessesAllComplete)
{
    auto machine = SmallMachine();
    BootSystem(*machine, {PutcExitProgram('A'), PutcExitProgram('B'),
                          PutcExitProgram('C')});
    const auto result = machine->Run(2'000'000);
    ASSERT_EQ(result.reason, Machine::StopReason::kHalted);
    const std::string& out = machine->console_output();
    EXPECT_EQ(out.size(), 3u);
    EXPECT_NE(out.find('A'), std::string::npos);
    EXPECT_NE(out.find('B'), std::string::npos);
    EXPECT_NE(out.find('C'), std::string::npos);
}

TEST(KernelBoot, GetpidReturnsPid)
{
    // Each process prints '0' + getpid(); pids are 1-based boot order.
    auto make = [] {
        Assembler a(0);
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kGetpid))});
        a.Emit(Opcode::kAddl3, {Imm('0'), R(0), R(1)});
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
        GuestProgram gp;
        gp.name = "pid";
        gp.program = a.Finish();
        gp.heap_pages = 2;
        gp.stack_pages = 2;
        return gp;
    };
    auto machine = SmallMachine();
    BootSystem(*machine, {make(), make()});
    ASSERT_EQ(machine->Run(1'000'000).reason, Machine::StopReason::kHalted);
    const std::string& out = machine->console_output();
    EXPECT_EQ(out.size(), 2u);
    EXPECT_NE(out.find('1'), std::string::npos);
    EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(KernelBoot, DemandPagingServicesHeapTouches)
{
    // Write then read back values across several demand-zero heap pages.
    Assembler a(0);
    Label heap = a.NewLabel("heap");
    a.Emit(Opcode::kMoval, {assembler::Ref(heap), R(2)});
    a.Emit(Opcode::kMovl, {Imm(8), R(3)});  // 8 pages
    Label loop = a.Here("loop");
    a.Emit(Opcode::kMovl, {Imm(0x5a5a5a5a), assembler::Def(2)});
    a.Emit(Opcode::kAddl2, {Imm(kPageBytes), R(2)});
    a.Emit(Opcode::kSobgtr, {R(3)}, loop);
    // Verify one of them and report.
    a.Emit(Opcode::kMoval, {assembler::Ref(heap), R(2)});
    a.Emit(Opcode::kCmpl, {assembler::Def(2), Imm(0x5a5a5a5a)});
    Label good = a.NewLabel("good");
    a.Emit(Opcode::kBeql, {}, good);
    a.Emit(Opcode::kMovl, {Imm('x'), R(1)});
    Label out = a.NewLabel("out");
    a.Emit(Opcode::kBrb, {}, out);
    a.Bind(good);
    a.Emit(Opcode::kMovl, {Imm('y'), R(1)});
    a.Bind(out);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "pager";
    gp.program = a.Finish();
    gp.heap_pages = 16;
    gp.stack_pages = 2;

    auto machine = SmallMachine();
    BootInfo info = BootSystem(*machine, {gp});
    ASSERT_EQ(machine->Run(2'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "y");

    // The kernel's fault counter must show the demand-zero services.
    const uint32_t pf_count = machine->memory().Read32(
        info.layout.kdata_pa + KdataOffsets::kPfCount);
    EXPECT_GE(pf_count, 8u);
}

TEST(KernelBoot, TimerPreemptionInterleavesProcesses)
{
    // Two CPU-bound loops must context-switch; the kernel counts switches.
    auto make = [](char ch) {
        Assembler a(0);
        a.Emit(Opcode::kMovl, {Imm(30000), R(3)});
        Label loop = a.Here("loop");
        a.Emit(Opcode::kSobgtr, {R(3)}, loop);
        a.Emit(Opcode::kMovl, {Imm(static_cast<uint8_t>(ch)), R(1)});
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
        GuestProgram gp;
        gp.name = "spin";
        gp.program = a.Finish();
        gp.heap_pages = 2;
        gp.stack_pages = 2;
        return gp;
    };
    auto machine = SmallMachine(/*timer_reload=*/1000);
    BootInfo info = BootSystem(*machine, {make('a'), make('b')});
    ASSERT_EQ(machine->Run(5'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output().size(), 2u);
    const uint32_t cs_count = machine->memory().Read32(
        info.layout.kdata_pa + KdataOffsets::kCsCount);
    EXPECT_GE(cs_count, 10u);
}

TEST(KernelBoot, YieldSwitchesImmediately)
{
    // Process 1 yields in a loop; process 2 just exits. With a huge timer
    // period the only way both finish is via the yield path.
    auto yielder = [] {
        Assembler a(0);
        a.Emit(Opcode::kMovl, {Imm(5), R(3)});
        Label loop = a.Here("loop");
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kYield))});
        a.Emit(Opcode::kSobgtr, {R(3)}, loop);
        a.Emit(Opcode::kMovl, {Imm('Y'), R(1)});
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
        GuestProgram gp;
        gp.name = "yielder";
        gp.program = a.Finish();
        gp.heap_pages = 2;
        gp.stack_pages = 2;
        return gp;
    };
    auto machine = SmallMachine(/*timer_reload=*/100'000'000);
    BootSystem(*machine, {yielder(), PutcExitProgram('Z')});
    ASSERT_EQ(machine->Run(2'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output().size(), 2u);
}

TEST(KernelBoot, WildAccessKillsProcessOnly)
{
    // Process 1 dereferences a kernel address (ACV); process 2 completes.
    Assembler a(0);
    a.Emit(Opcode::kMovl, {Abs(kS0Base), R(2)});  // user touching S0
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    GuestProgram bad;
    bad.name = "wild";
    bad.program = a.Finish();
    bad.heap_pages = 2;
    bad.stack_pages = 2;

    auto machine = SmallMachine();
    BootSystem(*machine, {bad, PutcExitProgram('O')});
    ASSERT_EQ(machine->Run(2'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "O");
}

TEST(KernelBoot, ReservedInstructionKillsProcess)
{
    Assembler a(0);
    a.Byte(0xff);  // unassigned opcode
    GuestProgram bad;
    bad.name = "resinstr";
    bad.program = a.Finish();
    bad.heap_pages = 2;
    bad.stack_pages = 2;

    auto machine = SmallMachine();
    BootSystem(*machine, {bad, PutcExitProgram('K')});
    ASSERT_EQ(machine->Run(2'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "K");
}

TEST(KernelBoot, PrivilegedInstructionInUserModeKillsProcess)
{
    Assembler a(0);
    a.Emit(Opcode::kHalt);  // privileged in user mode
    GuestProgram bad;
    bad.name = "priv";
    bad.program = a.Finish();
    bad.heap_pages = 2;
    bad.stack_pages = 2;

    auto machine = SmallMachine();
    BootSystem(*machine, {bad, PutcExitProgram('P')});
    ASSERT_EQ(machine->Run(2'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "P");
}

TEST(KernelBoot, DivideByZeroKillsProcess)
{
    Assembler a(0);
    a.Emit(Opcode::kClrl, {R(2)});
    a.Emit(Opcode::kDivl3, {R(2), Imm(10), R(3)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    GuestProgram bad;
    bad.name = "div0";
    bad.program = a.Finish();
    bad.heap_pages = 2;
    bad.stack_pages = 2;

    auto machine = SmallMachine();
    BootSystem(*machine, {bad, PutcExitProgram('D')});
    ASSERT_EQ(machine->Run(2'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "D");
}

TEST(KernelBoot, BrkGrowsAndClampsHeap)
{
    // brk to a huge size must clamp to capacity; the process then touches
    // a page near its (clamped) limit successfully.
    Assembler a(0);
    a.Emit(Opcode::kMovl, {Imm(1u << 20), R(1)});  // absurd page count
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kBrk))});
    a.Emit(Opcode::kMovl, {Imm('B'), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    GuestProgram gp;
    gp.name = "brk";
    gp.program = a.Finish();
    gp.heap_pages = 4;
    gp.stack_pages = 2;

    auto machine = SmallMachine();
    BootSystem(*machine, {gp});
    ASSERT_EQ(machine->Run(1'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "B");
}

TEST(KernelBoot, MailboxSendRecvTransfersBytes)
{
    // Producer sends 'H','I'; consumer receives both and prints them.
    auto producer = [] {
        Assembler a(0);
        for (char ch : {'H', 'I'}) {
            a.Emit(Opcode::kMovl, {Imm(static_cast<uint8_t>(ch)), R(1)});
            Label retry = a.Here("retry");
            a.Emit(Opcode::kChmk,
                   {Imm(static_cast<uint32_t>(Syscall::kSend))});
            a.Emit(Opcode::kTstl, {R(0)});
            Label sent = a.NewLabel("sent");
            a.Emit(Opcode::kBneq, {}, sent);
            a.Emit(Opcode::kChmk,
                   {Imm(static_cast<uint32_t>(Syscall::kYield))});
            a.Emit(Opcode::kBrb, {}, retry);
            a.Bind(sent);
        }
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
        GuestProgram gp;
        gp.name = "mb-prod";
        gp.program = a.Finish();
        gp.heap_pages = 2;
        gp.stack_pages = 2;
        return gp;
    };
    auto consumer = [] {
        Assembler a(0);
        a.Emit(Opcode::kMovl, {Imm(2), R(8)});
        Label loop = a.Here("loop");
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kRecv))});
        a.Emit(Opcode::kCmpl, {R(0), Imm(0xffffffff)});
        Label got = a.NewLabel("got");
        a.Emit(Opcode::kBneq, {}, got);
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kYield))});
        a.Emit(Opcode::kBrb, {}, loop);
        a.Bind(got);
        a.Emit(Opcode::kMovl, {R(0), R(1)});
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
        a.Emit(Opcode::kSobgtr, {R(8)}, loop);
        a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
        GuestProgram gp;
        gp.name = "mb-cons";
        gp.program = a.Finish();
        gp.heap_pages = 2;
        gp.stack_pages = 2;
        return gp;
    };
    auto machine = SmallMachine(/*timer_reload=*/500);
    BootSystem(*machine, {producer(), consumer()});
    ASSERT_EQ(machine->Run(5'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "HI");
}

TEST(KernelBoot, RecvOnEmptyMailboxReturnsSentinel)
{
    Assembler a(0);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kRecv))});
    a.Emit(Opcode::kCmpl, {R(0), Imm(0xffffffff)});
    Label empty = a.NewLabel("empty");
    a.Emit(Opcode::kBeql, {}, empty);
    a.Emit(Opcode::kMovl, {Imm('x'), R(1)});
    Label out = a.NewLabel("out");
    a.Emit(Opcode::kBrb, {}, out);
    a.Bind(empty);
    a.Emit(Opcode::kMovl, {Imm('e'), R(1)});
    a.Bind(out);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    GuestProgram gp;
    gp.name = "recv-empty";
    gp.program = a.Finish();
    gp.heap_pages = 2;
    gp.stack_pages = 2;

    auto machine = SmallMachine();
    BootSystem(*machine, {gp});
    ASSERT_EQ(machine->Run(1'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "e");
}

TEST(KernelBoot, SendFillsUpAndReportsFull)
{
    // Send kMailboxBytes bytes with no consumer; one more must fail.
    Assembler a(0);
    a.Emit(Opcode::kMovl, {Imm(kMailboxBytes), R(8)});
    a.Emit(Opcode::kMovl, {Imm('a'), R(1)});
    Label loop = a.Here("loop");
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kSend))});
    a.Emit(Opcode::kSobgtr, {R(8)}, loop);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kSend))});
    a.Emit(Opcode::kTstl, {R(0)});
    Label full = a.NewLabel("full");
    a.Emit(Opcode::kBeql, {}, full);
    a.Emit(Opcode::kMovl, {Imm('x'), R(1)});
    Label out = a.NewLabel("out");
    a.Emit(Opcode::kBrb, {}, out);
    a.Bind(full);
    a.Emit(Opcode::kMovl, {Imm('f'), R(1)});
    a.Bind(out);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    GuestProgram gp;
    gp.name = "send-full";
    gp.program = a.Finish();
    gp.heap_pages = 2;
    gp.stack_pages = 2;

    auto machine = SmallMachine();
    BootSystem(*machine, {gp});
    ASSERT_EQ(machine->Run(1'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "f");
}

TEST(KernelPager, DataSurvivesSwapOutAndIn)
{
    // Write a distinct pattern to 24 heap pages, then verify all of them.
    // The frame pool is capped far below 24, so the pager must evict to
    // swap during the writes and fault pages back in during the reads.
    constexpr uint32_t kPages = 24;
    Assembler a(0);
    Label heap = a.NewLabel("heap");
    Label bad = a.NewLabel("bad");
    Label out = a.NewLabel("out");
    a.Emit(Opcode::kMoval, {assembler::Ref(heap), R(2)});
    a.Emit(Opcode::kClrl, {R(3)});
    Label wloop = a.Here("wloop");
    a.Emit(Opcode::kAddl3, {Imm(0x5a0000), R(3), R(4)});
    a.Emit(Opcode::kMovl, {R(4), assembler::Def(2)});
    a.Emit(Opcode::kAddl2, {Imm(kPageBytes), R(2)});
    a.Emit(Opcode::kAoblss, {Imm(kPages), R(3)}, wloop);
    a.Emit(Opcode::kMoval, {assembler::Ref(heap), R(2)});
    a.Emit(Opcode::kClrl, {R(3)});
    Label rloop = a.Here("rloop");
    a.Emit(Opcode::kAddl3, {Imm(0x5a0000), R(3), R(4)});
    a.Emit(Opcode::kCmpl, {assembler::Def(2), R(4)});
    a.Emit(Opcode::kBneq, {}, bad);
    a.Emit(Opcode::kAddl2, {Imm(kPageBytes), R(2)});
    a.Emit(Opcode::kAoblss, {Imm(kPages), R(3)}, rloop);
    a.Emit(Opcode::kMovl, {Imm('y'), R(1)});
    a.Emit(Opcode::kBrb, {}, out);
    a.Bind(bad);
    a.Emit(Opcode::kMovl, {Imm('x'), R(1)});
    a.Bind(out);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "swapper";
    gp.program = a.Finish();
    gp.heap_pages = kPages + 2;
    gp.stack_pages = 2;

    auto machine = SmallMachine();
    BootOptions options;
    options.swap_frames = 64;
    options.max_pool_frames = 10;
    BootInfo info = BootSystem(*machine, {gp}, options);
    ASSERT_EQ(machine->Run(20'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "y");
    EXPECT_GT(info.ReadKdata(*machine, KdataOffsets::kSwapOuts), 10u);
    EXPECT_GT(info.ReadKdata(*machine, KdataOffsets::kSwapIns), 10u);
    EXPECT_GT(info.ReadKdata(*machine, KdataOffsets::kPfCount), kPages);
}

TEST(KernelPager, RepeatedSweepsThrash)
{
    // Sweep a 16-page footprint repeatedly with an 8-frame pool: every
    // sweep re-faults pages, so swap traffic scales with the sweeps.
    constexpr uint32_t kPages = 16;
    Assembler a(0);
    Label heap = a.NewLabel("heap");
    a.Emit(Opcode::kMovl, {Imm(6), R(5)});  // sweeps
    Label sweep = a.Here("sweep");
    a.Emit(Opcode::kMoval, {assembler::Ref(heap), R(2)});
    a.Emit(Opcode::kMovl, {Imm(kPages), R(3)});
    Label touch = a.Here("touch");
    a.Emit(Opcode::kIncl, {assembler::Def(2)});
    a.Emit(Opcode::kAddl2, {Imm(kPageBytes), R(2)});
    a.Emit(Opcode::kSobgtr, {R(3)}, touch);
    a.Emit(Opcode::kSobgtr, {R(5)}, sweep);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "thrasher";
    gp.program = a.Finish();
    gp.heap_pages = kPages + 2;
    gp.stack_pages = 2;

    auto machine = SmallMachine();
    BootOptions options;
    options.swap_frames = 64;
    options.max_pool_frames = 8;
    BootInfo info = BootSystem(*machine, {gp}, options);
    ASSERT_EQ(machine->Run(50'000'000).reason, Machine::StopReason::kHalted);
    // Each sweep must re-fault roughly the whole footprint.
    EXPECT_GT(info.ReadKdata(*machine, KdataOffsets::kPfCount),
              4 * kPages);
    EXPECT_GT(info.ReadKdata(*machine, KdataOffsets::kSwapOuts),
              3 * kPages);
}

TEST(KernelPager, SwapExhaustionHaltsMachine)
{
    // A footprint larger than pool + swap must halt the machine in the
    // pager's out-of-swap path.
    constexpr uint32_t kPages = 40;
    Assembler a(0);
    Label heap = a.NewLabel("heap");
    a.Emit(Opcode::kMoval, {assembler::Ref(heap), R(2)});
    a.Emit(Opcode::kMovl, {Imm(kPages), R(3)});
    Label touch = a.Here("touch");
    a.Emit(Opcode::kIncl, {assembler::Def(2)});
    a.Emit(Opcode::kAddl2, {Imm(kPageBytes), R(2)});
    a.Emit(Opcode::kSobgtr, {R(3)}, touch);
    a.Emit(Opcode::kMovl, {Imm('!'), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "overcommit";
    gp.program = a.Finish();
    gp.heap_pages = kPages + 2;
    gp.stack_pages = 2;

    auto machine = SmallMachine();
    BootOptions options;
    options.swap_frames = 8;  // pool 10 + swap 8 < 40 pages
    options.max_pool_frames = 10;
    BootSystem(*machine, {gp}, options);
    ASSERT_EQ(machine->Run(20'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "");  // never reached the putc
}

TEST(KernelBoot, EightProcessStress)
{
    // The maximum process count, mixed well-behaved and misbehaving.
    std::vector<GuestProgram> programs;
    for (char ch : {'1', '2', '3', '4', '5', '6'})
        programs.push_back(PutcExitProgram(ch));
    {
        Assembler a(0);
        a.Byte(0xfe);  // reserved instruction: killed by the kernel
        GuestProgram bad;
        bad.name = "bad";
        bad.program = a.Finish();
        bad.heap_pages = 2;
        bad.stack_pages = 2;
        programs.push_back(std::move(bad));
    }
    {
        Assembler a(0);
        a.Emit(Opcode::kMovl, {Abs(0xc0000000u), R(2)});  // reserved region
        GuestProgram bad;
        bad.name = "wild";
        bad.program = a.Finish();
        bad.heap_pages = 2;
        bad.stack_pages = 2;
        programs.push_back(std::move(bad));
    }
    auto machine = SmallMachine(/*timer_reload=*/700);
    BootInfo info = BootSystem(*machine, programs);
    EXPECT_EQ(info.num_processes, kMaxProcs);
    ASSERT_EQ(machine->Run(20'000'000).reason, Machine::StopReason::kHalted);
    const std::string& out = machine->console_output();
    EXPECT_EQ(out.size(), 6u);
    for (char ch : {'1', '2', '3', '4', '5', '6'})
        EXPECT_NE(out.find(ch), std::string::npos) << ch;
}

TEST(KernelBoot, Movc3RestartsAcrossDemandZeroPages)
{
    // A single MOVC3 spanning several unmapped heap pages: each fault
    // rolls the instruction back, the pager maps a page, and the copy
    // restarts until it completes — then the copy is verified.
    Assembler a(0);
    Label heap = a.NewLabel("heap");
    Label bad = a.NewLabel("bad");
    Label out = a.NewLabel("out");
    // Source: 3 pages of pattern written first (faults them in).
    a.Emit(Opcode::kMoval, {assembler::Ref(heap), R(6)});
    a.Emit(Opcode::kMovl, {R(6), R(2)});
    a.Emit(Opcode::kMovl, {Imm(3 * kPageBytes / 4), R(3)});
    Label fill = a.Here("fill");
    a.Emit(Opcode::kMovl, {Imm(0x1234abcd), assembler::Inc(2)});
    a.Emit(Opcode::kSobgtr, {R(3)}, fill);
    // Destination: 3 pages further up, entirely unmapped.
    a.Emit(Opcode::kAddl3, {Imm(4 * kPageBytes), R(6), R(7)});
    a.Emit(Opcode::kMovc3, {Imm(3 * kPageBytes), Def(6), Def(7)});
    // Verify the far end of the copy.
    a.Emit(Opcode::kAddl3, {Imm(7 * kPageBytes - 4), R(6), R(2)});
    a.Emit(Opcode::kCmpl, {assembler::Def(2), Imm(0x1234abcd)});
    a.Emit(Opcode::kBneq, {}, bad);
    a.Emit(Opcode::kMovl, {Imm('y'), R(1)});
    a.Emit(Opcode::kBrb, {}, out);
    a.Bind(bad);
    a.Emit(Opcode::kMovl, {Imm('x'), R(1)});
    a.Bind(out);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "movc3-fault";
    gp.program = a.Finish();
    gp.heap_pages = 10;
    gp.stack_pages = 2;

    auto machine = SmallMachine();
    BootInfo info = BootSystem(*machine, {gp});
    ASSERT_EQ(machine->Run(10'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "y");
    EXPECT_GE(info.ReadKdata(*machine, KdataOffsets::kPfCount), 6u);
}

TEST(KernelBoot, SyscallsPreserveUserRegisters)
{
    // Registers other than r0 (the result) survive every syscall.
    Assembler a(0);
    Label bad = a.NewLabel("bad");
    Label out = a.NewLabel("out");
    a.Emit(Opcode::kMovl, {Imm(0x11112222), R(2)});
    a.Emit(Opcode::kMovl, {Imm(0x33334444), R(9)});
    a.Emit(Opcode::kMovl, {Imm('p'), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kGetpid))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kYield))});
    a.Emit(Opcode::kCmpl, {R(2), Imm(0x11112222)});
    a.Emit(Opcode::kBneq, {}, bad);
    a.Emit(Opcode::kCmpl, {R(9), Imm(0x33334444)});
    a.Emit(Opcode::kBneq, {}, bad);
    a.Emit(Opcode::kCmpl, {R(1), Imm('p')});  // r1 also preserved
    a.Emit(Opcode::kBneq, {}, bad);
    a.Emit(Opcode::kCmpl, {R(0), Imm(1)});    // getpid result
    a.Emit(Opcode::kBneq, {}, bad);
    a.Emit(Opcode::kMovl, {Imm('k'), R(1)});
    a.Emit(Opcode::kBrb, {}, out);
    a.Bind(bad);
    a.Emit(Opcode::kMovl, {Imm('x'), R(1)});
    a.Bind(out);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});

    GuestProgram gp;
    gp.name = "regs";
    gp.program = a.Finish();
    gp.heap_pages = 2;
    gp.stack_pages = 2;

    auto machine = SmallMachine();
    BootSystem(*machine, {gp});
    ASSERT_EQ(machine->Run(1'000'000).reason, Machine::StopReason::kHalted);
    EXPECT_EQ(machine->console_output(), "pk");
}

TEST(KernelBootDeath, NoProgramsIsFatal)
{
    auto machine = SmallMachine();
    EXPECT_DEATH(BootSystem(*machine, {}), "at least one");
}

TEST(KernelBootDeath, TooManyProgramsIsFatal)
{
    auto machine = SmallMachine();
    std::vector<GuestProgram> many;
    for (int i = 0; i < 9; ++i)
        many.push_back(PutcExitProgram('a'));
    EXPECT_DEATH(BootSystem(*machine, many), "too many");
}

}  // namespace
}  // namespace atum::kernel
