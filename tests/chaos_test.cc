// Chaos-capture regression tests: the corpus of known fault schedules
// replays clean, seeded campaigns uphold the no-silent-loss invariants,
// and — the proof the harness has teeth — deliberately reintroducing the
// rename-without-parent-fsync durability bug is caught immediately.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "core/checkpoint.h"
#include "io/chaos.h"
#include "util/status.h"

#ifndef ATUM_CHAOS_CORPUS_DIR
#error "ATUM_CHAOS_CORPUS_DIR must point at tests/chaos_corpus"
#endif

namespace atum::chaos {
namespace {

/** Campaign shape for the seeded property tests (smaller = faster). */
CampaignSpec
QuickSpec()
{
    CampaignSpec spec;
    spec.max_instructions = 80'000;
    return spec;
}

std::string
ReadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    EXPECT_FALSE(in.bad()) << path;
    return body.str();
}

std::vector<std::string>
CorpusFiles()
{
    std::vector<std::string> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(ATUM_CHAOS_CORPUS_DIR)) {
        if (entry.path().extension() == ".schedule")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

/** Restores the checkpoint durability knob even on assertion failure. */
struct DirSyncBugGuard {
    DirSyncBugGuard() { core::SetCheckpointDirSyncForTest(false); }
    ~DirSyncBugGuard() { core::SetCheckpointDirSyncForTest(true); }
};

// Every corpus schedule must (a) still aim at live operation indices —
// a capture-shape change that silently retires them would hollow the
// corpus out — and (b) uphold every invariant. Corpus schedules replay
// under the DEFAULT spec; their indices were aimed with --probe.
TEST(ChaosCorpus, ReplaysClean)
{
    const std::vector<std::string> files = CorpusFiles();
    ASSERT_GE(files.size(), 5u) << "corpus missing from "
                                << ATUM_CHAOS_CORPUS_DIR;
    for (const std::string& file : files) {
        SCOPED_TRACE(file);
        util::StatusOr<io::ChaosSchedule> schedule =
            io::ChaosSchedule::Parse(ReadFile(file));
        ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
        util::StatusOr<SeedResult> result =
            ReplaySchedule(CampaignSpec{}, *schedule);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_TRUE(result->ok()) << result->Summary();
        EXPECT_GE(result->faults_fired, 1u)
            << "schedule no longer fires any fault; re-aim it with "
               "`atum-chaos --probe`: " << result->Summary();
    }
}

// Property: after a power cut at an arbitrary write/sync, recovery (via
// checkpoint resume or bare salvage) yields a prefix-consistent trace
// with balanced accounting. The campaign's invariant battery *is* the
// property; the seeds just vary where the plug gets pulled.
TEST(ChaosCampaign, PowerCutAlwaysLeavesAConsistentPrefix)
{
    util::StatusOr<CampaignResult> result =
        RunCampaign(QuickSpec(), /*first_seed=*/1, /*seeds=*/6);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const SeedResult& failure : result->failures)
        ADD_FAILURE() << failure.Summary();
    EXPECT_EQ(result->power_cuts, 0u);  // spec has no campaigns -> no ops
}

TEST(ChaosCampaign, PowerCutCampaign)
{
    CampaignSpec spec = QuickSpec();
    spec.campaigns = {"powercut", "torn-rename"};
    util::StatusOr<CampaignResult> result =
        RunCampaign(spec, /*first_seed=*/1, /*seeds=*/6);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const SeedResult& failure : result->failures)
        ADD_FAILURE() << failure.Summary();
    EXPECT_GE(result->power_cuts, 1u);
    EXPECT_GE(result->resumes + result->salvages, 1u);
}

// EINTR storms must be invisible: absorbed by the retry wrappers with
// zero records lost and no degradation.
TEST(ChaosCampaign, EintrStormIsInvisible)
{
    CampaignSpec spec = QuickSpec();
    spec.campaigns = {"eintr"};
    uint64_t total_lost = 0;
    util::StatusOr<CampaignResult> result = RunCampaign(
        spec, /*first_seed=*/1, /*seeds=*/4,
        [&](const SeedResult& r) { total_lost += r.lost_records; });
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const SeedResult& failure : result->failures)
        ADD_FAILURE() << failure.Summary();
    EXPECT_GE(result->faults_fired, 1u);
    EXPECT_EQ(total_lost, 0u);
}

TEST(ChaosCampaign, EnospcCampaign)
{
    CampaignSpec spec = QuickSpec();
    spec.campaigns = {"enospc"};
    util::StatusOr<CampaignResult> result =
        RunCampaign(spec, /*first_seed=*/1, /*seeds=*/4);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const SeedResult& failure : result->failures)
        ADD_FAILURE() << failure.Summary();
    EXPECT_GE(result->faults_fired, 1u);
}

// The demonstration the subsystem exists for: put the durability bug
// back (checkpoint publish without fsyncing the parent directory) and
// the torn-rename drill catches it as a durable-checkpoint violation.
// The identical schedule passes with the bug fixed.
TEST(ChaosCampaign, CampaignCatchesDirSyncBug)
{
    io::ChaosSchedule schedule;
    schedule.seed = 9001;
    schedule.campaigns = {"torn-rename"};
    schedule.ops.push_back(
        io::ChaosOp{io::ChaosOpKind::kPowerCutRename, /*at=*/1});
    const CampaignSpec spec = QuickSpec();

    // Correct code: the mandatory DirSync fails on the dead filesystem,
    // the checkpoint is never reported written, nothing was promised.
    util::StatusOr<SeedResult> good = ReplaySchedule(spec, schedule);
    ASSERT_TRUE(good.ok()) << good.status().ToString();
    EXPECT_TRUE(good->ok()) << good->Summary();
    EXPECT_TRUE(good->power_cut);

    // Buggy code: the rename "succeeded", the checkpoint is counted as
    // written — and after the reboot it does not exist.
    {
        DirSyncBugGuard bug;
        util::StatusOr<SeedResult> bad = ReplaySchedule(spec, schedule);
        ASSERT_TRUE(bad.ok()) << bad.status().ToString();
        ASSERT_FALSE(bad->ok())
            << "the reintroduced dirsync bug went undetected";
        EXPECT_EQ(bad->violations[0].invariant, "durable-checkpoint")
            << bad->Summary();
    }

    // And with the knob restored the same drill is clean again.
    util::StatusOr<SeedResult> again = ReplaySchedule(spec, schedule);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_TRUE(again->ok()) << again->Summary();
}

// Minimization strips ops whose removal keeps the failure alive: the
// dirsync repro decorated with two irrelevant faults shrinks back to
// the single torn rename.
TEST(ChaosCampaign, MinimizeShrinksToTheCulprit)
{
    io::ChaosSchedule schedule;
    schedule.seed = 9002;
    schedule.campaigns = {"torn-rename"};
    schedule.ops = {
        io::ChaosOp{io::ChaosOpKind::kFailWrite, /*at=*/100, 0,
                    util::StatusCode::kIoError},
        io::ChaosOp{io::ChaosOpKind::kPowerCutRename, /*at=*/1},
        io::ChaosOp{io::ChaosOpKind::kFailSync, /*at=*/5, 0,
                    util::StatusCode::kIoError},
    };
    DirSyncBugGuard bug;
    util::StatusOr<io::ChaosSchedule> minimized =
        Minimize(QuickSpec(), schedule);
    ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
    ASSERT_EQ(minimized->ops.size(), 1u);
    EXPECT_EQ(minimized->ops[0].kind, io::ChaosOpKind::kPowerCutRename);
}

}  // namespace
}  // namespace atum::chaos
