// Unit tests for the analysis library: working sets, footprints, and the
// cache sweep helpers.

#include <gtest/gtest.h>

#include "analysis/compare.h"
#include "analysis/mix.h"
#include "analysis/stack_distance.h"
#include "analysis/working_set.h"
#include "mem/physical_memory.h"
#include "trace/record.h"
#include "util/rng.h"

namespace atum::analysis {
namespace {

using trace::MakeCtxSwitch;
using trace::MakeFlags;
using trace::Record;
using trace::RecordType;

Record
Ref(uint32_t addr, bool kernel = false, RecordType type = RecordType::kRead)
{
    Record r;
    r.addr = addr;
    r.type = type;
    r.flags = MakeFlags(kernel, 4);
    return r;
}

TEST(WorkingSet, SinglePageConverges)
{
    WorkingSetAnalyzer ws({1, 10, 100});
    for (int i = 0; i < 1000; ++i)
        ws.Touch(5);
    EXPECT_EQ(ws.total_refs(), 1000u);
    EXPECT_EQ(ws.distinct_pages(), 1u);
    // One page re-touched every step: s(tau) ~= 1 for every tau.
    EXPECT_NEAR(ws.AverageWorkingSet(0), 1.0, 0.01);
    EXPECT_NEAR(ws.AverageWorkingSet(1), 1.0, 0.1);
}

TEST(WorkingSet, RoundRobinOverKPages)
{
    // Cycling over k pages: s(tau) ~= min(tau, k).
    constexpr uint32_t k = 8;
    WorkingSetAnalyzer ws({4, 8, 64});
    for (int i = 0; i < 8000; ++i)
        ws.Touch(i % k);
    EXPECT_NEAR(ws.AverageWorkingSet(0), 4.0, 0.1);
    EXPECT_NEAR(ws.AverageWorkingSet(1), 8.0, 0.1);
    EXPECT_NEAR(ws.AverageWorkingSet(2), 8.0, 0.5);
}

TEST(WorkingSet, MoreDistinctPagesGrowTheSet)
{
    WorkingSetAnalyzer narrow({100});
    WorkingSetAnalyzer wide({100});
    for (int i = 0; i < 10000; ++i) {
        narrow.Touch(i % 4);
        wide.Touch(i % 64);
    }
    EXPECT_LT(narrow.AverageWorkingSet(0), wide.AverageWorkingSet(0));
}

TEST(WorkingSet, FeedSkipsMarkersAndPte)
{
    WorkingSetAnalyzer ws({10});
    ws.Feed(Ref(0x1000));
    ws.Feed(MakeCtxSwitch(1, 0));
    ws.Feed(Ref(0x2000, true, RecordType::kPte));
    EXPECT_EQ(ws.total_refs(), 1u);
}

TEST(WorkingSetDeath, BadWindowsAreFatal)
{
    EXPECT_DEATH(WorkingSetAnalyzer({}), "at least one");
    EXPECT_DEATH(WorkingSetAnalyzer({0}), "nonzero");
}

TEST(PageOfHelper, UsesPageShift)
{
    EXPECT_EQ(PageOf(Ref(0)), 0u);
    EXPECT_EQ(PageOf(Ref(kPageBytes)), 1u);
    EXPECT_EQ(PageOf(Ref(kPageBytes - 1)), 0u);
}

TEST(Footprint, SplitsKernelAndUser)
{
    FootprintAnalyzer fp;
    fp.Feed(MakeCtxSwitch(1, 0));
    fp.Feed(Ref(0x0000));
    fp.Feed(Ref(0x0200));
    fp.Feed(Ref(0x80000000, /*kernel=*/true));
    fp.Feed(MakeCtxSwitch(2, 0));
    fp.Feed(Ref(0x0000));  // same page, different process
    EXPECT_EQ(fp.total_pages(), 3u);
    EXPECT_EQ(fp.user_pages(), 2u);
    EXPECT_EQ(fp.kernel_pages(), 1u);
    EXPECT_EQ(fp.per_pid().at(1).size(), 2u);
    EXPECT_EQ(fp.per_pid().at(2).size(), 1u);
}

TEST(Footprint, PteExcluded)
{
    FootprintAnalyzer fp;
    fp.Feed(Ref(0x3000, true, RecordType::kPte));
    EXPECT_EQ(fp.total_pages(), 0u);
}

TEST(Compare, SimulateCacheCountsFilteredStream)
{
    std::vector<Record> records;
    for (int i = 0; i < 10; ++i)
        records.push_back(Ref(0x100));
    cache::CacheConfig config{.size_bytes = 1024, .block_bytes = 16,
                              .assoc = 1};
    const auto stats = SimulateCache(records, config, {});
    EXPECT_EQ(stats.accesses, 10u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(Compare, SweepCacheSizeIsMonotoneForLoopingTrace)
{
    // A looping footprint larger than the small cache but smaller than the
    // big one: miss rate must not increase with size.
    std::vector<Record> records;
    for (int pass = 0; pass < 50; ++pass)
        for (uint32_t a = 0; a < 8192; a += 16)
            records.push_back(Ref(a));
    cache::CacheConfig base{.block_bytes = 16, .assoc = 1};
    const auto points =
        SweepCacheSize(records, {1024, 4096, 16384}, base, {});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_GE(points[0].miss_rate, points[1].miss_rate);
    EXPECT_GE(points[1].miss_rate, points[2].miss_rate);
    // Only cold misses remain once the footprint fits: 512 blocks out of
    // 25600 accesses = 0.02.
    EXPECT_LE(points[2].miss_rate, 0.02 + 1e-9);
}

TEST(Compare, SweepBlockSizeHelpsSequentialTrace)
{
    std::vector<Record> records;
    for (uint32_t a = 0; a < 65536; a += 4)
        records.push_back(Ref(a));
    cache::CacheConfig base{.size_bytes = 16384, .assoc = 1};
    const auto points = SweepBlockSize(records, {4, 16, 64}, base, {});
    // Sequential scan: bigger blocks mean fewer misses.
    EXPECT_GT(points[0].miss_rate, points[1].miss_rate);
    EXPECT_GT(points[1].miss_rate, points[2].miss_rate);
}

TEST(Compare, SweepAssociativityFixesConflicts)
{
    // Two blocks that conflict direct-mapped but coexist 2-way.
    std::vector<Record> records;
    for (int i = 0; i < 100; ++i) {
        records.push_back(Ref(0x0));
        records.push_back(Ref(0x1000));
    }
    cache::CacheConfig base{.size_bytes = 4096, .block_bytes = 16};
    const auto points = SweepAssociativity(records, {1, 2}, base, {});
    EXPECT_GT(points[0].miss_rate, 0.9);
    EXPECT_LT(points[1].miss_rate, 0.1);
}


TEST(StackDistance, ColdMissesOnly)
{
    StackDistanceAnalyzer sd(0);
    for (uint32_t b = 0; b < 100; ++b)
        sd.TouchBlock(b);
    EXPECT_EQ(sd.cold_misses(), 100u);
    EXPECT_EQ(sd.MissesForCapacity(1), 100u);
    EXPECT_EQ(sd.MissesForCapacity(1000), 100u);
}

TEST(StackDistance, ImmediateReuseIsDistanceZero)
{
    StackDistanceAnalyzer sd(0);
    sd.TouchBlock(7);
    sd.TouchBlock(7);
    EXPECT_EQ(sd.DistanceCount(0), 1u);
    EXPECT_EQ(sd.MissesForCapacity(1), 1u);  // only the cold miss
}

TEST(StackDistance, LoopOverKBlocks)
{
    // Cycling over k blocks: every re-access has distance k-1, so a cache
    // of capacity >= k never misses after warmup and one of capacity < k
    // always misses.
    constexpr uint32_t k = 16;
    StackDistanceAnalyzer sd(0);
    for (int i = 0; i < 1600; ++i)
        sd.TouchBlock(i % k);
    EXPECT_EQ(sd.MissesForCapacity(k), k);            // cold only
    EXPECT_EQ(sd.MissesForCapacity(k - 1), 1600u);    // every access
}

TEST(StackDistance, MatchesFullyAssociativeLruSimulation)
{
    // Cross-validation: the one-pass analyzer must agree exactly with the
    // direct fully-associative LRU cache model at every capacity.
    Rng rng(4242);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 30000; ++i) {
        // A mix of looping, clustered, and random accesses.
        uint32_t addr;
        switch (rng.Below(3)) {
          case 0:
            addr = (i % 700) * 16;
            break;
          case 1:
            addr = 0x100000 + rng.Below(256) * 16;
            break;
          default:
            addr = rng.Below(1u << 20);
        }
        addrs.push_back(addr);
    }

    StackDistanceAnalyzer sd(4);  // 16-byte blocks
    for (uint32_t a : addrs)
        sd.TouchBlock(a >> 4);

    for (uint32_t blocks : {16u, 64u, 256u, 1024u}) {
        cache::Cache c({.size_bytes = blocks * 16,
                        .block_bytes = 16,
                        .assoc = 0});
        for (uint32_t a : addrs)
            c.Access(a, false);
        EXPECT_EQ(sd.MissesForCapacity(blocks), c.stats().misses)
            << "capacity " << blocks;
    }
}

TEST(StackDistance, MissCountMonotoneInCapacity)
{
    Rng rng(99);
    StackDistanceAnalyzer sd(4);
    for (int i = 0; i < 20000; ++i)
        sd.TouchBlock(rng.Below(5000));
    uint64_t prev = sd.MissesForCapacity(1);
    for (uint64_t c = 2; c < 4096; c *= 2) {
        const uint64_t m = sd.MissesForCapacity(c);
        EXPECT_LE(m, prev);
        prev = m;
    }
    EXPECT_EQ(sd.MissesForCapacity(1u << 20), sd.cold_misses());
}

TEST(StackDistanceDeath, ZeroCapacityIsFatal)
{
    StackDistanceAnalyzer sd(4);
    sd.TouchBlock(1);
    EXPECT_DEATH(sd.MissesForCapacity(0), "nonzero");
}


TEST(SetSampling, UniformTrafficGivesAccurateEstimates)
{
    // Uniform random addresses spread traffic evenly over sets, the
    // regime where set sampling is trustworthy.
    Rng rng(2024);
    std::vector<Record> records;
    for (int i = 0; i < 200000; ++i)
        records.push_back(Ref(rng.Below(1u << 18) & ~3u));
    cache::CacheConfig config{.size_bytes = 16u << 10, .block_bytes = 16,
                              .assoc = 1};
    const auto full = SimulateCache(records, config, {});
    const auto sampled = SetSampledMissRate(records, config, {}, 2);
    EXPECT_NEAR(sampled.MissRate(), full.MissRate(),
                0.05 * full.MissRate());
    // Roughly a quarter of the accesses land in the sampled sets.
    EXPECT_NEAR(static_cast<double>(sampled.sampled_accesses),
                static_cast<double>(full.accesses) / 4.0,
                0.05 * static_cast<double>(full.accesses));
}

TEST(SetSampling, SampledSubsetIsExactPerSet)
{
    // Sets are independent, so the sampled simulation must agree exactly
    // with per-set accounting inside a full simulation.
    Rng rng(7);
    std::vector<Record> records;
    for (int i = 0; i < 50000; ++i) {
        // Skewed: half the traffic in one hot block.
        const uint32_t addr =
            rng.Below(2) == 0 ? 0x5550 : rng.Below(1u << 16) & ~3u;
        records.push_back(Ref(addr));
    }
    cache::CacheConfig config{.size_bytes = 4096, .block_bytes = 16,
                              .assoc = 1};
    cache::Cache full(config);
    const uint32_t sets = full.num_sets();
    std::vector<uint64_t> acc(sets, 0), mis(sets, 0);
    for (const Record& r : records) {
        const uint32_t set = (r.addr >> 4) & (sets - 1);
        const bool hit = full.Access(r.addr, false);
        ++acc[set];
        if (!hit)
            ++mis[set];
    }
    uint64_t want_acc = 0, want_mis = 0;
    for (uint32_t set = 0; set < sets; ++set) {
        if ((((set * 2654435761u) >> 16) & 3) == 0) {
            want_acc += acc[set];
            want_mis += mis[set];
        }
    }
    const auto sampled = SetSampledMissRate(records, config, {}, 2);
    EXPECT_EQ(sampled.sampled_accesses, want_acc);
    EXPECT_EQ(sampled.sampled_misses, want_mis);
}

}  // namespace
}  // namespace atum::analysis
