// Serve daemon tests: frame codec fuzz, protocol validation, journal
// recovery under a corruption matrix, admission/fair-share policy, the
// ServeCore job lifecycle in drill mode, kill-restart recovery on an
// in-memory disk, connection governance, idempotency-token dedup, the
// pinned protocol fuzz corpus, and small seeded serve/net chaos
// campaigns.

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "io/chaos.h"
#include "io/mem_vfs.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "util/json.h"
#include "util/status.h"

#ifndef ATUM_PROTOCOL_CORPUS_DIR
#error "ATUM_PROTOCOL_CORPUS_DIR must point at tests/protocol_corpus"
#endif

namespace atum::serve {
namespace {

std::string
ReadAll(io::Vfs& vfs, const std::string& path)
{
    util::StatusOr<std::unique_ptr<io::ReadableFile>> in = vfs.OpenRead(path);
    EXPECT_TRUE(in.ok()) << in.status().ToString();
    if (!in.ok())
        return {};
    std::string bytes;
    char buf[512];
    for (;;) {
        util::StatusOr<size_t> n = (*in)->Read(buf, sizeof buf);
        EXPECT_TRUE(n.ok()) << n.status().ToString();
        if (!n.ok() || *n == 0)
            break;
        bytes.append(buf, *n);
    }
    return bytes;
}

void
WriteAll(io::Vfs& vfs, const std::string& path, const std::string& bytes)
{
    util::StatusOr<std::unique_ptr<io::WritableFile>> out = vfs.Create(path);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_TRUE((*out)->Write(bytes.data(), bytes.size()).ok());
    ASSERT_TRUE((*out)->Sync().ok());
    ASSERT_TRUE((*out)->Close().ok());
}

// ---------------------------------------------------------------------------
// Frame codec.

TEST(FrameParser, RoundTripsAcrossArbitraryChunking)
{
    const std::vector<std::string> payloads = {"{}", R"({"op":"ping"})",
                                               std::string(1000, 'x'), ""};
    std::string stream;
    for (const std::string& p : payloads)
        stream += EncodeFrame(p);

    // Every chunk size from 1 byte to the whole stream must reassemble
    // the identical payload sequence.
    for (size_t chunk = 1; chunk <= stream.size(); chunk += 7) {
        FrameParser parser;
        std::vector<std::string> got;
        for (size_t pos = 0; pos < stream.size(); pos += chunk) {
            parser.Feed(stream.data() + pos,
                        std::min(chunk, stream.size() - pos));
            for (;;) {
                std::string payload;
                util::StatusOr<bool> next = parser.Next(&payload);
                ASSERT_TRUE(next.ok()) << next.status().ToString();
                if (!*next)
                    break;
                got.push_back(payload);
            }
        }
        EXPECT_EQ(got, payloads);
        EXPECT_EQ(parser.pending_bytes(), 0u);
    }
}

TEST(FrameParser, OversizedFramePoisonsForever)
{
    std::string evil;
    const uint32_t huge = kMaxFrameBytes + 1;
    for (int i = 0; i < 4; ++i)
        evil.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
    FrameParser parser;
    parser.Feed(evil.data(), evil.size());
    std::string payload;
    EXPECT_FALSE(parser.Next(&payload).ok());
    // Even a valid frame afterwards must not resurrect the connection.
    const std::string good = EncodeFrame("{}");
    parser.Feed(good.data(), good.size());
    EXPECT_FALSE(parser.Next(&payload).ok());
}

// The boundary frames: a zero-length payload is a legal frame and must
// round-trip (the protocol's smallest message), and the size limit is
// exact — a payload of kMaxFrameBytes passes, one more byte poisons.
TEST(FrameParser, ZeroLengthAndMaxLengthFramesAreExactBoundaries)
{
    {
        const std::string frame = EncodeFrame("");
        FrameParser parser;
        parser.Feed(frame.data(), frame.size());
        std::string payload = "sentinel";
        util::StatusOr<bool> next = parser.Next(&payload);
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        EXPECT_TRUE(*next);
        EXPECT_TRUE(payload.empty());
        EXPECT_EQ(parser.pending_bytes(), 0u);
    }
    {
        const std::string frame = EncodeFrame(std::string(kMaxFrameBytes, 'x'));
        FrameParser parser;
        parser.Feed(frame.data(), frame.size());
        std::string payload;
        util::StatusOr<bool> next = parser.Next(&payload);
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        EXPECT_TRUE(*next);
        EXPECT_EQ(payload.size(), kMaxFrameBytes);
    }
    {
        const std::string frame =
            EncodeFrame(std::string(kMaxFrameBytes + 1, 'x'));
        FrameParser parser;
        parser.Feed(frame.data(), frame.size());
        std::string payload;
        EXPECT_FALSE(parser.Next(&payload).ok());
    }
}

TEST(FrameParser, TruncatedFrameReportsPendingBytes)
{
    const std::string frame = EncodeFrame(R"({"op":"ping"})");
    FrameParser parser;
    parser.Feed(frame.data(), frame.size() - 3);
    std::string payload;
    util::StatusOr<bool> next = parser.Next(&payload);
    ASSERT_TRUE(next.ok());
    EXPECT_FALSE(*next);
    EXPECT_GT(parser.pending_bytes(), 0u);  // the tear is detectable
}

// Seeded fuzz: random byte soup must never crash the parser — each
// stream either yields frames, waits for more, or poisons cleanly.
TEST(FrameParser, RandomByteSoupNeverCrashes)
{
    std::mt19937_64 rng(42);
    for (int round = 0; round < 200; ++round) {
        std::string soup(1 + rng() % 300, '\0');
        for (char& c : soup)
            c = static_cast<char>(rng() & 0xFF);
        FrameParser parser;
        parser.Feed(soup.data(), soup.size());
        for (int step = 0; step < 64; ++step) {
            std::string payload;
            util::StatusOr<bool> next = parser.Next(&payload);
            if (!next.ok() || !*next)
                break;
            EXPECT_LE(payload.size(), kMaxFrameBytes);
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol validation.

TEST(Protocol, RequestRoundTrip)
{
    Request request;
    request.op = RequestOp::kSubmit;
    request.tenant = "team-a";
    request.workload = "sort";
    request.scale = 3;
    request.quota.max_instructions = 12345;
    request.quota.max_trace_bytes = 777;
    request.quota.deadline_ms = 42;
    util::StatusOr<Request> parsed = ParseRequest(SerializeRequest(request));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->tenant, "team-a");
    EXPECT_EQ(parsed->workload, "sort");
    EXPECT_EQ(parsed->scale, 3u);
    EXPECT_EQ(parsed->quota.max_instructions, 12345u);
    EXPECT_EQ(parsed->quota.max_trace_bytes, 777u);
    EXPECT_EQ(parsed->quota.deadline_ms, 42u);
}

TEST(Protocol, RejectsWrongVersionAndMalformedFrames)
{
    EXPECT_FALSE(ParseRequest("not json").ok());
    EXPECT_FALSE(ParseRequest("{}").ok());
    EXPECT_FALSE(ParseRequest(R"({"v":"atum-serve-v0","op":"ping"})").ok());
    EXPECT_FALSE(
        ParseRequest(R"({"v":"atum-serve-v1","op":"explode"})").ok());
    EXPECT_TRUE(ParseRequest(R"({"v":"atum-serve-v1","op":"ping"})").ok());
}

TEST(Protocol, SweepRequestRoundTrip)
{
    Request request;
    request.op = RequestOp::kSweep;
    request.tenant = "team-b";
    request.sweep_of = 7;
    request.sweep_timeout_ms = 1500;
    request.sweep_retries = 2;
    SweepConfigSpec cache;
    cache.kind = "cache";
    cache.size_kb = 128;
    cache.assoc = 2;
    SweepConfigSpec tlb;
    tlb.kind = "tlb";
    tlb.entries = 32;
    tlb.ways = 4;
    request.sweep_configs = {cache, tlb};

    util::StatusOr<Request> parsed = ParseRequest(SerializeRequest(request));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->op, RequestOp::kSweep);
    EXPECT_EQ(parsed->sweep_of, 7u);
    EXPECT_EQ(parsed->sweep_timeout_ms, 1500u);
    EXPECT_EQ(parsed->sweep_retries, 2u);
    ASSERT_EQ(parsed->sweep_configs.size(), 2u);
    EXPECT_EQ(parsed->sweep_configs[0].kind, "cache");
    EXPECT_EQ(parsed->sweep_configs[0].size_kb, 128u);
    EXPECT_EQ(parsed->sweep_configs[0].assoc, 2u);
    EXPECT_EQ(parsed->sweep_configs[1].kind, "tlb");
    EXPECT_EQ(parsed->sweep_configs[1].entries, 32u);
    EXPECT_EQ(parsed->sweep_configs[1].ways, 4u);
}

TEST(SweepSpec, ParsesCompactTextForm)
{
    util::StatusOr<SweepConfigSpec> spec =
        ParseSweepConfigSpecText("cache:size_kb=128:assoc=2");
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    EXPECT_EQ(spec->kind, "cache");
    EXPECT_EQ(spec->size_kb, 128u);
    EXPECT_EQ(spec->assoc, 2u);

    spec = ParseSweepConfigSpecText("tlb:entries=32:ways=4");
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    EXPECT_EQ(spec->kind, "tlb");
    EXPECT_EQ(spec->entries, 32u);
    EXPECT_EQ(spec->ways, 4u);

    spec = ParseSweepConfigSpecText("hierarchy:size_kb=256:block=32");
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    EXPECT_EQ(spec->kind, "hierarchy");
    EXPECT_EQ(spec->size_kb, 256u);
    EXPECT_EQ(spec->block, 32u);

    EXPECT_FALSE(ParseSweepConfigSpecText("").ok());
    EXPECT_FALSE(ParseSweepConfigSpecText("bogus:size_kb=1").ok());
    EXPECT_FALSE(ParseSweepConfigSpecText("cache:no_such_knob=1").ok());
    // Geometry is judged per-row at replay time, not at parse time: a
    // nonsensical block size parses fine and becomes one failed row.
    EXPECT_TRUE(ParseSweepConfigSpecText("cache:block=24").ok());
}

TEST(Protocol, ErrorResponseRoundTripsStatusCode)
{
    const util::Status shed = util::ResourceExhausted("queue full");
    const util::Status extracted = ResponseStatus(ErrorResponse(shed));
    EXPECT_EQ(extracted.code(), util::StatusCode::kResourceExhausted);
    EXPECT_TRUE(ResponseStatus(R"({"ok":true})").ok());
    EXPECT_FALSE(ResponseStatus("garbage").ok());
}

// ---------------------------------------------------------------------------
// Journal recovery.

JournalRecord
Submitted(uint64_t id)
{
    JournalRecord r;
    r.kind = JournalKind::kSubmitted;
    r.id = id;
    r.tenant = "t";
    r.workload = "grep";
    return r;
}

JournalRecord
Finished(uint64_t id, const std::string& outcome)
{
    JournalRecord r;
    r.kind = JournalKind::kFinished;
    r.id = id;
    r.outcome = outcome;
    return r;
}

TEST(JobJournal, AppendThenRecover)
{
    io::MemVfs vfs;
    {
        util::StatusOr<std::unique_ptr<JobJournal>> journal =
            JobJournal::Open("j", vfs);
        ASSERT_TRUE(journal.ok()) << journal.status().ToString();
        EXPECT_TRUE((*journal)->Append(Submitted(1)).ok());
        EXPECT_TRUE((*journal)->Append(Submitted(2)).ok());
        EXPECT_TRUE((*journal)->Append(Finished(1, "done")).ok());
    }
    util::StatusOr<std::unique_ptr<JobJournal>> journal =
        JobJournal::Open("j", vfs);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    EXPECT_FALSE((*journal)->tail_dropped());
    ASSERT_EQ((*journal)->recovered().size(), 3u);
    EXPECT_EQ((*journal)->recovered()[0].id, 1u);
    EXPECT_EQ((*journal)->recovered()[2].outcome, "done");
}

// The corruption matrix: flip every byte of a three-record journal in
// turn. Recovery must never crash, never fabricate records, and always
// return a prefix of what was written.
TEST(JobJournal, SingleByteCorruptionAlwaysLeavesACleanPrefix)
{
    io::MemVfs vfs;
    {
        util::StatusOr<std::unique_ptr<JobJournal>> journal =
            JobJournal::Open("j", vfs);
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE((*journal)->Append(Submitted(1)).ok());
        ASSERT_TRUE((*journal)->Append(Submitted(2)).ok());
        ASSERT_TRUE((*journal)->Append(Finished(1, "done")).ok());
    }
    const std::string clean = ReadAll(vfs, "j");
    ASSERT_FALSE(clean.empty());

    for (size_t pos = 0; pos < clean.size(); ++pos) {
        std::string dirty = clean;
        dirty[pos] = static_cast<char>(dirty[pos] ^ 0x5A);
        const std::vector<JournalRecord> records =
            ScanJournalBytes(dirty, nullptr, nullptr);
        ASSERT_LE(records.size(), 3u) << "byte " << pos;
        // Whatever survives must be the written prefix, id for id.
        const uint64_t want_ids[] = {1, 2, 1};
        for (size_t i = 0; i < records.size(); ++i)
            EXPECT_EQ(records[i].id, want_ids[i]) << "byte " << pos;
    }
}

TEST(JobJournal, TornTailIsDroppedAndAppendsContinue)
{
    io::MemVfs vfs;
    std::string bytes;
    {
        util::StatusOr<std::unique_ptr<JobJournal>> journal =
            JobJournal::Open("j", vfs);
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE((*journal)->Append(Submitted(1)).ok());
        ASSERT_TRUE((*journal)->Append(Submitted(2)).ok());
        bytes = ReadAll(vfs, "j");
    }
    // Cut mid-way through the second frame — the write the crash tore.
    WriteAll(vfs, "j", bytes.substr(0, bytes.size() - 5));

    util::StatusOr<std::unique_ptr<JobJournal>> journal =
        JobJournal::Open("j", vfs);
    ASSERT_TRUE(journal.ok());
    EXPECT_TRUE((*journal)->tail_dropped());
    ASSERT_EQ((*journal)->recovered().size(), 1u);
    // Appending after recovery lands right past the valid prefix.
    ASSERT_TRUE((*journal)->Append(Submitted(3)).ok());
    const std::vector<JournalRecord> records =
        ScanJournalBytes(ReadAll(vfs, "j"), nullptr, nullptr);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].id, 1u);
    EXPECT_EQ(records[1].id, 3u);
}

TEST(JobJournal, PureNoiseRecoversAsEmpty)
{
    std::string noise(300, '\0');
    std::mt19937_64 rng(7);
    for (char& c : noise)
        c = static_cast<char>(rng() & 0xFF);
    bool dropped = false;
    EXPECT_TRUE(ScanJournalBytes(noise, nullptr, &dropped).empty());
    EXPECT_TRUE(dropped);
}

// Regression: a torn append (transient fault mid-write) must not leave
// garbage that hides every later record from recovery. The journal heals
// by truncating back to its last durable byte.
TEST(JobJournal, TornAppendSelfHealsBeforeNextRecord)
{
    io::MemVfs mem;
    io::ChaosSchedule schedule;
    schedule.ops.push_back(io::ChaosOp{io::ChaosOpKind::kShortWrite,
                                       /*at=*/2, /*arg=*/4,
                                       util::StatusCode::kNoSpace});
    io::ChaosVfs vfs(mem, schedule);

    util::StatusOr<std::unique_ptr<JobJournal>> journal =
        JobJournal::Open("j", vfs);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(Submitted(1)).ok());
    EXPECT_FALSE((*journal)->Append(Submitted(2)).ok());  // torn at 4 bytes
    ASSERT_TRUE((*journal)->Append(Submitted(3)).ok());   // after self-heal

    bool dropped = false;
    const std::vector<JournalRecord> records =
        ScanJournalBytes(ReadAll(mem, "j"), nullptr, &dropped);
    EXPECT_FALSE(dropped) << "torn frame left in place hides record 3";
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].id, 1u);
    EXPECT_EQ(records[1].id, 3u);
}

// Sweep records carry the resume high-water mark, so their round-trip
// and damage behavior matter as much as the classic records': every
// field of a sweep submission and every canonical row byte must survive
// a reopen, and the corruption matrix must still always yield a clean
// prefix — a flipped byte may cost records but never fabricates or
// mutates a row.
TEST(JobJournal, SweepRecordsRoundTripAndSurviveCorruptionMatrix)
{
    JournalRecord submitted;
    submitted.kind = JournalKind::kSubmitted;
    submitted.id = 9;
    submitted.job = "sweep";
    submitted.tenant = "t";
    submitted.workload = "sweep";
    submitted.sweep_of = 4;
    submitted.sweep_timeout_ms = 250;
    submitted.sweep_retries = 2;
    SweepConfigSpec cache;
    cache.kind = "cache";
    cache.size_kb = 32;
    SweepConfigSpec tlb;
    tlb.kind = "tlb";
    tlb.entries = 16;
    submitted.configs = {cache, tlb};

    JournalRecord row;
    row.kind = JournalKind::kSweepConfig;
    row.id = 9;
    row.config_index = 1;
    row.row = R"({"config":1,"kind":"tlb","label":"tlb-16e","records":10,)"
              R"("status":"ok","accesses":10,"misses":3,"flushes":0,)"
              R"("miss_rate":0.3})";

    io::MemVfs vfs;
    {
        util::StatusOr<std::unique_ptr<JobJournal>> journal =
            JobJournal::Open("j", vfs);
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE((*journal)->Append(submitted).ok());
        ASSERT_TRUE((*journal)->Append(row).ok());
        ASSERT_TRUE((*journal)->Append(Finished(9, "done")).ok());
    }
    util::StatusOr<std::unique_ptr<JobJournal>> journal =
        JobJournal::Open("j", vfs);
    ASSERT_TRUE(journal.ok());
    ASSERT_EQ((*journal)->recovered().size(), 3u);
    const JournalRecord& got = (*journal)->recovered()[0];
    EXPECT_EQ(got.job, "sweep");
    EXPECT_EQ(got.sweep_of, 4u);
    EXPECT_EQ(got.sweep_timeout_ms, 250u);
    EXPECT_EQ(got.sweep_retries, 2u);
    ASSERT_EQ(got.configs.size(), 2u);
    EXPECT_EQ(got.configs[0].kind, "cache");
    EXPECT_EQ(got.configs[0].size_kb, 32u);
    EXPECT_EQ(got.configs[1].kind, "tlb");
    EXPECT_EQ(got.configs[1].entries, 16u);
    const JournalRecord& got_row = (*journal)->recovered()[1];
    EXPECT_EQ(got_row.kind, JournalKind::kSweepConfig);
    EXPECT_EQ(got_row.config_index, 1u);
    EXPECT_EQ(got_row.row, row.row);  // byte-identical: S4's foundation

    const std::string clean = ReadAll(vfs, "j");
    for (size_t pos = 0; pos < clean.size(); ++pos) {
        std::string dirty = clean;
        dirty[pos] = static_cast<char>(dirty[pos] ^ 0x5A);
        const std::vector<JournalRecord> records =
            ScanJournalBytes(dirty, nullptr, nullptr);
        ASSERT_LE(records.size(), 3u) << "byte " << pos;
        if (records.size() >= 1) {
            EXPECT_EQ(records[0].sweep_of, 4u) << "byte " << pos;
        }
        if (records.size() >= 2) {
            EXPECT_EQ(records[1].row, row.row) << "byte " << pos;
        }
    }
}

// ---------------------------------------------------------------------------
// Admission control and fair share.

TEST(Admission, ShedsWhenQueueIsFull)
{
    AdmissionConfig config;
    config.max_queue_depth = 2;
    AdmissionController admission(config);
    EXPECT_TRUE(admission.Admit(1, "a").ok());
    EXPECT_TRUE(admission.Admit(2, "b").ok());
    const util::Status shed = admission.Admit(3, "c");
    EXPECT_EQ(shed.code(), util::StatusCode::kResourceExhausted);
}

TEST(Admission, ShedsTenantOverItsShare)
{
    AdmissionConfig config;
    config.max_per_tenant = 2;
    AdmissionController admission(config);
    EXPECT_TRUE(admission.Admit(1, "chatty").ok());
    EXPECT_TRUE(admission.Admit(2, "chatty").ok());
    EXPECT_EQ(admission.Admit(3, "chatty").code(),
              util::StatusCode::kResourceExhausted);
    EXPECT_TRUE(admission.Admit(4, "quiet").ok());  // others unaffected
}

TEST(Admission, FairShareLetsQuietTenantJumpTheQueue)
{
    AdmissionController admission(AdmissionConfig{});
    ASSERT_TRUE(admission.Admit(1, "chatty").ok());
    ASSERT_TRUE(admission.Admit(2, "chatty").ok());
    ASSERT_TRUE(admission.Admit(3, "quiet").ok());

    uint64_t id = 0;
    ASSERT_TRUE(admission.PickNext(&id));
    EXPECT_EQ(id, 1u);  // nobody running yet: plain FIFO
    ASSERT_TRUE(admission.PickNext(&id));
    EXPECT_EQ(id, 3u);  // chatty now holds a worker; quiet's first jumps
    ASSERT_TRUE(admission.PickNext(&id));
    EXPECT_EQ(id, 2u);
    EXPECT_FALSE(admission.PickNext(&id));
}

TEST(Admission, EffectiveQuotaClampsToCaps)
{
    AdmissionConfig config;
    config.default_max_instructions = 1000;
    config.max_instructions_cap = 5000;
    config.max_trace_bytes_cap = 4096;
    AdmissionController admission(config);

    JobQuota asked;  // all zero: take defaults
    JobQuota got = admission.EffectiveQuota(asked);
    EXPECT_EQ(got.max_instructions, 1000u);

    asked.max_instructions = 9999999;
    asked.max_trace_bytes = 1u << 30;
    got = admission.EffectiveQuota(asked);
    EXPECT_EQ(got.max_instructions, 5000u);
    EXPECT_EQ(got.max_trace_bytes, 4096u);
}

// ---------------------------------------------------------------------------
// ServeCore in drill mode (workers == 0, synchronous, in-memory disk).

ServeConfig
DrillConfig()
{
    ServeConfig config;
    config.dir = ".";
    config.workers = 0;
    config.buffer_bytes = 4u << 10;
    config.chunk_records = 64;
    config.checkpoint_every_fills = 1;
    config.keep_checkpoints = 2;
    config.admission.default_max_instructions = 20'000;
    return config;
}

std::string
SubmitPayload(const std::string& workload = "grep")
{
    Request request;
    request.op = RequestOp::kSubmit;
    request.workload = workload;
    return SerializeRequest(request);
}

uint64_t
SubmitOk(ServeCore& core, const std::string& workload = "grep")
{
    const std::string response = core.HandleRequest(SubmitPayload(workload));
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(response);
    EXPECT_TRUE(doc.ok() && doc->Get("ok").AsBool()) << response;
    if (!doc.ok())
        return 0;
    return doc->Get("id").AsU64();
}

const JobInfo*
FindJob(const std::vector<JobInfo>& jobs, uint64_t id)
{
    for (const JobInfo& job : jobs)
        if (job.id == id)
            return &job;
    return nullptr;
}

TEST(ServeCore, SubmitRunStatusLifecycle)
{
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());

    const uint64_t id = SubmitOk(core);
    ASSERT_NE(id, 0u);
    EXPECT_TRUE(core.RunNextQueuedJob());
    EXPECT_FALSE(core.RunNextQueuedJob());  // queue drained

    const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* job = FindJob(jobs, id);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state, JobState::kDone);
    EXPECT_EQ(job->outcome, "done");
    EXPECT_GT(job->records, 0u);
    core.Shutdown();
}

TEST(ServeCore, RejectsUnknownWorkloadAndBadPayloads)
{
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());

    EXPECT_FALSE(
        ResponseStatus(core.HandleRequest(SubmitPayload("no-such"))).ok());
    EXPECT_FALSE(ResponseStatus(core.HandleRequest("not json")).ok());
    EXPECT_FALSE(ResponseStatus(core.HandleRequest(
                                    R"({"v":"bogus","op":"ping"})"))
                     .ok());
    EXPECT_TRUE(core.Jobs().empty());  // none of it was admitted
    core.Shutdown();
}

TEST(ServeCore, CancelQueuedJobBeforeItRuns)
{
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());

    const uint64_t id = SubmitOk(core);
    Request cancel;
    cancel.op = RequestOp::kCancel;
    cancel.id = id;
    cancel.has_id = true;
    EXPECT_TRUE(
        ResponseStatus(core.HandleRequest(SerializeRequest(cancel))).ok());
    EXPECT_FALSE(core.RunNextQueuedJob());  // nothing left to run

    const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* job = FindJob(jobs, id);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state, JobState::kCancelled);
    core.Shutdown();
}

TEST(ServeCore, DrainingRefusesNewSubmissionsAsUnavailable)
{
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());
    core.RequestDrain();
    const util::Status refused =
        ResponseStatus(core.HandleRequest(SubmitPayload()));
    EXPECT_EQ(refused.code(), util::StatusCode::kUnavailable);
    core.Shutdown();
}

TEST(ServeCore, OverloadShedsWithResourceExhausted)
{
    ServeConfig config = DrillConfig();
    config.admission.max_queue_depth = 1;
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(config, vfs, &registry);
    ASSERT_TRUE(core.Start().ok());

    ASSERT_NE(SubmitOk(core), 0u);
    const util::Status shed =
        ResponseStatus(core.HandleRequest(SubmitPayload()));
    EXPECT_EQ(shed.code(), util::StatusCode::kResourceExhausted);
    core.Shutdown();
}

// Kill-restart: a daemon that dies with a job mid-flight must, on the
// next start, finish that job exactly once (J1 + J2) — whether by
// checkpoint resume or a fresh re-run.
TEST(ServeCore, KillRestartFinishesInterruptedJobExactlyOnce)
{
    io::MemVfs vfs;
    uint64_t id = 0;
    {
        volatile std::sig_atomic_t stop = 0;
        ServeConfig config = DrillConfig();
        config.external_stop = &stop;
        obs::Registry registry;
        ServeCore core(config, vfs, &registry);
        ASSERT_TRUE(core.Start().ok());
        id = SubmitOk(core);
        ASSERT_NE(id, 0u);
        stop = 1;  // the axe falls at the job's first slice boundary
        EXPECT_TRUE(core.RunNextQueuedJob());
        const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* job = FindJob(jobs, id);
        ASSERT_NE(job, nullptr);
        EXPECT_EQ(job->state, JobState::kInterrupted);
        // No Shutdown(): the core is dropped like a SIGKILLed process.
    }
    {
        obs::Registry registry;
        ServeCore core(DrillConfig(), vfs, &registry);
        ASSERT_TRUE(core.Start().ok());
        while (core.RunNextQueuedJob()) {
        }
        const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* job = FindJob(jobs, id);
        ASSERT_NE(job, nullptr);
        EXPECT_EQ(job->state, JobState::kDone) << job->detail;
        core.Shutdown();
    }
    // J2 in the durable record: exactly one terminal entry for the job.
    int finished = 0;
    for (const JournalRecord& record :
         ScanJournalBytes(ReadAll(vfs, "serve.journal"), nullptr, nullptr))
        if (record.id == id && record.kind == JournalKind::kFinished)
            ++finished;
    EXPECT_EQ(finished, 1);
}

// A job journaled done must never run again on restart (J2), and a
// queued-but-never-started job must be re-admitted and finished (J1).
TEST(ServeCore, RestartRunsQueuedButNeverFinishedJobs)
{
    io::MemVfs vfs;
    uint64_t done_id = 0;
    uint64_t queued_id = 0;
    {
        obs::Registry registry;
        ServeCore core(DrillConfig(), vfs, &registry);
        ASSERT_TRUE(core.Start().ok());
        done_id = SubmitOk(core);
        ASSERT_TRUE(core.RunNextQueuedJob());
        queued_id = SubmitOk(core);
        // Dropped without Shutdown: the queued job never got a worker.
    }
    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());
    while (core.RunNextQueuedJob()) {
    }
    const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* done_job = FindJob(jobs, done_id);
    const JobInfo* queued_job = FindJob(jobs, queued_id);
    ASSERT_NE(done_job, nullptr);
    ASSERT_NE(queued_job, nullptr);
    EXPECT_EQ(done_job->state, JobState::kDone);
    EXPECT_EQ(queued_job->state, JobState::kDone) << queued_job->detail;
    core.Shutdown();

    int done_started = 0;
    for (const JournalRecord& record :
         ScanJournalBytes(ReadAll(vfs, "serve.journal"), nullptr, nullptr))
        if (record.id == done_id && record.kind == JournalKind::kStarted)
            ++done_started;
    EXPECT_EQ(done_started, 1) << "finished job was started again";
}

TEST(ServeCore, ByteQuotaStopsARunawayTrace)
{
    ServeConfig config = DrillConfig();
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(config, vfs, &registry);
    ASSERT_TRUE(core.Start().ok());

    Request request;
    request.op = RequestOp::kSubmit;
    request.workload = "grep";
    request.quota.max_instructions = 1'000'000;
    request.quota.max_trace_bytes = 8192;
    const std::string response =
        core.HandleRequest(SerializeRequest(request));
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(response);
    ASSERT_TRUE(doc.ok() && doc->Get("ok").AsBool()) << response;
    const uint64_t id = doc->Get("id").AsU64();

    EXPECT_TRUE(core.RunNextQueuedJob());
    const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* job = FindJob(jobs, id);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->outcome, "quota-bytes") << job->detail;
    EXPECT_EQ(job->state, JobState::kDone);
    core.Shutdown();
}

// ---------------------------------------------------------------------------
// Replay sweeps through the ServeCore.

std::vector<SweepConfigSpec>
ThreeSweepConfigs()
{
    SweepConfigSpec cache;
    cache.kind = "cache";
    cache.size_kb = 8;
    cache.assoc = 2;
    SweepConfigSpec hierarchy;
    hierarchy.kind = "hierarchy";
    hierarchy.size_kb = 32;
    SweepConfigSpec tlb;
    tlb.kind = "tlb";
    tlb.entries = 16;
    tlb.ways = 4;
    return {cache, hierarchy, tlb};
}

uint64_t
SweepOk(ServeCore& core, uint64_t of,
        const std::vector<SweepConfigSpec>& configs)
{
    Request request;
    request.op = RequestOp::kSweep;
    request.sweep_of = of;
    request.sweep_configs = configs;
    const std::string response =
        core.HandleRequest(SerializeRequest(request));
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(response);
    EXPECT_TRUE(doc.ok() && doc->Get("ok").AsBool()) << response;
    if (!doc.ok())
        return 0;
    return doc->Get("id").AsU64();
}

/** Byte offset just past framed record `index` (frames map 1:1 onto
 *  ScanJournalBytes order), for cutting a journal at a frame boundary. */
size_t
FrameEndOffset(const std::string& bytes, size_t index)
{
    size_t off = 0;
    for (size_t i = 0;; ++i) {
        EXPECT_LE(off + 8, bytes.size());
        uint32_t len = 0;
        for (int b = 0; b < 4; ++b)
            len |= static_cast<uint32_t>(
                       static_cast<unsigned char>(bytes[off + b]))
                   << (8 * b);
        off += 8 + len;
        if (i == index)
            return off;
    }
}

TEST(ServeCore, SweepReplaysFinishedCaptureAcrossConfigs)
{
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());

    const uint64_t capture = SubmitOk(core);
    ASSERT_TRUE(core.RunNextQueuedJob());
    const uint64_t sweep = SweepOk(core, capture, ThreeSweepConfigs());
    ASSERT_NE(sweep, 0u);
    ASSERT_TRUE(core.RunNextQueuedJob());

    const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* job = FindJob(jobs, sweep);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->kind, "sweep");
    EXPECT_EQ(job->sweep_of, capture);
    EXPECT_EQ(job->state, JobState::kDone);
    EXPECT_EQ(job->outcome, "done") << job->detail;
    EXPECT_EQ(job->configs_done, 3u);
    EXPECT_EQ(job->configs_failed, 0u);
    ASSERT_EQ(job->sweep_rows.size(), 3u);
    for (size_t i = 0; i < job->sweep_rows.size(); ++i) {
        util::StatusOr<util::JsonValue> row =
            util::JsonValue::Parse(job->sweep_rows[i]);
        ASSERT_TRUE(row.ok()) << job->sweep_rows[i];
        EXPECT_EQ(row->Get("config").AsU64(), i);
        EXPECT_EQ(row->Get("status").AsString(), "ok");
        EXPECT_GT(row->Get("records").AsU64(), 0u);
    }
    core.Shutdown();
}

TEST(ServeCore, SweepRejectsMissingOrUnfinishedTarget)
{
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());

    Request request;
    request.op = RequestOp::kSweep;
    request.sweep_of = 99;  // no such job
    request.sweep_configs = ThreeSweepConfigs();
    EXPECT_FALSE(
        ResponseStatus(core.HandleRequest(SerializeRequest(request))).ok());

    const uint64_t queued = SubmitOk(core);  // exists but never ran
    request.sweep_of = queued;
    EXPECT_FALSE(
        ResponseStatus(core.HandleRequest(SerializeRequest(request))).ok());
    core.Shutdown();
}

// Per-row isolation: one config with impossible geometry must cost
// exactly its own row — the sweep still terminates, the good configs
// still produce canonical rows, and the outcome degrades to "partial".
TEST(ServeCore, SweepIsolatesBadConfigToOneFailedRow)
{
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());

    const uint64_t capture = SubmitOk(core);
    ASSERT_TRUE(core.RunNextQueuedJob());
    std::vector<SweepConfigSpec> configs = ThreeSweepConfigs();
    configs[1].kind = "cache";
    configs[1].block = 24;  // not a power of two: ValidateConfig rejects
    const uint64_t sweep = SweepOk(core, capture, configs);
    ASSERT_NE(sweep, 0u);
    ASSERT_TRUE(core.RunNextQueuedJob());

    const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* job = FindJob(jobs, sweep);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state, JobState::kDone);
    EXPECT_EQ(job->outcome, "partial") << job->detail;
    EXPECT_EQ(job->configs_done, 2u);
    EXPECT_EQ(job->configs_failed, 1u);
    ASSERT_EQ(job->sweep_rows.size(), 3u);
    util::StatusOr<util::JsonValue> bad =
        util::JsonValue::Parse(job->sweep_rows[1]);
    ASSERT_TRUE(bad.ok());
    EXPECT_NE(bad->Get("status").AsString(), "ok");
    EXPECT_FALSE(bad->Get("error").AsString().empty());
    core.Shutdown();
}

// The resume drill, hand-built: run a sweep cleanly, then cut the
// journal back to just after its first per-config record — exactly the
// state a power cut mid-sweep leaves — and boot a fresh core on it. The
// recovered sweep must resume from the journaled high-water mark (the
// surviving row is never re-run: S4/J2) and the merged result must be
// byte-identical to the clean run (S5).
TEST(ServeCore, KillRestartResumesSweepFromJournaledRows)
{
    io::MemVfs vfs;
    uint64_t sweep = 0;
    std::vector<std::string> golden;
    {
        obs::Registry registry;
        ServeCore core(DrillConfig(), vfs, &registry);
        ASSERT_TRUE(core.Start().ok());
        const uint64_t capture = SubmitOk(core);
        ASSERT_TRUE(core.RunNextQueuedJob());
        sweep = SweepOk(core, capture, ThreeSweepConfigs());
        ASSERT_NE(sweep, 0u);
        ASSERT_TRUE(core.RunNextQueuedJob());
        const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* job = FindJob(jobs, sweep);
        ASSERT_NE(job, nullptr);
        ASSERT_EQ(job->outcome, "done") << job->detail;
        golden = job->sweep_rows;
        // Dropped without Shutdown, like a SIGKILLed daemon.
    }

    // Cut the journal back to the end of the sweep's first row record.
    const std::string bytes = ReadAll(vfs, "serve.journal");
    const std::vector<JournalRecord> records =
        ScanJournalBytes(bytes, nullptr, nullptr);
    size_t first_row_index = records.size();
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].kind == JournalKind::kSweepConfig) {
            first_row_index = i;
            break;
        }
    }
    ASSERT_LT(first_row_index, records.size());
    WriteAll(vfs, "serve.journal",
             bytes.substr(0, FrameEndOffset(bytes, first_row_index)));

    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());
    while (core.RunNextQueuedJob()) {
    }
    const std::vector<JobInfo> jobs = core.Jobs();
    const JobInfo* job = FindJob(jobs, sweep);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state, JobState::kDone);
    EXPECT_EQ(job->outcome, "done") << job->detail;
    EXPECT_TRUE(job->resumed);  // it continued, it did not start over
    ASSERT_EQ(job->sweep_rows.size(), golden.size());
    for (size_t i = 0; i < golden.size(); ++i)
        EXPECT_EQ(job->sweep_rows[i], golden[i]) << "config " << i;
    core.Shutdown();

    // S4/J2 in the durable record: the journaled config was not re-run —
    // exactly one row record per config survives in the final journal.
    std::vector<int> per_config(golden.size(), 0);
    for (const JournalRecord& record :
         ScanJournalBytes(ReadAll(vfs, "serve.journal"), nullptr, nullptr))
        if (record.id == sweep && record.kind == JournalKind::kSweepConfig)
            ++per_config[record.config_index];
    for (size_t i = 0; i < per_config.size(); ++i)
        EXPECT_EQ(per_config[i], 1) << "config " << i;
}

// ---------------------------------------------------------------------------
// The seeded serve chaos campaign (quick shape; the full 200-seed run is
// scripts/test_serve.sh and the nightly workflow).

TEST(ServeChaos, KillRestartCampaignUpholdsInvariants)
{
    chaos::ServeCampaignSpec spec;
    spec.campaigns = {"powercut", "enospc", "torn-rename"};
    spec.jobs = 3;
    spec.max_instructions = 4000;
    util::StatusOr<chaos::ServeCampaignResult> result =
        chaos::RunServeCampaign(spec, /*first_seed=*/1, /*seeds=*/4);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const chaos::ServeSeedResult& failure : result->failures)
        ADD_FAILURE() << failure.Summary();
    EXPECT_GE(result->power_cuts, 1u);
}

// The sweep variant: light captures plus seed-scripted sweeps (some with
// a deliberately bad config), killed and recovered under the same fault
// mix, with S4/S5 checked per seed. The shape matches what
// `atum-chaos --serve --sweeps` defaults to.
TEST(ServeChaos, SweepKillRestartCampaignUpholdsS4AndS5)
{
    chaos::ServeCampaignSpec spec;
    spec.campaigns = {"powercut", "enospc", "torn-rename"};
    spec.jobs = 2;
    spec.max_instructions = 2000;
    spec.buffer_bytes = 8u << 10;
    spec.sweeps = 2;
    spec.sweep_configs = 3;
    util::StatusOr<chaos::ServeCampaignResult> result =
        chaos::RunServeCampaign(spec, /*first_seed=*/1, /*seeds=*/6);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const chaos::ServeSeedResult& failure : result->failures)
        ADD_FAILURE() << failure.Summary();
    EXPECT_GE(result->sweeps_acked, 1u);
    EXPECT_GE(result->sweep_rows, 1u);
}

// ---------------------------------------------------------------------------
// Connection governance (pure bookkeeping over an injected clock).

TEST(ConnGovernor, GlobalCapShedsAndCloseReleases)
{
    ConnGovernorConfig config;
    config.max_connections = 2;
    ConnGovernor governor(config);

    EXPECT_TRUE(governor.OnAccept(1, 0).ok());
    EXPECT_TRUE(governor.OnAccept(2, 0).ok());
    util::Status shed = governor.OnAccept(3, 0);
    EXPECT_EQ(shed.code(), util::StatusCode::kResourceExhausted)
        << shed.ToString();
    EXPECT_EQ(governor.open_connections(), 2u);

    governor.OnClose(1);
    EXPECT_TRUE(governor.OnAccept(3, 0).ok());  // the slot came back
}

TEST(ConnGovernor, PerTenantShareIsEnforcedAndMovable)
{
    ConnGovernorConfig config;
    config.max_per_tenant = 1;
    ConnGovernor governor(config);

    ASSERT_TRUE(governor.OnAccept(1, 0).ok());
    ASSERT_TRUE(governor.OnAccept(2, 0).ok());
    EXPECT_TRUE(governor.OnTenant(1, "alice").ok());
    util::Status full = governor.OnTenant(2, "alice");
    EXPECT_EQ(full.code(), util::StatusCode::kResourceExhausted)
        << full.ToString();
    EXPECT_TRUE(governor.OnTenant(2, "bob").ok());

    // Re-naming moves the charge: alice's share frees, bob's fills.
    EXPECT_TRUE(governor.OnTenant(1, "carol").ok());
    ASSERT_TRUE(governor.OnAccept(3, 0).ok());
    EXPECT_TRUE(governor.OnTenant(3, "alice").ok());

    // Closing releases the tenant charge too.
    governor.OnClose(2);
    ASSERT_TRUE(governor.OnAccept(4, 0).ok());
    EXPECT_TRUE(governor.OnTenant(4, "bob").ok());
}

TEST(ConnGovernor, IdleConnectionsAreNamedForEviction)
{
    ConnGovernorConfig config;
    config.idle_timeout_ms = 100;
    ConnGovernor governor(config);

    ASSERT_TRUE(governor.OnAccept(1, 0).ok());
    ASSERT_TRUE(governor.OnAccept(2, 0).ok());
    governor.OnActivity(2, 90);

    std::vector<uint64_t> idle = governor.IdleConnections(150);
    ASSERT_EQ(idle.size(), 1u);
    EXPECT_EQ(idle[0], 1u);  // silent since 0; 2 spoke at 90

    // Activity resets the clock; both go quiet long enough and both
    // are named.
    governor.OnActivity(1, 150);
    governor.OnActivity(2, 160);
    EXPECT_TRUE(governor.IdleConnections(200).empty());
    idle = governor.IdleConnections(400);
    std::sort(idle.begin(), idle.end());
    ASSERT_EQ(idle.size(), 2u);
    EXPECT_EQ(idle[0], 1u);
    EXPECT_EQ(idle[1], 2u);
}

// ---------------------------------------------------------------------------
// Exactly-once submits: the idempotency-token dedup map, live and
// across a kill-restart (N1 at unit scale; the campaigns below drive it
// through a hostile wire).

std::string
TokenSubmitPayload(const std::string& token)
{
    Request request;
    request.op = RequestOp::kSubmit;
    request.workload = "grep";
    request.client_token = token;
    return SerializeRequest(request);
}

/** id and "dup" flag from a submit response (asserts ok). */
std::pair<uint64_t, bool>
SubmitAck(ServeCore& core, const std::string& token)
{
    const std::string response =
        core.HandleRequest(TokenSubmitPayload(token));
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(response);
    EXPECT_TRUE(doc.ok() && doc->Get("ok").AsBool()) << response;
    if (!doc.ok())
        return {0, false};
    return {doc->Get("id").AsU64(),
            doc->Has("dup") && doc->Get("dup").AsBool()};
}

TEST(ServeCore, DuplicateTokenReturnsSameJobWithoutRerunning)
{
    io::MemVfs vfs;
    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());

    const auto [id, dup] = SubmitAck(core, "tok-once");
    ASSERT_NE(id, 0u);
    EXPECT_FALSE(dup);
    const auto [id2, dup2] = SubmitAck(core, "tok-once");
    EXPECT_EQ(id2, id);
    EXPECT_TRUE(dup2);
    const auto [id3, dup3] = SubmitAck(core, "tok-other");
    EXPECT_NE(id3, id);  // a different token is a different job
    EXPECT_FALSE(dup3);

    while (core.RunNextQueuedJob()) {
    }
    EXPECT_EQ(core.Jobs().size(), 2u);  // two tokens, two jobs — not three
    core.Shutdown();
}

TEST(ServeCore, TokenDedupSurvivesKillRestart)
{
    io::MemVfs vfs;
    uint64_t id = 0;
    {
        obs::Registry registry;
        ServeCore core(DrillConfig(), vfs, &registry);
        ASSERT_TRUE(core.Start().ok());
        std::tie(id, std::ignore) = SubmitAck(core, "tok-crash");
        ASSERT_NE(id, 0u);
        // Dropped without Shutdown, like a SIGKILLed daemon; the ack
        // may or may not have reached the client — it retries.
    }

    obs::Registry registry;
    ServeCore core(DrillConfig(), vfs, &registry);
    ASSERT_TRUE(core.Start().ok());
    const auto [retry_id, retry_dup] = SubmitAck(core, "tok-crash");
    EXPECT_EQ(retry_id, id);  // same token, same job, across the crash
    EXPECT_TRUE(retry_dup);
    while (core.RunNextQueuedJob()) {
    }
    EXPECT_EQ(core.Jobs().size(), 1u);
    core.Shutdown();
}

// ---------------------------------------------------------------------------
// The hostile-network drills (quick shapes; the 200-seed acceptance run
// is scripts/test_serve.sh and the nightly workflow).

chaos::NetCampaignSpec
QuickNetSpec()
{
    chaos::NetCampaignSpec spec;
    spec.submits = 3;
    spec.max_instructions = 2000;
    return spec;
}

TEST(NetChaos, HostileWireCampaignUpholdsN1N2N3)
{
    chaos::NetCampaignSpec spec = QuickNetSpec();
    spec.campaigns = {"net-flaky", "net-cut", "net-flip",
                      "net-stall", "net-dup", "net-kill"};
    util::StatusOr<chaos::NetCampaignResult> result =
        chaos::RunNetCampaign(spec, /*first_seed=*/1, /*seeds=*/6);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const chaos::NetSeedResult& failure : result->failures)
        ADD_FAILURE() << failure.Summary();
    EXPECT_GT(result->faults_fired, 0u);
    EXPECT_GT(result->acks, 0u);
}

// The teeth test: reintroduce the pre-hardening bug (no idempotency
// dedup) behind its test knob and prove a hand-written two-op net
// schedule — a duplicated submit delivery — is caught as the N1
// "net-double-run" violation, while the hardened daemon sails through
// the identical drill. If the battery cannot bite this, it cannot bite
// anything.
struct TokenDedupBugGuard {
    TokenDedupBugGuard() { SetTokenDedupForTest(false); }
    ~TokenDedupBugGuard() { SetTokenDedupForTest(true); }
};

io::ChaosSchedule
DupDeliverySchedule()
{
    io::ChaosSchedule schedule;
    schedule.seed = 11;
    schedule.campaigns = {"net-dup"};
    io::ChaosOp dup;
    dup.kind = io::ChaosOpKind::kDupRequest;
    dup.at = 1;  // the first scripted request is always a tokened submit
    schedule.ops = {dup};
    return schedule;
}

TEST(NetChaos, TeethDedupBugIsCaughtAsDoubleRunAndFixPasses)
{
    const chaos::NetCampaignSpec spec = QuickNetSpec();
    const io::ChaosSchedule schedule = DupDeliverySchedule();

    util::StatusOr<chaos::NetSeedResult> good =
        chaos::ReplayNetSchedule(spec, schedule);
    ASSERT_TRUE(good.ok()) << good.status().ToString();
    EXPECT_TRUE(good->ok()) << good->Summary();
    EXPECT_GE(good->dup_acks, 1u);  // dedup answered the duplicate

    {
        TokenDedupBugGuard bug;
        util::StatusOr<chaos::NetSeedResult> broken =
            chaos::ReplayNetSchedule(spec, schedule);
        ASSERT_TRUE(broken.ok()) << broken.status().ToString();
        ASSERT_FALSE(broken->ok()) << "the drill failed to bite the bug";
        EXPECT_EQ(broken->violations[0].invariant, "net-double-run")
            << broken->Summary();
    }

    util::StatusOr<chaos::NetSeedResult> fixed =
        chaos::ReplayNetSchedule(spec, schedule);
    ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
    EXPECT_TRUE(fixed->ok()) << fixed->Summary();
}

// Minimization must strip the noise ops and hand back exactly the
// duplicate delivery that trips the reintroduced bug.
TEST(NetChaos, MinimizeNetShrinksToTheDuplicateDelivery)
{
    const chaos::NetCampaignSpec spec = QuickNetSpec();
    io::ChaosSchedule noisy = DupDeliverySchedule();
    io::ChaosOp shorts;
    shorts.kind = io::ChaosOpKind::kShortSend;
    shorts.at = 2;
    shorts.arg = 3;
    io::ChaosOp stall;
    stall.kind = io::ChaosOpKind::kStallRecv;
    stall.at = 200;  // far past the drill's recv count: never fires
    noisy.ops.push_back(shorts);
    noisy.ops.push_back(stall);

    TokenDedupBugGuard bug;
    util::StatusOr<io::ChaosSchedule> minimal =
        chaos::MinimizeNet(spec, noisy);
    ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
    ASSERT_EQ(minimal->ops.size(), 1u);
    EXPECT_EQ(minimal->ops[0].kind, io::ChaosOpKind::kDupRequest);
    EXPECT_EQ(minimal->ops[0].at, 1u);

    // The minimized schedule round-trips through its text form and
    // still reproduces — the artifact a failing campaign writes out.
    util::StatusOr<io::ChaosSchedule> reparsed =
        io::ChaosSchedule::Parse(minimal->Serialize());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    util::StatusOr<chaos::NetSeedResult> replay =
        chaos::ReplayNetSchedule(spec, *reparsed);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_FALSE(replay->ok());
}

// ---------------------------------------------------------------------------
// Protocol fuzzing: the seeded sweep stays clean, and the pinned corpus
// of hostile byte strings replays through the codec within its contract
// (no crash, no hang, no over-buffering) — the fuzz-regression lane.

TEST(ProtocolFuzz, SeededSweepFindsNoCodecViolations)
{
    const chaos::FuzzReport report = chaos::FuzzProtocol(/*seed=*/1,
                                                         /*inputs=*/2000);
    for (const chaos::InvariantViolation& violation : report.violations)
        ADD_FAILURE() << violation.invariant << ": " << violation.detail;
    EXPECT_EQ(report.inputs, 2000u);
    EXPECT_GT(report.frames, 0u);
    EXPECT_GT(report.parsed, 0u);
    EXPECT_GT(report.rejected, 0u);
}

std::vector<std::filesystem::path>
ProtocolCorpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(ATUM_PROTOCOL_CORPUS_DIR))
        if (entry.path().extension() == ".bin")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(ProtocolFuzz, PinnedCorpusReplaysWithinTheCodecContract)
{
    const std::vector<std::filesystem::path> files = ProtocolCorpusFiles();
    ASSERT_GE(files.size(), 10u)
        << "pinned corpus went missing from " << ATUM_PROTOCOL_CORPUS_DIR;

    for (const std::filesystem::path& path : files) {
        SCOPED_TRACE(path.filename().string());
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good());
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());

        FrameParser parser;
        int steps = 0;
        bool poisoned = false;
        for (size_t off = 0; off < bytes.size() && !poisoned; off += 7) {
            parser.Feed(bytes.data() + off,
                        std::min<size_t>(7, bytes.size() - off));
            for (;;) {
                ASSERT_LT(++steps, 10'000) << "frame extraction wedged";
                std::string payload;
                util::StatusOr<bool> got = parser.Next(&payload);
                if (!got.ok()) {
                    // Poisoned (oversized length): a structured error,
                    // and the connection would close — stop feeding.
                    poisoned = true;
                    break;
                }
                if (!*got)
                    break;
                util::StatusOr<Request> request = ParseRequest(payload);
                if (request.ok()) {
                    // Valid requests must round-trip through the codec.
                    util::StatusOr<Request> again =
                        ParseRequest(SerializeRequest(*request));
                    ASSERT_TRUE(again.ok()) << again.status().ToString();
                    EXPECT_EQ(again->op, request->op);
                }
            }
            EXPECT_LE(parser.pending_bytes(),
                      size_t{kMaxFrameBytes} + 4)
                << "parser buffered past the frame cap";
        }
    }
}

}  // namespace
}  // namespace atum::serve
