# Empty dependencies file for atum-disasm.
# This may be replaced when dependencies are built.
