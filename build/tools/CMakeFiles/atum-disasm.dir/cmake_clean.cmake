file(REMOVE_RECURSE
  "CMakeFiles/atum-disasm.dir/atum_disasm.cc.o"
  "CMakeFiles/atum-disasm.dir/atum_disasm.cc.o.d"
  "atum-disasm"
  "atum-disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum-disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
