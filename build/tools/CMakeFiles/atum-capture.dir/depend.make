# Empty dependencies file for atum-capture.
# This may be replaced when dependencies are built.
