file(REMOVE_RECURSE
  "CMakeFiles/atum-capture.dir/atum_capture.cc.o"
  "CMakeFiles/atum-capture.dir/atum_capture.cc.o.d"
  "atum-capture"
  "atum-capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum-capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
