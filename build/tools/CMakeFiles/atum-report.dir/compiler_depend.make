# Empty compiler generated dependencies file for atum-report.
# This may be replaced when dependencies are built.
