file(REMOVE_RECURSE
  "CMakeFiles/atum-report.dir/atum_report.cc.o"
  "CMakeFiles/atum-report.dir/atum_report.cc.o.d"
  "atum-report"
  "atum-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum-report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
