# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_pipeline "/root/repo/scripts/test_tools.sh" "/root/repo/build")
set_tests_properties(tools_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
