# Empty compiler generated dependencies file for bench_f1_miss_vs_cachesize.
# This may be replaced when dependencies are built.
