file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_miss_vs_cachesize.dir/bench_f1_miss_vs_cachesize.cc.o"
  "CMakeFiles/bench_f1_miss_vs_cachesize.dir/bench_f1_miss_vs_cachesize.cc.o.d"
  "bench_f1_miss_vs_cachesize"
  "bench_f1_miss_vs_cachesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_miss_vs_cachesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
