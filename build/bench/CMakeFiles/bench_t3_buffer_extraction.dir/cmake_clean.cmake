file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_buffer_extraction.dir/bench_t3_buffer_extraction.cc.o"
  "CMakeFiles/bench_t3_buffer_extraction.dir/bench_t3_buffer_extraction.cc.o.d"
  "bench_t3_buffer_extraction"
  "bench_t3_buffer_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_buffer_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
