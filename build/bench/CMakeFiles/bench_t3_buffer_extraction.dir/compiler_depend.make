# Empty compiler generated dependencies file for bench_t3_buffer_extraction.
# This may be replaced when dependencies are built.
