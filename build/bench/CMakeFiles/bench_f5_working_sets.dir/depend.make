# Empty dependencies file for bench_f5_working_sets.
# This may be replaced when dependencies are built.
