file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_working_sets.dir/bench_f5_working_sets.cc.o"
  "CMakeFiles/bench_f5_working_sets.dir/bench_f5_working_sets.cc.o.d"
  "bench_f5_working_sets"
  "bench_f5_working_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_working_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
