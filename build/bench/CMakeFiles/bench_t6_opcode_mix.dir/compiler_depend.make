# Empty compiler generated dependencies file for bench_t6_opcode_mix.
# This may be replaced when dependencies are built.
