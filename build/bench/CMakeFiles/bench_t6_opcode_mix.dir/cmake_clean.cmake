file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_opcode_mix.dir/bench_t6_opcode_mix.cc.o"
  "CMakeFiles/bench_t6_opcode_mix.dir/bench_t6_opcode_mix.cc.o.d"
  "bench_t6_opcode_mix"
  "bench_t6_opcode_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_opcode_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
