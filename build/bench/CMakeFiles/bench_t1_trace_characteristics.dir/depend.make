# Empty dependencies file for bench_t1_trace_characteristics.
# This may be replaced when dependencies are built.
