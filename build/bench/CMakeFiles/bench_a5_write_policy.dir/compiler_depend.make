# Empty compiler generated dependencies file for bench_a5_write_policy.
# This may be replaced when dependencies are built.
