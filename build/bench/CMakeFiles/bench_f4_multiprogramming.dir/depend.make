# Empty dependencies file for bench_f4_multiprogramming.
# This may be replaced when dependencies are built.
