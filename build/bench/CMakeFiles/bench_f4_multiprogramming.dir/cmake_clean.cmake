file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_multiprogramming.dir/bench_f4_multiprogramming.cc.o"
  "CMakeFiles/bench_f4_multiprogramming.dir/bench_f4_multiprogramming.cc.o.d"
  "bench_f4_multiprogramming"
  "bench_f4_multiprogramming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_multiprogramming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
