# Empty compiler generated dependencies file for bench_a7_set_sampling.
# This may be replaced when dependencies are built.
