file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_set_sampling.dir/bench_a7_set_sampling.cc.o"
  "CMakeFiles/bench_a7_set_sampling.dir/bench_a7_set_sampling.cc.o.d"
  "bench_a7_set_sampling"
  "bench_a7_set_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_set_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
