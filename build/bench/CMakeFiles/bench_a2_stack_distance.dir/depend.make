# Empty dependencies file for bench_a2_stack_distance.
# This may be replaced when dependencies are built.
