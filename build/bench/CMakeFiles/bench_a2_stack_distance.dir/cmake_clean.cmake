file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_stack_distance.dir/bench_a2_stack_distance.cc.o"
  "CMakeFiles/bench_a2_stack_distance.dir/bench_a2_stack_distance.cc.o.d"
  "bench_a2_stack_distance"
  "bench_a2_stack_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_stack_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
