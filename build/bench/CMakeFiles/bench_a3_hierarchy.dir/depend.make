# Empty dependencies file for bench_a3_hierarchy.
# This may be replaced when dependencies are built.
