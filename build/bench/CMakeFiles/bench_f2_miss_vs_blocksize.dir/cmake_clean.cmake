file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_miss_vs_blocksize.dir/bench_f2_miss_vs_blocksize.cc.o"
  "CMakeFiles/bench_f2_miss_vs_blocksize.dir/bench_f2_miss_vs_blocksize.cc.o.d"
  "bench_f2_miss_vs_blocksize"
  "bench_f2_miss_vs_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_miss_vs_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
