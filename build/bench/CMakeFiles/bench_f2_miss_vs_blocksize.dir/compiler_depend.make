# Empty compiler generated dependencies file for bench_f2_miss_vs_blocksize.
# This may be replaced when dependencies are built.
