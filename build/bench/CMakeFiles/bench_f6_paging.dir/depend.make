# Empty dependencies file for bench_f6_paging.
# This may be replaced when dependencies are built.
