file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_paging.dir/bench_f6_paging.cc.o"
  "CMakeFiles/bench_f6_paging.dir/bench_f6_paging.cc.o.d"
  "bench_f6_paging"
  "bench_f6_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
