file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_slowdown.dir/bench_t2_slowdown.cc.o"
  "CMakeFiles/bench_t2_slowdown.dir/bench_t2_slowdown.cc.o.d"
  "bench_t2_slowdown"
  "bench_t2_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
