# Empty compiler generated dependencies file for bench_t2_slowdown.
# This may be replaced when dependencies are built.
