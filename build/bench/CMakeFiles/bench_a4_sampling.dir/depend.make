# Empty dependencies file for bench_a4_sampling.
# This may be replaced when dependencies are built.
