# Empty dependencies file for bench_a6_machine_tb.
# This may be replaced when dependencies are built.
