file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_machine_tb.dir/bench_a6_machine_tb.cc.o"
  "CMakeFiles/bench_a6_machine_tb.dir/bench_a6_machine_tb.cc.o.d"
  "bench_a6_machine_tb"
  "bench_a6_machine_tb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_machine_tb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
