file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_tlb.dir/bench_t4_tlb.cc.o"
  "CMakeFiles/bench_t4_tlb.dir/bench_t4_tlb.cc.o.d"
  "bench_t4_tlb"
  "bench_t4_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
