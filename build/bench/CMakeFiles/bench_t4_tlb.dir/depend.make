# Empty dependencies file for bench_t4_tlb.
# This may be replaced when dependencies are built.
