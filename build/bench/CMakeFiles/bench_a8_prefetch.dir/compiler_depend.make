# Empty compiler generated dependencies file for bench_a8_prefetch.
# This may be replaced when dependencies are built.
