
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f3_miss_vs_assoc.cc" "bench/CMakeFiles/bench_f3_miss_vs_assoc.dir/bench_f3_miss_vs_assoc.cc.o" "gcc" "bench/CMakeFiles/bench_f3_miss_vs_assoc.dir/bench_f3_miss_vs_assoc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atum_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_tlbsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
