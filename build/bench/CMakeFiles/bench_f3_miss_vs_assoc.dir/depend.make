# Empty dependencies file for bench_f3_miss_vs_assoc.
# This may be replaced when dependencies are built.
