file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_miss_vs_assoc.dir/bench_f3_miss_vs_assoc.cc.o"
  "CMakeFiles/bench_f3_miss_vs_assoc.dir/bench_f3_miss_vs_assoc.cc.o.d"
  "bench_f3_miss_vs_assoc"
  "bench_f3_miss_vs_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_miss_vs_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
