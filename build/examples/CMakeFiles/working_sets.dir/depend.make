# Empty dependencies file for working_sets.
# This may be replaced when dependencies are built.
