file(REMOVE_RECURSE
  "CMakeFiles/working_sets.dir/working_sets.cc.o"
  "CMakeFiles/working_sets.dir/working_sets.cc.o.d"
  "working_sets"
  "working_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/working_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
