file(REMOVE_RECURSE
  "CMakeFiles/ucode_test.dir/ucode_test.cc.o"
  "CMakeFiles/ucode_test.dir/ucode_test.cc.o.d"
  "ucode_test"
  "ucode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
