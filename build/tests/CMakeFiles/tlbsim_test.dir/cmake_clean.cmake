file(REMOVE_RECURSE
  "CMakeFiles/tlbsim_test.dir/tlbsim_test.cc.o"
  "CMakeFiles/tlbsim_test.dir/tlbsim_test.cc.o.d"
  "tlbsim_test"
  "tlbsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlbsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
