# Empty compiler generated dependencies file for tlbsim_test.
# This may be replaced when dependencies are built.
