# Empty compiler generated dependencies file for cpu_exception_test.
# This may be replaced when dependencies are built.
