file(REMOVE_RECURSE
  "CMakeFiles/cpu_exception_test.dir/cpu_exception_test.cc.o"
  "CMakeFiles/cpu_exception_test.dir/cpu_exception_test.cc.o.d"
  "cpu_exception_test"
  "cpu_exception_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_exception_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
