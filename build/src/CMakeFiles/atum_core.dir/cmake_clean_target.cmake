file(REMOVE_RECURSE
  "libatum_core.a"
)
