# Empty compiler generated dependencies file for atum_core.
# This may be replaced when dependencies are built.
