file(REMOVE_RECURSE
  "CMakeFiles/atum_core.dir/core/atum_tracer.cc.o"
  "CMakeFiles/atum_core.dir/core/atum_tracer.cc.o.d"
  "CMakeFiles/atum_core.dir/core/session.cc.o"
  "CMakeFiles/atum_core.dir/core/session.cc.o.d"
  "CMakeFiles/atum_core.dir/core/user_tracer.cc.o"
  "CMakeFiles/atum_core.dir/core/user_tracer.cc.o.d"
  "libatum_core.a"
  "libatum_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
