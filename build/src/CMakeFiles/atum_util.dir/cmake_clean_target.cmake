file(REMOVE_RECURSE
  "libatum_util.a"
)
