file(REMOVE_RECURSE
  "CMakeFiles/atum_util.dir/util/logging.cc.o"
  "CMakeFiles/atum_util.dir/util/logging.cc.o.d"
  "CMakeFiles/atum_util.dir/util/rng.cc.o"
  "CMakeFiles/atum_util.dir/util/rng.cc.o.d"
  "CMakeFiles/atum_util.dir/util/stats.cc.o"
  "CMakeFiles/atum_util.dir/util/stats.cc.o.d"
  "CMakeFiles/atum_util.dir/util/table.cc.o"
  "CMakeFiles/atum_util.dir/util/table.cc.o.d"
  "libatum_util.a"
  "libatum_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
