# Empty compiler generated dependencies file for atum_util.
# This may be replaced when dependencies are built.
