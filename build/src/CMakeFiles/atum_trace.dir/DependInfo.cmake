
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/compress.cc" "src/CMakeFiles/atum_trace.dir/trace/compress.cc.o" "gcc" "src/CMakeFiles/atum_trace.dir/trace/compress.cc.o.d"
  "/root/repo/src/trace/record.cc" "src/CMakeFiles/atum_trace.dir/trace/record.cc.o" "gcc" "src/CMakeFiles/atum_trace.dir/trace/record.cc.o.d"
  "/root/repo/src/trace/sink.cc" "src/CMakeFiles/atum_trace.dir/trace/sink.cc.o" "gcc" "src/CMakeFiles/atum_trace.dir/trace/sink.cc.o.d"
  "/root/repo/src/trace/stats.cc" "src/CMakeFiles/atum_trace.dir/trace/stats.cc.o" "gcc" "src/CMakeFiles/atum_trace.dir/trace/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
