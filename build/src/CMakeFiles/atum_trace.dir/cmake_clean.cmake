file(REMOVE_RECURSE
  "CMakeFiles/atum_trace.dir/trace/compress.cc.o"
  "CMakeFiles/atum_trace.dir/trace/compress.cc.o.d"
  "CMakeFiles/atum_trace.dir/trace/record.cc.o"
  "CMakeFiles/atum_trace.dir/trace/record.cc.o.d"
  "CMakeFiles/atum_trace.dir/trace/sink.cc.o"
  "CMakeFiles/atum_trace.dir/trace/sink.cc.o.d"
  "CMakeFiles/atum_trace.dir/trace/stats.cc.o"
  "CMakeFiles/atum_trace.dir/trace/stats.cc.o.d"
  "libatum_trace.a"
  "libatum_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
