file(REMOVE_RECURSE
  "libatum_trace.a"
)
