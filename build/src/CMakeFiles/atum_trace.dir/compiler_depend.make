# Empty compiler generated dependencies file for atum_trace.
# This may be replaced when dependencies are built.
