file(REMOVE_RECURSE
  "CMakeFiles/atum_cpu.dir/cpu/exceptions.cc.o"
  "CMakeFiles/atum_cpu.dir/cpu/exceptions.cc.o.d"
  "CMakeFiles/atum_cpu.dir/cpu/executor.cc.o"
  "CMakeFiles/atum_cpu.dir/cpu/executor.cc.o.d"
  "CMakeFiles/atum_cpu.dir/cpu/machine.cc.o"
  "CMakeFiles/atum_cpu.dir/cpu/machine.cc.o.d"
  "libatum_cpu.a"
  "libatum_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
