# Empty dependencies file for atum_cpu.
# This may be replaced when dependencies are built.
