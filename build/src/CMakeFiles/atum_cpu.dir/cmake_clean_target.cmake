file(REMOVE_RECURSE
  "libatum_cpu.a"
)
