file(REMOVE_RECURSE
  "CMakeFiles/atum_kernel.dir/kernel/boot.cc.o"
  "CMakeFiles/atum_kernel.dir/kernel/boot.cc.o.d"
  "CMakeFiles/atum_kernel.dir/kernel/kernel_builder.cc.o"
  "CMakeFiles/atum_kernel.dir/kernel/kernel_builder.cc.o.d"
  "CMakeFiles/atum_kernel.dir/kernel/layout.cc.o"
  "CMakeFiles/atum_kernel.dir/kernel/layout.cc.o.d"
  "libatum_kernel.a"
  "libatum_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
