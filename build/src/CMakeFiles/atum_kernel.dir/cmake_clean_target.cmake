file(REMOVE_RECURSE
  "libatum_kernel.a"
)
