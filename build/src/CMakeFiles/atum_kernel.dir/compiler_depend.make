# Empty compiler generated dependencies file for atum_kernel.
# This may be replaced when dependencies are built.
