file(REMOVE_RECURSE
  "libatum_ucode.a"
)
