file(REMOVE_RECURSE
  "CMakeFiles/atum_ucode.dir/ucode/control_store.cc.o"
  "CMakeFiles/atum_ucode.dir/ucode/control_store.cc.o.d"
  "CMakeFiles/atum_ucode.dir/ucode/micro_op.cc.o"
  "CMakeFiles/atum_ucode.dir/ucode/micro_op.cc.o.d"
  "libatum_ucode.a"
  "libatum_ucode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_ucode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
