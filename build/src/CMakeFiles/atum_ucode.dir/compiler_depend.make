# Empty compiler generated dependencies file for atum_ucode.
# This may be replaced when dependencies are built.
