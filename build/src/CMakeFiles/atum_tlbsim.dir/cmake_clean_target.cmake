file(REMOVE_RECURSE
  "libatum_tlbsim.a"
)
