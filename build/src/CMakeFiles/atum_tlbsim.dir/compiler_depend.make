# Empty compiler generated dependencies file for atum_tlbsim.
# This may be replaced when dependencies are built.
