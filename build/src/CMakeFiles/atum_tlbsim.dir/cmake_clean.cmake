file(REMOVE_RECURSE
  "CMakeFiles/atum_tlbsim.dir/tlbsim/tlb_sim.cc.o"
  "CMakeFiles/atum_tlbsim.dir/tlbsim/tlb_sim.cc.o.d"
  "libatum_tlbsim.a"
  "libatum_tlbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_tlbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
