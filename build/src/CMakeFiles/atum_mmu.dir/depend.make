# Empty dependencies file for atum_mmu.
# This may be replaced when dependencies are built.
