file(REMOVE_RECURSE
  "CMakeFiles/atum_mmu.dir/mmu/mmu.cc.o"
  "CMakeFiles/atum_mmu.dir/mmu/mmu.cc.o.d"
  "CMakeFiles/atum_mmu.dir/mmu/tlb.cc.o"
  "CMakeFiles/atum_mmu.dir/mmu/tlb.cc.o.d"
  "libatum_mmu.a"
  "libatum_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
