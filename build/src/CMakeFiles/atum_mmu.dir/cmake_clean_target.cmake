file(REMOVE_RECURSE
  "libatum_mmu.a"
)
