# Empty compiler generated dependencies file for atum_workloads.
# This may be replaced when dependencies are built.
