file(REMOVE_RECURSE
  "CMakeFiles/atum_workloads.dir/workloads/workloads.cc.o"
  "CMakeFiles/atum_workloads.dir/workloads/workloads.cc.o.d"
  "libatum_workloads.a"
  "libatum_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
