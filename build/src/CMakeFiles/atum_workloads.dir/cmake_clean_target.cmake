file(REMOVE_RECURSE
  "libatum_workloads.a"
)
