# Empty compiler generated dependencies file for atum_analysis.
# This may be replaced when dependencies are built.
