file(REMOVE_RECURSE
  "libatum_analysis.a"
)
