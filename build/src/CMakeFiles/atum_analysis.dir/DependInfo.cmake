
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/compare.cc" "src/CMakeFiles/atum_analysis.dir/analysis/compare.cc.o" "gcc" "src/CMakeFiles/atum_analysis.dir/analysis/compare.cc.o.d"
  "/root/repo/src/analysis/mix.cc" "src/CMakeFiles/atum_analysis.dir/analysis/mix.cc.o" "gcc" "src/CMakeFiles/atum_analysis.dir/analysis/mix.cc.o.d"
  "/root/repo/src/analysis/stack_distance.cc" "src/CMakeFiles/atum_analysis.dir/analysis/stack_distance.cc.o" "gcc" "src/CMakeFiles/atum_analysis.dir/analysis/stack_distance.cc.o.d"
  "/root/repo/src/analysis/working_set.cc" "src/CMakeFiles/atum_analysis.dir/analysis/working_set.cc.o" "gcc" "src/CMakeFiles/atum_analysis.dir/analysis/working_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atum_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
