file(REMOVE_RECURSE
  "CMakeFiles/atum_analysis.dir/analysis/compare.cc.o"
  "CMakeFiles/atum_analysis.dir/analysis/compare.cc.o.d"
  "CMakeFiles/atum_analysis.dir/analysis/mix.cc.o"
  "CMakeFiles/atum_analysis.dir/analysis/mix.cc.o.d"
  "CMakeFiles/atum_analysis.dir/analysis/stack_distance.cc.o"
  "CMakeFiles/atum_analysis.dir/analysis/stack_distance.cc.o.d"
  "CMakeFiles/atum_analysis.dir/analysis/working_set.cc.o"
  "CMakeFiles/atum_analysis.dir/analysis/working_set.cc.o.d"
  "libatum_analysis.a"
  "libatum_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
