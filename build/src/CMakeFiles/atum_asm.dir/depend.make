# Empty dependencies file for atum_asm.
# This may be replaced when dependencies are built.
