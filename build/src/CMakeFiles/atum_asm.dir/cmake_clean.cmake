file(REMOVE_RECURSE
  "CMakeFiles/atum_asm.dir/assembler/assembler.cc.o"
  "CMakeFiles/atum_asm.dir/assembler/assembler.cc.o.d"
  "libatum_asm.a"
  "libatum_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
