file(REMOVE_RECURSE
  "libatum_asm.a"
)
