# Empty compiler generated dependencies file for atum_isa.
# This may be replaced when dependencies are built.
