file(REMOVE_RECURSE
  "libatum_isa.a"
)
