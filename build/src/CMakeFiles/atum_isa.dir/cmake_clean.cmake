file(REMOVE_RECURSE
  "CMakeFiles/atum_isa.dir/isa/decoder.cc.o"
  "CMakeFiles/atum_isa.dir/isa/decoder.cc.o.d"
  "CMakeFiles/atum_isa.dir/isa/disassembler.cc.o"
  "CMakeFiles/atum_isa.dir/isa/disassembler.cc.o.d"
  "CMakeFiles/atum_isa.dir/isa/isa.cc.o"
  "CMakeFiles/atum_isa.dir/isa/isa.cc.o.d"
  "libatum_isa.a"
  "libatum_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
