# Empty dependencies file for atum_cache.
# This may be replaced when dependencies are built.
