file(REMOVE_RECURSE
  "CMakeFiles/atum_cache.dir/cache/cache.cc.o"
  "CMakeFiles/atum_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/atum_cache.dir/cache/hierarchy.cc.o"
  "CMakeFiles/atum_cache.dir/cache/hierarchy.cc.o.d"
  "CMakeFiles/atum_cache.dir/cache/trace_driver.cc.o"
  "CMakeFiles/atum_cache.dir/cache/trace_driver.cc.o.d"
  "CMakeFiles/atum_cache.dir/cache/write_buffer.cc.o"
  "CMakeFiles/atum_cache.dir/cache/write_buffer.cc.o.d"
  "libatum_cache.a"
  "libatum_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
