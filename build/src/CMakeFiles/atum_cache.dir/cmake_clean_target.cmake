file(REMOVE_RECURSE
  "libatum_cache.a"
)
