# Empty compiler generated dependencies file for atum_mem.
# This may be replaced when dependencies are built.
