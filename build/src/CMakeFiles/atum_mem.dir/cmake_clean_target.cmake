file(REMOVE_RECURSE
  "libatum_mem.a"
)
