file(REMOVE_RECURSE
  "CMakeFiles/atum_mem.dir/mem/physical_memory.cc.o"
  "CMakeFiles/atum_mem.dir/mem/physical_memory.cc.o.d"
  "libatum_mem.a"
  "libatum_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atum_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
