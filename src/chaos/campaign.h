#ifndef ATUM_CHAOS_CAMPAIGN_H_
#define ATUM_CHAOS_CAMPAIGN_H_

/**
 * @file
 * Seeded crash campaigns and the no-silent-loss invariant checker.
 *
 * One campaign iteration is a complete disaster drill, entirely inside a
 * MemVfs (no host filesystem is touched):
 *
 *   1. roll a deterministic fault schedule for the seed (io/chaos.h),
 *      aimed by a fault-free probe run's operation counts;
 *   2. run a small supervised capture through a ChaosVfs executing that
 *      schedule — faults land mid-drain, mid-checkpoint, mid-rename, or
 *      the power dies outright;
 *   3. recover the way an operator would: reboot onto the crash-
 *      consistent state, resume from the newest loadable checkpoint, or
 *      salvage the bare trace with the tolerant scanner;
 *   4. check the no-silent-loss invariants (docs/CHAOS.md §Invariants):
 *
 *      I1 accounting — scanned data records + the tracer's loss tally
 *         equals every record the tracer accepted; a non-zero tally is
 *         documented in-stream by a kLoss marker carrying it. Loss may
 *         exist, but it is *loud*.
 *      I2 durable checkpoint — a checkpoint the session counted as
 *         written is loadable after the crash, and the trace it names
 *         reaches its high-water mark (SaveState syncs trace-first).
 *      I3 prefix consistency — absent injected corruption, the durable
 *         trace scans clean (no bad chunks) and salvage round-trips.
 *
 * A failing (seed, schedule) pair serializes to a small text file that
 * replays the identical failure forever — tests/chaos_corpus/ collects
 * them as regression tests. Minimize() shrinks a failing schedule to the
 * fewest ops that still violate.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "io/chaos.h"
#include "util/status.h"

namespace atum::chaos {

/** Shape of the capture each iteration runs (small but complete). */
struct CampaignSpec {
    /** Fault mix, e.g. {"powercut", "enospc"} (io/chaos.h names). */
    std::vector<std::string> campaigns;
    /** Workload (workloads::MakeWorkload name) and its scale. */
    std::string workload = "grep";
    uint32_t scale = 1;
    /** Guest instruction budget per capture. */
    uint64_t max_instructions = 200'000;
    /** Trace-buffer bytes (small: many drains = many fault targets). */
    uint32_t buffer_bytes = 8u << 10;
    /** ATF2 chunk capacity in records. */
    uint32_t chunk_records = 128;
    /** Checkpoint cadence in buffer fills. */
    uint64_t checkpoint_every_fills = 2;
    /** Checkpoint retention window. */
    uint32_t keep_checkpoints = 3;
};

/** One invariant breach, with enough detail to debug from the log. */
struct InvariantViolation {
    std::string invariant;  ///< "accounting" | "durable-checkpoint" | ...
    std::string detail;
};

/** Outcome of one seed's crash drill. */
struct SeedResult {
    uint64_t seed = 0;
    io::ChaosSchedule schedule;
    uint32_t faults_fired = 0;
    bool power_cut = false;
    bool resumed = false;    ///< recovery went through a checkpoint
    bool salvaged = false;   ///< recovery scanned the bare trace
    uint64_t data_records = 0;  ///< non-marker records recovered
    uint64_t lost_records = 0;  ///< loudly-declared loss
    /**
     * Wall time of the recovery action after a power cut — finding and
     * loading the newest checkpoint, reopening the trace at its high-water
     * mark and restoring machine+tracer (resume), or the tolerant salvage
     * scan (no checkpoint). 0 when no cut fired (bench_a10 percentiles).
     */
    uint64_t recovery_us = 0;
    std::vector<InvariantViolation> violations;

    bool ok() const { return violations.empty(); }
    /** One log line: seed, faults, recovery mode, verdict. */
    std::string Summary() const;
};

/** Aggregate of a whole campaign. */
struct CampaignResult {
    uint64_t seeds_run = 0;
    uint64_t faults_fired = 0;
    uint64_t power_cuts = 0;
    uint64_t resumes = 0;
    uint64_t salvages = 0;
    /** Failing seeds only (schedules are the repro artifacts). */
    std::vector<SeedResult> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Runs the spec's capture fault-free and returns its operation counts —
 * the address space random schedules aim their fault indices into.
 * Deterministic per spec, so one probe serves a whole seed range.
 */
util::StatusOr<io::OpCounts> ProbeOpCounts(const CampaignSpec& spec);

/**
 * Runs one complete drill for an explicit schedule (the replay path for
 * corpus files and minimization).
 */
util::StatusOr<SeedResult> ReplaySchedule(const CampaignSpec& spec,
                                          const io::ChaosSchedule& schedule);

/**
 * Runs seeds [first_seed, first_seed + seeds): rolls each schedule from
 * the shared probe and drills it. `on_seed` (may be null) observes every
 * result as it completes (progress reporting, artifact writing).
 */
util::StatusOr<CampaignResult> RunCampaign(
    const CampaignSpec& spec, uint64_t first_seed, uint64_t seeds,
    const std::function<void(const SeedResult&)>& on_seed = nullptr);

/**
 * Greedy delta-debugging of a failing schedule: repeatedly drops ops
 * whose removal keeps at least one invariant violated, until no single
 * op can be removed. Returns the (still-failing) minimal schedule; if
 * `schedule` does not fail at all, returns it unchanged.
 */
util::StatusOr<io::ChaosSchedule> Minimize(const CampaignSpec& spec,
                                           const io::ChaosSchedule& schedule);

// ---------------------------------------------------------------------------
// Kill-restart drills against the serve daemon (docs/SERVE.md).
//
// Where the capture drills above crash ONE capture, a serve drill crashes
// a whole daemon: a ServeCore in drill mode (workers == 0, so the I/O
// sequence is deterministic) admits a seed-scripted mix of multi-tenant
// jobs, runs them under a fault schedule, and — when the power cut fires —
// is abandoned exactly as SIGKILL would leave it. A second ServeCore then
// boots on the crash-consistent snapshot, recovers from the journal, and
// drains every surviving job. The battery then checks the recovery
// invariants the daemon promises:
//
//   S1 no lost jobs      — every acked submission reaches a terminal
//                          state (J1: journaled-before-ack held);
//   S2 no double-run     — at most one terminal journal record per job,
//                          and nothing journaled for a job after it;
//   S3 journal integrity — the final journal scans clean end-to-end, and
//                          (absent injected rot) every completed job's
//                          trace is prefix-consistent and salvage
//                          round-trips;
//   S4 no lost rows      — every sweep config result journaled complete
//                          appears verbatim (byte-identical) in the final
//                          sweep, and (absent injected rot) no config is
//                          journaled twice;
//   S5 resume = clean    — a recovered sweep's merged result (journaled
//                          prefix + re-run remainder) is bit-identical to
//                          replaying the same configs cleanly over the
//                          final durable trace (checked per-row, skipping
//                          rows whose input-trace fingerprint shows the
//                          durable trace shrank under them with the cut).

/** Shape of one serve drill (a small but complete multi-job daemon). */
struct ServeCampaignSpec {
    /** Fault mix, e.g. {"powercut", "enospc"} (io/chaos.h names). */
    std::vector<std::string> campaigns;
    /** Workload every job runs (workloads::MakeWorkload name) + scale. */
    std::string workload = "grep";
    uint32_t scale = 1;
    /** Jobs the script submits, spread round-robin over tenants. */
    uint32_t jobs = 4;
    uint32_t tenants = 2;
    /** Per-job guest instruction budget (small: drills must be quick). */
    uint64_t max_instructions = 6000;
    /** Capture shape (small buffers = many drains = many fault targets). */
    uint32_t buffer_bytes = 4u << 10;
    uint32_t chunk_records = 64;
    uint64_t checkpoint_every_fills = 1;
    uint32_t keep_checkpoints = 2;
    /**
     * Replay sweeps the script submits after draining its captures
     * (0 = the classic capture-only drill). Each targets a seed-picked
     * capture and carries `sweep_configs` configs, one of which may be
     * deliberately invalid (per-row isolation under fire).
     */
    uint32_t sweeps = 0;
    uint32_t sweep_configs = 3;
};

/** Outcome of one seed's kill-restart drill. */
struct ServeSeedResult {
    uint64_t seed = 0;
    io::ChaosSchedule schedule;
    uint32_t faults_fired = 0;
    bool power_cut = false;
    uint32_t jobs_acked = 0;     ///< submissions the daemon promised
    uint32_t jobs_done = 0;      ///< terminal "done" after recovery
    uint32_t jobs_resumed = 0;   ///< continued from a checkpoint
    uint32_t jobs_salvaged = 0;  ///< trace recovered by the scanner
    uint32_t sweeps_acked = 0;   ///< sweep submissions the daemon promised
    uint32_t sweep_rows = 0;     ///< config rows complete after recovery
    /** Recovery found a sweep with SOME (not all, not zero) configs
     *  journaled and resumed it from that high-water mark — the drill
     *  the S5 byte-identity check exists for. */
    bool sweep_partial_resume = false;
    std::vector<InvariantViolation> violations;

    bool ok() const { return violations.empty(); }
    /** One log line: seed, faults, job fates, verdict. */
    std::string Summary() const;
};

/** Aggregate of a whole serve campaign. */
struct ServeCampaignResult {
    uint64_t seeds_run = 0;
    uint64_t faults_fired = 0;
    uint64_t power_cuts = 0;
    uint64_t resumes = 0;
    uint64_t salvages = 0;
    uint64_t sweeps_acked = 0;
    uint64_t sweep_rows = 0;
    /** Seeds whose recovery resumed a partially-journaled sweep. */
    uint64_t sweep_partial_resumes = 0;
    std::vector<ServeSeedResult> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Runs seed `seed`'s request script fault-free and returns its operation
 * counts. Unlike the capture probe, the script itself is seed-derived
 * (submit/run interleave, which job gets cancelled), so each seed aims
 * its schedule with its own probe.
 */
util::StatusOr<io::OpCounts> ProbeServeOpCounts(const ServeCampaignSpec& spec,
                                                uint64_t seed);

/**
 * Runs one complete serve drill for an explicit schedule; the request
 * script is re-derived from schedule.seed, so a serialized schedule
 * replays the identical drill forever.
 */
util::StatusOr<ServeSeedResult> ReplayServeSchedule(
    const ServeCampaignSpec& spec, const io::ChaosSchedule& schedule);

/** Runs seeds [first_seed, first_seed + seeds) of serve drills. */
util::StatusOr<ServeCampaignResult> RunServeCampaign(
    const ServeCampaignSpec& spec, uint64_t first_seed, uint64_t seeds,
    const std::function<void(const ServeSeedResult&)>& on_seed = nullptr);

/** Minimize() for a failing serve schedule. */
util::StatusOr<io::ChaosSchedule> MinimizeServe(
    const ServeCampaignSpec& spec, const io::ChaosSchedule& schedule);

// ---------------------------------------------------------------------------
// Hostile-network drills against the serve protocol (docs/SERVE.md
// "Network failure model").
//
// Where the serve drills above kill the daemon's DISK, a net drill
// attacks its WIRE: a seed-scripted multi-tenant client drives framed
// requests through a ChaosNet (io/stream.h) into a drill-mode ServeCore,
// with the schedule injecting short and failed sends, mid-frame
// disconnects, bit flips, stalled reads, duplicated client retries, and
// SIGKILL-style daemon deaths that restart onto the crash-consistent
// disk. Every submit carries an idempotency token, and every ambiguous
// outcome (sent, but no answer) is retried with the same token — exactly
// what atum-submit does. The battery then checks:
//
//   N1 no double-run    — the final journal holds at most one submission
//                         per idempotency token, however many times the
//                         client (or the net-dup fault) delivered it,
//                         and across any number of kill-restarts;
//   N2 no crash/hang    — the daemon answers every parseable frame, and
//                         a poison frame earns a structured error, never
//                         a wedge (every pump loop is bounded) or a
//                         garbage answer;
//   N3 ack consistency  — every ack the client ever received for one
//                         token names the same job id, that id is
//                         journaled under the token, and the job reaches
//                         a terminal state.
//
// Bit-flip campaigns silently rewrite bytes in flight — including the
// token itself — so the client-perspective checks (N3, and N2's "answers
// parse") stand down under flips, exactly like the damage gates in the
// disk drills. N1's journal-side check never stands down: dedup happens
// on received bytes, whatever the wire did to them.

/** Shape of one net drill (a small multi-tenant client session). */
struct NetCampaignSpec {
    /** Fault mix, e.g. {"net-flaky", "net-cut"} (io/chaos.h names). */
    std::vector<std::string> campaigns;
    /** Workload every submit names (workloads::MakeWorkload) + scale. */
    std::string workload = "grep";
    uint32_t scale = 1;
    /** Tokened submits the script delivers, round-robin over tenants. */
    uint32_t submits = 4;
    uint32_t tenants = 2;
    /** Wire attempts per submit (first try + ambiguous retries). */
    uint32_t max_attempts = 3;
    /** Per-job guest instruction budget (small: drills must be quick). */
    uint64_t max_instructions = 4000;
    /** Capture shape for the jobs the submits create. */
    uint32_t buffer_bytes = 4u << 10;
    uint32_t chunk_records = 64;
    uint64_t checkpoint_every_fills = 1;
    uint32_t keep_checkpoints = 2;
};

/** Outcome of one seed's hostile-network drill. */
struct NetSeedResult {
    uint64_t seed = 0;
    io::ChaosSchedule schedule;
    uint32_t faults_fired = 0;
    uint32_t kills = 0;      ///< daemon deaths (kill-serve ops fired)
    uint32_t retries = 0;    ///< ambiguous submits re-sent (same token)
    uint32_t acks = 0;       ///< submit answers carrying a job id
    uint32_t dup_acks = 0;   ///< answers flagged "dup" (dedup served them)
    std::vector<InvariantViolation> violations;

    bool ok() const { return violations.empty(); }
    /** One log line: seed, faults, retry/ack traffic, verdict. */
    std::string Summary() const;
};

/** Aggregate of a whole net campaign. */
struct NetCampaignResult {
    uint64_t seeds_run = 0;
    uint64_t faults_fired = 0;
    uint64_t kills = 0;
    uint64_t retries = 0;
    uint64_t acks = 0;
    uint64_t dup_acks = 0;
    std::vector<NetSeedResult> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Runs seed `seed`'s client script over a fault-free ChaosNet and
 * returns its send/recv/request counts — the address space net schedules
 * aim their fault indices into.
 */
util::StatusOr<io::OpCounts> ProbeNetOpCounts(const NetCampaignSpec& spec,
                                              uint64_t seed);

/**
 * Runs one complete net drill for an explicit schedule; the client
 * script is re-derived from schedule.seed, so a serialized schedule
 * replays the identical drill forever.
 */
util::StatusOr<NetSeedResult> ReplayNetSchedule(
    const NetCampaignSpec& spec, const io::ChaosSchedule& schedule);

/** Runs seeds [first_seed, first_seed + seeds) of net drills. */
util::StatusOr<NetCampaignResult> RunNetCampaign(
    const NetCampaignSpec& spec, uint64_t first_seed, uint64_t seeds,
    const std::function<void(const NetSeedResult&)>& on_seed = nullptr);

/** Minimize() for a failing net schedule. */
util::StatusOr<io::ChaosSchedule> MinimizeNet(
    const NetCampaignSpec& spec, const io::ChaosSchedule& schedule);

// ---------------------------------------------------------------------------
// Deterministic protocol fuzzing (no wire, no daemon: just the codec).

/** What one FuzzProtocol sweep did and found. */
struct FuzzReport {
    uint64_t inputs = 0;    ///< mutated byte strings fed
    uint64_t frames = 0;    ///< complete frames the parser extracted
    uint64_t parsed = 0;    ///< frames that parsed into valid requests
    uint64_t rejected = 0;  ///< frames rejected with a structured status
    std::vector<InvariantViolation> violations;

    bool ok() const { return violations.empty(); }
    std::string Summary() const;
};

/**
 * Feeds `inputs` seeded mutations of well-formed request traffic —
 * flipped bits, truncations, tampered length prefixes, spliced frames,
 * raw garbage — through FrameParser and ParseRequest in random-sized
 * chunks, checking the codec's contract: extraction always terminates,
 * buffered bytes stay bounded by the frame cap, a parsed request
 * re-serializes and re-parses to the same op, and a rejection is a
 * structured status, never a crash. Deterministic per (seed, inputs):
 * a failure here is a failure forever, like every other repro in this
 * subsystem.
 */
FuzzReport FuzzProtocol(uint64_t seed, uint64_t inputs);

}  // namespace atum::chaos

#endif  // ATUM_CHAOS_CAMPAIGN_H_
