#include "chaos/campaign.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <sstream>

#include "core/checkpoint.h"
#include "core/session.h"
#include "io/mem_vfs.h"
#include "io/stream.h"
#include "kernel/boot.h"
#include "obs/metrics.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "trace/container.h"
#include "trace/sink.h"
#include "util/json.h"
#include "util/logging.h"
#include "workloads/workloads.h"

namespace atum::chaos {

namespace {

// Every drill lives in a MemVfs, so the names are fixed and flat.
constexpr char kTracePath[] = "trace.atf2";
constexpr char kCkptBase[] = "ckpt";

cpu::Machine::Config
MachineConfigFor(const CampaignSpec&)
{
    cpu::Machine::Config config;
    config.mem_bytes = 2u << 20;
    config.timer_reload = 2000;
    return config;
}

core::AtumConfig
TracerConfigFor(const CampaignSpec& spec)
{
    core::AtumConfig config;
    config.buffer_bytes = spec.buffer_bytes;
    return config;
}

/**
 * True when the schedule physically damages stored bytes (bit-flips) or
 * tears writes mid-buffer (short writes): prefix-consistency and marker
 * checks are about *loss*, not injected rot, so they stand down.
 */
bool
ScheduleHasDamage(const io::ChaosSchedule& schedule)
{
    for (const io::ChaosOp& op : schedule.ops) {
        if (op.kind == io::ChaosOpKind::kFlipWrite ||
            op.kind == io::ChaosOpKind::kFlipRead ||
            op.kind == io::ChaosOpKind::kShortWrite)
            return true;
    }
    return false;
}

/**
 * A short write that keeps the whole buffer but reports failure makes
 * the writer retry a chunk that already landed — duplication, the one
 * case where the scan can legitimately recover MORE than was appended.
 */
bool
ScheduleHasShortWrite(const io::ChaosSchedule& schedule)
{
    for (const io::ChaosOp& op : schedule.ops) {
        if (op.kind == io::ChaosOpKind::kShortWrite)
            return true;
    }
    return false;
}

/** Everything the harness knows about the pre-crash capture process. */
struct CaptureOutcome {
    util::Status open_status;
    bool sink_opened = false;
    core::SessionResult session;
    util::Status close_status;
    uint64_t tracer_records = 0;
    uint64_t tracer_lost = 0;
    bool end_degraded = false;
    uint32_t ckpts_written = 0;
    uint64_t next_seq = 1;
};

CaptureOutcome
RunCapture(const CampaignSpec& spec, io::ChaosVfs& vfs)
{
    CaptureOutcome out;
    const cpu::Machine::Config mconfig = MachineConfigFor(spec);
    const core::AtumConfig tconfig = TracerConfigFor(spec);

    cpu::Machine machine(mconfig);
    util::StatusOr<std::unique_ptr<trace::FileSink>> sink =
        trace::FileSink::Open(kTracePath,
                              trace::Atf2WriterOptions{spec.chunk_records},
                              vfs);
    out.open_status = sink.status();
    if (!sink.ok())
        return out;
    out.sink_opened = true;

    core::AtumTracer tracer(machine, **sink, tconfig);
    kernel::BootSystem(machine,
                       {workloads::MakeWorkload(spec.workload, spec.scale)});

    core::CheckpointRotator rotator(kCkptBase, spec.keep_checkpoints, 1, vfs);
    core::SupervisorOptions sup;
    sup.max_instructions = spec.max_instructions;
    sup.stop_flag = vfs.cut_flag();
    sup.checkpoints = &rotator;
    sup.checkpoint_every_fills = spec.checkpoint_every_fills;
    sup.file_sink = sink->get();
    sup.meta.machine_config = mconfig;
    sup.meta.tracer_config = tconfig;
    sup.meta.trace_path = kTracePath;

    out.session = core::RunSupervised(machine, tracer, sup);
    out.close_status = (*sink)->Close();
    out.tracer_records = tracer.records();
    out.tracer_lost = tracer.lost_records();
    out.end_degraded = tracer.degraded();
    out.ckpts_written = rotator.written();
    out.next_seq = rotator.next_sequence();
    return out;
}

/** What a tolerant scan of the (recovered) trace found. */
struct TraceFacts {
    bool file_exists = false;
    trace::ScanReport report;
    std::vector<trace::Record> records;
    uint64_t data = 0;          ///< non-marker records
    uint64_t markers = 0;       ///< kLoss markers
    uint32_t last_marker = 0;   ///< addr of the last kLoss marker
};

util::StatusOr<TraceFacts>
ScanUniverse(io::Vfs& vfs, const std::string& path = kTracePath)
{
    TraceFacts facts;
    util::StatusOr<std::unique_ptr<trace::FileByteSource>> in =
        trace::FileByteSource::Open(path, vfs);
    if (!in.ok()) {
        if (in.status().code() == util::StatusCode::kNotFound)
            return facts;  // nothing durable was ever promised
        return in.status();
    }
    facts.file_exists = true;
    facts.report = trace::ScanTrace(**in, &facts.records);
    for (const trace::Record& r : facts.records) {
        if (r.type == trace::RecordType::kLoss) {
            ++facts.markers;
            facts.last_marker = r.addr;
        } else {
            ++facts.data;
        }
    }
    return facts;
}

void
Fail(SeedResult& r, const char* invariant, std::string detail)
{
    r.violations.push_back(InvariantViolation{invariant, std::move(detail)});
}

void
Fail(ServeSeedResult& r, const char* invariant, std::string detail)
{
    r.violations.push_back(InvariantViolation{invariant, std::move(detail)});
}

void
Fail(NetSeedResult& r, const char* invariant, std::string detail)
{
    r.violations.push_back(InvariantViolation{invariant, std::move(detail)});
}

/** Round-trips the salvaged records through a fresh container. */
template <typename Result>
void
CheckSalvageRoundTrip(Result& r, const TraceFacts& facts)
{
    if (facts.records.empty())
        return;
    trace::MemoryByteSink resealed;
    const util::Status status = trace::WriteAtf2(resealed, facts.records);
    if (!status.ok()) {
        Fail(r, "prefix-consistency",
             "salvaged records fail to re-serialize: " + status.ToString());
        return;
    }
    trace::MemoryByteSource in(resealed.bytes());
    const trace::ScanReport report = trace::ScanTrace(in, nullptr);
    if (!report.intact() ||
        report.records_salvaged != facts.records.size()) {
        Fail(r, "prefix-consistency",
             "salvage round-trip is not intact: " + report.ToString());
    }
}

/**
 * The full invariant battery for a trace whose owning session's final
 * accounting is known (a fault-free close or a completed resume).
 */
void
CheckAccountedTrace(SeedResult& r, const TraceFacts& facts,
                    uint64_t appended, uint64_t lost, bool close_ok,
                    bool end_degraded, bool has_damage, bool has_short,
                    uint32_t chunk_records)
{
    std::ostringstream ctx;
    ctx << " (appended=" << appended << " lost=" << lost
        << " data=" << facts.data << " markers=" << facts.markers
        << " chunks_bad=" << facts.report.chunks_bad
        << " close_ok=" << close_ok << ")";

    if (!facts.file_exists || !facts.report.recognized) {
        if (appended > lost)
            Fail(r, "accounting",
                 "trace missing/unrecognized though records were "
                 "delivered" + ctx.str());
        return;
    }

    // I1 — accounting. Every appended record is either scanned back or
    // declared lost; detected-corrupt chunks and an unsealed pending
    // chunk bound the only permissible gap, and both are *loud* (scan
    // issues / a failed close).
    const uint64_t declared = facts.data + lost;
    const uint64_t slack =
        static_cast<uint64_t>(facts.report.chunks_bad) * chunk_records +
        (close_ok ? 0 : chunk_records);
    if (declared > appended && !has_short)
        Fail(r, "accounting",
             "more records recovered+declared-lost than were ever "
             "appended" + ctx.str());
    if (declared + slack < appended)
        Fail(r, "accounting", "silent loss: recovered + declared-lost + "
             "detected-damage bound < appended" + ctx.str());

    // The in-stream loss marker: once the sink recovered (not degraded
    // at the end), the stream documents the cumulative loss itself.
    if (lost > 0 && !end_degraded && close_ok && !has_damage) {
        const uint32_t want =
            lost > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(lost);
        if (facts.markers == 0 || facts.last_marker != want)
            Fail(r, "accounting",
                 "lost records but the stream's kLoss marker does not "
                 "declare them" + ctx.str());
    }

    // I3 — prefix consistency (only meaningful without injected rot).
    if (!has_damage) {
        if (facts.report.chunks_bad != 0)
            Fail(r, "prefix-consistency",
                 "bad chunks without injected corruption" + ctx.str());
        if (facts.report.valid_prefix_records !=
            facts.report.records_salvaged)
            Fail(r, "prefix-consistency",
                 "salvageable records beyond the valid prefix" + ctx.str());
        if (close_ok && !facts.report.intact())
            Fail(r, "prefix-consistency",
                 "clean close but the container is not intact" + ctx.str());
    }

    CheckSalvageRoundTrip(r, facts);
}

/** Reduced battery when only the durable prefix survives (no resume). */
void
CheckSalvagedTrace(SeedResult& r, const TraceFacts& facts,
                   uint64_t max_appended, bool has_damage, bool has_short)
{
    if (!facts.file_exists || !facts.report.recognized)
        return;  // a cut before the first sync promises nothing
    if (facts.data > max_appended && !has_short) {
        Fail(r, "accounting", "durable trace holds more records than the "
             "capture ever appended");
    }
    if (!has_damage) {
        if (facts.report.chunks_bad != 0)
            Fail(r, "prefix-consistency",
                 "bad chunks in the durable prefix without injected "
                 "corruption: " + facts.report.ToString());
        if (facts.report.valid_prefix_records !=
            facts.report.records_salvaged)
            Fail(r, "prefix-consistency",
                 "salvageable records beyond the valid prefix: " +
                     facts.report.ToString());
    }
    CheckSalvageRoundTrip(r, facts);
}

/**
 * Post-crash recovery: newest loadable checkpoint wins; its absence when
 * the session counted a durable write is THE no-silent-loss violation
 * this subsystem exists to catch.
 */
void
RecoverAfterCut(const CampaignSpec& spec, SeedResult& r,
                const CaptureOutcome& cap, io::MemVfs& rebooted,
                bool has_damage, bool has_short)
{
    const auto recovery_start = std::chrono::steady_clock::now();
    const auto stop_recovery_clock = [&] {
        r.recovery_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - recovery_start)
                .count());
    };
    const core::CheckpointRotator paths(kCkptBase, spec.keep_checkpoints);
    std::unique_ptr<core::Checkpoint> found;
    for (uint64_t seq = cap.next_seq; seq-- > 1 && !found;) {
        util::StatusOr<core::Checkpoint> ckpt =
            core::Checkpoint::Load(paths.PathFor(seq), rebooted);
        if (ckpt.ok() && ckpt->meta().has_sink_state)
            found = std::make_unique<core::Checkpoint>(std::move(*ckpt));
    }

    if (found == nullptr) {
        if (cap.ckpts_written > 0) {
            Fail(r, "durable-checkpoint",
                 "session counted " + std::to_string(cap.ckpts_written) +
                     " checkpoints written but none is loadable after "
                     "the crash");
        }
        util::StatusOr<TraceFacts> facts = ScanUniverse(rebooted);
        stop_recovery_clock();
        if (!facts.ok()) {
            Fail(r, "prefix-consistency",
                 "durable trace unreadable: " + facts.status().ToString());
            return;
        }
        r.salvaged = facts->file_exists;
        r.data_records = facts->data;
        CheckSalvagedTrace(r, *facts, cap.tracer_records, has_damage,
                           has_short);
        return;
    }

    // I2 — the checkpoint names a trace high-water mark that SaveState
    // made durable *before* the checkpoint was published; resume must
    // find the trace at (or past) it.
    util::StatusOr<std::unique_ptr<trace::FileSink>> sink =
        trace::FileSink::OpenResumed(kTracePath, found->sink_state(),
                                     rebooted);
    if (!sink.ok()) {
        Fail(r, "durable-checkpoint",
             "loadable checkpoint but the trace cannot be resumed: " +
                 sink.status().ToString());
        return;
    }

    cpu::Machine machine(found->meta().machine_config);
    core::AtumTracer tracer(machine, **sink, found->meta().tracer_config);
    if (util::Status s = found->RestoreMachine(machine); !s.ok()) {
        Fail(r, "durable-checkpoint",
             "machine restore failed: " + s.ToString());
        return;
    }
    if (util::Status s = found->RestoreTracer(tracer); !s.ok()) {
        Fail(r, "durable-checkpoint",
             "tracer restore failed: " + s.ToString());
        return;
    }
    stop_recovery_clock();  // ready to continue the capture

    uint64_t remaining = found->meta().instructions_remaining;
    if (remaining == 0 || remaining == UINT64_MAX)
        remaining = spec.max_instructions;
    (void)core::RunTraced(machine, tracer, remaining);
    const util::Status close_status = (*sink)->Close();

    util::StatusOr<TraceFacts> facts = ScanUniverse(rebooted);
    if (!facts.ok()) {
        Fail(r, "prefix-consistency",
             "recovered trace unreadable: " + facts.status().ToString());
        return;
    }
    r.resumed = true;
    r.data_records = facts->data;
    r.lost_records = tracer.lost_records();
    CheckAccountedTrace(r, *facts, tracer.records(), tracer.lost_records(),
                        close_status.ok(), tracer.degraded(), has_damage,
                        has_short, spec.chunk_records);
}

// ---------------------------------------------------------------------------
// Serve kill-restart drills (campaign.h §serve).

/**
 * The deterministic request script one seed drives into the daemon:
 * whether to run a queued job right after each submit, and which
 * submission (if any) gets a cancel. Derived from the seed alone —
 * never from responses — so a fault cannot change the action sequence,
 * only each action's effect.
 */
struct ServePlan {
    std::vector<uint8_t> run_after;
    bool cancel_some = false;
    uint32_t cancel_index = 0;
    // Sweep phase (spec.sweeps > 0): which finished capture each sweep
    // replays, whether to run it right after submitting, and whether one
    // of its configs is deliberately invalid (per-row isolation drill).
    std::vector<uint64_t> sweep_of;
    std::vector<uint8_t> sweep_run_after;
    std::vector<uint8_t> sweep_bad;
};

ServePlan
MakeServePlan(const ServeCampaignSpec& spec, uint64_t seed)
{
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 0xA7ull);
    ServePlan plan;
    plan.run_after.resize(spec.jobs);
    for (uint32_t j = 0; j < spec.jobs; ++j)
        plan.run_after[j] = (rng() & 1) != 0;
    plan.cancel_some = spec.jobs > 1 && (rng() & 3) != 0;
    plan.cancel_index = spec.jobs > 0
                            ? static_cast<uint32_t>(rng() % spec.jobs)
                            : 0;
    // Sweep draws come after every classic draw, so adding sweeps to a
    // spec never changes the capture phase a given seed scripts.
    for (uint32_t s = 0; s < spec.sweeps; ++s) {
        // Capture ids are 1..jobs in submission order (next_id_ starts
        // at 1); a target whose capture failed or was cancelled simply
        // earns a rejected submission, which the plan shrugs at.
        plan.sweep_of.push_back(spec.jobs > 0 ? 1 + rng() % spec.jobs : 1);
        plan.sweep_run_after.push_back((rng() & 1) != 0);
        plan.sweep_bad.push_back((rng() & 3) == 0);
    }
    return plan;
}

/**
 * The deterministic config list sweep `s` submits: a mix of cache,
 * hierarchy and TLB geometries varied by (sweep, config) index, with one
 * impossible geometry (non-power-of-two block) when the plan injects a
 * bad row — the sweep must isolate it, not die of it.
 */
std::vector<serve::SweepConfigSpec>
SweepConfigsFor(const ServeCampaignSpec& spec, uint32_t s, bool inject_bad)
{
    std::vector<serve::SweepConfigSpec> configs;
    const uint32_t n = spec.sweep_configs > 0 ? spec.sweep_configs : 1;
    for (uint32_t j = 0; j < n; ++j) {
        serve::SweepConfigSpec config;
        switch ((s + j) % 3) {
          case 0:
            config.kind = "cache";
            config.size_kb = 4u << (j % 3);
            config.block = 16;
            config.assoc = 1u << (j % 2);
            break;
          case 1:
            config.kind = "hierarchy";
            config.size_kb = 32u << (j % 2);
            config.block = 16;
            config.assoc = 2;
            break;
          default:
            config.kind = "tlb";
            config.entries = 16u << (j % 3);
            config.ways = (j % 2) != 0 ? 4 : 0;
            break;
        }
        configs.push_back(config);
    }
    if (inject_bad) {
        serve::SweepConfigSpec& bad = configs[s % n];
        bad.kind = "cache";
        bad.block = 24;  // not a power of two: fails ValidateConfig
        bad.label = "bad-geometry";
    }
    return configs;
}

serve::ServeConfig
ServeConfigFor(const ServeCampaignSpec& spec)
{
    serve::ServeConfig config;
    config.dir = ".";    // flat MemVfs names, like the capture drills
    config.workers = 0;  // drill mode: jobs run on this thread, in order
    config.admission.max_queue_depth = spec.jobs + 4;
    config.admission.max_per_tenant = spec.jobs + 4;
    config.admission.default_max_instructions = spec.max_instructions;
    config.buffer_bytes = spec.buffer_bytes;
    config.chunk_records = spec.chunk_records;
    config.checkpoint_every_fills = spec.checkpoint_every_fills;
    config.keep_checkpoints = spec.keep_checkpoints;
    return config;
}

/** What the pre-crash daemon generation promised and last believed. */
struct ServeGeneration {
    bool started = false;
    util::Status start_status;
    std::vector<uint64_t> acked;       ///< ids whose submit was answered ok
    std::vector<serve::JobInfo> jobs;  ///< in-memory table at process end
};

/** The id a submit response promises, or 0 when it promises nothing. */
uint64_t
AckedId(const std::string& response)
{
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(response);
    if (!doc.ok() || !doc->Get("ok").AsBool() || !doc->Has("id"))
        return 0;
    return doc->Get("id").AsU64();
}

/**
 * Generation 1 — the daemon that will die. Runs the seed's script under
 * the fault schedule; every action first checks the power-cut latch,
 * because a SIGKILLed process executes nothing further.
 */
ServeGeneration
RunServeScript(const ServeCampaignSpec& spec, uint64_t seed,
               io::ChaosVfs& vfs)
{
    const ServePlan plan = MakeServePlan(spec, seed);
    ServeGeneration gen;

    serve::ServeConfig config = ServeConfigFor(spec);
    config.external_stop = vfs.cut_flag();
    obs::Registry registry;
    serve::ServeCore core(config, vfs, &registry);
    gen.start_status = core.Start();
    if (!gen.start_status.ok())
        return gen;  // never came up, never promised anything
    gen.started = true;

    const auto cut = [&] { return vfs.power_cut_fired(); };
    const uint32_t tenants = spec.tenants > 0 ? spec.tenants : 1;
    for (uint32_t j = 0; j < spec.jobs && !cut(); ++j) {
        serve::Request submit;
        submit.op = serve::RequestOp::kSubmit;
        submit.tenant = "tenant-" + std::to_string(j % tenants);
        submit.workload = spec.workload;
        submit.scale = spec.scale;
        submit.quota.max_instructions = spec.max_instructions;
        const uint64_t id =
            AckedId(core.HandleRequest(serve::SerializeRequest(submit)));
        if (id != 0)
            gen.acked.push_back(id);
        if (plan.run_after[j] && !cut())
            core.RunNextQueuedJob();
    }
    if (plan.cancel_some && plan.cancel_index < gen.acked.size() && !cut()) {
        serve::Request cancel;
        cancel.op = serve::RequestOp::kCancel;
        cancel.id = gen.acked[plan.cancel_index];
        cancel.has_id = true;
        core.HandleRequest(serve::SerializeRequest(cancel));
    }
    while (!cut() && core.RunNextQueuedJob()) {
    }
    // Sweep phase: replay finished captures across config fans. Acked
    // sweep ids join the same promise list — S1 makes no distinction
    // between a capture and a sweep the daemon said yes to.
    for (uint32_t s = 0;
         s < static_cast<uint32_t>(plan.sweep_of.size()) && !cut(); ++s) {
        serve::Request sweep;
        sweep.op = serve::RequestOp::kSweep;
        sweep.tenant = "tenant-" + std::to_string(s % tenants);
        sweep.sweep_of = plan.sweep_of[s];
        sweep.sweep_configs =
            SweepConfigsFor(spec, s, plan.sweep_bad[s] != 0);
        const uint64_t id =
            AckedId(core.HandleRequest(serve::SerializeRequest(sweep)));
        if (id != 0)
            gen.acked.push_back(id);
        if (plan.sweep_run_after[s] && !cut())
            core.RunNextQueuedJob();
    }
    while (!cut() && core.RunNextQueuedJob()) {
    }
    if (!cut())
        core.Shutdown();  // the fault mix let the daemon live: clean exit
    gen.jobs = core.Jobs();
    return gen;
    // ~ServeCore on a cut generation is the abandoned process: its
    // shutdown I/O all fails against the dead disk and changes nothing.
}

/**
 * Generation 2 — the restarted daemon. Boots on the crash-consistent
 * snapshot, recovers from the journal, drains every surviving job to a
 * terminal state, and exits cleanly. No faults: recovery itself must
 * work on a healthy disk.
 */
std::vector<serve::JobInfo>
RecoverServe(const ServeCampaignSpec& spec, io::MemVfs& rebooted,
             ServeSeedResult& r)
{
    serve::ServeConfig config = ServeConfigFor(spec);
    obs::Registry registry;
    serve::ServeCore core(config, rebooted, &registry);
    if (util::Status s = core.Start(); !s.ok()) {
        Fail(r, "serve-recovery",
             "restarted daemon cannot recover: " + s.ToString());
        return {};
    }
    while (core.RunNextQueuedJob()) {
    }
    core.Shutdown();
    return core.Jobs();
}

util::StatusOr<std::string> ReadWholeFile(io::Vfs& vfs,
                                          const std::string& path);

/**
 * Inspects the crash-consistent journal BEFORE recovery touches it: did
 * the cut leave a sweep mid-flight with some — not zero, not all — of
 * its configs journaled? Those are the drills where resume actually has
 * a prefix to preserve, the acceptance bar for the S5 battery.
 */
void
DetectSweepPartialResume(io::Vfs& rebooted, ServeSeedResult& r)
{
    util::StatusOr<std::string> bytes =
        ReadWholeFile(rebooted, "serve.journal");
    if (!bytes.ok())
        return;
    const std::vector<serve::JournalRecord> records =
        serve::ScanJournalBytes(*bytes, nullptr, nullptr);
    std::map<uint64_t, size_t> totals;
    std::map<uint64_t, std::set<uint32_t>> rows;
    std::set<uint64_t> terminal;
    for (const serve::JournalRecord& record : records) {
        if (record.kind == serve::JournalKind::kSubmitted &&
            record.job == "sweep")
            totals[record.id] = record.configs.size();
        if (record.kind == serve::JournalKind::kSweepConfig)
            rows[record.id].insert(record.config_index);
        if (record.kind == serve::JournalKind::kFinished ||
            record.kind == serve::JournalKind::kCancelled)
            terminal.insert(record.id);
    }
    for (const auto& [id, total] : totals) {
        if (terminal.count(id))
            continue;
        const size_t have = rows.count(id) ? rows[id].size() : 0;
        if (have > 0 && have < total)
            r.sweep_partial_resume = true;
    }
}

util::StatusOr<std::string>
ReadWholeFile(io::Vfs& vfs, const std::string& path)
{
    util::StatusOr<std::unique_ptr<io::ReadableFile>> in = vfs.OpenRead(path);
    if (!in.ok())
        return in.status();
    std::string bytes;
    char buf[4096];
    for (;;) {
        util::StatusOr<size_t> n = (*in)->Read(buf, sizeof buf);
        if (!n.ok())
            return n.status();
        if (*n == 0)
            break;
        bytes.append(buf, *n);
    }
    return bytes;
}

bool
IsTerminalJobState(serve::JobState state)
{
    return state == serve::JobState::kDone ||
           state == serve::JobState::kFailed ||
           state == serve::JobState::kCancelled;
}

/** The input-trace record count a canonical row carries (its input
 *  fingerprint), or UINT64_MAX when the row doesn't parse. */
uint64_t
RowRecordsFingerprint(const std::string& row)
{
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(row);
    if (!doc.ok() || !doc->is_object() || !doc->Has("records"))
        return UINT64_MAX;
    return doc->Get("records").AsU64();
}

/**
 * The S4/S5 battery over the final generation's sweeps.
 *
 * S4 — every config result journaled complete appears verbatim in the
 * final sweep: the journal row and the streamed row are the same bytes.
 * Absent injected damage, no (job, config) pair is journaled twice.
 *
 * S5 — the recovered sweep (journaled prefix + re-run remainder) is
 * bit-identical to a clean replay of the same configs over the final
 * durable trace. Rows whose input fingerprint disagrees with that trace
 * are skipped: a power cut can legitimately shrink a capture's durable
 * prefix after rows were journaled against the longer one, and those
 * rows are S4's (kept verbatim), not S5's (recomputable).
 */
void
CheckSweepInvariants(ServeSeedResult& r,
                     const std::map<uint64_t, const serve::JobInfo*>& by_id,
                     const std::vector<serve::JournalRecord>& records,
                     io::Vfs& final_vfs, bool has_damage)
{
    std::set<std::pair<uint64_t, uint32_t>> journaled;
    for (const serve::JournalRecord& record : records) {
        if (record.kind != serve::JournalKind::kSweepConfig)
            continue;
        if (!journaled.insert({record.id, record.config_index}).second &&
            !has_damage) {
            Fail(r, "serve-sweep-dup",
                 "config " + std::to_string(record.config_index) +
                     " of sweep " + std::to_string(record.id) +
                     " journaled twice");
            continue;
        }
        const auto it = by_id.find(record.id);
        if (it == by_id.end()) {
            if (!has_damage)
                Fail(r, "serve-sweep-lost-row",
                     "journaled row for unknown sweep " +
                         std::to_string(record.id));
            continue;
        }
        const serve::JobInfo& job = *it->second;
        if (job.kind != "sweep" ||
            record.config_index >= job.sweep_rows.size()) {
            Fail(r, "serve-sweep-lost-row",
                 "journaled row for job " + std::to_string(record.id) +
                     " config " + std::to_string(record.config_index) +
                     " does not fit the recovered sweep");
            continue;
        }
        // S4 proper: the journaled row IS the reported row, byte for
        // byte, across any number of kill/restart cycles.
        if (job.sweep_rows[record.config_index] != record.row)
            Fail(r, "serve-sweep-lost-row",
                 "sweep " + std::to_string(record.id) + " config " +
                     std::to_string(record.config_index) +
                     " diverges from its journaled row: journal=" +
                     record.row + " reported=" +
                     job.sweep_rows[record.config_index]);
    }

    for (const auto& [id, job] : by_id) {
        if (job->kind != "sweep")
            continue;
        for (const std::string& row : job->sweep_rows)
            if (!row.empty())
                ++r.sweep_rows;

        if (has_damage)
            continue;  // S5 needs an undamaged trace to recompute against

        // Clean-run golden: replay the journaled spec over the final
        // durable trace with no controls, through the same canonical
        // row serialization the daemon used.
        util::StatusOr<std::unique_ptr<trace::FileByteSource>> in =
            trace::FileByteSource::Open(
                "job-" + std::to_string(job->sweep_of) + ".atf2",
                final_vfs);
        if (!in.ok())
            continue;  // trace lost with the cut: nothing to recompute
        std::vector<trace::Record> trace_records;
        const trace::ScanReport report =
            trace::ScanTrace(**in, &trace_records);
        if (!report.recognized)
            continue;
        for (uint32_t i = 0; i < job->sweep_rows.size(); ++i) {
            const std::string& row = job->sweep_rows[i];
            if (row.empty())
                continue;
            if (RowRecordsFingerprint(row) != trace_records.size())
                continue;  // journaled against a longer durable prefix
            const replay::SweepResult result = replay::ReplayOne(
                trace_records, job->configs[i].ToReplayConfig());
            const std::string golden = serve::SweepRowJson(
                i, trace_records.size(), job->configs[i], result);
            if (row != golden)
                Fail(r, "serve-sweep-divergence",
                     "sweep " + std::to_string(id) + " config " +
                         std::to_string(i) +
                         " is not bit-identical to the clean run: got " +
                         row + " want " + golden);
        }
    }
}

/** The S1-S3 battery over the final generation's truth. */
void
CheckServeInvariants(ServeSeedResult& r, const std::vector<uint64_t>& acked,
                     const std::vector<serve::JobInfo>& final_jobs,
                     io::Vfs& final_vfs, bool has_damage)
{
    r.jobs_acked = static_cast<uint32_t>(acked.size());
    std::map<uint64_t, const serve::JobInfo*> by_id;
    for (const serve::JobInfo& job : final_jobs) {
        by_id[job.id] = &job;
        if (job.state == serve::JobState::kDone)
            ++r.jobs_done;
        if (job.resumed)
            ++r.jobs_resumed;
        if (job.outcome == "salvaged")
            ++r.jobs_salvaged;
    }

    // Scan the surviving journal exactly the way a next restart would.
    util::StatusOr<std::string> bytes =
        ReadWholeFile(final_vfs, "serve.journal");
    std::vector<serve::JournalRecord> records;
    bool journal_dropped = false;
    if (bytes.ok()) {
        records = serve::ScanJournalBytes(*bytes, nullptr, &journal_dropped);
    } else if (!acked.empty()) {
        Fail(r, "serve-journal",
             "daemon acked jobs but left no readable journal: " +
                 bytes.status().ToString());
        return;
    }

    std::set<uint64_t> submitted;
    std::set<uint64_t> terminal;
    std::set<uint64_t> reported_after_terminal;
    for (const serve::JournalRecord& record : records) {
        if (record.kind == serve::JournalKind::kSubmitted)
            submitted.insert(record.id);
        // S2 — nothing may happen to a job after its terminal record; a
        // second start or finish after one IS the double-run.
        if (terminal.count(record.id) &&
            reported_after_terminal.insert(record.id).second) {
            Fail(r, "serve-double-run",
                 "journal records for job " + std::to_string(record.id) +
                     " continue after its terminal record");
        }
        if (record.kind == serve::JournalKind::kFinished ||
            record.kind == serve::JournalKind::kCancelled)
            terminal.insert(record.id);
    }

    // S1 — no lost jobs: an ack is a promise that survives any kill.
    for (uint64_t id : acked) {
        if (has_damage && !submitted.count(id))
            continue;  // injected rot ate the record — J3's prefix rule
        const auto it = by_id.find(id);
        if (it == by_id.end()) {
            Fail(r, "serve-lost-job",
                 "acked job " + std::to_string(id) +
                     " is gone from the recovered daemon");
            continue;
        }
        if (!IsTerminalJobState(it->second->state))
            Fail(r, "serve-lost-job",
                 "acked job " + std::to_string(id) + " is stuck in state " +
                     serve::JobStateName(it->second->state));
        // Across a restart the journal is the only memory; the terminal
        // verdict must be in it, not just in the replacement's RAM.
        if (r.power_cut && !terminal.count(id))
            Fail(r, "serve-lost-job",
                 "acked job " + std::to_string(id) +
                     " has no terminal journal record after recovery");
    }

    for (uint64_t id : acked) {
        const auto it = by_id.find(id);
        if (it != by_id.end() && it->second->kind == "sweep")
            ++r.sweeps_acked;
    }

    // S3 — the surviving journal itself scans clean (absent injected rot;
    // gen-1's torn tail was truncated away when the journal reopened).
    if (!has_damage && journal_dropped)
        Fail(r, "serve-journal",
             "final journal has a torn/corrupt tail after recovery");

    // S4/S5 — sweep rows survive verbatim and the merged result matches
    // a clean run (partially gated on damage, like the trace checks).
    CheckSweepInvariants(r, by_id, records, final_vfs, has_damage);

    // S3 — every completed job's trace is prefix-consistent and its
    // salvage round-trips (only provable without injected rot).
    if (has_damage)
        return;
    for (const serve::JobInfo& job : final_jobs) {
        if (job.state != serve::JobState::kDone)
            continue;
        if (job.kind == "sweep")
            continue;  // no trace of its own; its rows are S4/S5's beat
        const std::string trace_path =
            "job-" + std::to_string(job.id) + ".atf2";
        util::StatusOr<TraceFacts> facts =
            ScanUniverse(final_vfs, trace_path);
        if (!facts.ok()) {
            Fail(r, "serve-trace", trace_path + " unreadable: " +
                                       facts.status().ToString());
            continue;
        }
        if (!facts->file_exists || !facts->report.recognized) {
            // A "done" sealed before the cut may have lost un-synced
            // bytes with the power; only a daemon that never crashed
            // owes us the file.
            if (!r.power_cut)
                Fail(r, "serve-trace",
                     "job " + std::to_string(job.id) +
                         " is done but its trace is missing/unrecognized");
            continue;
        }
        if (facts->report.chunks_bad != 0)
            Fail(r, "serve-trace",
                 trace_path + " has bad chunks without injected "
                              "corruption: " + facts->report.ToString());
        if (facts->report.valid_prefix_records !=
            facts->report.records_salvaged)
            Fail(r, "serve-trace",
                 trace_path + " has salvageable records beyond the valid "
                              "prefix: " + facts->report.ToString());
        CheckSalvageRoundTrip(r, *facts);
    }
}

// ---------------------------------------------------------------------------
// Hostile-network drills (campaign.h §net).

/**
 * True when the schedule silently rewrites bytes in flight. The client's
 * book of promises is then unreliable — a flipped token or id is the
 * wire's lie, not the daemon's — so the client-perspective checks (N3,
 * answers-parse) stand down, exactly like the damage gates in the disk
 * drills. The journal-side N1 check never stands down: dedup happens on
 * the bytes the daemon received, whatever the wire did to them.
 */
bool
ScheduleHasNetFlip(const io::ChaosSchedule& schedule)
{
    for (const io::ChaosOp& op : schedule.ops) {
        if (op.kind == io::ChaosOpKind::kFlipSend ||
            op.kind == io::ChaosOpKind::kFlipRecv)
            return true;
    }
    return false;
}

/**
 * The deterministic client script one seed drives over the wire: which
 * submits are followed by running a queued job, and where pings are
 * interleaved. Derived from the seed alone — never from responses — so
 * a fault cannot change the action sequence, only each action's effect.
 */
struct NetPlan {
    std::vector<uint8_t> run_after;
    std::vector<uint8_t> ping_after;
};

NetPlan
MakeNetPlan(const NetCampaignSpec& spec, uint64_t seed)
{
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 0xC3ull);
    NetPlan plan;
    plan.run_after.resize(spec.submits);
    plan.ping_after.resize(spec.submits);
    for (uint32_t j = 0; j < spec.submits; ++j) {
        plan.run_after[j] = (rng() & 1) != 0;
        plan.ping_after[j] = (rng() & 3) == 0;
    }
    return plan;
}

serve::ServeConfig
NetServeConfigFor(const NetCampaignSpec& spec)
{
    serve::ServeConfig config;
    config.dir = ".";    // flat MemVfs names, like the other drills
    config.workers = 0;  // drill mode: jobs run on this thread, in order
    config.admission.max_queue_depth = spec.submits + 4;
    config.admission.max_per_tenant = spec.submits + 4;
    config.admission.default_max_instructions = spec.max_instructions;
    config.buffer_bytes = spec.buffer_bytes;
    config.chunk_records = spec.chunk_records;
    config.checkpoint_every_fills = spec.checkpoint_every_fills;
    config.keep_checkpoints = spec.keep_checkpoints;
    return config;
}

/** Loop bound for wire pumps: one delivery puts at most two small frames
 *  on the wire (the duplicate), so running this long without drying up
 *  is a wedge — the N2 violation, not an infinite loop. */
constexpr int kNetPumpBound = 64;

/**
 * One hostile-network drill in flight: the daemon (disk, core and
 * metrics registry, all replaced on every kill-restart), both ends'
 * frame parsers, and the client's book of promises — every id it was
 * ever acked, per idempotency token.
 */
class NetHarness
{
  public:
    NetHarness(const NetCampaignSpec& spec, io::ChaosNet& net,
               NetSeedResult& r)
        : spec_(spec), net_(net), r_(r),
          has_flip_(ScheduleHasNetFlip(r.schedule)),
          disk_(std::make_unique<io::MemVfs>()),
          registry_(std::make_unique<obs::Registry>())
    {
    }

    util::Status Start()
    {
        core_ = std::make_unique<serve::ServeCore>(NetServeConfigFor(spec_),
                                                   *disk_, registry_.get());
        return core_->Start();
    }

    bool dead() const { return dead_; }

    /**
     * Delivers one request over the hostile wire, retrying ambiguous
     * outcomes (sent, but no answer read back) with the SAME bytes —
     * atum-submit's retry path, which is exactly what the idempotency
     * token exists to make safe. A request without a token (ping) is
     * fire-and-forget: one attempt, shrug at silence.
     */
    void Deliver(const serve::Request& request, const std::string& token)
    {
        const std::string payload = serve::SerializeRequest(request);
        const uint32_t attempts =
            token.empty() ? 1 : std::max(1u, spec_.max_attempts);
        for (uint32_t a = 0; a < attempts && !dead_; ++a) {
            if (a > 0) {
                ++r_.retries;
                ResetWire();  // dial again; the network remembers nothing
            }
            const uint64_t req = net_.NextRequest();
            if (net_.TakeKillServe(req))
                KillRestart();
            if (dead_)
                return;
            const util::Status sent =
                serve::WriteFrameStream(net_.client_to_server(), payload);
            if (sent.ok() && net_.TakeDupRequest(req)) {
                // The impatient client: the same bytes land twice and
                // the daemon must treat them as one submission (N1).
                (void)serve::WriteFrameStream(net_.client_to_server(),
                                              payload);
            }
            PumpServer();
            if (ReadAnswers(token) > 0)
                return;  // answered (even a rejection is definitive)
            // Sent-but-unanswered or never sent: retry with the token.
        }
    }

    /** Runs one queued job to completion (the drill-mode worker). */
    void RunOneJob()
    {
        if (!dead_)
            core_->RunNextQueuedJob();
    }

    /**
     * Drains every queued job, shuts the final daemon generation down
     * cleanly, and runs the N1-N3 battery over its journal and job
     * table.
     */
    void Finish()
    {
        if (dead_)
            return;  // recovery already failed loudly; nothing to check
        while (core_->RunNextQueuedJob()) {
        }
        core_->Shutdown();
        CheckNetInvariants(core_->Jobs());
    }

  private:
    /** A fresh dial over the same hostile network: queues drain, the
     *  disconnect latch clears, both framing states start over. */
    void ResetWire()
    {
        net_.ResetConnection();
        server_parser_ = serve::FrameParser();
        client_parser_ = serve::FrameParser();
    }

    /**
     * The daemon dies mid-script (SIGKILL: no destructor courtesy
     * reaches the disk that matters) and a supervisor restarts it on
     * the crash-consistent state. The in-flight connection dies with
     * the process.
     */
    void KillRestart()
    {
        ++r_.kills;
        const io::MemVfs::Snapshot snap = disk_->SnapshotDurable();
        core_.reset();  // the dying process's last I/O hits the old disk
        registry_ = std::make_unique<obs::Registry>();
        disk_ = std::make_unique<io::MemVfs>(snap);
        core_ = std::make_unique<serve::ServeCore>(NetServeConfigFor(spec_),
                                                   *disk_, registry_.get());
        if (util::Status s = core_->Start(); !s.ok()) {
            Fail(r_, "net-recovery",
                 "restarted daemon cannot recover: " + s.ToString());
            dead_ = true;
            return;
        }
        ResetWire();
    }

    /**
     * Reads everything currently on `wire` into `parser`. Returns false
     * when the connection turned hostile (an injected fault or the
     * disconnect latch) rather than merely running dry — the caller
     * then drops its framing state like a real peer dropping a socket.
     */
    bool DrainWire(io::Stream& wire, serve::FrameParser& parser)
    {
        char buf[512];
        for (int i = 0; i < kNetPumpBound; ++i) {
            util::StatusOr<size_t> n = wire.Read(buf, sizeof buf);
            if (!n.ok())
                return false;
            if (*n == 0)
                return true;
            parser.Feed(buf, *n);
        }
        Fail(r_, "net-wedged",
             "wire did not run dry within " +
                 std::to_string(kNetPumpBound) + " reads");
        return true;
    }

    /**
     * The daemon's side of one delivery: read whatever arrived, answer
     * every complete frame, answer a poison frame with a structured
     * error before dropping the connection (N2's contract).
     */
    void PumpServer()
    {
        const bool alive =
            DrainWire(net_.client_to_server(), server_parser_);
        std::string payload;
        int extracted = 0;
        for (; extracted < kNetPumpBound; ++extracted) {
            util::StatusOr<bool> got = server_parser_.Next(&payload);
            if (!got.ok()) {
                (void)serve::WriteFrameStream(
                    net_.server_to_client(),
                    serve::ErrorResponse(got.status()));
                server_parser_ = serve::FrameParser();
                return;
            }
            if (!*got)
                break;
            (void)serve::WriteFrameStream(net_.server_to_client(),
                                          core_->HandleRequest(payload));
        }
        if (extracted == kNetPumpBound) {
            Fail(r_, "net-wedged",
                 "server answered " + std::to_string(kNetPumpBound) +
                     " frames from one delivery without running dry");
        }
        if (!alive) {
            // The read faulted: the daemon saw a dead peer and drops
            // any half-received frame with the connection.
            server_parser_ = serve::FrameParser();
        }
    }

    /**
     * The client's side: read whatever answers arrived and record every
     * ack against the token. Returns how many complete answers were
     * read; 0 is the ambiguous outcome the retry loop exists for.
     */
    int ReadAnswers(const std::string& token)
    {
        const bool alive =
            DrainWire(net_.server_to_client(), client_parser_);
        int got = 0;
        std::string payload;
        while (got < kNetPumpBound) {
            util::StatusOr<bool> next = client_parser_.Next(&payload);
            if (!next.ok()) {
                // An oversized frame from the daemon — only a rewritten
                // length in flight can produce one.
                if (!has_flip_)
                    Fail(r_, "net-garbage-answer",
                         "daemon framing poisoned the client parser on "
                         "a clean wire: " + next.status().ToString());
                ResetWire();
                return got;
            }
            if (!*next)
                break;
            ++got;
            RecordAnswer(token, payload);
        }
        if (got == kNetPumpBound)
            Fail(r_, "net-wedged",
                 "client read " + std::to_string(kNetPumpBound) +
                     " answers to one delivery without running dry");
        if (!alive || client_parser_.pending_bytes() > 0) {
            // A faulted read or a torn answer: the client drops the
            // connection (it cannot resynchronize a byte stream) and
            // the retry loop dials fresh.
            ResetWire();
        }
        return got;
    }

    void RecordAnswer(const std::string& token, const std::string& payload)
    {
        util::StatusOr<util::JsonValue> doc =
            util::JsonValue::Parse(payload);
        if (!doc.ok() || !doc->is_object() || !doc->Has("ok")) {
            // N2 — on a clean wire, every byte the daemon frames is a
            // JSON document; anything else is the daemon babbling.
            if (!has_flip_)
                Fail(r_, "net-garbage-answer",
                     "daemon answered bytes that do not parse: " +
                         payload);
            return;
        }
        if (token.empty() || !doc->Get("ok").AsBool() || !doc->Has("id"))
            return;
        acked_[token].push_back(doc->Get("id").AsU64());
        ++r_.acks;
        if (doc->Has("dup") && doc->Get("dup").AsBool())
            ++r_.dup_acks;
    }

    /** The N1-N3 battery over the final generation's truth. */
    void CheckNetInvariants(const std::vector<serve::JobInfo>& final_jobs)
    {
        util::StatusOr<std::string> bytes =
            ReadWholeFile(*disk_, "serve.journal");
        std::vector<serve::JournalRecord> records;
        bool dropped = false;
        if (bytes.ok()) {
            records = serve::ScanJournalBytes(*bytes, nullptr, &dropped);
        } else if (!acked_.empty()) {
            Fail(r_, "net-journal",
                 "daemon acked submits but left no readable journal: " +
                     bytes.status().ToString());
            return;
        }
        // The wire cannot damage the disk: however hostile the network
        // was, the surviving journal scans clean end-to-end.
        if (dropped)
            Fail(r_, "net-journal",
                 "journal has a torn/corrupt tail after a wire-only "
                 "drill");

        // N1 — at most one submission per token, across every delivery,
        // duplicate, retry and kill-restart. Checked on the journal's
        // own bytes, so it holds even under flips.
        std::map<std::string, std::set<uint64_t>> token_ids;
        for (const serve::JournalRecord& record : records) {
            if (record.kind == serve::JournalKind::kSubmitted &&
                !record.client_token.empty())
                token_ids[record.client_token].insert(record.id);
        }
        for (const auto& [token, ids] : token_ids) {
            if (ids.size() <= 1)
                continue;
            std::string detail = "token '" + token + "' was submitted " +
                                 std::to_string(ids.size()) + " times: ids";
            for (uint64_t id : ids)
                detail += " " + std::to_string(id);
            Fail(r_, "net-double-run", detail);
        }

        if (has_flip_)
            return;  // flipped bytes make the client's book unreliable

        // N3 — every ack for one token names one id, that id is
        // journaled under the token, and the promised job reached a
        // terminal state.
        std::map<uint64_t, const serve::JobInfo*> by_id;
        for (const serve::JobInfo& job : final_jobs)
            by_id[job.id] = &job;
        for (const auto& [token, ids] : acked_) {
            if (ids.empty())
                continue;
            const uint64_t id0 = ids[0];
            for (uint64_t id : ids) {
                if (id != id0) {
                    Fail(r_, "net-ack-divergence",
                         "token '" + token + "' was acked as job " +
                             std::to_string(id0) + " and again as job " +
                             std::to_string(id));
                    break;
                }
            }
            const auto journaled = token_ids.find(token);
            if (journaled == token_ids.end() ||
                journaled->second.count(id0) == 0) {
                Fail(r_, "net-ack-orphan",
                     "token '" + token + "' was acked as job " +
                         std::to_string(id0) +
                         " but the journal never submitted it");
                continue;
            }
            const auto it = by_id.find(id0);
            if (it == by_id.end()) {
                Fail(r_, "net-lost-job",
                     "acked job " + std::to_string(id0) +
                         " is gone from the final daemon");
            } else if (!IsTerminalJobState(it->second->state)) {
                Fail(r_, "net-lost-job",
                     "acked job " + std::to_string(id0) +
                         " is stuck in state " +
                         serve::JobStateName(it->second->state));
            }
        }
    }

    const NetCampaignSpec& spec_;
    io::ChaosNet& net_;
    NetSeedResult& r_;
    const bool has_flip_;
    bool dead_ = false;

    std::unique_ptr<io::MemVfs> disk_;
    std::unique_ptr<obs::Registry> registry_;
    std::unique_ptr<serve::ServeCore> core_;
    serve::FrameParser server_parser_;
    serve::FrameParser client_parser_;
    std::map<std::string, std::vector<uint64_t>> acked_;
};

/** Runs one seed's whole client script through `harness`. */
void
RunNetScript(const NetCampaignSpec& spec, uint64_t seed,
             NetHarness& harness)
{
    const NetPlan plan = MakeNetPlan(spec, seed);
    const uint32_t tenants = spec.tenants > 0 ? spec.tenants : 1;
    for (uint32_t j = 0; j < spec.submits && !harness.dead(); ++j) {
        serve::Request submit;
        submit.op = serve::RequestOp::kSubmit;
        submit.tenant = "tenant-" + std::to_string(j % tenants);
        submit.workload = spec.workload;
        submit.scale = spec.scale;
        submit.quota.max_instructions = spec.max_instructions;
        submit.client_token = "tok-" + std::to_string(seed) + "-" +
                              std::to_string(j);
        harness.Deliver(submit, submit.client_token);
        if (plan.run_after[j])
            harness.RunOneJob();
        if (plan.ping_after[j]) {
            serve::Request ping;
            ping.op = serve::RequestOp::kPing;
            harness.Deliver(ping, "");
        }
    }
    harness.Finish();
}

}  // namespace

std::string
SeedResult::Summary() const
{
    std::ostringstream os;
    os << "seed " << seed << ": " << faults_fired << " faults";
    if (power_cut)
        os << ", power-cut";
    os << (resumed ? ", resumed" : salvaged ? ", salvaged" : ", in-place");
    os << ", " << data_records << " records";
    if (lost_records > 0)
        os << " + " << lost_records << " declared lost";
    if (violations.empty()) {
        os << ": ok";
    } else {
        os << ": " << violations.size() << " VIOLATIONS";
        for (const InvariantViolation& v : violations)
            os << " [" << v.invariant << "] " << v.detail;
    }
    return os.str();
}

util::StatusOr<io::OpCounts>
ProbeOpCounts(const CampaignSpec& spec)
{
    io::MemVfs mem;
    io::ChaosVfs vfs(mem, io::ChaosSchedule{});
    const CaptureOutcome cap = RunCapture(spec, vfs);
    if (!cap.sink_opened)
        return cap.open_status;
    if (!cap.close_status.ok())
        return cap.close_status;
    if (!cap.session.drain_status.ok())
        return cap.session.drain_status;
    return vfs.counts();
}

util::StatusOr<SeedResult>
ReplaySchedule(const CampaignSpec& spec, const io::ChaosSchedule& schedule)
{
    SeedResult r;
    r.seed = schedule.seed;
    r.schedule = schedule;
    const bool has_damage = ScheduleHasDamage(schedule);
    const bool has_short = ScheduleHasShortWrite(schedule);

    io::MemVfs mem;
    io::ChaosVfs vfs(mem, schedule);
    const CaptureOutcome cap = RunCapture(spec, vfs);
    r.faults_fired = vfs.faults_fired();
    r.power_cut = vfs.power_cut_fired();

    if (!cap.sink_opened && !r.power_cut)
        return cap.open_status;  // MemVfs cannot refuse Create otherwise

    if (r.power_cut) {
        // Reboot onto the crash-consistent state and recover.
        io::MemVfs rebooted(vfs.snapshot());
        RecoverAfterCut(spec, r, cap, rebooted, has_damage, has_short);
        return r;
    }

    // The process survived its faults; its own books must balance.
    util::StatusOr<TraceFacts> facts = ScanUniverse(mem);
    if (!facts.ok()) {
        Fail(r, "prefix-consistency",
             "trace unreadable: " + facts.status().ToString());
        return r;
    }
    r.data_records = facts->data;
    r.lost_records = cap.tracer_lost;
    CheckAccountedTrace(r, *facts, cap.tracer_records, cap.tracer_lost,
                        cap.close_status.ok(), cap.end_degraded, has_damage,
                        has_short, spec.chunk_records);
    return r;
}

util::StatusOr<CampaignResult>
RunCampaign(const CampaignSpec& spec, uint64_t first_seed, uint64_t seeds,
            const std::function<void(const SeedResult&)>& on_seed)
{
    util::StatusOr<io::OpCounts> probe = ProbeOpCounts(spec);
    if (!probe.ok())
        return probe.status();

    CampaignResult result;
    for (uint64_t i = 0; i < seeds; ++i) {
        const uint64_t seed = first_seed + i;
        util::StatusOr<io::ChaosSchedule> schedule =
            io::ChaosSchedule::Random(seed, spec.campaigns, *probe);
        if (!schedule.ok())
            return schedule.status();
        util::StatusOr<SeedResult> seed_result =
            ReplaySchedule(spec, *schedule);
        if (!seed_result.ok())
            return seed_result.status();
        ++result.seeds_run;
        result.faults_fired += seed_result->faults_fired;
        if (seed_result->power_cut)
            ++result.power_cuts;
        if (seed_result->resumed)
            ++result.resumes;
        if (seed_result->salvaged)
            ++result.salvages;
        if (!seed_result->ok())
            result.failures.push_back(*seed_result);
        if (on_seed)
            on_seed(*seed_result);
    }
    return result;
}

util::StatusOr<io::ChaosSchedule>
Minimize(const CampaignSpec& spec, const io::ChaosSchedule& schedule)
{
    const auto fails = [&](const io::ChaosSchedule& s)
        -> util::StatusOr<bool> {
        util::StatusOr<SeedResult> r = ReplaySchedule(spec, s);
        if (!r.ok())
            return r.status();
        return !r->ok();
    };

    util::StatusOr<bool> failing = fails(schedule);
    if (!failing.ok())
        return failing.status();
    if (!*failing)
        return schedule;  // nothing to preserve; return unchanged

    io::ChaosSchedule current = schedule;
    bool shrunk = true;
    while (shrunk && current.ops.size() > 1) {
        shrunk = false;
        for (size_t i = 0; i < current.ops.size(); ++i) {
            io::ChaosSchedule trial = current;
            trial.ops.erase(trial.ops.begin() + static_cast<long>(i));
            util::StatusOr<bool> still = fails(trial);
            if (!still.ok())
                return still.status();
            if (*still) {
                current = std::move(trial);
                shrunk = true;
                break;
            }
        }
    }
    return current;
}

// ---------------------------------------------------------------------------
// Serve kill-restart campaign entry points.

std::string
ServeSeedResult::Summary() const
{
    std::ostringstream os;
    os << "seed " << seed << ": " << faults_fired << " faults";
    if (power_cut)
        os << ", power-cut";
    os << ", " << jobs_acked << " acked, " << jobs_done << " done";
    if (jobs_resumed > 0)
        os << ", " << jobs_resumed << " resumed";
    if (jobs_salvaged > 0)
        os << ", " << jobs_salvaged << " salvaged";
    if (sweeps_acked > 0)
        os << ", " << sweeps_acked << " sweeps/" << sweep_rows << " rows";
    if (sweep_partial_resume)
        os << ", sweep-partial-resume";
    if (violations.empty()) {
        os << ": ok";
    } else {
        os << ": " << violations.size() << " VIOLATIONS";
        for (const InvariantViolation& v : violations)
            os << " [" << v.invariant << "] " << v.detail;
    }
    return os.str();
}

util::StatusOr<io::OpCounts>
ProbeServeOpCounts(const ServeCampaignSpec& spec, uint64_t seed)
{
    io::MemVfs mem;
    io::ChaosVfs vfs(mem, io::ChaosSchedule{});
    const ServeGeneration gen = RunServeScript(spec, seed, vfs);
    if (!gen.started)
        return gen.start_status;
    return vfs.counts();
}

util::StatusOr<ServeSeedResult>
ReplayServeSchedule(const ServeCampaignSpec& spec,
                    const io::ChaosSchedule& schedule)
{
    ServeSeedResult r;
    r.seed = schedule.seed;
    r.schedule = schedule;
    const bool has_damage = ScheduleHasDamage(schedule);

    io::MemVfs mem;
    io::ChaosVfs vfs(mem, schedule);
    const ServeGeneration gen1 = RunServeScript(spec, schedule.seed, vfs);
    r.faults_fired = vfs.faults_fired();
    r.power_cut = vfs.power_cut_fired();

    if (!gen1.started) {
        // The daemon refused to come up (journal unopenable under a
        // fault, or died to the cut before listening). Loud and
        // promise-free — vacuously within the invariants.
        return r;
    }

    if (r.power_cut) {
        io::MemVfs rebooted(vfs.snapshot());
        DetectSweepPartialResume(rebooted, r);
        const std::vector<serve::JobInfo> final_jobs =
            RecoverServe(spec, rebooted, r);
        CheckServeInvariants(r, gen1.acked, final_jobs, rebooted,
                             has_damage);
        return r;
    }

    // The daemon survived its faults and shut down cleanly; its own
    // final table and journal must already balance.
    CheckServeInvariants(r, gen1.acked, gen1.jobs, mem, has_damage);
    return r;
}

util::StatusOr<ServeCampaignResult>
RunServeCampaign(const ServeCampaignSpec& spec, uint64_t first_seed,
                 uint64_t seeds,
                 const std::function<void(const ServeSeedResult&)>& on_seed)
{
    ServeCampaignResult result;
    for (uint64_t i = 0; i < seeds; ++i) {
        const uint64_t seed = first_seed + i;
        // Each seed scripts its own request mix, so each aims its fault
        // schedule with its own fault-free probe.
        util::StatusOr<io::OpCounts> probe = ProbeServeOpCounts(spec, seed);
        if (!probe.ok())
            return probe.status();
        util::StatusOr<io::ChaosSchedule> schedule =
            io::ChaosSchedule::Random(seed, spec.campaigns, *probe);
        if (!schedule.ok())
            return schedule.status();
        util::StatusOr<ServeSeedResult> seed_result =
            ReplayServeSchedule(spec, *schedule);
        if (!seed_result.ok())
            return seed_result.status();
        ++result.seeds_run;
        result.faults_fired += seed_result->faults_fired;
        if (seed_result->power_cut)
            ++result.power_cuts;
        result.resumes += seed_result->jobs_resumed;
        result.salvages += seed_result->jobs_salvaged;
        result.sweeps_acked += seed_result->sweeps_acked;
        result.sweep_rows += seed_result->sweep_rows;
        if (seed_result->sweep_partial_resume)
            ++result.sweep_partial_resumes;
        if (!seed_result->ok())
            result.failures.push_back(*seed_result);
        if (on_seed)
            on_seed(*seed_result);
    }
    return result;
}

util::StatusOr<io::ChaosSchedule>
MinimizeServe(const ServeCampaignSpec& spec,
              const io::ChaosSchedule& schedule)
{
    const auto fails = [&](const io::ChaosSchedule& s)
        -> util::StatusOr<bool> {
        util::StatusOr<ServeSeedResult> r = ReplayServeSchedule(spec, s);
        if (!r.ok())
            return r.status();
        return !r->ok();
    };

    util::StatusOr<bool> failing = fails(schedule);
    if (!failing.ok())
        return failing.status();
    if (!*failing)
        return schedule;

    io::ChaosSchedule current = schedule;
    bool shrunk = true;
    while (shrunk && current.ops.size() > 1) {
        shrunk = false;
        for (size_t i = 0; i < current.ops.size(); ++i) {
            io::ChaosSchedule trial = current;
            trial.ops.erase(trial.ops.begin() + static_cast<long>(i));
            util::StatusOr<bool> still = fails(trial);
            if (!still.ok())
                return still.status();
            if (*still) {
                current = std::move(trial);
                shrunk = true;
                break;
            }
        }
    }
    return current;
}

// ---------------------------------------------------------------------------
// Hostile-network campaign entry points.

std::string
NetSeedResult::Summary() const
{
    std::ostringstream os;
    os << "seed " << seed << ": " << faults_fired << " net faults";
    if (kills > 0)
        os << ", " << kills << " kills";
    os << ", " << acks << " acked";
    if (dup_acks > 0)
        os << " (" << dup_acks << " dedup)";
    if (retries > 0)
        os << ", " << retries << " retries";
    if (violations.empty()) {
        os << ": ok";
    } else {
        os << ": " << violations.size() << " VIOLATIONS";
        for (const InvariantViolation& v : violations)
            os << " [" << v.invariant << "] " << v.detail;
    }
    return os.str();
}

util::StatusOr<io::OpCounts>
ProbeNetOpCounts(const NetCampaignSpec& spec, uint64_t seed)
{
    NetSeedResult r;
    io::ChaosNet net{io::ChaosSchedule{}};
    NetHarness harness(spec, net, r);
    if (util::Status s = harness.Start(); !s.ok())
        return s;
    RunNetScript(spec, seed, harness);
    if (!r.ok())
        return util::InternalError(
            "fault-free net probe violated an invariant: " +
            r.violations.front().detail);
    return net.counts();
}

util::StatusOr<NetSeedResult>
ReplayNetSchedule(const NetCampaignSpec& spec,
                  const io::ChaosSchedule& schedule)
{
    NetSeedResult r;
    r.seed = schedule.seed;
    r.schedule = schedule;

    io::ChaosNet net(schedule);
    NetHarness harness(spec, net, r);
    if (util::Status s = harness.Start(); !s.ok())
        return s;  // a fresh MemVfs cannot refuse a start: a real error
    RunNetScript(spec, schedule.seed, harness);
    r.faults_fired = net.faults_fired();
    return r;
}

util::StatusOr<NetCampaignResult>
RunNetCampaign(const NetCampaignSpec& spec, uint64_t first_seed,
               uint64_t seeds,
               const std::function<void(const NetSeedResult&)>& on_seed)
{
    NetCampaignResult result;
    for (uint64_t i = 0; i < seeds; ++i) {
        const uint64_t seed = first_seed + i;
        // Each seed scripts its own request mix, so each aims its fault
        // schedule with its own fault-free probe.
        util::StatusOr<io::OpCounts> probe = ProbeNetOpCounts(spec, seed);
        if (!probe.ok())
            return probe.status();
        util::StatusOr<io::ChaosSchedule> schedule =
            io::ChaosSchedule::Random(seed, spec.campaigns, *probe);
        if (!schedule.ok())
            return schedule.status();
        util::StatusOr<NetSeedResult> seed_result =
            ReplayNetSchedule(spec, *schedule);
        if (!seed_result.ok())
            return seed_result.status();
        ++result.seeds_run;
        result.faults_fired += seed_result->faults_fired;
        result.kills += seed_result->kills;
        result.retries += seed_result->retries;
        result.acks += seed_result->acks;
        result.dup_acks += seed_result->dup_acks;
        if (!seed_result->ok())
            result.failures.push_back(*seed_result);
        if (on_seed)
            on_seed(*seed_result);
    }
    return result;
}

util::StatusOr<io::ChaosSchedule>
MinimizeNet(const NetCampaignSpec& spec, const io::ChaosSchedule& schedule)
{
    const auto fails = [&](const io::ChaosSchedule& s)
        -> util::StatusOr<bool> {
        util::StatusOr<NetSeedResult> r = ReplayNetSchedule(spec, s);
        if (!r.ok())
            return r.status();
        return !r->ok();
    };

    util::StatusOr<bool> failing = fails(schedule);
    if (!failing.ok())
        return failing.status();
    if (!*failing)
        return schedule;

    io::ChaosSchedule current = schedule;
    bool shrunk = true;
    while (shrunk && current.ops.size() > 1) {
        shrunk = false;
        for (size_t i = 0; i < current.ops.size(); ++i) {
            io::ChaosSchedule trial = current;
            trial.ops.erase(trial.ops.begin() + static_cast<long>(i));
            util::StatusOr<bool> still = fails(trial);
            if (!still.ok())
                return still.status();
            if (*still) {
                current = std::move(trial);
                shrunk = true;
                break;
            }
        }
    }
    return current;
}

// ---------------------------------------------------------------------------
// Deterministic protocol fuzzing.

std::string
FuzzReport::Summary() const
{
    std::ostringstream os;
    os << "fuzz: " << inputs << " inputs, " << frames
       << " frames extracted, " << parsed << " parsed, " << rejected
       << " rejected";
    if (violations.empty()) {
        os << ": ok";
    } else {
        os << ": " << violations.size() << " VIOLATIONS";
        for (const InvariantViolation& v : violations)
            os << " [" << v.invariant << "] " << v.detail;
    }
    return os.str();
}

namespace {

/** A valid request of a seed-picked shape — the fuzzer's raw material,
 *  so mutations explore the neighborhood of real traffic instead of
 *  only the (easily rejected) space of pure noise. */
std::string
FuzzBasePayload(std::mt19937_64& rng)
{
    serve::Request request;
    switch (rng() % 6) {
      case 0:
        request.op = serve::RequestOp::kPing;
        break;
      case 1:
        request.op = serve::RequestOp::kSubmit;
        request.tenant = "tenant-" + std::to_string(rng() % 4);
        request.workload = "grep";
        request.scale = 1 + static_cast<uint32_t>(rng() % 3);
        request.quota.max_instructions = 1 + rng() % 100'000;
        request.client_token = "fuzz-" + std::to_string(rng() % 1'000);
        break;
      case 2:
        request.op = serve::RequestOp::kStatus;
        if ((rng() & 1) != 0) {
            request.id = rng() % 16;
            request.has_id = true;
        }
        break;
      case 3:
        request.op = serve::RequestOp::kCancel;
        request.id = rng() % 16;
        request.has_id = true;
        break;
      case 4:
        request.op = serve::RequestOp::kMetrics;
        break;
      default:
        request.op = serve::RequestOp::kDrain;
        break;
    }
    return serve::SerializeRequest(request);
}

/** One seed-mutated byte string: framed traffic with flips, truncations,
 *  length tampering, splices, garbage — the hostile client's repertoire. */
std::string
FuzzInput(std::mt19937_64& rng)
{
    std::string bytes;
    switch (rng() % 8) {
      case 0:  // well-formed single frame (the control group)
        bytes = serve::EncodeFrame(FuzzBasePayload(rng));
        break;
      case 1: {  // two spliced frames (pipelined requests)
        bytes = serve::EncodeFrame(FuzzBasePayload(rng)) +
                serve::EncodeFrame(FuzzBasePayload(rng));
        break;
      }
      case 2: {  // flipped bits in a valid frame
        bytes = serve::EncodeFrame(FuzzBasePayload(rng));
        const size_t flips = 1 + rng() % 8;
        for (size_t f = 0; f < flips && !bytes.empty(); ++f)
            bytes[rng() % bytes.size()] ^=
                static_cast<char>(1u << (rng() % 8));
        break;
      }
      case 3: {  // truncated frame (mid-frame disconnect)
        bytes = serve::EncodeFrame(FuzzBasePayload(rng));
        bytes.resize(rng() % bytes.size());
        break;
      }
      case 4: {  // tampered length prefix, up to and past the cap
        bytes = serve::EncodeFrame(FuzzBasePayload(rng));
        const uint32_t len = static_cast<uint32_t>(
            rng() % (2ull * serve::kMaxFrameBytes));
        bytes[0] = static_cast<char>(len & 0xFF);
        bytes[1] = static_cast<char>((len >> 8) & 0xFF);
        bytes[2] = static_cast<char>((len >> 16) & 0xFF);
        bytes[3] = static_cast<char>((len >> 24) & 0xFF);
        break;
      }
      case 5: {  // garbage prefix before a valid frame (desync)
        const size_t n = 1 + rng() % 16;
        for (size_t b = 0; b < n; ++b)
            bytes.push_back(static_cast<char>(rng() & 0xFF));
        bytes += serve::EncodeFrame(FuzzBasePayload(rng));
        break;
      }
      case 6: {  // framed garbage (valid length, noise payload)
        std::string noise;
        const size_t n = rng() % 256;
        for (size_t b = 0; b < n; ++b)
            noise.push_back(static_cast<char>(rng() & 0xFF));
        bytes = serve::EncodeFrame(noise);
        break;
      }
      default: {  // pure noise, no framing at all
        const size_t n = rng() % 256;
        for (size_t b = 0; b < n; ++b)
            bytes.push_back(static_cast<char>(rng() & 0xFF));
        break;
      }
    }
    return bytes;
}

}  // namespace

FuzzReport
FuzzProtocol(uint64_t seed, uint64_t inputs)
{
    FuzzReport report;
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 0xF2ull);
    for (uint64_t i = 0; i < inputs; ++i) {
        ++report.inputs;
        const std::string bytes = FuzzInput(rng);

        serve::FrameParser parser;
        size_t off = 0;
        bool poisoned = false;
        int steps = 0;
        while (off < bytes.size() && !poisoned && steps < 10'000) {
            // Feed in random-sized chunks: every framing bug that
            // depends on where read(2) happens to split the stream is
            // in scope.
            const size_t n =
                std::min<size_t>(1 + rng() % 97, bytes.size() - off);
            parser.Feed(bytes.data() + off, n);
            off += n;
            std::string payload;
            for (; steps < 10'000; ++steps) {
                util::StatusOr<bool> got = parser.Next(&payload);
                if (!got.ok()) {
                    // Poisoned: the daemon answers a structured error
                    // and closes; feeding more would be a use-after-
                    // close, so this input is done.
                    ++report.rejected;
                    poisoned = true;
                    break;
                }
                if (!*got)
                    break;
                ++report.frames;
                util::StatusOr<serve::Request> request =
                    serve::ParseRequest(payload);
                if (!request.ok()) {
                    ++report.rejected;
                    continue;
                }
                ++report.parsed;
                // A request the daemon accepts must survive its own
                // round trip: serialize and re-parse to the same op.
                util::StatusOr<serve::Request> again =
                    serve::ParseRequest(serve::SerializeRequest(*request));
                if (!again.ok() || again->op != request->op) {
                    report.violations.push_back(InvariantViolation{
                        "fuzz-roundtrip",
                        "accepted request does not round-trip: " +
                            payload});
                }
            }
            // The cap bounds what one connection can make the daemon
            // buffer: a length prefix plus one maximal frame, never
            // more.
            if (parser.pending_bytes() >
                static_cast<size_t>(serve::kMaxFrameBytes) + 4) {
                report.violations.push_back(InvariantViolation{
                    "fuzz-overbuffer",
                    "parser buffered " +
                        std::to_string(parser.pending_bytes()) +
                        " bytes, past the frame cap"});
                break;
            }
        }
        if (steps >= 10'000) {
            report.violations.push_back(InvariantViolation{
                "fuzz-wedge", "input " + std::to_string(i) +
                                  " did not drain in bounded steps"});
        }
    }
    return report;
}

}  // namespace atum::chaos
