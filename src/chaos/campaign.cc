#include "chaos/campaign.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>

#include "core/checkpoint.h"
#include "core/session.h"
#include "io/mem_vfs.h"
#include "kernel/boot.h"
#include "trace/container.h"
#include "trace/sink.h"
#include "util/logging.h"
#include "workloads/workloads.h"

namespace atum::chaos {

namespace {

// Every drill lives in a MemVfs, so the names are fixed and flat.
constexpr char kTracePath[] = "trace.atf2";
constexpr char kCkptBase[] = "ckpt";

cpu::Machine::Config
MachineConfigFor(const CampaignSpec&)
{
    cpu::Machine::Config config;
    config.mem_bytes = 2u << 20;
    config.timer_reload = 2000;
    return config;
}

core::AtumConfig
TracerConfigFor(const CampaignSpec& spec)
{
    core::AtumConfig config;
    config.buffer_bytes = spec.buffer_bytes;
    return config;
}

/**
 * True when the schedule physically damages stored bytes (bit-flips) or
 * tears writes mid-buffer (short writes): prefix-consistency and marker
 * checks are about *loss*, not injected rot, so they stand down.
 */
bool
ScheduleHasDamage(const io::ChaosSchedule& schedule)
{
    for (const io::ChaosOp& op : schedule.ops) {
        if (op.kind == io::ChaosOpKind::kFlipWrite ||
            op.kind == io::ChaosOpKind::kFlipRead ||
            op.kind == io::ChaosOpKind::kShortWrite)
            return true;
    }
    return false;
}

/**
 * A short write that keeps the whole buffer but reports failure makes
 * the writer retry a chunk that already landed — duplication, the one
 * case where the scan can legitimately recover MORE than was appended.
 */
bool
ScheduleHasShortWrite(const io::ChaosSchedule& schedule)
{
    for (const io::ChaosOp& op : schedule.ops) {
        if (op.kind == io::ChaosOpKind::kShortWrite)
            return true;
    }
    return false;
}

/** Everything the harness knows about the pre-crash capture process. */
struct CaptureOutcome {
    util::Status open_status;
    bool sink_opened = false;
    core::SessionResult session;
    util::Status close_status;
    uint64_t tracer_records = 0;
    uint64_t tracer_lost = 0;
    bool end_degraded = false;
    uint32_t ckpts_written = 0;
    uint64_t next_seq = 1;
};

CaptureOutcome
RunCapture(const CampaignSpec& spec, io::ChaosVfs& vfs)
{
    CaptureOutcome out;
    const cpu::Machine::Config mconfig = MachineConfigFor(spec);
    const core::AtumConfig tconfig = TracerConfigFor(spec);

    cpu::Machine machine(mconfig);
    util::StatusOr<std::unique_ptr<trace::FileSink>> sink =
        trace::FileSink::Open(kTracePath,
                              trace::Atf2WriterOptions{spec.chunk_records},
                              vfs);
    out.open_status = sink.status();
    if (!sink.ok())
        return out;
    out.sink_opened = true;

    core::AtumTracer tracer(machine, **sink, tconfig);
    kernel::BootSystem(machine,
                       {workloads::MakeWorkload(spec.workload, spec.scale)});

    core::CheckpointRotator rotator(kCkptBase, spec.keep_checkpoints, 1, vfs);
    core::SupervisorOptions sup;
    sup.max_instructions = spec.max_instructions;
    sup.stop_flag = vfs.cut_flag();
    sup.checkpoints = &rotator;
    sup.checkpoint_every_fills = spec.checkpoint_every_fills;
    sup.file_sink = sink->get();
    sup.meta.machine_config = mconfig;
    sup.meta.tracer_config = tconfig;
    sup.meta.trace_path = kTracePath;

    out.session = core::RunSupervised(machine, tracer, sup);
    out.close_status = (*sink)->Close();
    out.tracer_records = tracer.records();
    out.tracer_lost = tracer.lost_records();
    out.end_degraded = tracer.degraded();
    out.ckpts_written = rotator.written();
    out.next_seq = rotator.next_sequence();
    return out;
}

/** What a tolerant scan of the (recovered) trace found. */
struct TraceFacts {
    bool file_exists = false;
    trace::ScanReport report;
    std::vector<trace::Record> records;
    uint64_t data = 0;          ///< non-marker records
    uint64_t markers = 0;       ///< kLoss markers
    uint32_t last_marker = 0;   ///< addr of the last kLoss marker
};

util::StatusOr<TraceFacts>
ScanUniverse(io::Vfs& vfs)
{
    TraceFacts facts;
    util::StatusOr<std::unique_ptr<trace::FileByteSource>> in =
        trace::FileByteSource::Open(kTracePath, vfs);
    if (!in.ok()) {
        if (in.status().code() == util::StatusCode::kNotFound)
            return facts;  // nothing durable was ever promised
        return in.status();
    }
    facts.file_exists = true;
    facts.report = trace::ScanTrace(**in, &facts.records);
    for (const trace::Record& r : facts.records) {
        if (r.type == trace::RecordType::kLoss) {
            ++facts.markers;
            facts.last_marker = r.addr;
        } else {
            ++facts.data;
        }
    }
    return facts;
}

void
Fail(SeedResult& r, const char* invariant, std::string detail)
{
    r.violations.push_back(InvariantViolation{invariant, std::move(detail)});
}

/** Round-trips the salvaged records through a fresh container. */
void
CheckSalvageRoundTrip(SeedResult& r, const TraceFacts& facts)
{
    if (facts.records.empty())
        return;
    trace::MemoryByteSink resealed;
    const util::Status status = trace::WriteAtf2(resealed, facts.records);
    if (!status.ok()) {
        Fail(r, "prefix-consistency",
             "salvaged records fail to re-serialize: " + status.ToString());
        return;
    }
    trace::MemoryByteSource in(resealed.bytes());
    const trace::ScanReport report = trace::ScanTrace(in, nullptr);
    if (!report.intact() ||
        report.records_salvaged != facts.records.size()) {
        Fail(r, "prefix-consistency",
             "salvage round-trip is not intact: " + report.ToString());
    }
}

/**
 * The full invariant battery for a trace whose owning session's final
 * accounting is known (a fault-free close or a completed resume).
 */
void
CheckAccountedTrace(SeedResult& r, const TraceFacts& facts,
                    uint64_t appended, uint64_t lost, bool close_ok,
                    bool end_degraded, bool has_damage, bool has_short,
                    uint32_t chunk_records)
{
    std::ostringstream ctx;
    ctx << " (appended=" << appended << " lost=" << lost
        << " data=" << facts.data << " markers=" << facts.markers
        << " chunks_bad=" << facts.report.chunks_bad
        << " close_ok=" << close_ok << ")";

    if (!facts.file_exists || !facts.report.recognized) {
        if (appended > lost)
            Fail(r, "accounting",
                 "trace missing/unrecognized though records were "
                 "delivered" + ctx.str());
        return;
    }

    // I1 — accounting. Every appended record is either scanned back or
    // declared lost; detected-corrupt chunks and an unsealed pending
    // chunk bound the only permissible gap, and both are *loud* (scan
    // issues / a failed close).
    const uint64_t declared = facts.data + lost;
    const uint64_t slack =
        static_cast<uint64_t>(facts.report.chunks_bad) * chunk_records +
        (close_ok ? 0 : chunk_records);
    if (declared > appended && !has_short)
        Fail(r, "accounting",
             "more records recovered+declared-lost than were ever "
             "appended" + ctx.str());
    if (declared + slack < appended)
        Fail(r, "accounting", "silent loss: recovered + declared-lost + "
             "detected-damage bound < appended" + ctx.str());

    // The in-stream loss marker: once the sink recovered (not degraded
    // at the end), the stream documents the cumulative loss itself.
    if (lost > 0 && !end_degraded && close_ok && !has_damage) {
        const uint32_t want =
            lost > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(lost);
        if (facts.markers == 0 || facts.last_marker != want)
            Fail(r, "accounting",
                 "lost records but the stream's kLoss marker does not "
                 "declare them" + ctx.str());
    }

    // I3 — prefix consistency (only meaningful without injected rot).
    if (!has_damage) {
        if (facts.report.chunks_bad != 0)
            Fail(r, "prefix-consistency",
                 "bad chunks without injected corruption" + ctx.str());
        if (facts.report.valid_prefix_records !=
            facts.report.records_salvaged)
            Fail(r, "prefix-consistency",
                 "salvageable records beyond the valid prefix" + ctx.str());
        if (close_ok && !facts.report.intact())
            Fail(r, "prefix-consistency",
                 "clean close but the container is not intact" + ctx.str());
    }

    CheckSalvageRoundTrip(r, facts);
}

/** Reduced battery when only the durable prefix survives (no resume). */
void
CheckSalvagedTrace(SeedResult& r, const TraceFacts& facts,
                   uint64_t max_appended, bool has_damage, bool has_short)
{
    if (!facts.file_exists || !facts.report.recognized)
        return;  // a cut before the first sync promises nothing
    if (facts.data > max_appended && !has_short) {
        Fail(r, "accounting", "durable trace holds more records than the "
             "capture ever appended");
    }
    if (!has_damage) {
        if (facts.report.chunks_bad != 0)
            Fail(r, "prefix-consistency",
                 "bad chunks in the durable prefix without injected "
                 "corruption: " + facts.report.ToString());
        if (facts.report.valid_prefix_records !=
            facts.report.records_salvaged)
            Fail(r, "prefix-consistency",
                 "salvageable records beyond the valid prefix: " +
                     facts.report.ToString());
    }
    CheckSalvageRoundTrip(r, facts);
}

/**
 * Post-crash recovery: newest loadable checkpoint wins; its absence when
 * the session counted a durable write is THE no-silent-loss violation
 * this subsystem exists to catch.
 */
void
RecoverAfterCut(const CampaignSpec& spec, SeedResult& r,
                const CaptureOutcome& cap, io::MemVfs& rebooted,
                bool has_damage, bool has_short)
{
    const auto recovery_start = std::chrono::steady_clock::now();
    const auto stop_recovery_clock = [&] {
        r.recovery_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - recovery_start)
                .count());
    };
    const core::CheckpointRotator paths(kCkptBase, spec.keep_checkpoints);
    std::unique_ptr<core::Checkpoint> found;
    for (uint64_t seq = cap.next_seq; seq-- > 1 && !found;) {
        util::StatusOr<core::Checkpoint> ckpt =
            core::Checkpoint::Load(paths.PathFor(seq), rebooted);
        if (ckpt.ok() && ckpt->meta().has_sink_state)
            found = std::make_unique<core::Checkpoint>(std::move(*ckpt));
    }

    if (found == nullptr) {
        if (cap.ckpts_written > 0) {
            Fail(r, "durable-checkpoint",
                 "session counted " + std::to_string(cap.ckpts_written) +
                     " checkpoints written but none is loadable after "
                     "the crash");
        }
        util::StatusOr<TraceFacts> facts = ScanUniverse(rebooted);
        stop_recovery_clock();
        if (!facts.ok()) {
            Fail(r, "prefix-consistency",
                 "durable trace unreadable: " + facts.status().ToString());
            return;
        }
        r.salvaged = facts->file_exists;
        r.data_records = facts->data;
        CheckSalvagedTrace(r, *facts, cap.tracer_records, has_damage,
                           has_short);
        return;
    }

    // I2 — the checkpoint names a trace high-water mark that SaveState
    // made durable *before* the checkpoint was published; resume must
    // find the trace at (or past) it.
    util::StatusOr<std::unique_ptr<trace::FileSink>> sink =
        trace::FileSink::OpenResumed(kTracePath, found->sink_state(),
                                     rebooted);
    if (!sink.ok()) {
        Fail(r, "durable-checkpoint",
             "loadable checkpoint but the trace cannot be resumed: " +
                 sink.status().ToString());
        return;
    }

    cpu::Machine machine(found->meta().machine_config);
    core::AtumTracer tracer(machine, **sink, found->meta().tracer_config);
    if (util::Status s = found->RestoreMachine(machine); !s.ok()) {
        Fail(r, "durable-checkpoint",
             "machine restore failed: " + s.ToString());
        return;
    }
    if (util::Status s = found->RestoreTracer(tracer); !s.ok()) {
        Fail(r, "durable-checkpoint",
             "tracer restore failed: " + s.ToString());
        return;
    }
    stop_recovery_clock();  // ready to continue the capture

    uint64_t remaining = found->meta().instructions_remaining;
    if (remaining == 0 || remaining == UINT64_MAX)
        remaining = spec.max_instructions;
    (void)core::RunTraced(machine, tracer, remaining);
    const util::Status close_status = (*sink)->Close();

    util::StatusOr<TraceFacts> facts = ScanUniverse(rebooted);
    if (!facts.ok()) {
        Fail(r, "prefix-consistency",
             "recovered trace unreadable: " + facts.status().ToString());
        return;
    }
    r.resumed = true;
    r.data_records = facts->data;
    r.lost_records = tracer.lost_records();
    CheckAccountedTrace(r, *facts, tracer.records(), tracer.lost_records(),
                        close_status.ok(), tracer.degraded(), has_damage,
                        has_short, spec.chunk_records);
}

}  // namespace

std::string
SeedResult::Summary() const
{
    std::ostringstream os;
    os << "seed " << seed << ": " << faults_fired << " faults";
    if (power_cut)
        os << ", power-cut";
    os << (resumed ? ", resumed" : salvaged ? ", salvaged" : ", in-place");
    os << ", " << data_records << " records";
    if (lost_records > 0)
        os << " + " << lost_records << " declared lost";
    if (violations.empty()) {
        os << ": ok";
    } else {
        os << ": " << violations.size() << " VIOLATIONS";
        for (const InvariantViolation& v : violations)
            os << " [" << v.invariant << "] " << v.detail;
    }
    return os.str();
}

util::StatusOr<io::OpCounts>
ProbeOpCounts(const CampaignSpec& spec)
{
    io::MemVfs mem;
    io::ChaosVfs vfs(mem, io::ChaosSchedule{});
    const CaptureOutcome cap = RunCapture(spec, vfs);
    if (!cap.sink_opened)
        return cap.open_status;
    if (!cap.close_status.ok())
        return cap.close_status;
    if (!cap.session.drain_status.ok())
        return cap.session.drain_status;
    return vfs.counts();
}

util::StatusOr<SeedResult>
ReplaySchedule(const CampaignSpec& spec, const io::ChaosSchedule& schedule)
{
    SeedResult r;
    r.seed = schedule.seed;
    r.schedule = schedule;
    const bool has_damage = ScheduleHasDamage(schedule);
    const bool has_short = ScheduleHasShortWrite(schedule);

    io::MemVfs mem;
    io::ChaosVfs vfs(mem, schedule);
    const CaptureOutcome cap = RunCapture(spec, vfs);
    r.faults_fired = vfs.faults_fired();
    r.power_cut = vfs.power_cut_fired();

    if (!cap.sink_opened && !r.power_cut)
        return cap.open_status;  // MemVfs cannot refuse Create otherwise

    if (r.power_cut) {
        // Reboot onto the crash-consistent state and recover.
        io::MemVfs rebooted(vfs.snapshot());
        RecoverAfterCut(spec, r, cap, rebooted, has_damage, has_short);
        return r;
    }

    // The process survived its faults; its own books must balance.
    util::StatusOr<TraceFacts> facts = ScanUniverse(mem);
    if (!facts.ok()) {
        Fail(r, "prefix-consistency",
             "trace unreadable: " + facts.status().ToString());
        return r;
    }
    r.data_records = facts->data;
    r.lost_records = cap.tracer_lost;
    CheckAccountedTrace(r, *facts, cap.tracer_records, cap.tracer_lost,
                        cap.close_status.ok(), cap.end_degraded, has_damage,
                        has_short, spec.chunk_records);
    return r;
}

util::StatusOr<CampaignResult>
RunCampaign(const CampaignSpec& spec, uint64_t first_seed, uint64_t seeds,
            const std::function<void(const SeedResult&)>& on_seed)
{
    util::StatusOr<io::OpCounts> probe = ProbeOpCounts(spec);
    if (!probe.ok())
        return probe.status();

    CampaignResult result;
    for (uint64_t i = 0; i < seeds; ++i) {
        const uint64_t seed = first_seed + i;
        util::StatusOr<io::ChaosSchedule> schedule =
            io::ChaosSchedule::Random(seed, spec.campaigns, *probe);
        if (!schedule.ok())
            return schedule.status();
        util::StatusOr<SeedResult> seed_result =
            ReplaySchedule(spec, *schedule);
        if (!seed_result.ok())
            return seed_result.status();
        ++result.seeds_run;
        result.faults_fired += seed_result->faults_fired;
        if (seed_result->power_cut)
            ++result.power_cuts;
        if (seed_result->resumed)
            ++result.resumes;
        if (seed_result->salvaged)
            ++result.salvages;
        if (!seed_result->ok())
            result.failures.push_back(*seed_result);
        if (on_seed)
            on_seed(*seed_result);
    }
    return result;
}

util::StatusOr<io::ChaosSchedule>
Minimize(const CampaignSpec& spec, const io::ChaosSchedule& schedule)
{
    const auto fails = [&](const io::ChaosSchedule& s)
        -> util::StatusOr<bool> {
        util::StatusOr<SeedResult> r = ReplaySchedule(spec, s);
        if (!r.ok())
            return r.status();
        return !r->ok();
    };

    util::StatusOr<bool> failing = fails(schedule);
    if (!failing.ok())
        return failing.status();
    if (!*failing)
        return schedule;  // nothing to preserve; return unchanged

    io::ChaosSchedule current = schedule;
    bool shrunk = true;
    while (shrunk && current.ops.size() > 1) {
        shrunk = false;
        for (size_t i = 0; i < current.ops.size(); ++i) {
            io::ChaosSchedule trial = current;
            trial.ops.erase(trial.ops.begin() + static_cast<long>(i));
            util::StatusOr<bool> still = fails(trial);
            if (!still.ok())
                return still.status();
            if (*still) {
                current = std::move(trial);
                shrunk = true;
                break;
            }
        }
    }
    return current;
}

}  // namespace atum::chaos
