#ifndef ATUM_SERVE_PROTOCOL_H_
#define ATUM_SERVE_PROTOCOL_H_

/**
 * @file
 * The atum-serve wire protocol: length-prefixed JSON frames.
 *
 * Every message — request or response — is one JSON document preceded by
 * a 4-byte little-endian payload length. The length bounds what a peer
 * must buffer (kMaxFrameBytes); anything larger is a protocol error and
 * the connection dies rather than the daemon's memory. Versioning is
 * in-band: every request carries `"v": "atum-serve-v1"` and the daemon
 * rejects versions it does not speak, so a stale client fails loudly at
 * its first frame instead of corrupting a job.
 *
 * Requests (docs/SERVE.md has the full schema):
 *
 *   {"v":"atum-serve-v1","op":"ping"}
 *   {"v":"atum-serve-v1","op":"submit","tenant":"t","workload":"grep",
 *    "scale":1,"max_instructions":200000,"max_trace_bytes":0,
 *    "deadline_ms":0,"token":"c0ffee-1"}   — token: idempotency key
 *   {"v":"atum-serve-v1","op":"sweep","tenant":"t","of":7,
 *    "configs":[{"kind":"cache","size_kb":64,"block":16,"assoc":2},...],
 *    "timeout_ms":0,"retries":1}                   — replay job 7's trace
 *   {"v":"atum-serve-v1","op":"status"}            — all jobs
 *   {"v":"atum-serve-v1","op":"status","id":7}     — one job
 *   {"v":"atum-serve-v1","op":"cancel","id":7}
 *   {"v":"atum-serve-v1","op":"metrics"}           — Prometheus text
 *   {"v":"atum-serve-v1","op":"drain"}             — graceful shutdown
 *
 * Responses are `{"ok":true,...}` or `{"ok":false,"code":"<status-code
 * name>","error":"..."}`; the code maps back onto util::Status so
 * atum-submit exits with the shared exit-code contract (7 unavailable,
 * 8 resource-exhausted).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "serve/sweep_spec.h"
#include "util/status.h"

namespace atum::serve {

/** The one protocol version this daemon speaks. */
inline constexpr char kProtocolVersion[] = "atum-serve-v1";

/** Hard bound on one frame's JSON payload (requests are tiny; status
 *  responses grow with job count but stay far below this). */
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/** Prepends the 4-byte little-endian length to `payload`. */
std::string EncodeFrame(const std::string& payload);

/**
 * Incremental frame decoder for a byte stream of unknown chunking —
 * feed whatever arrived, take complete payloads out. Oversized and
 * malformed lengths poison the parser permanently (the peer is broken;
 * the connection must be dropped, not resynchronized).
 */
class FrameParser
{
  public:
    /** Appends raw bytes from the stream. */
    void Feed(const void* data, size_t len);

    /**
     * Extracts the next complete payload into `payload`. Returns OK with
     * `true` when one was extracted, OK with `false` when more bytes are
     * needed, kInvalidArgument forever after a frame declared a length
     * over kMaxFrameBytes.
     */
    util::StatusOr<bool> Next(std::string* payload);

    /** Bytes buffered but not yet extracted (tear detection at EOF). */
    size_t pending_bytes() const { return buffer_.size(); }

  private:
    std::string buffer_;
    bool poisoned_ = false;
};

/** Everything a client can ask of the daemon. */
enum class RequestOp : uint8_t {
    kPing,
    kSubmit,
    kSweep,
    kStatus,
    kCancel,
    kMetrics,
    kDrain,
};

/** Resource limits one job runs under (0 = server default / unlimited). */
struct JobQuota {
    uint64_t max_instructions = 0;  ///< guest instruction budget
    uint64_t max_trace_bytes = 0;   ///< durable ATF2 bytes before stop
    uint64_t deadline_ms = 0;       ///< wall-clock budget
};

/** A parsed, validated request frame. */
struct Request {
    RequestOp op = RequestOp::kPing;
    // -- submit ------------------------------------------------------------
    std::string tenant = "default";
    std::string workload = "grep";
    uint32_t scale = 1;
    JobQuota quota;
    /** Idempotency key (1..128 chars, empty = none): a retry carrying
     *  the same token is answered with the original job id instead of
     *  double-running — see docs/SERVE.md "Network failure model". */
    std::string client_token;
    // -- sweep -------------------------------------------------------------
    uint64_t sweep_of = 0;  ///< finished capture job whose trace to replay
    std::vector<SweepConfigSpec> sweep_configs;
    uint64_t sweep_timeout_ms = 0;  ///< per-config wall budget; 0 = off
    uint64_t sweep_retries = 1;     ///< extra attempts per retryable row
    // -- status / cancel ---------------------------------------------------
    uint64_t id = 0;
    bool has_id = false;
};

/**
 * Parses and validates one request payload. kInvalidArgument for
 * malformed JSON, a wrong/missing version, an unknown op or out-of-range
 * fields — the daemon answers with an error frame and keeps serving.
 */
util::StatusOr<Request> ParseRequest(const std::string& payload);

/** Serializes `request` to its canonical JSON payload (client side). */
std::string SerializeRequest(const Request& request);

/** `{"ok":false,"code":...,"error":...}` for a failed operation. */
std::string ErrorResponse(const util::Status& status);

/**
 * Extracts the Status a response frame carries: OK for `"ok":true`,
 * the embedded code/message for `"ok":false`, kInvalidArgument when the
 * frame is not a valid response at all.
 */
util::Status ResponseStatus(const std::string& payload);

}  // namespace atum::serve

#endif  // ATUM_SERVE_PROTOCOL_H_
