#include "serve/journal.h"

#include "util/crc32.h"
#include "util/json.h"

namespace atum::serve {

namespace {

uint32_t
ReadU32Le(const uint8_t* b)
{
    return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
           static_cast<uint32_t>(b[2]) << 16 |
           static_cast<uint32_t>(b[3]) << 24;
}

void
AppendU32Le(std::string& out, uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

/** Records are small; anything claiming more is noise, not a record. */
constexpr uint32_t kMaxRecordBytes = 64u << 10;

util::StatusOr<std::string>
ReadAllBytes(const std::string& path, io::Vfs& vfs)
{
    util::StatusOr<std::unique_ptr<io::ReadableFile>> in =
        vfs.OpenRead(path);
    if (!in.ok())
        return in.status();
    std::string bytes;
    char buf[4096];
    for (;;) {
        util::StatusOr<size_t> n = (*in)->Read(buf, sizeof buf);
        if (!n.ok())
            return n.status();
        if (*n == 0)
            break;
        bytes.append(buf, *n);
    }
    return bytes;
}

}  // namespace

const char*
JournalKindName(JournalKind kind)
{
    switch (kind) {
      case JournalKind::kSubmitted:
        return "submitted";
      case JournalKind::kStarted:
        return "started";
      case JournalKind::kFinished:
        return "finished";
      case JournalKind::kCancelled:
        return "cancelled";
      case JournalKind::kSweepConfig:
        return "sweep-config";
    }
    return "?";
}

std::string
SerializeJournalRecord(const JournalRecord& record)
{
    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("kind", JournalKindName(record.kind));
    w.KeyValue("id", record.id);
    if (record.kind == JournalKind::kSubmitted) {
        if (record.job != "capture")
            w.KeyValue("job", record.job);
        if (!record.client_token.empty())
            w.KeyValue("token", record.client_token);
        w.KeyValue("tenant", record.tenant);
        w.KeyValue("workload", record.workload);
        w.KeyValue("scale", record.scale);
        w.KeyValue("max_instructions", record.quota.max_instructions);
        w.KeyValue("max_trace_bytes", record.quota.max_trace_bytes);
        w.KeyValue("deadline_ms", record.quota.deadline_ms);
        if (record.job == "sweep") {
            w.KeyValue("of", record.sweep_of);
            if (record.sweep_timeout_ms != 0)
                w.KeyValue("timeout_ms", record.sweep_timeout_ms);
            w.KeyValue("retries", record.sweep_retries);
            w.Key("configs");
            w.BeginArray();
            for (const SweepConfigSpec& spec : record.configs)
                spec.WriteJson(w);
            w.EndArray();
        }
    }
    if (record.kind == JournalKind::kSweepConfig) {
        w.KeyValue("config", record.config_index);
        // The canonical row travels as an escaped string, not a nested
        // object: string escaping round-trips byte-for-byte, while a
        // re-serialized object would reorder keys — and S4/S5 compare
        // the journaled row against the streamed row as raw bytes.
        w.KeyValue("row", record.row);
    }
    if (!record.outcome.empty())
        w.KeyValue("outcome", record.outcome);
    if (!record.detail.empty())
        w.KeyValue("detail", record.detail);
    w.EndObject();
    return w.TakeStr();
}

util::StatusOr<JournalRecord>
ParseJournalRecord(const std::string& payload)
{
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(payload);
    if (!doc.ok())
        return util::DataLoss("journal record is not valid JSON: ",
                              doc.status().message());
    if (!doc->is_object() || !doc->Has("kind") || !doc->Has("id"))
        return util::DataLoss("journal record missing kind/id");

    JournalRecord record;
    const std::string kind = doc->Get("kind").AsString();
    if (kind == "submitted")
        record.kind = JournalKind::kSubmitted;
    else if (kind == "started")
        record.kind = JournalKind::kStarted;
    else if (kind == "finished")
        record.kind = JournalKind::kFinished;
    else if (kind == "cancelled")
        record.kind = JournalKind::kCancelled;
    else if (kind == "sweep-config")
        record.kind = JournalKind::kSweepConfig;
    else
        return util::DataLoss("unknown journal record kind '", kind, "'");
    record.id = doc->Get("id").AsU64();
    if (record.id == 0)
        return util::DataLoss("journal record with id 0");
    if (doc->Has("job"))
        record.job = doc->Get("job").AsString();
    if (doc->Has("token"))
        record.client_token = doc->Get("token").AsString();
    if (record.job != "capture" && record.job != "sweep")
        return util::DataLoss("unknown journal job kind '", record.job,
                              "'");
    if (record.job == "sweep" &&
        record.kind == JournalKind::kSubmitted) {
        record.sweep_of = doc->Get("of").AsU64();
        record.sweep_timeout_ms = doc->Get("timeout_ms").AsU64();
        if (doc->Has("retries"))
            record.sweep_retries = doc->Get("retries").AsU64();
        const util::JsonValue& configs = doc->Get("configs");
        if (!configs.is_array() || configs.AsArray().empty() ||
            configs.AsArray().size() > kMaxSweepConfigs)
            return util::DataLoss(
                "sweep submission record without a sane config list");
        for (const util::JsonValue& entry : configs.AsArray()) {
            util::StatusOr<SweepConfigSpec> spec =
                ParseSweepConfigSpec(entry);
            if (!spec.ok())
                return util::DataLoss("sweep submission config: ",
                                      spec.status().message());
            record.configs.push_back(std::move(*spec));
        }
    }
    if (record.kind == JournalKind::kSweepConfig) {
        if (!doc->Has("config") || !doc->Has("row"))
            return util::DataLoss(
                "sweep-config record missing config/row");
        record.config_index =
            static_cast<uint32_t>(doc->Get("config").AsU64());
        record.row = doc->Get("row").AsString();
    }
    record.tenant = doc->Get("tenant").AsString();
    record.workload = doc->Get("workload").AsString();
    record.scale =
        static_cast<uint32_t>(doc->Get("scale").AsU64());
    record.quota.max_instructions =
        doc->Get("max_instructions").AsU64();
    record.quota.max_trace_bytes = doc->Get("max_trace_bytes").AsU64();
    record.quota.deadline_ms = doc->Get("deadline_ms").AsU64();
    record.outcome = doc->Get("outcome").AsString();
    record.detail = doc->Get("detail").AsString();
    return record;
}

std::vector<JournalRecord>
ScanJournalBytes(const std::string& bytes, uint64_t* valid_bytes,
                 bool* dropped)
{
    std::vector<JournalRecord> records;
    size_t pos = 0;
    bool cut = false;
    while (bytes.size() - pos >= 8) {
        const auto* b = reinterpret_cast<const uint8_t*>(bytes.data() + pos);
        const uint32_t len = ReadU32Le(b);
        const uint32_t crc = ReadU32Le(b + 4);
        if (len > kMaxRecordBytes || bytes.size() - pos - 8 < len) {
            cut = true;  // torn final write or garbage length
            break;
        }
        const char* payload = bytes.data() + pos + 8;
        if (util::Crc32c(payload, len) != crc) {
            cut = true;  // bit rot or a torn overwrite; stop trusting here
            break;
        }
        util::StatusOr<JournalRecord> record =
            ParseJournalRecord(std::string(payload, len));
        if (!record.ok()) {
            cut = true;  // checksummed but semantically broken: same rule
            break;
        }
        records.push_back(std::move(*record));
        pos += 8 + len;
    }
    if (pos < bytes.size())
        cut = true;  // trailing sub-header bytes are a torn frame too
    if (valid_bytes)
        *valid_bytes = pos;
    if (dropped)
        *dropped = cut;
    return records;
}

JobJournal::JobJournal(std::string path, io::Vfs& vfs)
    : path_(std::move(path)), vfs_(vfs)
{
}

util::StatusOr<std::unique_ptr<JobJournal>>
JobJournal::Open(const std::string& path, io::Vfs& vfs)
{
    std::unique_ptr<JobJournal> journal(new JobJournal(path, vfs));
    util::StatusOr<std::string> bytes = ReadAllBytes(path, vfs);
    if (!bytes.ok() && bytes.status().code() != util::StatusCode::kNotFound)
        return bytes.status();

    if (!bytes.ok()) {
        // First boot: nothing to recover.
        util::StatusOr<std::unique_ptr<io::WritableFile>> file =
            vfs.Create(path);
        if (!file.ok())
            return file.status();
        journal->file_ = std::move(*file);
        return journal;
    }

    uint64_t valid = 0;
    journal->recovered_ =
        ScanJournalBytes(*bytes, &valid, &journal->tail_dropped_);
    util::StatusOr<std::unique_ptr<io::WritableFile>> file =
        vfs.OpenForAppendAt(path, valid);
    if (!file.ok())
        return file.status();
    journal->file_ = std::move(*file);
    journal->durable_bytes_ = valid;
    return journal;
}

util::Status
JobJournal::Append(const JournalRecord& record)
{
    if (!file_)
        return util::FailedPrecondition("journal ", path_, " is not open");
    const std::string payload = SerializeJournalRecord(record);
    std::string frame;
    frame.reserve(8 + payload.size());
    AppendU32Le(frame, static_cast<uint32_t>(payload.size()));
    AppendU32Le(frame, util::Crc32c(payload.data(), payload.size()));
    frame += payload;
    util::Status s = file_->Write(frame.data(), frame.size());
    // J1: the record must be durable before the daemon acts on it.
    if (s.ok())
        s = file_->Sync();
    if (!s.ok()) {
        // A failed append may have torn a partial frame onto the tail.
        // Were the next append to land after that garbage, the scan would
        // stop at the tear and every later record — including acked
        // submissions — would silently vanish from recovery. Truncate
        // back to the last known-durable byte before accepting more; if
        // even that fails, the journal stays closed and later appends
        // fail loudly (the submit path then refuses the ack).
        file_.reset();
        util::StatusOr<std::unique_ptr<io::WritableFile>> reopened =
            vfs_.OpenForAppendAt(path_, durable_bytes_);
        if (reopened.ok())
            file_ = std::move(*reopened);
        return s;
    }
    durable_bytes_ += frame.size();
    return util::OkStatus();
}

util::Status
JobJournal::Compact(const std::vector<JournalRecord>& records)
{
    const std::string tmp = path_ + ".tmp";
    util::StatusOr<std::unique_ptr<io::WritableFile>> out = vfs_.Create(tmp);
    if (!out.ok())
        return out.status();
    std::string bytes;
    for (const JournalRecord& record : records) {
        const std::string payload = SerializeJournalRecord(record);
        AppendU32Le(bytes, static_cast<uint32_t>(payload.size()));
        AppendU32Le(bytes, util::Crc32c(payload.data(), payload.size()));
        bytes += payload;
    }
    if (util::Status s = (*out)->Write(bytes.data(), bytes.size()); !s.ok())
        return s;
    if (util::Status s = (*out)->Sync(); !s.ok())
        return s;
    if (util::Status s = (*out)->Close(); !s.ok())
        return s;
    // The ATCK publish: the complete new journal replaces the old name
    // atomically, and the rename is made durable before we rely on it.
    if (util::Status s = vfs_.Rename(tmp, path_); !s.ok())
        return s;
    if (util::Status s = vfs_.DirSync(path_); !s.ok())
        return s;
    file_.reset();
    util::StatusOr<std::unique_ptr<io::WritableFile>> file =
        vfs_.OpenForAppendAt(path_, bytes.size());
    if (!file.ok())
        return file.status();
    file_ = std::move(*file);
    durable_bytes_ = bytes.size();
    return util::OkStatus();
}

}  // namespace atum::serve
