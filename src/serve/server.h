#ifndef ATUM_SERVE_SERVER_H_
#define ATUM_SERVE_SERVER_H_

/**
 * @file
 * ServeCore — the daemon's brain, factored away from its socket.
 *
 * Everything atum-serve does beyond accept(2) lives here: admission,
 * the job state machine, the journal, execution on the worker pool, and
 * crash recovery. The protocol entry point is HandleRequest(json) ->
 * json, so tests (and the chaos drill campaign) drive the daemon
 * without a socket, a process boundary, or wall-clock nondeterminism.
 *
 * Two execution modes:
 *
 *  - daemon mode (workers > 0): jobs run on a replay::ThreadPool;
 *    HandleRequest never blocks on a capture.
 *  - drill mode (workers == 0): nothing runs until RunNextQueuedJob()
 *    is called, which executes one fair-share-picked job synchronously
 *    on the caller's thread. Chaos drills use this to keep the I/O
 *    operation sequence deterministic for a given request script.
 *
 * Job lifecycle (journaled at every transition, docs/SERVE.md):
 *
 *     submit -> queued -> running -> done | failed | cancelled
 *                  |          |
 *                  |          +-> interrupted (drain/power) -> resumed
 *                  +-> cancelled                               on restart
 *
 * Recovery invariants J1-J3 (proved by the kill-restart drill campaign):
 *   J1 no lost jobs      — every acked submission reaches a terminal
 *                          state across any number of kill/restart cycles;
 *   J2 no double-run     — a job journaled finished never runs again;
 *   J3 journal integrity — a torn/corrupt journal tail never poisons
 *                          recovery (the valid prefix wins, quietly).
 *
 * Exactly-once submits (invariant N1, docs/SERVE.md "Network failure
 * model"): a submit carrying a client token is deduplicated against
 * every token this daemon has ever journaled — a retry after a lost
 * response (or a daemon kill-restart) is answered with the original
 * job id instead of admitting a second job.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/vfs.h"
#include "obs/metrics.h"
#include "replay/thread_pool.h"
#include "serve/admission.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace atum::core {
class Checkpoint;
}

namespace atum::serve {

/** Where a job is in its lifecycle. */
enum class JobState : uint8_t {
    kQueued,
    kRunning,
    kDone,
    kFailed,
    kCancelled,
    kInterrupted,  ///< stopped mid-capture (drain/power); resumable
};

/** Stable lowercase name ("interrupted") for wire and status file. */
const char* JobStateName(JobState state);

/** One job as reported to clients and the status file. */
struct JobInfo {
    uint64_t id = 0;
    /** What the job runs: "capture" (the default) or "sweep". */
    std::string kind = "capture";
    std::string tenant;
    std::string workload;
    uint32_t scale = 1;
    JobQuota quota;  ///< effective (clamped) quota
    JobState state = JobState::kQueued;
    /** Terminal outcome token ("done", "partial", "quota-bytes", ...);
     *  "" until terminal. */
    std::string outcome;
    std::string detail;
    uint64_t records = 0;
    uint64_t trace_bytes = 0;
    uint64_t instructions = 0;
    bool resumed = false;  ///< continued from a checkpoint after restart

    // -- sweep jobs only ---------------------------------------------------
    uint64_t sweep_of = 0;  ///< the finished job whose trace is replayed
    uint64_t sweep_timeout_ms = 0;
    uint64_t sweep_retries = 1;
    std::vector<SweepConfigSpec> configs;
    uint32_t configs_done = 0;    ///< rows finished ok
    uint32_t configs_failed = 0;  ///< rows isolated as failed
    /** Canonical result row per config (sweep_spec.h), "" while pending.
     *  Mergeable partial results: rows fill in as configs finish, and a
     *  restarted daemon re-fills journaled rows byte-identically. */
    std::vector<std::string> sweep_rows;
};

/** Daemon-wide knobs. */
struct ServeConfig {
    /** Flat directory holding journal, status file, traces, checkpoints. */
    std::string dir = ".";
    /** Worker threads; 0 = drill mode (synchronous RunNextQueuedJob). */
    unsigned workers = 2;
    AdmissionConfig admission;

    // -- capture shape (every job; the "memory quota" is mem_bytes) --------
    uint32_t mem_bytes = 2u << 20;
    uint32_t buffer_bytes = 8u << 10;
    uint32_t chunk_records = 128;
    uint64_t checkpoint_every_fills = 2;
    uint32_t keep_checkpoints = 3;
    /** Per-job deadman watchdog in micro-cycles; 0 = off. */
    uint64_t watchdog_ucycles = 0;

    /**
     * External stop signal (SIGTERM latch in the daemon, ChaosVfs
     * cut_flag in drills). Propagated into every running job at its next
     * slice boundary. May be null.
     */
    volatile std::sig_atomic_t* external_stop = nullptr;
};

class ServeCore
{
  public:
    /** `registry` holds the serve.* instruments; null = Global(). */
    ServeCore(ServeConfig config, io::Vfs& vfs,
              obs::Registry* registry = nullptr);
    ~ServeCore();

    ServeCore(const ServeCore&) = delete;
    ServeCore& operator=(const ServeCore&) = delete;

    /**
     * Opens (recovering) the journal, re-admits every non-terminal job,
     * salvages what cannot resume, and — in daemon mode — spins up the
     * pool and starts scheduling. Must be called exactly once.
     */
    util::Status Start();

    /**
     * The protocol: one request payload in, one response payload out.
     * Never throws, never kills the daemon — malformed input earns an
     * error response.
     */
    std::string HandleRequest(const std::string& payload);

    /**
     * Drill mode only: runs the next fair-share-picked job to its stop
     * on the calling thread. False when the queue is empty (or in
     * daemon mode, where the pool owns execution).
     */
    bool RunNextQueuedJob();

    /**
     * Graceful drain (SIGTERM): stop admitting, stop running jobs at
     * their next slice (each seals a final checkpoint), abandon unstarted
     * pool work. Queued jobs stay journaled for the next start.
     */
    void RequestDrain();

    /** RequestDrain + wait for in-flight jobs to seal. */
    void Shutdown();

    bool draining() const
    {
        return draining_.load(std::memory_order_relaxed);
    }

    /** Point-in-time copy of every job, ascending id. */
    std::vector<JobInfo> Jobs() const;

    /** The serve.status.json document (atum-serve-status-v1). */
    std::string StatusJson() const;

    std::string TracePath(uint64_t id) const;
    std::string CheckpointBase(uint64_t id) const;
    const std::string& dir() const { return config_.dir; }

  private:
    struct Job {
        JobInfo info;
        /** The submit's idempotency key ("" = none), kept so recovery
         *  rebuilds the dedup map from the journal alone. */
        std::string client_token;
        /** Per-job graceful-stop latch (SupervisorOptions.stop_flag). */
        volatile std::sig_atomic_t stop_flag = 0;
        std::atomic<bool> cancel_requested{false};
        std::atomic<bool> quota_stopped{false};
    };

    std::string HandleSubmit(const Request& request);
    std::string HandleSweep(const Request& request);
    std::string HandleStatus(const Request& request);
    std::string HandleCancel(const Request& request);

    /** Recovery folding of journal records into the job table. */
    util::Status RecoverLocked();

    /** Re-queues a recovered job; journals a shed when bounds refuse it. */
    void ReadmitRecoveredLocked(uint64_t id, Job& job);

    /** Resume / salvage / re-run decision for a crash-interrupted job. */
    void ResolveInterruptedLocked(uint64_t id, Job& job);

    /**
     * Newest loadable checkpoint (with sink state) of job `id`, found by
     * listing the serve directory — never by trusting an inventory that
     * may itself be stale. Null when none survives.
     */
    std::unique_ptr<core::Checkpoint> LoadNewestCheckpoint(
        uint64_t id, uint64_t* seq) const;

    std::string StatusJsonLocked() const;

    /** Fills free slots from the pending queue (daemon mode). */
    void ScheduleMoreLocked();

    /** The whole life of one running job (worker thread / drill call). */
    void RunJob(uint64_t id);

    /**
     * The sweep body: loads the target trace once, replays every config
     * not already journaled complete (the resume high-water mark), with
     * per-row isolation, bounded retry and a per-config timeout, and
     * journals each completion fsync-first before streaming it.
     */
    void RunSweepJob(uint64_t id, Job* job, const JobInfo& spec,
                     std::chrono::steady_clock::time_point t0);

    /** Seals a job: journals the terminal record (unless interrupted),
     *  updates the table, frees the slot, schedules the next job. */
    void FinishJob(uint64_t id, Job* job,
                   std::chrono::steady_clock::time_point t0,
                   const std::string& outcome, const std::string& detail,
                   bool interrupted, uint64_t records,
                   uint64_t instructions, uint64_t trace_bytes,
                   bool resumed);

    void WriteStatusFileLocked();
    void PublishGaugesLocked();
    void AppendJournalLocked(const JournalRecord& record);

    ServeConfig config_;
    io::Vfs& vfs_;
    obs::Registry& registry_;

    mutable std::mutex mu_;
    std::unique_ptr<JobJournal> journal_;
    AdmissionController admission_;
    std::map<uint64_t, std::unique_ptr<Job>> jobs_;
    /** client_token -> original job id (N1: one token, one job). */
    std::map<std::string, uint64_t> token_to_id_;
    uint64_t next_id_ = 1;
    bool started_ = false;
    unsigned slots_free_ = 0;

    std::atomic<bool> draining_{false};
    std::unique_ptr<replay::ThreadPool> pool_;
    replay::CancellationToken drain_token_;
};

/**
 * Test-only: disables submit-token deduplication, reintroducing the
 * double-run-under-retry bug the net chaos drills exist to catch. The
 * teeth test (tests/serve_test.cc) flips this off, proves the campaign
 * reports an N1 violation, and flips it back on.
 */
void SetTokenDedupForTest(bool enabled);

}  // namespace atum::serve

#endif  // ATUM_SERVE_SERVER_H_
