#ifndef ATUM_SERVE_SOCKET_H_
#define ATUM_SERVE_SOCKET_H_

/**
 * @file
 * The thin POSIX rind around ServeCore: a Unix-domain stream listener
 * and the matching client, speaking length-prefixed frames
 * (serve/protocol.h).
 *
 * Kept deliberately small and separate — everything with behavior worth
 * testing lives in ServeCore, and everything here is straight-line
 * syscall plumbing: bind/listen/accept on the server side, connect +
 * one-request/one-response exchanges on the client side. Blocking I/O
 * with a per-connection frame parser; the daemon serves connections one
 * at a time (requests are sub-millisecond — the expensive work happens
 * on the worker pool, never on the accept thread).
 */

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace atum::serve {

/** Writes one length-prefixed frame to `fd` (blocking, EINTR-safe). */
util::Status WriteFrameFd(int fd, const std::string& payload);

/**
 * Reads one complete frame from `fd`. kUnavailable on EOF before any
 * byte (peer closed cleanly), kDataLoss on EOF mid-frame, kInvalidArgument
 * on an oversized frame.
 */
util::StatusOr<std::string> ReadFrameFd(int fd);

/** A bound, listening Unix-domain stream socket. */
class UnixListener
{
  public:
    /**
     * Binds and listens on `path`, replacing a stale socket file from a
     * previous (dead) daemon — the journal, not the socket, is the
     * authority on daemon identity.
     */
    static util::StatusOr<std::unique_ptr<UnixListener>> Bind(
        const std::string& path);

    ~UnixListener();
    UnixListener(const UnixListener&) = delete;
    UnixListener& operator=(const UnixListener&) = delete;

    /**
     * Accepts one connection and returns its fd; the caller owns and
     * closes it. `timeout_ms` bounds the wait (-1 = forever): -1 is
     * returned when it elapses with no connection, so a daemon can
     * re-check its SIGTERM flag between accepts (std::signal's
     * SA_RESTART semantics would otherwise park accept(2) forever).
     * kUnavailable on a closed listener or accept failure.
     */
    util::StatusOr<int> Accept(int timeout_ms = -1);

    /** Closes the listening socket (thread-safe wakeup for Accept). */
    void Close();

    const std::string& path() const { return path_; }

  private:
    UnixListener(int fd, std::string path) : fd_(fd), path_(std::move(path))
    {
    }

    int fd_;
    std::string path_;
};

/** One client connection: connect, then Call() per request. */
class UnixClient
{
  public:
    static util::StatusOr<std::unique_ptr<UnixClient>> Connect(
        const std::string& path);

    ~UnixClient();
    UnixClient(const UnixClient&) = delete;
    UnixClient& operator=(const UnixClient&) = delete;

    /** Sends one request payload, returns the response payload. */
    util::StatusOr<std::string> Call(const std::string& payload);

  private:
    explicit UnixClient(int fd) : fd_(fd) {}

    int fd_;
};

}  // namespace atum::serve

#endif  // ATUM_SERVE_SOCKET_H_
