#ifndef ATUM_SERVE_SOCKET_H_
#define ATUM_SERVE_SOCKET_H_

/**
 * @file
 * The POSIX rind around ServeCore: a Unix-domain stream listener, the
 * matching client, frame I/O over the io::Stream seam, and the
 * connection governor that keeps a hostile peer from wedging or
 * starving the daemon.
 *
 * Everything with job-level behavior worth testing lives in ServeCore;
 * this layer owns the connection-level robustness contract instead
 * (docs/SERVE.md "Network failure model"):
 *
 *  - frame I/O is written against io::Stream, so the same code path the
 *    daemon runs in production is driven through ChaosNet in the net
 *    chaos drills (short reads, mid-frame cuts, bit flips, stalls);
 *  - raw fd work goes through the EINTR-retrying wrappers in
 *    io/posix.h, never bare read(2)/write(2);
 *  - ConnGovernor bounds how many connections exist at once (globally
 *    and per tenant), tracks per-connection activity for slowloris
 *    eviction, and is pure bookkeeping over an injected clock so tests
 *    need no wall time.
 */

#include <cstdint>
#include <csignal>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/stream.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace atum::serve {

/** Writes one length-prefixed frame through `stream` (loops partials). */
util::Status WriteFrameStream(io::Stream& stream,
                              const std::string& payload);

/**
 * Reads one complete frame through `stream` into `parser` (which holds
 * any read-ahead for the next call — one parser per connection).
 * kUnavailable on orderly close before any byte, kDataLoss on close
 * mid-frame, kInvalidArgument once the parser is poisoned by an
 * oversized frame.
 */
util::StatusOr<std::string> ReadFrameStream(io::Stream& stream,
                                            FrameParser& parser);

/** Frame I/O on a bare connected fd (one-shot; wraps FdStream). */
util::Status WriteFrameFd(int fd, const std::string& payload);
util::StatusOr<std::string> ReadFrameFd(int fd);

/** A bound, listening Unix-domain stream socket. */
class UnixListener
{
  public:
    /**
     * Binds and listens on `path`, replacing a stale socket file from a
     * previous (dead) daemon — the journal, not the socket, is the
     * authority on daemon identity.
     */
    static util::StatusOr<std::unique_ptr<UnixListener>> Bind(
        const std::string& path);

    ~UnixListener();
    UnixListener(const UnixListener&) = delete;
    UnixListener& operator=(const UnixListener&) = delete;

    /**
     * Accepts one connection and returns its fd; the caller owns and
     * closes it. `timeout_ms` bounds the wait: -1 is returned when it
     * elapses with no connection, so a daemon can re-check its SIGTERM
     * flag between accepts. `timeout_ms < 0` waits "forever" — but in
     * bounded poll slices, re-checking the stop flag installed with
     * set_stop_flag() each slice, so a SIGTERM during an idle wait
     * returns kInterrupted instead of parking in accept(2) until the
     * next client happens to dial. kUnavailable on a closed listener.
     */
    util::StatusOr<int> Accept(int timeout_ms = -1);

    /** Stop latch consulted by an unbounded Accept between poll slices
     *  (point it at the daemon's SIGTERM flag). May be null. */
    void set_stop_flag(volatile std::sig_atomic_t* flag)
    {
        stop_flag_ = flag;
    }

    /** Closes the listening socket (thread-safe wakeup for Accept). */
    void Close();

    int fd() const { return fd_; }
    const std::string& path() const { return path_; }

  private:
    UnixListener(int fd, std::string path) : fd_(fd), path_(std::move(path))
    {
    }

    int fd_;
    std::string path_;
    volatile std::sig_atomic_t* stop_flag_ = nullptr;
};

/** One client connection: connect, then Call() per request. */
class UnixClient
{
  public:
    static util::StatusOr<std::unique_ptr<UnixClient>> Connect(
        const std::string& path);

    ~UnixClient();
    UnixClient(const UnixClient&) = delete;
    UnixClient& operator=(const UnixClient&) = delete;

    /** Sends one request payload, returns the response payload. */
    util::StatusOr<std::string> Call(const std::string& payload);

    int fd() const { return fd_; }

  private:
    explicit UnixClient(int fd) : fd_(fd) {}

    int fd_;
};

/** Connection-governance knobs (docs/SERVE.md "Network failure model"). */
struct ConnGovernorConfig {
    /** Open connections across all tenants; past it, accepts shed. */
    uint32_t max_connections = 64;
    /** Open connections one tenant may hold (its connection share). */
    uint32_t max_per_tenant = 16;
    /** A connection silent this long is a slowloris and is evicted. */
    uint64_t idle_timeout_ms = 30'000;
    /** Bytes one connection may hold buffered (parser read-ahead plus
     *  unsent responses) before it is evicted as a memory hog. */
    size_t max_buffered_bytes = 4u << 20;
};

/**
 * Per-connection bookkeeping for the daemon's accept loop: admission
 * against the global and per-tenant connection caps, last-activity
 * tracking for slowloris eviction. Pure state over caller-supplied
 * timestamps (monotonic ms), so the net drills and unit tests govern
 * simulated connections without wall-clock nondeterminism. Not
 * thread-safe; the accept loop is single-threaded by design.
 */
class ConnGovernor
{
  public:
    explicit ConnGovernor(ConnGovernorConfig config)
        : config_(config)
    {
    }

    /**
     * Admits connection `conn_id` at `now_ms`; kResourceExhausted when
     * the global cap is reached (the caller answers with a structured
     * shed error, then closes — exit 8 on the client).
     */
    util::Status OnAccept(uint64_t conn_id, uint64_t now_ms);

    /**
     * Charges the connection to `tenant` (first request names it; a
     * later request may re-name it, moving the charge).
     * kResourceExhausted when the tenant's connection share is full.
     */
    util::Status OnTenant(uint64_t conn_id, const std::string& tenant);

    /** Any byte read from or written to the connection. */
    void OnActivity(uint64_t conn_id, uint64_t now_ms);

    /** Releases the connection (close or eviction). */
    void OnClose(uint64_t conn_id);

    /** Connections silent since before `now_ms - idle_timeout_ms`. */
    std::vector<uint64_t> IdleConnections(uint64_t now_ms) const;

    size_t open_connections() const { return conns_.size(); }
    const ConnGovernorConfig& config() const { return config_; }

  private:
    struct Conn {
        std::string tenant;
        uint64_t last_activity_ms = 0;
    };

    ConnGovernorConfig config_;
    std::map<uint64_t, Conn> conns_;
    std::map<std::string, uint32_t> tenant_conns_;
};

}  // namespace atum::serve

#endif  // ATUM_SERVE_SOCKET_H_
