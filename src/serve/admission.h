#ifndef ATUM_SERVE_ADMISSION_H_
#define ATUM_SERVE_ADMISSION_H_

/**
 * @file
 * Admission control and fair-share scheduling for the serve daemon.
 *
 * Two decisions live here, both made under bounded state so the daemon
 * can never be queued into the ground:
 *
 *  - Admit or shed. A submission is refused with kResourceExhausted
 *    (exit code 8 at the client) the moment the pending queue is full or
 *    the tenant already holds its per-tenant share. Refusal is cheap and
 *    immediate; unbounded queueing is the failure mode HMTT documents
 *    for swamped trace pipelines, and it is the one thing this class
 *    makes impossible.
 *
 *  - Pick next. When a worker frees up, the pending job whose tenant has
 *    the fewest running jobs goes first (FIFO within a tenant), so one
 *    chatty tenant saturating the queue cannot starve a quiet one — the
 *    quiet tenant's first job jumps the chatty tenant's fifth.
 *
 * Purely in-memory bookkeeping; journaling its decisions durable is the
 * server's job. Not thread-safe by itself — the server serializes access
 * under its own lock.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace atum::serve {

/** Bounds and defaults the daemon enforces on every job. */
struct AdmissionConfig {
    /** Pending (admitted, not yet running) jobs across all tenants. */
    uint32_t max_queue_depth = 16;
    /** Pending + running jobs any one tenant may hold. */
    uint32_t max_per_tenant = 8;
    /** Instruction budget for jobs that do not ask for one. */
    uint64_t default_max_instructions = 200'000;
    /** Hard per-job instruction cap (0 = uncapped). */
    uint64_t max_instructions_cap = 0;
    /** Hard per-job trace-byte cap (0 = uncapped). */
    uint64_t max_trace_bytes_cap = 0;
};

class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionConfig config)
        : config_(config)
    {
    }

    /**
     * Admits job `id` for `tenant` into the pending queue, or refuses
     * with kResourceExhausted (queue full / tenant over share). The id
     * must be new.
     */
    util::Status Admit(uint64_t id, const std::string& tenant);

    /**
     * Fair-share pick: moves the pending job whose tenant has the fewest
     * running jobs (FIFO within a tenant, lowest id breaking ties across
     * equally-loaded tenants) into the running set. False when nothing
     * is pending.
     */
    bool PickNext(uint64_t* id);

    /** Removes a pending job (cancel); false when not pending. */
    bool RemovePending(uint64_t id);

    /** Retires a running job, releasing its tenant share. */
    void FinishRunning(uint64_t id);

    /** Clamps a requested quota to the server's defaults and caps. */
    JobQuota EffectiveQuota(const JobQuota& requested) const;

    uint32_t pending_count() const
    {
        return static_cast<uint32_t>(pending_.size());
    }
    uint32_t running_count() const
    {
        return static_cast<uint32_t>(running_.size());
    }

    const AdmissionConfig& config() const { return config_; }

  private:
    uint32_t TenantLoad(const std::string& tenant) const;

    AdmissionConfig config_;
    /** Admission order (FIFO backbone of the fair-share pick). */
    std::deque<std::pair<uint64_t, std::string>> pending_;
    std::map<uint64_t, std::string> running_;
    std::map<std::string, uint32_t> running_per_tenant_;
    std::map<std::string, uint32_t> pending_per_tenant_;
};

}  // namespace atum::serve

#endif  // ATUM_SERVE_ADMISSION_H_
