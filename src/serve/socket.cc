#include "serve/socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "io/posix.h"

namespace atum::serve {

namespace {

util::Status
SocketErrno(int err, const std::string& what)
{
    return util::Unavailable(what, ": ", std::strerror(err));
}

util::StatusOr<int>
MakeSocket()
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return SocketErrno(errno, "socket(AF_UNIX)");
    return fd;
}

util::Status
FillAddr(const std::string& path, sockaddr_un* addr)
{
    if (path.size() >= sizeof(addr->sun_path))
        return util::InvalidArgument("socket path too long (", path.size(),
                                     " bytes): ", path);
    std::memset(addr, 0, sizeof *addr);
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return util::OkStatus();
}

/** Poll slice for an unbounded Accept: long enough to idle cheaply,
 *  short enough that a SIGTERM drain never waits noticeably. */
constexpr int kAcceptSliceMs = 200;

}  // namespace

util::Status
WriteFrameStream(io::Stream& stream, const std::string& payload)
{
    const std::string frame = EncodeFrame(payload);
    return io::WriteAll(stream, frame.data(), frame.size());
}

util::StatusOr<std::string>
ReadFrameStream(io::Stream& stream, FrameParser& parser)
{
    std::string payload;
    char buf[4096];
    for (;;) {
        util::StatusOr<bool> got = parser.Next(&payload);
        if (!got.ok())
            return got.status();
        if (*got)
            return payload;
        util::StatusOr<size_t> n = stream.Read(buf, sizeof buf);
        if (!n.ok())
            return n.status();
        if (*n == 0) {
            if (parser.pending_bytes() == 0)
                return util::Unavailable("peer closed the connection");
            return util::DataLoss("connection closed mid-frame (",
                                  parser.pending_bytes(),
                                  " bytes buffered)");
        }
        parser.Feed(buf, *n);
    }
}

util::Status
WriteFrameFd(int fd, const std::string& payload)
{
    io::FdStream stream(fd);
    return WriteFrameStream(stream, payload);
}

util::StatusOr<std::string>
ReadFrameFd(int fd)
{
    io::FdStream stream(fd);
    FrameParser parser;
    return ReadFrameStream(stream, parser);
}

util::StatusOr<std::unique_ptr<UnixListener>>
UnixListener::Bind(const std::string& path)
{
    sockaddr_un addr;
    if (util::Status s = FillAddr(path, &addr); !s.ok())
        return s;
    util::StatusOr<int> fd = MakeSocket();
    if (!fd.ok())
        return fd.status();
    // A stale socket file from a crashed daemon blocks bind(2); the
    // journal is what carries identity across restarts, so the file is
    // safe to clear.
    ::unlink(path.c_str());
    if (::bind(*fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        const int err = errno;
        io::CloseFd(*fd, path);
        return SocketErrno(err, "bind " + path);
    }
    if (::listen(*fd, 16) != 0) {
        const int err = errno;
        io::CloseFd(*fd, path);
        return SocketErrno(err, "listen " + path);
    }
    return std::unique_ptr<UnixListener>(new UnixListener(*fd, path));
}

UnixListener::~UnixListener()
{
    Close();
    ::unlink(path_.c_str());
}

util::StatusOr<int>
UnixListener::Accept(int timeout_ms)
{
    // An unbounded wait is really a loop of bounded ones: each slice
    // re-checks the stop flag and the listener fd, so a SIGTERM (or a
    // concurrent Close) during an idle wait ends the accept loop instead
    // of parking in accept(2) until the next client happens to dial.
    const bool unbounded = timeout_ms < 0;
    for (;;) {
        if (fd_ < 0)
            return util::Unavailable("listener is closed");
        if (stop_flag_ != nullptr && *stop_flag_ != 0)
            return util::Interrupted("listener stopped");
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int slice = unbounded ? kAcceptSliceMs : timeout_ms;
        const int ready = ::poll(&pfd, 1, slice);
        if (ready < 0 && errno != EINTR)
            return SocketErrno(errno, "poll");
        if (ready <= 0) {
            if (!unbounded)
                return -1;  // timeout (or signal): no connection
            continue;  // next slice; the stop flag is re-checked above
        }
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;  // the dialer gave up; keep listening
            return SocketErrno(errno, "accept");
        }
        return fd;
    }
}

void
UnixListener::Close()
{
    if (fd_ >= 0) {
        io::CloseFd(fd_, path_);
        fd_ = -1;
    }
}

util::StatusOr<std::unique_ptr<UnixClient>>
UnixClient::Connect(const std::string& path)
{
    sockaddr_un addr;
    if (util::Status s = FillAddr(path, &addr); !s.ok())
        return s;
    util::StatusOr<int> fd = MakeSocket();
    if (!fd.ok())
        return fd.status();
    if (::connect(*fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const int err = errno;
        io::CloseFd(*fd, path);
        return SocketErrno(err, "connect " + path);
    }
    return std::unique_ptr<UnixClient>(new UnixClient(*fd));
}

UnixClient::~UnixClient()
{
    if (fd_ >= 0)
        io::CloseFd(fd_, "client socket");
}

util::StatusOr<std::string>
UnixClient::Call(const std::string& payload)
{
    if (util::Status s = WriteFrameFd(fd_, payload); !s.ok())
        return s;
    return ReadFrameFd(fd_);
}

util::Status
ConnGovernor::OnAccept(uint64_t conn_id, uint64_t now_ms)
{
    if (conns_.size() >= config_.max_connections)
        return util::ResourceExhausted(
            "connection limit reached (", config_.max_connections,
            " open); retry after one closes");
    Conn& conn = conns_[conn_id];
    conn.last_activity_ms = now_ms;
    return util::OkStatus();
}

util::Status
ConnGovernor::OnTenant(uint64_t conn_id, const std::string& tenant)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return util::NotFound("unknown connection ", conn_id);
    if (it->second.tenant == tenant)
        return util::OkStatus();
    auto count = tenant_conns_.find(tenant);
    if (count != tenant_conns_.end() &&
        count->second >= config_.max_per_tenant)
        return util::ResourceExhausted(
            "tenant '", tenant, "' holds its connection share (",
            config_.max_per_tenant, "); retry after one closes");
    if (!it->second.tenant.empty()) {
        auto old = tenant_conns_.find(it->second.tenant);
        if (old != tenant_conns_.end() && --old->second == 0)
            tenant_conns_.erase(old);
    }
    it->second.tenant = tenant;
    ++tenant_conns_[tenant];
    return util::OkStatus();
}

void
ConnGovernor::OnActivity(uint64_t conn_id, uint64_t now_ms)
{
    auto it = conns_.find(conn_id);
    if (it != conns_.end())
        it->second.last_activity_ms = now_ms;
}

void
ConnGovernor::OnClose(uint64_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    if (!it->second.tenant.empty()) {
        auto count = tenant_conns_.find(it->second.tenant);
        if (count != tenant_conns_.end() && --count->second == 0)
            tenant_conns_.erase(count);
    }
    conns_.erase(it);
}

std::vector<uint64_t>
ConnGovernor::IdleConnections(uint64_t now_ms) const
{
    std::vector<uint64_t> idle;
    for (const auto& [id, conn] : conns_) {
        if (now_ms - conn.last_activity_ms >= config_.idle_timeout_ms)
            idle.push_back(id);
    }
    return idle;
}

}  // namespace atum::serve
