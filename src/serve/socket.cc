#include "serve/socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace atum::serve {

namespace {

util::Status
ErrnoStatus(int err, const std::string& what)
{
    return util::Unavailable(what, ": ", std::strerror(err));
}

util::StatusOr<int>
MakeSocket()
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return ErrnoStatus(errno, "socket(AF_UNIX)");
    return fd;
}

util::Status
FillAddr(const std::string& path, sockaddr_un* addr)
{
    if (path.size() >= sizeof(addr->sun_path))
        return util::InvalidArgument("socket path too long (", path.size(),
                                     " bytes): ", path);
    std::memset(addr, 0, sizeof *addr);
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return util::OkStatus();
}

}  // namespace

util::Status
WriteFrameFd(int fd, const std::string& payload)
{
    const std::string frame = EncodeFrame(payload);
    size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            ::write(fd, frame.data() + off, frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ErrnoStatus(errno, "write frame");
        }
        off += static_cast<size_t>(n);
    }
    return util::OkStatus();
}

util::StatusOr<std::string>
ReadFrameFd(int fd)
{
    FrameParser parser;
    std::string payload;
    char buf[4096];
    for (;;) {
        util::StatusOr<bool> got = parser.Next(&payload);
        if (!got.ok())
            return got.status();
        if (*got)
            return payload;
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ErrnoStatus(errno, "read frame");
        }
        if (n == 0) {
            if (parser.pending_bytes() == 0)
                return util::Unavailable("peer closed the connection");
            return util::DataLoss("connection closed mid-frame (",
                                  parser.pending_bytes(),
                                  " bytes buffered)");
        }
        parser.Feed(buf, static_cast<size_t>(n));
    }
}

util::StatusOr<std::unique_ptr<UnixListener>>
UnixListener::Bind(const std::string& path)
{
    sockaddr_un addr;
    if (util::Status s = FillAddr(path, &addr); !s.ok())
        return s;
    util::StatusOr<int> fd = MakeSocket();
    if (!fd.ok())
        return fd.status();
    // A stale socket file from a crashed daemon blocks bind(2); the
    // journal is what carries identity across restarts, so the file is
    // safe to clear.
    ::unlink(path.c_str());
    if (::bind(*fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        const int err = errno;
        ::close(*fd);
        return ErrnoStatus(err, "bind " + path);
    }
    if (::listen(*fd, 16) != 0) {
        const int err = errno;
        ::close(*fd);
        return ErrnoStatus(err, "listen " + path);
    }
    return std::unique_ptr<UnixListener>(new UnixListener(*fd, path));
}

UnixListener::~UnixListener()
{
    Close();
    ::unlink(path_.c_str());
}

util::StatusOr<int>
UnixListener::Accept(int timeout_ms)
{
    if (fd_ < 0)
        return util::Unavailable("listener is closed");
    if (timeout_ms >= 0) {
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready < 0 && errno != EINTR)
            return ErrnoStatus(errno, "poll");
        if (ready <= 0)
            return -1;  // timeout (or signal): no connection this round
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0)
        return ErrnoStatus(errno, "accept");
    return fd;
}

void
UnixListener::Close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

util::StatusOr<std::unique_ptr<UnixClient>>
UnixClient::Connect(const std::string& path)
{
    sockaddr_un addr;
    if (util::Status s = FillAddr(path, &addr); !s.ok())
        return s;
    util::StatusOr<int> fd = MakeSocket();
    if (!fd.ok())
        return fd.status();
    if (::connect(*fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const int err = errno;
        ::close(*fd);
        return ErrnoStatus(err, "connect " + path);
    }
    return std::unique_ptr<UnixClient>(new UnixClient(*fd));
}

UnixClient::~UnixClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

util::StatusOr<std::string>
UnixClient::Call(const std::string& payload)
{
    if (util::Status s = WriteFrameFd(fd_, payload); !s.ok())
        return s;
    return ReadFrameFd(fd_);
}

}  // namespace atum::serve
