#ifndef ATUM_SERVE_SWEEP_SPEC_H_
#define ATUM_SERVE_SWEEP_SPEC_H_

/**
 * @file
 * The serializable half of a replay sweep: the config specs a client
 * submits over the wire, the same specs as the journal re-reads them on
 * recovery, and the canonical per-config result row the daemon streams
 * back as each config finishes.
 *
 * Everything here must round-trip byte-for-byte, because the journal's
 * per-config completion records are the daemon's resume high-water mark:
 * a recovered sweep is the union of journaled rows and re-run remainder,
 * and invariant S5 (docs/SERVE.md) demands that union be bit-identical
 * to a clean run. That is only checkable if the row serialization is one
 * canonical function used by the daemon, the recovery path, and the
 * chaos checker alike — so it lives here, not inline in the server.
 *
 * Geometry is deliberately NOT validated at parse time. A sweep isolates
 * failures per row: a config with a nonsensical geometry becomes one
 * failed row (replay::ValidateConfig catches it before any simulator is
 * built), never a rejected submission or a failed sweep.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "replay/sweep.h"
#include "util/json.h"
#include "util/status.h"

namespace atum::serve {

/** Hard bound on configs per sweep: keeps the submission's journal
 *  record far below the journal's record-size sanity limit. */
inline constexpr uint32_t kMaxSweepConfigs = 64;

/**
 * One replayable configuration, in wire form. Kind selects which knobs
 * matter: "cache" uses size_kb/block/assoc, "hierarchy" applies them to
 * the unified L2 over default split L1s, "tlb" uses entries/ways.
 */
struct SweepConfigSpec {
    std::string kind = "cache";  ///< "cache" | "hierarchy" | "tlb"
    std::string label;           ///< optional row label (defaulted if empty)
    uint32_t size_kb = 64;       ///< cache (or L2) capacity in KiB
    uint32_t block = 16;         ///< block size in bytes
    uint32_t assoc = 1;          ///< associativity; 0 = fully associative
    uint32_t entries = 64;       ///< TLB entries
    uint32_t ways = 0;           ///< TLB ways; 0 = fully associative

    /** The replay-engine job this spec describes. */
    replay::SweepConfig ToReplayConfig() const;

    /** Emits the spec as one JSON object into an open writer. */
    void WriteJson(util::JsonWriter& w) const;
};

/** Parses one spec object; kInvalidArgument for an unknown kind or a
 *  malformed field (geometry itself is judged per-row at replay time). */
util::StatusOr<SweepConfigSpec> ParseSweepConfigSpec(
    const util::JsonValue& doc);

/**
 * Parses the compact CLI form `kind[:key=val]...`, e.g.
 * "cache:size_kb=128:assoc=2", "hierarchy:size_kb=256:block=32",
 * "tlb:entries=32:ways=4".
 */
util::StatusOr<SweepConfigSpec> ParseSweepConfigSpecText(
    const std::string& text);

/**
 * The canonical result row for one finished config — the exact bytes
 * journaled, streamed into the status file, and compared bit-for-bit by
 * the S4/S5 drills. `records` is the input-trace record count the config
 * replayed (the input fingerprint recovery uses to detect a trace that
 * changed underneath journaled rows).
 */
std::string SweepRowJson(uint32_t config_index, uint64_t records,
                         const SweepConfigSpec& spec,
                         const replay::SweepResult& result);

}  // namespace atum::serve

#endif  // ATUM_SERVE_SWEEP_SPEC_H_
