#include "serve/sweep_spec.h"

#include <cstdlib>

namespace atum::serve {

namespace {

bool
IsKnownKind(const std::string& kind)
{
    return kind == "cache" || kind == "hierarchy" || kind == "tlb";
}

/** A non-negative integral field, defaulting when absent. */
util::StatusOr<uint32_t>
U32Field(const util::JsonValue& doc, const std::string& key,
         uint32_t fallback)
{
    if (!doc.Has(key))
        return fallback;
    const util::JsonValue& v = doc.Get(key);
    if (!v.is_number() || v.AsDouble() < 0)
        return util::InvalidArgument("sweep config field '", key,
                                     "' must be a non-negative number");
    return static_cast<uint32_t>(v.AsU64());
}

}  // namespace

replay::SweepConfig
SweepConfigSpec::ToReplayConfig() const
{
    if (kind == "hierarchy") {
        cache::HierarchyConfig h;
        h.l2.size_bytes = size_kb << 10;
        h.l2.block_bytes = block;
        h.l2.assoc = assoc;
        return replay::MakeHierarchyJob(h, label);
    }
    if (kind == "tlb") {
        tlbsim::TlbSimConfig t;
        t.entries = entries;
        t.ways = ways;
        return replay::MakeTlbJob(t, label);
    }
    cache::CacheConfig c;
    c.size_bytes = size_kb << 10;
    c.block_bytes = block;
    c.assoc = assoc;
    return replay::MakeCacheJob(c, {}, label);
}

void
SweepConfigSpec::WriteJson(util::JsonWriter& w) const
{
    w.BeginObject();
    w.KeyValue("kind", kind);
    if (!label.empty())
        w.KeyValue("label", label);
    if (kind == "tlb") {
        w.KeyValue("entries", entries);
        w.KeyValue("ways", ways);
    } else {
        w.KeyValue("size_kb", size_kb);
        w.KeyValue("block", block);
        w.KeyValue("assoc", assoc);
    }
    w.EndObject();
}

util::StatusOr<SweepConfigSpec>
ParseSweepConfigSpec(const util::JsonValue& doc)
{
    if (!doc.is_object())
        return util::InvalidArgument("sweep config must be a JSON object");
    SweepConfigSpec spec;
    if (doc.Has("kind"))
        spec.kind = doc.Get("kind").AsString();
    if (!IsKnownKind(spec.kind))
        return util::InvalidArgument("unknown sweep config kind '",
                                     spec.kind,
                                     "' (cache | hierarchy | tlb)");
    spec.label = doc.Get("label").AsString();
    if (spec.label.size() > 64)
        return util::InvalidArgument("sweep config label over 64 chars");
    util::StatusOr<uint32_t> field = U32Field(doc, "size_kb", spec.size_kb);
    if (!field.ok())
        return field.status();
    spec.size_kb = *field;
    if (!(field = U32Field(doc, "block", spec.block)).ok())
        return field.status();
    spec.block = *field;
    if (!(field = U32Field(doc, "assoc", spec.assoc)).ok())
        return field.status();
    spec.assoc = *field;
    if (!(field = U32Field(doc, "entries", spec.entries)).ok())
        return field.status();
    spec.entries = *field;
    if (!(field = U32Field(doc, "ways", spec.ways)).ok())
        return field.status();
    spec.ways = *field;
    return spec;
}

util::StatusOr<SweepConfigSpec>
ParseSweepConfigSpecText(const std::string& text)
{
    SweepConfigSpec spec;
    size_t pos = text.find(':');
    spec.kind = text.substr(0, pos);
    if (!IsKnownKind(spec.kind))
        return util::InvalidArgument("unknown sweep config kind '",
                                     spec.kind,
                                     "' (cache | hierarchy | tlb)");
    while (pos != std::string::npos) {
        const size_t start = pos + 1;
        pos = text.find(':', start);
        const std::string part =
            text.substr(start, pos == std::string::npos ? std::string::npos
                                                        : pos - start);
        const size_t eq = part.find('=');
        if (eq == std::string::npos || eq == 0)
            return util::InvalidArgument("sweep config part '", part,
                                         "' is not key=value");
        const std::string key = part.substr(0, eq);
        const std::string value = part.substr(eq + 1);
        if (key == "label") {
            if (value.size() > 64)
                return util::InvalidArgument(
                    "sweep config label over 64 chars");
            spec.label = value;
            continue;
        }
        char* end = nullptr;
        const unsigned long long n = std::strtoull(value.c_str(), &end, 0);
        if (end == value.c_str() || *end != '\0')
            return util::InvalidArgument("sweep config value '", value,
                                         "' for '", key,
                                         "' is not a number");
        const uint32_t v = static_cast<uint32_t>(n);
        if (key == "size_kb")
            spec.size_kb = v;
        else if (key == "block")
            spec.block = v;
        else if (key == "assoc")
            spec.assoc = v;
        else if (key == "entries")
            spec.entries = v;
        else if (key == "ways")
            spec.ways = v;
        else
            return util::InvalidArgument("unknown sweep config key '", key,
                                         "'");
    }
    return spec;
}

std::string
SweepRowJson(uint32_t config_index, uint64_t records,
             const SweepConfigSpec& spec, const replay::SweepResult& result)
{
    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("config", config_index);
    w.KeyValue("kind", spec.kind);
    w.KeyValue("label", result.label);
    w.KeyValue("records", records);
    if (!result.status.ok()) {
        w.KeyValue("status",
                   util::StatusCodeName(result.status.code()));
        w.KeyValue("error", result.status.message());
        w.EndObject();
        return w.TakeStr();
    }
    w.KeyValue("status", "ok");
    switch (result.kind) {
      case replay::SweepConfig::Kind::kCache:
        w.KeyValue("accesses", result.cache_stats.accesses);
        w.KeyValue("misses", result.cache_stats.misses);
        w.KeyValue("fed", result.fed);
        w.KeyValue("filtered", result.filtered);
        break;
      case replay::SweepConfig::Kind::kHierarchy:
        w.KeyValue("accesses", result.hierarchy_accesses);
        w.KeyValue("l1i_misses", result.l1i_stats.misses);
        w.KeyValue("l1d_misses", result.l1d_stats.misses);
        w.KeyValue("l2_misses", result.l2_stats.misses);
        w.KeyValue("memory_accesses", result.memory_accesses);
        w.KeyValue("amat", result.amat);
        break;
      case replay::SweepConfig::Kind::kTlb:
        w.KeyValue("accesses", result.tlb_stats.accesses);
        w.KeyValue("misses", result.tlb_stats.misses);
        w.KeyValue("flushes", result.tlb_stats.flushes);
        break;
    }
    w.KeyValue("miss_rate", result.MissRate());
    w.EndObject();
    return w.TakeStr();
}

}  // namespace atum::serve
