#include "serve/admission.h"

#include <algorithm>

namespace atum::serve {

uint32_t
AdmissionController::TenantLoad(const std::string& tenant) const
{
    uint32_t load = 0;
    if (auto it = running_per_tenant_.find(tenant);
        it != running_per_tenant_.end())
        load += it->second;
    if (auto it = pending_per_tenant_.find(tenant);
        it != pending_per_tenant_.end())
        load += it->second;
    return load;
}

util::Status
AdmissionController::Admit(uint64_t id, const std::string& tenant)
{
    if (pending_.size() >= config_.max_queue_depth) {
        return util::ResourceExhausted(
            "queue full: ", pending_.size(), " jobs pending (bound ",
            config_.max_queue_depth, "); resubmit after the backlog drains");
    }
    if (TenantLoad(tenant) >= config_.max_per_tenant) {
        return util::ResourceExhausted(
            "tenant '", tenant, "' holds ", TenantLoad(tenant),
            " jobs, its fair share (bound ", config_.max_per_tenant, ")");
    }
    pending_.emplace_back(id, tenant);
    ++pending_per_tenant_[tenant];
    return util::OkStatus();
}

bool
AdmissionController::PickNext(uint64_t* id)
{
    if (pending_.empty())
        return false;
    // The fewest-running tenant goes first; the FIFO deque breaks ties
    // within a tenant, the earliest-queued candidate across tenants.
    size_t best = pending_.size();
    uint32_t best_running = UINT32_MAX;
    for (size_t i = 0; i < pending_.size(); ++i) {
        const std::string& tenant = pending_[i].second;
        uint32_t running = 0;
        if (auto it = running_per_tenant_.find(tenant);
            it != running_per_tenant_.end())
            running = it->second;
        if (running < best_running) {
            best_running = running;
            best = i;
        }
    }
    const auto [job_id, tenant] = pending_[best];
    pending_.erase(pending_.begin() + static_cast<long>(best));
    if (--pending_per_tenant_[tenant] == 0)
        pending_per_tenant_.erase(tenant);
    running_[job_id] = tenant;
    ++running_per_tenant_[tenant];
    *id = job_id;
    return true;
}

bool
AdmissionController::RemovePending(uint64_t id)
{
    for (size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].first != id)
            continue;
        const std::string tenant = pending_[i].second;
        pending_.erase(pending_.begin() + static_cast<long>(i));
        if (--pending_per_tenant_[tenant] == 0)
            pending_per_tenant_.erase(tenant);
        return true;
    }
    return false;
}

void
AdmissionController::FinishRunning(uint64_t id)
{
    auto it = running_.find(id);
    if (it == running_.end())
        return;
    if (--running_per_tenant_[it->second] == 0)
        running_per_tenant_.erase(it->second);
    running_.erase(it);
}

JobQuota
AdmissionController::EffectiveQuota(const JobQuota& requested) const
{
    JobQuota q = requested;
    if (q.max_instructions == 0)
        q.max_instructions = config_.default_max_instructions;
    if (config_.max_instructions_cap != 0)
        q.max_instructions =
            std::min(q.max_instructions, config_.max_instructions_cap);
    if (config_.max_trace_bytes_cap != 0) {
        q.max_trace_bytes =
            q.max_trace_bytes == 0
                ? config_.max_trace_bytes_cap
                : std::min(q.max_trace_bytes, config_.max_trace_bytes_cap);
    }
    return q;
}

}  // namespace atum::serve
