#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/checkpoint.h"
#include "core/session.h"
#include "kernel/boot.h"
#include "trace/container.h"
#include "trace/sink.h"
#include "util/json.h"
#include "util/logging.h"
#include "workloads/workloads.h"

namespace atum::serve {

namespace {

constexpr char kJournalName[] = "serve.journal";
constexpr char kStatusName[] = "serve.status.json";
constexpr char kStatusVersion[] = "atum-serve-status-v1";

std::string
JoinPath(const std::string& dir, const std::string& name)
{
    // "." keeps MemVfs paths flat (DirOf("x") == "."), matching the
    // chaos campaign's convention.
    if (dir == "." || dir.empty())
        return name;
    return dir + "/" + name;
}

uint64_t
ElapsedUs(std::chrono::steady_clock::time_point since)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
}

/** Terminal JobState a journaled outcome token folds to. */
JobState
StateForOutcome(const std::string& outcome)
{
    if (outcome == "cancelled")
        return JobState::kCancelled;
    if (outcome == "failed" || outcome == "wedged")
        return JobState::kFailed;
    // "done", "quota-bytes", "deadline", "salvaged": the capture stopped
    // cleanly and its durable trace is the (possibly truncated) product.
    return JobState::kDone;
}

bool
IsKnownWorkload(const std::string& name)
{
    const std::vector<std::string>& names = workloads::AllWorkloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

void
WriteJobJson(util::JsonWriter& w, const JobInfo& info)
{
    w.BeginObject();
    w.KeyValue("id", info.id);
    w.KeyValue("tenant", info.tenant);
    w.KeyValue("workload", info.workload);
    w.KeyValue("scale", info.scale);
    w.KeyValue("state", JobStateName(info.state));
    if (!info.outcome.empty())
        w.KeyValue("outcome", info.outcome);
    if (!info.detail.empty())
        w.KeyValue("detail", info.detail);
    w.KeyValue("max_instructions", info.quota.max_instructions);
    w.KeyValue("max_trace_bytes", info.quota.max_trace_bytes);
    w.KeyValue("deadline_ms", info.quota.deadline_ms);
    w.KeyValue("records", info.records);
    w.KeyValue("trace_bytes", info.trace_bytes);
    w.KeyValue("instructions", info.instructions);
    w.KeyValue("resumed", info.resumed);
    w.EndObject();
}

}  // namespace

const char*
JobStateName(JobState state)
{
    switch (state) {
      case JobState::kQueued:
        return "queued";
      case JobState::kRunning:
        return "running";
      case JobState::kDone:
        return "done";
      case JobState::kFailed:
        return "failed";
      case JobState::kCancelled:
        return "cancelled";
      case JobState::kInterrupted:
        return "interrupted";
    }
    return "?";
}

ServeCore::ServeCore(ServeConfig config, io::Vfs& vfs,
                     obs::Registry* registry)
    : config_(std::move(config)),
      vfs_(vfs),
      registry_(registry != nullptr ? *registry : obs::Registry::Global()),
      admission_(config_.admission)
{
}

ServeCore::~ServeCore()
{
    Shutdown();
}

std::string
ServeCore::TracePath(uint64_t id) const
{
    return JoinPath(config_.dir, "job-" + std::to_string(id) + ".atf2");
}

std::string
ServeCore::CheckpointBase(uint64_t id) const
{
    return JoinPath(config_.dir, "job-" + std::to_string(id) + ".ckpt");
}

util::Status
ServeCore::Start()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (started_)
        return util::FailedPrecondition("ServeCore::Start called twice");

    util::StatusOr<std::unique_ptr<JobJournal>> journal =
        JobJournal::Open(JoinPath(config_.dir, kJournalName), vfs_);
    if (!journal.ok())
        return journal.status();
    journal_ = std::move(*journal);
    if (journal_->tail_dropped()) {
        // J3: the torn tail was never acked, so dropping it is recovery
        // working, not data loss — but it is worth counting.
        registry_.GetCounter("serve.journal.tail_dropped").Add();
    }

    if (util::Status s = RecoverLocked(); !s.ok())
        return s;

    started_ = true;
    slots_free_ = config_.workers;
    if (config_.workers > 0) {
        pool_ = std::make_unique<replay::ThreadPool>(config_.workers);
        ScheduleMoreLocked();
    }
    PublishGaugesLocked();
    WriteStatusFileLocked();
    return util::OkStatus();
}

util::Status
ServeCore::RecoverLocked()
{
    // Pass 1: fold the journal into the job table. Later records win —
    // a kFinished forever outranks the kStarted before it (J2).
    for (const JournalRecord& record : journal_->recovered()) {
        next_id_ = std::max(next_id_, record.id + 1);
        std::unique_ptr<Job>& slot = jobs_[record.id];
        if (slot == nullptr)
            slot = std::make_unique<Job>();
        Job& job = *slot;
        switch (record.kind) {
          case JournalKind::kSubmitted:
            job.info.id = record.id;
            job.info.tenant = record.tenant;
            job.info.workload = record.workload;
            job.info.scale = record.scale;
            job.info.quota = record.quota;
            job.info.state = JobState::kQueued;
            break;
          case JournalKind::kStarted:
            job.info.state = JobState::kRunning;
            break;
          case JournalKind::kFinished:
            job.info.state = StateForOutcome(record.outcome);
            job.info.outcome = record.outcome;
            job.info.detail = record.detail;
            break;
          case JournalKind::kCancelled:
            job.info.state = JobState::kCancelled;
            job.info.outcome = "cancelled";
            break;
        }
    }

    // A submitted record may have been lost with the torn tail while its
    // later records survived — impossible by construction (appends are
    // ordered), so a job without a workload means a corrupt mid-file
    // record slipped past the CRC. Treat it as noise, not a job.
    for (auto it = jobs_.begin(); it != jobs_.end();) {
        if (it->second->info.workload.empty())
            it = jobs_.erase(it);
        else
            ++it;
    }

    // Pass 2: re-dispatch everything non-terminal.
    for (auto& [id, slot] : jobs_) {
        Job& job = *slot;
        switch (job.info.state) {
          case JobState::kQueued:
            ReadmitRecoveredLocked(id, job);
            break;
          case JobState::kRunning:
            ResolveInterruptedLocked(id, job);
            break;
          default:
            break;  // terminal: history, never re-run (J2)
        }
    }
    return util::OkStatus();
}

void
ServeCore::ReadmitRecoveredLocked(uint64_t id, Job& job)
{
    util::Status admitted = admission_.Admit(id, job.info.tenant);
    if (admitted.ok()) {
        job.info.state = JobState::kQueued;
        return;
    }
    // A tighter restart config can make the recovered backlog overflow
    // its own bounds; shedding stays the answer, and the shed must be
    // journaled so the next restart does not resurrect the job.
    JournalRecord record;
    record.kind = JournalKind::kFinished;
    record.id = id;
    record.outcome = "failed";
    record.detail = "shed on restart: " + std::string(admitted.message());
    AppendJournalLocked(record);
    job.info.state = JobState::kFailed;
    job.info.outcome = record.outcome;
    job.info.detail = record.detail;
    registry_.GetCounter("serve.jobs.shed").Add();
}

void
ServeCore::ResolveInterruptedLocked(uint64_t id, Job& job)
{
    // The daemon died (or was killed) while this job ran. Three ways
    // forward, in order of how much of the work they preserve:
    //  1. a loadable checkpoint -> re-queue; the run resumes from it
    //     byte-identically (RunJob discovers it again);
    //  2. no checkpoint but a recognizable durable trace -> salvage the
    //     intact prefix and finish the job as "salvaged";
    //  3. nothing durable -> re-queue for a fresh run (nothing was
    //     promised, nothing is lost).
    uint64_t seq = 0;
    if (LoadNewestCheckpoint(id, &seq) != nullptr) {
        ReadmitRecoveredLocked(id, job);
        return;
    }

    util::StatusOr<std::unique_ptr<trace::FileByteSource>> in =
        trace::FileByteSource::Open(TracePath(id), vfs_);
    if (in.ok()) {
        std::vector<trace::Record> records;
        const trace::ScanReport report = trace::ScanTrace(**in, &records);
        if (report.recognized) {
            JournalRecord record;
            record.kind = JournalKind::kFinished;
            record.id = id;
            record.outcome = "salvaged";
            record.detail = report.ToString();
            AppendJournalLocked(record);
            job.info.state = JobState::kDone;
            job.info.outcome = record.outcome;
            job.info.detail = record.detail;
            job.info.records = report.records_salvaged;
            registry_.GetCounter("serve.jobs.salvaged").Add();
            return;
        }
    }
    ReadmitRecoveredLocked(id, job);
}

std::unique_ptr<core::Checkpoint>
ServeCore::LoadNewestCheckpoint(uint64_t id, uint64_t* seq) const
{
    *seq = 0;
    util::StatusOr<std::vector<std::string>> names =
        vfs_.ListDir(config_.dir);
    if (!names.ok())
        return nullptr;

    // job-<id>.ckpt.NNNNNN.atck, newest sequence first.
    const std::string prefix = "job-" + std::to_string(id) + ".ckpt.";
    const std::string suffix = ".atck";
    std::vector<uint64_t> seqs;
    for (const std::string& name : *names) {
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        const std::string digits = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        seqs.push_back(std::strtoull(digits.c_str(), nullptr, 10));
    }
    std::sort(seqs.rbegin(), seqs.rend());

    const core::CheckpointRotator paths(CheckpointBase(id),
                                        config_.keep_checkpoints, 1, vfs_);
    for (uint64_t s : seqs) {
        util::StatusOr<core::Checkpoint> ckpt =
            core::Checkpoint::Load(paths.PathFor(s), vfs_);
        if (ckpt.ok() && ckpt->meta().has_sink_state) {
            *seq = s;
            return std::make_unique<core::Checkpoint>(std::move(*ckpt));
        }
        // A damaged newest checkpoint is expected after a crash; the one
        // before it is the durable truth.
    }
    return nullptr;
}

std::string
ServeCore::HandleRequest(const std::string& payload)
{
    util::StatusOr<Request> request = ParseRequest(payload);
    if (!request.ok()) {
        registry_.GetCounter("serve.requests.bad").Add();
        return ErrorResponse(request.status());
    }

    switch (request->op) {
      case RequestOp::kPing: {
        util::JsonWriter w;
        w.BeginObject();
        w.KeyValue("ok", true);
        w.KeyValue("v", kProtocolVersion);
        w.KeyValue("draining", draining());
        w.EndObject();
        return w.TakeStr();
      }
      case RequestOp::kSubmit: {
        const auto t0 = std::chrono::steady_clock::now();
        std::string response = HandleSubmit(*request);
        registry_.GetHistogram("serve.admit.us").Add(ElapsedUs(t0));
        return response;
      }
      case RequestOp::kStatus:
        return HandleStatus(*request);
      case RequestOp::kCancel:
        return HandleCancel(*request);
      case RequestOp::kMetrics: {
        util::JsonWriter w;
        w.BeginObject();
        w.KeyValue("ok", true);
        w.KeyValue("text", registry_.Snapshot().ToPrometheusText());
        w.EndObject();
        return w.TakeStr();
      }
      case RequestOp::kDrain: {
        RequestDrain();
        util::JsonWriter w;
        w.BeginObject();
        w.KeyValue("ok", true);
        w.KeyValue("draining", true);
        w.EndObject();
        return w.TakeStr();
      }
    }
    return ErrorResponse(util::InternalError("unhandled request op"));
}

std::string
ServeCore::HandleSubmit(const Request& request)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_)
        return ErrorResponse(
            util::FailedPrecondition("daemon is not started"));
    if (draining_.load(std::memory_order_relaxed))
        return ErrorResponse(util::Unavailable(
            "daemon is draining; retry against the next instance"));
    if (!IsKnownWorkload(request.workload))
        return ErrorResponse(util::InvalidArgument(
            "unknown workload '", request.workload, "'"));

    const uint64_t id = next_id_;
    if (util::Status admitted = admission_.Admit(id, request.tenant);
        !admitted.ok()) {
        registry_.GetCounter("serve.jobs.shed").Add();
        return ErrorResponse(admitted);
    }
    const JobQuota quota = admission_.EffectiveQuota(request.quota);

    // J1: the submission is durable before the client hears "accepted".
    JournalRecord record;
    record.kind = JournalKind::kSubmitted;
    record.id = id;
    record.tenant = request.tenant;
    record.workload = request.workload;
    record.scale = request.scale;
    record.quota = quota;
    if (util::Status logged = journal_->Append(record); !logged.ok()) {
        admission_.RemovePending(id);
        registry_.GetCounter("serve.journal.append_errors").Add();
        return ErrorResponse(util::Unavailable(
            "cannot journal the submission: ", logged.message()));
    }
    next_id_ = id + 1;

    auto job = std::make_unique<Job>();
    job->info.id = id;
    job->info.tenant = request.tenant;
    job->info.workload = request.workload;
    job->info.scale = request.scale;
    job->info.quota = quota;
    job->info.state = JobState::kQueued;
    jobs_[id] = std::move(job);

    registry_.GetCounter("serve.jobs.submitted").Add();
    ScheduleMoreLocked();
    PublishGaugesLocked();
    WriteStatusFileLocked();

    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("ok", true);
    w.KeyValue("id", id);
    w.KeyValue("state", "queued");
    w.EndObject();
    return w.TakeStr();
}

std::string
ServeCore::HandleStatus(const Request& request)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (request.has_id && jobs_.find(request.id) == jobs_.end())
        return ErrorResponse(util::NotFound("no job ", request.id));

    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("ok", true);
    w.KeyValue("draining", draining_.load(std::memory_order_relaxed));
    w.KeyValue("queue_depth", admission_.pending_count());
    w.KeyValue("running", admission_.running_count());
    w.Key("jobs");
    w.BeginArray();
    for (const auto& [id, job] : jobs_) {
        if (request.has_id && id != request.id)
            continue;
        WriteJobJson(w, job->info);
    }
    w.EndArray();
    w.EndObject();
    return w.TakeStr();
}

std::string
ServeCore::HandleCancel(const Request& request)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(request.id);
    if (it == jobs_.end())
        return ErrorResponse(util::NotFound("no job ", request.id));
    Job& job = *it->second;

    const char* state = nullptr;
    switch (job.info.state) {
      case JobState::kQueued:
      case JobState::kInterrupted: {
        admission_.RemovePending(request.id);
        JournalRecord record;
        record.kind = JournalKind::kCancelled;
        record.id = request.id;
        AppendJournalLocked(record);
        job.info.state = JobState::kCancelled;
        job.info.outcome = "cancelled";
        registry_.GetCounter("serve.jobs.cancelled").Add();
        PublishGaugesLocked();
        WriteStatusFileLocked();
        state = "cancelled";
        break;
      }
      case JobState::kRunning:
        // Asynchronous: the job stops at its next slice boundary and the
        // worker journals the terminal record (J1 holds — "cancelled" is
        // only durable once it actually stopped).
        job.cancel_requested.store(true, std::memory_order_relaxed);
        job.stop_flag = 1;
        state = "cancelling";
        break;
      default:
        state = JobStateName(job.info.state);  // idempotent on terminal
        break;
    }

    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("ok", true);
    w.KeyValue("id", request.id);
    w.KeyValue("state", state);
    w.EndObject();
    return w.TakeStr();
}

void
ServeCore::ScheduleMoreLocked()
{
    if (pool_ == nullptr || draining_.load(std::memory_order_relaxed))
        return;
    uint64_t id = 0;
    while (slots_free_ > 0 && admission_.PickNext(&id)) {
        --slots_free_;
        pool_->Submit([this, id] { RunJob(id); }, &drain_token_);
    }
}

bool
ServeCore::RunNextQueuedJob()
{
    uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (pool_ != nullptr || !started_)
            return false;
        if (!admission_.PickNext(&id))
            return false;
    }
    RunJob(id);
    return true;
}

void
ServeCore::RunJob(uint64_t id)
{
    const auto t0 = std::chrono::steady_clock::now();
    Job* job = nullptr;
    JobInfo spec;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return;
        job = it->second.get();
        job->info.state = JobState::kRunning;
        spec = job->info;
        JournalRecord record;
        record.kind = JournalKind::kStarted;
        record.id = id;
        AppendJournalLocked(record);
        PublishGaugesLocked();
        WriteStatusFileLocked();
    }

    // Seals the job: journals the terminal record (unless the stop was an
    // interruption — drain/power — which must stay resumable), updates
    // the table, frees the slot, schedules the next job.
    const auto finish = [&](const std::string& outcome,
                            const std::string& detail, bool interrupted,
                            const core::SessionResult* result,
                            uint64_t trace_bytes, bool resumed) {
        std::lock_guard<std::mutex> lock(mu_);
        if (result != nullptr) {
            job->info.records = result->records;
            job->info.instructions += result->instructions;
        }
        job->info.trace_bytes = trace_bytes;
        job->info.resumed = resumed;
        if (resumed)
            registry_.GetCounter("serve.jobs.resumed").Add();
        if (interrupted) {
            // No journal record: the dangling kStarted is exactly what
            // recovery looks for, and the sealed checkpoint/trace are
            // what it resumes from.
            job->info.state = JobState::kInterrupted;
        } else {
            JournalRecord record;
            record.kind = JournalKind::kFinished;
            record.id = id;
            record.outcome = outcome;
            record.detail = detail;
            AppendJournalLocked(record);
            job->info.state = StateForOutcome(outcome);
            job->info.outcome = outcome;
            job->info.detail = detail;
            switch (job->info.state) {
              case JobState::kDone:
                registry_.GetCounter("serve.jobs.completed").Add();
                break;
              case JobState::kFailed:
                registry_.GetCounter("serve.jobs.failed").Add();
                break;
              default:
                registry_.GetCounter("serve.jobs.cancelled").Add();
                break;
            }
        }
        admission_.FinishRunning(id);
        if (pool_ != nullptr)
            ++slots_free_;
        registry_.GetHistogram("serve.job.us").Add(ElapsedUs(t0));
        ScheduleMoreLocked();
        PublishGaugesLocked();
        WriteStatusFileLocked();
    };

    // -- build the capture stack, resuming from a checkpoint if one
    //    survived a previous life of this daemon -------------------------
    cpu::Machine::Config mconfig;
    mconfig.mem_bytes = config_.mem_bytes;
    mconfig.timer_reload = 2000;
    core::AtumConfig tconfig;
    tconfig.buffer_bytes = config_.buffer_bytes;

    const std::string trace_path = TracePath(id);
    std::unique_ptr<trace::FileSink> sink;
    std::unique_ptr<cpu::Machine> machine;
    std::unique_ptr<core::AtumTracer> tracer;
    uint64_t remaining = spec.quota.max_instructions;
    uint64_t next_seq = 1;
    bool resumed = false;

    uint64_t found_seq = 0;
    if (std::unique_ptr<core::Checkpoint> found =
            LoadNewestCheckpoint(id, &found_seq)) {
        util::StatusOr<std::unique_ptr<trace::FileSink>> rsink =
            trace::FileSink::OpenResumed(trace_path, found->sink_state(),
                                         vfs_);
        if (rsink.ok()) {
            mconfig = found->meta().machine_config;
            tconfig = found->meta().tracer_config;
            machine = std::make_unique<cpu::Machine>(mconfig);
            tracer = std::make_unique<core::AtumTracer>(*machine, **rsink,
                                                        tconfig);
            if (found->RestoreMachine(*machine).ok() &&
                found->RestoreTracer(*tracer).ok()) {
                sink = std::move(*rsink);
                resumed = true;
                remaining = found->meta().instructions_remaining;
                if (remaining == 0 || remaining == UINT64_MAX)
                    remaining = spec.quota.max_instructions;
                next_seq = found->meta().sequence + 1;
            } else {
                machine.reset();
                tracer.reset();
            }
        }
    }

    if (!resumed) {
        util::StatusOr<std::unique_ptr<trace::FileSink>> fresh =
            trace::FileSink::Open(trace_path,
                                  trace::Atf2WriterOptions{
                                      config_.chunk_records},
                                  vfs_);
        if (!fresh.ok()) {
            // A dead filesystem (power cut mid-drill, disk gone) is an
            // interruption, not a job failure: the restart retries it.
            const bool interrupted =
                fresh.status().code() == util::StatusCode::kUnavailable;
            finish("failed", fresh.status().ToString(), interrupted,
                   nullptr, 0, false);
            return;
        }
        sink = std::move(*fresh);
        machine = std::make_unique<cpu::Machine>(mconfig);
        tracer =
            std::make_unique<core::AtumTracer>(*machine, *sink, tconfig);
        kernel::BootSystem(
            *machine, {workloads::MakeWorkload(spec.workload, spec.scale)});
    }

    core::CheckpointRotator rotator(CheckpointBase(id),
                                    config_.keep_checkpoints, next_seq,
                                    vfs_);
    obs::Registry job_registry;  // Set() publishing must not cross jobs
    trace::FileSink* sink_ptr = sink.get();
    const uint64_t byte_quota = spec.quota.max_trace_bytes;

    core::SupervisorOptions sup;
    sup.max_instructions = remaining;
    sup.watchdog_ucycles = config_.watchdog_ucycles;
    sup.deadline_ms = spec.quota.deadline_ms;
    sup.stop_flag = &job->stop_flag;
    sup.checkpoints = &rotator;
    sup.checkpoint_every_fills = config_.checkpoint_every_fills;
    sup.file_sink = sink_ptr;
    sup.meta.machine_config = mconfig;
    sup.meta.tracer_config = tconfig;
    sup.meta.trace_path = trace_path;
    sup.registry = &job_registry;
    sup.on_slice = [this, job, sink_ptr, byte_quota] {
        if (config_.external_stop != nullptr && *config_.external_stop != 0)
            job->stop_flag = 1;
        if (draining_.load(std::memory_order_relaxed))
            job->stop_flag = 1;
        if (job->cancel_requested.load(std::memory_order_relaxed))
            job->stop_flag = 1;
        if (byte_quota != 0 && sink_ptr->bytes_written() >= byte_quota) {
            job->quota_stopped.store(true, std::memory_order_relaxed);
            job->stop_flag = 1;
        }
    };

    const core::SessionResult result =
        core::RunSupervised(*machine, *tracer, sup);
    const util::Status close_status = sink->Close();

    std::string outcome;
    std::string detail;
    bool interrupted = false;
    switch (result.stop_cause) {
      case core::StopCause::kHalted:
      case core::StopCause::kInstrLimit:
        outcome = "done";
        break;
      case core::StopCause::kDeadline:
        outcome = "deadline";
        break;
      case core::StopCause::kWatchdog:
        outcome = "wedged";
        detail = "no clean retirement within the watchdog budget";
        break;
      case core::StopCause::kSignal:
        if (job->cancel_requested.load(std::memory_order_relaxed)) {
            outcome = "cancelled";
        } else if (job->quota_stopped.load(std::memory_order_relaxed)) {
            outcome = "quota-bytes";
            detail = std::to_string(sink_ptr->bytes_written()) +
                     " durable trace bytes against a quota of " +
                     std::to_string(byte_quota);
        } else {
            interrupted = true;  // drain or external cut: resumable
        }
        break;
    }
    if (!close_status.ok() && detail.empty())
        detail = "close: " + close_status.ToString();

    finish(outcome, detail, interrupted, &result,
           sink_ptr->bytes_written(), resumed);
}

void
ServeCore::RequestDrain()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_.exchange(true, std::memory_order_relaxed))
        return;
    drain_token_.Cancel();
    if (pool_ != nullptr)
        pool_->AbandonPending();
    for (auto& [id, job] : jobs_) {
        if (job->info.state == JobState::kRunning)
            job->stop_flag = 1;
    }
    registry_.GetGauge("serve.draining").Set(1);
    WriteStatusFileLocked();
}

void
ServeCore::Shutdown()
{
    if (!started_)
        return;
    RequestDrain();
    std::unique_ptr<replay::ThreadPool> pool;
    {
        std::lock_guard<std::mutex> lock(mu_);
        pool = std::move(pool_);
    }
    if (pool != nullptr)
        pool->Wait();
    std::lock_guard<std::mutex> lock(mu_);
    WriteStatusFileLocked();
}

std::vector<JobInfo>
ServeCore::Jobs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<JobInfo> jobs;
    jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_)
        jobs.push_back(job->info);
    return jobs;
}

std::string
ServeCore::StatusJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return StatusJsonLocked();
}

std::string
ServeCore::StatusJsonLocked() const
{
    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("v", kStatusVersion);
    w.KeyValue("draining", draining_.load(std::memory_order_relaxed));
    w.KeyValue("workers", config_.workers);
    w.KeyValue("queue_depth", admission_.pending_count());
    w.KeyValue("running", admission_.running_count());
    w.Key("jobs");
    w.BeginArray();
    for (const auto& [id, job] : jobs_)
        WriteJobJson(w, job->info);
    w.EndArray();
    w.EndObject();
    return w.TakeStr();
}

void
ServeCore::WriteStatusFileLocked()
{
    if (!started_)
        return;
    // Advisory (atum-top reads it); written on every state transition via
    // the ATCK tmp+rename pattern so a reader never sees a torn document.
    // Deliberately not fsynced — its truth is reconstructible from the
    // journal, and transition-driven writes keep chaos drills
    // deterministic (no timer-gated I/O).
    const std::string path = JoinPath(config_.dir, kStatusName);
    const std::string tmp = path + ".tmp";
    const std::string body = StatusJsonLocked();
    const auto fail = [&] {
        registry_.GetCounter("serve.status.write_errors").Add();
    };
    util::StatusOr<std::unique_ptr<io::WritableFile>> out =
        vfs_.Create(tmp);
    if (!out.ok())
        return fail();
    if (!(*out)->Write(body.data(), body.size()).ok())
        return fail();
    if (!(*out)->Close().ok())
        return fail();
    if (!vfs_.Rename(tmp, path).ok())
        return fail();
}

void
ServeCore::PublishGaugesLocked()
{
    registry_.GetGauge("serve.queue.depth").Set(admission_.pending_count());
    registry_.GetGauge("serve.jobs.running").Set(admission_.running_count());
}

void
ServeCore::AppendJournalLocked(const JournalRecord& record)
{
    if (util::Status s = journal_->Append(record); !s.ok()) {
        // The capture (and its checkpoints) are the valuable artifact;
        // a journal write lost to an injected fault costs at worst a
        // re-run after restart, never a silent loss, so the daemon keeps
        // going. Submissions are the exception: their append is checked
        // at the call site, before the ack (J1).
        Warn("serve: journal append failed (", JournalKindName(record.kind),
             " job ", record.id, "): ", s.ToString());
        registry_.GetCounter("serve.journal.append_errors").Add();
    }
}

}  // namespace atum::serve
