#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/checkpoint.h"
#include "core/session.h"
#include "kernel/boot.h"
#include "obs/flight.h"
#include "obs/spans.h"
#include "trace/container.h"
#include "trace/sink.h"
#include "util/json.h"
#include "util/logging.h"
#include "workloads/workloads.h"

namespace atum::serve {

namespace {

/** Off only in the teeth test, which proves the net chaos campaign
 *  catches the double-run N1 violation dedup exists to prevent. */
std::atomic<bool> g_token_dedup{true};

constexpr char kJournalName[] = "serve.journal";
constexpr char kStatusName[] = "serve.status.json";
constexpr char kStatusVersion[] = "atum-serve-status-v1";

std::string
JoinPath(const std::string& dir, const std::string& name)
{
    // "." keeps MemVfs paths flat (DirOf("x") == "."), matching the
    // chaos campaign's convention.
    if (dir == "." || dir.empty())
        return name;
    return dir + "/" + name;
}

uint64_t
ElapsedUs(std::chrono::steady_clock::time_point since)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
}

/** Terminal JobState a journaled outcome token folds to. */
JobState
StateForOutcome(const std::string& outcome)
{
    if (outcome == "cancelled")
        return JobState::kCancelled;
    if (outcome == "failed" || outcome == "wedged")
        return JobState::kFailed;
    // "done", "quota-bytes", "deadline", "salvaged": the capture stopped
    // cleanly and its durable trace is the (possibly truncated) product.
    return JobState::kDone;
}

bool
IsKnownWorkload(const std::string& name)
{
    const std::vector<std::string>& names = workloads::AllWorkloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

void
WriteJobJson(util::JsonWriter& w, const JobInfo& info)
{
    w.BeginObject();
    w.KeyValue("id", info.id);
    w.KeyValue("kind", info.kind);
    w.KeyValue("tenant", info.tenant);
    w.KeyValue("workload", info.workload);
    w.KeyValue("scale", info.scale);
    w.KeyValue("state", JobStateName(info.state));
    if (!info.outcome.empty())
        w.KeyValue("outcome", info.outcome);
    if (!info.detail.empty())
        w.KeyValue("detail", info.detail);
    w.KeyValue("max_instructions", info.quota.max_instructions);
    w.KeyValue("max_trace_bytes", info.quota.max_trace_bytes);
    w.KeyValue("deadline_ms", info.quota.deadline_ms);
    w.KeyValue("records", info.records);
    w.KeyValue("trace_bytes", info.trace_bytes);
    w.KeyValue("instructions", info.instructions);
    w.KeyValue("resumed", info.resumed);
    if (info.kind == "sweep") {
        w.KeyValue("of", info.sweep_of);
        w.KeyValue("configs_total",
                   static_cast<uint64_t>(info.configs.size()));
        w.KeyValue("configs_done", info.configs_done);
        w.KeyValue("configs_failed", info.configs_failed);
        // The mergeable partial result: every finished row, streamed as
        // it completed. Spliced verbatim — these are the canonical bytes
        // the journal holds, and re-encoding would break the S4/S5
        // byte-identity the drills enforce.
        w.Key("rows");
        w.BeginArray();
        for (const std::string& row : info.sweep_rows) {
            if (!row.empty())
                w.RawValue(row);
        }
        w.EndArray();
    }
    w.EndObject();
}

}  // namespace

void
SetTokenDedupForTest(bool enabled)
{
    g_token_dedup.store(enabled, std::memory_order_relaxed);
}

const char*
JobStateName(JobState state)
{
    switch (state) {
      case JobState::kQueued:
        return "queued";
      case JobState::kRunning:
        return "running";
      case JobState::kDone:
        return "done";
      case JobState::kFailed:
        return "failed";
      case JobState::kCancelled:
        return "cancelled";
      case JobState::kInterrupted:
        return "interrupted";
    }
    return "?";
}

ServeCore::ServeCore(ServeConfig config, io::Vfs& vfs,
                     obs::Registry* registry)
    : config_(std::move(config)),
      vfs_(vfs),
      registry_(registry != nullptr ? *registry : obs::Registry::Global()),
      admission_(config_.admission)
{
}

ServeCore::~ServeCore()
{
    Shutdown();
}

std::string
ServeCore::TracePath(uint64_t id) const
{
    return JoinPath(config_.dir, "job-" + std::to_string(id) + ".atf2");
}

std::string
ServeCore::CheckpointBase(uint64_t id) const
{
    return JoinPath(config_.dir, "job-" + std::to_string(id) + ".ckpt");
}

util::Status
ServeCore::Start()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (started_)
        return util::FailedPrecondition("ServeCore::Start called twice");

    util::StatusOr<std::unique_ptr<JobJournal>> journal =
        JobJournal::Open(JoinPath(config_.dir, kJournalName), vfs_);
    if (!journal.ok())
        return journal.status();
    journal_ = std::move(*journal);
    if (journal_->tail_dropped()) {
        // J3: the torn tail was never acked, so dropping it is recovery
        // working, not data loss — but it is worth counting.
        registry_.GetCounter("serve.journal.tail_dropped").Add();
    }

    if (util::Status s = RecoverLocked(); !s.ok())
        return s;

    started_ = true;
    slots_free_ = config_.workers;
    if (config_.workers > 0) {
        pool_ = std::make_unique<replay::ThreadPool>(config_.workers);
        ScheduleMoreLocked();
    }
    PublishGaugesLocked();
    WriteStatusFileLocked();
    return util::OkStatus();
}

util::Status
ServeCore::RecoverLocked()
{
    // Pass 1: fold the journal into the job table. Later records win —
    // a kFinished forever outranks the kStarted before it (J2).
    for (const JournalRecord& record : journal_->recovered()) {
        next_id_ = std::max(next_id_, record.id + 1);
        std::unique_ptr<Job>& slot = jobs_[record.id];
        if (slot == nullptr)
            slot = std::make_unique<Job>();
        Job& job = *slot;
        switch (record.kind) {
          case JournalKind::kSubmitted:
            job.info.id = record.id;
            job.client_token = record.client_token;
            job.info.kind = record.job;
            job.info.tenant = record.tenant;
            job.info.workload = record.workload;
            job.info.scale = record.scale;
            job.info.quota = record.quota;
            job.info.state = JobState::kQueued;
            if (record.job == "sweep") {
                job.info.sweep_of = record.sweep_of;
                job.info.sweep_timeout_ms = record.sweep_timeout_ms;
                job.info.sweep_retries = record.sweep_retries;
                job.info.configs = record.configs;
                job.info.sweep_rows.assign(record.configs.size(), "");
            }
            break;
          case JournalKind::kStarted:
            job.info.state = JobState::kRunning;
            break;
          case JournalKind::kSweepConfig:
            // The resume high-water mark: this config is complete and
            // its row is final. RunSweepJob will skip it (S5: union of
            // journaled prefix and re-run remainder).
            if (record.config_index < job.info.sweep_rows.size() &&
                job.info.sweep_rows[record.config_index].empty()) {
                job.info.sweep_rows[record.config_index] = record.row;
                if (record.row.find("\"status\":\"ok\"") !=
                    std::string::npos)
                    ++job.info.configs_done;
                else
                    ++job.info.configs_failed;
            }
            break;
          case JournalKind::kFinished:
            job.info.state = StateForOutcome(record.outcome);
            job.info.outcome = record.outcome;
            job.info.detail = record.detail;
            break;
          case JournalKind::kCancelled:
            job.info.state = JobState::kCancelled;
            job.info.outcome = "cancelled";
            break;
        }
    }

    // A submitted record may have been lost with the torn tail while its
    // later records survived — impossible by construction (appends are
    // ordered), so a job without a workload means a corrupt mid-file
    // record slipped past the CRC. Treat it as noise, not a job.
    for (auto it = jobs_.begin(); it != jobs_.end();) {
        const JobInfo& info = it->second->info;
        const bool noise = info.kind == "sweep"
                               ? info.configs.empty()
                               : info.workload.empty();
        if (noise)
            it = jobs_.erase(it);
        else
            ++it;
    }

    // Rebuild the N1 dedup map: every journaled token still maps to its
    // original id, so a retry that straddles a kill-restart is answered
    // identically to one that never saw the daemon die (the first
    // submission wins when corruption ever yields a token twice).
    for (const auto& [id, slot] : jobs_) {
        if (!slot->client_token.empty())
            token_to_id_.emplace(slot->client_token, id);
    }

    // Pass 2: re-dispatch everything non-terminal.
    for (auto& [id, slot] : jobs_) {
        Job& job = *slot;
        switch (job.info.state) {
          case JobState::kQueued:
            ReadmitRecoveredLocked(id, job);
            break;
          case JobState::kRunning:
            ResolveInterruptedLocked(id, job);
            break;
          default:
            break;  // terminal: history, never re-run (J2)
        }
    }
    return util::OkStatus();
}

void
ServeCore::ReadmitRecoveredLocked(uint64_t id, Job& job)
{
    util::Status admitted = admission_.Admit(id, job.info.tenant);
    if (admitted.ok()) {
        job.info.state = JobState::kQueued;
        return;
    }
    // A tighter restart config can make the recovered backlog overflow
    // its own bounds; shedding stays the answer, and the shed must be
    // journaled so the next restart does not resurrect the job.
    JournalRecord record;
    record.kind = JournalKind::kFinished;
    record.id = id;
    record.outcome = "failed";
    record.detail = "shed on restart: " + std::string(admitted.message());
    AppendJournalLocked(record);
    job.info.state = JobState::kFailed;
    job.info.outcome = record.outcome;
    job.info.detail = record.detail;
    registry_.GetCounter("serve.jobs.shed").Add();
}

void
ServeCore::ResolveInterruptedLocked(uint64_t id, Job& job)
{
    // Sweeps carry their own resume state in the journal: the folded
    // kSweepConfig rows ARE the high-water mark, so there is no
    // checkpoint to find and no trace to salvage — re-queue and let
    // RunSweepJob skip every journaled row (S5: union of the journaled
    // prefix and the re-run remainder).
    if (job.info.kind == "sweep") {
        ReadmitRecoveredLocked(id, job);
        return;
    }

    // The daemon died (or was killed) while this job ran. Three ways
    // forward, in order of how much of the work they preserve:
    //  1. a loadable checkpoint -> re-queue; the run resumes from it
    //     byte-identically (RunJob discovers it again);
    //  2. no checkpoint but a recognizable durable trace -> salvage the
    //     intact prefix and finish the job as "salvaged";
    //  3. nothing durable -> re-queue for a fresh run (nothing was
    //     promised, nothing is lost).
    uint64_t seq = 0;
    if (LoadNewestCheckpoint(id, &seq) != nullptr) {
        ReadmitRecoveredLocked(id, job);
        return;
    }

    util::StatusOr<std::unique_ptr<trace::FileByteSource>> in =
        trace::FileByteSource::Open(TracePath(id), vfs_);
    if (in.ok()) {
        std::vector<trace::Record> records;
        const trace::ScanReport report = trace::ScanTrace(**in, &records);
        if (report.recognized) {
            JournalRecord record;
            record.kind = JournalKind::kFinished;
            record.id = id;
            record.outcome = "salvaged";
            record.detail = report.ToString();
            AppendJournalLocked(record);
            job.info.state = JobState::kDone;
            job.info.outcome = record.outcome;
            job.info.detail = record.detail;
            job.info.records = report.records_salvaged;
            registry_.GetCounter("serve.jobs.salvaged").Add();
            return;
        }
    }
    ReadmitRecoveredLocked(id, job);
}

std::unique_ptr<core::Checkpoint>
ServeCore::LoadNewestCheckpoint(uint64_t id, uint64_t* seq) const
{
    *seq = 0;
    util::StatusOr<std::vector<std::string>> names =
        vfs_.ListDir(config_.dir);
    if (!names.ok())
        return nullptr;

    // job-<id>.ckpt.NNNNNN.atck, newest sequence first.
    const std::string prefix = "job-" + std::to_string(id) + ".ckpt.";
    const std::string suffix = ".atck";
    std::vector<uint64_t> seqs;
    for (const std::string& name : *names) {
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        const std::string digits = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        seqs.push_back(std::strtoull(digits.c_str(), nullptr, 10));
    }
    std::sort(seqs.rbegin(), seqs.rend());

    const core::CheckpointRotator paths(CheckpointBase(id),
                                        config_.keep_checkpoints, 1, vfs_);
    for (uint64_t s : seqs) {
        util::StatusOr<core::Checkpoint> ckpt =
            core::Checkpoint::Load(paths.PathFor(s), vfs_);
        if (ckpt.ok() && ckpt->meta().has_sink_state) {
            *seq = s;
            return std::make_unique<core::Checkpoint>(std::move(*ckpt));
        }
        // A damaged newest checkpoint is expected after a crash; the one
        // before it is the durable truth.
    }
    return nullptr;
}

std::string
ServeCore::HandleRequest(const std::string& payload)
{
    util::StatusOr<Request> request = ParseRequest(payload);
    if (!request.ok()) {
        registry_.GetCounter("serve.requests.bad").Add();
        return ErrorResponse(request.status());
    }

    switch (request->op) {
      case RequestOp::kPing: {
        util::JsonWriter w;
        w.BeginObject();
        w.KeyValue("ok", true);
        w.KeyValue("v", kProtocolVersion);
        w.KeyValue("draining", draining());
        w.EndObject();
        return w.TakeStr();
      }
      case RequestOp::kSubmit: {
        const auto t0 = std::chrono::steady_clock::now();
        std::string response = HandleSubmit(*request);
        registry_.GetHistogram("serve.admit.us").Add(ElapsedUs(t0));
        return response;
      }
      case RequestOp::kSweep: {
        const auto t0 = std::chrono::steady_clock::now();
        std::string response = HandleSweep(*request);
        registry_.GetHistogram("serve.admit.us").Add(ElapsedUs(t0));
        return response;
      }
      case RequestOp::kStatus:
        return HandleStatus(*request);
      case RequestOp::kCancel:
        return HandleCancel(*request);
      case RequestOp::kMetrics: {
        util::JsonWriter w;
        w.BeginObject();
        w.KeyValue("ok", true);
        w.KeyValue("text", registry_.Snapshot().ToPrometheusText());
        w.EndObject();
        return w.TakeStr();
      }
      case RequestOp::kDrain: {
        RequestDrain();
        util::JsonWriter w;
        w.BeginObject();
        w.KeyValue("ok", true);
        w.KeyValue("draining", true);
        w.EndObject();
        return w.TakeStr();
      }
    }
    return ErrorResponse(util::InternalError("unhandled request op"));
}

std::string
ServeCore::HandleSubmit(const Request& request)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_)
        return ErrorResponse(
            util::FailedPrecondition("daemon is not started"));
    if (draining_.load(std::memory_order_relaxed))
        return ErrorResponse(util::Unavailable(
            "daemon is draining; retry against the next instance"));
    if (!IsKnownWorkload(request.workload))
        return ErrorResponse(util::InvalidArgument(
            "unknown workload '", request.workload, "'"));

    // N1 (exactly-once submits): a token seen before — in this life or,
    // via the journal, in any previous one — is a client retrying an
    // ambiguous submit. Answer with the original id; never double-run.
    if (!request.client_token.empty() &&
        g_token_dedup.load(std::memory_order_relaxed)) {
        auto dup = token_to_id_.find(request.client_token);
        if (dup != token_to_id_.end()) {
            registry_.GetCounter("serve.net.dup_token_hits").Add();
            auto it = jobs_.find(dup->second);
            util::JsonWriter w;
            w.BeginObject();
            w.KeyValue("ok", true);
            w.KeyValue("id", dup->second);
            w.KeyValue("state", it != jobs_.end()
                                    ? JobStateName(it->second->info.state)
                                    : "queued");
            w.KeyValue("dup", true);
            w.EndObject();
            return w.TakeStr();
        }
    }

    const uint64_t id = next_id_;
    if (util::Status admitted = admission_.Admit(id, request.tenant);
        !admitted.ok()) {
        registry_.GetCounter("serve.jobs.shed").Add();
        return ErrorResponse(admitted);
    }
    const JobQuota quota = admission_.EffectiveQuota(request.quota);

    // J1: the submission is durable before the client hears "accepted".
    JournalRecord record;
    record.kind = JournalKind::kSubmitted;
    record.id = id;
    record.client_token = request.client_token;
    record.tenant = request.tenant;
    record.workload = request.workload;
    record.scale = request.scale;
    record.quota = quota;
    if (util::Status logged = journal_->Append(record); !logged.ok()) {
        admission_.RemovePending(id);
        registry_.GetCounter("serve.journal.append_errors").Add();
        return ErrorResponse(util::Unavailable(
            "cannot journal the submission: ", logged.message()));
    }
    next_id_ = id + 1;

    auto job = std::make_unique<Job>();
    job->info.id = id;
    job->client_token = request.client_token;
    job->info.tenant = request.tenant;
    job->info.workload = request.workload;
    job->info.scale = request.scale;
    job->info.quota = quota;
    job->info.state = JobState::kQueued;
    jobs_[id] = std::move(job);
    if (!request.client_token.empty())
        token_to_id_.emplace(request.client_token, id);

    registry_.GetCounter("serve.jobs.submitted").Add();
    obs::RecordInstant("serve", "serve.submit", request.workload.c_str(),
                       "id", id);
    ScheduleMoreLocked();
    PublishGaugesLocked();
    WriteStatusFileLocked();

    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("ok", true);
    w.KeyValue("id", id);
    w.KeyValue("state", "queued");
    w.EndObject();
    return w.TakeStr();
}

std::string
ServeCore::HandleSweep(const Request& request)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_)
        return ErrorResponse(
            util::FailedPrecondition("daemon is not started"));
    if (draining_.load(std::memory_order_relaxed))
        return ErrorResponse(util::Unavailable(
            "daemon is draining; retry against the next instance"));

    // The sweep replays a finished capture's durable trace; anything
    // else has no trace worth replaying (or not yet the final one).
    auto target = jobs_.find(request.sweep_of);
    if (target == jobs_.end())
        return ErrorResponse(
            util::NotFound("no job ", request.sweep_of, " to sweep"));
    const JobInfo& of = target->second->info;
    if (of.kind != "capture")
        return ErrorResponse(util::InvalidArgument(
            "job ", request.sweep_of, " is a ", of.kind,
            " job; sweeps replay capture traces"));
    if (of.state != JobState::kDone)
        return ErrorResponse(util::FailedPrecondition(
            "job ", request.sweep_of, " is ", JobStateName(of.state),
            "; only a done capture's trace can be swept"));

    const uint64_t id = next_id_;
    if (util::Status admitted = admission_.Admit(id, request.tenant);
        !admitted.ok()) {
        registry_.GetCounter("serve.jobs.shed").Add();
        return ErrorResponse(admitted);
    }

    // J1: the submission — including the whole config list, so recovery
    // can resume from the journal alone — is durable before the ack.
    JournalRecord record;
    record.kind = JournalKind::kSubmitted;
    record.id = id;
    record.job = "sweep";
    record.tenant = request.tenant;
    record.workload = "sweep";
    record.sweep_of = request.sweep_of;
    record.sweep_timeout_ms = request.sweep_timeout_ms;
    record.sweep_retries = request.sweep_retries;
    record.configs = request.sweep_configs;
    if (util::Status logged = journal_->Append(record); !logged.ok()) {
        admission_.RemovePending(id);
        registry_.GetCounter("serve.journal.append_errors").Add();
        return ErrorResponse(util::Unavailable(
            "cannot journal the sweep submission: ", logged.message()));
    }
    next_id_ = id + 1;

    auto job = std::make_unique<Job>();
    job->info.id = id;
    job->info.kind = "sweep";
    job->info.tenant = request.tenant;
    job->info.workload = "sweep";
    job->info.sweep_of = request.sweep_of;
    job->info.sweep_timeout_ms = request.sweep_timeout_ms;
    job->info.sweep_retries = request.sweep_retries;
    job->info.configs = request.sweep_configs;
    job->info.sweep_rows.assign(request.sweep_configs.size(), "");
    job->info.state = JobState::kQueued;
    jobs_[id] = std::move(job);

    registry_.GetCounter("serve.jobs.submitted").Add();
    registry_.GetCounter("serve.sweep.submitted").Add();
    obs::RecordInstant("serve", "serve.submit", "sweep", "id", id);
    ScheduleMoreLocked();
    PublishGaugesLocked();
    WriteStatusFileLocked();

    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("ok", true);
    w.KeyValue("id", id);
    w.KeyValue("of", request.sweep_of);
    w.KeyValue("configs",
               static_cast<uint64_t>(request.sweep_configs.size()));
    w.KeyValue("state", "queued");
    w.EndObject();
    return w.TakeStr();
}

std::string
ServeCore::HandleStatus(const Request& request)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (request.has_id && jobs_.find(request.id) == jobs_.end())
        return ErrorResponse(util::NotFound("no job ", request.id));

    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("ok", true);
    w.KeyValue("draining", draining_.load(std::memory_order_relaxed));
    w.KeyValue("queue_depth", admission_.pending_count());
    w.KeyValue("running", admission_.running_count());
    w.Key("jobs");
    w.BeginArray();
    for (const auto& [id, job] : jobs_) {
        if (request.has_id && id != request.id)
            continue;
        WriteJobJson(w, job->info);
    }
    w.EndArray();
    w.EndObject();
    return w.TakeStr();
}

std::string
ServeCore::HandleCancel(const Request& request)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(request.id);
    if (it == jobs_.end())
        return ErrorResponse(util::NotFound("no job ", request.id));
    Job& job = *it->second;

    const char* state = nullptr;
    switch (job.info.state) {
      case JobState::kQueued:
      case JobState::kInterrupted: {
        admission_.RemovePending(request.id);
        JournalRecord record;
        record.kind = JournalKind::kCancelled;
        record.id = request.id;
        AppendJournalLocked(record);
        job.info.state = JobState::kCancelled;
        job.info.outcome = "cancelled";
        registry_.GetCounter("serve.jobs.cancelled").Add();
        PublishGaugesLocked();
        WriteStatusFileLocked();
        state = "cancelled";
        break;
      }
      case JobState::kRunning:
        // Asynchronous: the job stops at its next slice boundary and the
        // worker journals the terminal record (J1 holds — "cancelled" is
        // only durable once it actually stopped).
        job.cancel_requested.store(true, std::memory_order_relaxed);
        job.stop_flag = 1;
        state = "cancelling";
        break;
      default:
        state = JobStateName(job.info.state);  // idempotent on terminal
        break;
    }

    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("ok", true);
    w.KeyValue("id", request.id);
    w.KeyValue("state", state);
    w.EndObject();
    return w.TakeStr();
}

void
ServeCore::ScheduleMoreLocked()
{
    if (pool_ == nullptr || draining_.load(std::memory_order_relaxed))
        return;
    uint64_t id = 0;
    while (slots_free_ > 0 && admission_.PickNext(&id)) {
        --slots_free_;
        obs::RecordInstant("serve", "serve.admit", nullptr, "id", id);
        pool_->Submit([this, id] { RunJob(id); }, &drain_token_);
    }
}

bool
ServeCore::RunNextQueuedJob()
{
    uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (pool_ != nullptr || !started_)
            return false;
        if (!admission_.PickNext(&id))
            return false;
    }
    RunJob(id);
    return true;
}

void
ServeCore::FinishJob(uint64_t id, Job* job,
                     std::chrono::steady_clock::time_point t0,
                     const std::string& outcome, const std::string& detail,
                     bool interrupted, uint64_t records,
                     uint64_t instructions, uint64_t trace_bytes,
                     bool resumed)
{
    // Seals the job: journals the terminal record (unless the stop was an
    // interruption — drain/power — which must stay resumable), updates
    // the table, frees the slot, schedules the next job.
    std::lock_guard<std::mutex> lock(mu_);
    job->info.records = records;
    job->info.instructions += instructions;
    job->info.trace_bytes = trace_bytes;
    job->info.resumed = resumed;
    if (resumed)
        registry_.GetCounter("serve.jobs.resumed").Add();
    if (interrupted) {
        // No journal record: the dangling kStarted is exactly what
        // recovery looks for, and the sealed checkpoint/trace (or, for
        // sweeps, the journaled rows) are what it resumes from.
        job->info.state = JobState::kInterrupted;
    } else {
        JournalRecord record;
        record.kind = JournalKind::kFinished;
        record.id = id;
        record.outcome = outcome;
        record.detail = detail;
        AppendJournalLocked(record);
        job->info.state = StateForOutcome(outcome);
        job->info.outcome = outcome;
        job->info.detail = detail;
        switch (job->info.state) {
          case JobState::kDone:
            registry_.GetCounter("serve.jobs.completed").Add();
            break;
          case JobState::kFailed:
            registry_.GetCounter("serve.jobs.failed").Add();
            break;
          default:
            registry_.GetCounter("serve.jobs.cancelled").Add();
            break;
        }
        if (job->info.kind == "sweep") {
            if (outcome == "partial")
                registry_.GetCounter("serve.sweep.partial").Add();
            if (job->info.state == JobState::kDone)
                registry_.GetCounter("serve.sweep.completed").Add();
        }
    }
    admission_.FinishRunning(id);
    if (pool_ != nullptr)
        ++slots_free_;
    registry_.GetHistogram("serve.job.us").Add(ElapsedUs(t0));
    obs::RecordInstant("serve", "serve.finish",
                       interrupted ? "interrupted" : outcome.c_str(), "id",
                       id);
    ScheduleMoreLocked();
    PublishGaugesLocked();
    WriteStatusFileLocked();
}

void
ServeCore::RunJob(uint64_t id)
{
    const auto t0 = std::chrono::steady_clock::now();
    Job* job = nullptr;
    JobInfo spec;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return;
        job = it->second.get();
        job->info.state = JobState::kRunning;
        spec = job->info;
        JournalRecord record;
        record.kind = JournalKind::kStarted;
        record.id = id;
        AppendJournalLocked(record);
        PublishGaugesLocked();
        WriteStatusFileLocked();
    }

    if (spec.kind == "sweep") {
        RunSweepJob(id, job, spec, t0);
        return;
    }

    ATUM_SPAN_NAMED(job_span, "serve", "serve.job");
    job_span.set_detail(spec.workload);
    job_span.set_arg("id", id);

    const auto finish = [&](const std::string& outcome,
                            const std::string& detail, bool interrupted,
                            const core::SessionResult* result,
                            uint64_t trace_bytes, bool resumed) {
        FinishJob(id, job, t0, outcome, detail, interrupted,
                  result != nullptr ? result->records : 0,
                  result != nullptr ? result->instructions : 0, trace_bytes,
                  resumed);
    };

    // -- build the capture stack, resuming from a checkpoint if one
    //    survived a previous life of this daemon -------------------------
    cpu::Machine::Config mconfig;
    mconfig.mem_bytes = config_.mem_bytes;
    mconfig.timer_reload = 2000;
    core::AtumConfig tconfig;
    tconfig.buffer_bytes = config_.buffer_bytes;

    const std::string trace_path = TracePath(id);
    std::unique_ptr<trace::FileSink> sink;
    std::unique_ptr<cpu::Machine> machine;
    std::unique_ptr<core::AtumTracer> tracer;
    uint64_t remaining = spec.quota.max_instructions;
    uint64_t next_seq = 1;
    bool resumed = false;

    uint64_t found_seq = 0;
    if (std::unique_ptr<core::Checkpoint> found =
            LoadNewestCheckpoint(id, &found_seq)) {
        util::StatusOr<std::unique_ptr<trace::FileSink>> rsink =
            trace::FileSink::OpenResumed(trace_path, found->sink_state(),
                                         vfs_);
        if (rsink.ok()) {
            mconfig = found->meta().machine_config;
            tconfig = found->meta().tracer_config;
            machine = std::make_unique<cpu::Machine>(mconfig);
            tracer = std::make_unique<core::AtumTracer>(*machine, **rsink,
                                                        tconfig);
            if (found->RestoreMachine(*machine).ok() &&
                found->RestoreTracer(*tracer).ok()) {
                sink = std::move(*rsink);
                resumed = true;
                remaining = found->meta().instructions_remaining;
                if (remaining == 0 || remaining == UINT64_MAX)
                    remaining = spec.quota.max_instructions;
                next_seq = found->meta().sequence + 1;
            } else {
                machine.reset();
                tracer.reset();
            }
        }
    }

    if (!resumed) {
        util::StatusOr<std::unique_ptr<trace::FileSink>> fresh =
            trace::FileSink::Open(trace_path,
                                  trace::Atf2WriterOptions{
                                      config_.chunk_records},
                                  vfs_);
        if (!fresh.ok()) {
            // A dead filesystem (power cut mid-drill, disk gone) is an
            // interruption, not a job failure: the restart retries it.
            const bool interrupted =
                fresh.status().code() == util::StatusCode::kUnavailable;
            finish("failed", fresh.status().ToString(), interrupted,
                   nullptr, 0, false);
            return;
        }
        sink = std::move(*fresh);
        machine = std::make_unique<cpu::Machine>(mconfig);
        tracer =
            std::make_unique<core::AtumTracer>(*machine, *sink, tconfig);
        kernel::BootSystem(
            *machine, {workloads::MakeWorkload(spec.workload, spec.scale)});
    }

    core::CheckpointRotator rotator(CheckpointBase(id),
                                    config_.keep_checkpoints, next_seq,
                                    vfs_);
    obs::Registry job_registry;  // Set() publishing must not cross jobs
    trace::FileSink* sink_ptr = sink.get();
    const uint64_t byte_quota = spec.quota.max_trace_bytes;

    core::SupervisorOptions sup;
    sup.max_instructions = remaining;
    sup.watchdog_ucycles = config_.watchdog_ucycles;
    sup.deadline_ms = spec.quota.deadline_ms;
    sup.stop_flag = &job->stop_flag;
    sup.checkpoints = &rotator;
    sup.checkpoint_every_fills = config_.checkpoint_every_fills;
    sup.file_sink = sink_ptr;
    sup.meta.machine_config = mconfig;
    sup.meta.tracer_config = tconfig;
    sup.meta.trace_path = trace_path;
    sup.registry = &job_registry;
    sup.on_slice = [this, job, sink_ptr, byte_quota] {
        if (config_.external_stop != nullptr && *config_.external_stop != 0)
            job->stop_flag = 1;
        if (draining_.load(std::memory_order_relaxed))
            job->stop_flag = 1;
        if (job->cancel_requested.load(std::memory_order_relaxed))
            job->stop_flag = 1;
        if (byte_quota != 0 && sink_ptr->bytes_written() >= byte_quota) {
            job->quota_stopped.store(true, std::memory_order_relaxed);
            job->stop_flag = 1;
        }
    };

    const core::SessionResult result =
        core::RunSupervised(*machine, *tracer, sup);
    const util::Status close_status = sink->Close();

    std::string outcome;
    std::string detail;
    bool interrupted = false;
    switch (result.stop_cause) {
      case core::StopCause::kHalted:
      case core::StopCause::kInstrLimit:
        outcome = "done";
        break;
      case core::StopCause::kDeadline:
        outcome = "deadline";
        break;
      case core::StopCause::kWatchdog:
        outcome = "wedged";
        detail = "no clean retirement within the watchdog budget";
        break;
      case core::StopCause::kSignal:
        if (job->cancel_requested.load(std::memory_order_relaxed)) {
            outcome = "cancelled";
        } else if (job->quota_stopped.load(std::memory_order_relaxed)) {
            outcome = "quota-bytes";
            detail = std::to_string(sink_ptr->bytes_written()) +
                     " durable trace bytes against a quota of " +
                     std::to_string(byte_quota);
            // Quota kills are a flight-recorder trigger: the dump's last
            // event names the job the quota stopped (docs/TRACING.md).
            obs::flight::Note("serve.quota-kill", spec.workload.c_str(),
                              sink_ptr->bytes_written(), byte_quota);
            obs::flight::DumpNow("quota-kill");
        } else {
            interrupted = true;  // drain or external cut: resumable
        }
        break;
    }
    if (!close_status.ok() && detail.empty())
        detail = "close: " + close_status.ToString();

    finish(outcome, detail, interrupted, &result,
           sink_ptr->bytes_written(), resumed);
}

void
ServeCore::RunSweepJob(uint64_t id, Job* job, const JobInfo& spec,
                       std::chrono::steady_clock::time_point t0)
{
    // `spec` is the post-recovery snapshot: rows journaled complete in a
    // previous life are already filled in, and this run never recomputes
    // them (S4: a reported row is never lost or changed).
    uint32_t prefilled = 0;
    for (const std::string& row : spec.sweep_rows)
        if (!row.empty())
            ++prefilled;
    const bool resumed = prefilled > 0;
    const uint32_t total = static_cast<uint32_t>(spec.configs.size());

    // Load the target capture's durable trace once, tolerantly: a
    // quota-stopped or salvaged capture's valid prefix is a perfectly
    // sweepable input.
    util::StatusOr<std::unique_ptr<trace::FileByteSource>> in =
        trace::FileByteSource::Open(TracePath(spec.sweep_of), vfs_);
    if (!in.ok()) {
        // A dead filesystem (power cut mid-drill) is an interruption the
        // restart retries; a missing trace is a sweep failure.
        const bool interrupted =
            in.status().code() == util::StatusCode::kUnavailable;
        FinishJob(id, job, t0, "failed",
                  "trace of job " + std::to_string(spec.sweep_of) + ": " +
                      in.status().ToString(),
                  interrupted, 0, 0, 0, resumed);
        return;
    }
    std::vector<trace::Record> records;
    const trace::ScanReport report = trace::ScanTrace(**in, &records);
    if (!report.recognized) {
        FinishJob(id, job, t0, "failed",
                  "trace of job " + std::to_string(spec.sweep_of) +
                      " is not a recognizable capture: " + report.ToString(),
                  false, 0, 0, 0, resumed);
        return;
    }

    uint32_t done = spec.configs_done;
    uint32_t failed = spec.configs_failed;
    bool cancelled = false;
    bool interrupted = false;
    for (uint32_t i = 0; i < total; ++i) {
        if (!spec.sweep_rows[i].empty())
            continue;  // journaled in a previous life: the row is final

        // Between-config stop checks: cancellation seals the sweep as
        // partial work lost, drain/power leaves the dangling kStarted
        // that recovery resumes from.
        if (job->cancel_requested.load(std::memory_order_relaxed)) {
            cancelled = true;
            break;
        }
        if (job->stop_flag != 0 ||
            draining_.load(std::memory_order_relaxed) ||
            (config_.external_stop != nullptr &&
             *config_.external_stop != 0)) {
            interrupted = true;
            break;
        }

        const auto c0 = std::chrono::steady_clock::now();
        replay::ReplayControl control;
        control.stop_flag = &job->stop_flag;
        control.deadline_ms = spec.sweep_timeout_ms;
        const replay::SweepConfig config = spec.configs[i].ToReplayConfig();

        ATUM_SPAN_NAMED(row_span, "serve", "serve.sweep.row");
        row_span.set_detail(config.label);
        row_span.set_arg("index", i);

        // Per-row isolation with bounded retry: a timeout or an internal
        // replay error earns up to `sweep_retries` more attempts; a
        // deterministically bad geometry (kInvalidArgument) fails the row
        // immediately, and a stop latch is never retried against.
        replay::SweepResult result = replay::ReplayOne(records, config,
                                                       control);
        for (uint64_t attempt = 0;
             attempt < spec.sweep_retries && !result.status.ok() &&
             (result.status.code() == util::StatusCode::kUnavailable ||
              result.status.code() == util::StatusCode::kInternal);
             ++attempt) {
            registry_.GetCounter("serve.sweep.configs_retried").Add();
            result = replay::ReplayOne(records, config, control);
        }
        if (result.status.code() == util::StatusCode::kInterrupted) {
            if (job->cancel_requested.load(std::memory_order_relaxed))
                cancelled = true;
            else
                interrupted = true;
            break;
        }

        const bool row_ok = result.status.ok();
        const std::string row =
            SweepRowJson(i, records.size(), spec.configs[i], result);
        {
            std::lock_guard<std::mutex> lock(mu_);
            // S4: the completion record is durable before the row is
            // ever reported. A failed append degrades, not lies: the row
            // still streams (it is correct), but a restart will re-run
            // this config — deterministically, to identical bytes.
            JournalRecord record;
            record.kind = JournalKind::kSweepConfig;
            record.id = id;
            record.config_index = i;
            record.row = row;
            if (util::Status s = journal_->Append(record); !s.ok()) {
                Warn("serve: sweep row append failed (job ", id,
                     " config ", i, "): ", s.ToString());
                registry_.GetCounter("serve.journal.append_errors").Add();
                registry_.GetCounter("serve.sweep.rows_unjournaled").Add();
            }
            job->info.sweep_rows[i] = row;
            if (row_ok)
                ++job->info.configs_done;
            else
                ++job->info.configs_failed;
            registry_
                .GetCounter(row_ok ? "serve.sweep.configs_done"
                                   : "serve.sweep.configs_failed")
                .Add();
            registry_.GetHistogram("serve.sweep.config_us")
                .Add(ElapsedUs(c0));
            // Stream the mergeable partial result: status readers see
            // every finished row without waiting for the sweep.
            WriteStatusFileLocked();
        }
        if (row_ok)
            ++done;
        else
            ++failed;
    }

    std::string outcome;
    std::string detail;
    if (cancelled) {
        outcome = "cancelled";
    } else if (!interrupted) {
        outcome = failed == 0 ? "done" : "partial";
        if (failed != 0)
            detail = std::to_string(failed) + " of " +
                     std::to_string(total) +
                     " configs failed and were isolated";
    }
    FinishJob(id, job, t0, outcome, detail, interrupted,
              records.size(), 0, 0, resumed);
}

void
ServeCore::RequestDrain()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_.exchange(true, std::memory_order_relaxed))
        return;
    drain_token_.Cancel();
    if (pool_ != nullptr)
        pool_->AbandonPending();
    for (auto& [id, job] : jobs_) {
        if (job->info.state == JobState::kRunning)
            job->stop_flag = 1;
    }
    registry_.GetGauge("serve.draining").Set(1);
    WriteStatusFileLocked();
}

void
ServeCore::Shutdown()
{
    if (!started_)
        return;
    RequestDrain();
    std::unique_ptr<replay::ThreadPool> pool;
    {
        std::lock_guard<std::mutex> lock(mu_);
        pool = std::move(pool_);
    }
    if (pool != nullptr)
        pool->Wait();
    std::lock_guard<std::mutex> lock(mu_);
    WriteStatusFileLocked();
}

std::vector<JobInfo>
ServeCore::Jobs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<JobInfo> jobs;
    jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_)
        jobs.push_back(job->info);
    return jobs;
}

std::string
ServeCore::StatusJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return StatusJsonLocked();
}

std::string
ServeCore::StatusJsonLocked() const
{
    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("v", kStatusVersion);
    w.KeyValue("draining", draining_.load(std::memory_order_relaxed));
    w.KeyValue("workers", config_.workers);
    w.KeyValue("queue_depth", admission_.pending_count());
    w.KeyValue("running", admission_.running_count());
    w.Key("jobs");
    w.BeginArray();
    for (const auto& [id, job] : jobs_)
        WriteJobJson(w, job->info);
    w.EndArray();
    w.EndObject();
    return w.TakeStr();
}

void
ServeCore::WriteStatusFileLocked()
{
    if (!started_)
        return;
    // Advisory (atum-top reads it); written on every state transition via
    // the ATCK tmp+rename pattern so a reader never sees a torn document.
    // Deliberately not fsynced — its truth is reconstructible from the
    // journal, and transition-driven writes keep chaos drills
    // deterministic (no timer-gated I/O).
    const std::string path = JoinPath(config_.dir, kStatusName);
    const std::string tmp = path + ".tmp";
    const std::string body = StatusJsonLocked();
    const auto fail = [&] {
        registry_.GetCounter("serve.status.write_errors").Add();
    };
    util::StatusOr<std::unique_ptr<io::WritableFile>> out =
        vfs_.Create(tmp);
    if (!out.ok())
        return fail();
    if (!(*out)->Write(body.data(), body.size()).ok())
        return fail();
    if (!(*out)->Close().ok())
        return fail();
    if (!vfs_.Rename(tmp, path).ok())
        return fail();
}

void
ServeCore::PublishGaugesLocked()
{
    registry_.GetGauge("serve.queue.depth").Set(admission_.pending_count());
    registry_.GetGauge("serve.jobs.running").Set(admission_.running_count());
}

void
ServeCore::AppendJournalLocked(const JournalRecord& record)
{
    if (util::Status s = journal_->Append(record); !s.ok()) {
        // The capture (and its checkpoints) are the valuable artifact;
        // a journal write lost to an injected fault costs at worst a
        // re-run after restart, never a silent loss, so the daemon keeps
        // going. Submissions are the exception: their append is checked
        // at the call site, before the ack (J1).
        Warn("serve: journal append failed (", JournalKindName(record.kind),
             " job ", record.id, "): ", s.ToString());
        registry_.GetCounter("serve.journal.append_errors").Add();
    }
}

}  // namespace atum::serve
