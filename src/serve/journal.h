#ifndef ATUM_SERVE_JOURNAL_H_
#define ATUM_SERVE_JOURNAL_H_

/**
 * @file
 * The job journal: the daemon's crash-safe memory of every job it ever
 * accepted.
 *
 * An append-only file of CRC32C-framed records — [u32 LE length]
 * [u32 LE crc32c(payload)][payload JSON] — with one rule that buys the
 * recovery invariants in docs/SERVE.md:
 *
 *   J1 (no lost jobs): a record is fsynced before the daemon acts on it.
 *      Submission is journaled before the client's ack, start before the
 *      worker runs, finish before the terminal state is reported — so a
 *      SIGKILL at any instant leaves the journal describing a state the
 *      daemon actually passed through, never one it merely intended.
 *
 * Opening the journal IS recovery: Open() scans the existing file,
 * keeps every intact record, drops a torn or corrupt tail (the write the
 * crash interrupted), and re-opens for append exactly past the valid
 * prefix. A corrupt record mid-file ends the valid prefix there —
 * trusting frames past a bad CRC would resurrect jobs from noise.
 *
 * Compact() rewrites the journal with the ATCK publish pattern
 * (tmp + fsync + rename + dirsync) so a long-lived daemon's journal
 * doesn't grow with its whole history.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/vfs.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace atum::serve {

/** What happened to a job — the journal's event vocabulary. */
enum class JournalKind : uint8_t {
    kSubmitted,    ///< admitted into the queue (spec payload)
    kStarted,      ///< a worker picked it up
    kFinished,     ///< reached a terminal state (outcome payload)
    kCancelled,    ///< client cancelled before/while running
    kSweepConfig,  ///< one sweep config completed (canonical row payload)
};

/** Stable wire token ("submitted") for one kind. */
const char* JournalKindName(JournalKind kind);

/** One journal event. Spec fields are set for kSubmitted; outcome for
 *  kFinished/kCancelled; config/row for kSweepConfig. */
struct JournalRecord {
    JournalKind kind = JournalKind::kSubmitted;
    uint64_t id = 0;

    // -- kSubmitted --------------------------------------------------------
    /** What the job runs: "capture" (the default) or "sweep". */
    std::string job = "capture";
    /** The submit's idempotency key, empty when the client sent none.
     *  Journaled with the submission so recovery rebuilds the dedup map
     *  and a retry after a kill-restart still maps to the same id. */
    std::string client_token;
    std::string tenant;
    std::string workload;
    uint32_t scale = 1;
    JobQuota quota;
    // Sweep submissions carry their whole replay spec, so recovery can
    // resume a half-done sweep from the journal alone.
    uint64_t sweep_of = 0;
    std::vector<SweepConfigSpec> configs;
    uint64_t sweep_timeout_ms = 0;
    uint64_t sweep_retries = 1;

    // -- kSweepConfig ------------------------------------------------------
    // The per-config completion record: fsynced before the row is ever
    // reported (S4), and the high-water mark a restarted daemon resumes
    // the sweep from (S5). `row` holds the canonical result-row JSON
    // (serve/sweep_spec.h) byte-for-byte.
    uint32_t config_index = 0;
    std::string row;

    // -- kFinished ---------------------------------------------------------
    /** "done" | "partial" | "failed" | "quota-bytes" | "deadline" |
     *  "wedged" | "cancelled" | "salvaged" */
    std::string outcome;
    std::string detail;  ///< human-readable context (status message)
};

/** The append side plus the recovery scan. */
class JobJournal
{
  public:
    /**
     * Opens (creating if absent) the journal at `path`, recovering every
     * intact record into recovered() and positioning appends after the
     * valid prefix. A torn/corrupt tail is truncated away and reported
     * via tail_dropped() — dropped bytes were never acked, so dropping
     * them loses nothing a client was promised.
     */
    static util::StatusOr<std::unique_ptr<JobJournal>> Open(
        const std::string& path, io::Vfs& vfs);

    /**
     * Appends one record and fsyncs it (J1: durable before acted-on).
     * A failed append truncates its own torn frame back off the tail, so
     * a transient write fault can never hide later records from the
     * recovery scan; when even the truncation fails, the journal refuses
     * further appends rather than append after garbage.
     */
    util::Status Append(const JournalRecord& record);

    /**
     * Atomically replaces the journal's content with `records` (tmp +
     * fsync + rename + dirsync) and re-opens for append. On failure the
     * old journal remains the published truth.
     */
    util::Status Compact(const std::vector<JournalRecord>& records);

    /** Records recovered by Open(), in append order. */
    const std::vector<JournalRecord>& recovered() const
    {
        return recovered_;
    }

    /** Whether Open() dropped a torn or corrupt tail. */
    bool tail_dropped() const { return tail_dropped_; }

    const std::string& path() const { return path_; }

  private:
    JobJournal(std::string path, io::Vfs& vfs);

    std::string path_;
    io::Vfs& vfs_;
    std::unique_ptr<io::WritableFile> file_;
    std::vector<JournalRecord> recovered_;
    /** Byte length of the known-durable prefix — where a failed append
     *  truncates back to so its torn frame cannot hide later records. */
    uint64_t durable_bytes_ = 0;
    bool tail_dropped_ = false;
};

/** Serializes one record to its JSON payload (frame body). */
std::string SerializeJournalRecord(const JournalRecord& record);

/** Parses one payload; kDataLoss / kInvalidArgument on damage. */
util::StatusOr<JournalRecord> ParseJournalRecord(const std::string& payload);

/**
 * Scans raw journal bytes: every intact frame in order, stopping at the
 * first torn or corrupt frame. `valid_bytes` (may be null) receives the
 * clean prefix length; `dropped` (may be null) whether anything was cut.
 * Never fails — a journal of pure noise is simply zero records.
 */
std::vector<JournalRecord> ScanJournalBytes(const std::string& bytes,
                                            uint64_t* valid_bytes,
                                            bool* dropped);

}  // namespace atum::serve

#endif  // ATUM_SERVE_JOURNAL_H_
