#include "serve/protocol.h"

#include "util/json.h"

namespace atum::serve {

std::string
EncodeFrame(const std::string& payload)
{
    const auto len = static_cast<uint32_t>(payload.size());
    std::string frame;
    frame.reserve(4 + payload.size());
    frame.push_back(static_cast<char>(len & 0xFF));
    frame.push_back(static_cast<char>((len >> 8) & 0xFF));
    frame.push_back(static_cast<char>((len >> 16) & 0xFF));
    frame.push_back(static_cast<char>((len >> 24) & 0xFF));
    frame += payload;
    return frame;
}

void
FrameParser::Feed(const void* data, size_t len)
{
    buffer_.append(static_cast<const char*>(data), len);
}

util::StatusOr<bool>
FrameParser::Next(std::string* payload)
{
    if (poisoned_)
        return util::InvalidArgument("frame stream poisoned by an "
                                     "oversized frame; drop the connection");
    if (buffer_.size() < 4)
        return false;
    const auto* b = reinterpret_cast<const uint8_t*>(buffer_.data());
    const uint32_t len = static_cast<uint32_t>(b[0]) |
                         static_cast<uint32_t>(b[1]) << 8 |
                         static_cast<uint32_t>(b[2]) << 16 |
                         static_cast<uint32_t>(b[3]) << 24;
    if (len > kMaxFrameBytes) {
        poisoned_ = true;
        return util::InvalidArgument("frame declares ", len,
                                     " bytes, over the ", kMaxFrameBytes,
                                     "-byte limit");
    }
    if (buffer_.size() < 4 + static_cast<size_t>(len))
        return false;
    payload->assign(buffer_, 4, len);
    buffer_.erase(0, 4 + static_cast<size_t>(len));
    return true;
}

namespace {

/** A non-negative integral field, defaulting when absent. */
util::StatusOr<uint64_t>
U64Field(const util::JsonValue& doc, const std::string& key,
         uint64_t fallback)
{
    if (!doc.Has(key))
        return fallback;
    const util::JsonValue& v = doc.Get(key);
    if (!v.is_number() || v.AsDouble() < 0)
        return util::InvalidArgument("field '", key,
                                     "' must be a non-negative number");
    return v.AsU64();
}

}  // namespace

util::StatusOr<Request>
ParseRequest(const std::string& payload)
{
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(payload);
    if (!doc.ok())
        return util::InvalidArgument("request is not valid JSON: ",
                                     doc.status().message());
    if (!doc->is_object())
        return util::InvalidArgument("request must be a JSON object");
    const std::string version = doc->Get("v").AsString();
    if (version != kProtocolVersion)
        return util::InvalidArgument("unsupported protocol version '",
                                     version, "' (this daemon speaks ",
                                     kProtocolVersion, ")");

    Request req;
    const std::string op = doc->Get("op").AsString();
    if (op == "ping") {
        req.op = RequestOp::kPing;
    } else if (op == "submit") {
        req.op = RequestOp::kSubmit;
        if (doc->Has("tenant"))
            req.tenant = doc->Get("tenant").AsString();
        if (req.tenant.empty() || req.tenant.size() > 64)
            return util::InvalidArgument(
                "tenant must be 1..64 characters");
        if (doc->Has("workload"))
            req.workload = doc->Get("workload").AsString();
        util::StatusOr<uint64_t> field = U64Field(*doc, "scale", 1);
        if (!field.ok())
            return field.status();
        if (*field == 0 || *field > 1024)
            return util::InvalidArgument("scale must be in 1..1024");
        req.scale = static_cast<uint32_t>(*field);
        if (!(field = U64Field(*doc, "max_instructions", 0)).ok())
            return field.status();
        req.quota.max_instructions = *field;
        if (!(field = U64Field(*doc, "max_trace_bytes", 0)).ok())
            return field.status();
        req.quota.max_trace_bytes = *field;
        if (!(field = U64Field(*doc, "deadline_ms", 0)).ok())
            return field.status();
        req.quota.deadline_ms = *field;
        if (doc->Has("token")) {
            req.client_token = doc->Get("token").AsString();
            if (req.client_token.empty() || req.client_token.size() > 128)
                return util::InvalidArgument(
                    "token must be 1..128 characters when present");
        }
    } else if (op == "sweep") {
        req.op = RequestOp::kSweep;
        if (doc->Has("tenant"))
            req.tenant = doc->Get("tenant").AsString();
        if (req.tenant.empty() || req.tenant.size() > 64)
            return util::InvalidArgument(
                "tenant must be 1..64 characters");
        util::StatusOr<uint64_t> field = U64Field(*doc, "of", 0);
        if (!field.ok())
            return field.status();
        req.sweep_of = *field;
        if (req.sweep_of == 0)
            return util::InvalidArgument(
                "sweep requires 'of': the finished job whose trace to "
                "replay");
        if (!(field = U64Field(*doc, "timeout_ms", 0)).ok())
            return field.status();
        req.sweep_timeout_ms = *field;
        if (!(field = U64Field(*doc, "retries", 1)).ok())
            return field.status();
        req.sweep_retries = *field;
        const util::JsonValue& configs = doc->Get("configs");
        if (!configs.is_array() || configs.AsArray().empty())
            return util::InvalidArgument(
                "sweep requires a non-empty 'configs' array");
        if (configs.AsArray().size() > kMaxSweepConfigs)
            return util::InvalidArgument("sweep is limited to ",
                                         kMaxSweepConfigs,
                                         " configs per job");
        for (const util::JsonValue& entry : configs.AsArray()) {
            util::StatusOr<SweepConfigSpec> spec =
                ParseSweepConfigSpec(entry);
            if (!spec.ok())
                return spec.status();
            req.sweep_configs.push_back(std::move(*spec));
        }
    } else if (op == "status" || op == "cancel") {
        req.op = op == "status" ? RequestOp::kStatus : RequestOp::kCancel;
        if (doc->Has("id")) {
            util::StatusOr<uint64_t> id = U64Field(*doc, "id", 0);
            if (!id.ok())
                return id.status();
            req.id = *id;
            req.has_id = true;
        }
        if (req.op == RequestOp::kCancel && !req.has_id)
            return util::InvalidArgument("cancel requires a job id");
    } else if (op == "metrics") {
        req.op = RequestOp::kMetrics;
    } else if (op == "drain") {
        req.op = RequestOp::kDrain;
    } else {
        return util::InvalidArgument("unknown op '", op, "'");
    }
    return req;
}

std::string
SerializeRequest(const Request& request)
{
    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("v", kProtocolVersion);
    switch (request.op) {
      case RequestOp::kPing:
        w.KeyValue("op", "ping");
        break;
      case RequestOp::kSubmit:
        w.KeyValue("op", "submit");
        w.KeyValue("tenant", request.tenant);
        w.KeyValue("workload", request.workload);
        w.KeyValue("scale", request.scale);
        if (request.quota.max_instructions != 0)
            w.KeyValue("max_instructions", request.quota.max_instructions);
        if (request.quota.max_trace_bytes != 0)
            w.KeyValue("max_trace_bytes", request.quota.max_trace_bytes);
        if (request.quota.deadline_ms != 0)
            w.KeyValue("deadline_ms", request.quota.deadline_ms);
        if (!request.client_token.empty())
            w.KeyValue("token", request.client_token);
        break;
      case RequestOp::kSweep:
        w.KeyValue("op", "sweep");
        w.KeyValue("tenant", request.tenant);
        w.KeyValue("of", request.sweep_of);
        if (request.sweep_timeout_ms != 0)
            w.KeyValue("timeout_ms", request.sweep_timeout_ms);
        w.KeyValue("retries", request.sweep_retries);
        w.Key("configs");
        w.BeginArray();
        for (const SweepConfigSpec& spec : request.sweep_configs)
            spec.WriteJson(w);
        w.EndArray();
        break;
      case RequestOp::kStatus:
        w.KeyValue("op", "status");
        if (request.has_id)
            w.KeyValue("id", request.id);
        break;
      case RequestOp::kCancel:
        w.KeyValue("op", "cancel");
        w.KeyValue("id", request.id);
        break;
      case RequestOp::kMetrics:
        w.KeyValue("op", "metrics");
        break;
      case RequestOp::kDrain:
        w.KeyValue("op", "drain");
        break;
    }
    w.EndObject();
    return w.TakeStr();
}

std::string
ErrorResponse(const util::Status& status)
{
    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("ok", false);
    w.KeyValue("code", util::StatusCodeName(status.code()));
    w.KeyValue("error", status.message());
    w.EndObject();
    return w.TakeStr();
}

util::Status
ResponseStatus(const std::string& payload)
{
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(payload);
    if (!doc.ok() || !doc->is_object() || !doc->Has("ok"))
        return util::InvalidArgument("malformed response frame");
    if (doc->Get("ok").AsBool())
        return util::OkStatus();
    const std::string code = doc->Get("code").AsString();
    const std::string error = doc->Get("error").AsString();
    // Map the few codes a client acts on; everything else is internal.
    if (code == "resource-exhausted")
        return util::ResourceExhausted(error);
    if (code == "unavailable")
        return util::Unavailable(error);
    if (code == "invalid-argument")
        return util::InvalidArgument(error);
    if (code == "not-found")
        return util::NotFound(error);
    if (code == "failed-precondition")
        return util::FailedPrecondition(error);
    return util::InternalError(error);
}

}  // namespace atum::serve
