#include "workloads/workloads.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace atum::workloads {

using assembler::Assembler;
using assembler::Def;
using assembler::Disp;
using assembler::Imm;
using assembler::Inc;
using assembler::Label;
using assembler::R;
using assembler::Ref;
using isa::Opcode;
using kernel::GuestProgram;
using kernel::Syscall;

namespace {

constexpr uint32_t kLcgMul = 1103515245;
constexpr uint32_t kLcgAdd = 12345;

/** Emits one LCG step on `reg`: reg = reg * a + c. */
void
EmitLcg(Assembler& a, unsigned reg)
{
    a.Emit(Opcode::kMull2, {Imm(kLcgMul), R(reg)});
    a.Emit(Opcode::kAddl2, {Imm(kLcgAdd), R(reg)});
}

/** Emits `putc(ch); exit(0)`. */
void
EmitEpilogue(Assembler& a, char ch)
{
    a.Emit(Opcode::kMovl, {Imm(static_cast<uint8_t>(ch)), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});
}

uint32_t
HeapPagesFor(uint32_t bytes)
{
    return static_cast<uint32_t>(AlignUp(bytes, kPageBytes)) / kPageBytes + 4;
}

}  // namespace

GuestProgram
MakeMatrix(uint32_t n, uint32_t seed)
{
    if (n < 2 || n > 64)
        Fatal("matrix: n must be in [2, 64], got ", n);
    if (seed == 0)
        Fatal("matrix: seed must be nonzero");

    Assembler a(0);
    // r11 = A, r10 = B, r9 = C; r0 = LCG state.
    Label heap = a.NewLabel("heap");
    a.Emit(Opcode::kMoval, {Ref(heap), R(11)});
    a.Emit(Opcode::kAddl3, {Imm(n * n * 4), R(11), R(10)});
    a.Emit(Opcode::kAddl3, {Imm(2 * n * n * 4), R(11), R(9)});

    // Fill A and B (contiguous) with small pseudo-random values.
    a.Emit(Opcode::kMovl, {Imm(seed), R(0)});
    a.Emit(Opcode::kMovl, {R(11), R(1)});
    a.Emit(Opcode::kMovl, {Imm(2 * n * n), R(2)});
    Label fill = a.Here("fill");
    EmitLcg(a, 0);
    a.Emit(Opcode::kAshl, {Imm(0xf0 /* -16 */), R(0), R(3)});
    a.Emit(Opcode::kBicl2, {Imm(0xffff0000), R(3)});
    a.Emit(Opcode::kMovl, {R(3), Inc(1)});
    a.Emit(Opcode::kSobgtr, {R(2)}, fill);

    // for i (r4) / j (r5) / k (r6): C[i][j] = sum A[i][k] * B[k][j]
    a.Emit(Opcode::kClrl, {R(4)});
    Label iloop = a.Here("iloop");
    a.Emit(Opcode::kClrl, {R(5)});
    Label jloop = a.Here("jloop");
    a.Emit(Opcode::kClrl, {R(7)});  // accumulator
    a.Emit(Opcode::kClrl, {R(6)});
    Label kloop = a.Here("kloop");
    a.Emit(Opcode::kMull3, {Imm(n), R(4), R(8)});
    a.Emit(Opcode::kAddl2, {R(6), R(8)});
    a.Emit(Opcode::kAshl, {Imm(2), R(8), R(8)});
    a.Emit(Opcode::kAddl2, {R(11), R(8)});
    a.Emit(Opcode::kMovl, {Def(8), R(8)});  // A[i][k]
    a.Emit(Opcode::kMull3, {Imm(n), R(6), R(3)});
    a.Emit(Opcode::kAddl2, {R(5), R(3)});
    a.Emit(Opcode::kAshl, {Imm(2), R(3), R(3)});
    a.Emit(Opcode::kAddl2, {R(10), R(3)});
    a.Emit(Opcode::kMovl, {Def(3), R(3)});  // B[k][j]
    a.Emit(Opcode::kMull2, {R(3), R(8)});
    a.Emit(Opcode::kAddl2, {R(8), R(7)});
    a.Emit(Opcode::kIncl, {R(6)});
    a.Emit(Opcode::kCmpl, {R(6), Imm(n)});
    a.Emit(Opcode::kBlss, {}, kloop);
    a.Emit(Opcode::kMull3, {Imm(n), R(4), R(8)});
    a.Emit(Opcode::kAddl2, {R(5), R(8)});
    a.Emit(Opcode::kAshl, {Imm(2), R(8), R(8)});
    a.Emit(Opcode::kAddl2, {R(9), R(8)});
    a.Emit(Opcode::kMovl, {R(7), Def(8)});  // C[i][j]
    a.Emit(Opcode::kIncl, {R(5)});
    a.Emit(Opcode::kCmpl, {R(5), Imm(n)});
    a.Emit(Opcode::kBlss, {}, jloop);
    a.Emit(Opcode::kIncl, {R(4)});
    a.Emit(Opcode::kCmpl, {R(4), Imm(n)});
    a.Emit(Opcode::kBlss, {}, iloop);

    EmitEpilogue(a, 'm');
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "matrix";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(3 * n * n * 4);
    return gp;
}

GuestProgram
MakeSort(uint32_t m, uint32_t seed)
{
    if (m < 2 || m > 65536)
        Fatal("sort: m must be in [2, 65536], got ", m);
    if (seed == 0)
        Fatal("sort: seed must be nonzero");

    Assembler a(0);
    Label heap = a.NewLabel("heap");
    a.Emit(Opcode::kMoval, {Ref(heap), R(11)});

    a.Emit(Opcode::kMovl, {Imm(seed), R(0)});
    a.Emit(Opcode::kMovl, {R(11), R(1)});
    a.Emit(Opcode::kMovl, {Imm(m), R(2)});
    Label fill = a.Here("fill");
    EmitLcg(a, 0);
    a.Emit(Opcode::kAshl, {Imm(0xf0 /* -16 */), R(0), R(3)});
    a.Emit(Opcode::kBicl2, {Imm(0xffff0000), R(3)});
    a.Emit(Opcode::kMovl, {R(3), Inc(1)});
    a.Emit(Opcode::kSobgtr, {R(2)}, fill);

    // Shellsort with gap halving. r10 = gap, r4 = i, r5 = temp, r6 = j.
    a.Emit(Opcode::kMovl, {Imm(m), R(10)});
    a.Emit(Opcode::kAshl, {Imm(0xff /* -1 */), R(10), R(10)});
    Label gaploop = a.Here("gaploop");
    Label done = a.NewLabel("done");
    a.Emit(Opcode::kTstl, {R(10)});
    a.Emit(Opcode::kBeql, {}, done);
    a.Emit(Opcode::kMovl, {R(10), R(4)});
    Label outer = a.Here("outer");
    Label gap_next = a.NewLabel("gap_next");
    a.Emit(Opcode::kCmpl, {R(4), Imm(m)});
    a.Emit(Opcode::kBgeq, {}, gap_next);
    a.Emit(Opcode::kAshl, {Imm(2), R(4), R(3)});
    a.Emit(Opcode::kAddl2, {R(11), R(3)});
    a.Emit(Opcode::kMovl, {Def(3), R(5)});  // temp = a[i]
    a.Emit(Opcode::kMovl, {R(4), R(6)});
    Label inner = a.Here("inner");
    Label inner_done = a.NewLabel("inner_done");
    a.Emit(Opcode::kCmpl, {R(6), R(10)});
    a.Emit(Opcode::kBlss, {}, inner_done);
    a.Emit(Opcode::kSubl3, {R(10), R(6), R(7)});  // j - gap
    a.Emit(Opcode::kAshl, {Imm(2), R(7), R(8)});
    a.Emit(Opcode::kAddl2, {R(11), R(8)});
    a.Emit(Opcode::kMovl, {Def(8), R(9)});  // a[j-gap]
    a.Emit(Opcode::kCmpl, {R(9), R(5)});
    a.Emit(Opcode::kBleq, {}, inner_done);
    a.Emit(Opcode::kAshl, {Imm(2), R(6), R(3)});
    a.Emit(Opcode::kAddl2, {R(11), R(3)});
    a.Emit(Opcode::kMovl, {R(9), Def(3)});  // a[j] = a[j-gap]
    a.Emit(Opcode::kMovl, {R(7), R(6)});
    a.Emit(Opcode::kBrb, {}, inner);
    a.Bind(inner_done);
    a.Emit(Opcode::kAshl, {Imm(2), R(6), R(3)});
    a.Emit(Opcode::kAddl2, {R(11), R(3)});
    a.Emit(Opcode::kMovl, {R(5), Def(3)});  // a[j] = temp
    a.Emit(Opcode::kIncl, {R(4)});
    a.Emit(Opcode::kBrb, {}, outer);
    a.Bind(gap_next);
    a.Emit(Opcode::kAshl, {Imm(0xff /* -1 */), R(10), R(10)});
    a.Emit(Opcode::kBrb, {}, gaploop);
    a.Bind(done);

    EmitEpilogue(a, 's');
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "sort";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(m * 4);
    return gp;
}

GuestProgram
MakeListProc(uint32_t cells, uint32_t iters, uint32_t seed)
{
    if (cells < 1 || iters < 1)
        Fatal("listproc: cells and iters must be >= 1");
    if (seed == 0)
        Fatal("listproc: seed must be nonzero");

    Assembler a(0);
    Label heap = a.NewLabel("heap");
    a.Emit(Opcode::kMoval, {Ref(heap), R(10)});  // bump pointer
    a.Emit(Opcode::kClrl, {R(9)});               // head = nil
    a.Emit(Opcode::kMovl, {Imm(seed), R(0)});
    a.Emit(Opcode::kMovl, {Imm(cells), R(2)});
    Label build = a.Here("build");
    EmitLcg(a, 0);
    a.Emit(Opcode::kMovl, {R(0), Def(10)});       // car
    a.Emit(Opcode::kMovl, {R(9), Disp(4, 10)});   // cdr = head
    a.Emit(Opcode::kMovl, {R(10), R(9)});
    a.Emit(Opcode::kAddl2, {Imm(8), R(10)});
    a.Emit(Opcode::kSobgtr, {R(2)}, build);

    a.Emit(Opcode::kMovl, {Imm(iters), R(8)});
    Label pass = a.Here("pass");
    // Sum pass.
    a.Emit(Opcode::kClrl, {R(7)});
    a.Emit(Opcode::kMovl, {R(9), R(1)});
    Label sum = a.Here("sum");
    Label sum_done = a.NewLabel("sum_done");
    a.Emit(Opcode::kTstl, {R(1)});
    a.Emit(Opcode::kBeql, {}, sum_done);
    a.Emit(Opcode::kAddl2, {Def(1), R(7)});
    a.Emit(Opcode::kMovl, {Disp(4, 1), R(1)});
    a.Emit(Opcode::kBrb, {}, sum);
    a.Bind(sum_done);
    // In-place reverse.
    a.Emit(Opcode::kClrl, {R(2)});  // prev
    a.Emit(Opcode::kMovl, {R(9), R(1)});
    Label rev = a.Here("rev");
    Label rev_done = a.NewLabel("rev_done");
    a.Emit(Opcode::kTstl, {R(1)});
    a.Emit(Opcode::kBeql, {}, rev_done);
    a.Emit(Opcode::kMovl, {Disp(4, 1), R(3)});
    a.Emit(Opcode::kMovl, {R(2), Disp(4, 1)});
    a.Emit(Opcode::kMovl, {R(1), R(2)});
    a.Emit(Opcode::kMovl, {R(3), R(1)});
    a.Emit(Opcode::kBrb, {}, rev);
    a.Bind(rev_done);
    a.Emit(Opcode::kMovl, {R(2), R(9)});
    a.Emit(Opcode::kSobgtr, {R(8)}, pass);

    EmitEpilogue(a, 'l');
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "listproc";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(cells * 8);
    return gp;
}

GuestProgram
MakeGrep(uint32_t bytes, uint32_t passes, uint32_t seed)
{
    if (bytes < 16 || passes < 1)
        Fatal("grep: bytes must be >= 16 and passes >= 1");
    if (seed == 0)
        Fatal("grep: seed must be nonzero");

    Assembler a(0);
    Label heap = a.NewLabel("heap");
    a.Emit(Opcode::kMoval, {Ref(heap), R(11)});

    a.Emit(Opcode::kMovl, {Imm(seed), R(0)});
    a.Emit(Opcode::kMovl, {R(11), R(1)});
    a.Emit(Opcode::kMovl, {Imm(bytes), R(2)});
    Label fill = a.Here("fill");
    EmitLcg(a, 0);
    a.Emit(Opcode::kAshl, {Imm(0xf0 /* -16 */), R(0), R(3)});
    a.Emit(Opcode::kMovb, {R(3), Inc(1)});
    a.Emit(Opcode::kSobgtr, {R(2)}, fill);

    a.Emit(Opcode::kMovl, {Imm(passes), R(8)});
    Label pass = a.Here("pass");
    a.Emit(Opcode::kClrl, {R(7)});
    a.Emit(Opcode::kMovl, {R(11), R(1)});
    a.Emit(Opcode::kMovl, {Imm(bytes), R(2)});
    Label scan = a.Here("scan");
    Label noinc = a.NewLabel("noinc");
    a.Emit(Opcode::kCmpb, {Inc(1), Imm(0x41)});
    a.Emit(Opcode::kBneq, {}, noinc);
    a.Emit(Opcode::kIncl, {R(7)});
    a.Bind(noinc);
    a.Emit(Opcode::kSobgtr, {R(2)}, scan);
    a.Emit(Opcode::kSobgtr, {R(8)}, pass);

    EmitEpilogue(a, 'g');
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "grep";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(bytes);
    return gp;
}

GuestProgram
MakeHash(uint32_t tokens, uint32_t seed)
{
    if (tokens < 1)
        Fatal("hash: tokens must be >= 1");
    if (seed == 0)
        Fatal("hash: seed must be nonzero");
    constexpr uint32_t kBuckets = 256;

    Assembler a(0);
    Label heap = a.NewLabel("heap");
    Label chainwalk = a.NewLabel("chainwalk");
    // r11 = table base (demand-zero), r10 = node bump pointer.
    a.Emit(Opcode::kMoval, {Ref(heap), R(11)});
    a.Emit(Opcode::kAddl3, {Imm(kBuckets * 4), R(11), R(10)});
    a.Emit(Opcode::kMovl, {Imm(seed), R(0)});
    a.Emit(Opcode::kMovl, {Imm(tokens), R(8)});

    Label tok = a.Here("tok");
    EmitLcg(a, 0);
    a.Emit(Opcode::kAshl, {Imm(0xf4 /* -12 */), R(0), R(2)});
    a.Emit(Opcode::kBicl3, {Imm(~(kBuckets - 1)), R(2), R(3)});
    a.Emit(Opcode::kAshl, {Imm(2), R(3), R(3)});
    a.Emit(Opcode::kAddl2, {R(11), R(3)});  // r3 = &bucket
    a.Emit(Opcode::kCalls, {Imm(0), Ref(chainwalk)});
    // Insert a node: [key][next] at the bump pointer.
    a.Emit(Opcode::kMovl, {R(0), Def(10)});
    a.Emit(Opcode::kMovl, {Def(3), R(4)});
    a.Emit(Opcode::kMovl, {R(4), Disp(4, 10)});
    a.Emit(Opcode::kMovl, {R(10), Def(3)});
    a.Emit(Opcode::kAddl2, {Imm(8), R(10)});
    a.Emit(Opcode::kSobgtr, {R(8)}, tok);

    EmitEpilogue(a, 'c');

    // chainwalk(r3 = &bucket) -> r5 = chain length.
    a.Bind(chainwalk);
    a.Emit(Opcode::kMovl, {Def(3), R(4)});
    a.Emit(Opcode::kClrl, {R(5)});
    Label cw_loop = a.Here("cw_loop");
    Label cw_done = a.NewLabel("cw_done");
    a.Emit(Opcode::kTstl, {R(4)});
    a.Emit(Opcode::kBeql, {}, cw_done);
    a.Emit(Opcode::kIncl, {R(5)});
    a.Emit(Opcode::kMovl, {Disp(4, 4), R(4)});
    a.Emit(Opcode::kBrb, {}, cw_loop);
    a.Bind(cw_done);
    a.Emit(Opcode::kRet);

    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "hash";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(kBuckets * 4 + tokens * 8);
    return gp;
}

GuestProgram
MakeFft(uint32_t size, uint32_t seed)
{
    if (!IsPowerOfTwo(size) || size < 4)
        Fatal("fft: size must be a power of two >= 4, got ", size);
    if (seed == 0)
        Fatal("fft: seed must be nonzero");

    Assembler a(0);
    Label heap = a.NewLabel("heap");
    a.Emit(Opcode::kMoval, {Ref(heap), R(11)});

    a.Emit(Opcode::kMovl, {Imm(seed), R(0)});
    a.Emit(Opcode::kMovl, {R(11), R(1)});
    a.Emit(Opcode::kMovl, {Imm(size), R(2)});
    Label fill = a.Here("fill");
    EmitLcg(a, 0);
    a.Emit(Opcode::kAshl, {Imm(0xf0 /* -16 */), R(0), R(3)});
    a.Emit(Opcode::kMovl, {R(3), Inc(1)});
    a.Emit(Opcode::kSobgtr, {R(2)}, fill);

    // Butterfly passes: stride r10 = size/2 .. 1.
    a.Emit(Opcode::kMovl, {Imm(size / 2), R(10)});
    Label pass = a.Here("pass");
    a.Emit(Opcode::kClrl, {R(4)});
    Label bloop = a.Here("bloop");
    Label skip = a.NewLabel("skip");
    a.Emit(Opcode::kBitl, {R(10), R(4)});
    a.Emit(Opcode::kBneq, {}, skip);
    a.Emit(Opcode::kAshl, {Imm(2), R(4), R(5)});
    a.Emit(Opcode::kAddl2, {R(11), R(5)});  // &x[i]
    a.Emit(Opcode::kAshl, {Imm(2), R(10), R(6)});
    a.Emit(Opcode::kAddl2, {R(5), R(6)});   // &x[i+stride]
    a.Emit(Opcode::kMovl, {Def(5), R(7)});
    a.Emit(Opcode::kMovl, {Def(6), R(8)});
    a.Emit(Opcode::kAddl3, {R(7), R(8), R(9)});
    a.Emit(Opcode::kSubl3, {R(8), R(7), R(2)});  // r2 = x[i] - x[i+stride]
    a.Emit(Opcode::kMovl, {R(9), Def(5)});
    a.Emit(Opcode::kMovl, {R(2), Def(6)});
    a.Bind(skip);
    a.Emit(Opcode::kIncl, {R(4)});
    a.Emit(Opcode::kCmpl, {R(4), Imm(size)});
    a.Emit(Opcode::kBlss, {}, bloop);
    a.Emit(Opcode::kAshl, {Imm(0xff /* -1 */), R(10), R(10)});
    a.Emit(Opcode::kTstl, {R(10)});
    a.Emit(Opcode::kBneq, {}, pass);

    EmitEpilogue(a, 'f');
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "fft";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(size * 4);
    return gp;
}

GuestProgram
MakeEditor(uint32_t lines, uint32_t passes, uint32_t seed)
{
    if (lines < 1 || passes < 1)
        Fatal("editor: lines and passes must be >= 1");
    if (seed == 0)
        Fatal("editor: seed must be nonzero");
    const uint32_t text_bytes = lines * 41;  // 40 chars + newline per line

    Assembler a(0);
    Label heap = a.NewLabel("heap");
    // r11 = text, r10 = yank buffer, r9 = LCG then end-of-text.
    a.Emit(Opcode::kMoval, {Ref(heap), R(11)});
    a.Emit(Opcode::kAddl3, {Imm(text_bytes), R(11), R(10)});

    a.Emit(Opcode::kMovl, {Imm(seed), R(9)});
    a.Emit(Opcode::kMovl, {R(11), R(1)});
    a.Emit(Opcode::kMovl, {Imm(lines), R(2)});
    Label fill_line = a.Here("fill_line");
    a.Emit(Opcode::kMovl, {Imm(40), R(3)});
    Label fill_ch = a.Here("fill_ch");
    EmitLcg(a, 9);
    a.Emit(Opcode::kAshl, {Imm(0xf6 /* -10 */), R(9), R(4)});
    a.Emit(Opcode::kBicl3, {Imm(~63u), R(4), R(4)});
    a.Emit(Opcode::kAddl2, {Imm(32), R(4)});  // printable 32..95
    a.Emit(Opcode::kMovb, {R(4), Inc(1)});
    a.Emit(Opcode::kSobgtr, {R(3)}, fill_ch);
    a.Emit(Opcode::kMovb, {Imm('\n'), Inc(1)});
    a.Emit(Opcode::kSobgtr, {R(2)}, fill_line);

    a.Emit(Opcode::kAddl3, {Imm(text_bytes), R(11), R(9)});  // end
    a.Emit(Opcode::kMovl, {Imm(passes), R(8)});
    Label pass = a.Here("pass");
    a.Emit(Opcode::kMovl, {R(11), R(6)});  // cursor
    Label scan = a.Here("scan");
    Label pass_done = a.NewLabel("pass_done");
    a.Emit(Opcode::kCmpl, {R(6), R(9)});
    a.Emit(Opcode::kBgequ, {}, pass_done);
    a.Emit(Opcode::kSubl3, {R(6), R(9), R(5)});  // remaining bytes
    a.Emit(Opcode::kLocc, {Imm('\n'), R(5), Def(6)});
    a.Emit(Opcode::kBeql, {}, pass_done);  // Z: no newline left
    a.Emit(Opcode::kMovl, {R(1), R(7)});   // newline address
    // Yank the line (<= 64 bytes) and verify the copy.
    a.Emit(Opcode::kSubl3, {R(6), R(7), R(2)});
    a.Emit(Opcode::kCmpl, {R(2), Imm(64)});
    Label len_ok = a.NewLabel("len_ok");
    a.Emit(Opcode::kBlequ, {}, len_ok);
    a.Emit(Opcode::kMovl, {Imm(64), R(2)});
    a.Bind(len_ok);
    a.Emit(Opcode::kMovc3, {R(2), Def(6), Def(10)});  // clobbers r0-r5
    a.Emit(Opcode::kSubl3, {R(6), R(7), R(2)});
    a.Emit(Opcode::kCmpl, {R(2), Imm(64)});
    Label len_ok2 = a.NewLabel("len_ok2");
    a.Emit(Opcode::kBlequ, {}, len_ok2);
    a.Emit(Opcode::kMovl, {Imm(64), R(2)});
    a.Bind(len_ok2);
    a.Emit(Opcode::kCmpc3, {R(2), Def(6), Def(10)});
    a.Emit(Opcode::kAddl3, {Imm(1), R(7), R(6)});  // cursor = nl + 1
    a.Emit(Opcode::kBrb, {}, scan);
    a.Bind(pass_done);
    a.Emit(Opcode::kSobgtr, {R(8)}, pass);

    EmitEpilogue(a, 'e');
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "editor";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(text_bytes + 64);
    return gp;
}

GuestProgram
MakeQueueSim(uint32_t events, uint32_t seed)
{
    if (events < 1)
        Fatal("queuesim: events must be >= 1");
    if (seed == 0)
        Fatal("queuesim: seed must be nonzero");

    Assembler a(0);
    Label heap = a.NewLabel("heap");
    // r11 = queue header, r10 = entry pool bump, r9 = LCG, r8 = event
    // counter, r7 = checksum. Entries: [next][prev][type][value].
    a.Emit(Opcode::kMoval, {Ref(heap), R(11)});
    a.Emit(Opcode::kMovl, {R(11), Def(11)});       // header.next = header
    a.Emit(Opcode::kMovl, {R(11), Disp(4, 11)});   // header.prev = header
    a.Emit(Opcode::kAddl3, {Imm(16), R(11), R(10)});
    a.Emit(Opcode::kMovl, {Imm(seed), R(9)});
    a.Emit(Opcode::kMovl, {Imm(events), R(8)});
    a.Emit(Opcode::kClrl, {R(7)});

    Label ev_loop = a.Here("ev_loop");
    EmitLcg(a, 9);
    a.Emit(Opcode::kBicl3, {Imm(~3u), R(9), R(2)});
    a.Emit(Opcode::kMovl, {R(2), Disp(8, 10)});   // type
    a.Emit(Opcode::kMovl, {R(9), Disp(12, 10)});  // value
    a.Emit(Opcode::kMovl, {Disp(4, 11), R(3)});   // tail = header.prev
    a.Emit(Opcode::kInsque, {Def(10), Def(3)});   // insert at tail
    a.Emit(Opcode::kAddl2, {Imm(16), R(10)});

    // Every 4th event, service the head of the queue.
    Label ev_next = a.NewLabel("ev_next");
    a.Emit(Opcode::kBicl3, {Imm(~3u), R(8), R(4)});
    a.Emit(Opcode::kTstl, {R(4)});
    a.Emit(Opcode::kBneq, {}, ev_next);
    a.Emit(Opcode::kMovl, {Def(11), R(5)});  // head entry
    a.Emit(Opcode::kCmpl, {R(5), R(11)});
    a.Emit(Opcode::kBeql, {}, ev_next);      // queue empty
    a.Emit(Opcode::kRemque, {Def(5), R(6)});
    a.Emit(Opcode::kMovl, {Disp(8, 5), R(2)});
    Label t0 = a.NewLabel("t0");
    Label t1 = a.NewLabel("t1");
    Label t2 = a.NewLabel("t2");
    Label t3 = a.NewLabel("t3");
    a.Emit(Opcode::kCasel, {R(2), Imm(0), Imm(3)});
    a.CaseTable({t0, t1, t2, t3});
    a.Bind(t0);
    a.Emit(Opcode::kAddl2, {Disp(12, 5), R(7)});
    a.Emit(Opcode::kBrb, {}, ev_next);
    a.Bind(t1);
    a.Emit(Opcode::kXorl2, {Disp(12, 5), R(7)});
    a.Emit(Opcode::kBrb, {}, ev_next);
    a.Bind(t2);
    a.Emit(Opcode::kIncl, {R(7)});
    a.Emit(Opcode::kBrb, {}, ev_next);
    a.Bind(t3);
    a.Emit(Opcode::kSubl2, {Disp(12, 5), R(7)});
    a.Bind(ev_next);
    a.Emit(Opcode::kSobgtr, {R(8)}, ev_loop);

    // Drain what is left.
    Label drain = a.Here("drain");
    Label done = a.NewLabel("done");
    a.Emit(Opcode::kMovl, {Def(11), R(5)});
    a.Emit(Opcode::kCmpl, {R(5), R(11)});
    a.Emit(Opcode::kBeql, {}, done);
    a.Emit(Opcode::kRemque, {Def(5), R(6)});
    a.Emit(Opcode::kAddl2, {Disp(12, 5), R(7)});
    a.Emit(Opcode::kBrb, {}, drain);
    a.Bind(done);

    EmitEpilogue(a, 'q');
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "queuesim";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(16 + events * 16);
    return gp;
}

std::vector<GuestProgram>
MakePipelinePair(uint32_t count, uint32_t seed)
{
    if (count < 1)
        Fatal("pipeline: count must be >= 1");
    if (seed == 0)
        Fatal("pipeline: seed must be nonzero");

    // Producer: LCG bytes through the kernel mailbox, yielding when full.
    Assembler p(0);
    p.Emit(Opcode::kMovl, {Imm(count), R(8)});
    p.Emit(Opcode::kMovl, {Imm(seed), R(9)});
    Label p_loop = p.Here("p_loop");
    EmitLcg(p, 9);
    p.Emit(Opcode::kAshl, {Imm(0xf8 /* -8 */), R(9), R(1)});
    Label p_retry = p.Here("p_retry");
    p.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kSend))});
    p.Emit(Opcode::kTstl, {R(0)});
    Label p_sent = p.NewLabel("p_sent");
    p.Emit(Opcode::kBneq, {}, p_sent);
    p.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kYield))});
    p.Emit(Opcode::kBrb, {}, p_retry);
    p.Bind(p_sent);
    p.Emit(Opcode::kSobgtr, {R(8)}, p_loop);
    EmitEpilogue(p, '>');

    // Consumer: receive `count` bytes, accumulating a checksum.
    Assembler c(0);
    c.Emit(Opcode::kMovl, {Imm(count), R(8)});
    c.Emit(Opcode::kClrl, {R(7)});
    Label c_loop = c.Here("c_loop");
    c.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kRecv))});
    c.Emit(Opcode::kCmpl, {R(0), Imm(0xffffffff)});
    Label c_got = c.NewLabel("c_got");
    c.Emit(Opcode::kBneq, {}, c_got);
    c.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kYield))});
    c.Emit(Opcode::kBrb, {}, c_loop);
    c.Bind(c_got);
    c.Emit(Opcode::kAddl2, {R(0), R(7)});
    c.Emit(Opcode::kSobgtr, {R(8)}, c_loop);
    EmitEpilogue(c, '<');

    GuestProgram producer;
    producer.name = "pipe-producer";
    producer.program = p.Finish();
    producer.heap_pages = 2;
    producer.stack_pages = 2;
    GuestProgram consumer;
    consumer.name = "pipe-consumer";
    consumer.program = c.Finish();
    consumer.heap_pages = 2;
    consumer.stack_pages = 2;
    return {std::move(producer), std::move(consumer)};
}

GuestProgram
MakeServer(uint32_t requests, uint32_t seed)
{
    if (requests < 1)
        Fatal("server: requests must be >= 1");
    if (seed == 0)
        Fatal("server: seed must be nonzero");

    Assembler a(0);
    // r9 = LCG, r8 = request counter, r7 = checksum. Each request makes
    // three or four system calls with almost no user-mode work between
    // them: the kernel-entry rate is the signature.
    a.Emit(Opcode::kMovl, {Imm(requests), R(8)});
    a.Emit(Opcode::kMovl, {Imm(seed), R(9)});
    a.Emit(Opcode::kClrl, {R(7)});

    Label req = a.Here("req");
    EmitLcg(a, 9);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kGetpid))});
    a.Emit(Opcode::kAddl2, {R(0), R(7)});
    a.Emit(Opcode::kBicl3, {Imm(~0xffu), R(9), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kSend))});
    Label no_recv = a.NewLabel("no_recv");
    a.Emit(Opcode::kTstl, {R(0)});
    a.Emit(Opcode::kBeql, {}, no_recv);  // mailbox full: skip the drain
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kRecv))});
    a.Emit(Opcode::kAddl2, {R(0), R(7)});
    a.Bind(no_recv);
    Label no_yield = a.NewLabel("no_yield");
    a.Emit(Opcode::kBicl3, {Imm(~7u), R(8), R(4)});
    a.Emit(Opcode::kTstl, {R(4)});
    a.Emit(Opcode::kBneq, {}, no_yield);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kYield))});
    a.Bind(no_yield);
    a.Emit(Opcode::kSobgtr, {R(8)}, req);

    EmitEpilogue(a, 'v');
    Label heap = a.NewLabel("heap");
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "server";
    gp.program = a.Finish();
    gp.heap_pages = 2;
    return gp;
}

GuestProgram
MakeIoStorm(uint32_t transfers, uint32_t seed)
{
    if (transfers < 1)
        Fatal("iostorm: transfers must be >= 1");
    if (seed == 0)
        Fatal("iostorm: seed must be nonzero");

    Assembler a(0);
    Label heap = a.NewLabel("heap");
    // r11 = source page, r10 = destination page, r8 = transfer counter,
    // r7 = checksum, r6 = LCG.
    a.Emit(Opcode::kMoval, {Ref(heap), R(11)});
    a.Emit(Opcode::kAddl3, {Imm(kPageBytes), R(11), R(10)});

    // Fill the source page so the first transfer moves real data.
    a.Emit(Opcode::kMovl, {Imm(seed), R(6)});
    a.Emit(Opcode::kMovl, {R(11), R(1)});
    a.Emit(Opcode::kMovl, {Imm(kPageBytes / 4), R(2)});
    Label fill = a.Here("fill");
    EmitLcg(a, 6);
    a.Emit(Opcode::kMovl, {R(6), Inc(1)});
    a.Emit(Opcode::kSobgtr, {R(2)}, fill);

    a.Emit(Opcode::kMovl, {Imm(transfers), R(8)});
    a.Emit(Opcode::kClrl, {R(7)});
    Label xfer = a.Here("xfer");
    // Touch both pages so they are resident (the pager may have evicted
    // them), then ask the kernel for a page-sized DMA copy.
    a.Emit(Opcode::kMovl, {Def(11), R(3)});
    a.Emit(Opcode::kMovl, {R(3), Def(10)});
    a.Emit(Opcode::kMovl, {R(11), R(1)});
    a.Emit(Opcode::kMovl, {R(10), R(2)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kDmaCopy))});
    Label started = a.NewLabel("started");
    a.Emit(Opcode::kTstl, {R(0)});
    a.Emit(Opcode::kBeql, {}, started);
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kYield))});
    a.Emit(Opcode::kBrb, {}, xfer);
    a.Bind(started);
    // Pace: compute long enough that the transfer-complete interrupt
    // (len/4 + 8 instructions after the start) lands inside this loop.
    a.Emit(Opcode::kMovl, {Imm(200), R(4)});
    a.Emit(Opcode::kMovl, {R(8), R(5)});
    Label pace = a.Here("pace");
    EmitLcg(a, 5);
    a.Emit(Opcode::kSobgtr, {R(4)}, pace);
    // Verify the copy and fold it into the checksum.
    a.Emit(Opcode::kMovl, {Def(11), R(3)});
    Label copy_ok = a.NewLabel("copy_ok");
    a.Emit(Opcode::kCmpl, {R(3), Def(10)});
    a.Emit(Opcode::kBeql, {}, copy_ok);
    a.Emit(Opcode::kMovl, {Imm('!'), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Bind(copy_ok);
    a.Emit(Opcode::kAddl2, {Def(10), R(7)});
    // Mutate the source page head so every transfer moves fresh data.
    a.Emit(Opcode::kMovl, {R(5), Def(11)});
    a.Emit(Opcode::kSobgtr, {R(8)}, xfer);

    EmitEpilogue(a, 'd');
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "iostorm";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(2 * kPageBytes);
    return gp;
}

GuestProgram
MakeForkWave(uint32_t children, uint32_t seed)
{
    if (children < 1)
        Fatal("forkwave: children must be >= 1");
    if (seed == 0)
        Fatal("forkwave: seed must be nonzero");

    Assembler a(0);
    // r8 = forks remaining, r7 = forks achieved. Children share the
    // parent's text (P0) but get a fresh empty stack, so both sides of
    // the fork stay register-only: no stack state crosses the clone.
    a.Emit(Opcode::kMovl, {Imm(children), R(8)});
    a.Emit(Opcode::kClrl, {R(7)});

    Label floop = a.Here("floop");
    Label child = a.NewLabel("child");
    Label fnext = a.NewLabel("fnext");
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kFork))});
    a.Emit(Opcode::kTstl, {R(0)});
    a.Emit(Opcode::kBeql, {}, child);
    a.Emit(Opcode::kCmpl, {R(0), Imm(0xffffffff)});
    a.Emit(Opcode::kBneq, {}, fnext);
    // Process table full: yield until a child exits and frees a slot.
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kYield))});
    a.Emit(Opcode::kBrb, {}, floop);
    a.Bind(fnext);
    a.Emit(Opcode::kIncl, {R(7)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kYield))});
    a.Emit(Opcode::kSobgtr, {R(8)}, floop);
    Label done = a.NewLabel("done");
    a.Emit(Opcode::kBrb, {}, done);

    // Child: a short register-only compute burst, then exit.
    a.Bind(child);
    a.Emit(Opcode::kMovl, {Imm(seed), R(9)});
    a.Emit(Opcode::kMovl, {Imm(400), R(6)});
    Label cburst = a.Here("cburst");
    EmitLcg(a, 9);
    a.Emit(Opcode::kSobgtr, {R(6)}, cburst);
    a.Emit(Opcode::kMovl, {Imm('+'), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kExit))});

    a.Bind(done);
    EmitEpilogue(a, 'w');
    Label heap = a.NewLabel("heap");
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "forkwave";
    gp.program = a.Finish();
    gp.heap_pages = 2;
    return gp;
}

GuestProgram
MakeTlbThrash(uint32_t pages, uint32_t passes, uint32_t seed)
{
    if (pages < 1 || passes < 1)
        Fatal("tlbthrash: pages and passes must be >= 1");
    if (seed == 0)
        Fatal("tlbthrash: seed must be nonzero");

    Assembler a(0);
    Label heap = a.NewLabel("heap");
    // One load per page per pass. With `pages` comfortably above the TB
    // capacity, every steady-state access both misses the TB and walks
    // the page table: the miss *rate* is the signature.
    a.Emit(Opcode::kMoval, {Ref(heap), R(11)});
    a.Emit(Opcode::kMovl, {Imm(passes), R(8)});
    a.Emit(Opcode::kClrl, {R(7)});
    Label pass = a.Here("pass");
    a.Emit(Opcode::kMovl, {R(11), R(1)});
    a.Emit(Opcode::kMovl, {Imm(pages), R(2)});
    Label ploop = a.Here("ploop");
    a.Emit(Opcode::kAddl2, {Def(1), R(7)});
    a.Emit(Opcode::kAddl2, {Imm(kPageBytes), R(1)});
    a.Emit(Opcode::kSobgtr, {R(2)}, ploop);
    a.Emit(Opcode::kSobgtr, {R(8)}, pass);

    EmitEpilogue(a, 't');
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "tlbthrash";
    gp.program = a.Finish();
    gp.heap_pages = HeapPagesFor(pages * kPageBytes);
    return gp;
}

GuestProgram
MakeSmc(uint32_t rewrites, uint32_t seed)
{
    if (rewrites < 1)
        Fatal("smc: rewrites must be >= 1");
    if (seed == 0)
        Fatal("smc: seed must be nonzero");

    Assembler a(0);
    // The callee below is hand-assembled as data so the main loop can
    // patch its immediate field: each iteration stores new bytes into the
    // program's own text page, then JSBs to the routine, which must
    // return the just-written value. The prefetch buffer holds a single
    // aligned word and the call itself moves the fetch stream away from
    // and back onto the patched word, so the new bytes are always
    // observed — that refill traffic is the signature.
    Label smc_fn = a.NewLabel("smc_fn");
    Label smc_imm = a.NewLabel("smc_imm");
    a.Emit(Opcode::kMovl, {Imm(rewrites), R(8)});
    a.Emit(Opcode::kMovl, {Imm(seed), R(6)});
    a.Emit(Opcode::kClrl, {R(7)});
    a.Emit(Opcode::kMoval, {Ref(smc_imm), R(9)});

    Label loop = a.Here("loop");
    EmitLcg(a, 6);
    a.Emit(Opcode::kMovl, {R(6), Def(9)});  // rewrite our own text
    a.Emit(Opcode::kJsb, {Ref(smc_fn)});
    Label patched_ok = a.NewLabel("patched_ok");
    a.Emit(Opcode::kCmpl, {R(0), R(6)});
    a.Emit(Opcode::kBeql, {}, patched_ok);
    a.Emit(Opcode::kMovl, {Imm('!'), R(1)});
    a.Emit(Opcode::kChmk, {Imm(static_cast<uint32_t>(Syscall::kPutc))});
    a.Bind(patched_ok);
    a.Emit(Opcode::kAddl2, {R(0), R(7)});
    a.Emit(Opcode::kSobgtr, {R(8)}, loop);

    EmitEpilogue(a, 'x');

    // smc_fn:  MOVL #<patched>, r0 ; RSB
    a.Bind(smc_fn);
    a.Byte(static_cast<uint8_t>(Opcode::kMovl));
    a.Byte(isa::SpecifierByte(isa::AddrMode::kImm, 0));
    a.Bind(smc_imm);
    a.Long(0);
    a.Byte(isa::SpecifierByte(isa::AddrMode::kReg, 0));
    a.Byte(static_cast<uint8_t>(Opcode::kRsb));

    Label heap = a.NewLabel("heap");
    a.Align(kPageBytes);
    a.Bind(heap);

    GuestProgram gp;
    gp.name = "smc";
    gp.program = a.Finish();
    gp.heap_pages = 2;
    return gp;
}

namespace {

/**
 * The single source of truth for name -> generator. Order is load-bearing:
 * bench mixes (bench/common.h) index AllWorkloadNames() round-robin, so
 * the original eight keep their positions and new entries append.
 */
struct WorkloadEntry {
    const char* name;
    GuestProgram (*make)(uint32_t scale);
};

constexpr WorkloadEntry kWorkloadTable[] = {
    {"matrix",
     [](uint32_t s) { return MakeMatrix(16 * s > 64 ? 64 : 16 * s); }},
    {"sort", [](uint32_t s) { return MakeSort(600 * s); }},
    {"listproc", [](uint32_t s) { return MakeListProc(400 * s, 24); }},
    {"grep", [](uint32_t s) { return MakeGrep(8192 * s, 6); }},
    {"hash", [](uint32_t s) { return MakeHash(2500 * s); }},
    {"fft",
     [](uint32_t s) {
         uint32_t size = 512;
         while (size < 512 * s)
             size <<= 1;
         return MakeFft(size);
     }},
    {"editor", [](uint32_t s) { return MakeEditor(40 * s, 4); }},
    {"queuesim", [](uint32_t s) { return MakeQueueSim(600 * s); }},
    {"server", [](uint32_t s) { return MakeServer(300 * s); }},
    {"iostorm", [](uint32_t s) { return MakeIoStorm(40 * s); }},
    {"forkwave",
     [](uint32_t s) { return MakeForkWave(12 * s > 48 ? 48 : 12 * s); }},
    {"tlbthrash", [](uint32_t s) { return MakeTlbThrash(192 * s, 8); }},
    {"smc", [](uint32_t s) { return MakeSmc(400 * s); }},
};

}  // namespace

const std::vector<std::string>&
AllWorkloadNames()
{
    static const std::vector<std::string>& names = *[] {
        auto* v = new std::vector<std::string>;
        for (const WorkloadEntry& e : kWorkloadTable)
            v->push_back(e.name);
        return v;
    }();
    return names;
}

kernel::GuestProgram
MakeWorkload(const std::string& name, uint32_t scale)
{
    if (scale < 1)
        Fatal("workload scale must be >= 1");
    for (const WorkloadEntry& e : kWorkloadTable) {
        if (name == e.name)
            return e.make(scale);
    }
    Fatal("unknown workload: ", name);
}

std::vector<kernel::GuestProgram>
StandardMix(uint32_t scale)
{
    return {MakeWorkload("hash", scale), MakeWorkload("matrix", scale),
            MakeWorkload("listproc", scale)};
}

}  // namespace atum::workloads
