#ifndef ATUM_WORKLOADS_WORKLOADS_H_
#define ATUM_WORKLOADS_WORKLOADS_H_

/**
 * @file
 * Guest workload programs.
 *
 * ATUM traced real multiprogrammed workloads (compilers, Lisp, CAD, text
 * tools) under VMS and Ultrix. These generators produce VCX-32 programs
 * with the corresponding memory-behaviour *signatures*, which is what the
 * cache/TLB/working-set studies depend on:
 *
 *   - matrix:   dense loop nests, strided + repeated-row access
 *   - sort:     shellsort; shrinking-stride swaps over one array
 *   - listproc: Lisp-flavoured cons-cell build/traverse/reverse chains
 *   - grep:     streaming byte scan with tiny loop body
 *   - hash:     compiler-symbol-table flavour: hash, chain walk (pointer
 *               chasing), node allocation, subroutine calls
 *   - fft:      butterfly strides (power-of-two stride sweep)
 *
 * The adversarial zoo stresses the *capture machinery* rather than the
 * memory hierarchy: each one is built to push a specific counter or
 * tracer path to an extreme so the crosscheck harness
 * (analysis/crosscheck.h) has hostile inputs:
 *
 *   - server:    system-call storm; kernel-entry rate near the maximum
 *   - iostorm:   DMA transfers racing the completion interrupt
 *   - forkwave:  process creation/destruction churn (context switches)
 *   - tlbthrash: strided sweep sized at a multiple of the TB capacity
 *   - smc:       self-modifying code; rewrites its own text page mid-run
 *
 * Every program is deterministic (guest-side LCG with a fixed seed),
 * allocates from its demand-zero heap (exercising the kernel pager), makes
 * system calls, and exits via CHMK #0.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/boot.h"

namespace atum::workloads {

/** Matrix multiply, `n` x `n` (n >= 2). */
kernel::GuestProgram MakeMatrix(uint32_t n = 16, uint32_t seed = 0x1234567);

/** Shellsort of `m` longwords (m >= 2). */
kernel::GuestProgram MakeSort(uint32_t m = 600, uint32_t seed = 0x2345678);

/** Cons-list build + `iters` x (sum + reverse) over `cells` cells. */
kernel::GuestProgram MakeListProc(uint32_t cells = 400, uint32_t iters = 24,
                                  uint32_t seed = 0x3456789);

/** Byte-scan over a `bytes`-sized buffer, `passes` times. */
kernel::GuestProgram MakeGrep(uint32_t bytes = 8192, uint32_t passes = 6,
                              uint32_t seed = 0x456789a);

/** Hash-table insert/probe of `tokens` tokens (256 chains). */
kernel::GuestProgram MakeHash(uint32_t tokens = 2500,
                              uint32_t seed = 0x56789ab);

/** Butterfly passes over `size` longwords; `size` a power of two >= 4. */
kernel::GuestProgram MakeFft(uint32_t size = 512, uint32_t seed = 0x6789abc);

/** Text-editor flavour: LOCC line scanning, MOVC3 yanks, CMPC3 verifies. */
kernel::GuestProgram MakeEditor(uint32_t lines = 40, uint32_t passes = 4,
                                uint32_t seed = 0x789abcd);

/** Event-queue flavour: INSQUE/REMQUE work queue with CASEL dispatch. */
kernel::GuestProgram MakeQueueSim(uint32_t events = 600,
                                  uint32_t seed = 0x89abcde);

/**
 * A producer/consumer pair communicating `count` bytes through the kernel
 * mailbox (kSend/kRecv with yield-on-contention). Returns {producer,
 * consumer}; boot them together. Heavy on system-call traffic.
 */
std::vector<kernel::GuestProgram> MakePipelinePair(
    uint32_t count = 400, uint32_t seed = 0x9abcdef);

/**
 * Syscall-storm server loop: `requests` iterations of getpid + mailbox
 * send/recv with periodic yields. Nearly every fourth instruction is a
 * kernel entry or exit.
 */
kernel::GuestProgram MakeServer(uint32_t requests = 300,
                                uint32_t seed = 0xa012345);

/**
 * DMA-heavy I/O scenario: `transfers` page-sized kDmaCopy transfers, each
 * paced by a compute loop long enough that the transfer-complete interrupt
 * lands mid-computation, then verified word-by-word.
 */
kernel::GuestProgram MakeIoStorm(uint32_t transfers = 40,
                                 uint32_t seed = 0xb123456);

/**
 * Fork-heavy shell flavour: the parent forks `children` short-lived
 * compute bursts (retrying with yields when the process table is full)
 * and every child exits via CHMK #0.
 */
kernel::GuestProgram MakeForkWave(uint32_t children = 12,
                                  uint32_t seed = 0xc234567);

/**
 * TB thrasher: `passes` sequential sweeps touching one word in each of
 * `pages` pages. Size `pages` at a multiple of the simulated TB capacity
 * (sets x ways; the default machine holds 64 entries) so steady-state
 * sweeps miss on every access.
 */
kernel::GuestProgram MakeTlbThrash(uint32_t pages = 192, uint32_t passes = 8,
                                   uint32_t seed = 0xd345678);

/**
 * Self-modifying code: a hand-assembled `MOVL #imm, r0; RSB` routine whose
 * immediate field the main loop rewrites before every JSB — `rewrites`
 * stores into the program's own text page, each followed by a call that
 * must observe the new bytes.
 */
kernel::GuestProgram MakeSmc(uint32_t rewrites = 400,
                             uint32_t seed = 0xe456789);

/** Names accepted by MakeWorkload. */
const std::vector<std::string>& AllWorkloadNames();

/**
 * Builds a workload by name with its main size parameter multiplied by
 * `scale` (>= 1). Fatal on an unknown name.
 */
kernel::GuestProgram MakeWorkload(const std::string& name,
                                  uint32_t scale = 1);

/** A standard three-process mix used by several experiments. */
std::vector<kernel::GuestProgram> StandardMix(uint32_t scale = 1);

}  // namespace atum::workloads

#endif  // ATUM_WORKLOADS_WORKLOADS_H_
