#include "io/posix.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace atum::io {

util::Status
ErrnoStatus(int err, const std::string& context)
{
    const std::string message = context + ": " + std::strerror(err);
    switch (err) {
      case ENOSPC:
#ifdef EDQUOT
      case EDQUOT:
#endif
        return util::NoSpace(message);
      case ENOENT:
        return util::NotFound(message);
      case EINTR:
        return util::Interrupted(message);
      default:
        return util::IoError(message);
    }
}

util::StatusOr<int>
RetryOpen(const std::string& path, int flags, mode_t mode)
{
    for (;;) {
        const int fd = ::open(path.c_str(), flags, mode);
        if (fd >= 0)
            return fd;
        if (errno != EINTR)
            return ErrnoStatus(errno, "open " + path);
    }
}

util::Status
RetryWriteAll(int fd, const void* data, size_t len, const std::string& path)
{
    const auto* p = static_cast<const uint8_t*>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ErrnoStatus(errno, "write " + path);
        }
        // A short write without an errno (e.g. just under the quota edge)
        // is legal; keep pushing the remainder.
        p += n;
        len -= static_cast<size_t>(n);
    }
    return util::OkStatus();
}

util::StatusOr<size_t>
RetryRead(int fd, void* data, size_t len, const std::string& path)
{
    for (;;) {
        const ssize_t n = ::read(fd, data, len);
        if (n >= 0)
            return static_cast<size_t>(n);
        if (errno != EINTR)
            return ErrnoStatus(errno, "read " + path);
    }
}

util::Status
RetryFsync(int fd, const std::string& path)
{
    while (::fsync(fd) != 0) {
        if (errno != EINTR)
            return ErrnoStatus(errno, "fsync " + path);
    }
    return util::OkStatus();
}

util::Status
CloseFd(int fd, const std::string& path)
{
    // POSIX leaves the fd state unspecified after EINTR; on Linux the
    // descriptor is gone either way, and retrying risks closing a
    // recycled fd. Treat EINTR as success.
    if (::close(fd) != 0 && errno != EINTR)
        return ErrnoStatus(errno, "close " + path);
    return util::OkStatus();
}

}  // namespace atum::io
