#ifndef ATUM_IO_CHAOS_H_
#define ATUM_IO_CHAOS_H_

/**
 * @file
 * Deterministic fault injection at the Vfs seam.
 *
 * A ChaosSchedule is a small, serializable program of faults — "the 57th
 * write returns ENOSPC", "power-cut immediately after the 2nd rename" —
 * and ChaosVfs is a Vfs decorator that executes it over a MemVfs. Because
 * the capture pipeline is deterministic and the schedule is data, every
 * failure found by a seeded campaign is replayable from a small text file
 * (the repro artifact tools/atum-chaos emits), and a regression corpus of
 * such files is replayed by tests/chaos_test.cc forever after.
 *
 * Schedule file format (docs/CHAOS.md):
 *
 *   # any comment
 *   seed 42
 *   campaign powercut,enospc
 *   op fail-write 57 nospace      # Nth op of the class | error class
 *   op short-write 30 7           # keep only 7 bytes of write #30
 *   op flip-write 9 100           # flip byte 100 of write #9 (silent)
 *   op power-cut-write 133        # cut before write #133 lands
 *   op fail-sync 2 io
 *   op power-cut-sync 1           # cut before fsync #1 commits
 *   op fail-read 3 io
 *   op flip-read 5 17             # flip byte 17 of read #5 (readback rot)
 *   op fail-rename 1 io
 *   op power-cut-rename 1         # cut right AFTER rename #1 (torn publish)
 *   op fail-unlink 1 io
 *   op fail-dirsync 1 io
 *   op cut-send 3                 # connection reset at send #3
 *   op short-recv 2 5             # recv #2 returns at most 5 bytes
 *   op stall-recv 4               # recv #4 stalls past the deadline
 *   op dup-request 2              # client duplicates request #2
 *   op kill-serve 3               # daemon SIGKILLed before request #3
 *
 * Indices are 1-based per operation class. A power cut latches: the
 * durable state is snapshotted at the cut and every later operation fails
 * kUnavailable — the process is dead, it just hasn't noticed. The
 * companion stop flag (cut_flag) plugs into SupervisorOptions.stop_flag
 * so the capture loop winds down at its next slice boundary.
 */

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/mem_vfs.h"
#include "io/vfs.h"
#include "util/status.h"

namespace atum::io {

enum class ChaosOpKind : uint8_t {
    kFailWrite,
    kShortWrite,
    kFlipWrite,
    kPowerCutWrite,
    kFailSync,
    kPowerCutSync,
    kFailRead,
    kFlipRead,
    kFailRename,
    kPowerCutRename,
    kFailUnlink,
    kFailDirSync,
    // Network stream faults (io/stream.h ChaosNet), indexed on the
    // connection's send/recv operation counters:
    kFailSend,    ///< send #at returns the error class
    kShortSend,   ///< send #at accepts only `arg` bytes (legal partial)
    kFlipSend,    ///< byte `arg` of send #at flipped in flight (silent)
    kCutSend,     ///< connection drops at send #at (reset, latches)
    kFailRecv,    ///< recv #at returns the error class
    kShortRecv,   ///< recv #at returns at most `arg` bytes
    kFlipRecv,    ///< byte `arg` of recv #at flipped in flight (silent)
    kCutRecv,     ///< connection drops at recv #at (reset, latches)
    kStallRecv,   ///< recv #at stalls past the read deadline
    // Drill-level ops, indexed on the scripted client request counter
    // (consumed by the net drill harness, not the streams):
    kDupRequest,  ///< client resends request #at (same idempotency token)
    kKillServe,   ///< daemon dies (SIGKILL-style) before request #at
};

/** Stable schedule-file token ("fail-write") for one kind. */
const char* ChaosOpKindName(ChaosOpKind kind);

struct ChaosOp {
    ChaosOpKind kind = ChaosOpKind::kFailWrite;
    /** 1-based index on the kind's operation-class counter. */
    uint64_t at = 1;
    /** short-write: bytes kept; flip-*: byte index to flip. */
    uint64_t arg = 0;
    /** Injected error class for the fail-* kinds. */
    util::StatusCode error = util::StatusCode::kIoError;
};

/** How many operations of each class a run performed (probe output). */
struct OpCounts {
    uint64_t writes = 0;
    uint64_t syncs = 0;
    uint64_t reads = 0;
    uint64_t renames = 0;
    uint64_t unlinks = 0;
    uint64_t dirsyncs = 0;
    // Stream classes (ChaosNet): one send per Write call, one recv per
    // Read call, one request per scripted client message.
    uint64_t sends = 0;
    uint64_t recvs = 0;
    uint64_t requests = 0;
};

/** A deterministic fault program plus its provenance. */
struct ChaosSchedule {
    uint64_t seed = 0;
    std::vector<std::string> campaigns;
    std::vector<ChaosOp> ops;

    /** Canonical schedule-file text (round-trips through Parse). */
    std::string Serialize() const;

    /** Parses schedule-file text; unknown directives are errors. */
    static util::StatusOr<ChaosSchedule> Parse(const std::string& text);

    /**
     * Rolls a random schedule for `seed` from the named campaigns
     * ("powercut", "enospc", "torn-rename", "eintr", "bitflip" on the
     * Vfs seam; "net-flaky", "net-cut", "net-flip", "net-stall",
     * "net-dup", "net-kill" on the stream seam), aiming the fault
     * indices inside the operation counts a fault-free probe run
     * measured. Equal inputs produce equal schedules.
     */
    static util::StatusOr<ChaosSchedule> Random(
        uint64_t seed, const std::vector<std::string>& campaigns,
        const OpCounts& probe);
};

/**
 * The fault-injecting Vfs decorator. Wraps a MemVfs (power cuts need the
 * durable/volatile split) and executes one ChaosSchedule; with an empty
 * schedule it is a pure pass-through that counts operations (the probe).
 */
class ChaosVfs : public Vfs
{
  public:
    ChaosVfs(MemVfs& base, ChaosSchedule schedule);

    util::StatusOr<std::unique_ptr<WritableFile>> Create(
        const std::string& path) override;
    util::StatusOr<std::unique_ptr<WritableFile>> OpenForAppendAt(
        const std::string& path, uint64_t offset) override;
    util::StatusOr<std::unique_ptr<ReadableFile>> OpenRead(
        const std::string& path) override;
    util::Status Rename(const std::string& from,
                        const std::string& to) override;
    util::Status Unlink(const std::string& path) override;
    util::Status DirSync(const std::string& path) override;
    /** Not fault-scheduled (recovery's eyes must be reliable), but dead
     *  after a power cut like everything else. */
    util::StatusOr<std::vector<std::string>> ListDir(
        const std::string& dir) override;
    const char* name() const override { return "chaos"; }

    /** Operation tallies so far (the probe's product). */
    const OpCounts& counts() const { return counts_; }
    /** Schedule ops that actually triggered. */
    uint32_t faults_fired() const { return faults_fired_; }

    bool power_cut_fired() const { return power_cut_; }
    /** Durable state at the instant of the cut (valid after it fired). */
    const MemVfs::Snapshot& snapshot() const { return snapshot_; }
    /**
     * Latched to 1 when the power cut fires; hand it to
     * SupervisorOptions.stop_flag so the doomed capture loop stops at its
     * next slice instead of grinding against a dead filesystem.
     */
    volatile std::sig_atomic_t* cut_flag() { return &cut_flag_; }

  private:
    class ChaosWritableFile;
    class ChaosReadableFile;

    /** First unfired op of `kind` scheduled at index `at`, else null. */
    const ChaosOp* Take(ChaosOpKind kind, uint64_t at);
    util::Status InjectedError(const ChaosOp& op, const char* what);
    void FireCut();
    util::Status DeadStatus(const char* what) const;

    MemVfs& base_;
    ChaosSchedule schedule_;
    std::vector<bool> fired_;
    OpCounts counts_;
    uint32_t faults_fired_ = 0;
    bool power_cut_ = false;
    MemVfs::Snapshot snapshot_;
    volatile std::sig_atomic_t cut_flag_ = 0;
};

}  // namespace atum::io

#endif  // ATUM_IO_CHAOS_H_
