#include "io/mem_vfs.h"

#include <cstring>

namespace atum::io {

class MemVfs::MemWritableFile : public WritableFile
{
  public:
    MemWritableFile(MemVfs* vfs, std::string path,
                    std::shared_ptr<Inode> inode)
        : vfs_(vfs), path_(std::move(path)), inode_(std::move(inode))
    {
    }

    util::Status Write(const void* data, size_t len) override
    {
        if (closed_)
            return util::FailedPrecondition("write to closed file ", path_);
        const auto* p = static_cast<const uint8_t*>(data);
        inode_->data.insert(inode_->data.end(), p, p + len);
        return util::OkStatus();
    }

    util::Status Sync() override
    {
        if (closed_)
            return util::FailedPrecondition("fsync of closed file ", path_);
        inode_->durable = inode_->data;
        inode_->synced = true;
        // The journal commits a new file's directory entry along with its
        // data — but only under the name it still holds; a rename stays
        // volatile until the directory itself is synced.
        auto it = vfs_->live_.find(path_);
        if (it != vfs_->live_.end() && it->second == inode_)
            vfs_->durable_[path_] = inode_;
        return util::OkStatus();
    }

    util::Status Close() override
    {
        closed_ = true;
        return util::OkStatus();
    }

  private:
    MemVfs* vfs_;
    std::string path_;
    std::shared_ptr<Inode> inode_;
    bool closed_ = false;
};

class MemVfs::MemReadableFile : public ReadableFile
{
  public:
    explicit MemReadableFile(std::vector<uint8_t> bytes)
        : bytes_(std::move(bytes))
    {
    }

    util::StatusOr<size_t> Read(void* data, size_t len) override
    {
        const size_t avail = bytes_.size() - pos_;
        const size_t n = len < avail ? len : avail;
        std::memcpy(data, bytes_.data() + pos_, n);
        pos_ += n;
        return n;
    }

  private:
    std::vector<uint8_t> bytes_;
    size_t pos_ = 0;
};

MemVfs::MemVfs(const Snapshot& s)
{
    for (const auto& [path, bytes] : s.files) {
        auto inode = std::make_shared<Inode>();
        inode->data = bytes;
        inode->durable = bytes;
        inode->synced = true;
        live_[path] = inode;
        durable_[path] = inode;
    }
}

std::shared_ptr<MemVfs::Inode>
MemVfs::Find(const std::string& path) const
{
    auto it = live_.find(path);
    return it == live_.end() ? nullptr : it->second;
}

util::StatusOr<std::unique_ptr<WritableFile>>
MemVfs::Create(const std::string& path)
{
    std::shared_ptr<Inode> inode = Find(path);
    if (inode != nullptr) {
        // O_TRUNC on an existing file truncates the same inode; the old
        // durable content survives a crash until the next Sync.
        inode->data.clear();
    } else {
        inode = std::make_shared<Inode>();
        live_[path] = inode;
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<MemWritableFile>(this, path, inode));
}

util::StatusOr<std::unique_ptr<WritableFile>>
MemVfs::OpenForAppendAt(const std::string& path, uint64_t offset)
{
    std::shared_ptr<Inode> inode = Find(path);
    if (inode == nullptr)
        return util::NotFound("no such trace file to resume: ", path);
    if (inode->data.size() < offset) {
        return util::DataLoss(
            path, " is shorter (", inode->data.size(), " bytes) than the "
            "checkpoint's ", offset, "-byte high-water mark; the trace and "
            "checkpoint do not belong together");
    }
    inode->data.resize(offset);
    return std::unique_ptr<WritableFile>(
        std::make_unique<MemWritableFile>(this, path, inode));
}

util::StatusOr<std::unique_ptr<ReadableFile>>
MemVfs::OpenRead(const std::string& path)
{
    std::shared_ptr<Inode> inode = Find(path);
    if (inode == nullptr)
        return util::NotFound("no such file: ", path);
    return std::unique_ptr<ReadableFile>(
        std::make_unique<MemReadableFile>(inode->data));
}

util::Status
MemVfs::Rename(const std::string& from, const std::string& to)
{
    auto it = live_.find(from);
    if (it == live_.end())
        return util::NotFound("rename ", from, ": no such file");
    live_[to] = it->second;
    live_.erase(from);
    return util::OkStatus();
}

util::Status
MemVfs::Unlink(const std::string& path)
{
    if (live_.erase(path) == 0)
        return util::NotFound("unlink ", path, ": no such file");
    return util::OkStatus();
}

util::Status
MemVfs::DirSync(const std::string& path)
{
    const std::string dir = DirOf(path);
    // Commit the volatile namespace of this directory to the durable
    // view: renames land, unlinked names disappear.
    for (auto it = durable_.begin(); it != durable_.end();) {
        if (DirOf(it->first) == dir && live_.find(it->first) == live_.end())
            it = durable_.erase(it);
        else
            ++it;
    }
    for (const auto& [name, inode] : live_) {
        if (DirOf(name) == dir)
            durable_[name] = inode;
    }
    return util::OkStatus();
}

util::StatusOr<std::vector<std::string>>
MemVfs::ListDir(const std::string& dir)
{
    // live_ is an ordered map over full paths, so the basenames of one
    // directory's files come out already sorted.
    std::vector<std::string> names;
    for (const auto& [name, inode] : live_) {
        if (DirOf(name) == dir)
            names.push_back(name.substr(name.find_last_of('/') + 1));
    }
    return names;
}

MemVfs::Snapshot
MemVfs::SnapshotDurable() const
{
    Snapshot s;
    // An entry whose inode was never synced survives as an empty file:
    // the name was committed (DirSync) but the bytes never were.
    for (const auto& [name, inode] : durable_)
        s.files[name] = inode->durable;
    return s;
}

bool
MemVfs::Exists(const std::string& path) const
{
    return Find(path) != nullptr;
}

util::StatusOr<std::vector<uint8_t>>
MemVfs::ReadAll(const std::string& path) const
{
    std::shared_ptr<Inode> inode = Find(path);
    if (inode == nullptr)
        return util::NotFound("no such file: ", path);
    return inode->data;
}

std::vector<std::string>
MemVfs::List() const
{
    std::vector<std::string> names;
    names.reserve(live_.size());
    for (const auto& [name, inode] : live_)
        names.push_back(name);
    return names;
}

}  // namespace atum::io
