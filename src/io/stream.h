#ifndef ATUM_IO_STREAM_H_
#define ATUM_IO_STREAM_H_

/**
 * @file
 * The Stream seam — a connection as an interface, mirroring io/vfs.h.
 *
 * The serve daemon's wire protocol used to talk to file descriptors
 * directly, which made its robustness claims untestable: nothing could
 * prove the daemon survives a mid-frame disconnect, a trickling
 * slowloris peer or a bit flip in flight without a hostile network to
 * hand. This seam fixes that the same way io::Vfs fixed durability:
 *
 *  - FdStream   passes through to a connected socket/pipe fd via the
 *               EINTR-retrying wrappers in io/posix.h, with an optional
 *               per-operation deadline (poll before each read/write);
 *  - PipeStream an in-memory one-direction byte queue (the loopback
 *               wire a drill runs over);
 *  - ChaosNet   a simulated duplex connection over two PipeStreams,
 *               executing the net-* ops of a ChaosSchedule (io/chaos.h):
 *               short reads/writes, mid-frame disconnects, stalls, bit
 *               flips — deterministically, so every failure a seeded
 *               campaign finds replays from a small text file.
 *
 * Operations are deliberately few: Read (0 at orderly close), Write
 * (partial counts are legal — callers loop via WriteAll). Framing lives
 * above the seam (serve/protocol.h).
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "io/chaos.h"
#include "util/status.h"

namespace atum::io {

/** A bidirectional byte stream end (one side of a connection). */
class Stream
{
  public:
    virtual ~Stream() = default;

    /** Reads up to `len` bytes; returns the count read, 0 at orderly
     *  close (or, for PipeStream, when the queue is empty). */
    virtual util::StatusOr<size_t> Read(void* data, size_t len) = 0;

    /** Writes up to `len` bytes; returns the count accepted, which may
     *  be less than `len` (a legal partial write — loop or WriteAll). */
    virtual util::StatusOr<size_t> Write(const void* data, size_t len) = 0;

    /** Short implementation name for logs ("fd", "pipe", "chaos"). */
    virtual const char* name() const = 0;
};

/** Writes all `len` bytes through `stream`, looping across partials. */
util::Status WriteAll(Stream& stream, const void* data, size_t len);

/**
 * A borrowed connected file descriptor as a Stream. With a deadline
 * (`op_timeout_ms >= 0`) every Read/Write polls first and fails
 * kUnavailable when the peer stays silent/stuffed past it — the
 * slowloris defence. The fd is NOT closed on destruction.
 */
class FdStream : public Stream
{
  public:
    explicit FdStream(int fd, int op_timeout_ms = -1)
        : fd_(fd), op_timeout_ms_(op_timeout_ms)
    {
    }

    util::StatusOr<size_t> Read(void* data, size_t len) override;
    util::StatusOr<size_t> Write(const void* data, size_t len) override;
    const char* name() const override { return "fd"; }

    int fd() const { return fd_; }

  private:
    int fd_;
    int op_timeout_ms_;
};

/** A one-direction in-memory byte queue: what one peer wrote and the
 *  other has not yet read. Read returns 0 when the queue is empty. */
class PipeStream : public Stream
{
  public:
    util::StatusOr<size_t> Read(void* data, size_t len) override;
    util::StatusOr<size_t> Write(const void* data, size_t len) override;
    const char* name() const override { return "pipe"; }

    size_t buffered() const { return buf_.size(); }
    void Clear() { buf_.clear(); }

  private:
    std::string buf_;
};

/**
 * A simulated client<->server connection executing one ChaosSchedule's
 * net-* ops. Both directions share one send counter (every Write on
 * either end) and one recv counter (every Read), so a probe run's
 * OpCounts aim fault indices exactly like the Vfs drills.
 *
 * A cut-send/cut-recv latches `disconnected` — every later operation on
 * the *current* connection fails kUnavailable, exactly as a reset
 * socket would. ResetConnection() models the client dialing again:
 * queues drain, the latch clears, but fired ops stay fired and the
 * counters keep counting (the network remembers nothing; the schedule
 * remembers everything).
 */
class ChaosNet
{
  public:
    explicit ChaosNet(ChaosSchedule schedule);
    ~ChaosNet();  // out of line: ChaosEnd is incomplete here

    /** The client's outgoing wire (server reads the other end). */
    Stream& client_to_server() { return c2s_; }
    /** The server's outgoing wire (client reads the other end). */
    Stream& server_to_client() { return s2c_; }

    /** A fresh connection attempt over the same hostile network. */
    void ResetConnection();

    bool disconnected() const { return disconnected_; }
    const OpCounts& counts() const { return counts_; }
    uint32_t faults_fired() const { return faults_fired_; }

    // -- drill-level ops (consumed by the harness, not the streams) ---------

    /** Advances the scripted-request counter; returns its new value. */
    uint64_t NextRequest() { return ++counts_.requests; }
    /** True when request #`request_index` is scheduled for duplication. */
    bool TakeDupRequest(uint64_t request_index);
    /** True when the daemon dies before request #`request_index`. */
    bool TakeKillServe(uint64_t request_index);

  private:
    class ChaosEnd;

    const ChaosOp* Take(ChaosOpKind kind, uint64_t at);
    util::Status InjectedError(const ChaosOp& op, const char* what);

    util::StatusOr<size_t> Send(PipeStream& wire, const void* data,
                                size_t len);
    util::StatusOr<size_t> Recv(PipeStream& wire, void* data, size_t len);

    ChaosSchedule schedule_;
    std::vector<bool> fired_;
    OpCounts counts_;
    uint32_t faults_fired_ = 0;
    bool disconnected_ = false;

    PipeStream c2s_wire_;
    PipeStream s2c_wire_;
    std::unique_ptr<ChaosEnd> c2s_owned_;
    std::unique_ptr<ChaosEnd> s2c_owned_;
    Stream& c2s_;
    Stream& s2c_;
};

}  // namespace atum::io

#endif  // ATUM_IO_STREAM_H_
