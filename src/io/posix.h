#ifndef ATUM_IO_POSIX_H_
#define ATUM_IO_POSIX_H_

/**
 * @file
 * Thin, typed wrappers over the raw POSIX file calls.
 *
 * Every syscall the capture path makes goes through these helpers, which
 * fold the two classic loose ends into the Status contract:
 *
 *  - EINTR: a signal arriving mid-call must not tear a trace chunk or a
 *    checkpoint section, so read/write/fsync/open/close retry the call
 *    until it completes or fails for a real reason;
 *  - errno classes: a full disk (ENOSPC/EDQUOT) is kNoSpace — retrying
 *    in microseconds is futile and the tracer should degrade instead of
 *    burning backoff; a missing file is kNotFound; everything else is
 *    kIoError with the strerror text attached.
 *
 * RealVfs (io/vfs.h) is the only intended caller; code above the Vfs seam
 * never touches a file descriptor.
 */

#include <sys/types.h>

#include <cstddef>
#include <string>

#include "util/status.h"

namespace atum::io {

/** Maps an errno value to the typed Status classes described above;
 *  `context` args prefix the message ("open /x: No such file..."). */
util::Status ErrnoStatus(int err, const std::string& context);

/** open(2) with EINTR retry; returns the fd. */
util::StatusOr<int> RetryOpen(const std::string& path, int flags,
                              mode_t mode = 0644);

/** Writes all `len` bytes, continuing across EINTR and partial writes. */
util::Status RetryWriteAll(int fd, const void* data, size_t len,
                           const std::string& path);

/** One read(2) with EINTR retry; returns bytes read (0 at end of file). */
util::StatusOr<size_t> RetryRead(int fd, void* data, size_t len,
                                 const std::string& path);

/** fsync(2) with EINTR retry. */
util::Status RetryFsync(int fd, const std::string& path);

/** close(2); EINTR from close is treated as closed (Linux semantics). */
util::Status CloseFd(int fd, const std::string& path);

}  // namespace atum::io

#endif  // ATUM_IO_POSIX_H_
