#include "io/vfs.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "io/posix.h"
#include "util/logging.h"

namespace atum::io {

std::string
DirOf(const std::string& path)
{
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

namespace {

class RealWritableFile : public WritableFile
{
  public:
    RealWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path))
    {
    }

    ~RealWritableFile() override
    {
        const util::Status status = Close();
        if (!status.ok())
            Warn("closing ", path_, ": ", status.ToString());
    }

    util::Status Write(const void* data, size_t len) override
    {
        if (fd_ < 0)
            return util::FailedPrecondition("write to closed file ", path_);
        return RetryWriteAll(fd_, data, len, path_);
    }

    util::Status Sync() override
    {
        if (fd_ < 0)
            return util::FailedPrecondition("fsync of closed file ", path_);
        return RetryFsync(fd_, path_);
    }

    util::Status Close() override
    {
        if (fd_ < 0)
            return util::OkStatus();
        const util::Status status = CloseFd(fd_, path_);
        fd_ = -1;
        return status;
    }

  private:
    int fd_;
    std::string path_;
};

class RealReadableFile : public ReadableFile
{
  public:
    RealReadableFile(int fd, std::string path) : fd_(fd), path_(std::move(path))
    {
    }

    ~RealReadableFile() override
    {
        if (fd_ >= 0)
            (void)CloseFd(fd_, path_);
    }

    util::StatusOr<size_t> Read(void* data, size_t len) override
    {
        return RetryRead(fd_, data, len, path_);
    }

  private:
    int fd_;
    std::string path_;
};

class RealVfsImpl : public Vfs
{
  public:
    util::StatusOr<std::unique_ptr<WritableFile>> Create(
        const std::string& path) override
    {
        util::StatusOr<int> fd =
            RetryOpen(path, O_WRONLY | O_CREAT | O_TRUNC);
        if (!fd.ok())
            return fd.status();
        return std::unique_ptr<WritableFile>(
            std::make_unique<RealWritableFile>(*fd, path));
    }

    util::StatusOr<std::unique_ptr<WritableFile>> OpenForAppendAt(
        const std::string& path, uint64_t offset) override
    {
        util::StatusOr<int> fd = RetryOpen(path, O_WRONLY);
        if (!fd.ok())
            return fd.status();
        auto fail = [&](util::Status status)
            -> util::StatusOr<std::unique_ptr<WritableFile>> {
            (void)CloseFd(*fd, path);
            return status;
        };
        struct stat st;
        if (::fstat(*fd, &st) != 0)
            return fail(ErrnoStatus(errno, "stat " + path));
        if (static_cast<uint64_t>(st.st_size) < offset) {
            return fail(util::DataLoss(
                path, " is shorter (", st.st_size, " bytes) than the "
                "checkpoint's ", offset, "-byte high-water mark; the trace "
                "and checkpoint do not belong together"));
        }
        if (::ftruncate(*fd, static_cast<off_t>(offset)) != 0)
            return fail(ErrnoStatus(errno, "truncate " + path));
        if (::lseek(*fd, static_cast<off_t>(offset), SEEK_SET) < 0)
            return fail(ErrnoStatus(errno, "seek " + path));
        return std::unique_ptr<WritableFile>(
            std::make_unique<RealWritableFile>(*fd, path));
    }

    util::StatusOr<std::unique_ptr<ReadableFile>> OpenRead(
        const std::string& path) override
    {
        util::StatusOr<int> fd = RetryOpen(path, O_RDONLY);
        if (!fd.ok())
            return fd.status();
        return std::unique_ptr<ReadableFile>(
            std::make_unique<RealReadableFile>(*fd, path));
    }

    util::Status Rename(const std::string& from, const std::string& to)
        override
    {
        if (std::rename(from.c_str(), to.c_str()) != 0)
            return ErrnoStatus(errno, "rename " + from + " -> " + to);
        return util::OkStatus();
    }

    util::Status Unlink(const std::string& path) override
    {
        if (::unlink(path.c_str()) != 0)
            return ErrnoStatus(errno, "unlink " + path);
        return util::OkStatus();
    }

    util::Status DirSync(const std::string& path) override
    {
        const std::string dir = DirOf(path);
        util::StatusOr<int> fd = RetryOpen(dir, O_RDONLY | O_DIRECTORY);
        if (!fd.ok())
            return fd.status();
        util::Status status = RetryFsync(*fd, dir);
        const util::Status close_status = CloseFd(*fd, dir);
        if (status.ok())
            status = close_status;
        return status;
    }

    util::StatusOr<std::vector<std::string>> ListDir(
        const std::string& dir) override
    {
        DIR* d = ::opendir(dir.c_str());
        if (d == nullptr)
            return ErrnoStatus(errno, "opendir " + dir);
        std::vector<std::string> names;
        errno = 0;
        while (struct dirent* entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            if (name == "." || name == "..")
                continue;
            struct stat st;
            const std::string full = dir + "/" + name;
            if (::stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode))
                names.push_back(name);
            errno = 0;
        }
        const int read_errno = errno;
        ::closedir(d);
        if (read_errno != 0)
            return ErrnoStatus(read_errno, "readdir " + dir);
        std::sort(names.begin(), names.end());
        return names;
    }

    const char* name() const override { return "real"; }
};

}  // namespace

Vfs&
RealVfs()
{
    static RealVfsImpl* vfs = new RealVfsImpl;
    return *vfs;
}

}  // namespace atum::io
