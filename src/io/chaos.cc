#include "io/chaos.h"

#include <algorithm>
#include <sstream>

#include "util/rng.h"

namespace atum::io {

namespace {

struct KindInfo {
    ChaosOpKind kind;
    const char* name;
    bool takes_error;  ///< third token is an error class
    bool takes_arg;    ///< third token is a numeric argument
};

constexpr KindInfo kKinds[] = {
    {ChaosOpKind::kFailWrite, "fail-write", true, false},
    {ChaosOpKind::kShortWrite, "short-write", false, true},
    {ChaosOpKind::kFlipWrite, "flip-write", false, true},
    {ChaosOpKind::kPowerCutWrite, "power-cut-write", false, false},
    {ChaosOpKind::kFailSync, "fail-sync", true, false},
    {ChaosOpKind::kPowerCutSync, "power-cut-sync", false, false},
    {ChaosOpKind::kFailRead, "fail-read", true, false},
    {ChaosOpKind::kFlipRead, "flip-read", false, true},
    {ChaosOpKind::kFailRename, "fail-rename", true, false},
    {ChaosOpKind::kPowerCutRename, "power-cut-rename", false, false},
    {ChaosOpKind::kFailUnlink, "fail-unlink", true, false},
    {ChaosOpKind::kFailDirSync, "fail-dirsync", true, false},
    {ChaosOpKind::kFailSend, "fail-send", true, false},
    {ChaosOpKind::kShortSend, "short-send", false, true},
    {ChaosOpKind::kFlipSend, "flip-send", false, true},
    {ChaosOpKind::kCutSend, "cut-send", false, false},
    {ChaosOpKind::kFailRecv, "fail-recv", true, false},
    {ChaosOpKind::kShortRecv, "short-recv", false, true},
    {ChaosOpKind::kFlipRecv, "flip-recv", false, true},
    {ChaosOpKind::kCutRecv, "cut-recv", false, false},
    {ChaosOpKind::kStallRecv, "stall-recv", false, false},
    {ChaosOpKind::kDupRequest, "dup-request", false, false},
    {ChaosOpKind::kKillServe, "kill-serve", false, false},
};

const KindInfo*
FindKind(ChaosOpKind kind)
{
    for (const KindInfo& k : kKinds)
        if (k.kind == kind)
            return &k;
    return nullptr;
}

const KindInfo*
FindKind(const std::string& name)
{
    for (const KindInfo& k : kKinds)
        if (name == k.name)
            return &k;
    return nullptr;
}

const char*
ErrorToken(util::StatusCode code)
{
    switch (code) {
      case util::StatusCode::kNoSpace:
        return "nospace";
      case util::StatusCode::kInterrupted:
        return "intr";
      case util::StatusCode::kUnavailable:
        return "unavail";
      default:
        return "io";
    }
}

bool
ParseErrorToken(const std::string& token, util::StatusCode* code)
{
    if (token == "nospace")
        *code = util::StatusCode::kNoSpace;
    else if (token == "intr")
        *code = util::StatusCode::kInterrupted;
    else if (token == "unavail")
        *code = util::StatusCode::kUnavailable;
    else if (token == "io")
        *code = util::StatusCode::kIoError;
    else
        return false;
    return true;
}

}  // namespace

const char*
ChaosOpKindName(ChaosOpKind kind)
{
    const KindInfo* info = FindKind(kind);
    return info != nullptr ? info->name : "unknown";
}

std::string
ChaosSchedule::Serialize() const
{
    std::ostringstream out;
    out << "# atum-chaos schedule v1\n";
    out << "seed " << seed << "\n";
    if (!campaigns.empty()) {
        out << "campaign ";
        for (size_t i = 0; i < campaigns.size(); ++i)
            out << (i ? "," : "") << campaigns[i];
        out << "\n";
    }
    for (const ChaosOp& op : ops) {
        const KindInfo* info = FindKind(op.kind);
        out << "op " << info->name << " " << op.at;
        if (info->takes_error)
            out << " " << ErrorToken(op.error);
        else if (info->takes_arg)
            out << " " << op.arg;
        out << "\n";
    }
    return out.str();
}

util::StatusOr<ChaosSchedule>
ChaosSchedule::Parse(const std::string& text)
{
    ChaosSchedule schedule;
    std::istringstream in(text);
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (const size_t hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word))
            continue;
        if (word == "seed") {
            if (!(ls >> schedule.seed))
                return util::InvalidArgument("schedule line ", lineno,
                                             ": seed needs a number");
        } else if (word == "campaign") {
            std::string list;
            ls >> list;
            std::string item;
            std::istringstream items(list);
            while (std::getline(items, item, ','))
                if (!item.empty())
                    schedule.campaigns.push_back(item);
        } else if (word == "op") {
            std::string kind_name;
            ChaosOp op;
            if (!(ls >> kind_name >> op.at) || op.at == 0)
                return util::InvalidArgument(
                    "schedule line ", lineno,
                    ": op needs a kind and a 1-based index");
            const KindInfo* info = FindKind(kind_name);
            if (info == nullptr)
                return util::InvalidArgument("schedule line ", lineno,
                                             ": unknown op kind '",
                                             kind_name, "'");
            op.kind = info->kind;
            if (info->takes_error) {
                std::string token;
                if (ls >> token) {
                    if (!ParseErrorToken(token, &op.error))
                        return util::InvalidArgument(
                            "schedule line ", lineno, ": unknown error "
                            "class '", token, "' (io|nospace|intr|unavail)");
                }
            } else if (info->takes_arg) {
                if (!(ls >> op.arg))
                    return util::InvalidArgument("schedule line ", lineno,
                                                 ": ", kind_name,
                                                 " needs an argument");
            }
            schedule.ops.push_back(op);
        } else {
            return util::InvalidArgument("schedule line ", lineno,
                                         ": unknown directive '", word, "'");
        }
    }
    return schedule;
}

util::StatusOr<ChaosSchedule>
ChaosSchedule::Random(uint64_t seed,
                      const std::vector<std::string>& campaigns,
                      const OpCounts& probe)
{
    ChaosSchedule schedule;
    schedule.seed = seed;
    schedule.campaigns = campaigns;
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);

    // Uniform 1-based index into a measured operation count (>= 1 even
    // when the probe saw none, so the op simply never fires).
    auto idx = [&rng](uint64_t count) -> uint64_t {
        const auto bound = static_cast<uint32_t>(
            std::min<uint64_t>(std::max<uint64_t>(count, 1), UINT32_MAX));
        return 1 + rng.Below(bound);
    };
    auto add = [&schedule](ChaosOpKind kind, uint64_t at, uint64_t arg = 0,
                           util::StatusCode error =
                               util::StatusCode::kIoError) {
        schedule.ops.push_back(ChaosOp{kind, at, arg, error});
    };

    for (const std::string& campaign : campaigns) {
        if (campaign == "powercut") {
            if (probe.syncs > 0 && rng.NextDouble() < 0.3)
                add(ChaosOpKind::kPowerCutSync, idx(probe.syncs));
            else
                add(ChaosOpKind::kPowerCutWrite, idx(probe.writes));
        } else if (campaign == "enospc") {
            const uint64_t start = idx(probe.writes);
            const uint32_t burst = rng.Range(1, 8);
            for (uint32_t i = 0; i < burst; ++i)
                add(ChaosOpKind::kFailWrite, start + i, 0,
                    util::StatusCode::kNoSpace);
            if (probe.syncs > 0 && rng.NextDouble() < 0.3)
                add(ChaosOpKind::kFailSync, idx(probe.syncs), 0,
                    util::StatusCode::kNoSpace);
        } else if (campaign == "torn-rename") {
            if (probe.renames > 0) {
                if (rng.NextDouble() < 0.4)
                    add(ChaosOpKind::kFailRename, idx(probe.renames));
                add(ChaosOpKind::kPowerCutRename, idx(probe.renames));
            } else {
                add(ChaosOpKind::kPowerCutWrite, idx(probe.writes));
            }
        } else if (campaign == "eintr") {
            const uint32_t n = rng.Range(1, 3);
            for (uint32_t i = 0; i < n; ++i)
                add(ChaosOpKind::kFailWrite, idx(probe.writes), 0,
                    util::StatusCode::kInterrupted);
            if (probe.syncs > 0 && rng.NextDouble() < 0.5)
                add(ChaosOpKind::kFailSync, idx(probe.syncs), 0,
                    util::StatusCode::kInterrupted);
        } else if (campaign == "bitflip") {
            add(ChaosOpKind::kFlipWrite, idx(probe.writes),
                rng.Below(4096));
            if (probe.reads > 0 && rng.NextDouble() < 0.5)
                add(ChaosOpKind::kFlipRead, idx(probe.reads),
                    rng.Below(256));
        } else if (campaign == "net-flaky") {
            // Legal-but-hostile transport: tiny partial sends/recvs plus
            // a transient send failure — reassembly and retry fodder.
            add(ChaosOpKind::kShortSend, idx(probe.sends),
                1 + rng.Below(8));
            if (probe.recvs > 0 && rng.NextDouble() < 0.5)
                add(ChaosOpKind::kShortRecv, idx(probe.recvs),
                    1 + rng.Below(8));
            if (rng.NextDouble() < 0.4)
                add(ChaosOpKind::kFailSend, idx(probe.sends), 0,
                    util::StatusCode::kUnavailable);
        } else if (campaign == "net-cut") {
            // Mid-frame disconnect on one side: the client can never
            // know whether the request landed — the ambiguous retry.
            if (rng.NextDouble() < 0.5)
                add(ChaosOpKind::kCutSend, idx(probe.sends));
            else
                add(ChaosOpKind::kCutRecv, idx(probe.recvs));
        } else if (campaign == "net-flip") {
            add(ChaosOpKind::kFlipSend, idx(probe.sends), rng.Below(64));
            if (probe.recvs > 0 && rng.NextDouble() < 0.5)
                add(ChaosOpKind::kFlipRecv, idx(probe.recvs),
                    rng.Below(64));
        } else if (campaign == "net-stall") {
            add(ChaosOpKind::kStallRecv, idx(probe.recvs));
        } else if (campaign == "net-dup") {
            add(ChaosOpKind::kDupRequest, idx(probe.requests));
        } else if (campaign == "net-kill") {
            add(ChaosOpKind::kKillServe, idx(probe.requests));
        } else {
            return util::InvalidArgument(
                "unknown campaign '", campaign,
                "' (powercut|enospc|torn-rename|eintr|bitflip|net-flaky|"
                "net-cut|net-flip|net-stall|net-dup|net-kill)");
        }
    }
    return schedule;
}

// ---------------------------------------------------------------------------
// ChaosVfs.

class ChaosVfs::ChaosWritableFile : public WritableFile
{
  public:
    ChaosWritableFile(ChaosVfs* vfs, std::unique_ptr<WritableFile> inner,
                      std::string path)
        : vfs_(vfs), inner_(std::move(inner)), path_(std::move(path))
    {
    }

    util::Status Write(const void* data, size_t len) override
    {
        ChaosVfs& v = *vfs_;
        ++v.counts_.writes;
        if (v.power_cut_)
            return v.DeadStatus("write");
        if (v.Take(ChaosOpKind::kPowerCutWrite, v.counts_.writes) !=
            nullptr) {
            v.FireCut();
            return v.DeadStatus("write");
        }
        if (const ChaosOp* op =
                v.Take(ChaosOpKind::kFailWrite, v.counts_.writes))
            return v.InjectedError(*op, "write");
        if (const ChaosOp* op =
                v.Take(ChaosOpKind::kShortWrite, v.counts_.writes)) {
            const size_t keep =
                static_cast<size_t>(std::min<uint64_t>(op->arg, len));
            if (keep > 0)
                (void)inner_->Write(data, keep);
            return util::IoError("injected short write to ", path_,
                                 ": wrote ", keep, " of ", len, " bytes");
        }
        if (const ChaosOp* op =
                v.Take(ChaosOpKind::kFlipWrite, v.counts_.writes)) {
            // Silent in-flight corruption: the write "succeeds".
            const auto* p = static_cast<const uint8_t*>(data);
            std::vector<uint8_t> copy(p, p + len);
            if (len > 0)
                copy[static_cast<size_t>(op->arg % len)] ^= 0xFF;
            return inner_->Write(copy.data(), len);
        }
        return inner_->Write(data, len);
    }

    util::Status Sync() override
    {
        ChaosVfs& v = *vfs_;
        ++v.counts_.syncs;
        if (v.power_cut_)
            return v.DeadStatus("fsync");
        if (v.Take(ChaosOpKind::kPowerCutSync, v.counts_.syncs) != nullptr) {
            // The cut lands before the barrier commits: nothing new
            // becomes durable.
            v.FireCut();
            return v.DeadStatus("fsync");
        }
        if (const ChaosOp* op =
                v.Take(ChaosOpKind::kFailSync, v.counts_.syncs))
            return v.InjectedError(*op, "fsync");
        return inner_->Sync();
    }

    util::Status Close() override { return inner_->Close(); }

  private:
    ChaosVfs* vfs_;
    std::unique_ptr<WritableFile> inner_;
    std::string path_;
};

class ChaosVfs::ChaosReadableFile : public ReadableFile
{
  public:
    ChaosReadableFile(ChaosVfs* vfs, std::unique_ptr<ReadableFile> inner,
                      std::string path)
        : vfs_(vfs), inner_(std::move(inner)), path_(std::move(path))
    {
    }

    util::StatusOr<size_t> Read(void* data, size_t len) override
    {
        ChaosVfs& v = *vfs_;
        ++v.counts_.reads;
        if (v.power_cut_)
            return v.DeadStatus("read");
        if (const ChaosOp* op =
                v.Take(ChaosOpKind::kFailRead, v.counts_.reads))
            return v.InjectedError(*op, "read");
        const ChaosOp* flip = v.Take(ChaosOpKind::kFlipRead, v.counts_.reads);
        util::StatusOr<size_t> got = inner_->Read(data, len);
        if (got.ok() && flip != nullptr && *got > 0)
            static_cast<uint8_t*>(data)[static_cast<size_t>(
                flip->arg % *got)] ^= 0xFF;
        return got;
    }

  private:
    ChaosVfs* vfs_;
    std::unique_ptr<ReadableFile> inner_;
    std::string path_;
};

ChaosVfs::ChaosVfs(MemVfs& base, ChaosSchedule schedule)
    : base_(base), schedule_(std::move(schedule)),
      fired_(schedule_.ops.size(), false)
{
}

const ChaosOp*
ChaosVfs::Take(ChaosOpKind kind, uint64_t at)
{
    for (size_t i = 0; i < schedule_.ops.size(); ++i) {
        const ChaosOp& op = schedule_.ops[i];
        if (!fired_[i] && op.kind == kind && op.at == at) {
            fired_[i] = true;
            ++faults_fired_;
            return &op;
        }
    }
    return nullptr;
}

util::Status
ChaosVfs::InjectedError(const ChaosOp& op, const char* what)
{
    return util::Status(
        op.error, atum::internal::StrCat("injected ", ErrorToken(op.error),
                                         " fault on ", what, " #", op.at));
}

void
ChaosVfs::FireCut()
{
    snapshot_ = base_.SnapshotDurable();
    power_cut_ = true;
    cut_flag_ = 1;
}

util::Status
ChaosVfs::DeadStatus(const char* what) const
{
    return util::Unavailable("power cut: ", what,
                             " against a dead filesystem");
}

util::StatusOr<std::unique_ptr<WritableFile>>
ChaosVfs::Create(const std::string& path)
{
    if (power_cut_)
        return DeadStatus("create");
    util::StatusOr<std::unique_ptr<WritableFile>> inner = base_.Create(path);
    if (!inner.ok())
        return inner.status();
    return std::unique_ptr<WritableFile>(std::make_unique<ChaosWritableFile>(
        this, std::move(*inner), path));
}

util::StatusOr<std::unique_ptr<WritableFile>>
ChaosVfs::OpenForAppendAt(const std::string& path, uint64_t offset)
{
    if (power_cut_)
        return DeadStatus("open");
    util::StatusOr<std::unique_ptr<WritableFile>> inner =
        base_.OpenForAppendAt(path, offset);
    if (!inner.ok())
        return inner.status();
    return std::unique_ptr<WritableFile>(std::make_unique<ChaosWritableFile>(
        this, std::move(*inner), path));
}

util::StatusOr<std::unique_ptr<ReadableFile>>
ChaosVfs::OpenRead(const std::string& path)
{
    if (power_cut_)
        return DeadStatus("open");
    util::StatusOr<std::unique_ptr<ReadableFile>> inner =
        base_.OpenRead(path);
    if (!inner.ok())
        return inner.status();
    return std::unique_ptr<ReadableFile>(std::make_unique<ChaosReadableFile>(
        this, std::move(*inner), path));
}

util::Status
ChaosVfs::Rename(const std::string& from, const std::string& to)
{
    ++counts_.renames;
    if (power_cut_)
        return DeadStatus("rename");
    if (const ChaosOp* op =
            Take(ChaosOpKind::kFailRename, counts_.renames))
        return InjectedError(*op, "rename");
    if (Take(ChaosOpKind::kPowerCutRename, counts_.renames) != nullptr) {
        // The torn publish: the rename lands in the volatile namespace
        // and the call RETURNS SUCCESS — then the power dies before any
        // directory sync commits it. The caller believes the publish
        // happened; the durable namespace never heard of it. Only a
        // subsequent DirSync (which will fail, post-cut) can tell the
        // caller the truth — code that skips it reports a checkpoint
        // that does not exist.
        const util::Status status = base_.Rename(from, to);
        FireCut();
        return status;
    }
    return base_.Rename(from, to);
}

util::Status
ChaosVfs::Unlink(const std::string& path)
{
    ++counts_.unlinks;
    if (power_cut_)
        return DeadStatus("unlink");
    if (const ChaosOp* op = Take(ChaosOpKind::kFailUnlink, counts_.unlinks))
        return InjectedError(*op, "unlink");
    return base_.Unlink(path);
}

util::StatusOr<std::vector<std::string>>
ChaosVfs::ListDir(const std::string& dir)
{
    if (power_cut_)
        return DeadStatus("listdir");
    return base_.ListDir(dir);
}

util::Status
ChaosVfs::DirSync(const std::string& path)
{
    ++counts_.dirsyncs;
    if (power_cut_)
        return DeadStatus("dirsync");
    if (const ChaosOp* op =
            Take(ChaosOpKind::kFailDirSync, counts_.dirsyncs))
        return InjectedError(*op, "dirsync");
    return base_.DirSync(path);
}

}  // namespace atum::io
