#ifndef ATUM_IO_MEM_VFS_H_
#define ATUM_IO_MEM_VFS_H_

/**
 * @file
 * MemVfs — an in-memory filesystem that models *durability*, not just
 * storage.
 *
 * The point of the chaos subsystem is to answer "what survives a power
 * cut?", so MemVfs keeps two views of the world:
 *
 *  - the volatile view: what a running process observes (page cache);
 *  - the durable view: what would still exist after power loss.
 *
 * The rules, modeled on a journaling filesystem in its ordered mode
 * (documented in docs/CHAOS.md):
 *
 *  - Write   changes only the volatile content of an inode;
 *  - Sync    makes the inode's current content durable, and — if the
 *            file still carries the name it was created under — makes
 *            that directory entry durable too (the journal commits the
 *            creation with the data);
 *  - Rename/ change only the volatile namespace; the old binding stays
 *    Unlink  in the durable view until...
 *  - DirSync commits the parent directory's volatile namespace to the
 *            durable view (the fsync-the-directory step).
 *
 * SnapshotDurable() captures the durable view — the crash-consistent
 * state — and a MemVfs constructed from a snapshot is "the machine after
 * the power came back". ChaosVfs (io/chaos.h) uses exactly this pair to
 * simulate a cut at an arbitrary I/O operation.
 *
 * Single-threaded by design, like the capture loop that writes through it.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/vfs.h"

namespace atum::io {

class MemVfs : public Vfs
{
  public:
    /** The crash-consistent state: name -> durable content. */
    struct Snapshot {
        std::map<std::string, std::vector<uint8_t>> files;
    };

    MemVfs() = default;
    /** A filesystem as found after reboot: volatile == durable == `s`. */
    explicit MemVfs(const Snapshot& s);

    util::StatusOr<std::unique_ptr<WritableFile>> Create(
        const std::string& path) override;
    util::StatusOr<std::unique_ptr<WritableFile>> OpenForAppendAt(
        const std::string& path, uint64_t offset) override;
    util::StatusOr<std::unique_ptr<ReadableFile>> OpenRead(
        const std::string& path) override;
    util::Status Rename(const std::string& from,
                        const std::string& to) override;
    util::Status Unlink(const std::string& path) override;
    util::Status DirSync(const std::string& path) override;
    /** MemVfs has no directory inodes, so a dir with no files lists as
     *  empty rather than kNotFound. */
    util::StatusOr<std::vector<std::string>> ListDir(
        const std::string& dir) override;
    const char* name() const override { return "mem"; }

    /** What a power cut right now would leave behind. */
    Snapshot SnapshotDurable() const;

    // -- test/driver introspection (volatile view) --------------------------
    bool Exists(const std::string& path) const;
    util::StatusOr<std::vector<uint8_t>> ReadAll(const std::string& path) const;
    std::vector<std::string> List() const;

  private:
    struct Inode {
        std::vector<uint8_t> data;     ///< volatile content
        std::vector<uint8_t> durable;  ///< content as of the last Sync
        bool synced = false;           ///< ever fsynced at all
    };

    class MemWritableFile;
    class MemReadableFile;

    std::shared_ptr<Inode> Find(const std::string& path) const;

    std::map<std::string, std::shared_ptr<Inode>> live_;     ///< volatile names
    std::map<std::string, std::shared_ptr<Inode>> durable_;  ///< durable names
};

}  // namespace atum::io

#endif  // ATUM_IO_MEM_VFS_H_
