#ifndef ATUM_IO_VFS_H_
#define ATUM_IO_VFS_H_

/**
 * @file
 * The Vfs seam — everything the capture pipeline wants from an operating
 * system, as an interface.
 *
 * The trace container, the trace sink, the checkpoint writer and the run
 * manifest used to call POSIX directly, which made their durability
 * claims untestable: nothing could prove that a capture survives ENOSPC
 * bursts, torn renames or a power cut mid-fsync without actually pulling
 * a plug. This seam fixes that:
 *
 *  - RealVfs()        passes through to the OS via the EINTR-retrying
 *                     wrappers in io/posix.h (typed kNoSpace/kNotFound/
 *                     kInterrupted statuses);
 *  - MemVfs           (io/mem_vfs.h) models a filesystem's *durability*,
 *                     separating volatile from fsynced state so a
 *                     simulated power cut discards exactly what a real
 *                     one may;
 *  - ChaosVfs         (io/chaos.h) decorates a MemVfs with seeded,
 *                     schedule-driven fault injection.
 *
 * Operations are deliberately few — the five things a crash-safe writer
 * actually needs: create/append/read a file, atomically publish a name
 * (rename), retire a name (unlink), and make either durable (Sync on the
 * file, DirSync on its directory entry). There is no seek: every format
 * in atum is append-only by design.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace atum::io {

/** A writable, append-only file handle. */
class WritableFile
{
  public:
    virtual ~WritableFile() = default;

    /** Writes all `len` bytes or returns a non-OK status (in which case
     *  the file may hold a prefix of them — a torn write). */
    virtual util::Status Write(const void* data, size_t len) = 0;

    /** Durability barrier: everything written so far survives a crash. */
    virtual util::Status Sync() = 0;

    /** Releases the handle; idempotent. Does NOT imply Sync. */
    virtual util::Status Close() = 0;
};

/** A readable, sequential file handle. */
class ReadableFile
{
  public:
    virtual ~ReadableFile() = default;

    /** Reads up to `len` bytes; returns the count read, 0 at end. */
    virtual util::StatusOr<size_t> Read(void* data, size_t len) = 0;
};

/** The filesystem operations the capture pipeline is allowed to use. */
class Vfs
{
  public:
    virtual ~Vfs() = default;

    /** Creates (or truncates) `path` for writing. */
    virtual util::StatusOr<std::unique_ptr<WritableFile>> Create(
        const std::string& path) = 0;

    /**
     * Re-opens an existing file for appending at `offset`, truncating
     * anything past it first (the resume path's rewind-to-high-water).
     * kNotFound when missing; kDataLoss when shorter than `offset`.
     */
    virtual util::StatusOr<std::unique_ptr<WritableFile>> OpenForAppendAt(
        const std::string& path, uint64_t offset) = 0;

    /** Opens `path` for sequential reading; kNotFound when missing. */
    virtual util::StatusOr<std::unique_ptr<ReadableFile>> OpenRead(
        const std::string& path) = 0;

    /** Atomically replaces `to` with `from` (rename(2) semantics). The
     *  new name is durable only after DirSync. */
    virtual util::Status Rename(const std::string& from,
                                const std::string& to) = 0;

    /** Removes `path`; kNotFound when it does not exist. */
    virtual util::Status Unlink(const std::string& path) = 0;

    /**
     * Makes the directory entries of `path`'s parent directory durable —
     * the step that makes a preceding Rename/Unlink survive power loss.
     * `path` names a file in the directory, not the directory itself.
     */
    virtual util::Status DirSync(const std::string& path) = 0;

    /**
     * Lists the plain files in directory `dir`, as basenames in sorted
     * order ("." and ".." excluded). The recovery path's eyes: a
     * restarted daemon discovers surviving journals and checkpoints
     * with this rather than trusting any in-file inventory that may
     * itself be stale. kNotFound when the directory does not exist.
     */
    virtual util::StatusOr<std::vector<std::string>> ListDir(
        const std::string& dir) = 0;

    /** Short implementation name for logs ("real", "mem", "chaos"). */
    virtual const char* name() const = 0;
};

/** The process-wide passthrough to the host OS. */
Vfs& RealVfs();

/** `path`'s parent directory ("." when the path has no slash). */
std::string DirOf(const std::string& path);

}  // namespace atum::io

#endif  // ATUM_IO_VFS_H_
