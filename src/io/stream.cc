#include "io/stream.h"

#include <poll.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "io/posix.h"

namespace atum::io {

util::Status
WriteAll(Stream& stream, const void* data, size_t len)
{
    const auto* p = static_cast<const uint8_t*>(data);
    size_t done = 0;
    while (done < len) {
        util::StatusOr<size_t> n = stream.Write(p + done, len - done);
        if (!n.ok())
            return n.status();
        if (*n == 0)
            return util::Unavailable("stream accepted 0 bytes (", done,
                                     " of ", len, " written)");
        done += *n;
    }
    return util::OkStatus();
}

// ---------------------------------------------------------------------------
// FdStream.

namespace {

/** Polls `fd` for `events`; kUnavailable on deadline, retries EINTR. */
util::Status
AwaitFd(int fd, short events, int timeout_ms, const char* what)
{
    for (;;) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = events;
        pfd.revents = 0;
        const int n = ::poll(&pfd, 1, timeout_ms);
        if (n > 0)
            return util::OkStatus();
        if (n == 0)
            return util::Unavailable("stream ", what, ": peer silent past ",
                                     timeout_ms, " ms deadline");
        if (errno == EINTR)
            continue;
        return ErrnoStatus(errno, atum::internal::StrCat("poll for ", what));
    }
}

}  // namespace

util::StatusOr<size_t>
FdStream::Read(void* data, size_t len)
{
    if (op_timeout_ms_ >= 0) {
        if (util::Status s = AwaitFd(fd_, POLLIN, op_timeout_ms_, "read");
            !s.ok())
            return s;
    }
    return RetryRead(fd_, data, len, "stream");
}

util::StatusOr<size_t>
FdStream::Write(const void* data, size_t len)
{
    if (op_timeout_ms_ >= 0) {
        if (util::Status s = AwaitFd(fd_, POLLOUT, op_timeout_ms_, "write");
            !s.ok())
            return s;
    }
    for (;;) {
        const ssize_t n = ::write(fd_, data, len);
        if (n >= 0)
            return static_cast<size_t>(n);
        if (errno == EINTR)
            continue;
        return ErrnoStatus(errno, "stream write");
    }
}

// ---------------------------------------------------------------------------
// PipeStream.

util::StatusOr<size_t>
PipeStream::Read(void* data, size_t len)
{
    const size_t n = std::min(len, buf_.size());
    std::memcpy(data, buf_.data(), n);
    buf_.erase(0, n);
    return n;
}

util::StatusOr<size_t>
PipeStream::Write(const void* data, size_t len)
{
    buf_.append(static_cast<const char*>(data), len);
    return len;
}

// ---------------------------------------------------------------------------
// ChaosNet.

/** One wire end: Write runs the send fault battery, Read the recv one.
 *  The client holds the c2s end's Write and the s2c end's Read; the
 *  server the mirror — faults index operations, not peers. */
class ChaosNet::ChaosEnd : public Stream
{
  public:
    ChaosEnd(ChaosNet* net, PipeStream* wire) : net_(net), wire_(wire) {}

    util::StatusOr<size_t> Read(void* data, size_t len) override
    {
        return net_->Recv(*wire_, data, len);
    }

    util::StatusOr<size_t> Write(const void* data, size_t len) override
    {
        return net_->Send(*wire_, data, len);
    }

    const char* name() const override { return "chaos"; }

  private:
    ChaosNet* net_;
    PipeStream* wire_;
};

ChaosNet::ChaosNet(ChaosSchedule schedule)
    : schedule_(std::move(schedule)), fired_(schedule_.ops.size(), false),
      c2s_owned_(std::make_unique<ChaosEnd>(this, &c2s_wire_)),
      s2c_owned_(std::make_unique<ChaosEnd>(this, &s2c_wire_)),
      c2s_(*c2s_owned_), s2c_(*s2c_owned_)
{
}

ChaosNet::~ChaosNet() = default;

void
ChaosNet::ResetConnection()
{
    disconnected_ = false;
    c2s_wire_.Clear();
    s2c_wire_.Clear();
}

const ChaosOp*
ChaosNet::Take(ChaosOpKind kind, uint64_t at)
{
    for (size_t i = 0; i < schedule_.ops.size(); ++i) {
        const ChaosOp& op = schedule_.ops[i];
        if (!fired_[i] && op.kind == kind && op.at == at) {
            fired_[i] = true;
            ++faults_fired_;
            return &op;
        }
    }
    return nullptr;
}

util::Status
ChaosNet::InjectedError(const ChaosOp& op, const char* what)
{
    return util::Status(op.error, atum::internal::StrCat(
                                      "injected net fault on ", what, " #",
                                      op.at));
}

bool
ChaosNet::TakeDupRequest(uint64_t request_index)
{
    return Take(ChaosOpKind::kDupRequest, request_index) != nullptr;
}

bool
ChaosNet::TakeKillServe(uint64_t request_index)
{
    return Take(ChaosOpKind::kKillServe, request_index) != nullptr;
}

util::StatusOr<size_t>
ChaosNet::Send(PipeStream& wire, const void* data, size_t len)
{
    ++counts_.sends;
    if (disconnected_)
        return util::Unavailable("send on a reset connection");
    if (Take(ChaosOpKind::kCutSend, counts_.sends) != nullptr) {
        // The frame tears mid-flight: whatever was already queued stays
        // (the peer may parse a prefix), this chunk is gone, and the
        // connection is dead until the client dials again.
        disconnected_ = true;
        return util::Unavailable("connection reset during send #",
                                 counts_.sends);
    }
    if (const ChaosOp* op = Take(ChaosOpKind::kFailSend, counts_.sends))
        return InjectedError(*op, "send");
    if (const ChaosOp* op = Take(ChaosOpKind::kShortSend, counts_.sends)) {
        const size_t keep = static_cast<size_t>(
            std::min<uint64_t>(std::max<uint64_t>(op->arg, 1), len));
        return wire.Write(data, keep);
    }
    if (const ChaosOp* op = Take(ChaosOpKind::kFlipSend, counts_.sends)) {
        // Silent in-flight corruption: the send "succeeds".
        const auto* p = static_cast<const uint8_t*>(data);
        std::vector<uint8_t> copy(p, p + len);
        if (len > 0)
            copy[static_cast<size_t>(op->arg % len)] ^= 0xFF;
        return wire.Write(copy.data(), len);
    }
    return wire.Write(data, len);
}

util::StatusOr<size_t>
ChaosNet::Recv(PipeStream& wire, void* data, size_t len)
{
    ++counts_.recvs;
    if (disconnected_)
        return util::Unavailable("recv on a reset connection");
    if (Take(ChaosOpKind::kCutRecv, counts_.recvs) != nullptr) {
        disconnected_ = true;
        return util::Unavailable("connection reset during recv #",
                                 counts_.recvs);
    }
    if (Take(ChaosOpKind::kStallRecv, counts_.recvs) != nullptr)
        return util::Unavailable("recv #", counts_.recvs,
                                 " stalled past the read deadline");
    if (const ChaosOp* op = Take(ChaosOpKind::kFailRecv, counts_.recvs))
        return InjectedError(*op, "recv");
    size_t cap = len;
    if (const ChaosOp* op = Take(ChaosOpKind::kShortRecv, counts_.recvs))
        cap = static_cast<size_t>(
            std::min<uint64_t>(std::max<uint64_t>(op->arg, 1), len));
    const ChaosOp* flip = Take(ChaosOpKind::kFlipRecv, counts_.recvs);
    util::StatusOr<size_t> got = wire.Read(data, cap);
    if (got.ok() && flip != nullptr && *got > 0)
        static_cast<uint8_t*>(data)[static_cast<size_t>(flip->arg % *got)] ^=
            0xFF;
    return got;
}

}  // namespace atum::io
