#ifndef ATUM_TLBSIM_TLB_SIM_H_
#define ATUM_TLBSIM_TLB_SIM_H_

/**
 * @file
 * Trace-driven TLB simulation (experiment T4): how big a translation
 * buffer must be once operating-system references and context-switch
 * flushes are accounted for — one of the questions ATUM's full-system
 * traces made answerable.
 */

#include <cstdint>
#include <vector>

#include "trace/record.h"
#include "trace/sink.h"
#include "util/status.h"

namespace atum::tlbsim {

struct TlbSimConfig {
    uint32_t entries = 64;
    uint32_t ways = 0;  ///< 0 = fully associative
    bool include_kernel = true;
    bool include_pte = false;        ///< PTE refs are physical; usually skip
    bool flush_on_switch = true;     ///< no ASIDs, VAX-style
    bool flush_system_too = false;   ///< flush S0 entries as well
};

/**
 * Checks a TLB geometry without constructing; TlbSim's constructor
 * Fatals on the same conditions. Sweep workers validate first so a bad
 * row errors out instead of killing the whole sweep.
 */
util::Status ValidateConfig(const TlbSimConfig& config);

struct TlbSimStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t flushes = 0;

    double MissRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

class TlbSim
{
  public:
    explicit TlbSim(const TlbSimConfig& config);

    /** Feeds one trace record, in order. */
    void Feed(const trace::Record& record);

    /** Feeds every record of a source. */
    void DriveAll(trace::TraceSource& source);

    const TlbSimStats& stats() const { return stats_; }

  private:
    struct Entry {
        bool valid = false;
        uint32_t vpn = 0;
        uint64_t stamp = 0;
    };

    void Access(uint32_t vaddr);
    void FlushProcess();

    TlbSimConfig config_;
    uint32_t sets_;
    uint32_t ways_;
    std::vector<Entry> entries_;
    uint64_t tick_ = 0;
    TlbSimStats stats_;
};

}  // namespace atum::tlbsim

#endif  // ATUM_TLBSIM_TLB_SIM_H_
