#include "tlbsim/tlb_sim.h"

#include "mem/physical_memory.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace atum::tlbsim {

using trace::Record;
using trace::RecordType;

namespace {
constexpr uint32_t kS0BaseVpn = 0x80000000u >> kPageShift;
}  // namespace

util::Status
ValidateConfig(const TlbSimConfig& config)
{
    if (config.entries == 0 || !IsPowerOfTwo(config.entries))
        return util::InvalidArgument(
            "TLB entries must be a power of two, got ", config.entries);
    const uint32_t ways = config.ways == 0 ? config.entries : config.ways;
    if (ways > config.entries || config.entries % ways != 0)
        return util::InvalidArgument("bad TLB geometry: ", config.entries,
                                     " entries, ", ways, " ways");
    if (!IsPowerOfTwo(config.entries / ways))
        return util::InvalidArgument("TLB set count must be a power of two");
    return util::OkStatus();
}

TlbSim::TlbSim(const TlbSimConfig& config) : config_(config)
{
    if (util::Status status = ValidateConfig(config); !status.ok())
        Fatal(status.message());
    ways_ = config.ways == 0 ? config.entries : config.ways;
    sets_ = config.entries / ways_;
    entries_.resize(config.entries);
}

void
TlbSim::Access(uint32_t vaddr)
{
    ++stats_.accesses;
    const uint32_t vpn = vaddr >> kPageShift;
    const uint32_t set = vpn & (sets_ - 1);
    Entry* base = &entries_[static_cast<size_t>(set) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].stamp = ++tick_;
            return;
        }
    }
    ++stats_.misses;
    Entry* victim = base;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].stamp < victim->stamp)
            victim = &base[w];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->stamp = ++tick_;
}

void
TlbSim::FlushProcess()
{
    ++stats_.flushes;
    for (Entry& e : entries_) {
        if (e.valid && (config_.flush_system_too || e.vpn < kS0BaseVpn))
            e.valid = false;
    }
}

void
TlbSim::Feed(const Record& record)
{
    if (record.type == RecordType::kCtxSwitch) {
        if (config_.flush_on_switch)
            FlushProcess();
        return;
    }
    if (!record.IsMemory())
        return;
    if (record.type == RecordType::kPte && !config_.include_pte)
        return;
    if (record.kernel() && !config_.include_kernel)
        return;
    Access(record.addr);
}

void
TlbSim::DriveAll(trace::TraceSource& source)
{
    while (auto r = source.Next())
        Feed(*r);
}

}  // namespace atum::tlbsim
