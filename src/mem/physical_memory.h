#ifndef ATUM_MEM_PHYSICAL_MEMORY_H_
#define ATUM_MEM_PHYSICAL_MEMORY_H_

/**
 * @file
 * The simulated machine's physical memory.
 *
 * A flat little-endian byte array addressed by physical address. The memory
 * may carve out a *reserved region* at its top: the ATUM trace buffer. The
 * reservation is advisory at this layer (microcode writes records there with
 * ordinary physical stores); the kernel's frame allocator simply never hands
 * out frames inside it.
 */

#include <cstdint>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace atum {

/** VAX-style page/frame size: 512 bytes. */
inline constexpr uint32_t kPageBytes = 512;
inline constexpr uint32_t kPageShift = 9;

class PhysicalMemory
{
  public:
    /**
     * Creates `bytes` of zeroed physical memory; `bytes` must be a nonzero
     * multiple of the page size.
     */
    explicit PhysicalMemory(uint32_t bytes);

    PhysicalMemory(const PhysicalMemory&) = delete;
    PhysicalMemory& operator=(const PhysicalMemory&) = delete;

    uint32_t size() const { return static_cast<uint32_t>(data_.size()); }
    uint32_t NumFrames() const { return size() / kPageBytes; }

    /** Reads the byte at `pa`; out-of-range access is a Panic. */
    uint8_t Read8(uint32_t pa) const;
    /** Reads a little-endian 16-bit value; need not be aligned. */
    uint16_t Read16(uint32_t pa) const;
    /** Reads a little-endian 32-bit value; need not be aligned. */
    uint32_t Read32(uint32_t pa) const;

    void Write8(uint32_t pa, uint8_t v);
    void Write16(uint32_t pa, uint16_t v);
    void Write32(uint32_t pa, uint32_t v);

    /** Copies `len` bytes out of memory starting at `pa`. */
    void ReadBlock(uint32_t pa, void* dst, uint32_t len) const;
    /** Copies `len` bytes into memory starting at `pa`. */
    void WriteBlock(uint32_t pa, const void* src, uint32_t len);

    /** Returns true iff [pa, pa+len) lies inside memory. */
    bool Contains(uint32_t pa, uint32_t len = 1) const;

    /**
     * Reserves `bytes` (page-multiple) at the top of memory, e.g. for the
     * ATUM trace buffer, and returns the region's base physical address.
     * At most one reservation may be active; Unreserve() releases it.
     */
    uint32_t ReserveTop(uint32_t bytes);
    void Unreserve();

    /** Copies out the full memory contents (for machine snapshots). */
    std::vector<uint8_t> SaveData() const { return data_; }
    /** Restores contents saved by SaveData; sizes must match. */
    void RestoreData(const std::vector<uint8_t>& data);

    /** Serializes size, reservation and contents (checkpoint hook). */
    util::Status Save(util::StateWriter& w) const;
    /**
     * Restores state saved by Save into a memory of the same size with
     * the same reservation; mismatches are a data-loss Status, never a
     * crash (checkpoints are external input).
     */
    util::Status Restore(util::StateReader& r);

    /** Base of the reserved region, or size() when nothing is reserved. */
    uint32_t reserved_base() const { return reserved_base_; }
    uint32_t reserved_bytes() const { return size() - reserved_base_; }
    /** Frames below the reserved region (usable by an OS frame allocator). */
    uint32_t NumUsableFrames() const { return reserved_base_ / kPageBytes; }

  private:
    void CheckRange(uint32_t pa, uint32_t len) const;

    std::vector<uint8_t> data_;
    uint32_t reserved_base_;
};

}  // namespace atum

#endif  // ATUM_MEM_PHYSICAL_MEMORY_H_
