#include "mem/physical_memory.h"

#include <cstring>

#include "util/bitops.h"
#include "util/logging.h"

namespace atum {

PhysicalMemory::PhysicalMemory(uint32_t bytes)
{
    if (bytes == 0 || bytes % kPageBytes != 0)
        Fatal("physical memory size must be a nonzero page multiple, got ",
              bytes);
    data_.assign(bytes, 0);
    reserved_base_ = bytes;
}

void
PhysicalMemory::CheckRange(uint32_t pa, uint32_t len) const
{
    // The length is tiny (<= 8 for scalar accesses), so the addition cannot
    // wrap once pa is validated against size().
    if (pa >= data_.size() || len > data_.size() - pa)
        Panic("physical access out of range: pa=0x", std::hex, pa, " len=",
              std::dec, len, " size=", data_.size());
}

uint8_t
PhysicalMemory::Read8(uint32_t pa) const
{
    CheckRange(pa, 1);
    return data_[pa];
}

uint16_t
PhysicalMemory::Read16(uint32_t pa) const
{
    CheckRange(pa, 2);
    return static_cast<uint16_t>(data_[pa]) |
           static_cast<uint16_t>(data_[pa + 1]) << 8;
}

uint32_t
PhysicalMemory::Read32(uint32_t pa) const
{
    CheckRange(pa, 4);
    return static_cast<uint32_t>(data_[pa]) |
           static_cast<uint32_t>(data_[pa + 1]) << 8 |
           static_cast<uint32_t>(data_[pa + 2]) << 16 |
           static_cast<uint32_t>(data_[pa + 3]) << 24;
}

void
PhysicalMemory::Write8(uint32_t pa, uint8_t v)
{
    CheckRange(pa, 1);
    data_[pa] = v;
}

void
PhysicalMemory::Write16(uint32_t pa, uint16_t v)
{
    CheckRange(pa, 2);
    data_[pa] = static_cast<uint8_t>(v);
    data_[pa + 1] = static_cast<uint8_t>(v >> 8);
}

void
PhysicalMemory::Write32(uint32_t pa, uint32_t v)
{
    CheckRange(pa, 4);
    data_[pa] = static_cast<uint8_t>(v);
    data_[pa + 1] = static_cast<uint8_t>(v >> 8);
    data_[pa + 2] = static_cast<uint8_t>(v >> 16);
    data_[pa + 3] = static_cast<uint8_t>(v >> 24);
}

void
PhysicalMemory::ReadBlock(uint32_t pa, void* dst, uint32_t len) const
{
    if (len == 0)
        return;
    CheckRange(pa, len);
    std::memcpy(dst, data_.data() + pa, len);
}

void
PhysicalMemory::WriteBlock(uint32_t pa, const void* src, uint32_t len)
{
    if (len == 0)
        return;
    CheckRange(pa, len);
    std::memcpy(data_.data() + pa, src, len);
}

void
PhysicalMemory::RestoreData(const std::vector<uint8_t>& data)
{
    if (data.size() != data_.size())
        Fatal("snapshot size mismatch: ", data.size(), " vs ",
              data_.size());
    data_ = data;
}

util::Status
PhysicalMemory::Save(util::StateWriter& w) const
{
    w.U32(size());
    w.U32(reserved_base_);
    w.Bytes(data_.data(), data_.size());
    return util::OkStatus();
}

util::Status
PhysicalMemory::Restore(util::StateReader& r)
{
    const uint32_t saved_size = r.U32();
    const uint32_t saved_reserved = r.U32();
    if (!r.ok())
        return r.status();
    if (saved_size != size()) {
        return util::DataLoss("checkpoint memory size ", saved_size,
                              " does not match machine memory ", size());
    }
    if (saved_reserved != reserved_base_) {
        return util::DataLoss("checkpoint trace-buffer reservation (base 0x",
                              std::hex, saved_reserved,
                              ") does not match the active reservation "
                              "(base 0x",
                              reserved_base_, ")");
    }
    r.Bytes(data_.data(), data_.size());
    return r.status();
}

bool
PhysicalMemory::Contains(uint32_t pa, uint32_t len) const
{
    return pa < data_.size() && len <= data_.size() - pa;
}

uint32_t
PhysicalMemory::ReserveTop(uint32_t bytes)
{
    if (bytes == 0 || bytes % kPageBytes != 0)
        Fatal("reserved region must be a nonzero page multiple, got ", bytes);
    if (reserved_base_ != data_.size())
        Fatal("a reserved region is already active");
    if (bytes >= data_.size())
        Fatal("reserved region (", bytes, " bytes) must leave usable memory");
    reserved_base_ = static_cast<uint32_t>(data_.size()) - bytes;
    return reserved_base_;
}

void
PhysicalMemory::Unreserve()
{
    reserved_base_ = static_cast<uint32_t>(data_.size());
}

}  // namespace atum
