#include "util/serialize.h"

#include <cstring>

namespace atum::util {

void
StateWriter::Bytes(const void* data, size_t len)
{
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
}

void
StateWriter::Blob(const void* data, size_t len)
{
    U32(static_cast<uint32_t>(len));
    Bytes(data, len);
}

bool
StateReader::Need(size_t n)
{
    if (!status_.ok())
        return false;
    if (len_ - pos_ < n) {
        status_ = DataLoss("state truncated: need ", n, " bytes at offset ",
                           pos_, ", have ", len_ - pos_);
        return false;
    }
    return true;
}

uint8_t
StateReader::U8()
{
    if (!Need(1))
        return 0;
    return data_[pos_++];
}

uint16_t
StateReader::U16()
{
    if (!Need(2))
        return 0;
    const uint16_t v =
        static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
}

uint32_t
StateReader::U32()
{
    if (!Need(4))
        return 0;
    const uint32_t v = static_cast<uint32_t>(data_[pos_]) |
                       static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
                       static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
                       static_cast<uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
}

uint64_t
StateReader::U64()
{
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
}

void
StateReader::Bytes(void* dst, size_t len)
{
    if (!Need(len)) {
        std::memset(dst, 0, len);
        return;
    }
    std::memcpy(dst, data_ + pos_, len);
    pos_ += len;
}

std::vector<uint8_t>
StateReader::Blob()
{
    const uint32_t len = U32();
    if (!Need(len))
        return {};
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return out;
}

std::string
StateReader::Str()
{
    const std::vector<uint8_t> b = Blob();
    return std::string(b.begin(), b.end());
}

void
StateReader::Fail(Status status)
{
    if (status_.ok())
        status_ = std::move(status);
}

}  // namespace atum::util
