#ifndef ATUM_UTIL_STATUS_H_
#define ATUM_UTIL_STATUS_H_

/**
 * @file
 * Recoverable-error propagation: Status and StatusOr<T>.
 *
 * The logging header draws the line between Fatal (user error, exit) and
 * Panic (atum bug, abort). Both are wrong for errors that a caller can
 * reasonably handle — a trace file that turned out truncated, a disk that
 * filled mid-capture, one bad configuration in a hundred-config sweep.
 * Those paths return a Status (or StatusOr<T> when there is a value to
 * return) and let the caller decide: retry, degrade, skip the row, or
 * surface a clean non-zero exit code.
 *
 * The rule after this refactor: no Fatal/Panic may be reachable from
 * malformed *input* (trace files, sweep specs fed to the replay engine);
 * they remain for construction-time API misuse and genuine internal
 * invariants.
 */

#include <cstdint>
#include <string>
#include <utility>

#include "util/logging.h"

namespace atum::util {

/** Broad error classes, in the absl tradition (only the ones atum needs). */
enum class StatusCode : uint8_t {
    kOk = 0,
    kInvalidArgument,     ///< malformed input or configuration
    kNotFound,            ///< file or resource does not exist
    kIoError,             ///< the OS failed a read/write/flush
    kDataLoss,            ///< input recognized but corrupt or truncated
    kFailedPrecondition,  ///< operation illegal in the current state
    kUnavailable,         ///< transient failure; retrying may succeed
    kInternal,            ///< unexpected failure inside atum
    kNoSpace,             ///< device full (ENOSPC/EDQUOT); retrying is futile
    kInterrupted,         ///< a signal interrupted the call (EINTR); retry
    kResourceExhausted,   ///< admission refused: quota or queue bound hit
};

/** Stable lowercase name ("data-loss") for messages and reports. */
const char* StatusCodeName(StatusCode code);

/** An error code plus a human-readable message; default-constructed = OK. */
class Status
{
  public:
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "data-loss: chunk 3 CRC mismatch" (or "ok"). */
    std::string ToString() const;

    bool operator==(const Status&) const = default;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

inline Status OkStatus()
{
    return Status();
}

// Makers in the style of Fatal()/Warn(): any streamable arguments.
template <typename... Args>
Status InvalidArgument(Args&&... args)
{
    return Status(StatusCode::kInvalidArgument,
                  internal::StrCat(std::forward<Args>(args)...));
}
template <typename... Args>
Status NotFound(Args&&... args)
{
    return Status(StatusCode::kNotFound,
                  internal::StrCat(std::forward<Args>(args)...));
}
template <typename... Args>
Status IoError(Args&&... args)
{
    return Status(StatusCode::kIoError,
                  internal::StrCat(std::forward<Args>(args)...));
}
template <typename... Args>
Status DataLoss(Args&&... args)
{
    return Status(StatusCode::kDataLoss,
                  internal::StrCat(std::forward<Args>(args)...));
}
template <typename... Args>
Status FailedPrecondition(Args&&... args)
{
    return Status(StatusCode::kFailedPrecondition,
                  internal::StrCat(std::forward<Args>(args)...));
}
template <typename... Args>
Status Unavailable(Args&&... args)
{
    return Status(StatusCode::kUnavailable,
                  internal::StrCat(std::forward<Args>(args)...));
}
template <typename... Args>
Status InternalError(Args&&... args)
{
    return Status(StatusCode::kInternal,
                  internal::StrCat(std::forward<Args>(args)...));
}
template <typename... Args>
Status NoSpace(Args&&... args)
{
    return Status(StatusCode::kNoSpace,
                  internal::StrCat(std::forward<Args>(args)...));
}
template <typename... Args>
Status Interrupted(Args&&... args)
{
    return Status(StatusCode::kInterrupted,
                  internal::StrCat(std::forward<Args>(args)...));
}
template <typename... Args>
Status ResourceExhausted(Args&&... args)
{
    return Status(StatusCode::kResourceExhausted,
                  internal::StrCat(std::forward<Args>(args)...));
}

/** A Status or a value of type T; exactly one is ever present. */
template <typename T>
class StatusOr
{
  public:
    /** An error result. Passing an OK status is API misuse (Panic). */
    StatusOr(Status status) : status_(std::move(status))  // NOLINT(implicit)
    {
        if (status_.ok())
            Panic("StatusOr constructed from an OK status without a value");
    }

    StatusOr(T value)  // NOLINT(implicit)
        : status_(), has_value_(true), value_(std::move(value))
    {
    }

    bool ok() const { return has_value_; }
    const Status& status() const { return status_; }

    /** The held value; calling on an error result is a Panic. */
    T& value() &
    {
        EnsureValue();
        return value_;
    }
    const T& value() const&
    {
        EnsureValue();
        return value_;
    }
    T&& value() &&
    {
        EnsureValue();
        return std::move(value_);
    }

    T* operator->()
    {
        EnsureValue();
        return &value_;
    }
    T& operator*() & { return value(); }

  private:
    void EnsureValue() const
    {
        if (!has_value_)
            Panic("StatusOr::value on error: ", status_.ToString());
    }

    Status status_;
    bool has_value_ = false;
    T value_{};
};

/**
 * Process exit codes shared by the command-line tools, so scripts can
 * distinguish "you typed it wrong" from "the file is gone" from "the file
 * is there but rotten". (1 stays the legacy Fatal catch-all.)
 */
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;    ///< Fatal(): generic user error
inline constexpr int kExitUsage = 2;    ///< bad command-line arguments
inline constexpr int kExitIo = 3;       ///< missing/unreadable/unwritable file,
                                        ///< full disk (kNoSpace) or an
                                        ///< unrecoverably interrupted call
inline constexpr int kExitCorrupt = 4;  ///< recognized trace, corrupt content
/**
 * Capture stopped early but *cleanly* on an external signal or deadline:
 * the trace is sealed, a final checkpoint exists, and the run can be
 * continued with --resume. Scripts treat this as "pause", not failure.
 */
inline constexpr int kExitInterrupted = 5;
/**
 * The supervisor's deadman watchdog fired: the guest made no clean
 * instruction-retirement progress within its micro-cycle budget (wedged
 * in an exception loop or spinning). The trace up to the wedge is sealed.
 */
inline constexpr int kExitWedged = 6;
/**
 * The peer is transiently unreachable (kUnavailable): the serve daemon
 * is not listening, still starting, or mid-restart. Retrying — which
 * atum-submit does itself with jittered backoff — may succeed; scripts
 * seeing 7 should back off, not give up.
 */
inline constexpr int kExitUnavailable = 7;
/**
 * Admission refused (kResourceExhausted): the daemon shed load because a
 * queue bound or per-tenant quota was hit. The request was well-formed
 * and the server is healthy — resubmit later or to a quieter tenant.
 */
inline constexpr int kExitResourceExhausted = 8;

/** Maps an error Status to the tool exit-code convention above. */
int ExitCodeFor(const Status& status);

}  // namespace atum::util

#endif  // ATUM_UTIL_STATUS_H_
