#ifndef ATUM_UTIL_LOGGING_H_
#define ATUM_UTIL_LOGGING_H_

/**
 * @file
 * Status / error reporting in the gem5 style.
 *
 * Two terminating functions with distinct purposes:
 *  - Fatal():  the *user's* fault (bad configuration, invalid arguments);
 *              exits with status 1.
 *  - Panic():  a bug in atum itself ("can't happen"); calls abort() so the
 *              failure can be caught in a debugger or death test.
 *
 * Two non-terminating functions:
 *  - Inform(): normal operational status.
 *  - Warn():   something is off but execution can continue.
 */

#include <sstream>
#include <string>

namespace atum {

namespace internal {

/** Sink for formatted log output; terminates for the fatal kinds. */
[[noreturn]] void FatalImpl(const std::string& msg);
[[noreturn]] void PanicImpl(const std::string& msg);
void InformImpl(const std::string& msg);
void WarnImpl(const std::string& msg);

/** Concatenates all arguments via operator<<. */
template <typename... Args>
std::string StrCat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

}  // namespace internal

/** Reports a user-caused error and exits the process with status 1. */
template <typename... Args>
[[noreturn]] void Fatal(Args&&... args)
{
    internal::FatalImpl(internal::StrCat(std::forward<Args>(args)...));
}

/** Reports an internal invariant violation and aborts. */
template <typename... Args>
[[noreturn]] void Panic(Args&&... args)
{
    internal::PanicImpl(internal::StrCat(std::forward<Args>(args)...));
}

/** Emits an informational message to stderr. */
template <typename... Args>
void Inform(Args&&... args)
{
    internal::InformImpl(internal::StrCat(std::forward<Args>(args)...));
}

/** Emits a warning message to stderr. */
template <typename... Args>
void Warn(Args&&... args)
{
    internal::WarnImpl(internal::StrCat(std::forward<Args>(args)...));
}

/**
 * Enables or disables Inform()/Warn() output globally (useful in tests and
 * benchmarks that run many simulations). Fatal/Panic always print.
 */
void SetLogQuiet(bool quiet);

}  // namespace atum

#endif  // ATUM_UTIL_LOGGING_H_
