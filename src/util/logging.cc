#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace atum {

namespace {
bool g_quiet = false;
}  // namespace

void
SetLogQuiet(bool quiet)
{
    g_quiet = quiet;
}

namespace internal {

void
FatalImpl(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
PanicImpl(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
InformImpl(const std::string& msg)
{
    if (!g_quiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
WarnImpl(const std::string& msg)
{
    if (!g_quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

}  // namespace internal
}  // namespace atum
