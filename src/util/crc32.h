#ifndef ATUM_UTIL_CRC32_H_
#define ATUM_UTIL_CRC32_H_

/**
 * @file
 * CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum the
 * ATF2 trace container uses per chunk. Software table implementation —
 * fast enough that checksumming is invisible next to simulation cost, and
 * byte-identical on every platform, which the golden-file tests require.
 *
 * Check value: Crc32c("123456789", 9) == 0xE3069283.
 */

#include <cstddef>
#include <cstdint>

namespace atum::util {

/**
 * Extends a running CRC32C over `len` more bytes. `crc` is the finalized
 * value of the previous bytes (0 for none); returns the finalized value
 * of the whole sequence, so Extend(Extend(0, a), b) == Crc32c(a+b).
 */
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

/** CRC32C of one contiguous buffer. */
inline uint32_t
Crc32c(const void* data, size_t len)
{
    return Crc32cExtend(0, data, len);
}

}  // namespace atum::util

#endif  // ATUM_UTIL_CRC32_H_
