#include "util/status.h"

namespace atum::util {

const char*
StatusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk:
        return "ok";
      case StatusCode::kInvalidArgument:
        return "invalid-argument";
      case StatusCode::kNotFound:
        return "not-found";
      case StatusCode::kIoError:
        return "io-error";
      case StatusCode::kDataLoss:
        return "data-loss";
      case StatusCode::kFailedPrecondition:
        return "failed-precondition";
      case StatusCode::kUnavailable:
        return "unavailable";
      case StatusCode::kInternal:
        return "internal";
      case StatusCode::kNoSpace:
        return "no-space";
      case StatusCode::kInterrupted:
        return "interrupted";
      case StatusCode::kResourceExhausted:
        return "resource-exhausted";
    }
    return "unknown";
}

std::string
Status::ToString() const
{
    if (ok())
        return "ok";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    return s;
}

int
ExitCodeFor(const Status& status)
{
    switch (status.code()) {
      case StatusCode::kOk:
        return kExitOk;
      case StatusCode::kNotFound:
      case StatusCode::kIoError:
      case StatusCode::kNoSpace:
      case StatusCode::kInterrupted:
        return kExitIo;
      case StatusCode::kUnavailable:
        return kExitUnavailable;
      case StatusCode::kResourceExhausted:
        return kExitResourceExhausted;
      case StatusCode::kInvalidArgument:
      case StatusCode::kDataLoss:
        return kExitCorrupt;
      case StatusCode::kFailedPrecondition:
      case StatusCode::kInternal:
        return kExitError;
    }
    return kExitError;
}

}  // namespace atum::util
