#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace atum::util {

std::string
JsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::Comma()
{
    if (need_comma_.back())
        out_ += ',';
    need_comma_.back() = true;
}

void
JsonWriter::BeginObject()
{
    Comma();
    out_ += '{';
    need_comma_.push_back(false);
}

void
JsonWriter::EndObject()
{
    out_ += '}';
    need_comma_.pop_back();
}

void
JsonWriter::BeginArray()
{
    Comma();
    out_ += '[';
    need_comma_.push_back(false);
}

void
JsonWriter::EndArray()
{
    out_ += ']';
    need_comma_.pop_back();
}

void
JsonWriter::Key(const std::string& key)
{
    Comma();
    out_ += '"';
    out_ += JsonEscape(key);
    out_ += "\":";
    // The value that follows must not emit its own comma.
    need_comma_.back() = false;
}

void
JsonWriter::Value(const std::string& s)
{
    Comma();
    out_ += '"';
    out_ += JsonEscape(s);
    out_ += '"';
}

void
JsonWriter::Value(const char* s)
{
    Value(std::string(s));
}

void
JsonWriter::RawValue(const std::string& json)
{
    Comma();
    out_ += json;
}

void
JsonWriter::Value(bool b)
{
    Comma();
    out_ += b ? "true" : "false";
}

void
JsonWriter::Value(uint64_t v)
{
    Comma();
    out_ += std::to_string(v);
}

void
JsonWriter::Value(int64_t v)
{
    Comma();
    out_ += std::to_string(v);
}

void
JsonWriter::Value(double d)
{
    Comma();
    if (!std::isfinite(d)) {
        out_ += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out_ += buf;
}

void
JsonWriter::Null()
{
    Comma();
    out_ += "null";
}

uint64_t
JsonValue::AsU64() const
{
    if (kind_ != Kind::kNumber || num_ < 0)
        return 0;
    return static_cast<uint64_t>(num_);
}

const JsonValue&
JsonValue::Get(const std::string& key) const
{
    static const JsonValue kNull;
    const auto it = object_.find(key);
    return it == object_.end() ? kNull : it->second;
}

/** Recursive-descent parser over a borrowed string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    StatusOr<JsonValue> Parse()
    {
        JsonValue v;
        Status status = ParseValue(v, 0);
        if (!status.ok())
            return status;
        SkipSpace();
        if (pos_ != text_.size())
            return Error("trailing characters after JSON document");
        return v;
    }

  private:
    static constexpr unsigned kMaxDepth = 64;

    Status Error(const std::string& what)
    {
        return InvalidArgument("JSON parse error at offset ", pos_, ": ",
                               what);
    }

    void SkipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool Consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool ConsumeWord(const char* word)
    {
        const size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Status ParseValue(JsonValue& out, unsigned depth)
    {
        if (depth > kMaxDepth)
            return Error("nesting too deep");
        SkipSpace();
        if (pos_ >= text_.size())
            return Error("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return ParseObject(out, depth);
        if (c == '[')
            return ParseArray(out, depth);
        if (c == '"') {
            out.kind_ = JsonValue::Kind::kString;
            return ParseString(out.str_);
        }
        if (ConsumeWord("true")) {
            out.kind_ = JsonValue::Kind::kBool;
            out.bool_ = true;
            return OkStatus();
        }
        if (ConsumeWord("false")) {
            out.kind_ = JsonValue::Kind::kBool;
            out.bool_ = false;
            return OkStatus();
        }
        if (ConsumeWord("null")) {
            out.kind_ = JsonValue::Kind::kNull;
            return OkStatus();
        }
        return ParseNumber(out);
    }

    Status ParseObject(JsonValue& out, unsigned depth)
    {
        out.kind_ = JsonValue::Kind::kObject;
        ++pos_;  // '{'
        SkipSpace();
        if (Consume('}'))
            return OkStatus();
        while (true) {
            SkipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return Error("expected object key");
            std::string key;
            if (Status s = ParseString(key); !s.ok())
                return s;
            SkipSpace();
            if (!Consume(':'))
                return Error("expected ':' after object key");
            JsonValue value;
            if (Status s = ParseValue(value, depth + 1); !s.ok())
                return s;
            out.object_.emplace(std::move(key), std::move(value));
            SkipSpace();
            if (Consume('}'))
                return OkStatus();
            if (!Consume(','))
                return Error("expected ',' or '}' in object");
        }
    }

    Status ParseArray(JsonValue& out, unsigned depth)
    {
        out.kind_ = JsonValue::Kind::kArray;
        ++pos_;  // '['
        SkipSpace();
        if (Consume(']'))
            return OkStatus();
        while (true) {
            JsonValue value;
            if (Status s = ParseValue(value, depth + 1); !s.ok())
                return s;
            out.array_.push_back(std::move(value));
            SkipSpace();
            if (Consume(']'))
                return OkStatus();
            if (!Consume(','))
                return Error("expected ',' or ']' in array");
        }
    }

    Status ParseString(std::string& out)
    {
        ++pos_;  // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return OkStatus();
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
            case '"':
            case '\\':
            case '/':
                out += esc;
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return Error("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return Error("bad hex digit in \\u escape");
                }
                // Basic-plane only; encode as UTF-8. Surrogate pairs are
                // not needed for any string this repo produces.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                return Error("unknown escape");
            }
        }
        return Error("unterminated string");
    }

    Status ParseNumber(JsonValue& out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                digits = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                ++pos_;
            } else {
                break;
            }
        }
        if (!digits)
            return Error("expected a value");
        out.kind_ = JsonValue::Kind::kNumber;
        out.num_ = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
        return OkStatus();
    }

    const std::string& text_;
    size_t pos_ = 0;
};

StatusOr<JsonValue>
JsonValue::Parse(const std::string& text)
{
    return JsonParser(text).Parse();
}

}  // namespace atum::util
