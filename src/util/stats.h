#ifndef ATUM_UTIL_STATS_H_
#define ATUM_UTIL_STATS_H_

/**
 * @file
 * Lightweight statistics accumulators used by the trace analyzers and the
 * benchmark harnesses.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace atum {

/** Accumulates count/mean/min/max/stddev of a stream of samples. */
class RunningStats
{
  public:
    /** Adds one sample. */
    void Add(double x);

    uint64_t count() const { return count_; }
    double mean() const;
    double min() const;
    double max() const;
    /** Population standard deviation; 0 with fewer than two samples. */
    double stddev() const;
    double sum() const { return sum_; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A power-of-two bucketed histogram for positive integer samples (for
 * example context-switch interval lengths). Bucket i counts samples in
 * [2^i, 2^(i+1)).
 */
class Log2Histogram
{
  public:
    /** Adds one sample; 0 is counted in bucket 0. */
    void Add(uint64_t x);

    uint64_t count() const { return count_; }
    /** Number of samples in [2^i, 2^(i+1)). */
    uint64_t BucketCount(unsigned i) const;
    unsigned NumBuckets() const { return buckets_.size(); }
    /** Renders "bucket-range: count" lines, omitting empty buckets. */
    std::string ToString() const;

  private:
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
};

/** A named counter set, rendered sorted by name (used by trace stats). */
class CounterSet
{
  public:
    /** Adds `delta` to counter `name`, creating it at zero if absent. */
    void Add(const std::string& name, uint64_t delta = 1);

    /** Returns the counter value, or 0 if never touched. */
    uint64_t Get(const std::string& name) const;

    /** All counters, sorted by name. */
    const std::map<std::string, uint64_t>& counters() const
    {
        return counters_;
    }

  private:
    std::map<std::string, uint64_t> counters_;
};

}  // namespace atum

#endif  // ATUM_UTIL_STATS_H_
