#include "util/crc32.h"

#include <array>

namespace atum::util {

namespace {

/** Reflected CRC32C lookup table, one entry per byte value. */
constexpr std::array<uint32_t, 256>
MakeTable()
{
    constexpr uint32_t kPolyReflected = 0x82F63B78u;
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? kPolyReflected : 0);
        table[i] = crc;
    }
    return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t
Crc32cExtend(uint32_t crc, const void* data, size_t len)
{
    const auto* bytes = static_cast<const uint8_t*>(data);
    crc = ~crc;
    for (size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
    return ~crc;
}

}  // namespace atum::util
