#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace atum {

void
RunningStats::Add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    sum_sq_ += x * x;
}

double
RunningStats::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
RunningStats::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStats::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
RunningStats::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n));
    return std::sqrt(var);
}

void
Log2Histogram::Add(uint64_t x)
{
    unsigned bucket = 0;
    while (x > 1) {
        x >>= 1;
        ++bucket;
    }
    if (bucket >= buckets_.size())
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
    ++count_;
}

uint64_t
Log2Histogram::BucketCount(unsigned i) const
{
    return i < buckets_.size() ? buckets_[i] : 0;
}

std::string
Log2Histogram::ToString() const
{
    std::ostringstream os;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        const uint64_t lo = i == 0 ? 0 : (1ull << i);
        const uint64_t hi = (1ull << (i + 1)) - 1;
        os << "[" << lo << ", " << hi << "]: " << buckets_[i] << "\n";
    }
    return os.str();
}

void
CounterSet::Add(const std::string& name, uint64_t delta)
{
    counters_[name] += delta;
}

uint64_t
CounterSet::Get(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

}  // namespace atum
